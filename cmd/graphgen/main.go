// Command graphgen generates, inspects and serializes the synthetic graph
// datasets used by the reproduction (Table V stand-ins).
//
// Usage:
//
//	graphgen -list                      # dataset catalogue
//	graphgen -dataset tw -stats         # skew statistics (Table I row)
//	graphgen -dataset kr -o kr.gcsr     # generate and save
//	graphgen -in kr.gcsr -stats         # inspect a saved graph
//	graphgen -graph web-Google.txt -stats -o google.gcsr  # ingest any format
package main

import (
	"flag"
	"fmt"
	"os"

	"grasp/internal/graph"
)

func main() {
	list := flag.Bool("list", false, "list datasets and exit")
	name := flag.String("dataset", "", "dataset name (lj, pl, tw, kr, sd, fr, uni)")
	scale := flag.Uint("scale", 1, "dataset scale divisor")
	weighted := flag.Bool("weighted", false, "generate edge weights")
	out := flag.String("o", "", "write the graph to this file")
	in := flag.String("in", "", "read a binary (.gcsr) graph from this file instead of generating")
	inEL := flag.String("el", "", "read a text edge list (.el/.wel, SNAP/GAP format) instead of generating")
	inGraph := flag.String("graph", "", "read a graph file of any supported format (.txt/.el/.wel/.mtx/.gcsr, auto-detected) instead of generating")
	outEL := flag.String("oel", "", "write the graph as a text edge list to this file")
	showStats := flag.Bool("stats", false, "print degree/skew statistics")
	flag.Parse()

	if *list {
		fmt.Printf("%-5s %-12s %10s %8s %6s\n", "name", "stand-in for", "vertices", "avg-deg", "skew")
		for _, d := range graph.Datasets() {
			skew := "high"
			if !d.HighSkew {
				skew = "low/no"
			}
			fmt.Printf("%-5s %-12s %10d %8.0f %6s\n", d.Name, d.FullName, d.Vertices, d.AvgDegree, skew)
		}
		return
	}

	var g *graph.CSR
	switch {
	case *inGraph != "":
		var rerr error
		g, rerr = graph.ReadGraphFile(*inGraph)
		if rerr != nil {
			fatal(rerr)
		}
	case *inEL != "":
		f, err := os.Open(*inEL)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		var rerr error
		g, rerr = graph.ReadEdgeList(f)
		if rerr != nil {
			fatal(rerr)
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		var rerr error
		g, rerr = graph.ReadFrom(f)
		if rerr != nil {
			fatal(rerr)
		}
	case *name != "":
		ds, err := graph.DatasetByName(*name)
		if err != nil {
			fatal(err)
		}
		g = ds.Generate(*weighted, uint32(*scale))
	default:
		fmt.Fprintln(os.Stderr, "graphgen: need -dataset, -graph or -in (or -list)")
		os.Exit(2)
	}

	fmt.Println(g)
	if *showStats {
		in, out := graph.InSkew(g), graph.OutSkew(g)
		fmt.Printf("in-edges:  hot vertices %.0f%%, edge coverage %.0f%%, max degree %d\n",
			in.HotVertexPct, in.EdgeCoverPct, in.MaxDegree)
		fmt.Printf("out-edges: hot vertices %.0f%%, edge coverage %.0f%%, max degree %d\n",
			out.HotVertexPct, out.EdgeCoverPct, out.MaxDegree)
		fmt.Printf("degree gini (out): %.3f\n", graph.GiniCoefficient(g, false))
	}
	if *outEL != "" {
		f, err := os.Create(*outEL)
		if err != nil {
			fatal(err)
		}
		if err := graph.WriteEdgeList(f, g); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote edge list to %s\n", *outEL)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		n, err := g.WriteTo(f)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d bytes to %s\n", n, *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
