// Command cachesim runs a single (dataset, reordering, application,
// policy) simulation and reports detailed cache statistics, including the
// per-array LLC breakdown that motivates GRASP (Sec. II-C of the paper).
//
// Usage:
//
//	cachesim -dataset tw -app PR -policy GRASP -reorder DBG
//	cachesim -dataset uni -app Radii -policy PIN-100 -arrays
//	cachesim -graph web-Google.txt -app TC -policy GRASP
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/core"
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
	"grasp/internal/sim"
)

// arraySink feeds the hierarchy while attributing LLC traffic to the data
// structure it touches. Consecutive LLC accesses usually fall in the same
// array, so the last resolved array short-circuits the address-space scan.
type arraySink struct {
	l1, l2, llc *cache.Cache
	as          *mem.AddressSpace
	last        *mem.Array
	acc, miss   map[string]uint64
}

func (s *arraySink) Access(a mem.Access) {
	if s.l1.Access(a) || s.l2.Access(a) {
		return
	}
	name := "(unmapped)"
	if s.last != nil && a.Addr >= s.last.Base && a.Addr < s.last.End() {
		name = s.last.Name
	} else if ar := s.as.Find(a.Addr); ar != nil {
		s.last = ar
		name = ar.Name
	}
	s.acc[name]++
	if !s.llc.Access(a) {
		s.miss[name]++
	}
}

func main() {
	dsName := flag.String("dataset", "tw", "dataset name (or a graph-file path; see -graph)")
	graphSpec := flag.String("graph", "", "simulate this graph file (.txt/.el/.wel/.mtx/.gcsr) instead of -dataset")
	appName := flag.String("app", "PR", fmt.Sprintf("application, one of %v", apps.ExtendedNames()))
	polName := flag.String("policy", "GRASP", "LLC policy (see sim.Policies)")
	reorderName := flag.String("reorder", "DBG", "reordering: Identity, Sort, HubSort, DBG, Gorder, Gorder+DBG")
	scale := flag.Uint("scale", 1, "dataset scale divisor")
	split := flag.Bool("split", false, "use split Property-Array layout instead of merged")
	arrays := flag.Bool("arrays", false, "print the per-array LLC breakdown")
	flag.Parse()

	spec := *dsName
	if *graphSpec != "" {
		spec = *graphSpec
	}
	ds, err := graph.Resolve(spec)
	if err != nil {
		fatal(err)
	}
	if ds.Kind == graph.KindFile && *scale > 1 {
		fmt.Fprintf(os.Stderr,
			"cachesim: note: -scale %d shrinks only the cache hierarchy; the file graph always loads at full size\n", *scale)
	}
	w, err := sim.PrepareWorkload(ds, *reorderName, *appName == "SSSP", uint32(*scale))
	if err != nil {
		fatal(err)
	}
	pinfo, err := sim.PolicyByName(*polName)
	if err != nil {
		fatal(err)
	}
	layout := apps.LayoutMerged
	if *split {
		layout = apps.LayoutSplit
	}
	hcfg := cache.DefaultHierarchyConfig()
	if *scale > 1 {
		div := uint64(*scale)
		shrink := func(c *cache.Config) {
			c.SizeBytes /= div
			if min := uint64(c.Ways) * cache.BlockSize * 2; c.SizeBytes < min {
				c.SizeBytes = min
			}
		}
		shrink(&hcfg.L1)
		shrink(&hcfg.L2)
		shrink(&hcfg.LLC)
	}

	fg := ligra.NewGraph(w.Graph)
	app, err := apps.New(*appName, fg, layout)
	if err != nil {
		fatal(err)
	}
	llc := cache.MustNew(hcfg.LLC, pinfo.New(hcfg.LLC.Sets(), hcfg.LLC.Ways))
	if pinfo.NeedsABRs {
		abrs := core.NewABRs(hcfg.LLC.SizeBytes)
		for _, a := range app.ABRArrays() {
			if err := abrs.SetArray(a); err != nil {
				fatal(err)
			}
		}
		llc.SetClassifier(abrs)
	}
	sink := &arraySink{
		l1:  cache.MustNew(hcfg.L1, cache.NewLRU(hcfg.L1.Sets(), hcfg.L1.Ways)),
		l2:  cache.MustNew(hcfg.L2, cache.NewLRU(hcfg.L2.Sets(), hcfg.L2.Ways)),
		llc: llc, as: fg.AS,
		acc: map[string]uint64{}, miss: map[string]uint64{},
	}
	app.Run(ligra.NewTracer(sink))

	fmt.Printf("workload: %s/%s reorder=%s layout=%v policy=%s (reorder cost %v)\n",
		ds.Name, *appName, *reorderName, layout, *polName, w.ReorderCost.Round(1000))
	fmt.Printf("graph:    %v\n", w.Graph)
	fmt.Printf("L1:  %9d accesses, %9d misses (%.1f%%)\n",
		sink.l1.Stats.Accesses(), sink.l1.Stats.Misses, 100*sink.l1.Stats.MissRatio())
	fmt.Printf("L2:  %9d accesses, %9d misses (%.1f%%)\n",
		sink.l2.Stats.Accesses(), sink.l2.Stats.Misses, 100*sink.l2.Stats.MissRatio())
	fmt.Printf("LLC: %9d accesses, %9d misses (%.1f%%), %d bypasses, %d writebacks\n",
		llc.Stats.Accesses(), llc.Stats.Misses, 100*llc.Stats.MissRatio(), llc.Stats.Bypasses,
		llc.Stats.Writebacks)
	prop := llc.Stats.PropHits + llc.Stats.PropMisses
	if llc.Stats.Accesses() > 0 {
		fmt.Printf("Property Array share of LLC accesses: %.1f%% (misses: %.1f%%)\n",
			100*float64(prop)/float64(llc.Stats.Accesses()),
			100*float64(llc.Stats.PropMisses)/float64(llc.Stats.Misses+1))
	}
	if *arrays {
		fmt.Println("\nper-array LLC breakdown:")
		var names []string
		for n := range sink.acc {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return sink.acc[names[i]] > sink.acc[names[j]] })
		for _, n := range names {
			fmt.Printf("  %-18s acc=%9d miss=%9d (%.0f%%)\n",
				n, sink.acc[n], sink.miss[n], 100*float64(sink.miss[n])/float64(sink.acc[n]))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cachesim:", err)
	os.Exit(1)
}
