// Command graspd is the simulation daemon: it serves simulation jobs over
// HTTP, content-addresses every job spec, answers repeats from a
// persistent result store, and deduplicates identical in-flight work onto
// one execution (DESIGN.md Sec. 10; endpoint reference in docs/API.md).
//
// Usage:
//
//	graspd                          # listen on :8337, results in ./graspd-data
//	graspd -addr :9000 -workers 4   # bounded pool of 4 simulation workers
//	graspd -data /var/lib/graspd    # persistent result store location
//
// Endpoints: POST /jobs, GET /jobs/{id}, GET /results/{hash},
// GET /healthz, GET /metrics. Submit jobs with curl or `graspsim -remote`:
//
//	curl -s localhost:8337/jobs -d '{"kind":"single","graph":"lj","app":"PR","policy":"GRASP","scale":64,"wait":true}'
//	graspsim -remote localhost:8337 -graph lj -app PR -policy GRASP -scale 64
//
// On SIGINT/SIGTERM the daemon drains: /healthz flips to 503, new
// submissions are rejected, running simulations finish (up to
// -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"grasp/internal/graph"
	"grasp/internal/jobs"
	"grasp/internal/server"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	dataDir := flag.String("data", "graspd-data", "result-store directory (created if missing)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute,
		"how long shutdown waits for running simulations to finish")
	graphCacheMB := flag.Int64("graph-cache-mb", 0,
		"cap (MiB) on parsed file graphs retained by the registry AND per session; 0 = built-in defaults, negative = unlimited")
	traceCacheMB := flag.Int64("trace-cache-mb", 0,
		"cap (MiB) on cached LLC recordings' encoded bytes per session (bounds spill temp-disk usage); 0 = built-in default, negative = unlimited")
	flag.Parse()

	if *graphCacheMB != 0 {
		graph.SetFileCacheBudget(*graphCacheMB << 20)
	}
	if err := run(*addr, *dataDir, *workers, *drainTimeout, *graphCacheMB<<20, *traceCacheMB<<20); err != nil {
		fmt.Fprintln(os.Stderr, "graspd:", err)
		os.Exit(1)
	}
}

// run boots the store, manager and HTTP server, then blocks until a
// termination signal starts the drain sequence.
func run(addr, dataDir string, workers int, drainTimeout time.Duration, sessionBudget, traceBudget int64) error {
	store, err := jobs.OpenStore(dataDir)
	if err != nil {
		return err
	}
	mgr := jobs.NewManager(store, workers)
	if sessionBudget != 0 {
		mgr.SetSessionFileBudget(sessionBudget)
	}
	if traceBudget != 0 {
		mgr.SetSessionTraceBudget(traceBudget)
	}
	srv := &http.Server{Addr: addr, Handler: server.New(mgr)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("graspd: listening on %s (%d workers, %d stored results in %s)",
			addr, workers, store.Len(), dataDir)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("graspd: draining (finishing running jobs, up to %v)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Manager first: reject new work and let running simulations finish,
	// then close the listener once in-flight waiters have their answers.
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Printf("graspd: drain timed out: %v (abandoning running jobs)", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	log.Printf("graspd: drained, bye")
	return nil
}
