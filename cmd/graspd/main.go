// Command graspd is the simulation daemon: it serves simulation jobs over
// HTTP, content-addresses every job spec, answers repeats from a
// persistent result store, and deduplicates identical in-flight work onto
// one execution (DESIGN.md Sec. 10; endpoint reference in docs/API.md).
//
// Usage:
//
//	graspd                          # listen on :8337, results in ./graspd-data
//	graspd -addr :9000 -workers 4   # bounded pool of 4 simulation workers
//	graspd -data /var/lib/graspd    # persistent result store location
//
// Endpoints: POST /jobs, GET /jobs/{id}, DELETE /jobs/{id},
// GET /results/{hash}, GET /healthz, GET /readyz, GET /metrics. Submit
// jobs with curl or `graspsim -remote`:
//
//	curl -s localhost:8337/jobs -d '{"kind":"single","graph":"lj","app":"PR","policy":"GRASP","scale":64,"wait":true}'
//	graspsim -remote localhost:8337 -graph lj -app PR -policy GRASP -scale 64
//
// Accepted jobs are journaled (fsync'd) in the data directory, so a
// crashed or killed daemon re-enqueues and finishes its backlog on the
// next boot; -journal=false disables this. The queue depth is bounded
// (-max-queue) with 503 + Retry-After load shedding, and -rate/-rate-burst
// add per-client submission rate limiting (429). On SIGINT/SIGTERM the
// daemon drains: /readyz flips to 503 (while /healthz stays 200 — the
// liveness/readiness split), new submissions are rejected, running
// simulations finish (up to -drain-timeout, then they are preempted at
// the next cancellation point), and the process exits.
//
// Several daemons form a fault-tolerant cluster with -node-id and -peers
// (DESIGN.md Sec. 16): every job hash is owned by one node on a
// consistent-hash ring, submissions forward to the owner (failing over to
// its successor when the owner is down), completed results replicate to
// the successor, and GET /results federates misses from replica holders
// with checksum-verified fetches. Every node gets the SAME -peers list:
//
//	graspd -node-id a -peers a=http://host-a:8337,b=http://host-b:8337,c=http://host-c:8337
//
// Without -peers the daemon is the exact single-node service above —
// byte-identical responses, no cluster endpoints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/graph"
	"grasp/internal/jobs"
	"grasp/internal/server"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	dataDir := flag.String("data", "graspd-data", "result-store directory (created if missing)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute,
		"how long shutdown waits for running simulations to finish")
	graphCacheMB := flag.Int64("graph-cache-mb", 0,
		"cap (MiB) on parsed file graphs retained by the registry AND per session; 0 = built-in defaults, negative = unlimited")
	traceCacheMB := flag.Int64("trace-cache-mb", 0,
		"cap (MiB) on cached LLC recordings' encoded bytes per session (bounds spill temp-disk usage); 0 = built-in default, negative = unlimited")
	jobTimeout := flag.Duration("job-timeout", 0,
		"default wall-clock budget per job (jobs may set their own timeout_s); 0 = unlimited")
	maxQueue := flag.Int("max-queue", 1024,
		"max queued jobs before submissions are shed with 503; 0 = unbounded")
	rate := flag.Float64("rate", 0,
		"per-client POST /jobs rate limit in requests/second (429 beyond it); 0 = unlimited")
	rateBurst := flag.Int("rate-burst", 10, "rate-limit token-bucket burst depth")
	journal := flag.Bool("journal", true,
		"journal accepted jobs (fsync'd) so a crashed daemon re-enqueues its backlog on reboot")
	nodeID := flag.String("node-id", "",
		"this node's name in -peers (cluster mode; requires -peers)")
	peers := flag.String("peers", "",
		"static cluster member list as id=url,id=url,... (same list on every node); empty = single-node mode")
	probeInterval := flag.Duration("probe-interval", time.Second,
		"cluster health-probe period (peers are down after 3 consecutive failures)")
	hedge := flag.Duration("hedge", 150*time.Millisecond,
		"latency budget a federated result read gives the first replica before asking the next")
	flag.Parse()

	if *graphCacheMB != 0 {
		graph.SetFileCacheBudget(*graphCacheMB << 20)
	}
	cfg := daemonConfig{
		addr: *addr, dataDir: *dataDir, workers: *workers,
		drainTimeout: *drainTimeout,
		sessionBudget: *graphCacheMB << 20, traceBudget: *traceCacheMB << 20,
		jobTimeout: *jobTimeout, maxQueue: *maxQueue,
		rate: *rate, rateBurst: *rateBurst, journal: *journal,
		nodeID: *nodeID, peers: *peers,
		probeInterval: *probeInterval, hedge: *hedge,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "graspd:", err)
		os.Exit(1)
	}
}

// parsePeers parses the -peers list ("a=http://host:8337,b=...") into
// cluster members. Bare addresses without a scheme get "http://".
func parsePeers(s string) ([]cluster.Peer, error) {
	var out []cluster.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q is not id=url", part)
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		out = append(out, cluster.Peer{ID: strings.TrimSpace(id), Addr: strings.TrimRight(addr, "/")})
	}
	return out, nil
}

// daemonConfig carries the parsed flags into run.
type daemonConfig struct {
	addr          string
	dataDir       string
	workers       int
	drainTimeout  time.Duration
	sessionBudget int64
	traceBudget   int64
	jobTimeout    time.Duration
	maxQueue      int
	rate          float64
	rateBurst     int
	journal       bool
	nodeID        string
	peers         string
	probeInterval time.Duration
	hedge         time.Duration
}

// run boots the store, journal (recovering the previous process's
// unsettled backlog), manager and HTTP server, then blocks until a
// termination signal starts the drain sequence.
func run(cfg daemonConfig) error {
	store, err := jobs.OpenStore(cfg.dataDir)
	if err != nil {
		return err
	}
	mgr := jobs.NewManager(store, cfg.workers)
	if cfg.sessionBudget != 0 {
		mgr.SetSessionFileBudget(cfg.sessionBudget)
	}
	if cfg.traceBudget != 0 {
		mgr.SetSessionTraceBudget(cfg.traceBudget)
	}
	if cfg.jobTimeout > 0 {
		mgr.SetDefaultTimeout(cfg.jobTimeout)
	}
	if cfg.maxQueue > 0 {
		mgr.SetQueueLimit(cfg.maxQueue)
	}
	if cfg.journal {
		jn, pending, err := jobs.OpenJournal(cfg.dataDir)
		if err != nil {
			return err
		}
		defer jn.Close()
		if n := mgr.UseJournal(jn, pending); n > 0 {
			log.Printf("graspd: crash recovery re-enqueued %d journaled job(s)", n)
		}
	}
	opts := server.Options{
		RatePerSec: cfg.rate,
		Burst:      cfg.rateBurst,
		HedgeDelay: cfg.hedge,
	}
	if cfg.peers != "" || cfg.nodeID != "" {
		if cfg.peers == "" || cfg.nodeID == "" {
			return errors.New("cluster mode needs both -node-id and -peers")
		}
		members, err := parsePeers(cfg.peers)
		if err != nil {
			return err
		}
		cl, err := cluster.New(cluster.Config{
			Self:          cfg.nodeID,
			Peers:         members,
			ProbeInterval: cfg.probeInterval,
		})
		if err != nil {
			return err
		}
		opts.Cluster = cl
		defer cl.Stop() // enableCluster starts the prober
		log.Printf("graspd: cluster node %q among %d peers (RF=%d)",
			cfg.nodeID, len(members), cl.ReplicationFactor())
	}
	handler := server.NewWith(mgr, opts)
	srv := &http.Server{Addr: cfg.addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("graspd: listening on %s (%d workers, %d stored results in %s)",
			cfg.addr, cfg.workers, store.Len(), cfg.dataDir)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("graspd: draining (finishing running jobs, up to %v)", cfg.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	// Manager first: reject new work and let running simulations finish,
	// then close the listener once in-flight waiters have their answers.
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Printf("graspd: drain timed out: %v (abandoning running jobs)", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	log.Printf("graspd: drained, bye")
	return nil
}
