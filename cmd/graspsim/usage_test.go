package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the usage golden file")

// TestUsageGolden locks the full `graspsim -h` output — flag reference
// AND the examples section — against testdata/usage.golden, so the help
// text cannot silently drift from the implemented flags again (the
// pre-PR-3 usage omitted the single-run flags from its examples).
// Refresh after intentional changes with:
//
//	go test ./cmd/graspsim -run Usage -update
func TestUsageGolden(t *testing.T) {
	fs, _ := newFlags()
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	got := buf.Bytes()

	golden := filepath.Join("testdata", "usage.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to record): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("usage output drifted from %s (refresh with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestUsageMentionsSingleRunFlags asserts the examples section covers the
// single-run flags and the remote mode explicitly — the regression this
// PR's small-fix satellite addresses.
func TestUsageMentionsSingleRunFlags(t *testing.T) {
	for _, needle := range []string{"-graph", "-app", "-policy", "-remote", "-exp"} {
		if !bytes.Contains([]byte(usageExamples), []byte(needle)) {
			t.Errorf("usage examples do not mention %s", needle)
		}
	}
}
