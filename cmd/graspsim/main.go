// Command graspsim regenerates the paper's tables and figures, runs
// single simulations on arbitrary ingested graphs, and can offload either
// to a graspd daemon (-remote) that caches results across callers.
//
// Run `graspsim -h` for the flag reference and an examples section; the
// experiment ids follow the paper (table1, fig5, ... — `-list` shows all;
// DESIGN.md Sec. 4 is the index).
//
// Local experiments run through the concurrent engine (exp.RunAll): the
// union of their datapoints is simulated on a GOMAXPROCS worker pool,
// deduplicated, before the bodies render in paper order.
//
// With -graph, graspsim instead runs one (graph, reorder, app, policy)
// simulation: the argument is a dataset name or a path to a SNAP-style
// edge list (.txt/.el/.wel), a Matrix Market file (.mtx) or a GCSR binary
// (.gcsr); text formats are converted once and cached in a .gcsr sidecar.
//
// With -remote host:port, both modes become daemon requests: the job is
// content-addressed by the server, repeat runs are answered from its
// result store without re-simulating, and identical concurrent requests
// share one execution (see docs/API.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"grasp/internal/apps"
	"grasp/internal/exp"
	"grasp/internal/graph"
	"grasp/internal/jobs"
	"grasp/internal/server"
	"grasp/internal/sim"
	"grasp/internal/stats"
	"grasp/internal/trace"
)

// options carries every graspsim flag; newFlags binds them so main and
// the usage golden test construct the identical flag set.
type options struct {
	exp        string
	scale      uint
	list       bool
	benchJSON  string
	graphSpec  string
	app        string
	policy     string
	reorder    string
	fidelity   string
	sampleK    uint
	corun      string
	corunRatio string
	remote     string
	priority   int
	timeout    time.Duration
	cpuprofile string
	memprofile string
}

// usageExamples is the examples section of `graspsim -h`, locked by the
// golden test in usage_test.go (refresh with `go test ./cmd/graspsim
// -run Usage -update` after editing).
const usageExamples = `Examples:
  graspsim -exp fig5                   reproduce one artifact at full scale
  graspsim -exp all -scale 8           everything at 1/8 scale
  graspsim -list                       list experiment ids
  graspsim -exp all -bench-json auto   record wall-clock to BENCH_<date>.json

  graspsim -graph tw -app PR -policy GRASP          one simulation, paper dataset
  graspsim -graph web-Google.txt -app KCore -policy GRASP
                                       one simulation on an ingested graph file
                                       (.txt/.el/.wel/.mtx/.gcsr; converted once,
                                       cached in a .gcsr sidecar)

  graspsim -remote localhost:8337 -graph lj -app PR -policy GRASP -scale 64
                                       run via a graspd daemon: repeat runs are
                                       served from its result store
  graspsim -remote localhost:8337 -exp fig2 -scale 64
                                       experiments work remotely too

  graspsim -graph lj -app PR -corun BFS,TC -policy GRASP
                                       co-run: PR, BFS and TC interleaved into one
                                       shared LLC; prints per-app miss attribution,
                                       weighted speedup and unfairness
  graspsim -graph lj -app PR -corun PR -corun-ratio 2,1
                                       two PR instances at a 2:1 interleave ratio

  graspsim -graph tw -app PR -policy GRASP -fidelity sampled -sample-k 16
                                       fast tier: simulate 1/16 of the LLC sets,
                                       print the estimated miss ratio with a 95% CI
  graspsim -exp fig2 -scale 16 -fidelity sampled
                                       sampled sweep of an experiment's datapoints
                                       (estimates with error bars, not paper numbers)

  graspsim -exp fig5 -scale 8 -cpuprofile cpu.pprof -memprofile mem.pprof
                                       profile the engine (go tool pprof cpu.pprof)
`

// newFlags builds the graspsim flag set. Factored out of main so the
// usage golden test renders exactly what `graspsim -h` prints.
func newFlags() (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet("graspsim", flag.ExitOnError)
	fs.StringVar(&o.exp, "exp", "all", "experiment id, comma-separated list, or 'all'")
	fs.UintVar(&o.scale, "scale", 1, "dataset scale divisor (1 = full reproduction scale)")
	fs.BoolVar(&o.list, "list", false, "list experiment ids and exit")
	fs.StringVar(&o.benchJSON, "bench-json", "",
		"record wall-clock per experiment to this JSON file ('auto' = BENCH_<date>.json)")
	fs.StringVar(&o.graphSpec, "graph", "",
		"run ONE simulation on this dataset name or graph file (.txt/.el/.wel/.mtx/.gcsr) instead of experiments")
	fs.StringVar(&o.app, "app", "PR",
		fmt.Sprintf("-graph mode: application, one of %v", apps.ExtendedNames()))
	fs.StringVar(&o.policy, "policy", "GRASP", "-graph mode: LLC policy (see sim.Policies)")
	fs.StringVar(&o.reorder, "reorder", "DBG", "-graph mode: reordering technique")
	fs.StringVar(&o.fidelity, "fidelity", "full",
		"simulation tier: 'full' (exact) or 'sampled' (simulate 1/K of the LLC sets, report estimates with a 95% CI)")
	fs.UintVar(&o.sampleK, "sample-k", 0,
		"sampled fidelity: set-sampling divisor K, a power of two (0 = default 16); 1 is exact")
	fs.StringVar(&o.corun, "corun", "",
		"-graph mode: co-run -app with these comma-separated apps in one shared LLC and report per-app interference metrics")
	fs.StringVar(&o.corunRatio, "corun-ratio", "",
		"-corun mode: comma-separated round-robin weights, one per app incl. -app itself (default uniform)")
	fs.StringVar(&o.remote, "remote", "",
		"send the work to the graspd daemon at this address (host:port or URL) instead of simulating locally; a comma-separated list names a cluster and rotates to the next node on 5xx or transport errors")
	fs.IntVar(&o.priority, "priority", 0, "-remote mode: job priority (higher runs first)")
	fs.DurationVar(&o.timeout, "timeout", 0,
		"-remote mode: per-job wall-clock budget (e.g. 10m); the daemon cancels the job beyond it. 0 = server default")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "",
		"write a CPU profile of the run to this `file` (inspect with go tool pprof)")
	fs.StringVar(&o.memprofile, "memprofile", "",
		"write an end-of-run heap profile to this `file` (inspect with go tool pprof)")
	fs.Usage = func() {
		w := fs.Output()
		fmt.Fprintf(w, "Usage: graspsim [flags]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(w, "\n%s", usageExamples)
	}
	return fs, o
}

// benchEntry is one experiment's wall-clock in the -bench-json record.
type benchEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// benchRecord is the perf-trajectory snapshot written by -bench-json.
type benchRecord struct {
	Date        string  `json:"date"`
	Scale       uint    `json:"scale"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	PrefetchSec float64 `json:"prefetch_seconds"` // parallel fan-out phase (RunAll)
	// SampleK and Skip are set by sampled-tier sweeps only: the sampling
	// divisor the sweep ran at and the codec-layer skip accounting of its
	// sampled replays, so benchcmp runs compare like-for-like K sweeps and
	// the decode-bound retreat is visible in BENCH files.
	SampleK uint32      `json:"sample_k,omitempty"`
	Skip    *skipRecord `json:"skip,omitempty"`
	// Phases breaks the engine time down by phase (load / reorder /
	// record / replay / direct from exp.Session.PhaseSeconds, plus
	// "render" = the sum of experiment body times), so a regression
	// localizes to a phase instead of only a per-experiment total. Engine
	// phases are worker-cumulative: on a multi-core run they can sum past
	// the prefetch wall-clock.
	Phases       map[string]float64 `json:"phases,omitempty"`
	Experiments  []benchEntry       `json:"experiments"` // per-body render time
	TotalSeconds float64            `json:"total_seconds"`
}

// skipRecord is trace.SkipReport in the -bench-json wire shape.
type skipRecord struct {
	ChunksSkipped     uint64  `json:"chunks_skipped"`
	ChunksDecoded     uint64  `json:"chunks_decoded"`
	BytesSkipped      uint64  `json:"bytes_skipped"`
	BytesDecoded      uint64  `json:"bytes_decoded"`
	AccessesSkipped   int64   `json:"accesses_skipped"`
	AccessesPruned    int64   `json:"accesses_pruned"`
	AccessesDelivered int64   `json:"accesses_delivered"`
	SkipRatio         float64 `json:"skip_ratio"`
	ChunkSkipRatio    float64 `json:"chunk_skip_ratio"`
}

// newSkipRecord converts a session's skip accounting for -bench-json.
func newSkipRecord(rep trace.SkipReport) *skipRecord {
	return &skipRecord{
		ChunksSkipped:     rep.ChunksSkipped,
		ChunksDecoded:     rep.ChunksDecoded,
		BytesSkipped:      rep.BytesSkipped,
		BytesDecoded:      rep.BytesDecoded,
		AccessesSkipped:   rep.AccessesSkipped,
		AccessesPruned:    rep.AccessesPruned,
		AccessesDelivered: rep.AccessesDelivered,
		SkipRatio:         rep.SkipRatio(),
		ChunkSkipRatio:    rep.ChunkSkipRatio(),
	}
}

func main() {
	fs, o := newFlags()
	fs.Parse(os.Args[1:])
	// The profiling flags need every exit path to flush their files, so
	// the body runs in its own frame (os.Exit skips defers).
	os.Exit(realMain(o))
}

// startProfiles honors -cpuprofile/-memprofile; the returned stop function
// (never nil) flushes both and must run before the process exits.
func startProfiles(o *options) (stop func(), err error) {
	stop = func() {}
	var cpuFile *os.File
	if o.cpuprofile != "" {
		cpuFile, err = os.Create(o.cpuprofile)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return stop, err
		}
	}
	stop = func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "graspsim: CPU profile written to %s\n", o.cpuprofile)
		}
		if o.memprofile != "" {
			f, err := os.Create(o.memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "graspsim:", err)
				return
			}
			runtime.GC() // materialize the end-of-run live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "graspsim:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "graspsim: heap profile written to %s\n", o.memprofile)
		}
	}
	return stop, nil
}

// realMain is the flag-parsed body of the command; its return value is the
// process exit code.
func realMain(o *options) int {
	// -list is always local and instant; honoring it before -remote keeps
	// `graspsim -remote host -list` from submitting every experiment.
	if o.list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return 0
	}

	switch o.fidelity {
	case jobs.FidelityFull:
		if o.sampleK != 0 {
			fmt.Fprintln(os.Stderr, "graspsim: -sample-k requires -fidelity sampled")
			return 1
		}
	case jobs.FidelitySampled:
		if o.sampleK == 0 {
			o.sampleK = jobs.DefaultSampleK
		}
		if o.sampleK&(o.sampleK-1) != 0 {
			fmt.Fprintf(os.Stderr, "graspsim: -sample-k %d is not a power of two\n", o.sampleK)
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "graspsim: unknown -fidelity %q (want %q or %q)\n",
			o.fidelity, jobs.FidelityFull, jobs.FidelitySampled)
		return 1
	}

	if o.corun != "" || o.corunRatio != "" {
		switch {
		case o.corun == "":
			fmt.Fprintln(os.Stderr, "graspsim: -corun-ratio requires -corun")
			return 1
		case o.graphSpec == "":
			fmt.Fprintln(os.Stderr, "graspsim: -corun requires -graph (the co-runners share one dataset)")
			return 1
		case o.fidelity == jobs.FidelitySampled:
			fmt.Fprintln(os.Stderr, "graspsim: -corun runs at full fidelity only")
			return 1
		}
	}

	stopProfiles, err := startProfiles(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graspsim:", err)
		return 1
	}
	defer stopProfiles()

	if o.remote != "" {
		// -bench-json records the LOCAL engine's phase split; a remote
		// daemon's timing is not observable per phase, so silently writing
		// nothing (or misleading client-side numbers) is worse than
		// refusing.
		if o.benchJSON != "" {
			fmt.Fprintln(os.Stderr, "graspsim: -bench-json is not supported with -remote (benchmarks measure the local engine)")
			return 1
		}
		if err := runRemote(o, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "graspsim:", err)
			return 1
		}
		return 0
	}

	if o.graphSpec != "" {
		var err error
		switch {
		case o.corun != "":
			err = runSingleCorun(o)
		case o.fidelity == jobs.FidelitySampled:
			err = runSingleSampled(o)
		default:
			err = runSingle(o.graphSpec, o.app, o.policy, o.reorder, uint32(o.scale))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "graspsim:", err)
			return 1
		}
		return 0
	}

	if o.fidelity == jobs.FidelitySampled {
		if err := runSampledSweep(o, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "graspsim:", err)
			return 1
		}
		return 0
	}

	cfg := exp.DefaultConfig()
	if o.scale > 1 {
		cfg = exp.ScaledConfig(uint32(o.scale))
	}
	fmt.Printf("# GRASP reproduction — scale 1/%d, LLC %dKB, L1 %dKB, L2 %dKB\n\n",
		o.scale, cfg.HCfg.LLC.SizeBytes>>10, cfg.HCfg.L1.SizeBytes>>10, cfg.HCfg.L2.SizeBytes>>10)
	session := exp.NewSession(cfg)

	exps, err := selectExperiments(o.exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graspsim:", err)
		return 1
	}

	record := benchRecord{
		Date:       time.Now().Format("2006-01-02"),
		Scale:      o.scale,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	start := time.Now()
	obs := exp.RunObserver{
		Before: func(e exp.Experiment) {
			// First Before fires after the shared prefetch phase completes.
			if record.PrefetchSec == 0 {
				record.PrefetchSec = time.Since(start).Seconds()
			}
			fmt.Printf("## %s — %s\n\n", e.ID, e.Title)
		},
		After: func(e exp.Experiment, elapsed time.Duration) {
			record.Experiments = append(record.Experiments,
				benchEntry{ID: e.ID, Seconds: elapsed.Seconds()})
			fmt.Printf("(%s in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		},
	}
	if err := exp.RunAll(session, exps, os.Stdout, obs); err != nil {
		fmt.Fprintln(os.Stderr, "graspsim:", err)
		return 1
	}
	record.TotalSeconds = time.Since(start).Seconds()
	record.Phases = session.PhaseSeconds()
	var render float64
	for _, e := range record.Experiments {
		render += e.Seconds
	}
	record.Phases["render"] = render

	if o.benchJSON != "" {
		if err := writeBenchRecord(o.benchJSON, record); err != nil {
			fmt.Fprintln(os.Stderr, "graspsim:", err)
			return 1
		}
	}
	return 0
}

// writeBenchRecord persists one -bench-json snapshot ("auto" derives the
// dated default filename).
func writeBenchRecord(path string, record benchRecord) error {
	if path == "auto" {
		path = fmt.Sprintf("BENCH_%s.json", record.Date)
	}
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "graspsim: wall-clock record written to %s\n", path)
	return nil
}

// selectExperiments resolves the -exp flag value to experiment structs.
func selectExperiments(spec string) ([]exp.Experiment, error) {
	if spec == "all" {
		return exp.All(), nil
	}
	var out []exp.Experiment
	for _, id := range strings.Split(spec, ",") {
		e, err := exp.ByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// runRemote sends the requested work to a graspd daemon and renders the
// returned outcomes: the single-run metrics block in -graph mode, or each
// experiment's stored body in -exp mode.
func runRemote(o *options, w io.Writer) error {
	client := server.NewClient(o.remote)
	timeoutS := o.timeout.Seconds()
	if o.graphSpec != "" {
		spec := jobs.Spec{Kind: jobs.KindSingle, Graph: o.graphSpec, App: o.app,
			Policy: o.policy, Reorder: o.reorder, Scale: uint32(o.scale), TimeoutS: timeoutS}
		if o.fidelity == jobs.FidelitySampled {
			// Only spelled out for the sampled tier: a full-fidelity request
			// keeps its pre-fidelity wire shape (and content address).
			spec.Fidelity, spec.SampleK = o.fidelity, uint32(o.sampleK)
		}
		if o.corun != "" {
			// Likewise only for co-run requests: non-co-run specs keep their
			// pre-co-run wire shape and content address.
			corunApps, ratio, err := parseCorun(o)
			if err != nil {
				return err
			}
			spec.CorunApps, spec.CorunRatio = corunApps, ratio
		}
		outcome, err := client.RunSync(spec, o.priority)
		if err != nil {
			return err
		}
		if outcome.Corun != nil {
			r := *outcome.Corun
			fmt.Fprintf(w, "co-run: %s on %s reorder=%s policy=%s (remote, %.2fs simulated)\n",
				strings.Join(append([]string{o.app}, spec.CorunApps...), "+"),
				r.Workload, o.reorder, o.policy, outcome.Elapsed)
			printCorunMetrics(w, r)
			return nil
		}
		if outcome.Sampled != nil {
			r := *outcome.Sampled
			fmt.Fprintf(w, "workload: %s app=%s reorder=%s policy=%s (remote sampled 1/%d, %.2fs simulated)\n",
				r.Workload, o.app, o.reorder, o.policy, r.SampleK, outcome.Elapsed)
			printSampledMetrics(w, r)
			return nil
		}
		if outcome.Single == nil {
			return fmt.Errorf("daemon returned no single-run metrics for %s", outcome.Hash)
		}
		fmt.Fprintf(w, "workload: %s app=%s reorder=%s policy=%s (remote, %.2fs simulated)\n",
			outcome.Single.Workload, o.app, o.reorder, o.policy, outcome.Elapsed)
		printMetrics(w, *outcome.Single)
		return nil
	}
	if o.fidelity == jobs.FidelitySampled {
		return fmt.Errorf("-fidelity sampled applies to single runs on the daemon (-graph); experiment sweeps sample locally only")
	}
	exps, err := selectExperiments(o.exp)
	if err != nil {
		return err
	}
	// Submit everything fire-and-forget first so the daemon's worker pool
	// runs the experiments concurrently (its session dedups shared
	// datapoints), then collect the outcomes in paper order — RunSync on
	// an in-flight job joins it rather than resubmitting.
	for _, e := range exps {
		spec := jobs.Spec{Kind: jobs.KindExperiment, Exp: e.ID, Scale: uint32(o.scale), TimeoutS: timeoutS}
		if _, err := client.Submit(spec, o.priority); err != nil {
			return err
		}
	}
	for _, e := range exps {
		spec := jobs.Spec{Kind: jobs.KindExperiment, Exp: e.ID, Scale: uint32(o.scale), TimeoutS: timeoutS}
		outcome, err := client.RunSync(spec, o.priority)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
		fmt.Fprint(w, outcome.Output)
		fmt.Fprintf(w, "(%s simulated in %.2fs, finished %s)\n\n",
			e.ID, outcome.Elapsed, outcome.Finished.Format(time.RFC3339))
	}
	return nil
}

// runSingle executes one (graph, reorder, app, policy) simulation — the
// -graph mode, for ingested real-world datasets as much as for the paper's
// synthetic ones — and prints the per-level cache metrics.
func runSingle(spec, appName, polName, reorderName string, scale uint32) error {
	ds, err := graph.Resolve(spec)
	if err != nil {
		return err
	}
	cfg := exp.DefaultConfig()
	if scale > 1 {
		cfg = exp.ScaledConfig(scale)
		if ds.Kind == graph.KindFile {
			fmt.Fprintf(os.Stderr,
				"graspsim: note: -scale %d shrinks only the cache hierarchy; the file graph always loads at full size\n", scale)
		}
	}
	w, err := sim.PrepareWorkload(ds, reorderName, appName == "SSSP", cfg.ScaleDiv)
	if err != nil {
		return err
	}
	r, err := sim.Run(w, sim.Spec{App: appName, Layout: apps.LayoutMerged,
		Policy: polName, HCfg: cfg.HCfg})
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s app=%s reorder=%s policy=%s\n", ds.Name, appName, reorderName, polName)
	fmt.Printf("graph:    %v\n", w.Graph)
	printMetrics(os.Stdout, r)
	return nil
}

// runSingleSampled is -graph mode on the set-sampled fast tier: the app is
// recorded once behind the exact L1/L2 filter, then only 1/K of the LLC
// sets are replayed and the whole-cache miss metrics are estimated with a
// confidence interval (DESIGN.md Sec. 14).
func runSingleSampled(o *options) error {
	ds, err := graph.Resolve(o.graphSpec)
	if err != nil {
		return err
	}
	cfg := exp.DefaultConfig()
	if o.scale > 1 {
		cfg = exp.ScaledConfig(uint32(o.scale))
		if ds.Kind == graph.KindFile {
			fmt.Fprintf(os.Stderr,
				"graspsim: note: -scale %d shrinks only the cache hierarchy; the file graph always loads at full size\n", o.scale)
		}
	}
	session := exp.NewSession(cfg)
	r, err := session.SampledResult(o.graphSpec, o.reorder, o.app, apps.LayoutMerged, o.policy, uint32(o.sampleK))
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s app=%s reorder=%s policy=%s (sampled 1/%d)\n",
		ds.Name, o.app, o.reorder, o.policy, r.SampleK)
	printSampledMetrics(os.Stdout, r)
	if skip := session.SampledSkip(); skip.ChunksSkipped+skip.ChunksDecoded > 0 {
		fmt.Printf("codec skip: %.1f%% of recorded accesses never materialized (%d chunks skipped whole, %d decoded)\n",
			100*skip.SkipRatio(), skip.ChunksSkipped, skip.ChunksDecoded)
	}
	return nil
}

// runSampledSweep is -exp mode on the fast tier: every result datapoint of
// the selected experiments is estimated from a set-sampled replay and
// printed with its error bars. With -bench-json the same datapoints are
// then replayed at full fidelity from the (now warm) recordings, so the
// record captures sampled vs full replay time for the sweep.
func runSampledSweep(o *options, w io.Writer) error {
	exps, err := selectExperiments(o.exp)
	if err != nil {
		return err
	}
	cfg := exp.DefaultConfig()
	if o.scale > 1 {
		cfg = exp.ScaledConfig(uint32(o.scale))
	}
	session := exp.NewSession(cfg)
	k := uint32(o.sampleK)
	fmt.Fprintf(w, "# GRASP sampled fast tier — scale 1/%d, ~1/%d of %d LLC sets per estimate\n\n",
		o.scale, k, cfg.HCfg.LLC.Sets())
	record := benchRecord{
		Date:       time.Now().Format("2006-01-02"),
		Scale:      o.scale,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		SampleK:    k,
	}
	start := time.Now()
	var sweep []exp.Datapoint
	seen := make(map[exp.Datapoint]bool)
	for _, e := range exps {
		var points []exp.Datapoint
		if e.Points != nil {
			for _, p := range e.Points() {
				if !p.Trace {
					points = append(points, p)
				}
			}
		}
		if len(points) == 0 {
			fmt.Fprintf(w, "## %s — %s\n\n(declares no result datapoints; run it at full fidelity)\n\n", e.ID, e.Title)
			continue
		}
		expStart := time.Now()
		fmt.Fprintf(w, "## %s — %s (sampled estimates)\n\n", e.ID, e.Title)
		t := stats.NewTable("Dataset", "Reorder", "App", "Policy", "EstMiss%", "±CI95", "Sets")
		for _, p := range points {
			r, err := session.SampledResult(p.DS, p.Reorder, p.App, p.Layout, p.Policy, k)
			if err != nil {
				return err
			}
			t.AddRow(p.DS, p.Reorder, p.App, p.Policy,
				fmt.Sprintf("%.2f", 100*r.Est.MissRatio),
				fmt.Sprintf("%.2f", 100*r.Est.CI95),
				fmt.Sprintf("%d/%d", r.Est.SampledSets, r.Est.TotalSets))
			if !seen[p] {
				seen[p] = true
				sweep = append(sweep, p)
			}
		}
		fmt.Fprintln(w, t)
		elapsed := time.Since(expStart)
		record.Experiments = append(record.Experiments,
			benchEntry{ID: e.ID + "-sampled", Seconds: elapsed.Seconds()})
		fmt.Fprintf(w, "(%s sampled in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
	}
	record.TotalSeconds = time.Since(start).Seconds()
	if o.benchJSON == "" {
		return nil
	}
	// Full-fidelity pass over the identical datapoints: every group's
	// recording is warm, so the full results ride the replay path and the
	// session's phase counters isolate full decode+replay time against the
	// sampled pass's — the sampled-tier speedup the bench sweep tracks.
	for _, p := range sweep {
		if _, err := session.Result(p.DS, p.Reorder, p.App, p.Layout, p.Policy); err != nil {
			return err
		}
	}
	phases := session.PhaseSeconds()
	record.Phases = phases
	record.Experiments = append(record.Experiments,
		benchEntry{ID: "replay-sampled", Seconds: phases["sampled"]},
		benchEntry{ID: "replay-full", Seconds: phases["replay"]})
	skip := session.SampledSkip()
	record.Skip = newSkipRecord(skip)
	if phases["sampled"] > 0 {
		fmt.Fprintf(os.Stderr, "graspsim: replay time for %d datapoints: sampled %.3fs vs full %.3fs (%.1fx)\n",
			len(sweep), phases["sampled"], phases["replay"], phases["replay"]/phases["sampled"])
		fmt.Fprintf(os.Stderr, "graspsim: codec skip: %.1f%% of recorded accesses never materialized (%d chunks skipped whole, %d decoded)\n",
			100*skip.SkipRatio(), skip.ChunksSkipped, skip.ChunksDecoded)
	}
	return writeBenchRecord(o.benchJSON, record)
}

// parseCorun resolves the -corun/-corun-ratio flags into the co-runner
// list (excluding -app itself, matching the jobs wire shape) and the
// weights of the whole mix (nil = uniform).
func parseCorun(o *options) (corunApps []string, ratio []int, err error) {
	for _, a := range strings.Split(o.corun, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, nil, fmt.Errorf("-corun has an empty app name")
		}
		corunApps = append(corunApps, a)
	}
	if o.corunRatio == "" {
		return corunApps, nil, nil
	}
	for _, s := range strings.Split(o.corunRatio, ",") {
		var w int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &w); err != nil || w < 1 {
			return nil, nil, fmt.Errorf("-corun-ratio weight %q: want an integer >= 1", s)
		}
		ratio = append(ratio, w)
	}
	if len(ratio) != 1+len(corunApps) {
		return nil, nil, fmt.Errorf("-corun-ratio has %d weights for %d apps (include -app itself)",
			len(ratio), 1+len(corunApps))
	}
	return corunApps, ratio, nil
}

// runSingleCorun is -graph mode with -corun: the mix's apps are each
// recorded once, interleaved into one shared LLC under -policy, and scored
// against their own solo replays (DESIGN.md Sec. 15).
func runSingleCorun(o *options) error {
	ds, err := graph.Resolve(o.graphSpec)
	if err != nil {
		return err
	}
	corunApps, ratio, err := parseCorun(o)
	if err != nil {
		return err
	}
	mix := append([]string{o.app}, corunApps...)
	cfg := exp.DefaultConfig()
	if o.scale > 1 {
		cfg = exp.ScaledConfig(uint32(o.scale))
		if ds.Kind == graph.KindFile {
			fmt.Fprintf(os.Stderr,
				"graspsim: note: -scale %d shrinks only the cache hierarchy; the file graph always loads at full size\n", o.scale)
		}
	}
	session := exp.NewSession(cfg)
	r, err := session.CorunResult(o.graphSpec, o.reorder, mix, ratio, apps.LayoutMerged, o.policy)
	if err != nil {
		return err
	}
	fmt.Printf("co-run: %s on %s reorder=%s policy=%s\n",
		strings.Join(mix, "+"), ds.Name, o.reorder, o.policy)
	printCorunMetrics(os.Stdout, r)
	return nil
}

// printCorunMetrics renders one co-run: per-app attribution rows against
// their solo baselines, the shared-LLC totals, and the mix's fairness
// summary.
func printCorunMetrics(w io.Writer, r sim.CorunResult) {
	t := stats.NewTable("App", "Wt", "LLCAcc", "LLCMiss", "Miss%", "SoloMiss%", "Delta", "Slowdown")
	for _, a := range r.Apps {
		t.AddRow(a.App, fmt.Sprint(a.Weight),
			fmt.Sprint(a.LLC.Accesses()), fmt.Sprint(a.LLC.Misses),
			fmt.Sprintf("%.2f", 100*a.LLC.MissRatio()),
			fmt.Sprintf("%.2f", 100*a.Solo.LLC.MissRatio()),
			fmt.Sprintf("%+.2f", 100*a.MissRateDelta()),
			fmt.Sprintf("%.3f", a.Slowdown))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintf(w, "shared LLC: %d accesses, %d misses (%.1f%%), %d bypasses, %d writebacks\n",
		r.LLC.Accesses(), r.LLC.Misses, 100*r.LLC.MissRatio(), r.LLC.Bypasses, r.LLC.Writebacks)
	fmt.Fprintf(w, "weighted speedup: %.3f (ideal %d)   unfairness: %.3f\n",
		r.WeightedSpeedup, len(r.Apps), r.Unfairness)
}

// printSampledMetrics renders a set-sampled estimate: exact upper levels,
// observed sampled-set counts, and the extrapolated LLC miss metrics with
// their 95% confidence interval.
func printSampledMetrics(w io.Writer, r sim.SampledResult) {
	fmt.Fprintf(w, "L1:  %9d accesses, %9d misses (%.1f%%)\n",
		r.L1.Accesses(), r.L1.Misses, 100*r.L1.MissRatio())
	fmt.Fprintf(w, "L2:  %9d accesses, %9d misses (%.1f%%)\n",
		r.L2.Accesses(), r.L2.Misses, 100*r.L2.MissRatio())
	fmt.Fprintf(w, "LLC: sampled %d/%d sets: %d accesses, %d misses observed\n",
		r.Est.SampledSets, r.Est.TotalSets, r.Est.SampledAccesses, r.Est.SampledMisses)
	fmt.Fprintf(w, "LLC estimate: %.2f%% ± %.2f%% miss ratio (95%% CI), ~%.0f of %d accesses\n",
		100*r.Est.MissRatio, 100*r.Est.CI95, r.Est.EstMisses, r.Est.TotalAccesses)
	fmt.Fprintf(w, "estimated memory time: %.0f\n", r.EstCycles)
}

// printMetrics renders the per-level cache metrics of one simulation.
func printMetrics(w io.Writer, r sim.Result) {
	fmt.Fprintf(w, "L1:  %9d accesses, %9d misses (%.1f%%)\n",
		r.L1.Accesses(), r.L1.Misses, 100*r.L1.MissRatio())
	fmt.Fprintf(w, "L2:  %9d accesses, %9d misses (%.1f%%)\n",
		r.L2.Accesses(), r.L2.Misses, 100*r.L2.MissRatio())
	fmt.Fprintf(w, "LLC: %9d accesses, %9d misses (%.1f%%), %d bypasses, %d writebacks\n",
		r.LLC.Accesses(), r.LLC.Misses, 100*r.LLC.MissRatio(), r.LLC.Bypasses, r.LLC.Writebacks)
	fmt.Fprintf(w, "modeled memory time: %.0f\n", r.Cycles)
}
