// Command graspsim regenerates the paper's tables and figures.
//
// Usage:
//
//	graspsim -exp fig5            # one experiment at full scale
//	graspsim -exp all -scale 8    # everything at 1/8 scale
//	graspsim -list                # list experiment ids
//
// Experiment ids follow the paper: table1, table4, fig2, fig5, fig6, fig7,
// fig8, fig9, fig10a, fig10b, fig11, table7, plus the extra "noreorder"
// study. Results at full scale are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"grasp/internal/exp"
)

func main() {
	expID := flag.String("exp", "all", "experiment id, comma-separated list, or 'all'")
	scale := flag.Uint("scale", 1, "dataset scale divisor (1 = full reproduction scale)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := exp.DefaultConfig()
	if *scale > 1 {
		cfg = exp.ScaledConfig(uint32(*scale))
	}
	fmt.Printf("# GRASP reproduction — scale 1/%d, LLC %dKB, L1 %dKB, L2 %dKB\n\n",
		*scale, cfg.HCfg.LLC.SizeBytes>>10, cfg.HCfg.L1.SizeBytes>>10, cfg.HCfg.L2.SizeBytes>>10)
	session := exp.NewSession(cfg)

	run := func(e exp.Experiment) {
		fmt.Printf("## %s — %s\n\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(session, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "graspsim: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *expID == "all" {
		for _, e := range exp.All() {
			run(e)
		}
		return
	}
	for _, id := range strings.Split(*expID, ",") {
		e, err := exp.ByID(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, "graspsim:", err)
			os.Exit(1)
		}
		run(e)
	}
}
