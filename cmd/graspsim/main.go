// Command graspsim regenerates the paper's tables and figures.
//
// Usage:
//
//	graspsim -exp fig5            # one experiment at full scale
//	graspsim -exp all -scale 8    # everything at 1/8 scale
//	graspsim -list                # list experiment ids
//	graspsim -exp all -bench-json auto   # also record wall-clock to BENCH_<date>.json
//
// Experiment ids follow the paper: table1, table4, fig2, fig5, fig6, fig7,
// fig8, fig9, fig10a, fig10b, fig11, table7, plus extra studies (-list
// shows all; DESIGN.md Sec. 4 is the index).
//
// Experiments run through the concurrent engine (exp.RunAll): the union of
// their datapoints is simulated on a GOMAXPROCS worker pool, deduplicated,
// before the bodies render in paper order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"grasp/internal/exp"
)

// benchEntry is one experiment's wall-clock in the -bench-json record.
type benchEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// benchRecord is the perf-trajectory snapshot written by -bench-json.
type benchRecord struct {
	Date         string       `json:"date"`
	Scale        uint         `json:"scale"`
	GoMaxProcs   int          `json:"gomaxprocs"`
	PrefetchSec  float64      `json:"prefetch_seconds"` // parallel fan-out phase (RunAll)
	Experiments  []benchEntry `json:"experiments"`      // per-body render time
	TotalSeconds float64      `json:"total_seconds"`
}

func main() {
	expID := flag.String("exp", "all", "experiment id, comma-separated list, or 'all'")
	scale := flag.Uint("scale", 1, "dataset scale divisor (1 = full reproduction scale)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	benchJSON := flag.String("bench-json", "",
		"record wall-clock per experiment to this JSON file ('auto' = BENCH_<date>.json)")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := exp.DefaultConfig()
	if *scale > 1 {
		cfg = exp.ScaledConfig(uint32(*scale))
	}
	fmt.Printf("# GRASP reproduction — scale 1/%d, LLC %dKB, L1 %dKB, L2 %dKB\n\n",
		*scale, cfg.HCfg.LLC.SizeBytes>>10, cfg.HCfg.L1.SizeBytes>>10, cfg.HCfg.L2.SizeBytes>>10)
	session := exp.NewSession(cfg)

	var exps []exp.Experiment
	if *expID == "all" {
		exps = exp.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "graspsim:", err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}

	record := benchRecord{
		Date:       time.Now().Format("2006-01-02"),
		Scale:      *scale,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	start := time.Now()
	obs := exp.RunObserver{
		Before: func(e exp.Experiment) {
			// First Before fires after the shared prefetch phase completes.
			if record.PrefetchSec == 0 {
				record.PrefetchSec = time.Since(start).Seconds()
			}
			fmt.Printf("## %s — %s\n\n", e.ID, e.Title)
		},
		After: func(e exp.Experiment, elapsed time.Duration) {
			record.Experiments = append(record.Experiments,
				benchEntry{ID: e.ID, Seconds: elapsed.Seconds()})
			fmt.Printf("(%s in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		},
	}
	if err := exp.RunAll(session, exps, os.Stdout, obs); err != nil {
		fmt.Fprintln(os.Stderr, "graspsim:", err)
		os.Exit(1)
	}
	record.TotalSeconds = time.Since(start).Seconds()

	if *benchJSON != "" {
		path := *benchJSON
		if path == "auto" {
			path = fmt.Sprintf("BENCH_%s.json", record.Date)
		}
		data, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "graspsim:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "graspsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graspsim: wall-clock record written to %s\n", path)
	}
}
