// Command graspsim regenerates the paper's tables and figures, and runs
// single simulations on arbitrary ingested graphs.
//
// Usage:
//
//	graspsim -exp fig5            # one experiment at full scale
//	graspsim -exp all -scale 8    # everything at 1/8 scale
//	graspsim -list                # list experiment ids
//	graspsim -exp all -bench-json auto   # also record wall-clock to BENCH_<date>.json
//	graspsim -graph web-Google.txt -app KCore -policy GRASP   # one run on a real graph
//
// Experiment ids follow the paper: table1, table4, fig2, fig5, fig6, fig7,
// fig8, fig9, fig10a, fig10b, fig11, table7, plus extra studies (-list
// shows all; DESIGN.md Sec. 4 is the index).
//
// Experiments run through the concurrent engine (exp.RunAll): the union of
// their datapoints is simulated on a GOMAXPROCS worker pool, deduplicated,
// before the bodies render in paper order.
//
// With -graph, graspsim instead runs one (graph, reorder, app, policy)
// simulation: the argument is a dataset name or a path to a SNAP-style
// edge list (.txt/.el/.wel), a Matrix Market file (.mtx) or a GCSR binary
// (.gcsr); text formats are converted once and cached in a .gcsr sidecar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"grasp/internal/apps"
	"grasp/internal/exp"
	"grasp/internal/graph"
	"grasp/internal/sim"
)

// benchEntry is one experiment's wall-clock in the -bench-json record.
type benchEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// benchRecord is the perf-trajectory snapshot written by -bench-json.
type benchRecord struct {
	Date         string       `json:"date"`
	Scale        uint         `json:"scale"`
	GoMaxProcs   int          `json:"gomaxprocs"`
	PrefetchSec  float64      `json:"prefetch_seconds"` // parallel fan-out phase (RunAll)
	Experiments  []benchEntry `json:"experiments"`      // per-body render time
	TotalSeconds float64      `json:"total_seconds"`
}

func main() {
	expID := flag.String("exp", "all", "experiment id, comma-separated list, or 'all'")
	scale := flag.Uint("scale", 1, "dataset scale divisor (1 = full reproduction scale)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	benchJSON := flag.String("bench-json", "",
		"record wall-clock per experiment to this JSON file ('auto' = BENCH_<date>.json)")
	graphSpec := flag.String("graph", "",
		"run ONE simulation on this dataset name or graph file (.txt/.el/.wel/.mtx/.gcsr) instead of experiments")
	appName := flag.String("app", "PR",
		fmt.Sprintf("-graph mode: application, one of %v", apps.ExtendedNames()))
	polName := flag.String("policy", "GRASP", "-graph mode: LLC policy (see sim.Policies)")
	reorderName := flag.String("reorder", "DBG", "-graph mode: reordering technique")
	flag.Parse()

	if *graphSpec != "" {
		if err := runSingle(*graphSpec, *appName, *polName, *reorderName, uint32(*scale)); err != nil {
			fmt.Fprintln(os.Stderr, "graspsim:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := exp.DefaultConfig()
	if *scale > 1 {
		cfg = exp.ScaledConfig(uint32(*scale))
	}
	fmt.Printf("# GRASP reproduction — scale 1/%d, LLC %dKB, L1 %dKB, L2 %dKB\n\n",
		*scale, cfg.HCfg.LLC.SizeBytes>>10, cfg.HCfg.L1.SizeBytes>>10, cfg.HCfg.L2.SizeBytes>>10)
	session := exp.NewSession(cfg)

	var exps []exp.Experiment
	if *expID == "all" {
		exps = exp.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "graspsim:", err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}

	record := benchRecord{
		Date:       time.Now().Format("2006-01-02"),
		Scale:      *scale,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	start := time.Now()
	obs := exp.RunObserver{
		Before: func(e exp.Experiment) {
			// First Before fires after the shared prefetch phase completes.
			if record.PrefetchSec == 0 {
				record.PrefetchSec = time.Since(start).Seconds()
			}
			fmt.Printf("## %s — %s\n\n", e.ID, e.Title)
		},
		After: func(e exp.Experiment, elapsed time.Duration) {
			record.Experiments = append(record.Experiments,
				benchEntry{ID: e.ID, Seconds: elapsed.Seconds()})
			fmt.Printf("(%s in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		},
	}
	if err := exp.RunAll(session, exps, os.Stdout, obs); err != nil {
		fmt.Fprintln(os.Stderr, "graspsim:", err)
		os.Exit(1)
	}
	record.TotalSeconds = time.Since(start).Seconds()

	if *benchJSON != "" {
		path := *benchJSON
		if path == "auto" {
			path = fmt.Sprintf("BENCH_%s.json", record.Date)
		}
		data, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "graspsim:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "graspsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graspsim: wall-clock record written to %s\n", path)
	}
}

// runSingle executes one (graph, reorder, app, policy) simulation — the
// -graph mode, for ingested real-world datasets as much as for the paper's
// synthetic ones — and prints the per-level cache metrics.
func runSingle(spec, appName, polName, reorderName string, scale uint32) error {
	ds, err := graph.Resolve(spec)
	if err != nil {
		return err
	}
	cfg := exp.DefaultConfig()
	if scale > 1 {
		cfg = exp.ScaledConfig(scale)
		if ds.Kind == graph.KindFile {
			fmt.Fprintf(os.Stderr,
				"graspsim: note: -scale %d shrinks only the cache hierarchy; the file graph always loads at full size\n", scale)
		}
	}
	w, err := sim.PrepareWorkload(ds, reorderName, appName == "SSSP", cfg.ScaleDiv)
	if err != nil {
		return err
	}
	r, err := sim.Run(w, sim.Spec{App: appName, Layout: apps.LayoutMerged,
		Policy: polName, HCfg: cfg.HCfg})
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s app=%s reorder=%s policy=%s\n", ds.Name, appName, reorderName, polName)
	fmt.Printf("graph:    %v\n", w.Graph)
	fmt.Printf("L1:  %9d accesses, %9d misses (%.1f%%)\n",
		r.L1.Accesses(), r.L1.Misses, 100*r.L1.MissRatio())
	fmt.Printf("L2:  %9d accesses, %9d misses (%.1f%%)\n",
		r.L2.Accesses(), r.L2.Misses, 100*r.L2.MissRatio())
	fmt.Printf("LLC: %9d accesses, %9d misses (%.1f%%), %d bypasses, %d writebacks\n",
		r.LLC.Accesses(), r.LLC.Misses, 100*r.LLC.MissRatio(), r.LLC.Bypasses, r.LLC.Writebacks)
	fmt.Printf("modeled memory time: %.0f\n", r.Cycles)
	return nil
}
