package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %f, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %f", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean with negative input must be NaN")
	}
}

func TestGeoMeanSpeedupPct(t *testing.T) {
	// Symmetric +10%/-10% is slightly negative under geometric mean.
	g := GeoMeanSpeedupPct([]float64{10, -10})
	if g >= 0 || g < -1 {
		t.Fatalf("GeoMeanSpeedupPct(+10,-10) = %f", g)
	}
	if g := GeoMeanSpeedupPct([]float64{5, 5}); math.Abs(g-5) > 1e-9 {
		t.Fatalf("uniform speedups must aggregate unchanged: %f", g)
	}
}

func TestMeanMinMax(t *testing.T) {
	v := []float64{3, 1, 2}
	if Mean(v) != 2 || Min(v) != 1 || Max(v) != 3 {
		t.Fatalf("Mean/Min/Max wrong: %f %f %f", Mean(v), Min(v), Max(v))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty-input extrema should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.25)
	s := tb.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "2.2") {
		t.Fatalf("table missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), s)
	}
	// Columns align: all lines have the same leading column width.
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("missing header rule:\n%s", s)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("x")
	if s := tb.String(); !strings.Contains(s, "x") {
		t.Fatalf("ragged row lost: %s", s)
	}
}
