package stats

import "math"

// SetEstimate summarizes a set-sampled cache simulation: the miss ratio
// observed over a deterministic subset of the LLC's sets, extrapolated to
// the whole cache with a standard error and confidence interval. Because a
// set-associative cache partitions blocks statically across sets, each
// sampled set's (accesses, misses) pair is exact; the only uncertainty is
// cross-set sampling error, which the ratio estimator below quantifies.
// Policies with shared global state (set dueling, shared predictor tables)
// additionally carry a model bias the interval does not cover — the
// accuracy test suite bounds that empirically.
type SetEstimate struct {
	// SampledSets and TotalSets describe the sample: n of N sets simulated.
	SampledSets int `json:"sampled_sets"`
	TotalSets   int `json:"total_sets"`
	// SampledAccesses and SampledMisses are the exact totals over the
	// sampled sets.
	SampledAccesses uint64 `json:"sampled_accesses"`
	SampledMisses   uint64 `json:"sampled_misses"`
	// TotalAccesses is the exact number of LLC accesses in the recording
	// (known without sampling: every recorded access reaches the LLC).
	TotalAccesses uint64 `json:"total_accesses"`
	// MissRatio is the ratio-estimator point estimate of misses/accesses.
	MissRatio float64 `json:"miss_ratio"`
	// StdErr is the estimated standard error of MissRatio, with
	// finite-population correction (zero when every set was sampled).
	StdErr float64 `json:"std_err"`
	// CI95 is the half-width of the ~95% confidence interval around
	// MissRatio, using a Student-t multiplier for small sample counts.
	CI95 float64 `json:"ci95"`
	// EstMisses extrapolates the miss count: MissRatio x TotalAccesses.
	EstMisses float64 `json:"est_misses"`
	// EstMissesCI95 is the 95% half-width on EstMisses.
	EstMissesCI95 float64 `json:"est_misses_ci95"`
}

// EstimateSetSample builds a SetEstimate from per-sampled-set access and
// miss counts (parallel slices, one entry per sampled set), the total
// number of sets in the cache, and the exact total LLC access count. The
// estimator is the classic ratio estimator R = sum(miss)/sum(acc); its
// variance comes from the per-set residuals miss_i - R*acc_i with a
// finite-population correction (1 - n/N), so sampling every set reports
// zero error. With fewer than two sampled sets (and n < N) the variance is
// undefined and StdErr/CI95 are reported as zero; callers should sample at
// least two sets.
func EstimateSetSample(acc, miss []uint64, totalSets int, totalAccesses uint64) SetEstimate {
	e := SetEstimate{
		SampledSets:   len(acc),
		TotalSets:     totalSets,
		TotalAccesses: totalAccesses,
	}
	for i := range acc {
		e.SampledAccesses += acc[i]
		e.SampledMisses += miss[i]
	}
	if e.SampledAccesses == 0 {
		// No traffic reached the sampled sets. If the cache as a whole did
		// see traffic, the sample carries no information about the miss
		// ratio — report maximal uncertainty rather than a confident 0±0.
		// (A genuinely idle cache keeps the zero interval: there is nothing
		// to be uncertain about.)
		if totalAccesses > 0 && len(acc) < totalSets {
			e.StdErr, e.CI95 = 0.5, 1
			e.EstMissesCI95 = float64(totalAccesses)
		}
		return e
	}
	r := float64(e.SampledMisses) / float64(e.SampledAccesses)
	e.MissRatio = r
	e.EstMisses = r * float64(totalAccesses)
	n := len(acc)
	if n >= 2 && n < totalSets {
		// Delta-method variance of the ratio estimator: the residuals
		// d_i = miss_i - R*acc_i have mean ~0; Var(R) ~ fpc * Var(d) /
		// (n * meanAcc^2).
		meanAcc := float64(e.SampledAccesses) / float64(n)
		var ss float64
		for i := range acc {
			d := float64(miss[i]) - r*float64(acc[i])
			ss += d * d
		}
		varD := ss / float64(n-1)
		fpc := 1 - float64(n)/float64(totalSets)
		se := math.Sqrt(fpc*varD/float64(n)) / meanAcc
		if !math.IsNaN(se) && !math.IsInf(se, 0) {
			e.StdErr = se
			e.CI95 = tMultiplier(n-1) * se
			e.EstMissesCI95 = e.CI95 * float64(totalAccesses)
		}
	}
	return e
}

// tMultiplier returns the two-sided 95% Student-t quantile for the given
// degrees of freedom. Set sampling often runs with a handful of sets (K=64
// on a 256-set LLC samples 4), where the normal 1.96 would badly
// under-cover; the table keeps intervals honest at small n.
func tMultiplier(df int) float64 {
	table := []float64{ // df = 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= len(table):
		return table[df-1]
	case df <= 60:
		return 2.0
	default:
		return 1.96
	}
}
