// Package stats provides the small numeric and formatting helpers shared
// by the experiment harness: geometric means for speed-up aggregation (as
// the paper reports), percentage formatting and plain-text table rendering.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of positive values; 0 if empty.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var acc float64
	for _, v := range vals {
		if v <= 0 {
			return math.NaN()
		}
		acc += math.Log(v)
	}
	return math.Exp(acc / float64(len(vals)))
}

// GeoMeanSpeedupPct aggregates per-datapoint speed-up percentages the way
// the paper does: geometric mean of the speed-up ratios, reported as a
// percentage. E.g. inputs {+10, -5} are ratios {1.10, 0.95}.
func GeoMeanSpeedupPct(pcts []float64) float64 {
	ratios := make([]float64, len(pcts))
	for i, p := range pcts {
		ratios[i] = 1 + p/100
	}
	return (GeoMean(ratios) - 1) * 100
}

// Mean returns the arithmetic mean; 0 if empty.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Min and Max return the extrema; 0 if empty.
func Min(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum; 0 if empty.
func Max(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Table renders rows as a fixed-width plain-text table. The first row is
// the header.
type Table struct {
	rows [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table {
	t := &Table{}
	t.rows = append(t.rows, header)
	return t
}

// AddRow appends a row; cells beyond the header width are kept.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which is rendered with 1 decimal.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range t.rows {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := 0; i < cols; i++ {
				if i == 0 {
					b.WriteString(strings.Repeat("-", widths[i]))
				} else {
					b.WriteString("  " + strings.Repeat("-", widths[i]))
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
