package stats

import (
	"math"
	"testing"
)

func TestEstimateSetSampleExactWhenComplete(t *testing.T) {
	// Every set sampled: the estimate is exact and the error zero.
	e := EstimateSetSample([]uint64{10, 20, 30, 40}, []uint64{1, 2, 3, 4}, 4, 100)
	if e.MissRatio != 0.1 {
		t.Errorf("miss ratio %.4f, want 0.1", e.MissRatio)
	}
	if e.StdErr != 0 || e.CI95 != 0 {
		t.Errorf("complete sample reported error: stderr=%g ci=%g", e.StdErr, e.CI95)
	}
	if e.EstMisses != 10 {
		t.Errorf("est misses %.2f, want 10", e.EstMisses)
	}
}

func TestEstimateSetSampleHandComputed(t *testing.T) {
	// Two sampled sets of eight; residuals worked by hand.
	// R = 6/30 = 0.2; d = {2 - 0.2*10, 4 - 0.2*20} = {0, 0} -> SE 0.
	e := EstimateSetSample([]uint64{10, 20}, []uint64{2, 4}, 8, 120)
	if e.MissRatio != 0.2 {
		t.Errorf("miss ratio %.4f, want 0.2", e.MissRatio)
	}
	if e.StdErr != 0 {
		t.Errorf("proportional per-set counts must give zero stderr, got %g", e.StdErr)
	}
	// Heterogeneous sets: R = 5/30; d_i = miss_i - R*acc_i = {1-5/3, 4-10/3}
	// = {-2/3, 2/3}; varD = 2*(4/9)/1; fpc = 1 - 2/8 = 0.75;
	// SE = sqrt(0.75 * 8/9 / 2) / 15; CI = 12.706 * SE (df=1).
	e = EstimateSetSample([]uint64{10, 20}, []uint64{1, 4}, 8, 120)
	wantSE := math.Sqrt(0.75*(8.0/9.0)/2) / 15
	if math.Abs(e.StdErr-wantSE) > 1e-12 {
		t.Errorf("stderr %.10f, want %.10f", e.StdErr, wantSE)
	}
	if math.Abs(e.CI95-12.706*wantSE) > 1e-12 {
		t.Errorf("ci95 %.10f, want %.10f", e.CI95, 12.706*wantSE)
	}
}

func TestEstimateSetSampleNoTraffic(t *testing.T) {
	// Sampled sets saw nothing but the cache did: maximal uncertainty, not
	// a confident zero.
	e := EstimateSetSample([]uint64{0, 0}, []uint64{0, 0}, 8, 1000)
	if e.MissRatio != 0 || e.EstMisses != 0 {
		t.Errorf("no-information estimate must center on 0, got %.4f/%.1f", e.MissRatio, e.EstMisses)
	}
	if e.CI95 != 1 || e.EstMissesCI95 != 1000 {
		t.Errorf("no-information estimate must report maximal uncertainty, got ci=%g misses-ci=%g", e.CI95, e.EstMissesCI95)
	}
	// A genuinely idle cache (no accesses anywhere) is certain, not unknown.
	e = EstimateSetSample([]uint64{0, 0}, []uint64{0, 0}, 8, 0)
	if e.CI95 != 0 || e.StdErr != 0 {
		t.Errorf("idle cache must report zero error, got ci=%g stderr=%g", e.CI95, e.StdErr)
	}
	// A complete sample with no traffic is also certain.
	e = EstimateSetSample(make([]uint64, 8), make([]uint64, 8), 8, 0)
	if e.CI95 != 0 {
		t.Errorf("complete idle sample must report zero error, got ci=%g", e.CI95)
	}
}

func TestTMultiplier(t *testing.T) {
	for _, tc := range []struct {
		df   int
		want float64
	}{
		{0, math.Inf(1)}, {1, 12.706}, {3, 3.182}, {30, 2.042}, {45, 2.0}, {100, 1.96},
	} {
		if got := tMultiplier(tc.df); got != tc.want {
			t.Errorf("tMultiplier(%d) = %v, want %v", tc.df, got, tc.want)
		}
	}
}
