// Package sim is the simulation driver: it wires a dataset, a reordering
// technique, an application and an LLC policy into the cache hierarchy and
// produces the metrics the paper reports (LLC misses, access breakdown,
// modeled memory time). It replaces the paper's Sniper-based methodology
// (Sec. IV-C) with execution-driven trace simulation — see DESIGN.md.
package sim

import (
	"fmt"
	"sync"
	"time"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/core"
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
	"grasp/internal/policy"
	"grasp/internal/reorder"
)

// PolicyInfo describes an LLC policy available to experiments, including
// whether it consumes GRASP's software hints (and therefore needs ABRs
// programmed).
type PolicyInfo struct {
	Name      string
	NeedsABRs bool
	New       func(sets, ways uint32) cache.Policy
}

// registry is the immutable policy registry, built exactly once: resolving
// a policy is on the per-simulation setup path and was reallocating the
// whole slice (plus closures) on every PolicyByName call.
var registry = sync.OnceValues(func() ([]PolicyInfo, map[string]PolicyInfo) {
	var out []PolicyInfo
	for _, c := range policy.All() {
		needs := len(c.Name) >= 4 && c.Name[:4] == "PIN-" // XMem uses the GRASP interface
		out = append(out, PolicyInfo{Name: c.Name, NeedsABRs: needs, New: c.New})
	}
	out = append(out,
		PolicyInfo{Name: "RRIP+Hints", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewPolicy(s, w, core.ModeHintsOnly) }},
		PolicyInfo{Name: "GRASP (Insertion-Only)", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewPolicy(s, w, core.ModeInsertionOnly) }},
		PolicyInfo{Name: "GRASP", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewPolicy(s, w, core.ModeFull) }},
		PolicyInfo{Name: "GRASP-LRU", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewLRUPolicy(s, w) }},
		PolicyInfo{Name: "GRASP-PLRU", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewPLRUPolicy(s, w) }},
		PolicyInfo{Name: "GRASP-DIP", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewDIPPolicy(s, w) }},
	)
	byName := make(map[string]PolicyInfo, len(out))
	for _, p := range out {
		byName[p.Name] = p
	}
	return out, byName
})

// Policies returns the full registry: the prior schemes from
// internal/policy plus the GRASP variants from internal/core. The returned
// slice is shared; callers must not modify it.
func Policies() []PolicyInfo {
	all, _ := registry()
	return all
}

// PolicyByName resolves a policy from the registry.
func PolicyByName(name string) (PolicyInfo, error) {
	_, byName := registry()
	if p, ok := byName[name]; ok {
		return p, nil
	}
	return PolicyInfo{}, fmt.Errorf("sim: unknown policy %q", name)
}

// Workload is a prepared (dataset, reordering) pair, reusable across apps
// and policies so experiments amortize generation and reordering cost.
type Workload struct {
	Dataset     graph.Dataset
	Reorder     string
	Graph       *graph.CSR
	ReorderCost time.Duration
	Weighted    bool
}

// PrepareWorkload materializes the dataset (generating synthetic kinds
// scaled down by scaleDiv, 1 = full reproduction scale; loading file-backed
// datasets through the registry cache) and applies the named reordering
// technique, timing it.
func PrepareWorkload(ds graph.Dataset, reorderName string, weighted bool, scaleDiv uint32) (*Workload, error) {
	g, err := ds.Load(weighted, scaleDiv)
	if err != nil {
		return nil, err
	}
	tech, err := reorder.ByName(reorderName)
	if err != nil {
		return nil, err
	}
	perm, cost := reorder.Timed(tech, g, reorder.BySum)
	if reorderName != "Identity" && reorderName != "none" {
		g = reorder.Apply(g, perm)
	}
	return &Workload{Dataset: ds, Reorder: reorderName, Graph: g,
		ReorderCost: cost, Weighted: weighted}, nil
}

// Spec identifies one simulation run on a prepared workload.
type Spec struct {
	App    string
	Layout apps.Layout
	Policy string
	HCfg   cache.HierarchyConfig
}

// Result carries the metrics of one run.
type Result struct {
	Spec        Spec
	Workload    string // dataset name
	L1, L2, LLC cache.Stats
	Cycles      float64       // modeled memory time (arbitrary units)
	AppTime     time.Duration // wall-clock of the traced execution
}

// SpeedupPctOver returns the percentage speed-up of r relative to base
// under the memory-time model: positive = r is faster.
func (r Result) SpeedupPctOver(base Result) float64 {
	return (base.Cycles/r.Cycles - 1) * 100
}

// MissReductionPctOver returns the percentage of base's LLC misses that r
// eliminates (can be negative).
func (r Result) MissReductionPctOver(base Result) float64 {
	if base.LLC.Misses == 0 {
		return 0
	}
	return (1 - float64(r.LLC.Misses)/float64(base.LLC.Misses)) * 100
}

// Run executes one (app, layout, policy) simulation on the workload.
func Run(w *Workload, spec Spec) (Result, error) {
	pinfo, err := PolicyByName(spec.Policy)
	if err != nil {
		return Result{}, err
	}
	fg := ligra.NewGraph(w.Graph)
	app, err := apps.New(spec.App, fg, spec.Layout)
	if err != nil {
		return Result{}, err
	}
	llcPolicy := pinfo.New(spec.HCfg.LLC.Sets(), spec.HCfg.LLC.Ways)
	var cl cache.Classifier
	if pinfo.NeedsABRs {
		abrs := core.NewABRs(spec.HCfg.LLC.SizeBytes)
		for _, a := range app.ABRArrays() {
			if err := abrs.SetArray(a); err != nil {
				return Result{}, err
			}
		}
		cl = abrs
	}
	h, err := cache.NewHierarchy(spec.HCfg, llcPolicy, cl)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	app.Run(ligra.NewTracer(h))
	elapsed := time.Since(start)
	return Result{
		Spec:     spec,
		Workload: w.Dataset.Name,
		L1:       h.L1.Stats, L2: h.L2.Stats, LLC: h.LLC.Stats,
		Cycles:  h.MemoryCycles(),
		AppTime: elapsed,
	}, nil
}

// llcTraceSink filters an access stream through fresh L1/L2 levels and
// records the LLC-bound byte addresses — the paper's "traces of LLC
// accesses" used for the OPT study (Sec. V-D).
type llcTraceSink struct {
	l1, l2 *cache.Cache
	addrs  []uint64
	limit  int
}

func (s *llcTraceSink) Access(a mem.Access) {
	if s.l1.Access(a) || s.l2.Access(a) {
		return
	}
	if s.limit > 0 && len(s.addrs) >= s.limit {
		return
	}
	s.addrs = append(s.addrs, a.Addr)
}

// CollectLLCTrace runs the app natively once and returns the byte
// addresses of all LLC accesses (up to limit; 0 = unlimited). The L1/L2
// filters are policy-independent, so the trace is identical to what any
// LLC policy would observe.
func CollectLLCTrace(w *Workload, appName string, layout apps.Layout, hcfg cache.HierarchyConfig, limit int) ([]uint64, error) {
	fg := ligra.NewGraph(w.Graph)
	app, err := apps.New(appName, fg, layout)
	if err != nil {
		return nil, err
	}
	sink := &llcTraceSink{
		l1:    cache.MustNew(hcfg.L1, cache.NewLRU(hcfg.L1.Sets(), hcfg.L1.Ways)),
		l2:    cache.MustNew(hcfg.L2, cache.NewLRU(hcfg.L2.Sets(), hcfg.L2.Ways)),
		limit: limit,
	}
	app.Run(ligra.NewTracer(sink))
	return sink.addrs, nil
}

// ReplayTrace runs a recorded LLC address trace through an LLC with the
// given policy (and optional classifier), returning its stats. Used by the
// Fig. 11 / Table VII experiments to evaluate many cache sizes per trace.
func ReplayTrace(addrs []uint64, llcCfg cache.Config, pinfo PolicyInfo, abrArrays [][2]uint64) (cache.Stats, error) {
	llc, err := cache.New(llcCfg, pinfo.New(llcCfg.Sets(), llcCfg.Ways))
	if err != nil {
		return cache.Stats{}, err
	}
	if pinfo.NeedsABRs {
		abrs := core.NewABRs(llcCfg.SizeBytes)
		for _, b := range abrArrays {
			if err := abrs.SetBounds(b[0], b[1]); err != nil {
				return cache.Stats{}, err
			}
		}
		llc.SetClassifier(abrs)
	}
	for _, a := range addrs {
		llc.Access(mem.Access{Addr: a})
	}
	return llc.Stats, nil
}

// ABRBoundsFor computes the [start, end) bounds of the app's ABR arrays on
// a fresh graph wrapper (layout-dependent), for use with ReplayTrace. The
// address space layout is deterministic, so bounds from a fresh wrapper
// match those of the run that produced the trace.
func ABRBoundsFor(w *Workload, appName string, layout apps.Layout) ([][2]uint64, error) {
	fg := ligra.NewGraph(w.Graph)
	app, err := apps.New(appName, fg, layout)
	if err != nil {
		return nil, err
	}
	var out [][2]uint64
	for _, a := range app.ABRArrays() {
		out = append(out, [2]uint64{a.Base, a.End()})
	}
	return out, nil
}
