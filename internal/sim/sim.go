// Package sim is the simulation driver: it wires a dataset, a reordering
// technique, an application and an LLC policy into the cache hierarchy and
// produces the metrics the paper reports (LLC misses, access breakdown,
// modeled memory time). It replaces the paper's Sniper-based methodology
// (Sec. IV-C) with execution-driven trace simulation — see DESIGN.md.
package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/core"
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
	"grasp/internal/policy"
	"grasp/internal/reorder"
	"grasp/internal/trace"
)

// PolicyInfo describes an LLC policy available to experiments, including
// whether it consumes GRASP's software hints (and therefore needs ABRs
// programmed).
type PolicyInfo struct {
	Name      string
	NeedsABRs bool
	New       func(sets, ways uint32) cache.Policy
}

// registry is the immutable policy registry, built exactly once: resolving
// a policy is on the per-simulation setup path and was reallocating the
// whole slice (plus closures) on every PolicyByName call.
var registry = sync.OnceValues(func() ([]PolicyInfo, map[string]PolicyInfo) {
	var out []PolicyInfo
	for _, c := range policy.All() {
		needs := len(c.Name) >= 4 && c.Name[:4] == "PIN-" // XMem uses the GRASP interface
		out = append(out, PolicyInfo{Name: c.Name, NeedsABRs: needs, New: c.New})
	}
	out = append(out,
		PolicyInfo{Name: "RRIP+Hints", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewPolicy(s, w, core.ModeHintsOnly) }},
		PolicyInfo{Name: "GRASP (Insertion-Only)", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewPolicy(s, w, core.ModeInsertionOnly) }},
		PolicyInfo{Name: "GRASP", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewPolicy(s, w, core.ModeFull) }},
		PolicyInfo{Name: "GRASP-LRU", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewLRUPolicy(s, w) }},
		PolicyInfo{Name: "GRASP-PLRU", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewPLRUPolicy(s, w) }},
		PolicyInfo{Name: "GRASP-DIP", NeedsABRs: true,
			New: func(s, w uint32) cache.Policy { return core.NewDIPPolicy(s, w) }},
	)
	byName := make(map[string]PolicyInfo, len(out))
	for _, p := range out {
		byName[p.Name] = p
	}
	return out, byName
})

// Policies returns the full registry: the prior schemes from
// internal/policy plus the GRASP variants from internal/core. The returned
// slice is shared; callers must not modify it.
func Policies() []PolicyInfo {
	all, _ := registry()
	return all
}

// PolicyByName resolves a policy from the registry.
func PolicyByName(name string) (PolicyInfo, error) {
	_, byName := registry()
	if p, ok := byName[name]; ok {
		return p, nil
	}
	return PolicyInfo{}, fmt.Errorf("sim: unknown policy %q", name)
}

// Workload is a prepared (dataset, reordering) pair, reusable across apps
// and policies so experiments amortize generation and reordering cost.
type Workload struct {
	Dataset     graph.Dataset
	Reorder     string
	Graph       *graph.CSR
	ReorderCost time.Duration
	Weighted    bool
}

// PrepareWorkload materializes the dataset (generating synthetic kinds
// scaled down by scaleDiv, 1 = full reproduction scale; loading file-backed
// datasets through the registry cache) and applies the named reordering
// technique, timing it.
func PrepareWorkload(ds graph.Dataset, reorderName string, weighted bool, scaleDiv uint32) (*Workload, error) {
	g, err := ds.Load(weighted, scaleDiv)
	if err != nil {
		return nil, err
	}
	return PrepareWorkloadOn(g, ds, reorderName, weighted)
}

// PrepareWorkloadOn applies the named reordering to an already-loaded
// graph, producing the workload. The base graph is never mutated
// (reorderings build relabeled copies), so callers holding one loaded
// instance — the experiment session shares a base graph across every
// reordering technique — can prepare many workloads from it.
func PrepareWorkloadOn(g *graph.CSR, ds graph.Dataset, reorderName string, weighted bool) (*Workload, error) {
	tech, err := reorder.ByName(reorderName)
	if err != nil {
		return nil, err
	}
	perm, cost := reorder.Timed(tech, g, reorder.BySum)
	if reorderName != "Identity" && reorderName != "none" {
		g = reorder.Apply(g, perm)
	}
	return &Workload{Dataset: ds, Reorder: reorderName, Graph: g,
		ReorderCost: cost, Weighted: weighted}, nil
}

// Spec identifies one simulation run on a prepared workload.
type Spec struct {
	App    string
	Layout apps.Layout
	Policy string
	HCfg   cache.HierarchyConfig
}

// Result carries the metrics of one run.
type Result struct {
	Spec        Spec
	Workload    string // dataset name
	L1, L2, LLC cache.Stats
	Cycles      float64       // modeled memory time (arbitrary units)
	AppTime     time.Duration // wall-clock of the traced execution
}

// SpeedupPctOver returns the percentage speed-up of r relative to base
// under the memory-time model: positive = r is faster.
func (r Result) SpeedupPctOver(base Result) float64 {
	return (base.Cycles/r.Cycles - 1) * 100
}

// MissReductionPctOver returns the percentage of base's LLC misses that r
// eliminates (can be negative).
func (r Result) MissReductionPctOver(base Result) float64 {
	if base.LLC.Misses == 0 {
		return 0
	}
	return (1 - float64(r.LLC.Misses)/float64(base.LLC.Misses)) * 100
}

// Run executes one (app, layout, policy) simulation on the workload.
func Run(w *Workload, spec Spec) (Result, error) {
	return RunCtx(context.Background(), w, spec)
}

// cancelPollInterval is how many accesses a cancellable direct run lets
// pass between context polls — the same cadence as the Recorder's poll,
// so a cancelled simulation unwinds within one chunk's worth of accesses
// on either path.
const cancelPollInterval = 1 << 16

// cancelSink interposes a context poll in front of another sink. It only
// exists on cancellable runs: wrapping the hierarchy forfeits the
// tracer's monomorphized *cache.Hierarchy fast path, which background-
// context callers (goldens, benches, local graspsim) must keep, so RunCtx
// installs it solely when ctx can actually be cancelled.
type cancelSink struct {
	sink mem.Sink
	ctx  context.Context
	done <-chan struct{}
	poll int
}

// Access implements mem.Sink: poll the context every cancelPollInterval
// accesses, then forward.
func (c *cancelSink) Access(a mem.Access) {
	if c.poll--; c.poll <= 0 {
		c.poll = cancelPollInterval
		select {
		case <-c.done:
			trace.PanicAbort(trace.ContextErr(c.ctx))
		default:
		}
	}
	c.sink.Access(a)
}

// recoverAbort converts the cancellation sentinel (trace.PanicAbort) back
// into an error return; any other panic keeps propagating. Deferred by
// the Ctx variants around the application execution they cannot otherwise
// interrupt.
func recoverAbort(err *error) {
	if p := recover(); p != nil {
		if aerr, ok := trace.AbortError(p); ok {
			*err = aerr
			return
		}
		panic(p)
	}
}

// RunCtx is Run with cooperative cancellation. The application drives
// the access stream and offers no return path, so cancellation unwinds
// the execution via the trace.PanicAbort sentinel, recovered here and
// returned as the context's error. With a non-cancellable context (nil
// Done) this is byte-for-byte Run: no wrapper sink, no poll, the exact
// monomorphized tracer fast path.
func RunCtx(ctx context.Context, w *Workload, spec Spec) (res Result, err error) {
	pinfo, err := PolicyByName(spec.Policy)
	if err != nil {
		return Result{}, err
	}
	fg := ligra.NewGraph(w.Graph)
	app, err := apps.New(spec.App, fg, spec.Layout)
	if err != nil {
		return Result{}, err
	}
	llcPolicy := pinfo.New(spec.HCfg.LLC.Sets(), spec.HCfg.LLC.Ways)
	var cl cache.Classifier
	if pinfo.NeedsABRs {
		abrs := core.NewABRs(spec.HCfg.LLC.SizeBytes)
		for _, a := range app.ABRArrays() {
			if err := abrs.SetArray(a); err != nil {
				return Result{}, err
			}
		}
		cl = abrs
	}
	h, err := cache.NewHierarchy(spec.HCfg, llcPolicy, cl)
	if err != nil {
		return Result{}, err
	}
	var sink mem.Sink = h
	if done := ctx.Done(); done != nil {
		sink = &cancelSink{sink: h, ctx: ctx, done: done, poll: cancelPollInterval}
		defer recoverAbort(&err)
	}
	start := time.Now()
	app.Run(ligra.NewTracer(sink))
	elapsed := time.Since(start)
	return Result{
		Spec:     spec,
		Workload: w.Dataset.Name,
		L1:       h.L1.Stats, L2: h.L2.Stats, LLC: h.LLC.Stats,
		Cycles:  h.MemoryCycles(),
		AppTime: elapsed,
	}, nil
}

// RecordTrace executes the app once behind the policy-independent L1/L2
// filter of hcfg and returns the full encoded LLC-bound access stream —
// the record half of the record-once/replay-many engine (DESIGN.md
// Sec. 11). The trace, combined with the filter stats it carries, is
// sufficient to reproduce Run's Result exactly for ANY LLC policy and
// geometry, because the upper levels never observe the LLC.
func RecordTrace(w *Workload, appName string, layout apps.Layout, hcfg cache.HierarchyConfig) (*trace.Trace, error) {
	return RecordTraceN(w, appName, layout, hcfg, 0)
}

// RecordTraceN is RecordTrace with an encode cap: at most limit LLC-bound
// accesses are stored (limit <= 0: all); the L1/L2 filter still runs over
// the whole execution, so the stored prefix is exactly the first limit
// accesses of an unlimited recording. Capped traces serve bounded-prefix
// consumers like the OPT study without holding (or spilling) the full
// stream; they must NOT back full-result replays.
func RecordTraceN(w *Workload, appName string, layout apps.Layout, hcfg cache.HierarchyConfig, limit int64) (*trace.Trace, error) {
	return RecordTraceNCtx(context.Background(), w, appName, layout, hcfg, limit)
}

// RecordTraceNCtx is RecordTraceN with cooperative cancellation: the
// recorder polls the context as it encodes and unwinds the application
// with the abort sentinel once it is cancelled; the partial recording is
// abandoned (resident bytes and spill space released) and the context's
// error returned. A non-cancellable context records exactly as before —
// the recorder's hot path gains one nil check per access.
func RecordTraceNCtx(ctx context.Context, w *Workload, appName string, layout apps.Layout, hcfg cache.HierarchyConfig, limit int64) (tr *trace.Trace, err error) {
	fg := ligra.NewGraph(w.Graph)
	app, err := apps.New(appName, fg, layout)
	if err != nil {
		return nil, err
	}
	rec, err := trace.NewRecorder(hcfg)
	if err != nil {
		return nil, err
	}
	rec.SetLimit(limit)
	if ctx.Done() != nil {
		rec.SetContext(ctx)
		defer func() {
			if p := recover(); p != nil {
				aerr, ok := trace.AbortError(p)
				if !ok {
					panic(p)
				}
				rec.Abandon()
				tr, err = nil, aerr
			}
		}()
	}
	start := time.Now()
	app.Run(ligra.NewTracer(rec))
	return rec.Finish(time.Since(start))
}

// NewReplayLLC builds a standalone LLC of the given geometry with the
// policy and, for hint-consuming policies, a classifier programmed from
// recorded ABR bounds (in SetArray order, so region sizing matches the
// recording run). It is exported for consumers composing their own
// broadcast-replay fan-outs (the OPT study feeds several such LLCs plus a
// block collector from one decode pass).
func NewReplayLLC(llcCfg cache.Config, pinfo PolicyInfo, abrArrays [][2]uint64) (*cache.Cache, error) {
	llc, err := cache.New(llcCfg, pinfo.New(llcCfg.Sets(), llcCfg.Ways))
	if err != nil {
		return nil, err
	}
	if pinfo.NeedsABRs {
		abrs := core.NewABRs(llcCfg.SizeBytes)
		for _, b := range abrArrays {
			if err := abrs.SetBounds(b[0], b[1]); err != nil {
				return nil, err
			}
		}
		llc.SetClassifier(abrs)
	}
	return llc, nil
}

// ReplayResult produces the Result of one (app, layout, policy) datapoint
// from a recorded trace instead of re-executing the application: the
// replay half of the engine. The returned metrics are identical to what
// Run would report for the same spec — L1/L2 stats come from the
// recording, the LLC is simulated fresh from the decoded stream, and the
// memory-time model prices the combination exactly as a live hierarchy
// would. AppTime is the recording run's execution time (the trace shares
// one execution across every policy, so per-policy app wall-clock does not
// exist on this path).
func ReplayResult(tr *trace.Trace, spec Spec, workloadName string, abrArrays [][2]uint64) (Result, error) {
	return ReplayResultCtx(context.Background(), tr, spec, workloadName, abrArrays)
}

// ReplayResultCtx is ReplayResult with cooperative cancellation,
// delegated to the trace's per-chunk context check.
func ReplayResultCtx(ctx context.Context, tr *trace.Trace, spec Spec, workloadName string, abrArrays [][2]uint64) (Result, error) {
	pinfo, err := PolicyByName(spec.Policy)
	if err != nil {
		return Result{}, err
	}
	llc, err := NewReplayLLC(spec.HCfg.LLC, pinfo, abrArrays)
	if err != nil {
		return Result{}, err
	}
	if err := tr.ReplayNCtx(ctx, llc, 0); err != nil {
		return Result{}, err
	}
	return Result{
		Spec:     spec,
		Workload: workloadName,
		L1:       tr.L1Stats(), L2: tr.L2Stats(), LLC: llc.Stats,
		Cycles:  cache.MemoryCyclesOf(spec.HCfg, tr.L1Stats(), tr.L2Stats(), llc.Stats),
		AppTime: tr.AppTime(),
	}, nil
}

// ReplayStats replays at most limit accesses (limit <= 0: all) of a
// recorded trace through an LLC of the given geometry and policy,
// returning its stats: the single-replay variant for callers evaluating
// one (policy, geometry) at a time. Sweeps that evaluate several per
// trace (the Fig. 11 / Table VII OPT study) instead compose NewReplayLLC
// with trace.Trace.BroadcastN so the decode is paid once.
func ReplayStats(tr *trace.Trace, llcCfg cache.Config, pinfo PolicyInfo, abrArrays [][2]uint64, limit int64) (cache.Stats, error) {
	llc, err := NewReplayLLC(llcCfg, pinfo, abrArrays)
	if err != nil {
		return cache.Stats{}, err
	}
	if err := tr.ReplayN(llc, limit); err != nil {
		return cache.Stats{}, err
	}
	return llc.Stats, nil
}

// BroadcastResults produces the Results of several policies' datapoints
// from ONE decode pass over a recorded trace: each spec gets its own
// replay LLC, and trace.Broadcast fans every decoded slab out to all of
// them concurrently. Each returned Result is identical to what ReplayResult
// — and therefore Run — would produce for the same spec; an N-policy sweep
// just pays one decode instead of N, and the N LLC simulations overlap on
// multi-core hosts. The specs may differ in policy AND LLC geometry (the
// recording is valid for any LLC configuration).
func BroadcastResults(tr *trace.Trace, specs []Spec, workloadName string, abrArrays [][2]uint64) ([]Result, error) {
	return BroadcastResultsCtx(context.Background(), tr, specs, workloadName, abrArrays)
}

// BroadcastResultsCtx is BroadcastResults with cooperative cancellation:
// the fan-out's producer checks the context per decoded chunk, so a
// cancelled N-policy sweep stops within one chunk boundary across all N
// replays at once.
func BroadcastResultsCtx(ctx context.Context, tr *trace.Trace, specs []Spec, workloadName string, abrArrays [][2]uint64) ([]Result, error) {
	llcs := make([]*cache.Cache, len(specs))
	consumers := make([]func([]mem.Access), len(specs))
	for i, spec := range specs {
		pinfo, err := PolicyByName(spec.Policy)
		if err != nil {
			return nil, err
		}
		llc, err := NewReplayLLC(spec.HCfg.LLC, pinfo, abrArrays)
		if err != nil {
			return nil, err
		}
		llcs[i] = llc
		consumers[i] = func(accs []mem.Access) {
			for _, a := range accs {
				llc.Access(a)
			}
		}
	}
	if err := tr.BroadcastNCtx(ctx, 0, consumers); err != nil {
		return nil, err
	}
	out := make([]Result, len(specs))
	for i, spec := range specs {
		out[i] = Result{
			Spec:     spec,
			Workload: workloadName,
			L1:       tr.L1Stats(), L2: tr.L2Stats(), LLC: llcs[i].Stats,
			Cycles:  cache.MemoryCyclesOf(spec.HCfg, tr.L1Stats(), tr.L2Stats(), llcs[i].Stats),
			AppTime: tr.AppTime(),
		}
	}
	return out, nil
}

// ABRBoundsFor computes the [start, end) bounds of the app's ABR arrays on
// a fresh graph wrapper (layout-dependent), for use with ReplayResult and
// ReplayStats. The
// address space layout is deterministic, so bounds from a fresh wrapper
// match those of the run that produced the trace.
func ABRBoundsFor(w *Workload, appName string, layout apps.Layout) ([][2]uint64, error) {
	fg := ligra.NewGraph(w.Graph)
	app, err := apps.New(appName, fg, layout)
	if err != nil {
		return nil, err
	}
	var out [][2]uint64
	for _, a := range app.ABRArrays() {
		out = append(out, [2]uint64{a.Base, a.End()})
	}
	return out, nil
}
