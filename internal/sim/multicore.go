package sim

import (
	"fmt"
	"time"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/core"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

// Multicore simulation. The paper evaluates 8 OoO cores running the
// multi-threaded applications with a shared NUCA LLC (Table VI). We model
// the cache-relevant aspects: per-core private L1/L2 levels in front of
// one shared LLC, with the access stream divided among cores in contiguous
// chunks (static range scheduling, which is how Ligra's parallel_for
// divides destination vertices) and the LLC observing a round-robin
// interleaving of the cores' miss streams.
//
// The chunked assignment and quantum interleaving approximate true
// concurrency; what they preserve is (a) private-cache filtering per core
// and (b) fine-grained mixing of the cores' LLC-bound streams, which is
// what shared-LLC replacement behaviour depends on.
//
// This models one multi-threaded application. The multi-PROGRAMMED
// variant — independent applications contending for the LLC — lifts the
// same quantum-interleaved drain to recorded streams with per-app
// attribution and fairness metrics: see corun.go and
// trace.InterleaveReplay (DESIGN.md Sec. 15).

// MulticoreConfig configures the multicore hierarchy.
type MulticoreConfig struct {
	Base cache.HierarchyConfig // per-core L1/L2 geometry + shared LLC
	// Cores is the number of simulated cores (paper: 8).
	Cores int
	// ChunkAccesses is the number of consecutive accesses attributed to
	// one core before switching (static-range work division).
	ChunkAccesses int
	// QuantumAccesses is how many LLC-bound accesses each core issues per
	// round-robin turn when the buffered streams are interleaved.
	QuantumAccesses int
}

// DefaultMulticoreConfig mirrors the paper's 8-core setup at reproduction
// scale.
func DefaultMulticoreConfig() MulticoreConfig {
	return MulticoreConfig{
		Base:            cache.DefaultHierarchyConfig(),
		Cores:           8,
		ChunkAccesses:   4096,
		QuantumAccesses: 4,
	}
}

// Multicore is the multicore hierarchy; it implements mem.Sink.
type Multicore struct {
	cfg  MulticoreConfig
	l1s  []*cache.Cache
	l2s  []*cache.Cache
	LLC  *cache.Cache
	cl   cache.Classifier
	bufs [][]mem.Access
	seen uint64
}

// NewMulticore builds the hierarchy with the given shared-LLC policy and
// optional GRASP classifier.
func NewMulticore(cfg MulticoreConfig, llcPolicy cache.Policy, cl cache.Classifier) (*Multicore, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("sim: multicore needs at least 1 core, got %d", cfg.Cores)
	}
	if cfg.ChunkAccesses <= 0 || cfg.QuantumAccesses <= 0 {
		return nil, fmt.Errorf("sim: multicore chunk/quantum must be positive")
	}
	m := &Multicore{cfg: cfg, bufs: make([][]mem.Access, cfg.Cores)}
	for i := 0; i < cfg.Cores; i++ {
		l1, err := cache.New(cfg.Base.L1, cache.NewLRU(cfg.Base.L1.Sets(), cfg.Base.L1.Ways))
		if err != nil {
			return nil, fmt.Errorf("core %d L1: %w", i, err)
		}
		l2, err := cache.New(cfg.Base.L2, cache.NewLRU(cfg.Base.L2.Sets(), cfg.Base.L2.Ways))
		if err != nil {
			return nil, fmt.Errorf("core %d L2: %w", i, err)
		}
		m.l1s = append(m.l1s, l1)
		m.l2s = append(m.l2s, l2)
	}
	llc, err := cache.New(cfg.Base.LLC, llcPolicy)
	if err != nil {
		return nil, fmt.Errorf("LLC: %w", err)
	}
	llc.SetClassifier(cl)
	m.LLC = llc
	return m, nil
}

// Access implements mem.Sink.
func (m *Multicore) Access(a mem.Access) {
	coreID := int(m.seen/uint64(m.cfg.ChunkAccesses)) % m.cfg.Cores
	m.seen++
	if m.l1s[coreID].Access(a) {
		return
	}
	if m.l2s[coreID].Access(a) {
		return
	}
	m.bufs[coreID] = append(m.bufs[coreID], a)
	if len(m.bufs[coreID]) >= 4*m.cfg.QuantumAccesses {
		m.drain(false)
	}
}

// drain interleaves the buffered LLC-bound streams round-robin in
// QuantumAccesses-sized turns. With force, everything is flushed.
func (m *Multicore) drain(force bool) {
	for {
		progressed := false
		for c := 0; c < m.cfg.Cores; c++ {
			q := m.cfg.QuantumAccesses
			for q > 0 && len(m.bufs[c]) > 0 {
				m.LLC.Access(m.bufs[c][0])
				m.bufs[c] = m.bufs[c][1:]
				q--
				progressed = true
			}
		}
		if !progressed {
			return
		}
		if !force {
			// One interleaving round per trigger keeps buffers small
			// without reordering too far from program order.
			remaining := 0
			for c := range m.bufs {
				remaining += len(m.bufs[c])
			}
			if remaining < m.cfg.Cores*m.cfg.QuantumAccesses {
				return
			}
		}
	}
}

// Finish flushes buffered accesses; call once after the application run.
func (m *Multicore) Finish() { m.drain(true) }

// L1Stats and L2Stats aggregate the private levels across cores.
func (m *Multicore) L1Stats() cache.Stats { return sumStats(m.l1s) }

// L2Stats aggregates the private L2 levels.
func (m *Multicore) L2Stats() cache.Stats { return sumStats(m.l2s) }

func sumStats(cs []*cache.Cache) cache.Stats {
	var out cache.Stats
	for _, c := range cs {
		out.Hits += c.Stats.Hits
		out.Misses += c.Stats.Misses
		out.PropHits += c.Stats.PropHits
		out.PropMisses += c.Stats.PropMisses
		out.Bypasses += c.Stats.Bypasses
		out.Evictions += c.Stats.Evictions
		out.Writebacks += c.Stats.Writebacks
	}
	return out
}

// MemoryCycles evaluates the memory-time model over the aggregated stats,
// dividing post-L1 stalls by both the MLP factor and the core count
// (cores overlap each other's misses).
func (m *Multicore) MemoryCycles() float64 {
	cfg := m.cfg.Base
	l1 := m.L1Stats()
	l2 := m.L2Stats()
	stall := float64(l1.Misses)*float64(cfg.L2Latency) +
		float64(l2.Misses)*float64(cfg.LLCLatency) +
		float64(m.LLC.Stats.Misses)*float64(cfg.MemLatency)
	mlp := cfg.MLP
	if mlp <= 0 {
		mlp = 1
	}
	return float64(l1.Accesses())*float64(cfg.L1Latency)/float64(m.cfg.Cores) +
		stall/(mlp*float64(m.cfg.Cores))
}

// RunMulticore executes one simulation on the multicore hierarchy.
func RunMulticore(w *Workload, spec Spec, mcfg MulticoreConfig) (Result, error) {
	mcfg.Base = spec.HCfg
	pinfo, err := PolicyByName(spec.Policy)
	if err != nil {
		return Result{}, err
	}
	fg := ligra.NewGraph(w.Graph)
	app, err := apps.New(spec.App, fg, spec.Layout)
	if err != nil {
		return Result{}, err
	}
	var cl cache.Classifier
	if pinfo.NeedsABRs {
		abrs := core.NewABRs(spec.HCfg.LLC.SizeBytes)
		for _, a := range app.ABRArrays() {
			if err := abrs.SetArray(a); err != nil {
				return Result{}, err
			}
		}
		cl = abrs
	}
	m, err := NewMulticore(mcfg, pinfo.New(spec.HCfg.LLC.Sets(), spec.HCfg.LLC.Ways), cl)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	app.Run(ligra.NewTracer(m))
	m.Finish()
	return Result{
		Spec:     spec,
		Workload: w.Dataset.Name,
		L1:       m.L1Stats(), L2: m.L2Stats(), LLC: m.LLC.Stats,
		Cycles:  m.MemoryCycles(),
		AppTime: time.Since(start),
	}, nil
}
