// Set-sampled replay: the fast-fidelity tier. A full replay simulates
// every LLC set; the sampled tier replays the same recording through a
// trace.SetFilter so only a deterministic 1/K subset of sets is simulated,
// and extrapolates whole-cache miss metrics with a confidence interval
// (internal/stats, DESIGN.md Sec. 14). sample_k=1 selects every set and is
// bit-identical to a full replay — the property the equivalence tests pin.
package sim

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"grasp/internal/cache"
	"grasp/internal/mem"
	"grasp/internal/stats"
	"grasp/internal/trace"
)

// sampledChunkSkip gates the codec-layer skip path (chunk presence
// bitmaps + in-loop pruning, DESIGN.md Sec. 14) for sampled replays.
// Default on; the equivalence suite forces it off to prove the skip path
// changes nothing but the work done.
var sampledChunkSkip atomic.Bool

func init() { sampledChunkSkip.Store(true) }

// SetSampledChunkSkip toggles the codec-layer skip path for sampled
// replays process-wide and returns the previous setting. Off, the
// sampled tier decodes every chunk fully and filters after decode —
// PR 7's reference behavior.
func SetSampledChunkSkip(on bool) bool { return sampledChunkSkip.Swap(on) }

// SampledChunkSkip reports whether sampled replays use the codec-layer
// skip path.
func SampledChunkSkip() bool { return sampledChunkSkip.Load() }

// SampledResult is the fast-tier counterpart of Result: exact L1/L2 stats
// from the recording, observed LLC stats over the sampled sets only, and
// the extrapolated whole-cache estimate with its error bars. EstCycles
// prices the estimate through the same memory-time model as Result.Cycles.
type SampledResult struct {
	Spec     Spec
	Workload string
	// SampleK is the sampling divisor: ~1/K of the LLC sets simulated.
	SampleK uint32
	// L1 and L2 are exact — the recording's upper-level filter saw every
	// access regardless of sampling.
	L1, L2 cache.Stats
	// SampledLLC holds the raw stats of the partial LLC simulation; its
	// counters cover only the sampled sets.
	SampledLLC cache.Stats
	// Est extrapolates SampledLLC to the whole cache.
	Est stats.SetEstimate
	// EstCycles is the memory-time estimate using Est.EstMisses.
	EstCycles float64
	// AppTime is the recording run's execution time (as on the replay path).
	AppTime time.Duration
}

// MissRatio returns the estimated whole-cache LLC miss ratio.
func (r SampledResult) MissRatio() float64 { return r.Est.MissRatio }

// SampledReplayResult is the context-free convenience form of
// SampledReplayResultCtx.
func SampledReplayResult(tr *trace.Trace, spec Spec, workloadName string, abrArrays [][2]uint64, sampleK uint32) (SampledResult, error) {
	return SampledReplayResultCtx(context.Background(), tr, spec, workloadName, abrArrays, sampleK)
}

// SampledReplayResultCtx produces one datapoint's sampled estimate from a
// recorded trace: the recording is decoded once (broadcast path) and fed
// through a set filter in front of a fresh replay LLC. With sampleK=1 the
// filter passes every access and SampledLLC equals a full replay's stats
// bit for bit.
func SampledReplayResultCtx(ctx context.Context, tr *trace.Trace, spec Spec, workloadName string, abrArrays [][2]uint64, sampleK uint32) (SampledResult, error) {
	res, _, err := SampledReplayResultSkipCtx(ctx, tr, spec, workloadName, abrArrays, sampleK)
	return res, err
}

// SampledReplayResultSkipCtx is SampledReplayResultCtx returning the
// codec-layer SkipReport alongside the estimate. The skip accounting
// lives OUTSIDE SampledResult deliberately: the estimate is a pure
// function of (trace, spec, K) however the decode was planned — a solo
// replay masks only its own sampled sets while a fan-out masks the union
// — so results stay comparable across paths while the work saved is
// reported per run.
func SampledReplayResultSkipCtx(ctx context.Context, tr *trace.Trace, spec Spec, workloadName string, abrArrays [][2]uint64, sampleK uint32) (SampledResult, trace.SkipReport, error) {
	res, rep, err := BroadcastSampledResultsSkipCtx(ctx, tr, []Spec{spec}, workloadName, abrArrays, sampleK)
	if err != nil {
		return SampledResult{}, rep, err
	}
	return res[0], rep, nil
}

// BroadcastSampledResultsCtx fans ONE decode pass of the recording out to
// a set-filtered replay LLC per spec: the sampled twin of
// BroadcastResultsCtx. All specs share the sampling divisor, but each
// spec's filter derives its own set selection from its own LLC geometry,
// so specs may differ in policy and geometry alike.
func BroadcastSampledResultsCtx(ctx context.Context, tr *trace.Trace, specs []Spec, workloadName string, abrArrays [][2]uint64, sampleK uint32) ([]SampledResult, error) {
	res, _, err := BroadcastSampledResultsSkipCtx(ctx, tr, specs, workloadName, abrArrays, sampleK)
	return res, err
}

// BroadcastSampledResultsSkipCtx is BroadcastSampledResultsCtx returning
// the codec-layer SkipReport alongside the results. It is the sampled
// decode planner: it intersects every consumer's sampled-set selection
// with the trace once per broadcast — each spec's selection, derived
// from its own LLC geometry, projects onto the presence buckets via
// trace.SampledSetsMask and the union drives the masked fan-out — so
// chunks no consumer samples skip decode entirely and non-sampled
// records prune inside the decode loop. Each SetFilter still applies its
// exact per-set test to what survives, so a spec whose geometry samples
// fewer buckets than the union sees identical results to a dedicated
// replay. With the skip path disabled (SetSampledChunkSkip(false)) the
// fan-out decodes every chunk and the report is zero — PR 7's reference
// path, which the equivalence suite pins against this one bit for bit.
func BroadcastSampledResultsSkipCtx(ctx context.Context, tr *trace.Trace, specs []Spec, workloadName string, abrArrays [][2]uint64, sampleK uint32) ([]SampledResult, trace.SkipReport, error) {
	var rep trace.SkipReport
	if sampleK == 0 {
		return nil, rep, fmt.Errorf("sim: sample divisor must be >= 1, got 0")
	}
	filters := make([]*trace.SetFilter, len(specs))
	consumers := make([]func([]mem.Access), len(specs))
	var mask trace.PresenceMask
	for i, spec := range specs {
		pinfo, err := PolicyByName(spec.Policy)
		if err != nil {
			return nil, rep, err
		}
		llc, err := NewReplayLLC(spec.HCfg.LLC, pinfo, abrArrays)
		if err != nil {
			return nil, rep, err
		}
		sampled := trace.SampledSets(llc.NumSets(), sampleK)
		f, err := trace.NewSetFilter(llc, sampled)
		if err != nil {
			return nil, rep, err
		}
		filters[i] = f
		consumers[i] = f.Consume
		mask.Or(trace.SampledSetsMask(llc.NumSets(), sampled))
	}
	if SampledChunkSkip() {
		r, err := tr.BroadcastMaskedNCtx(ctx, 0, mask, consumers)
		if err != nil {
			return nil, rep, err
		}
		rep = r
	} else if err := tr.BroadcastNCtx(ctx, 0, consumers); err != nil {
		return nil, rep, err
	}
	out := make([]SampledResult, len(specs))
	for i, spec := range specs {
		f := filters[i]
		acc, miss := f.Counts()
		est := stats.EstimateSetSample(acc, miss, int(f.LLC().NumSets()), uint64(tr.Len()))
		out[i] = SampledResult{
			Spec:       spec,
			Workload:   workloadName,
			SampleK:    sampleK,
			L1:         tr.L1Stats(),
			L2:         tr.L2Stats(),
			SampledLLC: f.LLC().Stats,
			Est:        est,
			EstCycles:  cache.MemoryCyclesEst(spec.HCfg, tr.L1Stats(), tr.L2Stats(), est.EstMisses),
			AppTime:    tr.AppTime(),
		}
	}
	return out, rep, nil
}
