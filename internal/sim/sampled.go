// Set-sampled replay: the fast-fidelity tier. A full replay simulates
// every LLC set; the sampled tier replays the same recording through a
// trace.SetFilter so only a deterministic 1/K subset of sets is simulated,
// and extrapolates whole-cache miss metrics with a confidence interval
// (internal/stats, DESIGN.md Sec. 14). sample_k=1 selects every set and is
// bit-identical to a full replay — the property the equivalence tests pin.
package sim

import (
	"context"
	"fmt"
	"time"

	"grasp/internal/cache"
	"grasp/internal/mem"
	"grasp/internal/stats"
	"grasp/internal/trace"
)

// SampledResult is the fast-tier counterpart of Result: exact L1/L2 stats
// from the recording, observed LLC stats over the sampled sets only, and
// the extrapolated whole-cache estimate with its error bars. EstCycles
// prices the estimate through the same memory-time model as Result.Cycles.
type SampledResult struct {
	Spec     Spec
	Workload string
	// SampleK is the sampling divisor: ~1/K of the LLC sets simulated.
	SampleK uint32
	// L1 and L2 are exact — the recording's upper-level filter saw every
	// access regardless of sampling.
	L1, L2 cache.Stats
	// SampledLLC holds the raw stats of the partial LLC simulation; its
	// counters cover only the sampled sets.
	SampledLLC cache.Stats
	// Est extrapolates SampledLLC to the whole cache.
	Est stats.SetEstimate
	// EstCycles is the memory-time estimate using Est.EstMisses.
	EstCycles float64
	// AppTime is the recording run's execution time (as on the replay path).
	AppTime time.Duration
}

// MissRatio returns the estimated whole-cache LLC miss ratio.
func (r SampledResult) MissRatio() float64 { return r.Est.MissRatio }

// SampledReplayResult is the context-free convenience form of
// SampledReplayResultCtx.
func SampledReplayResult(tr *trace.Trace, spec Spec, workloadName string, abrArrays [][2]uint64, sampleK uint32) (SampledResult, error) {
	return SampledReplayResultCtx(context.Background(), tr, spec, workloadName, abrArrays, sampleK)
}

// SampledReplayResultCtx produces one datapoint's sampled estimate from a
// recorded trace: the recording is decoded once (broadcast path) and fed
// through a set filter in front of a fresh replay LLC. With sampleK=1 the
// filter passes every access and SampledLLC equals a full replay's stats
// bit for bit.
func SampledReplayResultCtx(ctx context.Context, tr *trace.Trace, spec Spec, workloadName string, abrArrays [][2]uint64, sampleK uint32) (SampledResult, error) {
	res, err := BroadcastSampledResultsCtx(ctx, tr, []Spec{spec}, workloadName, abrArrays, sampleK)
	if err != nil {
		return SampledResult{}, err
	}
	return res[0], nil
}

// BroadcastSampledResultsCtx fans ONE decode pass of the recording out to
// a set-filtered replay LLC per spec: the sampled twin of
// BroadcastResultsCtx. All specs share the sampling divisor, but each
// spec's filter derives its own set selection from its own LLC geometry,
// so specs may differ in policy and geometry alike.
func BroadcastSampledResultsCtx(ctx context.Context, tr *trace.Trace, specs []Spec, workloadName string, abrArrays [][2]uint64, sampleK uint32) ([]SampledResult, error) {
	if sampleK == 0 {
		return nil, fmt.Errorf("sim: sample divisor must be >= 1, got 0")
	}
	filters := make([]*trace.SetFilter, len(specs))
	consumers := make([]func([]mem.Access), len(specs))
	for i, spec := range specs {
		pinfo, err := PolicyByName(spec.Policy)
		if err != nil {
			return nil, err
		}
		llc, err := NewReplayLLC(spec.HCfg.LLC, pinfo, abrArrays)
		if err != nil {
			return nil, err
		}
		f, err := trace.NewSetFilter(llc, trace.SampledSets(llc.NumSets(), sampleK))
		if err != nil {
			return nil, err
		}
		filters[i] = f
		consumers[i] = f.Consume
	}
	if err := tr.BroadcastNCtx(ctx, 0, consumers); err != nil {
		return nil, err
	}
	out := make([]SampledResult, len(specs))
	for i, spec := range specs {
		f := filters[i]
		acc, miss := f.Counts()
		est := stats.EstimateSetSample(acc, miss, int(f.LLC().NumSets()), uint64(tr.Len()))
		out[i] = SampledResult{
			Spec:       spec,
			Workload:   workloadName,
			SampleK:    sampleK,
			L1:         tr.L1Stats(),
			L2:         tr.L2Stats(),
			SampledLLC: f.LLC().Stats,
			Est:        est,
			EstCycles:  cache.MemoryCyclesEst(spec.HCfg, tr.L1Stats(), tr.L2Stats(), est.EstMisses),
			AppTime:    tr.AppTime(),
		}
	}
	return out, nil
}
