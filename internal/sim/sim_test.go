package sim

import (
	"testing"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/graph"
	"grasp/internal/policy"
)

// testHCfg returns a tiny hierarchy so tests run fast while preserving the
// thrash regime (property footprint >> LLC).
func testHCfg() cache.HierarchyConfig {
	h := cache.DefaultHierarchyConfig()
	// Keep the paper's thrash regime at test scale: the merged Property
	// Array (4096 vertices x 16B = 64KB) is 8x the LLC.
	h.L1 = cache.Config{SizeBytes: 1 << 10, Ways: 8}
	h.L2 = cache.Config{SizeBytes: 2 << 10, Ways: 8}
	h.LLC = cache.Config{SizeBytes: 8 << 10, Ways: 16}
	return h
}

func testWorkload(t *testing.T, dsName, reorderName string, weighted bool) *Workload {
	t.Helper()
	ds, err := graph.DatasetByName(dsName)
	if err != nil {
		t.Fatal(err)
	}
	w, err := PrepareWorkload(ds, reorderName, weighted, 32) // 4096 vertices
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPolicyRegistryComplete(t *testing.T) {
	want := []string{"LRU", "RRIP", "SHiP-MEM", "Hawkeye", "Leeway",
		"PIN-25", "PIN-50", "PIN-75", "PIN-100",
		"RRIP+Hints", "GRASP (Insertion-Only)", "GRASP", "GRASP-LRU"}
	for _, n := range want {
		p, err := PolicyByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if p.New == nil {
			t.Fatalf("%s: nil constructor", n)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("expected error")
	}
	// Hint consumers must be flagged.
	for _, n := range []string{"GRASP", "RRIP+Hints", "PIN-75", "GRASP-LRU"} {
		p, _ := PolicyByName(n)
		if !p.NeedsABRs {
			t.Fatalf("%s must need ABRs", n)
		}
	}
	for _, n := range []string{"RRIP", "LRU", "Hawkeye"} {
		p, _ := PolicyByName(n)
		if p.NeedsABRs {
			t.Fatalf("%s must not need ABRs", n)
		}
	}
}

func TestPrepareWorkloadReorders(t *testing.T) {
	w := testWorkload(t, "lj", "DBG", false)
	if w.Graph == nil || w.Graph.NumVertices() == 0 {
		t.Fatal("workload graph missing")
	}
	if w.ReorderCost < 0 {
		t.Fatal("negative reorder cost")
	}
	// DBG segregates hot vertices at low IDs: average degree of the first
	// 10% of IDs must exceed the global average.
	g := w.Graph
	n := g.NumVertices()
	var headDeg uint64
	head := n / 10
	for v := uint32(0); v < head; v++ {
		headDeg += uint64(g.OutDegree(v) + g.InDegree(v))
	}
	headAvg := float64(headDeg) / float64(head)
	globalAvg := 2 * g.AvgDegree()
	if headAvg <= globalAvg {
		t.Fatalf("DBG head avg degree %.1f <= global %.1f", headAvg, globalAvg)
	}
}

func TestRunProducesStats(t *testing.T) {
	w := testWorkload(t, "lj", "DBG", false)
	res, err := Run(w, Spec{App: "PR", Layout: apps.LayoutMerged, Policy: "RRIP", HCfg: testHCfg()})
	if err != nil {
		t.Fatal(err)
	}
	if res.LLC.Accesses() == 0 || res.L1.Accesses() == 0 {
		t.Fatal("no accesses simulated")
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles modeled")
	}
	if res.LLC.Misses == 0 {
		t.Fatal("thrash regime expected LLC misses")
	}
	// Property accesses must dominate LLC accesses (Fig. 2: 78-94%).
	share := float64(res.LLC.PropHits+res.LLC.PropMisses) / float64(res.LLC.Accesses())
	if share < 0.5 {
		t.Fatalf("property share of LLC accesses = %.2f, want > 0.5", share)
	}
}

func TestRunAllAppsAllCorePolicies(t *testing.T) {
	hcfg := testHCfg()
	for _, app := range apps.Names() {
		weighted := app == "SSSP"
		w := testWorkload(t, "pl", "DBG", weighted)
		for _, pol := range []string{"RRIP", "GRASP", "PIN-75"} {
			res, err := Run(w, Spec{App: app, Layout: apps.LayoutMerged, Policy: pol, HCfg: hcfg})
			if err != nil {
				t.Fatalf("%s/%s: %v", app, pol, err)
			}
			if res.LLC.Accesses() == 0 {
				t.Fatalf("%s/%s: empty LLC stream", app, pol)
			}
		}
	}
}

func TestGRASPBeatsRRIPOnHighSkew(t *testing.T) {
	// The headline result at small scale: on a skewed dataset with DBG
	// reordering, GRASP must reduce misses relative to RRIP for PR.
	w := testWorkload(t, "kr", "DBG", false)
	hcfg := testHCfg()
	base, err := Run(w, Spec{App: "PR", Layout: apps.LayoutMerged, Policy: "RRIP", HCfg: hcfg})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Run(w, Spec{App: "PR", Layout: apps.LayoutMerged, Policy: "GRASP", HCfg: hcfg})
	if err != nil {
		t.Fatal(err)
	}
	if gr.LLC.Misses >= base.LLC.Misses {
		t.Fatalf("GRASP misses %d >= RRIP %d on high-skew PR", gr.LLC.Misses, base.LLC.Misses)
	}
	if gr.SpeedupPctOver(base) <= 0 {
		t.Fatalf("GRASP speedup %.2f%% not positive", gr.SpeedupPctOver(base))
	}
}

func TestSpeedupAndMissReductionMath(t *testing.T) {
	base := Result{Cycles: 200}
	base.LLC.Misses = 100
	r := Result{Cycles: 100}
	r.LLC.Misses = 80
	if s := r.SpeedupPctOver(base); s != 100 {
		t.Fatalf("speedup = %f, want 100", s)
	}
	if m := r.MissReductionPctOver(base); m < 19.999 || m > 20.001 {
		t.Fatalf("miss reduction = %f, want 20", m)
	}
	zero := Result{}
	if r.MissReductionPctOver(zero) != 0 {
		t.Fatal("zero-miss base must not divide by zero")
	}
}

func TestRecordAndReplayTraceConsistency(t *testing.T) {
	// Replaying the recorded LLC trace under a policy must give the same
	// LLC stats as the execution-driven run with that policy.
	w := testWorkload(t, "tw", "DBG", false)
	hcfg := testHCfg()
	tr, err := RecordTrace(w, "PR", apps.LayoutMerged, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	if tr.Len() == 0 {
		t.Fatal("empty LLC trace")
	}
	full, err := Run(w, Spec{App: "PR", Layout: apps.LayoutMerged, Policy: "RRIP", HCfg: hcfg})
	if err != nil {
		t.Fatal(err)
	}
	rrip, _ := PolicyByName("RRIP")
	replayed, err := ReplayStats(tr, hcfg.LLC, rrip, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Misses != full.LLC.Misses || replayed.Hits != full.LLC.Hits {
		t.Fatalf("replay (%d/%d) != run (%d/%d)",
			replayed.Hits, replayed.Misses, full.LLC.Hits, full.LLC.Misses)
	}
}

func TestReplayWithGRASPHints(t *testing.T) {
	w := testWorkload(t, "tw", "DBG", false)
	hcfg := testHCfg()
	tr, err := RecordTrace(w, "PR", apps.LayoutMerged, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	bounds, err := ABRBoundsFor(w, "PR", apps.LayoutMerged)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 1 {
		t.Fatalf("merged PR should have 1 ABR pair, got %d", len(bounds))
	}
	gr, _ := PolicyByName("GRASP")
	gst, err := ReplayStats(tr, hcfg.LLC, gr, bounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(w, Spec{App: "PR", Layout: apps.LayoutMerged, Policy: "GRASP", HCfg: hcfg})
	if err != nil {
		t.Fatal(err)
	}
	if gst.Misses != full.LLC.Misses {
		t.Fatalf("GRASP replay misses %d != run misses %d", gst.Misses, full.LLC.Misses)
	}
}

func TestOPTBeatsEveryOnlinePolicyOnRealTrace(t *testing.T) {
	w := testWorkload(t, "lj", "DBG", false)
	hcfg := testHCfg()
	tr, err := RecordTrace(w, "PR", apps.LayoutMerged, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	blocks, err := tr.Blocks(0)
	if err != nil {
		t.Fatal(err)
	}
	opt := policy.SimulateOPT(blocks, hcfg.LLC.Sets(), hcfg.LLC.Ways)
	for _, pname := range []string{"LRU", "RRIP", "GRASP"} {
		pinfo, _ := PolicyByName(pname)
		var bounds [][2]uint64
		if pinfo.NeedsABRs {
			bounds, _ = ABRBoundsFor(w, "PR", apps.LayoutMerged)
		}
		st, err := ReplayStats(tr, hcfg.LLC, pinfo, bounds, 0)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Misses > st.Misses {
			t.Fatalf("OPT misses %d > %s misses %d", opt.Misses, pname, st.Misses)
		}
	}
}

func TestTraceLimit(t *testing.T) {
	w := testWorkload(t, "lj", "DBG", false)
	tr, err := RecordTrace(w, "PR", apps.LayoutMerged, testHCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	addrs, err := tr.Addrs(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1000 {
		t.Fatalf("bounded decode length %d, want capped at 1000", len(addrs))
	}
}
