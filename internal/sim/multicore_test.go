package sim

import (
	"testing"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/mem"
)

func testMCConfig() MulticoreConfig {
	m := DefaultMulticoreConfig()
	m.Base = testHCfg()
	m.Cores = 4
	m.ChunkAccesses = 256
	return m
}

func TestMulticoreConfigValidation(t *testing.T) {
	if _, err := NewMulticore(MulticoreConfig{Base: testHCfg(), Cores: 0, ChunkAccesses: 1, QuantumAccesses: 1}, cache.NewLRU(1, 1), nil); err == nil {
		t.Fatal("expected error for 0 cores")
	}
	if _, err := NewMulticore(MulticoreConfig{Base: testHCfg(), Cores: 2, ChunkAccesses: 0, QuantumAccesses: 1}, cache.NewLRU(1, 1), nil); err == nil {
		t.Fatal("expected error for 0 chunk")
	}
	bad := testMCConfig()
	bad.Base.L1.SizeBytes = 1000
	lru := cache.NewLRU(bad.Base.LLC.Sets(), bad.Base.LLC.Ways)
	if _, err := NewMulticore(bad, lru, nil); err == nil {
		t.Fatal("expected error for bad L1 geometry")
	}
}

func TestMulticoreConservesAccesses(t *testing.T) {
	mcfg := testMCConfig()
	lru := cache.NewLRU(mcfg.Base.LLC.Sets(), mcfg.Base.LLC.Ways)
	m, err := NewMulticore(mcfg, lru, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		m.Access(mem.Access{Addr: uint64(i*64) % (1 << 20)})
	}
	m.Finish()
	if got := m.L1Stats().Accesses(); got != n {
		t.Fatalf("L1 accesses %d, want %d", got, n)
	}
	// Every L2 miss must reach the LLC after Finish.
	if m.L2Stats().Misses != m.LLC.Stats.Accesses() {
		t.Fatalf("L2 misses %d != LLC accesses %d", m.L2Stats().Misses, m.LLC.Stats.Accesses())
	}
}

func TestMulticoreSpreadsAcrossCores(t *testing.T) {
	mcfg := testMCConfig()
	lru := cache.NewLRU(mcfg.Base.LLC.Sets(), mcfg.Base.LLC.Ways)
	m, _ := NewMulticore(mcfg, lru, nil)
	for i := 0; i < mcfg.ChunkAccesses*mcfg.Cores*3; i++ {
		m.Access(mem.Access{Addr: uint64(i) << 6})
	}
	m.Finish()
	for c, l1 := range m.l1s {
		if l1.Stats.Accesses() == 0 {
			t.Fatalf("core %d received no accesses", c)
		}
	}
}

func TestRunMulticoreGRASPStillWins(t *testing.T) {
	w := testWorkload(t, "kr", "DBG", false)
	mcfg := testMCConfig()
	spec := Spec{App: "PR", Layout: apps.LayoutMerged, Policy: "RRIP", HCfg: testHCfg()}
	base, err := RunMulticore(w, spec, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	spec.Policy = "GRASP"
	gr, err := RunMulticore(w, spec, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.LLC.Accesses() == 0 {
		t.Fatal("no LLC traffic in multicore run")
	}
	if gr.LLC.Misses >= base.LLC.Misses {
		t.Fatalf("multicore GRASP misses %d >= RRIP %d", gr.LLC.Misses, base.LLC.Misses)
	}
	if gr.Cycles <= 0 || base.Cycles <= 0 {
		t.Fatal("memory-time model returned nonpositive cycles")
	}
}

func TestMulticoreMatchesSingleCoreDirectionally(t *testing.T) {
	// Single-core and 4-core runs must agree on the winner (GRASP < RRIP
	// misses) even though absolute counts differ.
	w := testWorkload(t, "tw", "DBG", false)
	hcfg := testHCfg()
	mcfg := testMCConfig()
	single := func(pol string) uint64 {
		r, err := Run(w, Spec{App: "PR", Layout: apps.LayoutMerged, Policy: pol, HCfg: hcfg})
		if err != nil {
			t.Fatal(err)
		}
		return r.LLC.Misses
	}
	multi := func(pol string) uint64 {
		r, err := RunMulticore(w, Spec{App: "PR", Layout: apps.LayoutMerged, Policy: pol, HCfg: hcfg}, mcfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.LLC.Misses
	}
	sWin := single("GRASP") < single("RRIP")
	mWin := multi("GRASP") < multi("RRIP")
	if sWin != mWin {
		t.Fatalf("single-core winner (grasp=%v) disagrees with multicore (grasp=%v)", sWin, mWin)
	}
}
