package sim

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/graph"
	"grasp/internal/mem"
	"grasp/internal/policy"
	"grasp/internal/trace"
)

// corunFixture shares one scaled workload and one recording per kernel
// across the co-run suites (recording is the expensive half).
type corunFixture struct {
	hcfg   cache.HierarchyConfig
	w      *Workload
	traces map[string]*trace.Trace
	bounds map[string][][2]uint64
}

func newCorunFixture(t *testing.T, appNames ...string) *corunFixture {
	t.Helper()
	ds, err := graph.DatasetByName("lj")
	if err != nil {
		t.Fatal(err)
	}
	w, err := PrepareWorkload(ds, "DBG", false, 64)
	if err != nil {
		t.Fatal(err)
	}
	fx := &corunFixture{hcfg: replayTestHCfg(), w: w,
		traces: make(map[string]*trace.Trace), bounds: make(map[string][][2]uint64)}
	for _, app := range appNames {
		tr, err := RecordTrace(w, app, apps.LayoutMerged, fx.hcfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Release)
		if tr.Len() == 0 {
			t.Fatalf("%s: recording captured no LLC-bound accesses", app)
		}
		b, err := ABRBoundsFor(w, app, apps.LayoutMerged)
		if err != nil {
			t.Fatal(err)
		}
		fx.traces[app], fx.bounds[app] = tr, b
	}
	return fx
}

// stream builds one CorunStream over the fixture's recording of app.
func (fx *corunFixture) stream(app string, weight int) CorunStream {
	return CorunStream{App: app, Layout: apps.LayoutMerged, Weight: weight,
		Trace: fx.traces[app], Bounds: fx.bounds[app]}
}

// TestCorunSingleAppBitIdentical is the co-run equivalence suite: for
// EVERY registered policy, a 1-app co-run must be bit-identical to the
// plain single-app replay — same private-level stats, same attributed and
// shared LLC stats, same modeled cycles — and report the no-interference
// fairness values exactly (slowdown 1, weighted speedup 1, unfairness 1).
func TestCorunSingleAppBitIdentical(t *testing.T) {
	fx := newCorunFixture(t, "PR")
	for _, pinfo := range Policies() {
		spec := Spec{App: "PR", Layout: apps.LayoutMerged, Policy: pinfo.Name, HCfg: fx.hcfg}
		solo, err := ReplayResult(fx.traces["PR"], spec, fx.w.Dataset.Name, fx.bounds["PR"])
		if err != nil {
			t.Fatalf("%s: solo replay: %v", pinfo.Name, err)
		}
		r, err := CorunReplayWithSolosCtx(context.Background(),
			[]CorunStream{fx.stream("PR", 1)}, pinfo.Name, fx.hcfg, fx.w.Dataset.Name)
		if err != nil {
			t.Fatalf("%s: co-run: %v", pinfo.Name, err)
		}
		a := r.Apps[0]
		if a.L1 != solo.L1 || a.L2 != solo.L2 {
			t.Errorf("%s: private-level stats diverge from solo replay", pinfo.Name)
		}
		if a.LLC != solo.LLC || r.LLC != solo.LLC {
			t.Errorf("%s: 1-app co-run LLC stats diverge from solo replay\ncorun: %+v\nsolo:  %+v",
				pinfo.Name, a.LLC, solo.LLC)
		}
		if a.Cycles != solo.Cycles {
			t.Errorf("%s: cycles %v != solo %v", pinfo.Name, a.Cycles, solo.Cycles)
		}
		if a.Solo.AppTime != solo.AppTime {
			a.Solo.AppTime = solo.AppTime // never differs: same recording's wall-clock
		}
		if a.Solo != solo {
			t.Errorf("%s: embedded solo baseline diverges from direct solo replay", pinfo.Name)
		}
		if a.Slowdown != 1 || r.WeightedSpeedup != 1 || r.Unfairness != 1 {
			t.Errorf("%s: 1-app fairness = (slowdown %v, ws %v, unfairness %v), want all exactly 1",
				pinfo.Name, a.Slowdown, r.WeightedSpeedup, r.Unfairness)
		}
	}
}

// TestCorunDeterministic: a co-run replay is bit-reproducible across runs
// and GOMAXPROCS settings (the interleave is single-threaded and the
// schedule a pure function of the inputs).
func TestCorunDeterministic(t *testing.T) {
	fx := newCorunFixture(t, "BFS", "PR")
	streams := []CorunStream{fx.stream("BFS", 2), fx.stream("PR", 1), fx.stream("BFS", 1)}
	run := func() CorunResult {
		r, err := CorunReplayWithSolosCtx(context.Background(), streams, "GRASP", fx.hcfg, fx.w.Dataset.Name)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run()
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for i := 0; i < 2; i++ {
		if got := run(); !reflect.DeepEqual(got, base) {
			t.Fatalf("run %d (GOMAXPROCS=1): co-run result diverged\ngot:  %+v\nbase: %+v", i, got, base)
		}
	}
}

// TestCorunAttributionSums is the partition property: per-app attributed
// LLC stats must sum EXACTLY to the shared totals, counter for counter,
// on every mix shape — including duplicate apps and skewed weights — for
// a policy from each family (baseline, hint-consuming, PC-indexed).
func TestCorunAttributionSums(t *testing.T) {
	fx := newCorunFixture(t, "BFS", "PR", "KCore")
	mixes := [][]CorunStream{
		{fx.stream("BFS", 1), fx.stream("PR", 1)},
		{fx.stream("PR", 3), fx.stream("PR", 1)},
		{fx.stream("BFS", 1), fx.stream("PR", 2), fx.stream("KCore", 5), fx.stream("PR", 1)},
	}
	for _, polName := range []string{"RRIP", "GRASP", "SHiP-PC"} {
		for mi, streams := range mixes {
			r, err := CorunReplayWithSolosCtx(context.Background(), streams, polName, fx.hcfg, fx.w.Dataset.Name)
			if err != nil {
				t.Fatalf("%s mix %d: %v", polName, mi, err)
			}
			var sum cache.Stats
			for _, a := range r.Apps {
				addStats(&sum, a.LLC)
			}
			if sum != r.LLC {
				t.Errorf("%s mix %d: attribution does not partition the shared LLC\nsum:    %+v\nshared: %+v",
					polName, mi, sum, r.LLC)
			}
			if r.Unfairness < 1 {
				t.Errorf("%s mix %d: unfairness %v < 1", polName, mi, r.Unfairness)
			}
			// Unfairness == 1 exactly when every slowdown is equal.
			minS, maxS := r.Apps[0].Slowdown, r.Apps[0].Slowdown
			for _, a := range r.Apps {
				if a.Slowdown < minS {
					minS = a.Slowdown
				}
				if a.Slowdown > maxS {
					maxS = a.Slowdown
				}
			}
			if (r.Unfairness == 1) != (minS == maxS) {
				t.Errorf("%s mix %d: unfairness %v inconsistent with slowdown range [%v, %v]",
					polName, mi, r.Unfairness, minS, maxS)
			}
		}
	}
}

// TestCorunOPTLowerBound extends the Belady property to the multi-stream
// path: OPT, run offline over the exact tagged block stream the shared
// LLC observed, lower-bounds every registered policy's aggregate co-run
// miss count.
func TestCorunOPTLowerBound(t *testing.T) {
	if testing.Short() {
		t.Skip("policy sweep skipped in -short mode")
	}
	fx := newCorunFixture(t, "BFS", "PR")
	streams := []CorunStream{fx.stream("BFS", 1), fx.stream("PR", 2)}
	// Reconstruct the interleaved, stream-tagged block stream exactly as
	// CorunReplayResultCtx replays it.
	its := []trace.InterleaveStream{
		{Trace: fx.traces["BFS"], Weight: 1},
		{Trace: fx.traces["PR"], Weight: 2},
	}
	var blocks []uint64
	err := trace.InterleaveReplayCtx(context.Background(), its, 0, func(stream int, accs []mem.Access) {
		base := uint64(stream) << corunStreamShift
		for _, a := range accs {
			blocks = append(blocks, cache.BlockAddr(a.Addr+base))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	llcCfg := fx.hcfg.LLC
	opt := policy.SimulateOPT(blocks, llcCfg.Sets(), llcCfg.Ways)
	for _, pinfo := range Policies() {
		r, err := CorunReplayWithSolosCtx(context.Background(), streams, pinfo.Name, fx.hcfg, fx.w.Dataset.Name)
		if err != nil {
			t.Fatalf("%s: %v", pinfo.Name, err)
		}
		if r.LLC.Accesses() != opt.Accesses() {
			t.Fatalf("%s: co-run replayed %d accesses, OPT trace has %d", pinfo.Name, r.LLC.Accesses(), opt.Accesses())
		}
		if opt.Misses > r.LLC.Misses {
			t.Errorf("%s: OPT misses %d exceed the policy's %d — Belady bound violated",
				pinfo.Name, opt.Misses, r.LLC.Misses)
		}
	}
}

// TestCorunValidation: the argument contract errors.
func TestCorunValidation(t *testing.T) {
	fx := newCorunFixture(t, "PR")
	bg := context.Background()
	if _, err := CorunReplayResultCtx(bg, nil, "GRASP", fx.hcfg, "lj"); err == nil {
		t.Error("empty mix accepted")
	}
	wide := make([]CorunStream, MaxCorunApps+1)
	for i := range wide {
		wide[i] = fx.stream("PR", 1)
	}
	if _, err := CorunReplayResultCtx(bg, wide, "GRASP", fx.hcfg, "lj"); err == nil {
		t.Errorf("mix of %d streams accepted", len(wide))
	}
	if _, err := CorunReplayResultCtx(bg, []CorunStream{fx.stream("PR", 0)}, "GRASP", fx.hcfg, "lj"); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := CorunReplayResultCtx(bg, []CorunStream{fx.stream("PR", 1)}, "nope", fx.hcfg, "lj"); err == nil {
		t.Error("unknown policy accepted")
	}
}
