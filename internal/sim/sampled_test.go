package sim

import (
	"math"
	"runtime"
	"testing"

	"grasp/internal/apps"
	"grasp/internal/graph"
)

// TestSampledK1MatchesFullReplay extends the replay-equivalence suite to
// the sampled tier's degenerate point: with sample_k=1 every LLC set is
// selected, so the set-filtered replay must be bit-identical to a full
// replay for every registered policy — same LLC stats, an estimate equal
// to the exact miss metrics, and zero reported error.
func TestSampledK1MatchesFullReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep skipped in -short mode")
	}
	ds, err := graph.DatasetByName("lj")
	if err != nil {
		t.Fatal(err)
	}
	hcfg := replayTestHCfg()
	w, err := PrepareWorkload(ds, "DBG", false, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RecordTrace(w, "PR", apps.LayoutMerged, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	bounds, err := ABRBoundsFor(w, "PR", apps.LayoutMerged)
	if err != nil {
		t.Fatal(err)
	}
	for _, pinfo := range Policies() {
		spec := Spec{App: "PR", Layout: apps.LayoutMerged, Policy: pinfo.Name, HCfg: hcfg}
		full, err := ReplayResult(tr, spec, w.Dataset.Name, bounds)
		if err != nil {
			t.Fatalf("%s: full replay: %v", pinfo.Name, err)
		}
		sampled, err := SampledReplayResult(tr, spec, w.Dataset.Name, bounds, 1)
		if err != nil {
			t.Fatalf("%s: sampled replay: %v", pinfo.Name, err)
		}
		if sampled.SampledLLC != full.LLC {
			t.Errorf("%s: k=1 sampled LLC stats diverge from full replay\nfull:    %+v\nsampled: %+v",
				pinfo.Name, full.LLC, sampled.SampledLLC)
		}
		if sampled.L1 != full.L1 || sampled.L2 != full.L2 {
			t.Errorf("%s: k=1 upper-level stats diverge from full replay", pinfo.Name)
		}
		e := sampled.Est
		if e.SampledSets != e.TotalSets {
			t.Errorf("%s: k=1 sampled %d of %d sets, want all", pinfo.Name, e.SampledSets, e.TotalSets)
		}
		if e.StdErr != 0 || e.CI95 != 0 {
			t.Errorf("%s: k=1 must report zero error, got stderr=%g ci=%g", pinfo.Name, e.StdErr, e.CI95)
		}
		if e.TotalAccesses != full.LLC.Accesses() {
			t.Errorf("%s: total accesses %d, full replay saw %d", pinfo.Name, e.TotalAccesses, full.LLC.Accesses())
		}
		// EstMisses = (m/a)*a round-trips through floating point; allow ulps.
		if math.Abs(e.EstMisses-float64(full.LLC.Misses)) > 1e-6*math.Max(1, float64(full.LLC.Misses)) {
			t.Errorf("%s: k=1 estimated %.3f misses, exact %d", pinfo.Name, e.EstMisses, full.LLC.Misses)
		}
		if math.Abs(sampled.EstCycles-full.Cycles) > 1e-6*full.Cycles {
			t.Errorf("%s: k=1 estimated %.1f cycles, exact %.1f", pinfo.Name, sampled.EstCycles, full.Cycles)
		}
	}
}

// TestSampledReplayDeterministic pins the fast tier's reproducibility: the
// sampled replay of one recording must return identical estimates across
// repeated runs, across GOMAXPROCS settings, and whether the datapoint is
// replayed alone or fanned out with every other policy in one broadcast.
// The set selection is a pure function of (sets, k) and each filter is a
// sequential broadcast consumer, so nothing may vary. CI runs this under
// -race.
func TestSampledReplayDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep skipped in -short mode")
	}
	ds, err := graph.DatasetByName("tw")
	if err != nil {
		t.Fatal(err)
	}
	hcfg := replayTestHCfg()
	w, err := PrepareWorkload(ds, "DBG", false, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RecordTrace(w, "PR", apps.LayoutMerged, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	bounds, err := ABRBoundsFor(w, "PR", apps.LayoutMerged)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]Spec, len(Policies()))
	for i, pinfo := range Policies() {
		specs[i] = Spec{App: "PR", Layout: apps.LayoutMerged, Policy: pinfo.Name, HCfg: hcfg}
	}
	const sampleK = 4
	ref, err := BroadcastSampledResultsCtx(t.Context(), tr, specs, w.Dataset.Name, bounds, sampleK)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, prev} {
		runtime.GOMAXPROCS(procs)
		got, err := BroadcastSampledResultsCtx(t.Context(), tr, specs, w.Dataset.Name, bounds, sampleK)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		for i := range specs {
			if got[i] != ref[i] {
				t.Errorf("GOMAXPROCS=%d: %s: sampled replay not deterministic\nfirst: %+v\nnow:   %+v",
					procs, specs[i].Policy, ref[i], got[i])
			}
		}
		// A solo replay must match its slot in the all-policy fan-out.
		solo, err := SampledReplayResult(tr, specs[procs%len(specs)], w.Dataset.Name, bounds, sampleK)
		if err != nil {
			t.Fatal(err)
		}
		if solo != ref[procs%len(specs)] {
			t.Errorf("GOMAXPROCS=%d: solo sampled replay differs from broadcast fan-out slot", procs)
		}
	}
}
