package sim

import (
	"testing"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/graph"
)

// replayTestHCfg is a small but fully functional hierarchy (power-of-two
// set counts at every level), matching the shape exp.ScaledConfig produces
// for cheap test scales.
func replayTestHCfg() cache.HierarchyConfig {
	h := cache.DefaultHierarchyConfig()
	h.L1 = cache.Config{SizeBytes: 1 << 10, Ways: 8}
	h.L2 = cache.Config{SizeBytes: 2 << 10, Ways: 8}
	h.LLC = cache.Config{SizeBytes: 4 << 10, Ways: 16}
	return h
}

// TestReplayMatchesDirect is the replay-equivalence suite: for every
// registered policy and a spread of applications (paper kernels plus the
// extension workloads), the Result produced by record-once/replay-many
// must be identical — stats, breakdowns and modeled memory time — to the
// Result of direct execution-driven simulation. This is the invariant the
// whole trace engine rests on; any codec or filter divergence fails here
// before it can silently skew an experiment.
func TestReplayMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep skipped in -short mode")
	}
	ds, err := graph.DatasetByName("lj")
	if err != nil {
		t.Fatal(err)
	}
	hcfg := replayTestHCfg()
	for _, appName := range []string{"BFS", "PR", "KCore"} {
		appName := appName
		t.Run(appName, func(t *testing.T) {
			t.Parallel()
			w, err := PrepareWorkload(ds, "DBG", false, 64)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := RecordTrace(w, appName, apps.LayoutMerged, hcfg)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Release()
			if tr.Len() == 0 {
				t.Fatal("recording captured no LLC-bound accesses")
			}
			bounds, err := ABRBoundsFor(w, appName, apps.LayoutMerged)
			if err != nil {
				t.Fatal(err)
			}
			for _, pinfo := range Policies() {
				spec := Spec{App: appName, Layout: apps.LayoutMerged, Policy: pinfo.Name, HCfg: hcfg}
				direct, err := Run(w, spec)
				if err != nil {
					t.Fatalf("%s: direct: %v", pinfo.Name, err)
				}
				replayed, err := ReplayResult(tr, spec, w.Dataset.Name, bounds)
				if err != nil {
					t.Fatalf("%s: replay: %v", pinfo.Name, err)
				}
				// AppTime is wall-clock and legitimately differs; every
				// simulated quantity must not.
				replayed.AppTime = direct.AppTime
				if direct != replayed {
					t.Errorf("%s: replay diverges from direct simulation\ndirect:  %+v\nreplayed: %+v",
						pinfo.Name, direct, replayed)
				}
			}
		})
	}
}

// TestBroadcastMatchesDirect extends the replay-equivalence suite to the
// decode-once broadcast path: for every registered policy and the same
// application spread, the Results of ONE BroadcastResults fan-out over
// all policies at once must be identical to direct execution-driven
// simulation. This is the invariant that lets exp.Session serve a whole
// Prefetch group from a single decode.
func TestBroadcastMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep skipped in -short mode")
	}
	ds, err := graph.DatasetByName("lj")
	if err != nil {
		t.Fatal(err)
	}
	hcfg := replayTestHCfg()
	for _, appName := range []string{"BFS", "PR", "KCore"} {
		appName := appName
		t.Run(appName, func(t *testing.T) {
			t.Parallel()
			w, err := PrepareWorkload(ds, "DBG", false, 64)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := RecordTrace(w, appName, apps.LayoutMerged, hcfg)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Release()
			bounds, err := ABRBoundsFor(w, appName, apps.LayoutMerged)
			if err != nil {
				t.Fatal(err)
			}
			specs := make([]Spec, len(Policies()))
			for i, pinfo := range Policies() {
				specs[i] = Spec{App: appName, Layout: apps.LayoutMerged, Policy: pinfo.Name, HCfg: hcfg}
			}
			broadcast, err := BroadcastResults(tr, specs, w.Dataset.Name, bounds)
			if err != nil {
				t.Fatal(err)
			}
			for i, spec := range specs {
				direct, err := Run(w, spec)
				if err != nil {
					t.Fatalf("%s: direct: %v", spec.Policy, err)
				}
				got := broadcast[i]
				got.AppTime = direct.AppTime
				if direct != got {
					t.Errorf("%s: broadcast replay diverges from direct simulation\ndirect:    %+v\nbroadcast: %+v",
						spec.Policy, direct, got)
				}
			}
		})
	}
}

// TestBroadcastMatchesDirectAcrossGeometries fans one recording out to
// several LLC geometries in a single decode pass — the Table VII shape —
// and checks each against a direct run with that geometry.
func TestBroadcastMatchesDirectAcrossGeometries(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep skipped in -short mode")
	}
	ds, err := graph.DatasetByName("kr")
	if err != nil {
		t.Fatal(err)
	}
	w, err := PrepareWorkload(ds, "DBG", false, 64)
	if err != nil {
		t.Fatal(err)
	}
	hcfg := replayTestHCfg()
	tr, err := RecordTrace(w, "PR", apps.LayoutMerged, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	bounds, err := ABRBoundsFor(w, "PR", apps.LayoutMerged)
	if err != nil {
		t.Fatal(err)
	}
	var specs []Spec
	for _, size := range []uint64{2 << 10, 4 << 10, 8 << 10} {
		cfg := hcfg
		cfg.LLC = cache.Config{SizeBytes: size, Ways: 16}
		specs = append(specs, Spec{App: "PR", Layout: apps.LayoutMerged, Policy: "GRASP", HCfg: cfg})
	}
	broadcast, err := BroadcastResults(tr, specs, w.Dataset.Name, bounds)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		direct, err := Run(w, spec)
		if err != nil {
			t.Fatal(err)
		}
		got := broadcast[i]
		got.AppTime = direct.AppTime
		if direct != got {
			t.Errorf("LLC %dKB: broadcast replay diverges\ndirect:    %+v\nbroadcast: %+v",
				spec.HCfg.LLC.SizeBytes>>10, direct, got)
		}
	}
}

// TestReplayMatchesDirectAcrossGeometries replays one recording at several
// LLC sizes and checks each against a direct run with that geometry — the
// Table VII use case (one trace, many cache sizes).
func TestReplayMatchesDirectAcrossGeometries(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep skipped in -short mode")
	}
	ds, err := graph.DatasetByName("kr")
	if err != nil {
		t.Fatal(err)
	}
	w, err := PrepareWorkload(ds, "DBG", false, 64)
	if err != nil {
		t.Fatal(err)
	}
	hcfg := replayTestHCfg()
	tr, err := RecordTrace(w, "PR", apps.LayoutMerged, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	bounds, err := ABRBoundsFor(w, "PR", apps.LayoutMerged)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []uint64{2 << 10, 4 << 10, 8 << 10} {
		cfg := hcfg
		cfg.LLC = cache.Config{SizeBytes: size, Ways: 16}
		spec := Spec{App: "PR", Layout: apps.LayoutMerged, Policy: "GRASP", HCfg: cfg}
		direct, err := Run(w, spec)
		if err != nil {
			t.Fatal(err)
		}
		// The recording's L1/L2 filter came from hcfg; Run's came from cfg —
		// identical by construction since only the LLC differs.
		replayed, err := ReplayResult(tr, spec, w.Dataset.Name, bounds)
		if err != nil {
			t.Fatal(err)
		}
		replayed.AppTime = direct.AppTime
		if direct != replayed {
			t.Errorf("LLC %dKB: replay diverges\ndirect:  %+v\nreplayed: %+v", size>>10, direct, replayed)
		}
	}
}
