// Multi-programmed co-run replay (DESIGN.md Sec. 15): N recorded
// application streams — each already filtered through its own private
// L1/L2 at record time — are interleaved round-robin in ratio-weighted
// quanta into ONE shared LLC, the deployment shape of consolidated graph
// analytics the paper does not evaluate. Every access is tagged with its
// stream index in the high address bits (per-app physical address spaces;
// co-runners contend for sets and ways but never alias each other's
// blocks), shared-LLC activity is attributed back to the issuing app
// exactly, and the solo replays of the same recordings provide the
// baselines for the interference metrics: per-app miss-rate delta,
// weighted speedup, and max/min-slowdown unfairness.
package sim

import (
	"context"
	"fmt"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/core"
	"grasp/internal/mem"
	"grasp/internal/trace"
)

// MaxCorunApps bounds the co-run width. The address-space tag occupies
// bits corunStreamShift and up, and the PC tag bits corunPCShift and up;
// 16 streams fit both with room to spare (the paper's machine has 8
// cores, and the experiment sweeps 2/4/8-way mixes).
const MaxCorunApps = 16

// corunStreamShift is the bit position of the stream tag in replayed byte
// addresses: stream i replays at addr + i<<48. Recorded addresses live in
// the low ~40 bits (a few GB of simulated address space), and set indexing
// uses the low block bits, so the tag disambiguates tags without
// perturbing set placement — stream 0 replays bit-identically to a solo
// replay.
const corunStreamShift = 48

// corunPCShift is the stream tag's bit position in replayed PCs: the
// synthetic static PCs are small, so offsetting stream i's PCs by i<<24
// keeps PC-indexed predictors (SHiP-PC, Hawkeye) from conflating the
// co-runners' access sites, as per-process PC spaces would on hardware.
const corunPCShift = 24

// CorunStream describes one co-running application: its recording (the
// private L1/L2 filter already ran at record time), the recorded ABR
// bounds for hint-consuming policies, the round-robin ratio weight, and
// the solo baseline Result of the SAME (policy, geometry) replaying the
// same trace alone — the denominator of the interference metrics.
type CorunStream struct {
	App    string
	Layout apps.Layout
	Weight int
	Trace  *trace.Trace
	Bounds [][2]uint64
	Solo   Result
}

// CorunAppResult is one application's view of a shared-LLC co-run.
type CorunAppResult struct {
	// App names the application; Weight is its round-robin ratio weight.
	App    string
	Weight int
	// L1 and L2 are the app's private upper levels, from its recording —
	// exact and unaffected by the co-runners.
	L1, L2 cache.Stats
	// LLC is the app's attributed share of the shared LLC: the stats
	// deltas of exactly the accesses this app issued. Summed over all apps
	// it reconciles with the shared totals counter for counter.
	LLC cache.Stats
	// Cycles prices this app's co-run memory time (its own L1/L2 plus its
	// attributed LLC misses) through cache.MemoryCyclesEst — comparable
	// one-to-one with the solo baseline's Result.Cycles.
	Cycles float64
	// Solo is the app's solo-replay baseline under the same policy and
	// geometry with the LLC to itself.
	Solo Result
	// Slowdown is Cycles / Solo.Cycles: how much the co-run stretches this
	// app's modeled memory time (1 = no interference).
	Slowdown float64
}

// MissRateDelta returns the app's LLC miss-rate increase over running
// alone: corun miss ratio minus solo miss ratio (positive = the
// co-runners hurt it).
func (r CorunAppResult) MissRateDelta() float64 {
	return r.LLC.MissRatio() - r.Solo.LLC.MissRatio()
}

// CorunResult carries the metrics of one co-run replay: per-app
// attribution plus the whole-mix interference summary.
type CorunResult struct {
	// Policy and HCfg identify the shared-LLC configuration; Workload
	// names the dataset every stream was recorded on.
	Policy   string
	HCfg     cache.HierarchyConfig
	Workload string
	// Apps holds one entry per stream, in stream order.
	Apps []CorunAppResult
	// LLC is the shared LLC's total stats (the sum of every app's
	// attributed share).
	LLC cache.Stats
	// WeightedSpeedup is the sum over apps of Solo.Cycles/Cycles — the
	// standard multiprogram throughput metric; the ideal (interference-
	// free) value equals the number of apps.
	WeightedSpeedup float64
	// Unfairness is max(Slowdown)/min(Slowdown) across apps: >= 1, with
	// equality exactly when every app slows down by the same factor.
	Unfairness float64
}

// statsDelta returns cur - prev, counter for counter: the attribution
// primitive (cur is the shared LLC after a batch, prev before it).
func statsDelta(cur, prev cache.Stats) cache.Stats {
	return cache.Stats{
		Hits:       cur.Hits - prev.Hits,
		Misses:     cur.Misses - prev.Misses,
		PropHits:   cur.PropHits - prev.PropHits,
		PropMisses: cur.PropMisses - prev.PropMisses,
		Bypasses:   cur.Bypasses - prev.Bypasses,
		Evictions:  cur.Evictions - prev.Evictions,
		Writebacks: cur.Writebacks - prev.Writebacks,
	}
}

// addStats accumulates d into s field-wise.
func addStats(s *cache.Stats, d cache.Stats) {
	s.Hits += d.Hits
	s.Misses += d.Misses
	s.PropHits += d.PropHits
	s.PropMisses += d.PropMisses
	s.Bypasses += d.Bypasses
	s.Evictions += d.Evictions
	s.Writebacks += d.Writebacks
}

// CorunReplayResult is CorunReplayResultCtx with a background context.
func CorunReplayResult(streams []CorunStream, policyName string, hcfg cache.HierarchyConfig, workloadName string) (CorunResult, error) {
	return CorunReplayResultCtx(context.Background(), streams, policyName, hcfg, workloadName)
}

// CorunReplayResultCtx replays the streams' recordings, interleaved
// round-robin in Weight-sized quanta, into one shared LLC of the given
// policy and geometry, and computes the per-app attribution and fairness
// metrics against each stream's provided solo baseline. For
// hint-consuming policies the shared classifier is programmed with every
// stream's ABR bounds (offset into that stream's tagged address space),
// so GRASP's region sizing divides the LLC among ALL co-runners' Property
// Arrays — the paper's rule applied across applications.
//
// A single-stream co-run is bit-identical to ReplayResultCtx of the same
// spec: stream 0's address/PC tags are zero, the round-robin degenerates
// to recording order, and the attribution equals the shared totals — the
// equivalence the co-run suite pins for every registered policy.
func CorunReplayResultCtx(ctx context.Context, streams []CorunStream, policyName string, hcfg cache.HierarchyConfig, workloadName string) (CorunResult, error) {
	if len(streams) == 0 {
		return CorunResult{}, fmt.Errorf("sim: co-run needs at least one stream")
	}
	if len(streams) > MaxCorunApps {
		return CorunResult{}, fmt.Errorf("sim: co-run of %d streams exceeds the maximum %d", len(streams), MaxCorunApps)
	}
	pinfo, err := PolicyByName(policyName)
	if err != nil {
		return CorunResult{}, err
	}
	llc, err := cache.New(hcfg.LLC, pinfo.New(hcfg.LLC.Sets(), hcfg.LLC.Ways))
	if err != nil {
		return CorunResult{}, err
	}
	if pinfo.NeedsABRs {
		abrs := core.NewABRs(hcfg.LLC.SizeBytes)
		for i, st := range streams {
			base := uint64(i) << corunStreamShift
			for _, b := range st.Bounds {
				if err := abrs.SetBounds(b[0]+base, b[1]+base); err != nil {
					return CorunResult{}, err
				}
			}
		}
		llc.SetClassifier(abrs)
	}
	its := make([]trace.InterleaveStream, len(streams))
	for i, st := range streams {
		its[i] = trace.InterleaveStream{Trace: st.Trace, Weight: st.Weight}
	}
	perApp := make([]cache.Stats, len(streams))
	err = trace.InterleaveReplayCtx(ctx, its, 0, func(stream int, accs []mem.Access) {
		base := uint64(stream) << corunStreamShift
		pcBase := uint32(stream) << corunPCShift
		prev := llc.Stats
		for _, a := range accs {
			a.Addr += base
			a.PC += pcBase
			llc.Access(a)
		}
		addStats(&perApp[stream], statsDelta(llc.Stats, prev))
	})
	if err != nil {
		return CorunResult{}, err
	}
	out := CorunResult{
		Policy:   policyName,
		HCfg:     hcfg,
		Workload: workloadName,
		Apps:     make([]CorunAppResult, len(streams)),
		LLC:      llc.Stats,
	}
	var minSlow, maxSlow float64
	for i, st := range streams {
		l1, l2 := st.Trace.L1Stats(), st.Trace.L2Stats()
		cyc := cache.MemoryCyclesEst(hcfg, l1, l2, float64(perApp[i].Misses))
		ar := CorunAppResult{
			App:    st.App,
			Weight: st.Weight,
			L1:     l1, L2: l2,
			LLC:    perApp[i],
			Cycles: cyc,
			Solo:   st.Solo,
		}
		if st.Solo.Cycles > 0 {
			ar.Slowdown = cyc / st.Solo.Cycles
			out.WeightedSpeedup += st.Solo.Cycles / cyc
		}
		if i == 0 || ar.Slowdown < minSlow {
			minSlow = ar.Slowdown
		}
		if i == 0 || ar.Slowdown > maxSlow {
			maxSlow = ar.Slowdown
		}
		out.Apps[i] = ar
	}
	if minSlow > 0 {
		out.Unfairness = maxSlow / minSlow
	}
	return out, nil
}

// CorunSoloSpecs returns the solo-replay Spec of each stream under the
// shared policy and geometry: the baselines CorunReplayResultCtx expects
// in CorunStream.Solo. Exposed so callers with a result cache (the
// experiment session) and callers without one (the CLI, tests) price the
// identical baseline.
func CorunSoloSpecs(streams []CorunStream, policyName string, hcfg cache.HierarchyConfig) []Spec {
	out := make([]Spec, len(streams))
	for i, st := range streams {
		out[i] = Spec{App: st.App, Layout: st.Layout, Policy: policyName, HCfg: hcfg}
	}
	return out
}

// CorunReplayWithSolosCtx fills each stream's solo baseline by a
// dedicated replay of its own recording (same policy and geometry, LLC to
// itself), then runs the co-run — the self-contained entry point for
// callers without a cached solo result (graspsim's -corun mode, the
// property suites). AppTime note: the solo Result's AppTime is the
// recording run's wall-clock, as on every replay path.
func CorunReplayWithSolosCtx(ctx context.Context, streams []CorunStream, policyName string, hcfg cache.HierarchyConfig, workloadName string) (CorunResult, error) {
	specs := CorunSoloSpecs(streams, policyName, hcfg)
	for i := range streams {
		solo, err := ReplayResultCtx(ctx, streams[i].Trace, specs[i], workloadName, streams[i].Bounds)
		if err != nil {
			return CorunResult{}, err
		}
		streams[i].Solo = solo
	}
	return CorunReplayResultCtx(ctx, streams, policyName, hcfg, workloadName)
}
