package sim

import (
	"math"
	"testing"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/graph"
)

// accuracyTestHCfg is sized for sampling statistics rather than speed: a
// 256-set LLC gives the coarsest divisor of the sweep (K=64) a 4-set
// sample and the finest (K=4) a 64-set sample, while the small upper
// levels keep enough traffic reaching the LLC to produce real misses at
// 1/64 dataset scale.
func accuracyTestHCfg() cache.HierarchyConfig {
	h := cache.DefaultHierarchyConfig()
	h.L1 = cache.Config{SizeBytes: 1 << 10, Ways: 8}
	h.L2 = cache.Config{SizeBytes: 2 << 10, Ways: 8}
	h.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4} // 256 sets
	return h
}

// biasAllowance returns the absolute miss-ratio slack (in ratio units, not
// percent) granted to a policy on top of its reported CI. Policies whose
// replacement state is strictly per-set are exact per sampled set, so the
// ratio-estimator CI is the whole story and they get no slack. Policies
// with global state (set-dueling PSEL counters, SHiP signature tables,
// Hawkeye predictors, Leeway epochs) train that state on only the sampled
// subset during a sampled replay — a model bias the cross-set CI cannot
// see (DESIGN.md Sec. 14). Two percentage points covers the worst observed
// bias at this scale without masking estimator bugs.
func biasAllowance(policy string) float64 {
	switch policy {
	case "DIP", "SHiP-MEM", "SHiP-PC", "Hawkeye", "Leeway", "GRASP-DIP":
		return 0.02
	}
	return 0
}

// TestSampledAccuracy is the statistical harness behind the fast tier's
// honesty claim: for every registered policy on two high-skew datasets,
// the sampled estimate must land within its own reported 95% confidence
// interval of the full-fidelity miss ratio, and the reported error must
// shrink as the sampled fraction grows (K=64 -> 16 -> 4). Everything is
// deterministic — fixed dataset seeds, hash-based set selection — so a
// pass is stable, not probabilistic.
func TestSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy sweep skipped in -short mode")
	}
	hcfg := accuracyTestHCfg()
	ks := []uint32{64, 16, 4}
	for _, dsName := range []string{"lj", "tw"} {
		dsName := dsName
		t.Run(dsName, func(t *testing.T) {
			t.Parallel()
			ds, err := graph.DatasetByName(dsName)
			if err != nil {
				t.Fatal(err)
			}
			w, err := PrepareWorkload(ds, "DBG", false, 64)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := RecordTrace(w, "PR", apps.LayoutMerged, hcfg)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Release()
			bounds, err := ABRBoundsFor(w, "PR", apps.LayoutMerged)
			if err != nil {
				t.Fatal(err)
			}
			pols := Policies()
			specs := make([]Spec, len(pols))
			for i, pinfo := range pols {
				specs[i] = Spec{App: "PR", Layout: apps.LayoutMerged, Policy: pinfo.Name, HCfg: hcfg}
			}
			full, err := BroadcastResultsCtx(t.Context(), tr, specs, w.Dataset.Name, bounds)
			if err != nil {
				t.Fatal(err)
			}
			// sampled[ki][pi] is policy pi's estimate at divisor ks[ki].
			sampled := make([][]SampledResult, len(ks))
			for ki, k := range ks {
				sampled[ki], err = BroadcastSampledResultsCtx(t.Context(), tr, specs, w.Dataset.Name, bounds, k)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
			}
			for pi, pinfo := range pols {
				exact := full[pi].LLC.MissRatio()
				for ki, k := range ks {
					est := sampled[ki][pi].Est
					if est.SampledSets >= est.TotalSets {
						t.Fatalf("%s k=%d: sampled %d/%d sets — geometry too small to sample",
							pinfo.Name, k, est.SampledSets, est.TotalSets)
					}
					diff := math.Abs(est.MissRatio - exact)
					if allowed := est.CI95 + biasAllowance(pinfo.Name); diff > allowed {
						t.Errorf("%s k=%d: estimate %.4f vs full %.4f: |err| %.4f exceeds CI95 %.4f (+bias %.4f) [%d/%d sets]",
							pinfo.Name, k, est.MissRatio, exact, diff, est.CI95,
							biasAllowance(pinfo.Name), est.SampledSets, est.TotalSets)
					}
					if est.StdErr <= 0 {
						t.Errorf("%s k=%d: non-positive stderr %.6f with %d sampled sets",
							pinfo.Name, k, est.StdErr, est.SampledSets)
					}
				}
				// Per policy the reported error must not grow as more sets
				// are simulated; a small multiplicative slack absorbs the
				// variance of the variance estimator itself.
				for ki := 1; ki < len(ks); ki++ {
					coarse, fine := sampled[ki-1][pi].Est, sampled[ki][pi].Est
					if fine.StdErr > coarse.StdErr*1.25 {
						t.Errorf("%s: stderr rose from %.5f (k=%d) to %.5f (k=%d); more sets must not mean more reported error",
							pinfo.Name, coarse.StdErr, ks[ki-1], fine.StdErr, ks[ki])
					}
				}
			}
			// In aggregate the shrinkage must be strict: the mean CI half-
			// width over all policies narrows at every step of the sweep.
			for ki := 1; ki < len(ks); ki++ {
				var coarse, fine float64
				for pi := range pols {
					coarse += sampled[ki-1][pi].Est.CI95
					fine += sampled[ki][pi].Est.CI95
				}
				if fine >= coarse {
					t.Errorf("mean CI95 did not shrink: %.5f (k=%d) -> %.5f (k=%d)",
						coarse/float64(len(pols)), ks[ki-1], fine/float64(len(pols)), ks[ki])
				}
			}
		})
	}
}
