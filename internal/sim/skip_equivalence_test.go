package sim

import (
	"testing"

	"grasp/internal/apps"
	"grasp/internal/graph"
	"grasp/internal/trace"
)

// TestChunkSkipEquivalence is the chunk-skip suite behind the codec-layer
// fast path's honesty claim: for every registered policy on two high-skew
// datasets at K in {4, 16, 64}, sampled results with skipping enabled
// must be BIT-IDENTICAL to the decode-then-filter reference (the skip
// path disabled — PR 7's behavior), and the forced mask-off run must
// reconcile with the skip run's access accounting. The skip machinery may
// only remove work, never change what any consumer observes.
func TestChunkSkipEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("skip-equivalence sweep skipped in -short mode")
	}
	// The toggle is process-global: run the suite serially and restore.
	prev := SetSampledChunkSkip(true)
	defer SetSampledChunkSkip(prev)

	hcfg := accuracyTestHCfg()
	for _, dsName := range []string{"lj", "tw"} {
		ds, err := graph.DatasetByName(dsName)
		if err != nil {
			t.Fatal(err)
		}
		w, err := PrepareWorkload(ds, "DBG", false, 64)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := RecordTrace(w, "PR", apps.LayoutMerged, hcfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Release()
		bounds, err := ABRBoundsFor(w, "PR", apps.LayoutMerged)
		if err != nil {
			t.Fatal(err)
		}
		pols := Policies()
		specs := make([]Spec, len(pols))
		for i, pinfo := range pols {
			specs[i] = Spec{App: "PR", Layout: apps.LayoutMerged, Policy: pinfo.Name, HCfg: hcfg}
		}
		for _, k := range []uint32{4, 16, 64} {
			SetSampledChunkSkip(true)
			skip, rep, err := BroadcastSampledResultsSkipCtx(t.Context(), tr, specs, w.Dataset.Name, bounds, k)
			if err != nil {
				t.Fatalf("%s k=%d skip-on: %v", dsName, k, err)
			}
			SetSampledChunkSkip(false)
			ref, refRep, err := BroadcastSampledResultsSkipCtx(t.Context(), tr, specs, w.Dataset.Name, bounds, k)
			if err != nil {
				t.Fatalf("%s k=%d skip-off: %v", dsName, k, err)
			}
			for i, pinfo := range pols {
				if skip[i] != ref[i] {
					t.Errorf("%s %s k=%d: skip-enabled result diverges from decode-then-filter reference:\n  skip: %+v\n  ref:  %+v",
						dsName, pinfo.Name, k, skip[i], ref[i])
				}
			}
			// Mask-off reconciliation: the reference run does no codec-layer
			// work avoidance at all, and the skip run must account for every
			// recorded access exactly once.
			if refRep != (trace.SkipReport{}) {
				t.Errorf("%s k=%d: mask-off run reported codec-layer skipping: %+v", dsName, k, refRep)
			}
			if total := rep.AccessesSkipped + rep.AccessesPruned + rep.AccessesDelivered; total != tr.Len() {
				t.Errorf("%s k=%d: skip report accounts %d accesses, trace has %d", dsName, k, total, tr.Len())
			}
			if rep.AccessesPruned+rep.AccessesSkipped == 0 {
				t.Errorf("%s k=%d: skip path avoided no work — masked decode not engaged", dsName, k)
			}
		}
		// Solo (single-spec) masked replays must agree with their fan-out
		// slots too: the solo mask covers only its own sampled sets, the
		// union mask potentially more, and neither may change results.
		SetSampledChunkSkip(true)
		for i, pinfo := range pols {
			solo, _, err := SampledReplayResultSkipCtx(t.Context(), tr, specs[i], w.Dataset.Name, bounds, 16)
			if err != nil {
				t.Fatal(err)
			}
			fan, err := BroadcastSampledResultsCtx(t.Context(), tr, specs, w.Dataset.Name, bounds, 16)
			if err != nil {
				t.Fatal(err)
			}
			if solo != fan[i] {
				t.Errorf("%s %s: solo masked replay diverges from fan-out slot:\n  solo: %+v\n  fan:  %+v",
					dsName, pinfo.Name, solo, fan[i])
			}
			break // one policy suffices; the loop above covered them all
		}
	}
}
