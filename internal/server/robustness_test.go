package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"grasp/internal/fail"
	"grasp/internal/jobs"
)

// longSpec occupies a worker for seconds — long enough for the test to
// act while it runs. Distinct from fig2Spec, so the two never dedup onto
// one job.
func longSpec() jobs.Spec {
	return jobs.Spec{Kind: jobs.KindExperiment, Exp: "fig9", Scale: 64}
}

// postJob submits a spec body without the client's retry loop, so tests
// asserting 429/503 see the raw status instead of waiting out backoffs.
func postJob(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestCancelEndpoint drives DELETE /jobs/{id} through its whole surface:
// 200 for a queued job (settled as canceled), 409 once terminal, 404 for
// unknown IDs, and preemption of a running job.
func TestCancelEndpoint(t *testing.T) {
	client, _, _ := bootDaemon(t, t.TempDir(), 1)

	running, err := client.Submit(longSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := client.Submit(fig2Spec(), 0) // distinct spec, waits behind
	if err != nil {
		t.Fatal(err)
	}

	st, err := client.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != queued.ID {
		t.Errorf("cancel returned job %s, want %s", st.ID, queued.ID)
	}
	final, err := client.WaitJob(queued.ID, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateFailed || final.Error != jobs.ErrCanceled.Error() {
		t.Errorf("cancelled job settled as %s %q", final.State, final.Error)
	}

	if _, err := client.Cancel(queued.ID); err == nil || !strings.Contains(err.Error(), "409") &&
		!strings.Contains(err.Error(), "already") {
		t.Errorf("cancel of settled job = %v, want 409 conflict", err)
	}
	if _, err := client.Cancel("j999999"); err == nil || !strings.Contains(err.Error(), "404") &&
		!strings.Contains(err.Error(), "unknown job") {
		t.Errorf("cancel of unknown job = %v, want 404", err)
	}

	// The running job is preempted at its next cancellation point.
	if _, err := client.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	final, err = client.WaitJob(running.ID, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateFailed || final.Error != jobs.ErrCanceled.Error() {
		t.Errorf("cancelled running job settled as %s %q", final.State, final.Error)
	}
}

// TestRateLimit429: beyond the per-client token bucket, POST /jobs answers
// 429 with a Retry-After hint, and the rejection is counted in /metrics.
func TestRateLimit429(t *testing.T) {
	store, err := jobs.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := jobs.NewManager(store, 1)
	ts := httptest.NewServer(NewWith(mgr, Options{RatePerSec: 0.01, Burst: 1}))
	t.Cleanup(ts.Close)

	first := postJob(t, ts, `{"kind":"single","graph":"uni","scale":256}`)
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", first.StatusCode)
	}
	second := postJob(t, ts, `{"kind":"single","graph":"uni","app":"BFS","scale":256}`)
	second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if !strings.Contains(body, "graspd_rate_limited_total 1") {
		t.Errorf("metrics missing rate_limited_total 1:\n%s", body)
	}
}

// TestLoadShedding503: with the queue at its depth limit, new work is shed
// with 503 + Retry-After and /readyz reports not-ready, while a duplicate
// of queued work still joins it.
func TestLoadShedding503(t *testing.T) {
	client, mgr, ts := bootDaemon(t, t.TempDir(), 1)
	mgr.SetQueueLimit(1)

	running, err := client.Submit(longSpec(), 0) // occupies the worker
	if err != nil {
		t.Fatal(err)
	}
	queued, err := client.Submit(fig2Spec(), 0) // fills the queue
	if err != nil {
		t.Fatal(err)
	}

	shed := postJob(t, ts, `{"kind":"single","graph":"uni","app":"BFS","scale":256}`)
	defer shed.Body.Close()
	if shed.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit beyond queue limit = %d, want 503", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Error("shed response carries no Retry-After")
	}
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while overloaded = %d, want 503", ready.StatusCode)
	}
	// A duplicate consumes no queue slot and must not be shed.
	dup, err := client.Submit(fig2Spec(), 0)
	if err != nil {
		t.Fatalf("dedup join while overloaded rejected: %v", err)
	}
	if dup.Disposition != jobs.Deduped || dup.ID != queued.ID {
		t.Errorf("duplicate submit = %+v, want dedup onto %s", dup, queued.ID)
	}
	// Unblock the cleanup Shutdown promptly.
	client.Cancel(queued.ID)
	client.Cancel(running.ID)
}

// TestHealthzDegraded: a failing store write marks the daemon degraded on
// /healthz and flips the degraded gauge, without failing the job.
func TestHealthzDegraded(t *testing.T) {
	defer fail.Reset()
	client, _, ts := bootDaemon(t, t.TempDir(), 1)
	fail.Arm("store.put", nil)
	if _, err := client.RunSync(fig2Spec(), 0); err != nil {
		t.Fatalf("job with failing store write errored: %v", err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"degraded": true`) {
		t.Errorf("degraded healthz = %d %s, want 200 with degraded true", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if !strings.Contains(body, "graspd_degraded 1") {
		t.Errorf("metrics missing degraded gauge:\n%s", body)
	}
}

// TestClientRetriesHonorRetryAfter: the client retries a 503 and succeeds
// once the condition clears — here a queue that frees up between attempts.
func TestClientRetriesHonorRetryAfter(t *testing.T) {
	var hits int
	mock := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, jobs.ErrOverloaded)
			return
		}
		writeJSON(w, http.StatusAccepted, SubmitResponse{Disposition: jobs.Queued})
	}))
	t.Cleanup(mock.Close)
	start := time.Now()
	resp, err := NewClient(mock.URL).Submit(jobs.Spec{Kind: jobs.KindSingle, Graph: "uni"}, 0)
	if err != nil {
		t.Fatalf("submit through transient 503: %v", err)
	}
	if resp.Disposition != jobs.Queued || hits != 2 {
		t.Errorf("disposition=%v hits=%d, want queued after exactly one retry", resp.Disposition, hits)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("retry came after %v, want >= the 1s Retry-After hint", elapsed)
	}
}

// readBody drains and closes a response body as a string.
func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
