// Package server is graspd's HTTP layer (DESIGN.md Sec. 10, docs/API.md):
// a thin REST surface over the jobs.Manager. It owns request decoding,
// status codes and the Prometheus-style metrics rendering; all scheduling,
// caching and dedup semantics live in internal/jobs.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/jobs"
)

// SubmitRequest is the body of POST /jobs: a job spec plus scheduling
// options that do not affect the result's content address.
type SubmitRequest struct {
	// Spec fields are inlined, so a client posts
	// {"kind":"single","graph":"lj","app":"PR","policy":"GRASP"}.
	jobs.Spec
	// Priority orders the queue; higher runs first (default 0).
	Priority int `json:"priority,omitempty"`
	// Wait blocks the request until the job finishes and returns the full
	// outcome inline (like GET /results/{hash}) instead of 202 + status.
	Wait bool `json:"wait,omitempty"`
}

// SubmitResponse is the body returned by POST /jobs when not waiting.
type SubmitResponse struct {
	// Status is the job snapshot (ID, hash, state, progress, ...).
	jobs.Status
	// Disposition is queued, cached or deduped.
	Disposition jobs.Disposition `json:"disposition"`
	// ResultURL is where the outcome is (or will be) addressable.
	ResultURL string `json:"result_url"`
}

// Options tunes the server's overload-protection behaviors; the zero
// value disables them all (New's behavior).
type Options struct {
	// RatePerSec bounds each client's POST /jobs submissions per second
	// with a token bucket; exceeding it returns 429 + Retry-After.
	// 0 disables rate limiting.
	RatePerSec float64
	// Burst is the token-bucket depth — how many submissions a client can
	// issue back-to-back before the per-second rate governs (minimum 1).
	Burst int
	// RetryAfter is the hint sent with 429 and 503 responses; 0 defaults
	// to 1 second.
	RetryAfter time.Duration
	// Cluster, when non-nil, turns on sharded job routing (DESIGN.md
	// Sec. 16): POST /jobs forwards to the hash's owning node with failover
	// to its successors, completed results replicate to the successor, and
	// GET /results federates misses from replica holders with hedged,
	// checksum-verified fetches. Nil (the default) is single-node mode —
	// every request is served locally, byte-identically to pre-cluster
	// builds.
	Cluster *cluster.Cluster
	// HedgeDelay is how long a federated result read waits on the first
	// holder before also asking the next one (default 150ms). The first
	// verified response wins.
	HedgeDelay time.Duration
}

// Server handles graspd's REST endpoints. Create with New or NewWith; it
// implements http.Handler.
type Server struct {
	mgr         *jobs.Manager
	mux         *http.ServeMux
	started     time.Time
	lim         *limiter
	retryAfter  time.Duration
	rateLimited atomic.Uint64

	// Cluster mode (nil cl = single node; see internal/server/cluster.go).
	cl          *cluster.Cluster
	hedge       time.Duration
	fwdShort    *http.Client // forwarded non-wait submissions, fetches
	fwdLong     *http.Client // forwarded wait=true submissions (unbounded)
	replWG      sync.WaitGroup
	forwarded   atomic.Uint64
	failovers   atomic.Uint64
	replicated  atomic.Uint64
	replErrors  atomic.Uint64
	fetches     atomic.Uint64
	fetchErrors atomic.Uint64
	hedged      atomic.Uint64
	cacheFills  atomic.Uint64
}

// New wires the endpoints over the manager with no rate limiting.
func New(mgr *jobs.Manager) *Server { return NewWith(mgr, Options{}) }

// NewWith wires the endpoints over the manager with the given overload
// options.
func NewWith(mgr *jobs.Manager, opts Options) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), started: time.Now()}
	if opts.RatePerSec > 0 {
		s.lim = newLimiter(opts.RatePerSec, opts.Burst)
	}
	s.retryAfter = opts.RetryAfter
	if s.retryAfter <= 0 {
		s.retryAfter = time.Second
	}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /results/{hash}", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.Cluster != nil {
		s.enableCluster(opts.Cluster, opts.HedgeDelay)
	}
	return s
}

// retryableError writes an error with a Retry-After hint, telling
// well-behaved clients when to come back (both 429 and 503 responses
// carry it).
func (s *Server) retryableError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.retryAfter+time.Second-1)/time.Second)))
	httpError(w, code, err)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// maxSubmitBody caps the POST /jobs request body. Job specs are a few
// hundred bytes (the largest field is a graph file path), so 1 MiB is
// generous while keeping an oversized or hostile body from being
// buffered without bound.
const maxSubmitBody = 1 << 20

// handleSubmit implements POST /jobs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Forwarded requests (hop guard header set by a peer's router) skip the
	// per-client rate limit — the originating node already charged its
	// client — and are NEVER re-forwarded, so divergent ring views cannot
	// bounce a submission between nodes. Only cluster mode honors the
	// header; a single node ignores it, so it cannot be forged to dodge
	// the rate limit there.
	isForwarded := s.cl != nil && r.Header.Get(forwardedHeader) != ""
	if !isForwarded && s.lim != nil && !s.lim.allow(clientKey(r.RemoteAddr), time.Now()) {
		s.rateLimited.Add(1)
		s.retryableError(w, http.StatusTooManyRequests, errors.New("submission rate limit exceeded"))
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if s.cl != nil && !isForwarded && s.routeSubmit(w, r, &req) {
		return
	}
	j, disp, err := s.mgr.Submit(req.Spec, req.Priority)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrDraining):
			s.retryableError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, jobs.ErrOverloaded):
			// Load shedding: the backlog is full, the submission had no
			// effect, and Retry-After tells the client when to try again.
			s.retryableError(w, http.StatusServiceUnavailable, err)
		default:
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	if req.Wait {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			httpError(w, 499, r.Context().Err()) // client closed request
			return
		}
		st := j.Status()
		if st.State == jobs.StateFailed {
			httpError(w, waitFailureCode(st.Error), errors.New(st.Error))
			return
		}
		writeJSON(w, http.StatusOK, j.Outcome())
		return
	}
	code := http.StatusAccepted
	if disp == jobs.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{
		Status:      j.Status(),
		Disposition: disp,
		ResultURL:   "/results/" + j.Hash,
	})
}

// waitFailureCode maps a waited-on job's terminal error to a status code:
// drain preemption is a transient condition (503, retry elsewhere), a
// cancellation raced the waiter (409), a deadline is the gateway-timeout
// shape (504), and anything else is a spec/execution error (422).
func waitFailureCode(msg string) int {
	switch msg {
	case jobs.ErrDraining.Error():
		return http.StatusServiceUnavailable
	case jobs.ErrCanceled.Error():
		return http.StatusConflict
	case jobs.ErrTimeout.Error():
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

// handleCancel implements DELETE /jobs/{id}: 404 for unknown IDs, 409
// when the job already reached a terminal state (nothing to cancel — the
// outcome, if any, stands), 200 with the job's snapshot once the
// cancellation is accepted. A queued job settles immediately; a running
// one is preempted at its next cancellation point, so the snapshot may
// still say "running" — poll GET /jobs/{id} for the terminal state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.Cancel(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if !ok {
		st := j.Status()
		httpError(w, http.StatusConflict, fmt.Errorf("job %s already %s", st.ID, st.State))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleJob implements GET /jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.mgr.Job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleResult implements GET /results/{hash}. In cluster mode a local
// hit serves the verified persisted bytes with their checksum header; a
// local miss federates to the hash's replica holders (hedged,
// checksum-verified) before answering 404. Single-node mode keeps the
// pre-cluster rendering byte for byte.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if s.cl != nil {
		if data, sum, ok := s.mgr.Store().GetRaw(hash); ok {
			writeRawResult(w, data, sum)
			return
		}
		// A degraded store (disk write failed) still serves from memory.
		if o := s.mgr.Result(hash); o != nil {
			writeJSON(w, http.StatusOK, o)
			return
		}
		if s.federateResult(w, r, hash) {
			return
		}
		httpError(w, http.StatusNotFound, fmt.Errorf("no stored result for %q on any replica", hash))
		return
	}
	o := s.mgr.Result(hash)
	if o == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no stored result for %q", hash))
		return
	}
	writeJSON(w, http.StatusOK, o)
}

// handleHealthz implements GET /healthz — LIVENESS: it answers 200 as
// long as the process can serve HTTP at all, including while draining or
// degraded, because restarting a daemon that is finishing its last jobs
// or merely failing disk writes would make things worse, not better. The
// body carries the conditions (draining, degraded) for operators;
// routing decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.mgr.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"degraded":       s.mgr.Degraded(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"workers":        s.mgr.Workers(),
	})
}

// handleReadyz implements GET /readyz — READINESS: 503 while the daemon
// should not receive new traffic (draining toward shutdown, or the queue
// at its shed limit), 200 otherwise. Load balancers route on this; the
// process staying alive through a 503 here is exactly the point of the
// liveness/readiness split.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.mgr.Draining():
		s.retryableError(w, http.StatusServiceUnavailable, errors.New("draining"))
	case s.mgr.Overloaded():
		s.retryableError(w, http.StatusServiceUnavailable, errors.New("queue full"))
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	}
}

// handleMetrics implements GET /metrics in Prometheus text exposition
// format (hand-rendered; the container carries no client library).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.mgr.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP graspd_%s %s\n# TYPE graspd_%s gauge\n", name, help, name)
		fmt.Fprintf(w, "graspd_%s %g\n", name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP graspd_%s %s\n# TYPE graspd_%s counter\n", name, help, name)
		fmt.Fprintf(w, "graspd_%s %d\n", name, v)
	}
	counter("jobs_submitted_total", "Accepted job submissions (incl. cached and deduped).", m.Submitted)
	counter("jobs_executed_total", "Jobs actually simulated by a worker.", m.Executed)
	counter("jobs_completed_total", "Executions that finished successfully.", m.Completed)
	counter("jobs_failed_total", "Executions that errored (incl. drained queue entries).", m.Failed)
	counter("result_store_hits_total", "Submissions served from the persistent result store.", m.StoreHits)
	counter("inflight_dedup_hits_total", "Submissions merged onto an identical in-flight job.", m.DedupHits)
	counter("jobs_panics_total", "Job executions that panicked and were contained.", m.Panics)
	counter("jobs_canceled_total", "Honored job cancellation requests.", m.Canceled)
	counter("jobs_shed_total", "Submissions rejected at the queue-depth limit.", m.Shed)
	counter("jobs_requeued_total", "Journaled jobs re-enqueued by crash recovery at boot.", m.Requeued)
	counter("jobs_store_errors_total", "Failed result-store disk writes.", m.StoreErrors)
	counter("jobs_store_corrupt_total", "Result files quarantined after failing checksum verification.", m.StoreCorrupt)
	counter("jobs_journal_errors_total", "Failed journal appends.", m.JournalErrors)
	counter("rate_limited_total", "Submissions rejected by the per-client rate limit.", s.rateLimited.Load())
	counter("sim_runs_total", "Distinct sim.Run invocations across all sessions.", m.SimRuns)
	counter("sampled_runs_total", "Distinct set-sampled fast-tier estimates across all sessions.", m.SampledRuns)
	counter("corun_runs_total", "Distinct shared-LLC co-run replays across all sessions.", m.CorunRuns)
	counter("broadcast_groups_total", "Recording groups served via decode-once broadcast replay.", m.BroadcastGroups)
	counter("broadcast_replays_total", "Completed broadcast fan-outs (incl. OPT-study prefix replays).", m.BroadcastReplays)
	counter("broadcast_consumers_total", "Total replays served by broadcast fan-outs.", m.BroadcastConsumers)
	counter("chunks_skipped_total", "Trace chunks skipped whole by presence-bitmap masks in sampled replays.", m.Skip.ChunksSkipped)
	counter("chunks_decoded_total", "Trace chunks decoded by masked (sampled) replays.", m.Skip.ChunksDecoded)
	counter("chunk_bytes_skipped_total", "Encoded bytes of chunks skipped by masked replays.", m.Skip.BytesSkipped)
	counter("chunk_bytes_decoded_total", "Encoded bytes of chunks decoded by masked replays.", m.Skip.BytesDecoded)
	counter("accesses_skipped_total", "Recorded accesses inside chunks masked replays skipped whole.", uint64(m.Skip.AccessesSkipped))
	counter("accesses_pruned_total", "Records dropped inside the masked decode loop before materialization.", uint64(m.Skip.AccessesPruned))
	counter("accesses_delivered_total", "Records materialized and delivered to masked-replay consumers.", uint64(m.Skip.AccessesDelivered))
	gauge("trace_bytes_retained", "Encoded bytes of recordings cached across sessions.", float64(m.TraceBytesRetained))
	gauge("jobs_queued", "Jobs waiting for a worker.", float64(m.Queued))
	gauge("jobs_running", "Jobs currently simulating.", float64(m.Running))
	gauge("stored_outcomes", "Outcomes in the persistent result store.", float64(m.StoredOutcomes))
	gauge("cached_graph_files", "Parsed file graphs shared across requests.", float64(m.CachedGraphFiles))
	degraded := 0.0
	if m.Degraded {
		degraded = 1
	}
	gauge("degraded", "1 when any persistence write has failed (store or journal).", degraded)
	gauge("workers", "Worker pool size (concurrency bound).", float64(s.mgr.Workers()))
	gauge("uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
	if s.cl != nil {
		s.writeClusterMetrics(w, counter)
	}
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError writes a JSON error body with the given status code.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
