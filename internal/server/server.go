// Package server is graspd's HTTP layer (DESIGN.md Sec. 10, docs/API.md):
// a thin REST surface over the jobs.Manager. It owns request decoding,
// status codes and the Prometheus-style metrics rendering; all scheduling,
// caching and dedup semantics live in internal/jobs.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"grasp/internal/jobs"
)

// SubmitRequest is the body of POST /jobs: a job spec plus scheduling
// options that do not affect the result's content address.
type SubmitRequest struct {
	// Spec fields are inlined, so a client posts
	// {"kind":"single","graph":"lj","app":"PR","policy":"GRASP"}.
	jobs.Spec
	// Priority orders the queue; higher runs first (default 0).
	Priority int `json:"priority,omitempty"`
	// Wait blocks the request until the job finishes and returns the full
	// outcome inline (like GET /results/{hash}) instead of 202 + status.
	Wait bool `json:"wait,omitempty"`
}

// SubmitResponse is the body returned by POST /jobs when not waiting.
type SubmitResponse struct {
	// Status is the job snapshot (ID, hash, state, progress, ...).
	jobs.Status
	// Disposition is queued, cached or deduped.
	Disposition jobs.Disposition `json:"disposition"`
	// ResultURL is where the outcome is (or will be) addressable.
	ResultURL string `json:"result_url"`
}

// Server handles graspd's REST endpoints. Create with New; it implements
// http.Handler.
type Server struct {
	mgr     *jobs.Manager
	mux     *http.ServeMux
	started time.Time
}

// New wires the endpoints over the manager.
func New(mgr *jobs.Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /results/{hash}", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// maxSubmitBody caps the POST /jobs request body. Job specs are a few
// hundred bytes (the largest field is a graph file path), so 1 MiB is
// generous while keeping an oversized or hostile body from being
// buffered without bound.
const maxSubmitBody = 1 << 20

// handleSubmit implements POST /jobs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, fmt.Errorf("decoding request body: %w", err))
		return
	}
	j, disp, err := s.mgr.Submit(req.Spec, req.Priority)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, jobs.ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err)
		return
	}
	if req.Wait {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			httpError(w, 499, r.Context().Err()) // client closed request
			return
		}
		st := j.Status()
		if st.State == jobs.StateFailed {
			// A job failed out by the drain sequence is a transient
			// condition, not a spec error: report it as 503 like every
			// other draining response so clients retry elsewhere.
			code := http.StatusUnprocessableEntity
			if st.Error == jobs.ErrDraining.Error() {
				code = http.StatusServiceUnavailable
			}
			httpError(w, code, errors.New(st.Error))
			return
		}
		writeJSON(w, http.StatusOK, j.Outcome())
		return
	}
	code := http.StatusAccepted
	if disp == jobs.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{
		Status:      j.Status(),
		Disposition: disp,
		ResultURL:   "/results/" + j.Hash,
	})
}

// handleJob implements GET /jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.mgr.Job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleResult implements GET /results/{hash}.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	o := s.mgr.Result(r.PathValue("hash"))
	if o == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no stored result for %q", r.PathValue("hash")))
		return
	}
	writeJSON(w, http.StatusOK, o)
}

// handleHealthz implements GET /healthz: 200 "ok" while serving, 503
// "draining" once shutdown has begun (so load balancers stop routing to a
// daemon that is finishing its last jobs).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.mgr.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"workers":        s.mgr.Workers(),
	})
}

// handleMetrics implements GET /metrics in Prometheus text exposition
// format (hand-rendered; the container carries no client library).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.mgr.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP graspd_%s %s\n# TYPE graspd_%s gauge\n", name, help, name)
		fmt.Fprintf(w, "graspd_%s %g\n", name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP graspd_%s %s\n# TYPE graspd_%s counter\n", name, help, name)
		fmt.Fprintf(w, "graspd_%s %d\n", name, v)
	}
	counter("jobs_submitted_total", "Accepted job submissions (incl. cached and deduped).", m.Submitted)
	counter("jobs_executed_total", "Jobs actually simulated by a worker.", m.Executed)
	counter("jobs_completed_total", "Executions that finished successfully.", m.Completed)
	counter("jobs_failed_total", "Executions that errored (incl. drained queue entries).", m.Failed)
	counter("result_store_hits_total", "Submissions served from the persistent result store.", m.StoreHits)
	counter("inflight_dedup_hits_total", "Submissions merged onto an identical in-flight job.", m.DedupHits)
	counter("sim_runs_total", "Distinct sim.Run invocations across all sessions.", m.SimRuns)
	counter("broadcast_groups_total", "Recording groups served via decode-once broadcast replay.", m.BroadcastGroups)
	counter("broadcast_replays_total", "Completed broadcast fan-outs (incl. OPT-study prefix replays).", m.BroadcastReplays)
	counter("broadcast_consumers_total", "Total replays served by broadcast fan-outs.", m.BroadcastConsumers)
	gauge("trace_bytes_retained", "Encoded bytes of recordings cached across sessions.", float64(m.TraceBytesRetained))
	gauge("jobs_queued", "Jobs waiting for a worker.", float64(m.Queued))
	gauge("jobs_running", "Jobs currently simulating.", float64(m.Running))
	gauge("stored_outcomes", "Outcomes in the persistent result store.", float64(m.StoredOutcomes))
	gauge("cached_graph_files", "Parsed file graphs shared across requests.", float64(m.CachedGraphFiles))
	gauge("workers", "Worker pool size (concurrency bound).", float64(s.mgr.Workers()))
	gauge("uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError writes a JSON error body with the given status code.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
