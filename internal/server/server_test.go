package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"grasp/internal/jobs"
)

// bootDaemon starts a full graspd stack (store → manager → HTTP server)
// on an httptest listener over dir and returns a client for it.
func bootDaemon(t *testing.T, dir string, workers int) (*Client, *jobs.Manager, *httptest.Server) {
	t.Helper()
	store, err := jobs.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr := jobs.NewManager(store, workers)
	ts := httptest.NewServer(New(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		mgr.Shutdown(ctx)
	})
	return NewClient(ts.URL), mgr, ts
}

// fig2Spec is the CI smoke job: the paper's fig2 experiment at 1/64
// scale — 10 datapoints, a few seconds of simulation at most.
func fig2Spec() jobs.Spec {
	return jobs.Spec{Kind: jobs.KindExperiment, Exp: "fig2", Scale: 64}
}

// TestSmokeCachedSecondRequest is the acceptance smoke: boot graspd,
// submit a tiny fig2-scale job, and require the identical second request
// to be answered from the result store — without re-simulating, and in
// under 100ms.
func TestSmokeCachedSecondRequest(t *testing.T) {
	client, mgr, _ := bootDaemon(t, t.TempDir(), 2)

	first, err := client.RunSync(fig2Spec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Output == "" {
		t.Fatal("first run returned no rendered experiment body")
	}
	if got := mgr.Metrics().Executed; got != 1 {
		t.Fatalf("executed = %d after first run, want 1", got)
	}

	// Time the best of three cached round-trips: each is a pure store hit,
	// so the minimum is the honest measure of the serving path while a GC
	// pause or a noisy CI runner cannot flake a single sample past the
	// bound.
	cachedIn := time.Duration(1<<63 - 1)
	var second *jobs.Outcome
	for i := 0; i < 3; i++ {
		start := time.Now()
		o, err := client.RunSync(fig2Spec(), 0)
		if d := time.Since(start); d < cachedIn {
			cachedIn = d
		}
		if err != nil {
			t.Fatal(err)
		}
		second = o
	}
	if second.Output != first.Output {
		t.Error("cached outcome differs from the original")
	}
	if got := mgr.Metrics(); got.Executed != 1 || got.StoreHits != 3 {
		t.Errorf("after cached runs: executed=%d storeHits=%d, want 1 and 3", got.Executed, got.StoreHits)
	}
	if cachedIn >= 100*time.Millisecond {
		t.Errorf("cached request took %v at best, want <100ms", cachedIn)
	}

	// Async third submission reports the cached disposition explicitly.
	resp, err := client.Submit(fig2Spec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disposition != jobs.Cached || !resp.Cached {
		t.Errorf("third submit disposition = %v cached=%v, want cached", resp.Disposition, resp.Cached)
	}
	if got, err := client.Result(resp.Hash); err != nil || got.Output != first.Output {
		t.Errorf("GET %s: err=%v, body match=%v", resp.ResultURL, err, err == nil && got.Output == first.Output)
	}
}

// TestPersistenceAcrossRestart: a rebooted daemon over the same data dir
// answers from disk.
func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	client1, _, ts1 := bootDaemon(t, dir, 1)
	spec := jobs.Spec{Kind: jobs.KindSingle, Graph: "uni", App: "PR", Policy: "GRASP", Scale: 256}
	first, err := client1.RunSync(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	client2, mgr2, _ := bootDaemon(t, dir, 1)
	resp, err := client2.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disposition != jobs.Cached {
		t.Fatalf("restarted daemon disposition = %v, want cached", resp.Disposition)
	}
	if mgr2.Metrics().Executed != 0 {
		t.Error("restarted daemon re-simulated stored work")
	}
	got, err := client2.Result(first.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if got.Single == nil || got.Single.LLC.Misses != first.Single.LLC.Misses {
		t.Error("restarted daemon served different metrics")
	}
}

// TestJobLifecycleEndpoints exercises the async path: submit without
// wait, poll GET /jobs/{id} to completion, fetch GET /results/{hash}.
func TestJobLifecycleEndpoints(t *testing.T) {
	client, _, _ := bootDaemon(t, t.TempDir(), 1)
	spec := jobs.Spec{Kind: jobs.KindSingle, Graph: "uni", App: "BFS", Policy: "LRU", Scale: 256}
	resp, err := client.Submit(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disposition != jobs.Queued || resp.ID == "" || resp.Hash == "" {
		t.Fatalf("unexpected submit response: %+v", resp)
	}
	if resp.Priority != 3 {
		t.Errorf("priority = %d, want 3", resp.Priority)
	}
	st, err := client.WaitJob(resp.ID, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	o, err := client.Result(resp.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if o.Single == nil || o.Spec.App != "BFS" {
		t.Errorf("stored outcome wrong: %+v", o)
	}
}

// TestValidationAndNotFound covers the 4xx surface.
func TestValidationAndNotFound(t *testing.T) {
	client, _, ts := bootDaemon(t, t.TempDir(), 1)
	if _, err := client.Submit(jobs.Spec{Kind: "nope"}, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown job kind") {
		t.Errorf("bad kind error = %v", err)
	}
	if _, err := client.Submit(jobs.Spec{Kind: jobs.KindExperiment, Exp: "fig99"}, 0); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := client.Job("j999999"); err == nil || !strings.Contains(err.Error(), "404") &&
		!strings.Contains(err.Error(), "unknown job") {
		t.Errorf("missing job error = %v", err)
	}
	if _, err := client.Result("deadbeef"); err == nil {
		t.Error("missing result did not 404")
	}
	// Unknown body fields are rejected (catches misspelled spec keys).
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"single","graph":"uni","polcy":"LRU"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("misspelled field got HTTP %d, want 400", resp.StatusCode)
	}
}

// TestHealthzAndMetrics checks the observability endpoints, including the
// liveness/readiness split: /healthz stays 200 while draining (restarting
// a daemon finishing its last jobs helps nobody) while /readyz flips to
// 503 so load balancers stop routing to it.
func TestHealthzAndMetrics(t *testing.T) {
	client, mgr, ts := bootDaemon(t, t.TempDir(), 1)
	if _, err := client.RunSync(jobs.Spec{Kind: jobs.KindSingle, Graph: "uni", Scale: 256}, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Workers != 1 {
		t.Errorf("healthz = %d %+v", resp.StatusCode, health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"graspd_jobs_submitted_total 1",
		"graspd_jobs_executed_total 1",
		"graspd_sim_runs_total 1",
		"graspd_stored_outcomes 1",
		"graspd_workers 1",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("metrics missing %q:\n%s", metric, body)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Liveness: the process is still alive and answering, so /healthz
	// stays 200 — the body carries the draining status.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health = struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}{}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "draining" {
		t.Errorf("draining healthz = %d %+v, want 200 status=draining", resp.StatusCode, health)
	}
	// Readiness: /readyz flips to 503 with a Retry-After hint.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz carries no Retry-After header")
	}
	// Submit bypasses the client so its 503-retry loop does not stretch
	// the test; draining rejections are terminal for this process anyway.
	post, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"single","graph":"uni","scale":256}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Errorf("submit while draining = %d %s, want 503 draining", post.StatusCode, body)
	}
}
