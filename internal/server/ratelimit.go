package server

import (
	"net"
	"sync"
	"time"
)

// limiter is a per-client token-bucket rate limiter for POST /jobs: each
// client key (remote IP) accrues rate tokens per second up to burst, and
// a submission spends one. A full bucket means the client has been idle
// long enough to be forgotten, which is what the periodic prune reclaims —
// so the map is bounded by the number of clients active within a prune
// interval, not by every address ever seen.
type limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastPrune time.Time
}

// bucket is one client's token balance at its last refill instant.
type bucket struct {
	tokens float64
	last   time.Time
}

// pruneInterval bounds how often the limiter sweeps idle (full) buckets.
const pruneInterval = time.Minute

func newLimiter(rate float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// allow refills key's bucket to now and spends one token, reporting
// whether one was available.
func (l *limiter) allow(key string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if l.lastPrune.IsZero() {
		l.lastPrune = now
	} else if now.Sub(l.lastPrune) >= pruneInterval {
		l.lastPrune = now
		for k, ob := range l.buckets {
			if ob != b && ob.tokens+now.Sub(ob.last).Seconds()*l.rate >= l.burst {
				delete(l.buckets, k)
			}
		}
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// clientKey buckets requests by remote IP (the host part of RemoteAddr;
// the whole string if it does not parse, e.g. in httptest setups).
func clientKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}
