package server

// Cluster mode (DESIGN.md Sec. 16): the HTTP glue over internal/cluster's
// routing state. The division of labor is deliberate — internal/cluster
// knows WHO owns a hash and which peers are alive; this file knows HOW to
// act on that: forward a submission to the owner (failing over down the
// candidate list), replicate a freshly stored result to its successor,
// and federate a result read from replica holders with hedged,
// checksum-verified fetches. Everything here is a no-op when the daemon
// runs without -peers: enableCluster is never called, s.cl stays nil, and
// every handler takes its pre-cluster path.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/fail"
)

const (
	// forwardedHeader is the hop guard: a router sets it (to its own node
	// ID) on every request it forwards, and a receiving node NEVER forwards
	// a request carrying it — a submission crosses at most one hop, so
	// divergent health views or ring disagreement cannot create a loop.
	forwardedHeader = "X-Graspd-Forwarded"
	// resultSumHeader carries the SHA-256 of the exact response body on raw
	// result responses; receivers (peers and the cluster smoke test alike)
	// recompute and compare before trusting the bytes.
	resultSumHeader = "X-Graspd-Result-Sha256"

	// defaultHedgeDelay is the latency budget a federated read gives the
	// first replica holder before also asking the next.
	defaultHedgeDelay = 150 * time.Millisecond
	// maxResultBytes bounds one fetched result body (rendered experiment
	// outputs run to a few hundred KB; 64 MiB is far past any real
	// outcome while keeping a misbehaving peer from exhausting memory).
	maxResultBytes = 64 << 20
	// forwardTimeout bounds a forwarded non-wait submission and a
	// replication notify round trip.
	forwardTimeout = 30 * time.Second
)

// enableCluster arms the cluster endpoints and hooks. Called from NewWith
// when Options.Cluster is set.
func (s *Server) enableCluster(cl *cluster.Cluster, hedge time.Duration) {
	s.cl = cl
	s.hedge = hedge
	if s.hedge <= 0 {
		s.hedge = defaultHedgeDelay
	}
	s.fwdShort = &http.Client{Timeout: forwardTimeout}
	s.fwdLong = &http.Client{} // wait=true forwards block for the job's duration
	s.mux.HandleFunc("GET /cluster", s.handleCluster)
	s.mux.HandleFunc("GET /internal/results/{hash}", s.handleRawResult)
	s.mux.HandleFunc("POST /internal/replicate", s.handleReplicate)
	// Every outcome this node persists is offered to the other holders of
	// its hash. The hook fires on the worker goroutine, so go async
	// immediately; replWG lets tests drain the fan-out.
	s.mgr.SetOnStored(func(hash string) {
		s.replWG.Add(1)
		go func() {
			defer s.replWG.Done()
			s.replicate(hash)
		}()
	})
	cl.Start()
}

// Cluster returns the membership view (nil in single-node mode). cmd/graspd
// uses it to stop the prober on shutdown.
func (s *Server) Cluster() *cluster.Cluster { return s.cl }

// DrainReplication blocks until every in-flight replication fan-out has
// finished. Tests call it before asserting on replica stores.
func (s *Server) DrainReplication() { s.replWG.Wait() }

// routeSubmit decides where a freshly decoded submission executes. It
// returns true when the response has been fully written (the job was
// forwarded to a peer); false means "execute locally" — either this node
// is the best live candidate for the hash, or every remote candidate
// failed and local execution is the final fallback, which content
// addressing makes safe: a double-executed job produces the identical
// outcome under the identical address.
func (s *Server) routeSubmit(w http.ResponseWriter, r *http.Request, req *SubmitRequest) bool {
	spec := req.Spec
	if err := spec.Canonicalize(); err != nil {
		return false // let the local Submit surface the validation error
	}
	hash, err := spec.Hash()
	if err != nil {
		return false
	}
	cands := s.cl.Candidates(hash, s.cl.ReplicationFactor())
	for i, p := range cands {
		if p.ID == s.cl.Self().ID {
			return false // we are the best live candidate — run it here
		}
		if s.forwardSubmit(w, r, req, p) {
			return true
		}
		if i+1 < len(cands) {
			log.Printf("server: submission %s: %s unreachable, failing over to %s",
				hash[:12], p.ID, cands[i+1].ID)
		} else {
			log.Printf("server: submission %s: every candidate unreachable, executing locally", hash[:12])
		}
		s.failovers.Add(1)
	}
	return false
}

// forwardSubmit relays one submission to a peer and, on success, copies
// the peer's response through verbatim. It returns false on transport
// errors, injected faults and 5xx responses — the signals that the peer
// cannot take the job right now — so the caller tries the next candidate;
// 4xx responses relay as-is (the spec is bad everywhere).
func (s *Server) forwardSubmit(w http.ResponseWriter, r *http.Request, req *SubmitRequest, p cluster.Peer) bool {
	if fail.Hit("cluster.forward") != nil || fail.Hit("cluster.forward."+p.ID) != nil {
		s.cl.ReportFailure(p.ID)
		return false
	}
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	hr, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		strings.TrimRight(p.Addr, "/")+"/jobs", bytes.NewReader(body))
	if err != nil {
		return false
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(forwardedHeader, s.cl.Self().ID)
	client := s.fwdShort
	if req.Wait {
		client = s.fwdLong // the forward blocks exactly as long as the job
	}
	resp, err := client.Do(hr)
	if err != nil {
		if r.Context().Err() != nil {
			// Our client hung up; nothing to fail over for.
			httpError(w, 499, r.Context().Err())
			return true
		}
		s.cl.ReportFailure(p.ID)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= http.StatusInternalServerError {
		io.Copy(io.Discard, resp.Body)
		s.cl.ReportFailure(p.ID)
		return false
	}
	s.cl.ReportSuccess(p.ID)
	s.forwarded.Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// handleCluster implements GET /cluster: the membership snapshot, plus —
// with ?hash= — the routing verdict for one job hash (the smoke test uses
// it to find and kill the owner).
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"self":               s.cl.Self().ID,
		"replication_factor": s.cl.ReplicationFactor(),
		"members":            s.cl.Snapshot(),
	}
	if hash := r.URL.Query().Get("hash"); hash != "" {
		owners := s.cl.Owners(hash, s.cl.ReplicationFactor())
		ids := make([]string, len(owners))
		for i, p := range owners {
			ids[i] = p.ID
		}
		var live []string
		for _, p := range s.cl.Candidates(hash, s.cl.ReplicationFactor()) {
			live = append(live, p.ID)
		}
		resp["hash"] = hash
		resp["owner"] = ids[0]
		resp["replicas"] = ids
		resp["candidates"] = live
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRawResult implements GET /internal/results/{hash}: the exact
// persisted bytes of a locally stored outcome with their checksum header.
// It never federates — peers fetch from it, so it answering only from the
// local store is what makes result fetches loop-free by construction.
func (s *Server) handleRawResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	data, sum, ok := s.mgr.Store().GetRaw(hash)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no stored result for %q", hash))
		return
	}
	writeRawResult(w, data, sum)
}

// writeRawResult serves persisted outcome bytes verbatim with their
// digest, so any receiver can verify end to end.
func writeRawResult(w http.ResponseWriter, data []byte, sum string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(resultSumHeader, sum)
	w.Write(data)
}

// replicateRequest is the body of POST /internal/replicate: a push
// NOTIFICATION, not a push of the bytes — the receiver pulls the result
// from Source and verifies it against Sum, so a compromised or confused
// notifier can waste a fetch but never plant bytes.
type replicateRequest struct {
	// Hash is the outcome's content address.
	Hash string `json:"hash"`
	// Source is the base URL holding the bytes (the notifying node).
	Source string `json:"source"`
	// Sum is the SHA-256 the pulled bytes must hash to.
	Sum string `json:"sum"`
}

// replicate offers a freshly stored outcome to the other ideal holders of
// its hash. Owners (not Candidates) on purpose: replication targets the
// ring's placement even when a holder is temporarily down — the notify
// just fails and the holder cache-fills later on first read.
func (s *Server) replicate(hash string) {
	_, sum, ok := s.mgr.Store().GetRaw(hash)
	if !ok {
		return // degraded store: nothing on disk to offer
	}
	for _, p := range s.cl.Owners(hash, s.cl.ReplicationFactor()) {
		if p.ID == s.cl.Self().ID {
			continue
		}
		if err := s.notifyReplica(p, hash, sum); err != nil {
			s.replErrors.Add(1)
			log.Printf("server: replicating %s to %s: %v", hash[:12], p.ID, err)
		} else {
			s.replicated.Add(1)
		}
	}
}

// notifyReplica tells one peer to pull an outcome from us.
func (s *Server) notifyReplica(p cluster.Peer, hash, sum string) error {
	if err := fail.Hit("cluster.replicate"); err != nil {
		return err
	}
	if err := fail.Hit("cluster.replicate." + p.ID); err != nil {
		return err
	}
	body, err := json.Marshal(replicateRequest{Hash: hash, Source: s.cl.Self().Addr, Sum: sum})
	if err != nil {
		return err
	}
	resp, err := s.fwdShort.Post(strings.TrimRight(p.Addr, "/")+"/internal/replicate",
		"application/json", bytes.NewReader(body))
	if err != nil {
		s.cl.ReportFailure(p.ID)
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	s.cl.ReportSuccess(p.ID)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer answered %s", resp.Status)
	}
	return nil
}

// handleReplicate implements POST /internal/replicate: pull the announced
// outcome from its source, verify the digest, persist the bytes verbatim.
// Idempotent — an already-present verified copy answers 200 without a
// fetch, so re-notifies after partial failures are free.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var req replicateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if req.Hash == "" || req.Source == "" || req.Sum == "" {
		httpError(w, http.StatusBadRequest, errors.New("hash, source and sum are all required"))
		return
	}
	if _, sum, ok := s.mgr.Store().GetRaw(req.Hash); ok && sum == req.Sum {
		writeJSON(w, http.StatusOK, map[string]string{"status": "already-present"})
		return
	}
	data, _, err := s.fetchRaw(r.Context(), req.Source, req.Hash)
	if err != nil {
		httpError(w, http.StatusBadGateway, fmt.Errorf("pulling %s from %s: %w", req.Hash, req.Source, err))
		return
	}
	if got := sha256Hex(data); got != req.Sum {
		httpError(w, http.StatusBadGateway,
			fmt.Errorf("pulled bytes hash to %s, notification promised %s", got, req.Sum))
		return
	}
	if err := s.mgr.Store().PutRaw(req.Hash, data); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "replicated"})
}

// federateResult serves a locally missing result from the hash's replica
// holders: fetch from the first live holder, and if it has not answered
// within the hedge delay, also ask the next — first VERIFIED response
// wins. A verified body this node should hold (it is among the hash's
// owners) is cache-filled so the next read is local. Returns false when
// no holder has the result (the caller 404s).
func (s *Server) federateResult(w http.ResponseWriter, r *http.Request, hash string) bool {
	var holders []cluster.Peer
	for _, p := range s.cl.Candidates(hash, s.cl.ReplicationFactor()) {
		if p.ID != s.cl.Self().ID {
			holders = append(holders, p)
		}
	}
	if len(holders) == 0 {
		return false
	}
	data, sum, ok := s.fetchHedged(r.Context(), holders, hash)
	if !ok {
		return false
	}
	s.maybeCacheFill(hash, data)
	writeRawResult(w, data, sum)
	return true
}

// fetchHedged races checksum-verified fetches across the holders with a
// staggered start: holder 0 immediately, each next one after the hedge
// delay (or instantly once a predecessor fails). First verified body
// wins; the context cancel reels the losers back in.
func (s *Server) fetchHedged(ctx context.Context, holders []cluster.Peer, hash string) ([]byte, string, bool) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type fetched struct {
		data []byte
		sum  string
	}
	ch := make(chan fetched, len(holders))
	launch := func(p cluster.Peer) {
		go func() {
			data, sum, err := s.fetchRaw(ctx, p.Addr, hash)
			if err != nil {
				s.fetchErrors.Add(1)
				if ctx.Err() == nil {
					s.cl.ReportFailure(p.ID)
				}
				ch <- fetched{}
				return
			}
			s.cl.ReportSuccess(p.ID)
			s.fetches.Add(1)
			ch <- fetched{data, sum}
		}()
	}
	launch(holders[0])
	next, outstanding := 1, 1
	hedge := time.NewTimer(s.hedge)
	defer hedge.Stop()
	for {
		select {
		case f := <-ch:
			if f.data != nil {
				return f.data, f.sum, true
			}
			outstanding--
			if next < len(holders) {
				launch(holders[next])
				next++
				outstanding++
			} else if outstanding == 0 {
				return nil, "", false
			}
		case <-hedge.C:
			if next < len(holders) {
				s.hedged.Add(1)
				launch(holders[next])
				next++
				outstanding++
				hedge.Reset(s.hedge)
			}
		case <-ctx.Done():
			return nil, "", false
		}
	}
}

// fetchRaw pulls one outcome's exact bytes from a peer's internal raw
// endpoint and verifies them against the checksum header before returning.
func (s *Server) fetchRaw(ctx context.Context, addr, hash string) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(addr, "/")+"/internal/results/"+hash, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := s.fwdShort.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, "", fmt.Errorf("peer answered %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes+1))
	if err != nil {
		return nil, "", err
	}
	if len(data) > maxResultBytes {
		return nil, "", fmt.Errorf("result exceeds %d bytes", maxResultBytes)
	}
	sum := sha256Hex(data)
	if want := resp.Header.Get(resultSumHeader); want != sum {
		return nil, "", fmt.Errorf("body hashes to %s, peer's %s header says %s", sum, resultSumHeader, want)
	}
	return data, sum, nil
}

// maybeCacheFill persists federated bytes locally when this node is one
// of the hash's ideal holders — a read-repair path that heals replicas
// that missed the original replication (down at the time, or added to
// the ring since).
func (s *Server) maybeCacheFill(hash string, data []byte) {
	for _, p := range s.cl.Owners(hash, s.cl.ReplicationFactor()) {
		if p.ID != s.cl.Self().ID {
			continue
		}
		if err := s.mgr.Store().PutRaw(hash, data); err != nil {
			log.Printf("server: cache-filling %s: %v", hash[:12], err)
		} else {
			s.cacheFills.Add(1)
		}
		return
	}
}

// writeClusterMetrics appends the cluster series to /metrics.
func (s *Server) writeClusterMetrics(w io.Writer, counter func(name, help string, v uint64)) {
	counter("cluster_forwarded_total", "Submissions forwarded to the hash's owning node.", s.forwarded.Load())
	counter("cluster_failovers_total", "Forward attempts that failed over past an unreachable candidate.", s.failovers.Load())
	counter("cluster_replicated_total", "Completed results successfully offered to a replica holder.", s.replicated.Load())
	counter("cluster_replicate_errors_total", "Replication notifies that failed.", s.replErrors.Load())
	counter("cluster_result_fetches_total", "Verified result bodies fetched from peers.", s.fetches.Load())
	counter("cluster_result_fetch_errors_total", "Peer result fetches that failed or failed verification.", s.fetchErrors.Load())
	counter("cluster_hedged_reads_total", "Federated reads that fired a hedge request past the latency budget.", s.hedged.Load())
	counter("cluster_cache_fills_total", "Federated results persisted locally by read repair.", s.cacheFills.Load())
	fmt.Fprintf(w, "# HELP graspd_cluster_peer_up Peer health as probed locally (1 up, 0.5 suspect, 0 down).\n")
	fmt.Fprintf(w, "# TYPE graspd_cluster_peer_up gauge\n")
	for _, st := range s.cl.Snapshot() {
		v := 0.0
		switch st.State {
		case cluster.StateUp:
			v = 1
		case cluster.StateSuspect:
			v = 0.5
		}
		fmt.Fprintf(w, "graspd_cluster_peer_up{peer=%q} %g\n", st.ID, v)
	}
}

// sha256Hex digests data to lowercase hex.
func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
