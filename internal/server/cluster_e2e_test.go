package server

// Three-node cluster harness: every node is a full graspd stack (store →
// manager → HTTP server) on its own httptest listener, wired into one
// static ring. The listeners are allocated BEFORE any server starts so
// each node's -peers view can name every address up front, exactly like a
// deployment's static config. These tests run under -race in CI.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/fail"
	"grasp/internal/jobs"
)

type clusterNode struct {
	id  string
	ts  *httptest.Server
	srv *Server
	mgr *jobs.Manager
	cli *Client
}

type testCluster struct {
	nodes []*clusterNode
}

// bootCluster starts an n-node cluster with fast probes and a short
// hedge delay.
func bootCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tss := make([]*httptest.Server, n)
	peers := make([]cluster.Peer, n)
	for i := range tss {
		tss[i] = httptest.NewUnstartedServer(http.NotFoundHandler())
		peers[i] = cluster.Peer{
			ID:   fmt.Sprintf("n%d", i),
			Addr: "http://" + tss[i].Listener.Addr().String(),
		}
	}
	tc := &testCluster{}
	for i := range tss {
		store, err := jobs.OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		mgr := jobs.NewManager(store, 1)
		cl, err := cluster.New(cluster.Config{
			Self:          peers[i].ID,
			Peers:         peers,
			ProbeInterval: 20 * time.Millisecond,
			ProbeTimeout:  time.Second,
			DownAfter:     2,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewWith(mgr, Options{Cluster: cl, HedgeDelay: 25 * time.Millisecond})
		tss[i].Config.Handler = srv
		tss[i].Start()
		tc.nodes = append(tc.nodes, &clusterNode{
			id: peers[i].ID, ts: tss[i], srv: srv, mgr: mgr, cli: NewClient(tss[i].URL),
		})
	}
	t.Cleanup(func() {
		for _, nd := range tc.nodes {
			nd.srv.DrainReplication()
			nd.srv.Cluster().Stop()
			nd.ts.Close() // idempotent: tests that killed a node already closed it
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			nd.mgr.Shutdown(ctx)
			cancel()
		}
	})
	return tc
}

// node returns the member with the given ID.
func (tc *testCluster) node(id string) *clusterNode {
	for _, nd := range tc.nodes {
		if nd.id == id {
			return nd
		}
	}
	return nil
}

// specOwnedBy mints a cheap single-graph spec whose hash is owned by
// wantOwner and — when avoid is set — whose replica holder set excludes
// avoid, by scanning scale divisors (scale is part of the content
// address, so each divisor is a fresh hash).
func (tc *testCluster) specOwnedBy(t *testing.T, wantOwner, avoid string) (jobs.Spec, string) {
	t.Helper()
	cl := tc.nodes[0].srv.Cluster()
	for scale := uint32(200); scale < 10000; scale++ {
		spec := jobs.Spec{Kind: jobs.KindSingle, Graph: "uni", Scale: scale}
		if err := spec.Canonicalize(); err != nil {
			t.Fatal(err)
		}
		hash, err := spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		owners := cl.Owners(hash, cl.ReplicationFactor())
		if owners[0].ID != wantOwner {
			continue
		}
		excluded := true
		for _, p := range owners {
			if p.ID == avoid {
				excluded = false
			}
		}
		if avoid != "" && !excluded {
			continue
		}
		return spec, hash
	}
	t.Fatal("no spec found with the requested ownership")
	return jobs.Spec{}, ""
}

// TestClusterForwardsToOwnerAndReplicates: a submission through a
// non-owning node executes on the hash's owner, and the completed result
// replicates to the successor — the ingress node, which holds no replica,
// stores nothing.
func TestClusterForwardsToOwnerAndReplicates(t *testing.T) {
	tc := bootCluster(t, 3)
	ingress := tc.nodes[0]
	spec, hash := tc.specOwnedBy(t, "n1", ingress.id)
	owner, successor := tc.node("n1"), tc.node("n2")

	out, err := ingress.cli.RunSync(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hash != hash {
		t.Fatalf("outcome hash %s, want %s", out.Hash, hash)
	}
	if got := owner.mgr.Metrics().Executed; got != 1 {
		t.Errorf("owner executed %d jobs, want 1", got)
	}
	if got := ingress.mgr.Metrics().Executed; got != 0 {
		t.Errorf("ingress executed %d jobs, want 0 (it must forward)", got)
	}
	if got := ingress.srv.forwarded.Load(); got != 1 {
		t.Errorf("ingress forwarded counter = %d, want 1", got)
	}

	owner.srv.DrainReplication()
	ownData, ownSum, ok := owner.mgr.Store().GetRaw(hash)
	if !ok {
		t.Fatal("owner did not persist the outcome")
	}
	repData, repSum, ok := successor.mgr.Store().GetRaw(hash)
	if !ok {
		t.Fatal("successor holds no replica")
	}
	if repSum != ownSum || string(repData) != string(ownData) {
		t.Error("replica bytes differ from the owner's")
	}
	if _, _, ok := ingress.mgr.Store().GetRaw(hash); ok {
		t.Error("non-holder ingress node stored a copy")
	}
}

// TestClusterOwnerDownFailover: with the owning node dead (listener
// closed — the SIGKILL shape), a submission through a survivor fails over
// to the successor and completes there.
func TestClusterOwnerDownFailover(t *testing.T) {
	tc := bootCluster(t, 3)
	ingress := tc.nodes[0]
	// Owner n2, holders {n2, n1}: ingress n0 is not in the replica set, so
	// the failover target is deterministically n1.
	spec, hash := tc.specOwnedBy(t, "n2", ingress.id)
	tc.node("n2").ts.Close()

	out, err := ingress.cli.RunSync(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hash != hash {
		t.Fatalf("outcome hash %s, want %s", out.Hash, hash)
	}
	if got := tc.node("n1").mgr.Metrics().Executed; got != 1 {
		t.Errorf("successor executed %d jobs, want 1", got)
	}
	if got := ingress.srv.failovers.Load(); got == 0 {
		t.Error("ingress recorded no failover past the dead owner")
	}
}

// TestClusterPartitionDedupAndHeal: with the owner partitioned by
// failpoints, two different nodes' submissions of the same spec both fail
// over to the successor and JOIN — one execution cluster-wide. After the
// partition heals, the completed result replicates back to the owner.
func TestClusterPartitionDedupAndHeal(t *testing.T) {
	defer fail.Reset()
	tc := bootCluster(t, 3)
	// A seconds-long experiment job, so the second submission arrives while
	// the first is still executing.
	spec := jobs.Spec{Kind: jobs.KindExperiment, Exp: "fig9", Scale: 64}
	if err := spec.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	cl := tc.nodes[0].srv.Cluster()
	owners := cl.Owners(hash, cl.ReplicationFactor())
	owner := tc.node(owners[0].ID)
	successor := tc.node(owners[1].ID)
	var others []*clusterNode
	for _, nd := range tc.nodes {
		if nd.id != owner.id {
			others = append(others, nd)
		}
	}

	// Partition the owner: its forwards fail and every node's prober marks
	// it down (failpoints are process-wide, which in this one-process
	// harness IS the symmetric partition).
	fail.Arm("cluster.forward."+owner.id, nil)
	fail.Arm("cluster.probe."+owner.id, nil)

	first, err := others[0].cli.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := others[1].cli.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.Disposition != jobs.Deduped && second.Disposition != jobs.Cached {
		t.Errorf("second submission disposition = %v, want deduped (or cached if the race lost)", second.Disposition)
	}
	if second.Disposition == jobs.Deduped && second.ID != first.ID {
		t.Errorf("deduped submission joined job %s, first was %s", second.ID, first.ID)
	}
	if got := owner.mgr.Metrics().Submitted; got != 0 {
		t.Errorf("partitioned owner saw %d submissions, want 0", got)
	}

	// The job landed on the successor; wait for it there.
	st, err := successor.cli.WaitJob(first.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if got := successor.mgr.Metrics().Executed; got != 1 {
		t.Errorf("successor executed %d jobs, want exactly 1 (dedup must join)", got)
	}

	// Heal. Replication targets ring placement, so the owner receives its
	// copy on the completion-time notify.
	fail.Reset()
	successor.srv.DrainReplication()
	if _, _, ok := owner.mgr.Store().GetRaw(hash); !ok {
		t.Error("healed owner holds no replica of the result produced during the partition")
	}
}

// TestClusterHopGuard: a request already carrying the forwarded header is
// NEVER forwarded again, even by a node that does not own its hash — the
// property that makes routing loop-free under ring disagreement.
func TestClusterHopGuard(t *testing.T) {
	tc := bootCluster(t, 3)
	nonOwner := tc.nodes[0]
	spec, _ := tc.specOwnedBy(t, "n1", "")

	body, err := json.Marshal(SubmitRequest{Spec: spec, Wait: true})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, nonOwner.ts.URL+"/jobs", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Graspd-Forwarded", "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded submit answered %s", resp.Status)
	}
	io.Copy(io.Discard, resp.Body)
	if got := nonOwner.mgr.Metrics().Executed; got != 1 {
		t.Errorf("guarded node executed %d jobs, want 1 (locally, no second hop)", got)
	}
	if got := tc.node("n1").mgr.Metrics().Executed; got != 0 {
		t.Errorf("owner executed %d jobs, want 0 (the hop guard must stop re-forwarding)", got)
	}
	if got := nonOwner.srv.forwarded.Load(); got != 0 {
		t.Errorf("guarded node forwarded %d requests, want 0", got)
	}
}

// TestClusterReplicaServesVerifiedRead: with the owner dead, a
// non-holding node's GET /results federates the outcome from the replica
// and serves it with a checksum header that matches the body.
func TestClusterReplicaServesVerifiedRead(t *testing.T) {
	tc := bootCluster(t, 3)
	reader := tc.nodes[0]
	spec, hash := tc.specOwnedBy(t, "n1", reader.id) // holders {n1, n2}
	owner, replica := tc.node("n1"), tc.node("n2")

	if _, err := owner.cli.RunSync(spec, 0); err != nil {
		t.Fatal(err)
	}
	owner.srv.DrainReplication()
	if _, _, ok := replica.mgr.Store().GetRaw(hash); !ok {
		t.Fatal("replica holds no copy before the owner dies")
	}
	owner.ts.Close()

	resp, err := http.Get(reader.ts.URL + "/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("federated read answered %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := resp.Header.Get("X-Graspd-Result-Sha256")
	if want == "" {
		t.Fatal("federated response carries no checksum header")
	}
	if got := sha256Hex(data); got != want {
		t.Fatalf("body hashes to %s, header says %s", got, want)
	}
	var o jobs.Outcome
	if err := json.Unmarshal(data, &o); err != nil || o.Hash != hash {
		t.Fatalf("federated body is not the outcome for %s: %v", hash, err)
	}
	// The reader is not in the hash's holder set: federation must serve
	// without planting an off-placement copy.
	if _, _, ok := reader.mgr.Store().GetRaw(hash); ok {
		t.Error("non-holder cache-filled a federated result")
	}
}

// TestClusterCacheFillRepairsReplica: a holder that missed the original
// replication (notify failpointed) repairs itself on its first federated
// read — pull, verify, persist.
func TestClusterCacheFillRepairsReplica(t *testing.T) {
	defer fail.Reset()
	tc := bootCluster(t, 3)
	spec, hash := tc.specOwnedBy(t, "n1", "n0") // holders {n1, n2}
	owner, replica := tc.node("n1"), tc.node("n2")

	fail.Arm("cluster.replicate", nil)
	if _, err := owner.cli.RunSync(spec, 0); err != nil {
		t.Fatal(err)
	}
	owner.srv.DrainReplication()
	if _, _, ok := replica.mgr.Store().GetRaw(hash); ok {
		t.Fatal("replication happened despite the armed failpoint")
	}
	if got := owner.srv.replErrors.Load(); got == 0 {
		t.Error("owner recorded no replication errors")
	}
	fail.Reset()

	if _, err := replica.cli.Result(hash); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := replica.mgr.Store().GetRaw(hash); !ok {
		t.Error("holder did not cache-fill the federated result")
	}
	if got := replica.srv.cacheFills.Load(); got != 1 {
		t.Errorf("cache fills = %d, want 1", got)
	}
}

// TestClusterStatusEndpoint: /cluster names every member, and ?hash=
// reports the routing verdict the smoke test kills by.
func TestClusterStatusEndpoint(t *testing.T) {
	tc := bootCluster(t, 3)
	_, hash := tc.specOwnedBy(t, "n2", "")
	resp, err := http.Get(tc.nodes[0].ts.URL + "/cluster?hash=" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Self     string           `json:"self"`
		Members  []cluster.Status `json:"members"`
		Owner    string           `json:"owner"`
		Replicas []string         `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Self != "n0" || len(body.Members) != 3 {
		t.Errorf("self=%s members=%d, want n0 with 3 members", body.Self, len(body.Members))
	}
	if body.Owner != "n2" || len(body.Replicas) != 2 {
		t.Errorf("owner=%s replicas=%v, want n2 with 2 replicas", body.Owner, body.Replicas)
	}
}
