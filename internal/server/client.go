package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"grasp/internal/jobs"
)

// Client talks to a graspd daemon; it is what `graspsim -remote` uses.
// The zero HTTP client gets no request timeout — simulations can run for
// minutes, and Submit with wait holds the connection open for the
// duration.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://localhost:8337".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for the daemon at base (scheme optional;
// bare host:port gets "http://").
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

// httpClient returns the effective transport.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Submit posts a job and returns its accepted status without waiting.
func (c *Client) Submit(spec jobs.Spec, priority int) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.post("/jobs", SubmitRequest{Spec: spec, Priority: priority}, &out)
	return out, err
}

// RunSync posts a job with wait=true and returns the completed outcome —
// served from the daemon's result store if the work was done before.
func (c *Client) RunSync(spec jobs.Spec, priority int) (*jobs.Outcome, error) {
	var out jobs.Outcome
	if err := c.post("/jobs", SubmitRequest{Spec: spec, Priority: priority, Wait: true}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches the current status of a job by ID.
func (c *Client) Job(id string) (jobs.Status, error) {
	var out jobs.Status
	err := c.get("/jobs/"+id, &out)
	return out, err
}

// Result fetches a stored outcome by spec hash.
func (c *Client) Result(hash string) (*jobs.Outcome, error) {
	var out jobs.Outcome
	if err := c.get("/results/"+hash, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job until it leaves the queued/running states, with the
// given interval, and returns its terminal status. Prefer RunSync unless
// progress reporting is needed; onPoll (optional) observes each snapshot.
func (c *Client) WaitJob(id string, interval time.Duration, onPoll func(jobs.Status)) (jobs.Status, error) {
	for {
		st, err := c.Job(id)
		if err != nil {
			return st, err
		}
		if onPoll != nil {
			onPoll(st)
		}
		if st.State == jobs.StateDone || st.State == jobs.StateFailed {
			return st, nil
		}
		time.Sleep(interval)
	}
}

// post sends a JSON body and decodes a JSON response into out.
func (c *Client) post(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Post(c.Base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// get decodes a JSON response into out.
func (c *Client) get(path string, out any) error {
	resp, err := c.httpClient().Get(c.Base + path)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// decodeResponse maps non-2xx responses to errors (surfacing the daemon's
// JSON error message) and unmarshals success bodies.
func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("graspd: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("graspd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
