package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"grasp/internal/jobs"
)

// Client talks to a graspd daemon; it is what `graspsim -remote` uses.
// Requests carry bounded connect, TLS-handshake and response-header
// timeouts — a daemon that stops answering fails the call instead of
// hanging it forever — while body reads stay unbounded, because a
// synchronous submission (RunSync) legitimately holds the response open
// for the duration of a simulation. Transient failures (connection
// errors, 429 rate limiting, 503 shedding/draining) are retried with
// exponential backoff and jitter, honoring the server's Retry-After hint;
// retrying POST /jobs is safe because jobs are content-addressed — a
// duplicate submission dedups or hits the result store, never runs twice.
type Client struct {
	// Base is the primary daemon base URL, e.g. "http://localhost:8337".
	// NewClient fills it with the first configured endpoint; a
	// hand-constructed Client with only Base set behaves exactly as before
	// multi-endpoint support existed.
	Base string
	// HTTP overrides the transport for ALL requests; nil uses the
	// package's tuned defaults. Overriding disables the long-poll
	// distinction, so set generous (or zero) timeouts if RunSync is used.
	HTTP *http.Client

	// bases is the full endpoint rotation (cluster mode hands the client
	// every node); next indexes the endpoint new requests try first,
	// advanced whenever an endpoint fails with a transport error or 5xx so
	// traffic settles on a live node instead of re-discovering the dead one
	// per call.
	bases []string
	next  atomic.Uint32
}

// NewClient returns a client for the daemon(s) at base: one base URL, or
// several comma-separated (e.g. "host1:8337,host2:8337" — how a cluster's
// member list is handed to graspsim -remote). Scheme optional; bare
// host:port gets "http://". With several endpoints the client rotates to
// the next on transport errors and 5xx responses; jobs being
// content-addressed makes resubmitting through a different node safe.
func NewClient(base string) *Client {
	var bases []string
	for _, b := range strings.Split(base, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		bases = append(bases, strings.TrimRight(b, "/"))
	}
	if len(bases) == 0 {
		bases = []string{"http://"}
	}
	return &Client{Base: bases[0], bases: bases}
}

// endpoints returns the rotation set (a bare Client{Base: ...} literal
// still works: its single endpoint is Base).
func (c *Client) endpoints() []string {
	if len(c.bases) > 0 {
		return c.bases
	}
	return []string{c.Base}
}

// base returns the endpoint new requests should try first.
func (c *Client) base() string {
	eps := c.endpoints()
	return eps[int(c.next.Load())%len(eps)]
}

// rotate advances the rotation past a failed endpoint.
func (c *Client) rotate() { c.next.Add(1) }

// newTransport builds an http.Transport with bounded connect and TLS
// handshake phases; responseHeader bounds the wait for response HEADERS
// only (0 = unbounded, for requests that block server-side until a job
// completes). Deliberately no http.Client.Timeout: that would cap the
// whole exchange including the body read, and outcomes can be large and
// slow to produce.
func newTransport(responseHeader time.Duration) *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		ResponseHeaderTimeout: responseHeader,
		MaxIdleConns:          16,
		IdleConnTimeout:       90 * time.Second,
	}
}

// shortOpClient serves the quick control-plane calls (submit-async,
// status polls, cancel, stored-result fetches): the server answers these
// immediately, so a 30s header timeout only fires when it is genuinely
// stuck. longOpClient serves wait=true submissions, whose headers
// legitimately arrive only when the simulation finishes.
var (
	shortOpClient = &http.Client{Transport: newTransport(30 * time.Second)}
	longOpClient  = &http.Client{Transport: newTransport(0)}
)

// httpClient returns the effective transport for a call; long selects
// the unbounded-header client used by synchronous submissions.
func (c *Client) httpClient(long bool) *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	if long {
		return longOpClient
	}
	return shortOpClient
}

// Retry schedule: up to retryMax retries after the initial attempt,
// exponential from retryBase, capped, with jitter so a fleet of clients
// bounced by one shedding daemon does not reconverge in lockstep.
const (
	retryMax  = 4
	retryBase = 200 * time.Millisecond
	retryCap  = 5 * time.Second
)

// backoffDelay returns the sleep before retry attempt (0-based), taking
// the server's Retry-After hint as a floor when present.
func backoffDelay(attempt int, retryAfter time.Duration) time.Duration {
	d := retryBase << attempt
	if d > retryCap {
		d = retryCap
	}
	// Full jitter over [d/2, d).
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// parseRetryAfter reads a delay-seconds Retry-After header (0 if absent
// or not an integer — the HTTP-date form is not worth parsing here).
func parseRetryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// retryableStatus reports whether an HTTP status is worth retrying: 429
// (rate limited) and 503 (shedding or draining) are explicitly transient
// and carry Retry-After.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// do issues one JSON request with retries and endpoint rotation. body is
// re-marshaled bytes (safe to resend); out receives the decoded success
// body. Each backoff round tries every configured endpoint once —
// transport errors and 5xx responses rotate to the next endpoint
// immediately (another node can often serve what this one cannot), while
// the sleeps between rounds honor the largest Retry-After hint seen. A
// canceled ctx returns at once, both mid-request and mid-backoff: a
// wait=true long poll whose caller gives up must not burn the rest of the
// retry schedule against a job nobody is waiting for.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any, long bool) error {
	eps := c.endpoints()
	var lastErr error
	for attempt := 0; ; attempt++ {
		sawTransient := false
		var retryAfter time.Duration
		for range eps {
			var reqBody io.Reader
			if body != nil {
				reqBody = bytes.NewReader(body)
			}
			req, err := http.NewRequestWithContext(ctx, method, c.base()+path, reqBody)
			if err != nil {
				return err
			}
			if body != nil {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := c.httpClient(long).Do(req)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err() // caller hung up, not a daemon failure
				}
				lastErr = err
				sawTransient = true
				c.rotate()
				continue
			}
			switch {
			case retryableStatus(resp.StatusCode):
				if ra := parseRetryAfter(resp); ra > retryAfter {
					retryAfter = ra
				}
				lastErr = decodeResponse(resp, nil)
				sawTransient = true
				c.rotate()
			case resp.StatusCode >= http.StatusInternalServerError && len(eps) > 1:
				// Another node may succeed where this one 5xx'd; rotate to
				// it this round, but a 5xx alone does not buy more backoff
				// rounds — if every endpoint 5xx's, the failure is real.
				lastErr = decodeResponse(resp, nil)
				c.rotate()
			default:
				return decodeResponse(resp, out)
			}
		}
		if !sawTransient || attempt >= retryMax {
			return lastErr
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoffDelay(attempt, retryAfter)):
		}
	}
}

// Submit posts a job and returns its accepted status without waiting.
func (c *Client) Submit(spec jobs.Spec, priority int) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.post(context.Background(), "/jobs", SubmitRequest{Spec: spec, Priority: priority}, &out, false)
	return out, err
}

// RunSync posts a job with wait=true and returns the completed outcome —
// served from the daemon's result store if the work was done before. The
// call holds its connection open for the duration of the simulation (no
// response-header timeout applies).
func (c *Client) RunSync(spec jobs.Spec, priority int) (*jobs.Outcome, error) {
	return c.RunSyncContext(context.Background(), spec, priority)
}

// RunSyncContext is RunSync bounded by a caller context: canceling ctx
// abandons the long poll immediately — including any backoff sleep the
// retry loop is in — instead of riding out the full retry schedule.
func (c *Client) RunSyncContext(ctx context.Context, spec jobs.Spec, priority int) (*jobs.Outcome, error) {
	var out jobs.Outcome
	if err := c.post(ctx, "/jobs", SubmitRequest{Spec: spec, Priority: priority, Wait: true}, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches the current status of a job by ID.
func (c *Client) Job(id string) (jobs.Status, error) {
	var out jobs.Status
	err := c.get("/jobs/"+id, &out)
	return out, err
}

// Cancel requests cancellation of a job by ID (DELETE /jobs/{id}) and
// returns the job's snapshot at acceptance. A running job settles
// asynchronously — poll Job until it leaves the running state.
func (c *Client) Cancel(id string) (jobs.Status, error) {
	var out jobs.Status
	err := c.do(context.Background(), http.MethodDelete, "/jobs/"+id, nil, &out, false)
	return out, err
}

// Result fetches a stored outcome by spec hash.
func (c *Client) Result(hash string) (*jobs.Outcome, error) {
	var out jobs.Outcome
	if err := c.get("/results/"+hash, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job until it leaves the queued/running states, with the
// given interval, and returns its terminal status. Prefer RunSync unless
// progress reporting is needed; onPoll (optional) observes each snapshot.
func (c *Client) WaitJob(id string, interval time.Duration, onPoll func(jobs.Status)) (jobs.Status, error) {
	for {
		st, err := c.Job(id)
		if err != nil {
			return st, err
		}
		if onPoll != nil {
			onPoll(st)
		}
		if st.State == jobs.StateDone || st.State == jobs.StateFailed {
			return st, nil
		}
		time.Sleep(interval)
	}
}

// post sends a JSON body and decodes a JSON response into out.
func (c *Client) post(ctx context.Context, path string, body, out any, long bool) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, data, out, long)
}

// get decodes a JSON response into out.
func (c *Client) get(path string, out any) error {
	return c.do(context.Background(), http.MethodGet, path, nil, out, false)
}

// decodeResponse maps non-2xx responses to errors (surfacing the daemon's
// JSON error message) and unmarshals success bodies.
func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("graspd: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("graspd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
