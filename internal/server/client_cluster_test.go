package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"grasp/internal/jobs"
)

// countingMock is an httptest daemon stub that counts requests and
// answers with a fixed status (200 sends an empty JSON object, which
// decodes into any response type).
func countingMock(t *testing.T, status int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if status != http.StatusOK {
			w.WriteHeader(status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{}"))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

// TestClientRotatesOn5xx: with several endpoints, a 500 from the first
// rotates to the next within the same round, and later calls start from
// the endpoint that worked.
func TestClientRotatesOn5xx(t *testing.T) {
	bad, badHits := countingMock(t, http.StatusInternalServerError)
	good, goodHits := countingMock(t, http.StatusOK)
	c := NewClient(bad.URL + "," + good.URL)

	if _, err := c.Submit(jobs.Spec{Kind: jobs.KindSingle, Graph: "uni"}, 0); err != nil {
		t.Fatal(err)
	}
	if got := badHits.Load(); got != 1 {
		t.Errorf("failing endpoint got %d requests, want 1", got)
	}
	if _, err := c.Submit(jobs.Spec{Kind: jobs.KindSingle, Graph: "uni"}, 0); err != nil {
		t.Fatal(err)
	}
	if got := badHits.Load(); got != 1 {
		t.Errorf("failing endpoint got %d requests after rotation, want still 1", got)
	}
	if got := goodHits.Load(); got != 2 {
		t.Errorf("healthy endpoint got %d requests, want 2", got)
	}
}

// TestClientRotatesOnTransportError: a dead endpoint (closed listener)
// rotates to a live one instead of failing the call.
func TestClientRotatesOnTransportError(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	good, goodHits := countingMock(t, http.StatusOK)

	c := NewClient(deadURL + "," + good.URL)
	start := time.Now()
	if _, err := c.Submit(jobs.Spec{Kind: jobs.KindSingle, Graph: "uni"}, 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("rotation took %v; a dead endpoint must fail fast, not wait out retries", d)
	}
	if got := goodHits.Load(); got != 1 {
		t.Errorf("healthy endpoint got %d requests, want 1", got)
	}
}

// TestClientSingleEndpoint5xxNotRetried: with ONE endpoint the
// pre-rotation semantics hold — a plain 500 is a terminal error, not a
// reason to burn the backoff schedule.
func TestClientSingleEndpoint5xxNotRetried(t *testing.T) {
	bad, badHits := countingMock(t, http.StatusInternalServerError)
	c := NewClient(bad.URL)
	if _, err := c.Submit(jobs.Spec{Kind: jobs.KindSingle, Graph: "uni"}, 0); err == nil {
		t.Fatal("500 from the only endpoint must surface as an error")
	}
	if got := badHits.Load(); got != 1 {
		t.Errorf("endpoint got %d requests, want 1 (no retry on non-transient 5xx)", got)
	}
}

// TestClientCancelDuringLongPoll: canceling the context of a wait=true
// submission that is blocked on the server returns immediately.
func TestClientCancelDuringLongPoll(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read can notice the
		// client disconnect and cancel the request context.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // hang until the client gives up
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewClient(ts.URL).RunSyncContext(ctx, jobs.Spec{Kind: jobs.KindSingle, Graph: "uni"}, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancel took %v to surface, want immediate", d)
	}
}

// TestClientCancelDuringBackoff: a context canceled while the retry loop
// sleeps (here pinned long by a Retry-After hint) interrupts the sleep —
// the fix for long polls burning the full backoff schedule after the
// caller hung up.
func TestClientCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewClient(ts.URL).RunSyncContext(ctx, jobs.Spec{Kind: jobs.KindSingle, Graph: "uni"}, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancel mid-backoff took %v, want immediate (Retry-After floor was 30s)", d)
	}
}
