package policy

import (
	"grasp/internal/cache"
	"grasp/internal/mem"
)

// PLRU is tree-based Pseudo-LRU, the replacement scheme most commonly
// shipped in real L1/L2 caches and one of the base schemes the paper names
// as a GRASP substrate (Sec. III-C). Each set keeps ways-1 tree bits; a
// hit or fill flips the bits along the block's root path to point away
// from it, and the victim is found by following the bits from the root.
//
// Associativity must be a power of two.
type PLRU struct {
	bits []bool // (ways-1) bits per set, heap layout: node i has kids 2i+1, 2i+2
	ways uint32
}

// NewPLRU creates a tree-PLRU policy.
func NewPLRU(sets, ways uint32) *PLRU {
	if ways == 0 || ways&(ways-1) != 0 {
		panic("policy: PLRU requires power-of-two associativity")
	}
	return &PLRU{bits: make([]bool, sets*(ways-1)), ways: ways}
}

var _ cache.Policy = (*PLRU)(nil)

// Name implements cache.Policy.
func (p *PLRU) Name() string { return "PLRU" }

// touch flips the tree bits on way's root path to protect it.
func (p *PLRU) touch(set, way uint32) {
	base := set * (p.ways - 1)
	// Walk from the root to the leaf; at each node record whether the
	// target is in the left or right subtree and point the bit the OTHER
	// way (bit true = next victim search goes right).
	node := uint32(0)
	lo, hi := uint32(0), p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			p.bits[base+node] = true // victim search should go right
			node = 2*node + 1
			hi = mid
		} else {
			p.bits[base+node] = false // victim search should go left
			node = 2*node + 2
			lo = mid
		}
	}
}

// OnHit implements cache.Policy.
func (p *PLRU) OnHit(set, way uint32, _ mem.Access) { p.touch(set, way) }

// OnFill implements cache.Policy.
func (p *PLRU) OnFill(set, way uint32, _ mem.Access) { p.touch(set, way) }

// Victim implements cache.Policy: follow the tree bits.
func (p *PLRU) Victim(set uint32, _ mem.Access) (uint32, bool) {
	base := set * (p.ways - 1)
	node := uint32(0)
	lo, hi := uint32(0), p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.bits[base+node] {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo, false
}

// OnEvict implements cache.Policy.
func (p *PLRU) OnEvict(uint32, uint32) {}

// VictimPath exposes the would-be victim without side effects (tests).
func (p *PLRU) VictimPath(set uint32) uint32 {
	v, _ := p.Victim(set, mem.Access{})
	return v
}
