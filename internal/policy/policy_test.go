package policy

import (
	"testing"
	"testing/quick"

	"grasp/internal/cache"
	"grasp/internal/mem"
)

// llcWith builds a 1-set cache of the given associativity around a policy,
// making eviction order directly observable.
func llcWith(t *testing.T, ways uint32, p cache.Policy) *cache.Cache {
	t.Helper()
	return cache.MustNew(cache.Config{SizeBytes: uint64(ways) * cache.BlockSize, Ways: ways}, p)
}

func blockAddr(i uint64) uint64 { return i << cache.BlockBits }

func TestSRRIPScanResistanceShape(t *testing.T) {
	// SRRIP inserts at long (6), hits promote to 0. A block that hits once
	// survives a subsequent burst of single-use blocks longer than under
	// insertion-at-MRU.
	c := llcWith(t, 4, NewSRRIP(1, 4))
	c.Access(mem.Access{Addr: blockAddr(100)}) // fill at RRPV 6
	c.Access(mem.Access{Addr: blockAddr(100)}) // hit -> RRPV 0
	// Three scan blocks fill the other ways at RRPV 6.
	for i := uint64(0); i < 3; i++ {
		c.Access(mem.Access{Addr: blockAddr(i)})
	}
	// A fourth scan block must evict a scan block, not the reused one.
	c.Access(mem.Access{Addr: blockAddr(50)})
	if !c.Contains(blockAddr(100)) {
		t.Fatal("reused block evicted before single-use scan blocks")
	}
}

func TestRRIPMetaVictimAging(t *testing.T) {
	m := NewRRIPMeta(1, 4)
	for w := uint32(0); w < 4; w++ {
		m.Set(0, w, 3)
	}
	m.Set(0, 2, 5)
	// Victim must age everyone until way 2 reaches 7 first.
	if v := m.Victim(0); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
	// After aging, others are at 5.
	if m.Get(0, 0) != 5 {
		t.Fatalf("aging wrong: got %d, want 5", m.Get(0, 0))
	}
}

func TestBRRIPMostlyDistant(t *testing.T) {
	p := NewBRRIP(16, 4)
	c := cache.MustNew(cache.Config{SizeBytes: 4096, Ways: 4}, p)
	distant := 0
	total := 200
	for i := 0; i < total; i++ {
		a := mem.Access{Addr: blockAddr(uint64(i * 16))}
		c.Access(a)
		block := cache.BlockAddr(a.Addr)
		set := uint32(block & uint64(15))
		// Find the way just filled and check its RRPV.
		for w := uint32(0); w < 4; w++ {
			if p.meta.Get(set, w) == RRPVMax {
				distant++
				break
			}
		}
	}
	if distant < total/2 {
		t.Fatalf("BRRIP inserted at distant only %d/%d times", distant, total)
	}
}

func TestDRRIPDuelingConverges(t *testing.T) {
	// Thrashing pattern over a working set larger than the cache: BRRIP
	// wins the duel (PSEL should move toward BRRIP) because SRRIP leader
	// sets keep missing.
	p := NewDRRIP(64, 4)
	c := cache.MustNew(cache.Config{SizeBytes: 64 * 4 * cache.BlockSize, Ways: 4}, p)
	for rep := 0; rep < 30; rep++ {
		for i := uint64(0); i < 64*8; i++ { // 2x capacity, cyclic
			c.Access(mem.Access{Addr: blockAddr(i)})
		}
	}
	if p.psel >= 0 {
		t.Fatalf("PSEL = %d; expected negative (BRRIP preferred) under thrashing", p.psel)
	}
	// BRRIP must retain part of the working set: hits > 0, better than pure
	// LRU which would get zero hits on this pattern.
	if c.Stats.Hits == 0 {
		t.Fatal("DRRIP earned no hits on a thrashing loop; thrash resistance broken")
	}
}

func TestLRUZeroHitsOnThrash(t *testing.T) {
	// Sanity for the previous test's premise: cyclic loop over 2x capacity
	// gives LRU zero hits.
	c := cache.MustNew(cache.Config{SizeBytes: 64 * 4 * cache.BlockSize, Ways: 4},
		cache.NewLRU(64, 4))
	for rep := 0; rep < 5; rep++ {
		for i := uint64(0); i < 64*8; i++ {
			c.Access(mem.Access{Addr: blockAddr(i)})
		}
	}
	if c.Stats.Hits != 0 {
		t.Fatalf("LRU got %d hits on a thrashing loop", c.Stats.Hits)
	}
}

func TestDIPBehavesUnderThrash(t *testing.T) {
	p := NewDIP(64, 4)
	c := cache.MustNew(cache.Config{SizeBytes: 64 * 4 * cache.BlockSize, Ways: 4}, p)
	for rep := 0; rep < 30; rep++ {
		for i := uint64(0); i < 64*8; i++ {
			c.Access(mem.Access{Addr: blockAddr(i)})
		}
	}
	if c.Stats.Hits == 0 {
		t.Fatal("DIP earned no hits under thrashing; BIP mode broken")
	}
}

func TestSHiPLearnsDeadRegion(t *testing.T) {
	p := NewSHiPMem(1, 4)
	c := llcWith(t, 4, p)
	// Region A (low addresses): streamed once, never reused. Region B:
	// reused heavily. After training, A's signature should be 0 and B's
	// high.
	regionA := uint64(0)
	regionB := uint64(1) << shipRegionBits
	for rep := 0; rep < 30; rep++ {
		for i := uint64(0); i < 8; i++ {
			c.Access(mem.Access{Addr: regionA + i<<cache.BlockBits})
		}
		for i := uint64(0); i < 2; i++ {
			c.Access(mem.Access{Addr: regionB + i<<cache.BlockBits})
			c.Access(mem.Access{Addr: regionB + i<<cache.BlockBits})
		}
	}
	sh := p.SHCTSnapshot()
	if sh[signature(regionA)] != 0 {
		t.Fatalf("dead region counter = %d, want 0", sh[signature(regionA)])
	}
	if sh[signature(regionB)] < 2 {
		t.Fatalf("live region counter = %d, want >= 2", sh[signature(regionB)])
	}
}

func TestHawkeyeTrainsAverseOnThrash(t *testing.T) {
	// A single PC cyclically streaming a working set far beyond capacity:
	// OPTgen must conclude the PC is cache-averse.
	p := NewHawkeye(8, 4)
	c := cache.MustNew(cache.Config{SizeBytes: 8 * 4 * cache.BlockSize, Ways: 4}, p)
	pc := mem.PC("stream")
	for rep := 0; rep < 50; rep++ {
		for i := uint64(0); i < 8*64; i++ {
			c.Access(mem.Access{Addr: blockAddr(i), PC: pc})
		}
	}
	snap := p.PredictorSnapshot()
	if ctr, ok := snap[pc]; !ok || ctr >= 4 {
		t.Fatalf("streaming PC counter = %d (ok=%v), want cache-averse (<4)", ctr, ok)
	}
}

func TestHawkeyeTrainsFriendlyOnReuse(t *testing.T) {
	// A PC whose blocks fit in the sampled set and are reused at short
	// intervals must train cache-friendly.
	p := NewHawkeye(8, 4)
	c := cache.MustNew(cache.Config{SizeBytes: 8 * 4 * cache.BlockSize, Ways: 4}, p)
	pc := mem.PC("hot")
	for rep := 0; rep < 200; rep++ {
		for i := uint64(0); i < 2; i++ {
			// Blocks mapping to set 0 (the sampled set): block = i*8.
			c.Access(mem.Access{Addr: blockAddr(i * 8), PC: pc})
		}
	}
	snap := p.PredictorSnapshot()
	if ctr := snap[pc]; ctr < 4 {
		t.Fatalf("reused PC counter = %d, want friendly (>=4)", ctr)
	}
	if c.Stats.Hits == 0 {
		t.Fatal("no hits for a trivially cacheable pattern")
	}
}

func TestHawkeyeDemotesAverseHits(t *testing.T) {
	// The pathology from Sec. V-A: once a PC is predicted averse, even a
	// hit demotes the block to distant RRPV.
	p := NewHawkeye(1, 4)
	pc := mem.PC("averse")
	p.pred[pc] = 0 // force cache-averse
	c := llcWith(t, 4, p)
	c.Access(mem.Access{Addr: blockAddr(0), PC: pc})
	c.Access(mem.Access{Addr: blockAddr(0), PC: pc}) // hit
	if p.meta.Get(0, 0) != RRPVMax {
		t.Fatalf("averse hit left RRPV %d, want %d", p.meta.Get(0, 0), RRPVMax)
	}
}

func TestLeewayConservativeGrowShrink(t *testing.T) {
	// White-box check of the conservative ("grow fast, shrink slow")
	// table-update policy. Set 0 is a conservative leader.
	p := NewLeeway(1, 4)
	pc := mem.PC("x")
	evictWith := func(observed uint8) {
		p.pc[0] = pc
		p.maxHitPos[0] = observed
		p.OnEvict(0, 0)
	}
	evictWith(2) // first observation seeds the entry
	if ld := p.TableSnapshot()[pc]; ld != 2 {
		t.Fatalf("seed ld = %d, want 2", ld)
	}
	// Dead evictions below the hysteresis threshold keep ld at 2.
	for i := 0; i < ldHysteresis-1; i++ {
		evictWith(noHit) // noHit -> observed live distance 0
	}
	if ld := p.TableSnapshot()[pc]; ld != 2 {
		t.Fatalf("ld after %d dead evictions = %d, want 2 (shrink-slow)", ldHysteresis-1, ld)
	}
	// Crossing the hysteresis decays ld by one.
	evictWith(noHit)
	if ld := p.TableSnapshot()[pc]; ld != 1 {
		t.Fatalf("ld after hysteresis crossed = %d, want 1", ld)
	}
	// A deeper observation grows immediately.
	evictWith(3)
	if ld := p.TableSnapshot()[pc]; ld != 3 {
		t.Fatalf("ld after deep hit = %d, want 3 (grow-fast)", ld)
	}
}

func TestLeewayVictimPrefersDead(t *testing.T) {
	p := NewLeeway(1, 4)
	c := llcWith(t, 4, p)
	pcDead := mem.PC("dead")
	pcLive := mem.PC("live")
	// Pre-train: dead PC has LD 0.
	p.table[pcDead] = &ldEntry{ld: 0}
	p.table[pcLive] = &ldEntry{ld: 3}
	c.Access(mem.Access{Addr: blockAddr(0), PC: pcLive})
	c.Access(mem.Access{Addr: blockAddr(1), PC: pcDead})
	c.Access(mem.Access{Addr: blockAddr(2), PC: pcLive})
	c.Access(mem.Access{Addr: blockAddr(3), PC: pcLive})
	// Block 1 (dead, stack position 2 > LD 0) should be victimized even
	// though block 0 is the LRU.
	c.Access(mem.Access{Addr: blockAddr(4), PC: pcLive})
	if c.Contains(blockAddr(1)) {
		t.Fatal("predicted-dead block survived; LRU block likely evicted instead")
	}
	if !c.Contains(blockAddr(0)) {
		t.Fatal("live LRU block evicted despite a dead candidate")
	}
}

func TestXMemPinsHighReuse(t *testing.T) {
	p := NewXMem(1, 4, 50) // quota = 2 ways
	c := llcWith(t, 4, p)
	if p.Quota() != 2 {
		t.Fatalf("quota = %d, want 2", p.Quota())
	}
	// Two High-Reuse fills pin.
	c.Access(mem.Access{Addr: blockAddr(100), Hint: mem.HintHigh})
	c.Access(mem.Access{Addr: blockAddr(101), Hint: mem.HintHigh})
	if p.PinnedCount() != 2 {
		t.Fatalf("pinned = %d, want 2", p.PinnedCount())
	}
	// Third High-Reuse fill exceeds quota: not pinned.
	c.Access(mem.Access{Addr: blockAddr(102), Hint: mem.HintHigh})
	if p.PinnedCount() != 2 {
		t.Fatalf("pinned = %d after quota, want 2", p.PinnedCount())
	}
	// Thrash with Low-Reuse blocks: pinned blocks must survive.
	for i := uint64(0); i < 50; i++ {
		c.Access(mem.Access{Addr: blockAddr(i), Hint: mem.HintLow})
	}
	if !c.Contains(blockAddr(100)) || !c.Contains(blockAddr(101)) {
		t.Fatal("pinned block evicted")
	}
}

func TestXMemPin100Bypass(t *testing.T) {
	p := NewXMem(1, 4, 100)
	c := llcWith(t, 4, p)
	for i := uint64(0); i < 4; i++ {
		c.Access(mem.Access{Addr: blockAddr(100 + i), Hint: mem.HintHigh})
	}
	if p.PinnedCount() != 4 {
		t.Fatalf("pinned = %d, want 4", p.PinnedCount())
	}
	// Set is fully pinned: further misses bypass.
	c.Access(mem.Access{Addr: blockAddr(7), Hint: mem.HintLow})
	if c.Stats.Bypasses != 1 {
		t.Fatalf("bypasses = %d, want 1", c.Stats.Bypasses)
	}
	for i := uint64(0); i < 4; i++ {
		if !c.Contains(blockAddr(100 + i)) {
			t.Fatal("pinned block lost")
		}
	}
}

func TestXMemZeroQuotaActsAsRRIP(t *testing.T) {
	p := NewXMem(1, 4, 0)
	c := llcWith(t, 4, p)
	c.Access(mem.Access{Addr: blockAddr(1), Hint: mem.HintHigh})
	if p.PinnedCount() != 0 {
		t.Fatal("PIN-0 pinned a block")
	}
	if !c.Contains(blockAddr(1)) {
		t.Fatal("block not cached")
	}
}

func TestOPTSimpleSequence(t *testing.T) {
	// Classic example: with 2 ways and trace a b c a b, OPT evicts c (or
	// bypasses it) and hits both re-references.
	trace := []uint64{1, 2, 3, 1, 2}
	res := SimulateOPT(trace, 1, 2)
	if res.Hits != 2 || res.Misses != 3 {
		t.Fatalf("OPT: %d hits %d misses, want 2/3", res.Hits, res.Misses)
	}
}

func TestOPTNeverWorseThanLRU(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := newTestRNG(seed)
		length := int(n%2000) + 50
		trace := make([]uint64, length)
		accesses := make([]mem.Access, length)
		for i := range trace {
			b := r.next() % 48
			trace[i] = b
			accesses[i] = mem.Access{Addr: b << cache.BlockBits}
		}
		const sets, ways = 4, 4
		c := cache.MustNew(cache.Config{SizeBytes: sets * ways * cache.BlockSize, Ways: ways},
			cache.NewLRU(sets, ways))
		for _, a := range accesses {
			c.Access(a)
		}
		opt := SimulateOPT(trace, sets, ways)
		return opt.Misses <= c.Stats.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOPTNeverWorseThanRRIP(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := newTestRNG(seed)
		length := int(n%2000) + 50
		trace := make([]uint64, length)
		for i := range trace {
			trace[i] = r.next() % 64
		}
		const sets, ways = 4, 4
		c := cache.MustNew(cache.Config{SizeBytes: sets * ways * cache.BlockSize, Ways: ways},
			NewDRRIP(sets, ways))
		for _, b := range trace {
			c.Access(mem.Access{Addr: b << cache.BlockBits})
		}
		opt := SimulateOPT(trace, sets, ways)
		return opt.Misses <= c.Stats.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOPTMatchesBruteForceTinyCase(t *testing.T) {
	// Exhaustive check on a tiny trace: OPT's miss count must equal the
	// minimum achievable by any eviction sequence (found by brute force
	// over all eviction choices, with bypass allowed).
	trace := []uint64{1, 2, 3, 1, 4, 2, 1, 3, 2, 4, 1}
	const ways = 2
	var brute func(cached []uint64, i int) uint64
	brute = func(cached []uint64, i int) uint64 {
		if i == len(trace) {
			return 0
		}
		b := trace[i]
		for _, x := range cached {
			if x == b {
				return brute(cached, i+1)
			}
		}
		// Miss: try all placements (including bypass).
		best := uint64(1) + brute(cached, i+1) // bypass
		if len(cached) < ways {
			next := append(append([]uint64{}, cached...), b)
			if v := 1 + brute(next, i+1); v < best {
				best = v
			}
		} else {
			for k := range cached {
				next := append([]uint64{}, cached...)
				next[k] = b
				if v := 1 + brute(next, i+1); v < best {
					best = v
				}
			}
		}
		return best
	}
	want := brute(nil, 0)
	got := SimulateOPT(trace, 1, ways)
	if got.Misses != want {
		t.Fatalf("OPT misses = %d, brute force optimum = %d", got.Misses, want)
	}
}

func TestOPTBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	SimulateOPT([]uint64{1}, 3, 2)
}

func TestPolicyRegistry(t *testing.T) {
	names := []string{"LRU", "SRRIP", "BRRIP", "RRIP", "DIP", "SHiP-MEM",
		"Hawkeye", "Leeway", "PIN-25", "PIN-50", "PIN-75", "PIN-100"}
	for _, n := range names {
		ctor, err := ByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		p := ctor.New(16, 4)
		if p.Name() != n {
			t.Fatalf("constructor %s built policy named %s", n, p.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

// All policies must behave sanely (no panics, miss count bounded by trace
// length, hits+misses+bypasses consistent) on arbitrary traces.
func TestAllPoliciesFuzz(t *testing.T) {
	for _, ctor := range All() {
		ctor := ctor
		t.Run(ctor.Name, func(t *testing.T) {
			f := func(seed uint64, n uint16) bool {
				r := newTestRNG(seed)
				const sets, ways = 8, 4
				c := cache.MustNew(cache.Config{SizeBytes: sets * ways * cache.BlockSize, Ways: ways},
					ctor.New(sets, ways))
				length := int(n%1500) + 10
				for i := 0; i < length; i++ {
					c.Access(mem.Access{
						Addr:  (r.next() % 256) << cache.BlockBits,
						PC:    uint32(r.next() % 4),
						Hint:  mem.Hint(r.next() % 4),
						Write: r.next()%2 == 0,
					})
				}
				return c.Stats.Accesses() == uint64(length)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Tiny deterministic RNG for tests.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed*2654435761 + 1} }
func (r *testRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}
