package policy

import (
	"testing"
	"testing/quick"

	"grasp/internal/cache"
	"grasp/internal/mem"
)

func TestPLRURequiresPow2Ways(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two ways")
		}
	}()
	NewPLRU(4, 3)
}

func TestPLRUVictimNeverMostRecent(t *testing.T) {
	// The just-touched way must never be the next victim.
	p := NewPLRU(1, 8)
	for w := uint32(0); w < 8; w++ {
		p.OnFill(0, w, mem.Access{})
		if v := p.VictimPath(0); v == w {
			t.Fatalf("victim %d equals most recently filled way", v)
		}
	}
	for rep := 0; rep < 100; rep++ {
		w := uint32(rep*5) % 8
		p.OnHit(0, w, mem.Access{})
		if v := p.VictimPath(0); v == w {
			t.Fatalf("victim %d equals most recently hit way", v)
		}
	}
}

func TestPLRUCyclesThroughAllWays(t *testing.T) {
	// Repeatedly evicting and refilling must rotate through every way
	// rather than starving any of them.
	p := NewPLRU(1, 4)
	seen := make(map[uint32]bool)
	for i := 0; i < 16; i++ {
		v, bypass := p.Victim(0, mem.Access{})
		if bypass {
			t.Fatal("PLRU must not bypass")
		}
		seen[v] = true
		p.OnFill(0, v, mem.Access{})
	}
	if len(seen) != 4 {
		t.Fatalf("victims covered %d/4 ways", len(seen))
	}
}

func TestPLRUHitRateTracksLRUOnLoops(t *testing.T) {
	// PLRU approximates LRU: on a looping working set that fits, both get
	// 100% hits after warm-up; on 2x capacity both thrash similarly.
	fit := cache.MustNew(cache.Config{SizeBytes: 8 * cache.BlockSize, Ways: 8}, NewPLRU(1, 8))
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < 8; i++ {
			fit.Access(mem.Access{Addr: i << cache.BlockBits})
		}
	}
	if fit.Stats.Hits != 8*9 {
		t.Fatalf("PLRU hits on fitting loop = %d, want 72", fit.Stats.Hits)
	}
}

func TestSHiPPCLearnsPerPC(t *testing.T) {
	p := NewSHiPPC(1, 4)
	c := cache.MustNew(cache.Config{SizeBytes: 4 * cache.BlockSize, Ways: 4}, p)
	pcDead := mem.PC("stream")
	pcLive := mem.PC("reuse")
	for rep := 0; rep < 30; rep++ {
		for i := uint64(0); i < 8; i++ {
			c.Access(mem.Access{Addr: (100 + i + uint64(rep)*8) << cache.BlockBits, PC: pcDead})
		}
		c.Access(mem.Access{Addr: 1 << cache.BlockBits, PC: pcLive})
		c.Access(mem.Access{Addr: 1 << cache.BlockBits, PC: pcLive})
	}
	sh := p.SHCTSnapshot()
	if sh[pcDead] != 0 {
		t.Fatalf("streaming PC counter = %d, want 0", sh[pcDead])
	}
	if sh[pcLive] < 2 {
		t.Fatalf("reusing PC counter = %d, want >= 2", sh[pcLive])
	}
}

func TestSHiPPCCannotSeparateSharedPC(t *testing.T) {
	// The paper's core argument (Sec. II-F): hot and cold blocks accessed
	// by the SAME PC get the same prediction. Verify the table has exactly
	// one entry after a mixed hot/cold stream through one PC.
	p := NewSHiPPC(4, 4)
	c := cache.MustNew(cache.Config{SizeBytes: 16 * cache.BlockSize, Ways: 4}, p)
	pc := mem.PC("property.load")
	r := newTestRNG(9)
	for i := 0; i < 5000; i++ {
		var block uint64
		if r.next()%2 == 0 {
			block = r.next() % 4 // hot
		} else {
			block = 100 + r.next()%10000 // cold
		}
		c.Access(mem.Access{Addr: block << cache.BlockBits, PC: pc})
	}
	if n := len(p.SHCTSnapshot()); n != 1 {
		t.Fatalf("SHCT has %d entries for a single-PC stream, want 1", n)
	}
}

func TestPLRUFuzz(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := newTestRNG(seed)
		c := cache.MustNew(cache.Config{SizeBytes: 8 * 8 * cache.BlockSize, Ways: 8}, NewPLRU(8, 8))
		for i := 0; i < int(n%2000)+10; i++ {
			c.Access(mem.Access{Addr: (r.next() % 512) << cache.BlockBits})
		}
		return c.Stats.Accesses() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
