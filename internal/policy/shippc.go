package policy

import (
	"grasp/internal/cache"
	"grasp/internal/mem"
)

// SHiPPC is the original PC-signature variant of SHiP [Wu et al.,
// MICRO'11]. The paper evaluates the memory-region variant instead
// precisely because PC correlation is useless for graph analytics
// (Sec. II-F: one PC accesses hot and cold vertices alike); this
// implementation exists to demonstrate that claim quantitatively — see the
// "ablation" experiment and its test, where SHiP-PC fails to separate the
// Property Array's hot and cold blocks.
type SHiPPC struct {
	meta   *RRIPMeta
	shct   map[uint32]uint8
	sig    []uint32
	reused []bool
	ways   uint32
}

// NewSHiPPC creates a SHiP-PC policy.
func NewSHiPPC(sets, ways uint32) *SHiPPC {
	return &SHiPPC{
		meta:   NewRRIPMeta(sets, ways),
		shct:   make(map[uint32]uint8),
		sig:    make([]uint32, sets*ways),
		reused: make([]bool, sets*ways),
		ways:   ways,
	}
}

var _ cache.Policy = (*SHiPPC)(nil)

// Name implements cache.Policy.
func (p *SHiPPC) Name() string { return "SHiP-PC" }

// OnHit implements cache.Policy.
func (p *SHiPPC) OnHit(set, way uint32, _ mem.Access) {
	p.meta.Set(set, way, RRPVNear)
	i := set*p.ways + way
	if !p.reused[i] {
		p.reused[i] = true
		if c := p.shct[p.sig[i]]; c < shctMax {
			p.shct[p.sig[i]] = c + 1
		}
	}
}

// OnFill implements cache.Policy.
func (p *SHiPPC) OnFill(set, way uint32, a mem.Access) {
	i := set*p.ways + way
	p.sig[i] = a.PC
	p.reused[i] = false
	c, ok := p.shct[a.PC]
	if !ok {
		c = shctInit
		p.shct[a.PC] = c
	}
	if c == 0 {
		p.meta.Set(set, way, RRPVMax)
	} else {
		p.meta.Set(set, way, RRPVLong)
	}
}

// Victim implements cache.Policy.
func (p *SHiPPC) Victim(set uint32, _ mem.Access) (uint32, bool) {
	return p.meta.Victim(set), false
}

// OnEvict implements cache.Policy.
func (p *SHiPPC) OnEvict(set, way uint32) {
	i := set*p.ways + way
	if !p.reused[i] {
		if c := p.shct[p.sig[i]]; c > 0 {
			p.shct[p.sig[i]] = c - 1
		}
	}
}

// SHCTSnapshot returns a copy of the signature table (tests/inspection).
func (p *SHiPPC) SHCTSnapshot() map[uint32]uint8 {
	out := make(map[uint32]uint8, len(p.shct))
	for k, v := range p.shct {
		out[k] = v
	}
	return out
}
