package policy

import (
	"fmt"

	"grasp/internal/cache"
	"grasp/internal/mem"
)

// XMem [Vijaykumar et al., ISCA'18] adapted to graph analytics as in
// Sec. IV-C of the paper: the PIN-X configurations reserve X% of LLC
// capacity (X% of the ways in every set) for pinning cache blocks from the
// High Reuse Region, identified through the GRASP interface (High-Reuse
// hints). Pinned blocks can never be evicted; the remaining ways are
// managed by the base RRIP scheme. When every way of a set is pinned,
// further misses bypass the cache.
//
// This is the rigid scheme GRASP is contrasted against: on low-skew
// datasets pinned blocks squat on capacity without earning hits, and even
// on high-skew inputs pinning sacrifices the Moderate Reuse Region's
// temporal locality (Sec. V-B).
type XMem struct {
	meta    *RRIPMeta
	pinned  []bool
	pinCnt  []uint32 // pinned ways per set
	quota   uint32   // max pinned ways per set
	ways    uint32
	percent int
}

// NewXMem creates a PIN-X policy pinning up to percent% of each set.
func NewXMem(sets, ways uint32, percent int) *XMem {
	if percent < 0 || percent > 100 {
		panic(fmt.Sprintf("policy: invalid pin percentage %d", percent))
	}
	return &XMem{
		meta:    NewRRIPMeta(sets, ways),
		pinned:  make([]bool, sets*ways),
		pinCnt:  make([]uint32, sets),
		quota:   uint32(uint64(ways) * uint64(percent) / 100),
		ways:    ways,
		percent: percent,
	}
}

var _ cache.Policy = (*XMem)(nil)

// Name implements cache.Policy.
func (p *XMem) Name() string { return fmt.Sprintf("PIN-%d", p.percent) }

// Quota returns the per-set pinned-way limit.
func (p *XMem) Quota() uint32 { return p.quota }

// OnHit implements cache.Policy: pinned blocks stay pinned; unpinned blocks
// get the base RRIP promotion.
func (p *XMem) OnHit(set, way uint32, _ mem.Access) {
	p.meta.Set(set, way, RRPVNear)
}

// OnFill implements cache.Policy: a High-Reuse fill claims a pin slot if
// the set's quota allows; everything else is a base-scheme insertion.
func (p *XMem) OnFill(set, way uint32, a mem.Access) {
	i := set*p.ways + way
	if p.pinned[i] {
		// The way was freed by Victim only if unpinned; a pinned way can
		// only be refilled after OnEvict cleared it.
		panic("policy: XMem fill into pinned way")
	}
	if a.Hint == mem.HintHigh && p.pinCnt[set] < p.quota {
		p.pinned[i] = true
		p.pinCnt[set]++
		p.meta.Set(set, way, RRPVNear)
		return
	}
	p.meta.Set(set, way, RRPVLong)
}

// Victim implements cache.Policy: base RRIP victim search restricted to
// unpinned ways; if the whole set is pinned the access bypasses.
func (p *XMem) Victim(set uint32, _ mem.Access) (uint32, bool) {
	if p.pinCnt[set] >= p.ways {
		return 0, true
	}
	base := set * p.ways
	for {
		for w := uint32(0); w < p.ways; w++ {
			if !p.pinned[base+w] && p.meta.Get(set, w) == RRPVMax {
				return w, false
			}
		}
		for w := uint32(0); w < p.ways; w++ {
			if !p.pinned[base+w] {
				if v := p.meta.Get(set, w); v < RRPVMax {
					p.meta.Set(set, w, v+1)
				}
			}
		}
	}
}

// OnEvict implements cache.Policy.
func (p *XMem) OnEvict(set, way uint32) {
	i := set*p.ways + way
	if p.pinned[i] {
		// Defensive: Victim never selects pinned ways.
		p.pinned[i] = false
		p.pinCnt[set]--
	}
}

// PinnedCount returns the total number of pinned blocks (tests).
func (p *XMem) PinnedCount() uint64 {
	var n uint64
	for _, c := range p.pinCnt {
		n += uint64(c)
	}
	return n
}
