package policy

import "grasp/internal/mem"

// DIP is Dynamic Insertion Policy [Qureshi et al., ISCA'07]: set dueling
// between traditional LRU insertion and Bimodal Insertion (BIP — insert at
// LRU position except 1/32 of the time). Included because the paper lists
// DIP among the base schemes GRASP can augment.
type DIP struct {
	stamps  []uint64
	sets    uint32
	ways    uint32
	clock   uint64
	psel    int32
	counter uint64
}

// NewDIP creates a DIP policy.
func NewDIP(sets, ways uint32) *DIP {
	return &DIP{stamps: make([]uint64, sets*ways), sets: sets, ways: ways}
}

// Name implements cache.Policy.
func (p *DIP) Name() string { return "DIP" }

// OnHit implements cache.Policy: promote to MRU.
func (p *DIP) OnHit(set, way uint32, _ mem.Access) {
	p.clock++
	p.stamps[set*p.ways+way] = p.clock
}

func (p *DIP) leader(set uint32) int {
	period := uint32(duelPeriod)
	if p.sets < period {
		period = p.sets
	}
	switch set % period {
	case 0:
		return +1 // LRU-insertion leader
	case period / 2:
		return -1 // BIP leader
	}
	return 0
}

// OnFill implements cache.Policy.
func (p *DIP) OnFill(set, way uint32, _ mem.Access) {
	useLRUIns := p.psel >= 0
	switch p.leader(set) {
	case +1:
		useLRUIns = true
		if p.psel > -pselMax {
			p.psel--
		}
	case -1:
		useLRUIns = false
		if p.psel < pselMax {
			p.psel++
		}
	}
	p.clock++
	if useLRUIns {
		p.stamps[set*p.ways+way] = p.clock // MRU insertion
		return
	}
	// BIP: insert at LRU except 1/32 of fills.
	p.counter++
	if p.counter%brripEpsilon == 0 {
		p.stamps[set*p.ways+way] = p.clock
	} else {
		p.stamps[set*p.ways+way] = 0 // LRU position
	}
}

// Victim implements cache.Policy: least recent stamp.
func (p *DIP) Victim(set uint32, _ mem.Access) (uint32, bool) {
	base := set * p.ways
	best := uint32(0)
	for w := uint32(1); w < p.ways; w++ {
		if p.stamps[base+w] < p.stamps[base+best] {
			best = w
		}
	}
	return best, false
}

// OnEvict implements cache.Policy.
func (p *DIP) OnEvict(uint32, uint32) {}
