package policy

import (
	"testing"

	"grasp/internal/cache"
	"grasp/internal/mem"
)

// Property tests over randomized traces, driven by a fixed seed table so
// failures name the seed that produced them and every run covers the same
// ground. Two classical replacement-theory invariants anchor the whole
// policy zoo:
//
//   - Belady optimality: OPT's miss count lower-bounds EVERY online policy
//     on every trace (OPT sees the future; they don't).
//   - LRU's inclusion (stack) property: an LRU cache of k ways holds a
//     superset of a k-1-way cache's content at every instant, so the hit
//     set at k-1 is contained in the hit set at k.

var propertySeeds = []uint64{1, 7, 42, 1337, 31337, 0xBEEF, 0xDEADBEEF, 0xFA1D0, 2026, 987654321}

// propertyTrace derives a trace of block numbers from a seed: a mix of a
// hot working set (frequent re-reference) and a cold streaming tail, the
// shape that separates replacement policies.
func propertyTrace(seed uint64) ([]uint64, []mem.Access) {
	r := newTestRNG(seed)
	length := 500 + int(r.next()%1500)
	blocks := make([]uint64, length)
	accs := make([]mem.Access, length)
	for i := range blocks {
		var b uint64
		if r.next()%2 == 0 {
			b = r.next() % 16 // hot set
		} else {
			b = 16 + r.next()%112 // cold tail
		}
		blocks[i] = b
		accs[i] = mem.Access{
			Addr:  b << cache.BlockBits,
			PC:    uint32(r.next() % 8),
			Write: r.next()%4 == 0,
		}
	}
	return blocks, accs
}

// TestBeladyOptimality asserts OPT's lower bound against every registered
// policy. Bypasses are counted with misses: either way the block came from
// memory.
func TestBeladyOptimality(t *testing.T) {
	const sets, ways = 4, 4
	for _, seed := range propertySeeds {
		blocks, accs := propertyTrace(seed)
		opt := SimulateOPT(blocks, sets, ways)
		if opt.Accesses() != uint64(len(blocks)) {
			t.Fatalf("seed %#x: OPT dropped accesses: %d != %d", seed, opt.Accesses(), len(blocks))
		}
		for _, ctor := range All() {
			c := cache.MustNew(cache.Config{SizeBytes: sets * ways * cache.BlockSize, Ways: ways},
				ctor.New(sets, ways))
			for _, a := range accs {
				c.Access(a)
			}
			if opt.Misses > c.Stats.Misses {
				t.Errorf("seed %#x: OPT misses (%d) exceed %s's (%d); Belady bound violated",
					seed, opt.Misses, ctor.Name, c.Stats.Misses)
			}
		}
	}
}

// lruHitVector replays the trace on an LRU cache with the given ways and
// records the per-access hit outcome.
func lruHitVector(accs []mem.Access, sets, ways uint32) []bool {
	c := cache.MustNew(cache.Config{SizeBytes: uint64(sets) * uint64(ways) * cache.BlockSize, Ways: ways},
		cache.NewLRU(sets, ways))
	hits := make([]bool, len(accs))
	for i, a := range accs {
		hits[i] = c.Access(a)
	}
	return hits
}

// TestLRUInclusionProperty asserts the stack property access by access:
// any hit in a k-1-way LRU cache must also hit in a k-way one (same set
// count, so the index mapping is identical).
func TestLRUInclusionProperty(t *testing.T) {
	const sets = 4
	for _, seed := range propertySeeds {
		_, accs := propertyTrace(seed)
		prev := lruHitVector(accs, sets, 1)
		for ways := uint32(2); ways <= 8; ways++ {
			cur := lruHitVector(accs, sets, ways)
			for i := range accs {
				if prev[i] && !cur[i] {
					t.Fatalf("seed %#x: access %d (block %#x) hits with %d ways but misses with %d; inclusion violated",
						seed, i, accs[i].Addr>>cache.BlockBits, ways-1, ways)
				}
			}
			prev = cur
		}
	}
}

// TestLRUInclusionImpliesMonotoneHits is the aggregate corollary worth
// asserting separately (it is what capacity planning relies on): LRU hit
// counts never decrease with associativity.
func TestLRUInclusionImpliesMonotoneHits(t *testing.T) {
	const sets = 8
	for _, seed := range propertySeeds {
		_, accs := propertyTrace(seed)
		var prevHits int
		for ways := uint32(1); ways <= 8; ways *= 2 {
			hits := 0
			for _, h := range lruHitVector(accs, sets, ways) {
				if h {
					hits++
				}
			}
			if hits < prevHits {
				t.Fatalf("seed %#x: hits fell from %d to %d when ways doubled to %d",
					seed, prevHits, hits, ways)
			}
			prevHits = hits
		}
	}
}
