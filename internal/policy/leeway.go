package policy

import (
	"grasp/internal/cache"
	"grasp/internal/mem"
)

// Leeway [Faldu & Grot, PACT'17] is a dead-block predictor built on the
// Live Distance metric: the deepest LRU-stack position at which a block
// receives a hit during its residency. A PC-indexed table predicts each
// block's live distance at fill time; a block whose stack position exceeds
// its predicted live distance is considered dead and becomes the preferred
// victim. Two table-update policies with different aggressiveness are
// selected by set dueling (Leeway's "reuse-aware" adaptive policies):
//
//   - NRU-friendly (conservative): grow predictions immediately to the
//     observed live distance, shrink only after repeated smaller
//     observations — conservative in declaring blocks dead.
//   - MRU-friendly (aggressive): shrink immediately, grow with hysteresis.
//
// The conservative variant keeps Leeway's behaviour close to the base
// replacement scheme under variable reuse — exactly the property the paper
// credits for Leeway avoiding large slowdowns on graph analytics.
type Leeway struct {
	// rank holds each block's recency-stack position (0 = MRU),
	// maintained incrementally: promoting a block to MRU shifts every
	// more-recent block down one. This replaces a timestamp array whose
	// rank queries cost an O(ways) scan each — Victim needed one per way,
	// making every miss O(ways²) in the simulator's hottest loop.
	// Untouched ways carry garbage ranks (never read: ranks are only
	// queried for resident blocks); touchedCnt seeds a first fill's
	// starting rank, since every already-resident block is by definition
	// more recent than a block that was never filled.
	rank       []uint8
	touched    []bool
	touchedCnt []uint8 // per set
	ways       uint32

	ld        []uint8 // predicted live distance per block
	maxHitPos []uint8 // deepest stack position hit so far (0xff = no hit)
	pc        []uint32

	table map[uint32]*ldEntry
	psel  int32

	// base provides the underlying thrash-resistant replacement scheme:
	// when no block is predicted dead, Leeway behaves exactly like its
	// base (the paper evaluates Leeway against an RRIP baseline and finds
	// it tracks the base closely; a plain-LRU fallback would instead
	// forfeit RRIP's thrash resistance entirely).
	base *DRRIP
}

type ldEntry struct {
	ld       uint8
	downVote uint8 // hysteresis for the conservative policy
	upVote   uint8 // hysteresis for the aggressive policy
}

const (
	noHit = 0xff
	// ldHysteresis controls how many successive smaller observations are
	// needed before a prediction shrinks under the conservative policy
	// (and grows under the aggressive one). A large value keeps Leeway's
	// behaviour close to the base scheme under variable reuse — the
	// property Sec. V-A credits for Leeway avoiding blowups on graphs.
	ldHysteresis = 8
	// leewayPselInit biases the duel toward the conservative policy until
	// there is sustained evidence the aggressive one is safe.
	leewayPselInit = 256
)

// NewLeeway creates a Leeway policy.
func NewLeeway(sets, ways uint32) *Leeway {
	n := sets * ways
	l := &Leeway{
		rank:       make([]uint8, n),
		touched:    make([]bool, n),
		touchedCnt: make([]uint8, sets),
		ways:       ways,
		ld:         make([]uint8, n),
		maxHitPos:  make([]uint8, n),
		pc:         make([]uint32, n),
		table:      make(map[uint32]*ldEntry),
		psel:       leewayPselInit,
		base:       NewDRRIP(sets, ways),
	}
	for i := range l.maxHitPos {
		l.maxHitPos[i] = noHit
	}
	return l
}

var _ cache.Policy = (*Leeway)(nil)

// Name implements cache.Policy.
func (p *Leeway) Name() string { return "Leeway" }

// stackPos returns the recency rank of a resident block (0 = MRU).
func (p *Leeway) stackPos(set, way uint32) uint8 {
	return p.rank[set*p.ways+way]
}

// promote moves way to MRU: blocks above its old position shift down one.
// A first-time fill starts below every already-resident block.
func (p *Leeway) promote(set, way uint32) {
	base := set * p.ways
	i := base + way
	var old uint8
	if p.touched[i] {
		old = p.rank[i]
	} else {
		p.touched[i] = true
		old = p.touchedCnt[set]
		p.touchedCnt[set]++
	}
	r := p.rank[base : base+p.ways : base+p.ways]
	for w := range r {
		if r[w] < old {
			r[w]++
		}
	}
	r[way] = 0
}

// OnHit implements cache.Policy: record the live distance sample, promote,
// and grow the predictor immediately when a hit lands deeper than the
// current prediction. Training on hits (not only evictions) prevents the
// self-fulfilling spiral where a PC seeded with a small live distance has
// its blocks evicted before they can demonstrate deeper reuse.
func (p *Leeway) OnHit(set, way uint32, _ mem.Access) {
	i := set*p.ways + way
	pos := p.stackPos(set, way) // position at hit time, before promotion
	if p.maxHitPos[i] == noHit || pos > p.maxHitPos[i] {
		p.maxHitPos[i] = pos
	}
	if e, ok := p.table[p.pc[i]]; ok && pos > e.ld {
		e.ld = pos
		e.downVote = 0
	}
	// The block itself is no longer dead at its new position.
	if pos > p.ld[i] {
		p.ld[i] = pos
	}
	p.promote(set, way)
	p.base.OnHit(set, way, mem.Access{})
}

// OnFill implements cache.Policy: look up the predicted live distance.
func (p *Leeway) OnFill(set, way uint32, a mem.Access) {
	i := set*p.ways + way
	p.promote(set, way)
	p.maxHitPos[i] = noHit
	p.pc[i] = a.PC
	if e, ok := p.table[a.PC]; ok {
		p.ld[i] = e.ld
	} else {
		p.ld[i] = uint8(p.ways - 1) // unknown PC: maximally conservative
	}
	p.base.OnFill(set, way, a)
}

func (p *Leeway) leader(set uint32) int {
	switch set % duelPeriod {
	case 0:
		return +1 // conservative leader
	case duelPeriod / 2:
		return -1 // aggressive leader
	}
	return 0
}

// Victim implements cache.Policy: prefer the dead block deepest in the
// stack; if no block is predicted dead, fall back to the base scheme.
// Victim is only invoked on full sets, so every way's rank is live.
func (p *Leeway) Victim(set uint32, a mem.Access) (uint32, bool) {
	base := set * p.ways
	ranks := p.rank[base : base+p.ways : base+p.ways]
	bestDead, bestDeadPos := int32(-1), uint8(0)
	for w, pos := range ranks {
		if pos > p.ld[base+uint32(w)] && pos >= bestDeadPos {
			// Dead: deeper than its live distance.
			bestDead, bestDeadPos = int32(w), pos
		}
	}
	if bestDead >= 0 {
		return uint32(bestDead), false
	}
	return p.base.Victim(set, a)
}

// OnEvict implements cache.Policy: train the live-distance table with the
// observed live distance of the evicted block.
func (p *Leeway) OnEvict(set, way uint32) {
	i := set*p.ways + way
	observed := uint8(0)
	if p.maxHitPos[i] != noHit {
		observed = p.maxHitPos[i]
	}
	pcv := p.pc[i]
	e, ok := p.table[pcv]
	if !ok {
		// First observation for this PC seeds the predictor directly.
		p.table[pcv] = &ldEntry{ld: observed}
		p.maxHitPos[i] = noHit
		return
	}
	conservative := p.psel >= 0
	switch p.leader(set) {
	case +1:
		conservative = true
		// A miss-driven eviction in a conservative leader that kept a dead
		// block too long votes for the aggressive policy.
		if observed == 0 && e.ld > 0 && p.psel > -pselMax {
			p.psel--
		}
	case -1:
		conservative = false
		if observed > e.ld && p.psel < pselMax {
			p.psel++
		}
	}
	if conservative {
		// Grow fast, shrink with hysteresis.
		if observed >= e.ld {
			e.ld = observed
			e.downVote = 0
		} else {
			e.downVote++
			if e.downVote >= ldHysteresis {
				e.ld--
				e.downVote = 0
			}
		}
	} else {
		// Shrink fast, grow with hysteresis.
		if observed <= e.ld {
			e.ld = observed
			e.upVote = 0
		} else {
			e.upVote++
			if e.upVote >= ldHysteresis {
				e.ld++
				e.upVote = 0
			}
		}
	}
	// Reset per-block state; the way is about to be refilled.
	p.maxHitPos[i] = noHit
}

// TableSnapshot returns the predicted live distance per PC (tests).
func (p *Leeway) TableSnapshot() map[uint32]uint8 {
	out := make(map[uint32]uint8, len(p.table))
	for k, v := range p.table {
		out[k] = v.ld
	}
	return out
}
