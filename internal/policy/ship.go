package policy

import (
	"grasp/internal/cache"
	"grasp/internal/mem"
)

// SHiPMem is the Signature-based Hit Predictor [Wu et al., MICRO'11] in its
// memory-region variant (SHiP-MEM), as evaluated by the paper: because
// PC-based correlation is useless for graph analytics (one PC touches hot
// and cold vertices alike), the signature is the 16KB memory region of the
// block. A Signature History Counter Table (SHCT) of 3-bit saturating
// counters tracks whether blocks from a region tend to be re-referenced;
// per the paper's methodology the table has an unlimited number of entries
// (a map) to assess the scheme's maximum potential.
//
// Insertion: signature predicted zero-reuse -> distant (RRPV max);
// otherwise long (max-1). Hits promote to RRPV 0 and train the SHCT up;
// evictions of never-reused blocks train it down.
type SHiPMem struct {
	meta *RRIPMeta
	shct map[uint64]uint8 // region signature -> 3-bit counter
	// Per-block bookkeeping (this is the kind of embedded metadata GRASP
	// avoids, Sec. III-D): the inserting signature and a reused bit.
	sig    []uint64
	reused []bool
	ways   uint32
}

const (
	shipRegionBits = 14 // 16KB regions, as in the original proposal
	shctMax        = 7  // 3-bit saturating counter
	shctInit       = 1  // weakly reused
)

// NewSHiPMem creates a SHiP-MEM policy.
func NewSHiPMem(sets, ways uint32) *SHiPMem {
	return &SHiPMem{
		meta:   NewRRIPMeta(sets, ways),
		shct:   make(map[uint64]uint8),
		sig:    make([]uint64, sets*ways),
		reused: make([]bool, sets*ways),
		ways:   ways,
	}
}

var _ cache.Policy = (*SHiPMem)(nil)

// Name implements cache.Policy.
func (p *SHiPMem) Name() string { return "SHiP-MEM" }

func signature(addr uint64) uint64 { return addr >> shipRegionBits }

// OnHit implements cache.Policy: promote, mark reused, train up.
func (p *SHiPMem) OnHit(set, way uint32, _ mem.Access) {
	p.meta.Set(set, way, RRPVNear)
	i := set*p.ways + way
	if !p.reused[i] {
		p.reused[i] = true
		if c := p.shct[p.sig[i]]; c < shctMax {
			p.shct[p.sig[i]] = c + 1
		}
	}
}

// OnFill implements cache.Policy: insert by SHCT prediction.
func (p *SHiPMem) OnFill(set, way uint32, a mem.Access) {
	s := signature(a.Addr)
	i := set*p.ways + way
	p.sig[i] = s
	p.reused[i] = false
	c, ok := p.shct[s]
	if !ok {
		c = shctInit
		p.shct[s] = c
	}
	if c == 0 {
		p.meta.Set(set, way, RRPVMax) // predicted no reuse: distant
	} else {
		p.meta.Set(set, way, RRPVLong)
	}
}

// Victim implements cache.Policy.
func (p *SHiPMem) Victim(set uint32, _ mem.Access) (uint32, bool) {
	return p.meta.Victim(set), false
}

// OnEvict implements cache.Policy: a block evicted without reuse trains its
// signature down.
func (p *SHiPMem) OnEvict(set, way uint32) {
	i := set*p.ways + way
	if !p.reused[i] {
		if c := p.shct[p.sig[i]]; c > 0 {
			p.shct[p.sig[i]] = c - 1
		}
	}
}

// SHCTSnapshot returns a copy of the signature table (tests/inspection).
func (p *SHiPMem) SHCTSnapshot() map[uint64]uint8 {
	out := make(map[uint64]uint8, len(p.shct))
	for k, v := range p.shct {
		out[k] = v
	}
	return out
}
