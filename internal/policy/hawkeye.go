package policy

import (
	"grasp/internal/cache"
	"grasp/internal/mem"
)

// Hawkeye [Jain & Lin, ISCA'16] learns from Belady's optimal algorithm:
// a sampler replays recent accesses to a subset of sets through OPTgen to
// decide whether OPT *would have* cached each block, and trains a PC-indexed
// predictor accordingly. Predicted cache-friendly blocks insert at RRPV 0
// and age gradually; predicted cache-averse blocks insert at distant RRPV
// and — crucially for the paper's analysis — are demoted rather than
// promoted when they hit, which is why Hawkeye underperforms on graph
// analytics: hot and cold vertices share the PC, the predictor settles on
// cache-averse, and hits to hot vertices get thrown away (Sec. V-A).
type Hawkeye struct {
	meta *RRIPMeta
	ways uint32

	// Per-block state (the storage-intensive metadata GRASP avoids).
	insertPC []uint32
	friendly []bool

	// PC predictor: 3-bit saturating counters.
	pred map[uint32]uint8

	// OPTgen sampler state for sampled sets.
	samplers map[uint32]*optgenSet
}

const (
	hawkeyeSampleEvery = 8   // sample every 8th set
	optgenWindow       = 128 // time quanta tracked per sampled set
	hawkeyePredMax     = 7
	hawkeyePredInit    = 4 // weakly cache-friendly
)

type optgenSet struct {
	clock     uint64
	occupancy [optgenWindow]uint8
	last      map[uint64]optgenEntry // block -> last access
	capacity  uint8
}

type optgenEntry struct {
	t  uint64
	pc uint32
}

// NewHawkeye creates a Hawkeye policy.
func NewHawkeye(sets, ways uint32) *Hawkeye {
	return &Hawkeye{
		meta:     NewRRIPMeta(sets, ways),
		ways:     ways,
		insertPC: make([]uint32, sets*ways),
		friendly: make([]bool, sets*ways),
		pred:     make(map[uint32]uint8),
		samplers: make(map[uint32]*optgenSet),
	}
}

var _ cache.Policy = (*Hawkeye)(nil)
var _ cache.AccessObserver = (*Hawkeye)(nil)

// Name implements cache.Policy.
func (p *Hawkeye) Name() string { return "Hawkeye" }

func (p *Hawkeye) predictFriendly(pc uint32) bool {
	c, ok := p.pred[pc]
	if !ok {
		return hawkeyePredInit >= 4
	}
	return c >= 4
}

func (p *Hawkeye) train(pc uint32, up bool) {
	c, ok := p.pred[pc]
	if !ok {
		c = hawkeyePredInit
	}
	if up {
		if c < hawkeyePredMax {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.pred[pc] = c
}

// ObserveAccess implements cache.AccessObserver: feed the OPTgen sampler.
// The set index is derived exactly as the cache derives it; only sampled
// sets carry sampler state.
func (p *Hawkeye) ObserveAccess(a mem.Access) {
	block := cache.BlockAddr(a.Addr)
	nsets := uint32(len(p.meta.rrpv)) / p.ways
	set := uint32(block & uint64(nsets-1))
	if set%hawkeyeSampleEvery != 0 {
		return
	}
	s, ok := p.samplers[set]
	if !ok {
		s = &optgenSet{last: make(map[uint64]optgenEntry), capacity: uint8(p.ways)}
		p.samplers[set] = s
	}
	now := s.clock
	s.occupancy[now%optgenWindow] = 0
	if e, seen := s.last[block]; seen {
		age := now - e.t
		if age > 0 && age < optgenWindow {
			// Would OPT have kept the block across [e.t, now)?
			fits := true
			for t := e.t; t < now; t++ {
				if s.occupancy[t%optgenWindow] >= s.capacity {
					fits = false
					break
				}
			}
			if fits {
				for t := e.t; t < now; t++ {
					s.occupancy[t%optgenWindow]++
				}
			}
			p.train(e.pc, fits)
		} else if age >= optgenWindow {
			// Interval longer than the sampler window: OPT would not
			// have kept it within observable history.
			p.train(e.pc, false)
		}
	}
	s.last[block] = optgenEntry{t: now, pc: a.PC}
	s.clock++
	// Bound the history map: drop entries older than the window.
	if len(s.last) > 4*optgenWindow {
		for b, e := range s.last {
			if now-e.t >= optgenWindow {
				delete(s.last, b)
			}
		}
	}
}

// OnHit implements cache.Policy.
func (p *Hawkeye) OnHit(set, way uint32, a mem.Access) {
	i := set*p.ways + way
	if p.predictFriendly(a.PC) {
		p.meta.Set(set, way, RRPVNear)
		p.friendly[i] = true
	} else {
		// Cache-averse prediction: prioritize for eviction even on a hit.
		p.meta.Set(set, way, RRPVMax)
		p.friendly[i] = false
	}
	p.insertPC[i] = a.PC
}

// OnFill implements cache.Policy.
func (p *Hawkeye) OnFill(set, way uint32, a mem.Access) {
	i := set*p.ways + way
	p.insertPC[i] = a.PC
	if p.predictFriendly(a.PC) {
		p.friendly[i] = true
		p.meta.Set(set, way, RRPVNear)
		// Age the other cache-friendly blocks so that old friendly blocks
		// eventually become evictable.
		base := set * p.ways
		for w := uint32(0); w < p.ways; w++ {
			if w == way {
				continue
			}
			j := base + w
			if p.friendly[j] {
				if v := p.meta.Get(set, w); v < RRPVLong {
					p.meta.Set(set, w, v+1)
				}
			}
		}
	} else {
		p.friendly[i] = false
		p.meta.Set(set, way, RRPVMax)
	}
}

// Victim implements cache.Policy: evict a cache-averse block (RRPV max) if
// one exists, otherwise the oldest cache-friendly block; evicting a
// friendly block is evidence of a misprediction, so its PC is detrained.
func (p *Hawkeye) Victim(set uint32, _ mem.Access) (uint32, bool) {
	base := set * p.ways
	for w := uint32(0); w < p.ways; w++ {
		if p.meta.Get(set, w) == RRPVMax {
			return w, false
		}
	}
	best := uint32(0)
	for w := uint32(1); w < p.ways; w++ {
		if p.meta.Get(set, w) > p.meta.Get(set, best) {
			best = w
		}
	}
	p.train(p.insertPC[base+best], false)
	return best, false
}

// OnEvict implements cache.Policy.
func (p *Hawkeye) OnEvict(uint32, uint32) {}

// PredictorSnapshot returns a copy of the PC predictor (tests/inspection).
func (p *Hawkeye) PredictorSnapshot() map[uint32]uint8 {
	out := make(map[uint32]uint8, len(p.pred))
	for k, v := range p.pred {
		out[k] = v
	}
	return out
}
