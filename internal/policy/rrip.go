// Package policy implements the LLC replacement policies evaluated in the
// paper: the history-agnostic RRIP family (SRRIP/BRRIP/DRRIP) that GRASP
// builds on, the history-based predictive schemes SHiP-MEM, Hawkeye and
// Leeway, the pinning-based XMem (PIN-X), DIP, and the offline Belady OPT
// upper bound.
package policy

import (
	"fmt"

	"grasp/internal/cache"
	"grasp/internal/mem"
)

// RRPV constants for the 3-bit re-reference prediction values used
// throughout the paper (Table II): 0 = near-immediate re-reference
// (MRU-like), 7 = distant re-reference (LRU-like, immediate eviction
// candidate).
const (
	RRPVBits     = 3
	RRPVMax      = (1 << RRPVBits) - 1 // 7: distant (Low-Reuse insertion)
	RRPVLong     = RRPVMax - 1         // 6: long (SRRIP insertion)
	RRPVNear     = 0                   // near-immediate (MRU position)
	brripEpsilon = 32                  // BRRIP inserts at RRPVLong 1/32 of the time
)

// RRIPMeta is the shared per-block RRPV state used by the RRIP family and
// every policy layered on it (GRASP, SHiP, Hawkeye-style aging). It is
// factored out so derived policies compose instead of re-implementing the
// victim scan.
type RRIPMeta struct {
	rrpv []uint8
	ways uint32
}

// NewRRIPMeta allocates RRPV state for sets x ways blocks, initialized to
// distant (empty ways are filled before Victim is ever called, so initial
// values only matter for determinism).
func NewRRIPMeta(sets, ways uint32) *RRIPMeta {
	m := &RRIPMeta{rrpv: make([]uint8, sets*ways), ways: ways}
	for i := range m.rrpv {
		m.rrpv[i] = RRPVMax
	}
	return m
}

// Get returns the RRPV of set/way.
func (m *RRIPMeta) Get(set, way uint32) uint8 { return m.rrpv[set*m.ways+way] }

// Set assigns the RRPV of set/way.
func (m *RRIPMeta) Set(set, way uint32, v uint8) { m.rrpv[set*m.ways+way] = v }

// Victim implements the SRRIP victim search: find the first way with
// RRPV==max, aging the whole set (incrementing every RRPV) until one
// appears. Ways are scanned in index order, matching the CRC reference
// implementation. Rather than rescanning per aging round, one pass finds
// the first way holding the set's maximum RRPV — the way the iterated
// search would reach distant first — and one conditional pass applies the
// aggregate aging delta; the resulting RRPV state and victim choice are
// identical to the literal loop's.
func (m *RRIPMeta) Victim(set uint32) uint32 {
	base := set * m.ways
	r := m.rrpv[base : base+m.ways : base+m.ways]
	best := uint32(0)
	maxv := r[0]
	for w := 1; w < len(r); w++ {
		if r[w] > maxv {
			maxv = r[w]
			best = uint32(w)
		}
	}
	if delta := uint8(RRPVMax) - maxv; delta > 0 {
		for w := range r {
			r[w] += delta
		}
	}
	return best
}

// SRRIP is Static RRIP [Jaleel et al., ISCA'10]: insert at "long" (max-1),
// promote to 0 on hit (hit-priority variant).
type SRRIP struct {
	meta *RRIPMeta
}

// NewSRRIP creates an SRRIP policy.
func NewSRRIP(sets, ways uint32) *SRRIP {
	return &SRRIP{meta: NewRRIPMeta(sets, ways)}
}

// Name implements cache.Policy.
func (p *SRRIP) Name() string { return "SRRIP" }

// OnHit implements cache.Policy.
func (p *SRRIP) OnHit(set, way uint32, _ mem.Access) { p.meta.Set(set, way, RRPVNear) }

// OnFill implements cache.Policy.
func (p *SRRIP) OnFill(set, way uint32, _ mem.Access) { p.meta.Set(set, way, RRPVLong) }

// Victim implements cache.Policy.
func (p *SRRIP) Victim(set uint32, _ mem.Access) (uint32, bool) { return p.meta.Victim(set), false }

// OnEvict implements cache.Policy.
func (p *SRRIP) OnEvict(uint32, uint32) {}

// BRRIP is Bimodal RRIP: insert at distant (max) with high probability and
// at long (max-1) infrequently (1/32), providing thrash resistance.
type BRRIP struct {
	meta    *RRIPMeta
	counter uint64
}

// NewBRRIP creates a BRRIP policy.
func NewBRRIP(sets, ways uint32) *BRRIP {
	return &BRRIP{meta: NewRRIPMeta(sets, ways)}
}

// Name implements cache.Policy.
func (p *BRRIP) Name() string { return "BRRIP" }

// OnHit implements cache.Policy.
func (p *BRRIP) OnHit(set, way uint32, _ mem.Access) { p.meta.Set(set, way, RRPVNear) }

// OnFill implements cache.Policy.
func (p *BRRIP) OnFill(set, way uint32, _ mem.Access) {
	p.counter++
	if p.counter%brripEpsilon == 0 {
		p.meta.Set(set, way, RRPVLong)
	} else {
		p.meta.Set(set, way, RRPVMax)
	}
}

// Victim implements cache.Policy.
func (p *BRRIP) Victim(set uint32, _ mem.Access) (uint32, bool) { return p.meta.Victim(set), false }

// OnEvict implements cache.Policy.
func (p *BRRIP) OnEvict(uint32, uint32) {}

// DRRIP is Dynamic RRIP: set dueling between SRRIP and BRRIP insertion with
// a saturating policy-selector counter (PSEL). This is the "RRIP" baseline
// of the paper's evaluation (Sec. IV-C cites the CRC DRRIP source).
type DRRIP struct {
	meta *RRIPMeta
	sets uint32
	// Set dueling: every duelPeriod-th set leads SRRIP; sets offset by
	// duelPeriod/2 lead BRRIP.
	psel    int32 // saturating counter; >= 0 prefers SRRIP
	counter uint64
}

const (
	duelPeriod = 32
	pselMax    = 512
)

// NewDRRIP creates a DRRIP policy.
func NewDRRIP(sets, ways uint32) *DRRIP {
	return &DRRIP{meta: NewRRIPMeta(sets, ways), sets: sets}
}

// Name implements cache.Policy.
func (p *DRRIP) Name() string { return "RRIP" }

// leader returns +1 for SRRIP leader sets, -1 for BRRIP leaders, 0 for
// follower sets. The dueling period shrinks with the set count so tiny
// test caches still have one leader of each kind.
func (p *DRRIP) leader(set uint32) int {
	period := uint32(duelPeriod)
	if p.sets < period {
		period = p.sets
	}
	switch set % period {
	case 0:
		return +1
	case period / 2:
		return -1
	}
	return 0
}

// OnHit implements cache.Policy.
func (p *DRRIP) OnHit(set, way uint32, _ mem.Access) { p.meta.Set(set, way, RRPVNear) }

// OnFill implements cache.Policy. Leader sets use their fixed policy and
// a miss in a leader set trains PSEL toward the other policy; followers
// use the winning policy.
func (p *DRRIP) OnFill(set, way uint32, _ mem.Access) {
	useSRRIP := p.psel >= 0
	switch p.leader(set) {
	case +1:
		useSRRIP = true
		if p.psel > -pselMax {
			p.psel-- // miss in SRRIP leader: vote for BRRIP
		}
	case -1:
		useSRRIP = false
		if p.psel < pselMax {
			p.psel++ // miss in BRRIP leader: vote for SRRIP
		}
	}
	if useSRRIP {
		p.meta.Set(set, way, RRPVLong)
		return
	}
	p.counter++
	if p.counter%brripEpsilon == 0 {
		p.meta.Set(set, way, RRPVLong)
	} else {
		p.meta.Set(set, way, RRPVMax)
	}
}

// Victim implements cache.Policy.
func (p *DRRIP) Victim(set uint32, _ mem.Access) (uint32, bool) { return p.meta.Victim(set), false }

// OnEvict implements cache.Policy.
func (p *DRRIP) OnEvict(uint32, uint32) {}

// Meta exposes the RRPV state for policies and tests layered on DRRIP.
func (p *DRRIP) Meta() *RRIPMeta { return p.meta }

// Constructor builds a policy for a given LLC geometry. The experiment
// harness works with named constructors so every run gets fresh state.
type Constructor struct {
	Name string
	New  func(sets, ways uint32) cache.Policy
}

// ByName returns a policy constructor by its experiment name.
func ByName(name string) (Constructor, error) {
	for _, c := range All() {
		if c.Name == name {
			return c, nil
		}
	}
	return Constructor{}, fmt.Errorf("policy: unknown policy %q", name)
}

// All returns constructors for every LLC policy in this package. GRASP
// variants live in internal/core (they are the paper's contribution, not a
// prior scheme) and register themselves through their own constructors.
func All() []Constructor {
	return []Constructor{
		{Name: "LRU", New: func(s, w uint32) cache.Policy { return cache.NewLRU(s, w) }},
		{Name: "SRRIP", New: func(s, w uint32) cache.Policy { return NewSRRIP(s, w) }},
		{Name: "BRRIP", New: func(s, w uint32) cache.Policy { return NewBRRIP(s, w) }},
		{Name: "RRIP", New: func(s, w uint32) cache.Policy { return NewDRRIP(s, w) }},
		{Name: "DIP", New: func(s, w uint32) cache.Policy { return NewDIP(s, w) }},
		{Name: "PLRU", New: func(s, w uint32) cache.Policy { return NewPLRU(s, w) }},
		{Name: "SHiP-MEM", New: func(s, w uint32) cache.Policy { return NewSHiPMem(s, w) }},
		{Name: "SHiP-PC", New: func(s, w uint32) cache.Policy { return NewSHiPPC(s, w) }},
		{Name: "Hawkeye", New: func(s, w uint32) cache.Policy { return NewHawkeye(s, w) }},
		{Name: "Leeway", New: func(s, w uint32) cache.Policy { return NewLeeway(s, w) }},
		{Name: "PIN-25", New: func(s, w uint32) cache.Policy { return NewXMem(s, w, 25) }},
		{Name: "PIN-50", New: func(s, w uint32) cache.Policy { return NewXMem(s, w, 50) }},
		{Name: "PIN-75", New: func(s, w uint32) cache.Policy { return NewXMem(s, w, 75) }},
		{Name: "PIN-100", New: func(s, w uint32) cache.Policy { return NewXMem(s, w, 100) }},
	}
}
