package policy

import "math"

// Belady's optimal replacement (OPT) [Belady, IBM Sys J 1966], used as the
// offline upper bound in the paper's Sec. V-D: given the full future access
// trace, always evict the block whose next use is farthest away, and bypass
// a missing block entirely when its own next use is farther than every
// cached block's (the bypass-capable MIN variant used by Hawkeye's OPTgen,
// which minimizes misses for demand caches).
//
// OPT is not a cache.Policy — it is a standalone trace simulator, exactly
// as the paper applies it: "we generate the traces of LLC accesses ... We
// apply OPT on each trace for five different LLC sizes."

// OPTResult reports the outcome of an OPT simulation.
type OPTResult struct {
	Hits, Misses uint64
}

// Accesses returns the trace length.
func (r OPTResult) Accesses() uint64 { return r.Hits + r.Misses }

const never = math.MaxInt64

// SimulateOPT runs Belady's algorithm over a trace of block addresses for
// a cache with the given geometry (sets must be a power of two). Each set
// is an independent fully-associative-within-set Belady cache, matching
// the hardware set mapping.
func SimulateOPT(blocks []uint64, sets, ways uint32) OPTResult {
	if sets == 0 || sets&(sets-1) != 0 {
		panic("policy: OPT set count must be a positive power of two")
	}
	mask := uint64(sets - 1)

	// Pass 1: next-use chain. nextUse[i] = index of the next access to the
	// same block after i, or never.
	nextUse := make([]int64, len(blocks))
	last := make(map[uint64]int64, 1<<16)
	for i := len(blocks) - 1; i >= 0; i-- {
		b := blocks[i]
		if j, ok := last[b]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = never
		}
		last[b] = int64(i)
	}

	// Pass 2: per-set Belady simulation. Each set keeps its resident
	// blocks with their next-use times.
	type line struct {
		block uint64
		next  int64
	}
	setsState := make([][]line, sets)
	for i := range setsState {
		setsState[i] = make([]line, 0, ways)
	}

	var res OPTResult
	for i, b := range blocks {
		s := setsState[b&mask]
		hit := false
		for k := range s {
			if s[k].block == b {
				s[k].next = nextUse[i]
				hit = true
				break
			}
		}
		if hit {
			res.Hits++
			continue
		}
		res.Misses++
		if nextUse[i] == never {
			continue // never reused: optimal choice is to bypass
		}
		if uint32(len(s)) < ways {
			setsState[b&mask] = append(s, line{block: b, next: nextUse[i]})
			continue
		}
		// Find the farthest-future line, considering the incoming block.
		victim, farthest := -1, nextUse[i]
		for k := range s {
			if s[k].next > farthest {
				victim, farthest = k, s[k].next
			}
		}
		if victim >= 0 {
			s[victim] = line{block: b, next: nextUse[i]}
		}
		// victim < 0: incoming block is the farthest -> bypass.
	}
	return res
}
