package exp

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"grasp/internal/apps"
)

// hammerPoints is a small mixed batch: results across two reorderings and
// three policies plus LLC traces, with deliberate overlap between rows so
// the dedup paths are exercised.
func hammerPoints() []Datapoint {
	var pts []Datapoint
	for _, ds := range []string{"lj", "kr"} {
		for _, app := range []string{"PR", "BC"} {
			for _, pol := range []string{"RRIP", "GRASP", "LRU"} {
				pts = append(pts, Datapoint{DS: ds, Reorder: "DBG", App: app,
					Layout: apps.LayoutMerged, Policy: pol})
			}
			pts = append(pts, Datapoint{DS: ds, App: app, Trace: true})
		}
	}
	return pts
}

// TestSessionConcurrentDeterminism hammers one Session from many goroutines
// (each walking the same datapoints in a different order) and asserts that
// (a) every result is identical to a sequentially computed baseline, and
// (b) the singleflight layer collapsed all concurrent requests so each
// distinct simulation ran exactly once. Run under -race in CI.
func TestSessionConcurrentDeterminism(t *testing.T) {
	t.Parallel()
	cfg := ScaledConfig(64)
	pts := hammerPoints()

	// Sequential baseline.
	seq := NewSession(cfg)
	baseline := make([]interface{}, len(pts))
	for i, p := range pts {
		if p.Trace {
			addrs, _, err := seq.LLCTrace(p.DS, p.App)
			if err != nil {
				t.Fatal(err)
			}
			baseline[i] = len(addrs)
			continue
		}
		r, err := seq.Result(p.DS, p.Reorder, p.App, p.Layout, p.Policy)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = r.LLC
	}

	// Concurrent hammer: goroutines sweep the same points from rotated
	// starting offsets, so at any moment several goroutines are asking for
	// the same key while others race ahead.
	const goroutines = 8
	const rounds = 3
	conc := NewSession(cfg)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for k := range pts {
					p := pts[(k+g*len(pts)/goroutines)%len(pts)]
					if err := conc.compute(p); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Determinism: concurrent results match the sequential baseline.
	for i, p := range pts {
		if p.Trace {
			addrs, _, err := conc.LLCTrace(p.DS, p.App)
			if err != nil {
				t.Fatal(err)
			}
			if len(addrs) != baseline[i].(int) {
				t.Fatalf("trace %s/%s: %d addrs, sequential had %d",
					p.DS, p.App, len(addrs), baseline[i].(int))
			}
			continue
		}
		r, err := conc.Result(p.DS, p.Reorder, p.App, p.Layout, p.Policy)
		if err != nil {
			t.Fatal(err)
		}
		if r.LLC != baseline[i] {
			t.Fatalf("datapoint %+v: concurrent %+v != sequential %+v", p, r.LLC, baseline[i])
		}
	}

	// Dedup: despite goroutines x rounds sweeps, each distinct simulation
	// ran exactly once (trace collection does not go through sim.Run).
	distinct := make(map[Datapoint]bool)
	for _, p := range pts {
		if !p.Trace {
			distinct[p] = true
		}
	}
	if got := conc.SimRuns(); got != uint64(len(distinct)) {
		t.Fatalf("SimRuns = %d, want %d (singleflight failed to dedup)", got, len(distinct))
	}
}

// TestPrefetchMatchesSequentialOutput renders one full experiment both ways
// — cold sequential session vs prefetched via RunAll — and requires
// byte-identical output (the engine's core output-equivalence guarantee).
func TestPrefetchMatchesSequentialOutput(t *testing.T) {
	t.Parallel()
	e, err := ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}

	var seqBuf bytes.Buffer
	if err := e.Run(NewSession(ScaledConfig(64)), &seqBuf); err != nil {
		t.Fatal(err)
	}

	var batchBuf bytes.Buffer
	if err := RunAll(NewSession(ScaledConfig(64)), []Experiment{e}, &batchBuf, RunObserver{}); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(seqBuf.Bytes(), batchBuf.Bytes()) {
		t.Fatalf("outputs differ:\nsequential:\n%s\nbatched:\n%s", seqBuf.String(), batchBuf.String())
	}
}

// TestConcurrentExperimentsShareDatapoints runs two experiments that read
// the same datapoints concurrently against one session: outputs must agree
// and the shared simulations must run exactly once (the fig5/fig6 dedup
// scenario, on a two-datapoint stand-in so the test stays cheap).
func TestConcurrentExperimentsShareDatapoints(t *testing.T) {
	t.Parallel()
	s := NewSession(ScaledConfig(64))
	mk := func(id string) Experiment {
		return Experiment{
			ID: id,
			Run: func(s *Session, w io.Writer) error {
				base, err := s.Result("lj", "DBG", "PR", apps.LayoutMerged, "RRIP")
				if err != nil {
					return err
				}
				r, err := s.Result("lj", "DBG", "PR", apps.LayoutMerged, "GRASP")
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%.6f %d %d\n", r.SpeedupPctOver(base), base.LLC.Misses, r.LLC.Misses)
				return nil
			},
			Points: func() []Datapoint {
				return matrixPoints([]string{"lj"}, "DBG", []string{"PR"}, []string{"GRASP"})
			},
		}
	}
	var bufs [2]bytes.Buffer
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, e := range []Experiment{mk("a"), mk("b")} {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			errs[i] = RunAll(s, []Experiment{e}, &bufs[i], RunObserver{})
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) || bufs[0].Len() == 0 {
		t.Fatalf("concurrent experiments disagree: %q vs %q", bufs[0].String(), bufs[1].String())
	}
	if got := s.SimRuns(); got != 2 {
		t.Fatalf("SimRuns = %d, want 2 (RRIP + GRASP, each once)", got)
	}
}

// TestPrefetchErrorMatchesSequential: a batch containing an invalid
// datapoint reports the same error a sequential pass would hit first.
func TestPrefetchErrorMatchesSequential(t *testing.T) {
	t.Parallel()
	s := NewSession(ScaledConfig(64))
	pts := []Datapoint{
		{DS: "lj", Reorder: "DBG", App: "PR", Layout: apps.LayoutMerged, Policy: "no-such-policy"},
		{DS: "no-such-dataset", Reorder: "DBG", App: "PR", Layout: apps.LayoutMerged, Policy: "RRIP"},
	}
	err := s.Prefetch(pts)
	if err == nil {
		t.Fatal("expected error")
	}
	want := s.compute(pts[0])
	if want == nil || err.Error() != want.Error() {
		t.Fatalf("Prefetch error %q, want first sequential failure %q", err, want)
	}

	// RunAll attributes a prefetch failure to the declaring experiment.
	bad := Experiment{ID: "bad-exp",
		Run:    func(s *Session, w io.Writer) error { return nil },
		Points: func() []Datapoint { return pts }}
	err = RunAll(s, []Experiment{bad}, io.Discard, RunObserver{})
	if err == nil || !strings.HasPrefix(err.Error(), "bad-exp: ") {
		t.Fatalf("RunAll error %q, want it prefixed with the declaring experiment id", err)
	}
}
