// The set-sampled fast tier's session entry point (DESIGN.md Sec. 14):
// the same record-once engine as the full-fidelity path, but the replay
// simulates only a deterministic 1/K of the LLC sets and returns an
// extrapolated estimate with a confidence interval. The recording is the
// expensive half and is shared with the full path, so on a warm session a
// sampled answer costs one set-filtered decode — the interactive-latency
// tier of the ROADMAP north star.
package exp

import (
	"context"
	"fmt"
	"time"

	"grasp/internal/apps"
	"grasp/internal/sim"
	"grasp/internal/trace"
)

// SampledRuns returns how many distinct set-sampled estimates the session
// has computed (cache hits and merged requests do not count) — the
// fast-tier twin of SimRuns, surfaced by graspd /metrics.
func (s *Session) SampledRuns() uint64 { return s.sampledRun.Load() }

// SampledSkip returns the accumulated codec-layer skip accounting of this
// session's sampled replays: chunks skipped whole by the presence-bitmap
// test, records pruned inside the decode loop, and what was actually
// decoded and delivered (zero while the skip path is disabled). The bench
// tooling records its SkipRatio next to the sampled phase times as the
// decode-bound evidence.
func (s *Session) SampledSkip() trace.SkipReport {
	s.skipMu.Lock()
	defer s.skipMu.Unlock()
	return s.skip
}

// addSampledSkip folds one sampled replay's report into the session
// accumulator.
func (s *Session) addSampledSkip(rep trace.SkipReport) {
	s.skipMu.Lock()
	s.skip.Add(rep)
	s.skipMu.Unlock()
}

// SampledResult is SampledResultCtx without cancellation.
func (s *Session) SampledResult(dsName, reorderName, app string, layout apps.Layout, policy string, sampleK uint32) (sim.SampledResult, error) {
	return s.SampledResultCtx(context.Background(), dsName, reorderName, app, layout, policy, sampleK)
}

// SampledResultCtx returns the set-sampled fast-tier estimate of one
// datapoint, computing and caching it on first use. The group's shared
// FULL recording backs the replay (recorded on first use, exactly as the
// full-fidelity path would — so a sampled probe warms the cache for a
// later exact run and vice versa); only the replay itself is sampled.
// sampleK=1 degenerates to an exact replay whose estimate carries zero
// error. Estimates cache separately per K and never alias full results.
func (s *Session) SampledResultCtx(ctx context.Context, dsName, reorderName, app string, layout apps.Layout, policy string, sampleK uint32) (sim.SampledResult, error) {
	if sampleK == 0 {
		return sim.SampledResult{}, fmt.Errorf("exp: sample divisor must be >= 1, got 0")
	}
	p := Datapoint{DS: dsName, Reorder: reorderName, App: app, Layout: layout, Policy: policy}
	key := fmt.Sprintf("%s|k%d|sampled", s.resultKey(p), sampleK)
	for {
		r, err := s.sampled.doTransient(key, func() (sim.SampledResult, error) {
			w, err := s.Workload(p.DS, p.Reorder, p.App == "SSSP")
			if err != nil {
				return sim.SampledResult{}, err
			}
			spec := sim.Spec{App: p.App, Layout: p.Layout, Policy: p.Policy, HCfg: s.Cfg.HCfg}
			var r sim.SampledResult
			err = s.withRecording(ctx, p.group(), false, func(rec recording) error {
				start := time.Now()
				var rerr error
				var rep trace.SkipReport
				r, rep, rerr = sim.SampledReplayResultSkipCtx(ctx, rec.tr, spec, w.Dataset.Name, rec.bounds, sampleK)
				s.phase.sampled.Add(int64(time.Since(start)))
				if rerr == nil {
					s.addSampledSkip(rep)
				}
				return rerr
			})
			if err != nil {
				return sim.SampledResult{}, err
			}
			s.sampledRun.Add(1)
			return r, nil
		})
		if foreignCancel(ctx, err) {
			continue
		}
		return r, err
	}
}
