package exp

import (
	"fmt"
	"io"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/core"
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/reorder"
	"grasp/internal/sim"
	"grasp/internal/stats"
	"grasp/internal/stream"
)

// Extra experiments beyond the paper's figures: ablations of GRASP's
// design choices called out in DESIGN.md, the generality of GRASP across
// base replacement schemes, the PC- vs region-signature comparison for
// SHiP, and the Sec. VI streaming-graph staleness study.

// ablationRegionPoints declares the session datapoints of the region-size
// ablation: the RRIP baselines (whose prefetch also prepares the shared
// DBG workloads the scaled runs replay).
func ablationRegionPoints() []Datapoint {
	return matrixPoints(highSkewNames(), "DBG", []string{"PR"}, nil)
}

// runAblationRegion sweeps the High/Moderate Reuse Region size (the
// paper's design point: exactly LLC-sized regions) on PR over the
// high-skew datasets. The scaled-region runs bypass the Session cache
// (the knob is not part of sim.Spec), so the dataset x scale grid fans out
// over the worker pool directly.
func runAblationRegion(s *Session, w io.Writer) error {
	if err := s.Prefetch(ablationRegionPoints()); err != nil {
		return err
	}
	scales := []float64{0.25, 0.5, 1, 2, 4}
	datasets := highSkewNames()
	cells := make([]sim.Result, len(datasets)*len(scales))
	errs := make([]error, len(cells))
	forEachParallel(len(cells), func(i int) {
		dsName, scale := datasets[i/len(scales)], scales[i%len(scales)]
		wl, err := s.Workload(dsName, "DBG", false)
		if err != nil {
			errs[i] = err
			return
		}
		cells[i], errs[i] = runWithRegionScale(wl, s.Cfg.HCfg, scale)
	})
	t := stats.NewTable("Dataset", "0.25x", "0.5x", "1x (paper)", "2x", "4x")
	for di, dsName := range datasets {
		base, err := s.Result(dsName, "DBG", "PR", apps.LayoutMerged, "RRIP")
		if err != nil {
			return err
		}
		row := []string{dsName}
		for si := range scales {
			i := di*len(scales) + si
			if errs[i] != nil {
				return errs[i]
			}
			row = append(row, fmt.Sprintf("%.1f", cells[i].MissReductionPctOver(base)))
		}
		t.AddRow(row...)
	}
	if _, err := fmt.Fprintln(w, "GRASP miss reduction (%) over RRIP vs High-Reuse-Region size (PR)"); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, t)
	return err
}

// runWithRegionScale runs PR under GRASP with a scaled classification
// region (bypasses the Session cache since the knob isn't part of Spec).
func runWithRegionScale(wl *sim.Workload, hcfg cache.HierarchyConfig, scale float64) (sim.Result, error) {
	fg := ligra.NewGraph(wl.Graph)
	app, err := apps.New("PR", fg, apps.LayoutMerged)
	if err != nil {
		return sim.Result{}, err
	}
	abrs := core.NewABRs(hcfg.LLC.SizeBytes)
	abrs.SetRegionScale(scale)
	for _, a := range app.ABRArrays() {
		if err := abrs.SetArray(a); err != nil {
			return sim.Result{}, err
		}
	}
	pol := core.NewPolicy(hcfg.LLC.Sets(), hcfg.LLC.Ways, core.ModeFull)
	h, err := cache.NewHierarchy(hcfg, pol, abrs)
	if err != nil {
		return sim.Result{}, err
	}
	app.Run(ligra.NewTracer(h))
	return sim.Result{L1: h.L1.Stats, L2: h.L2.Stats, LLC: h.LLC.Stats, Cycles: h.MemoryCycles()}, nil
}

// basePairs are the (GRASP variant, base scheme) pairs of the Sec. III-C
// generality ablation.
var basePairs = [][2]string{
	{"GRASP", "RRIP"},
	{"GRASP-LRU", "LRU"},
	{"GRASP-PLRU", "PLRU"},
	{"GRASP-DIP", "DIP"},
}

// ablationBasesPoints declares every variant and base scheme on PR over
// the high-skew datasets.
func ablationBasesPoints() []Datapoint {
	schemes := []string{}
	for _, p := range basePairs {
		schemes = append(schemes, p[0], p[1])
	}
	return matrixPoints(highSkewNames(), "DBG", []string{"PR"}, schemes)
}

// runAblationBases evaluates GRASP over its alternative base schemes
// (Sec. III-C: "not fundamentally dependent on RRIP"), reporting speed-up
// of each GRASP variant over ITS OWN base scheme.
func runAblationBases(s *Session, w io.Writer) error {
	if err := s.Prefetch(ablationBasesPoints()); err != nil {
		return err
	}
	pairs := basePairs
	t := stats.NewTable("Dataset", "over RRIP", "over LRU", "over PLRU", "over DIP")
	agg := make(map[string][]float64)
	for _, dsName := range highSkewNames() {
		row := []string{dsName}
		for _, p := range pairs {
			g, err := s.Result(dsName, "DBG", "PR", apps.LayoutMerged, p[0])
			if err != nil {
				return err
			}
			b, err := s.Result(dsName, "DBG", "PR", apps.LayoutMerged, p[1])
			if err != nil {
				return err
			}
			sp := g.SpeedupPctOver(b)
			agg[p[0]] = append(agg[p[0]], sp)
			row = append(row, fmt.Sprintf("%.1f", sp))
		}
		t.AddRow(row...)
	}
	gm := []string{"GM"}
	for _, p := range pairs {
		gm = append(gm, fmt.Sprintf("%.1f", stats.GeoMeanSpeedupPct(agg[p[0]])))
	}
	t.AddRow(gm...)
	if _, err := fmt.Fprintln(w, "GRASP speed-up (%) over each base scheme (PR, high-skew)"); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, t)
	return err
}

// ablationSHiPPoints declares both SHiP signature variants plus the RRIP
// baseline over the full high-skew matrix.
func ablationSHiPPoints() []Datapoint {
	return matrixPoints(highSkewNames(), "DBG", apps.Names(),
		[]string{"SHiP-PC", "SHiP-MEM"})
}

// runAblationSHiP compares SHiP-PC (PC signatures, useless for graph
// analytics per Sec. II-F) against the SHiP-MEM variant the paper
// evaluates.
func runAblationSHiP(s *Session, w io.Writer) error {
	if err := s.Prefetch(ablationSHiPPoints()); err != nil {
		return err
	}
	t := stats.NewTable("App", "Dataset", "SHiP-PC", "SHiP-MEM")
	var pc, mm []float64
	for _, app := range apps.Names() {
		for _, ds := range highSkewNames() {
			base, err := s.Result(ds, "DBG", app, apps.LayoutMerged, "RRIP")
			if err != nil {
				return err
			}
			p, err := s.Result(ds, "DBG", app, apps.LayoutMerged, "SHiP-PC")
			if err != nil {
				return err
			}
			m, err := s.Result(ds, "DBG", app, apps.LayoutMerged, "SHiP-MEM")
			if err != nil {
				return err
			}
			pcV, mmV := p.SpeedupPctOver(base), m.SpeedupPctOver(base)
			pc = append(pc, pcV)
			mm = append(mm, mmV)
			t.AddRowf(app, ds, pcV, mmV)
		}
	}
	t.AddRowf("GM", "all", stats.GeoMeanSpeedupPct(pc), stats.GeoMeanSpeedupPct(mm))
	if _, err := fmt.Fprintln(w, "Speed-up (%) over RRIP: PC- vs region-signature SHiP"); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, t)
	return err
}

// runStreaming regenerates the Sec. VI staleness argument: prefix
// coverage of the DBG hot region under an update stream, stale vs freshly
// reordered, for a drifting tw-like graph.
func runStreaming(s *Session, w io.Writer) error {
	ds, err := graph.DatasetByName("tw")
	if err != nil {
		return err
	}
	g := ds.Generate(true, s.Cfg.ScaleDiv)
	g = reorder.Apply(g, reorder.DBG(g, reorder.BySum))
	// Prefix = the vertices whose merged property elements fill one LLC
	// (the High Reuse Region).
	prefix := uint32(s.Cfg.HCfg.LLC.SizeBytes / 16)
	if prefix > g.NumVertices() {
		prefix = g.NumVertices()
	}
	batchSize := int(g.NumEdges() / 100) // 1% of edges per batch
	points := stream.StalenessStudy(g, prefix, 8, batchSize, 0.7, 1.1, 99)
	t := stats.NewTable("Batch (1% edges each)", "Stale coverage", "Fresh coverage", "Retention")
	for _, p := range points {
		retention := p.StaleCoverage / p.FreshCoverage * 100
		t.AddRow(fmt.Sprintf("%d", p.Batch),
			fmt.Sprintf("%.3f", p.StaleCoverage),
			fmt.Sprintf("%.3f", p.FreshCoverage),
			fmt.Sprintf("%.1f%%", retention))
	}
	if _, err := fmt.Fprintln(w, "Hot-prefix edge coverage under a drifting update stream (Sec. VI)"); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, t)
	return err
}
