// The co-run experiment (DESIGN.md Sec. 15): multi-programmed mixes of
// the graph kernels contending for one shared LLC, replayed from the
// session's record-once traces. Each app in a mix is recorded exactly
// once (the same recording that backs its solo results), so a sweep of
// every policy over every mix pays one application execution per app,
// not one per cell — the co-run lift of the broadcast fan-out economics.
package exp

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"grasp/internal/apps"
	"grasp/internal/sim"
	"grasp/internal/stats"
)

// CorunRuns returns how many distinct shared-LLC co-run replays the
// session has computed (cache hits and merged requests do not count) —
// the co-run twin of SimRuns, surfaced by graspd /metrics.
func (s *Session) CorunRuns() uint64 { return s.corunRun.Load() }

// CorunResult is CorunResultCtx without cancellation.
func (s *Session) CorunResult(dsName, reorderName string, appNames []string, weights []int, layout apps.Layout, policy string) (sim.CorunResult, error) {
	return s.CorunResultCtx(context.Background(), dsName, reorderName, appNames, weights, layout, policy)
}

// CorunResultCtx returns the interference metrics of one co-run mix: the
// named apps' recorded streams interleaved round-robin (weights[i]
// accesses per turn; nil = uniform) into one shared LLC under the given
// policy, each app scored against its own solo replay of the same
// recording. Results cache per (dataset, reorder, mix, weights, layout,
// policy) and never alias solo results; the solo baselines themselves go
// through the ordinary result cache, so a co-run warms the solo sweep
// and vice versa. Apps may repeat in the mix (two copies of PR are two
// streams over one recording).
func (s *Session) CorunResultCtx(ctx context.Context, dsName, reorderName string, appNames []string, weights []int, layout apps.Layout, policy string) (sim.CorunResult, error) {
	if len(appNames) == 0 {
		return sim.CorunResult{}, fmt.Errorf("exp: co-run needs at least one app")
	}
	if weights == nil {
		weights = make([]int, len(appNames))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(appNames) {
		return sim.CorunResult{}, fmt.Errorf("exp: co-run has %d apps but %d weights", len(appNames), len(weights))
	}
	wparts := make([]string, len(weights))
	for i, w := range weights {
		wparts[i] = fmt.Sprint(w)
	}
	key := fmt.Sprintf("%s|%s|%s|%v|%s|w%s|corun", s.datasetKey(dsName), reorderName,
		strings.Join(appNames, "+"), layout, policy, strings.Join(wparts, ","))
	for {
		r, err := s.corun.doTransient(key, func() (sim.CorunResult, error) {
			// Solo baselines first, via the ordinary result cache. viaTrace is
			// forced: the co-run replays the recording, so the baseline must be
			// the replay of the SAME recording (identical anyway, by the
			// replay-equivalence invariant, but this also guarantees the
			// recording exists before the groups are pinned below).
			solos := make(map[string]sim.Result, len(appNames))
			for _, app := range appNames {
				if _, ok := solos[app]; ok {
					continue
				}
				p := Datapoint{DS: dsName, Reorder: reorderName, App: app, Layout: layout, Policy: policy}
				solo, err := s.result(ctx, p, true)
				if err != nil {
					return sim.CorunResult{}, err
				}
				solos[app] = solo
			}
			groups := make([]groupKey, 0, len(solos))
			for _, app := range appNames {
				g := groupKey{ds: dsName, reorder: reorderName, app: app, layout: layout}
				seen := false
				for _, have := range groups {
					if have == g {
						seen = true
						break
					}
				}
				if !seen {
					groups = append(groups, g)
				}
			}
			var r sim.CorunResult
			err := s.withRecordings(ctx, groups, func(recs map[groupKey]recording) error {
				w, err := s.Workload(dsName, reorderName, false)
				if err != nil {
					return err
				}
				streams := make([]sim.CorunStream, len(appNames))
				for i, app := range appNames {
					rec := recs[groupKey{ds: dsName, reorder: reorderName, app: app, layout: layout}]
					streams[i] = sim.CorunStream{App: app, Layout: layout, Weight: weights[i],
						Trace: rec.tr, Bounds: rec.bounds, Solo: solos[app]}
				}
				start := time.Now()
				var rerr error
				r, rerr = sim.CorunReplayResultCtx(ctx, streams, policy, s.Cfg.HCfg, w.Dataset.Name)
				s.phase.corun.Add(int64(time.Since(start)))
				return rerr
			})
			if err != nil {
				return sim.CorunResult{}, err
			}
			s.corunRun.Add(1)
			return r, nil
		})
		if foreignCancel(ctx, err) {
			continue
		}
		return r, err
	}
}

// withRecordings runs fn with every listed group's full recording pinned
// at once — the N-stream generalization of withRecording, built by
// nesting it so each pin keeps its own lose-the-race retry.
func (s *Session) withRecordings(ctx context.Context, keys []groupKey, fn func(recs map[groupKey]recording) error) error {
	recs := make(map[groupKey]recording, len(keys))
	var pin func(i int) error
	pin = func(i int) error {
		if i == len(keys) {
			return fn(recs)
		}
		return s.withRecording(ctx, keys[i], false, func(rec recording) error {
			recs[keys[i]] = rec
			return pin(i + 1)
		})
	}
	return pin(0)
}

// corunMixes returns the experiment's co-runner mixes in sweep order: the
// {2,4,8}-way combinations of the four kernels (the 8-way mix doubles
// each kernel — two instances of one app are two independent streams).
func corunMixes() [][]string {
	return [][]string{
		{"BFS", "PR"},
		{"KCore", "TC"},
		{"BFS", "PR", "KCore", "TC"},
		{"BFS", "PR", "KCore", "TC", "BFS", "PR", "KCore", "TC"},
	}
}

// corunApps returns the distinct kernels appearing in any mix, in a fixed
// order (the solo-baseline matrix).
func corunApps() []string { return []string{"BFS", "PR", "KCore", "TC"} }

// corunSchemes returns every registered policy except RRIP (declared
// implicitly by matrixPoints), matching the scenario sweep's coverage
// rule: a policy cannot register without a co-run datapoint.
func corunSchemes() []string {
	var out []string
	for _, p := range sim.Policies() {
		if p.Name != "RRIP" {
			out = append(out, p.Name)
		}
	}
	return out
}

// corunPoints declares the solo-baseline matrix: every policy x kernel x
// high-skew dataset under DBG. Prefetch computes them via the broadcast
// fan-out, recording each (dataset, app) group once — the same recordings
// the co-run replays interleave, so the experiment body's co-runs start
// from warm traces and warm baselines.
func corunPoints() []Datapoint {
	return matrixPoints(highSkewNames(), "DBG", corunApps(), corunSchemes())
}

// mixLabel renders a mix for table headers: "BFS+PR", "2x(BFS+PR+...)"
// for the doubled 8-way mix.
func mixLabel(mix []string) string {
	half := len(mix) / 2
	if half > 0 && len(mix)%2 == 0 {
		doubled := true
		for i := 0; i < half; i++ {
			if mix[i] != mix[half+i] {
				doubled = false
				break
			}
		}
		if doubled {
			return "2x(" + strings.Join(mix[:half], "+") + ")"
		}
	}
	return strings.Join(mix, "+")
}

// runCorun renders the co-run sweep: for every mix, one table of weighted
// speedup (higher is better; ideal = mix size) and one of unfairness
// (lower is better; 1 = perfectly fair) per policy x dataset, then a
// per-app interference detail for the 4-way mix under the baseline and
// GRASP on the first dataset.
func runCorun(s *Session, w io.Writer) error {
	if err := s.Prefetch(corunPoints()); err != nil {
		return err
	}
	datasets := highSkewNames()
	policies := append([]string{"RRIP"}, corunSchemes()...)
	mixes := corunMixes()
	// Fan every (mix, policy, dataset) cell out over the worker pool; the
	// cache makes the sequential rendering below instant. Errors surface
	// on the rendering pass in deterministic order.
	type cell struct {
		mix    int
		policy string
		ds     string
	}
	var cells []cell
	for mi := range mixes {
		for _, pol := range policies {
			for _, ds := range datasets {
				cells = append(cells, cell{mix: mi, policy: pol, ds: ds})
			}
		}
	}
	forEachParallel(len(cells), func(i int) {
		c := cells[i]
		_, _ = s.CorunResult(c.ds, "DBG", mixes[c.mix], nil, apps.LayoutMerged, c.policy)
	})
	for _, mix := range mixes {
		ws := stats.NewTable(append([]string{"Policy"}, append(append([]string{}, datasets...), "Mean")...)...)
		unf := stats.NewTable(append([]string{"Policy"}, append(append([]string{}, datasets...), "Mean")...)...)
		for _, pol := range policies {
			wsRow, unfRow := []string{pol}, []string{pol}
			var wsVals, unfVals []float64
			for _, ds := range datasets {
				r, err := s.CorunResult(ds, "DBG", mix, nil, apps.LayoutMerged, pol)
				if err != nil {
					return err
				}
				wsVals = append(wsVals, r.WeightedSpeedup)
				unfVals = append(unfVals, r.Unfairness)
				wsRow = append(wsRow, fmt.Sprintf("%.2f", r.WeightedSpeedup))
				unfRow = append(unfRow, fmt.Sprintf("%.2f", r.Unfairness))
			}
			wsRow = append(wsRow, fmt.Sprintf("%.2f", stats.Mean(wsVals)))
			unfRow = append(unfRow, fmt.Sprintf("%.2f", stats.Mean(unfVals)))
			ws.AddRow(wsRow...)
			unf.AddRow(unfRow...)
		}
		if _, err := fmt.Fprintf(w, "Co-run %s: weighted speedup (ideal %d)\n%s\n", mixLabel(mix), len(mix), ws); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "Co-run %s: unfairness (max/min slowdown, 1 = fair)\n%s\n", mixLabel(mix), unf); err != nil {
			return err
		}
	}
	// Per-app detail: who pays for the contention, under the baseline and
	// under GRASP, on the 4-way mix.
	detailMix := mixes[2]
	detailDS := datasets[0]
	for _, pol := range []string{"RRIP", "GRASP"} {
		r, err := s.CorunResult(detailDS, "DBG", detailMix, nil, apps.LayoutMerged, pol)
		if err != nil {
			return err
		}
		t := stats.NewTable("App", "SoloMiss%", "CorunMiss%", "Delta", "Slowdown")
		for _, a := range r.Apps {
			t.AddRow(a.App,
				fmt.Sprintf("%.2f", a.Solo.LLC.MissRatio()*100),
				fmt.Sprintf("%.2f", a.LLC.MissRatio()*100),
				fmt.Sprintf("%+.2f", a.MissRateDelta()*100),
				fmt.Sprintf("%.3f", a.Slowdown))
		}
		if _, err := fmt.Fprintf(w, "Per-app interference, %s on %s under %s\n%s\n", mixLabel(detailMix), detailDS, pol, t); err != nil {
			return err
		}
	}
	return nil
}
