// Package exp is the experiment harness: every table and figure of the
// paper's evaluation has a named experiment that regenerates it on the
// synthetic datasets (see DESIGN.md Sec. 4 for the per-experiment index).
//
// The harness is a concurrent experiment engine (DESIGN.md Sec. 6): a
// Session is safe for use from many goroutines, deduplicates concurrent
// requests for the same datapoint singleflight-style, and can fan a batch
// of pre-declared datapoints out over a worker pool. Experiments declare
// their datapoints up front (Experiment.Points) so RunAll computes the
// union in parallel and then renders each experiment, in order, from the
// warm cache — producing output byte-identical to a sequential run.
package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/graph"
	"grasp/internal/sim"
	"grasp/internal/trace"
)

// Config controls experiment scale.
type Config struct {
	// ScaleDiv divides dataset sizes; 1 = full reproduction scale
	// (131072 vertices, 256KB LLC). Benchmarks use larger divisors.
	ScaleDiv uint32
	// HCfg is the simulated hierarchy. Zero value = default config scaled
	// to ScaleDiv (the LLC shrinks with the datasets to preserve the
	// footprint-to-capacity ratio).
	HCfg cache.HierarchyConfig
	// FileBytesBudget caps the approximate bytes of parsed graphs and
	// recorded traces the session retains for file-backed datasets; the
	// least-recently-requested file's entries are evicted when the total
	// exceeds it, so a long-lived daemon fed arbitrary distinct paths
	// cannot grow without bound (DESIGN.md Sec. 10). Synthetic datasets
	// are a small fixed set and are never evicted. 0 selects
	// DefaultFileBytesBudget; negative disables the cap.
	FileBytesBudget int64
	// TraceBytesBudget caps the total encoded bytes (resident + spilled)
	// of the recordings the session keeps cached, across ALL datasets:
	// the trace memory budget (trace.SetMemoryBudget) only bounds RAM —
	// the overflow spills to temp files that persist while their traces
	// stay cached, so a daemon sweeping many full-scale multi-policy
	// groups would otherwise accumulate unbounded temp disk. When the
	// total exceeds the budget the least-recently-used recordings are
	// evicted and Released (their spill space reclaimed immediately;
	// in-flight replays are protected by trace pinning — DESIGN.md
	// Sec. 11). 0 selects DefaultTraceBytesBudget; negative disables.
	TraceBytesBudget int64
}

// DefaultFileBytesBudget is the per-session retained-bytes cap for
// file-backed datasets when Config.FileBytesBudget is zero (2 GiB).
const DefaultFileBytesBudget = int64(2) << 30

// DefaultTraceBytesBudget is the per-session cap on cached recordings'
// encoded bytes when Config.TraceBytesBudget is zero (16 GiB): generous
// enough that a bench-scale sweep never evicts, small enough that
// full-scale spill files cannot fill a typical temp filesystem.
const DefaultTraceBytesBudget = int64(16) << 30

// DefaultConfig returns the full reproduction scale.
func DefaultConfig() Config {
	return Config{ScaleDiv: 1, HCfg: cache.DefaultHierarchyConfig()}
}

// ScaledConfig returns a configuration scaled down by div (power of two):
// datasets are div times smaller and the hierarchy shrinks with them.
func ScaledConfig(div uint32) Config {
	h := cache.DefaultHierarchyConfig()
	shrink := func(c cache.Config) cache.Config {
		s := c.SizeBytes / uint64(div)
		min := uint64(c.Ways) * cache.BlockSize * 2
		if s < min {
			s = min
		}
		return cache.Config{SizeBytes: s, Ways: c.Ways}
	}
	h.L1 = shrink(h.L1)
	h.L2 = shrink(h.L2)
	h.LLC = shrink(h.LLC)
	return Config{ScaleDiv: div, HCfg: h}
}

// flightCall is one in-flight or completed computation in a flightCache.
type flightCall[V any] struct {
	done chan struct{} // closed when val/err are set
	val  V
	err  error
}

// flightCache is a concurrency-safe memoization table with singleflight
// semantics: the first goroutine to request a key computes it with no lock
// held; goroutines that request the same key while it is in flight block
// until that one computation finishes and share its outcome. do caches
// errors alongside successes (right for purely deterministic computations,
// where a retry would fail identically); doTransient drops the entry on
// error, for computations with environmental failure modes — trace
// recordings and replays touch disk once the spill budget engages, and a
// daemon must not serve a transient ENOSPC from cache forever.
type flightCache[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
}

func newFlightCache[V any]() *flightCache[V] {
	return &flightCache[V]{m: make(map[string]*flightCall[V])}
}

func (f *flightCache[V]) do(key string, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()
	defer f.settlePanic(key, c)
	c.val, c.err = fn()
	close(c.done)
	return c.val, c.err
}

// settlePanic keeps a panicking computation from poisoning the table: the
// entry is dropped, waiters blocked on it receive an error instead of
// hanging forever, and the panic continues up to the containment layer
// (the jobs manager's recover, or process exit for CLI callers). Without
// this, a panic would leave the flightCall's done channel open and every
// waiter — possibly a whole worker pool — deadlocked.
func (f *flightCache[V]) settlePanic(key string, c *flightCall[V]) {
	if p := recover(); p != nil {
		f.mu.Lock()
		if f.m[key] == c {
			delete(f.m, key)
		}
		f.mu.Unlock()
		c.err = fmt.Errorf("exp: computation panicked: %v", p)
		close(c.done)
		panic(p)
	}
}

// doTransient is do, except a failed computation is removed from the
// table (identity-checked, so a retry already in flight is never
// clobbered) before the error is returned: waiters blocked on the failed
// call still receive its error, but the next request recomputes.
func (f *flightCache[V]) doTransient(key string, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()
	c.val, c.err = fn()
	if c.err != nil {
		f.mu.Lock()
		if f.m[key] == c {
			delete(f.m, key)
		}
		f.mu.Unlock()
	}
	close(c.done)
	return c.val, c.err
}

func (f *flightCache[V]) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// ready reports whether key's computation has already completed
// successfully, without blocking on one in flight.
func (f *flightCache[V]) ready(key string) bool {
	f.mu.Lock()
	c, ok := f.m[key]
	f.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-c.done:
		return c.err == nil
	default:
		return false
	}
}

// deleteMatching drops every memoized entry whose key satisfies match.
// Callers already blocked on an in-flight computation are unaffected —
// they hold the call struct directly and still receive its outcome — the
// entry just stops being findable, so the next request recomputes.
func (f *flightCache[V]) deleteMatching(match func(key string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k := range f.m {
		if match(k) {
			delete(f.m, k)
		}
	}
}

// Session caches prepared workloads, simulation results and recorded LLC
// traces so experiments sharing datapoints (e.g. fig5 and fig6) do not
// repeat work. It is safe for concurrent use: simultaneous requests for
// one datapoint — whether from Prefetch workers or from experiments run in
// parallel by the caller — are deduplicated so each datapoint is computed
// exactly once.
//
// The session is also the scheduler of the record-once/replay-many engine
// (DESIGN.md Sec. 11): the access stream reaching the LLC is a pure
// function of (dataset, reorder, app, layout), so when a Prefetch batch
// asks for several policies on one such group, the application executes
// once into a trace.Trace and every policy replays the shared immutable
// recording. Single-policy groups bypass the recorder (a recording run
// costs about as much as a direct run, so it only pays off when amortized)
// unless a recording already exists.
type Session struct {
	Cfg        Config
	bases      *flightCache[*graph.CSR] // loaded base graphs, shared across reorderings
	workloads  *flightCache[*sim.Workload]
	results    *flightCache[sim.Result]
	sampled    *flightCache[sim.SampledResult]
	corun      *flightCache[sim.CorunResult]
	traces     *flightCache[recording]
	simRuns    atomic.Uint64 // number of distinct simulated result datapoints (dedup observability)
	broadcasts atomic.Uint64 // groups whose replays were served by one broadcast decode
	sampledRun atomic.Uint64 // distinct set-sampled estimates computed (fast-tier observability)
	corunRun   atomic.Uint64 // distinct shared-LLC co-run replays computed (DESIGN.md Sec. 15)

	// skipMu/skip accumulate the codec-layer skip accounting of this
	// session's sampled replays (chunks skipped whole, records pruned in
	// the decode loop); SampledSkip exposes it for the bench tooling's
	// skip-ratio evidence alongside the process-wide trace.SkipStats.
	skipMu sync.Mutex
	skip   trace.SkipReport

	// phase accumulates cumulative engine nanoseconds per prefetch phase
	// (across workers, so a multi-core batch's phases can sum past
	// wall-clock); PhaseSeconds exposes it for the bench tooling's
	// per-phase regression tracking.
	phase struct {
		load, reorder, record, replay, direct, sampled, corun atomic.Int64
	}

	stampMu sync.Mutex
	stamps  map[string]fileStamp // graph-file spec -> last observed stamp

	fileMu    sync.Mutex
	fileUse   map[string]*fileUsage // file-backed dataset -> retained bytes + recency
	fileSeq   uint64
	fileTotal int64

	traceMu    sync.Mutex
	traceUse   map[string]*traceUsage // trace cache key -> encoded bytes + recency
	traceSeq   uint64
	traceTotal int64
}

// fileStamp is one observed (size, mtime) state of a graph file.
type fileStamp struct {
	size    int64
	modNano int64
}

// key renders the stamp as the cache-key suffix for dsName.
func (st fileStamp) key(dsName string) string {
	return fmt.Sprintf("%s@%d.%d", dsName, st.size, st.modNano)
}

// recording pairs a recorded LLC-bound trace with the ABR bounds of the
// run that produced it, so hint-consuming policies replay under the exact
// classifier configuration of a direct run.
type recording struct {
	tr     *trace.Trace
	bounds [][2]uint64
}

// fileUsage tracks the approximate bytes (parsed/reordered graphs plus
// recorded traces) the session retains for one file-backed dataset, and
// when it was last requested, for the LRU byte-budget eviction.
type fileUsage struct {
	bytes int64
	seq   uint64
}

// traceUsage tracks one cached recording's encoded footprint and recency
// for the recording byte-budget eviction; it also holds the recording so
// eviction can Release it (returning resident bytes to the process budget
// and reclaiming spill-file space) instead of waiting for GC.
type traceUsage struct {
	bytes int64
	seq   uint64
	rec   recording
}

// NewSession creates a session.
func NewSession(cfg Config) *Session {
	if cfg.FileBytesBudget == 0 {
		cfg.FileBytesBudget = DefaultFileBytesBudget
	}
	if cfg.TraceBytesBudget == 0 {
		cfg.TraceBytesBudget = DefaultTraceBytesBudget
	}
	return &Session{Cfg: cfg,
		bases:     newFlightCache[*graph.CSR](),
		workloads: newFlightCache[*sim.Workload](),
		results:   newFlightCache[sim.Result](),
		sampled:   newFlightCache[sim.SampledResult](),
		corun:     newFlightCache[sim.CorunResult](),
		traces:    newFlightCache[recording](),
		stamps:    make(map[string]fileStamp),
		fileUse:   make(map[string]*fileUsage),
		traceUse:  make(map[string]*traceUsage)}
}

// SimRuns returns the number of distinct result datapoints the session
// has simulated, whether by direct execution or by trace replay — cache
// hits and singleflight-merged requests do not count, so under any access
// pattern this equals the number of distinct result datapoints.
func (s *Session) SimRuns() uint64 { return s.simRuns.Load() }

// Broadcasts returns how many recording groups this session has served
// through the decode-once broadcast path (a Prefetch batch group counts
// once regardless of its policy count). The CI bench smoke asserts this
// is non-zero for a multi-policy batch.
func (s *Session) Broadcasts() uint64 { return s.broadcasts.Load() }

// PhaseSeconds returns the session's cumulative engine time per phase:
// "load" (dataset generation/ingestion), "reorder" (vertex reordering +
// relabeling), "record" (traced application executions), "replay"
// (trace decode + LLC simulation, broadcast or single), "direct"
// (execution-driven simulations that bypassed the trace engine),
// "sampled" (set-sampled fast-tier replays, DESIGN.md Sec. 14) and
// "corun" (interleaved shared-LLC co-run replays, Sec. 15). Values
// are worker-cumulative — on a multi-core host the phases of one wall
// second can sum to several phase-seconds — and monotone over the
// session's lifetime; the bench tooling records them so a prefetch
// regression localizes to a phase (DESIGN.md Sec. 7).
func (s *Session) PhaseSeconds() map[string]float64 {
	sec := func(a *atomic.Int64) float64 { return time.Duration(a.Load()).Seconds() }
	return map[string]float64{
		"load":    sec(&s.phase.load),
		"reorder": sec(&s.phase.reorder),
		"record":  sec(&s.phase.record),
		"replay":  sec(&s.phase.replay),
		"direct":  sec(&s.phase.direct),
		"sampled": sec(&s.phase.sampled),
		"corun":   sec(&s.phase.corun),
	}
}

// datasetKey returns the cache-key component for a dataset spec. Specs
// that resolve to synthetic datasets key as themselves (generation is
// deterministic — and a stray file shadowing a builtin name is ignored,
// matching graph.Resolve's precedence), but a graph-file spec is suffixed
// with the file's (size, mtime) stamp: a Session can outlive many edits
// of a file (graspd keeps one per scale for the daemon's lifetime), and
// without the stamp the workload/result/trace memos would keep serving
// the parse of the original bytes after the graph registry has
// re-ingested the edited file. When a file's stamp advances, every entry
// under any other stamp of that file is evicted from all three memos —
// they pin whole parsed/reordered graphs and LLC traces, which would
// otherwise leak for the session's lifetime, one generation per edit
// (evicting all generations, not just the recorded one, also sweeps
// entries created under a rolled-back stamp, e.g. after a backup
// restore). Transitions are accepted only forward (never to an older
// mtime): a goroutine still holding a stat taken just before a concurrent
// edit must not roll the recorded stamp back, evicting the newer entries
// and thrashing the caches; it keys under what it observed and moves on
// (those entries persist until the next advance sweeps them — at most one
// stale generation, not one per edit).
func (s *Session) datasetKey(dsName string) string {
	ds, err := graph.Resolve(dsName)
	if err != nil || ds.Kind != graph.KindFile {
		return dsName
	}
	fi, err := os.Stat(ds.Path)
	if err != nil {
		return dsName
	}
	cur := fileStamp{size: fi.Size(), modNano: fi.ModTime().UnixNano()}
	s.stampMu.Lock()
	prev, seen := s.stamps[dsName]
	advance := !seen || cur.modNano > prev.modNano ||
		(cur.modNano == prev.modNano && cur.size != prev.size)
	if advance {
		s.stamps[dsName] = cur
	}
	s.stampMu.Unlock()
	if seen && advance {
		// Sweep every generation but the current one. Keying is atomic in
		// the memos (do() inserts under the caller's full key), so entries
		// being computed under cur's key right now are untouched.
		curKey := cur.key(dsName)
		stale := func(k string) bool {
			return strings.HasPrefix(k, dsName+"@") && !strings.HasPrefix(k, curKey+"|")
		}
		for _, c := range []interface{ deleteMatching(func(string) bool) }{
			s.bases, s.workloads, s.results, s.sampled, s.corun,
		} {
			c.deleteMatching(stale)
		}
		s.releaseRecordings(stale)
		// The swept generations' graphs and traces are gone; restart the
		// byte accounting at the per-path overhead (current-stamp entries
		// re-account as they are computed).
		s.fileMu.Lock()
		if u := s.fileUse[dsName]; u != nil {
			s.fileTotal -= u.bytes - fileEntryOverhead
			u.bytes = fileEntryOverhead
		}
		s.fileMu.Unlock()
	}
	s.touchFile(dsName)
	return cur.key(dsName)
}

// fileEntryOverhead is the nominal accounting charge for merely knowing a
// file-backed dataset (its stamp, recency slot, and any error-cached memo
// entries): far above the true footprint, so the byte budget also bounds
// how many distinct paths — including ones that never parse — a session
// retains state for.
const fileEntryOverhead = 64 << 10

// chargeFile adds n retained bytes to dsName's slot (creating it with the
// nominal per-path overhead), bumps its recency, and returns the
// least-recently-used datasets to evict while the total exceeds the
// budget. Caller must not hold fileMu.
func (s *Session) chargeFile(dsName string, n int64) (evict []string) {
	budget := s.Cfg.FileBytesBudget
	s.fileMu.Lock()
	u := s.fileUse[dsName]
	if u == nil {
		u = &fileUsage{bytes: fileEntryOverhead}
		s.fileUse[dsName] = u
		s.fileTotal += fileEntryOverhead
	}
	s.fileSeq++
	u.seq = s.fileSeq
	u.bytes += n
	s.fileTotal += n
	if budget > 0 {
		for s.fileTotal > budget && len(s.fileUse) > 1 {
			oldest, oldestSeq := "", uint64(0)
			for name, fu := range s.fileUse {
				if name != dsName && (oldest == "" || fu.seq < oldestSeq) {
					oldest, oldestSeq = name, fu.seq
				}
			}
			if oldest == "" {
				break
			}
			s.fileTotal -= s.fileUse[oldest].bytes
			delete(s.fileUse, oldest)
			evict = append(evict, oldest)
		}
	}
	s.fileMu.Unlock()
	return evict
}

// touchFile bumps the LRU recency of a file-backed dataset, creating (and
// budget-checking) its accounting slot on first sight.
func (s *Session) touchFile(dsName string) {
	for _, name := range s.chargeFile(dsName, 0) {
		s.evictDataset(name)
	}
}

// noteFileBytes charges newly retained bytes (a parsed/reordered graph, a
// recorded trace's resident part) to dsName's budget slot if it is a
// file-backed dataset, evicting least-recently-used file datasets while
// the session total exceeds Config.FileBytesBudget. Synthetic datasets
// are exempt: they are a small fixed registry, while file paths are
// operator-controlled and unbounded (the graspd daemon's memory-bound
// requirement, DESIGN.md Sec. 10).
func (s *Session) noteFileBytes(dsName string, n int64) {
	if n <= 0 {
		return
	}
	if ds, err := graph.Resolve(dsName); err != nil || ds.Kind != graph.KindFile {
		return
	}
	for _, name := range s.chargeFile(dsName, n) {
		s.evictDataset(name)
	}
}

// evictDataset drops every memoized entry (all stamped generations) of a
// file-backed dataset from the four caches plus its stamp, freeing the
// parsed graphs and recorded traces it pinned. In-flight computations are
// unaffected (deleteMatching semantics); the next request re-ingests.
// Dropped recordings are Released eagerly — trace pinning protects any
// replay still reading them (DESIGN.md Sec. 11).
func (s *Session) evictDataset(dsName string) {
	prefix := dsName + "@"
	match := func(k string) bool { return strings.HasPrefix(k, prefix) }
	for _, c := range []interface{ deleteMatching(func(string) bool) }{
		s.bases, s.workloads, s.results, s.sampled, s.corun,
	} {
		c.deleteMatching(match)
	}
	s.releaseRecordings(match)
	s.stampMu.Lock()
	delete(s.stamps, dsName)
	s.stampMu.Unlock()
}

// releaseRecordings removes every cached recording whose cache key
// satisfies match from the trace memo and the recording budget, then
// Releases each one: resident bytes return to the process budget and
// spill files close immediately, while replays that pinned the trace
// before the release keep reading it safely until they unpin.
func (s *Session) releaseRecordings(match func(key string) bool) {
	s.traces.deleteMatching(match)
	s.traceMu.Lock()
	var victims []recording
	for k, u := range s.traceUse {
		if match(k) {
			s.traceTotal -= u.bytes
			victims = append(victims, u.rec)
			delete(s.traceUse, k)
		}
	}
	s.traceMu.Unlock()
	for _, rec := range victims {
		rec.tr.Release()
	}
}

// registerRecording charges a freshly recorded trace's encoded bytes to
// the session's recording budget and evicts (Releases) least-recently-
// used cached recordings while the total exceeds Config.TraceBytesBudget.
// The entry being registered is never evicted by its own insertion, so a
// single over-budget recording still serves its group before becoming an
// eviction candidate.
func (s *Session) registerRecording(key string, rec recording) {
	bytes := rec.tr.SizeBytes()
	budget := s.Cfg.TraceBytesBudget
	var victimKeys []string
	var victims []recording
	s.traceMu.Lock()
	s.traceSeq++
	s.traceUse[key] = &traceUsage{bytes: bytes, seq: s.traceSeq, rec: rec}
	s.traceTotal += bytes
	if budget > 0 {
		for s.traceTotal > budget && len(s.traceUse) > 1 {
			oldest, oldestSeq := "", uint64(0)
			for k, u := range s.traceUse {
				if k != key && (oldest == "" || u.seq < oldestSeq) {
					oldest, oldestSeq = k, u.seq
				}
			}
			if oldest == "" {
				break
			}
			u := s.traceUse[oldest]
			s.traceTotal -= u.bytes
			victimKeys = append(victimKeys, oldest)
			victims = append(victims, u.rec)
			delete(s.traceUse, oldest)
		}
	}
	s.traceMu.Unlock()
	for i, vk := range victimKeys {
		vk := vk
		s.traces.deleteMatching(func(k string) bool { return k == vk })
		victims[i].tr.Release()
	}
}

// touchRecording bumps a cached recording's LRU recency on reuse.
func (s *Session) touchRecording(key string) {
	s.traceMu.Lock()
	if u := s.traceUse[key]; u != nil {
		s.traceSeq++
		u.seq = s.traceSeq
	}
	s.traceMu.Unlock()
}

// TraceBytesRetained returns the total encoded bytes of the recordings
// the session currently caches (observability and tests).
func (s *Session) TraceBytesRetained() int64 {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return s.traceTotal
}

// FileBytesRetained returns the approximate bytes currently retained for
// file-backed datasets (observability and tests).
func (s *Session) FileBytesRetained() int64 {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	return s.fileTotal
}

// groupKey identifies one recording group: every result datapoint of a
// Prefetch batch that shares it can be served from one recorded trace.
type groupKey struct {
	ds, reorder, app string
	layout           apps.Layout
}

func (p Datapoint) group() groupKey {
	if p.Trace {
		// Declared LLC traces record under DBG/Merged (the OPT study's
		// configuration), sharing the recording with any result datapoints
		// of that group.
		return groupKey{ds: p.DS, reorder: "DBG", app: p.App, layout: apps.LayoutMerged}
	}
	return groupKey{ds: p.DS, reorder: p.Reorder, app: p.App, layout: p.Layout}
}

// foreignCancel reports whether err is a cancellation that cannot have
// originated from ctx: a singleflight waiter merged onto another caller's
// in-flight computation observes THAT caller's cancellation even though
// its own context is still live (two jobs sharing a recording, one
// cancelled mid-record). The transient caches drop failed entries, so the
// waiter just retries and recomputes under its own context — without this
// check one job's cancel would fail every job that happened to share a
// datapoint with it.
func foreignCancel(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// record returns the shared FULL recording of one (dataset, reorder, app,
// layout) group, executing the application once behind the L1/L2 filter
// and caching the encoded trace on first use. Full recordings back
// result replays for any policy.
func (s *Session) record(ctx context.Context, k groupKey) (recording, error) {
	key := fmt.Sprintf("%s|%s|%s|%v|rec", s.datasetKey(k.ds), k.reorder, k.app, k.layout)
	for {
		rec, err := s.traces.doTransient(key, func() (recording, error) {
			return s.recordTrace(ctx, key, k, 0)
		})
		if foreignCancel(ctx, err) {
			continue
		}
		if err == nil {
			s.touchRecording(key)
		}
		return rec, err
	}
}

// cappedRecord returns a bounded-prefix recording of the group (the OPT
// study's trace length), cached separately from full recordings: a capped
// trace costs ~64MB where a full-scale full trace runs to tens of GB, but
// it must never back a full-result replay, so traceReady ignores it.
func (s *Session) cappedRecord(ctx context.Context, k groupKey) (recording, error) {
	key := fmt.Sprintf("%s|%s|%s|%v|rec%d", s.datasetKey(k.ds), k.reorder, k.app, k.layout, optTraceCap)
	for {
		rec, err := s.traces.doTransient(key, func() (recording, error) {
			return s.recordTrace(ctx, key, k, optTraceCap)
		})
		if foreignCancel(ctx, err) {
			continue
		}
		if err == nil {
			s.touchRecording(key)
		}
		return rec, err
	}
}

// optRecording serves bounded-prefix consumers (Session.LLCTrace, the
// OPT study): the full recording when one is already cached — its prefix
// is identical and decoding stops at the cap — otherwise a capped one.
func (s *Session) optRecording(ctx context.Context, k groupKey) (recording, error) {
	if s.traceReady(k) {
		return s.record(ctx, k)
	}
	return s.cappedRecord(ctx, k)
}

// recordTrace executes one recording run (limit <= 0: full stream) and
// registers the finished trace under key in the recording byte budget.
func (s *Session) recordTrace(ctx context.Context, key string, k groupKey, limit int64) (recording, error) {
	w, err := s.Workload(k.ds, k.reorder, k.app == "SSSP")
	if err != nil {
		return recording{}, err
	}
	start := time.Now()
	tr, err := sim.RecordTraceNCtx(ctx, w, k.app, k.layout, s.Cfg.HCfg, limit)
	s.phase.record.Add(int64(time.Since(start)))
	if err != nil {
		return recording{}, err
	}
	bounds, err := sim.ABRBoundsFor(w, k.app, k.layout)
	if err != nil {
		tr.Release()
		return recording{}, err
	}
	s.noteFileBytes(k.ds, tr.ResidentBytes())
	rec := recording{tr: tr, bounds: bounds}
	s.registerRecording(key, rec)
	return rec, nil
}

// withRecording runs fn with a PINNED recording of the group — the full
// stream, or the OPT-capped variant via optRecording — so a concurrent
// budget eviction cannot reclaim the trace mid-replay. Losing the pin
// race (the cached recording was evicted and released between lookup and
// pin) retries: the eviction also removed the cache entry, so the next
// lookup re-records.
func (s *Session) withRecording(ctx context.Context, k groupKey, capped bool, fn func(rec recording) error) error {
	for {
		var rec recording
		var err error
		if capped {
			rec, err = s.optRecording(ctx, k)
		} else {
			rec, err = s.record(ctx, k)
		}
		if err != nil {
			return err
		}
		if !rec.tr.Pin() {
			continue
		}
		err = fn(rec)
		rec.tr.Unpin()
		return err
	}
}

// traceReady reports whether the group's FULL recording is already cached
// and healthy, without blocking on one in flight.
func (s *Session) traceReady(k groupKey) bool {
	return s.traces.ready(fmt.Sprintf("%s|%s|%s|%v|rec", s.datasetKey(k.ds), k.reorder, k.app, k.layout))
}

// LLCTrace returns the LLC access trace (byte addresses, capped at the OPT
// study's trace length) and ABR bounds for one (dataset, app) datapoint
// under DBG reordering, recording on first use. Only the underlying
// recording is cached — each call decodes a fresh address slice (up to
// 64MB at the cap), so callers needing repeated access should hold the
// returned slice; in-tree consumers replay the recording directly
// (runOPTStudy via optRecording) and never pay this decode per datapoint.
func (s *Session) LLCTrace(dsName, app string) ([]uint64, [][2]uint64, error) {
	var addrs []uint64
	var bounds [][2]uint64
	err := s.withRecording(context.Background(), groupKey{ds: dsName, reorder: "DBG", app: app, layout: apps.LayoutMerged}, true,
		func(rec recording) error {
			var derr error
			addrs, derr = rec.tr.Addrs(optTraceCap)
			bounds = rec.bounds
			return derr
		})
	if err != nil {
		return nil, nil, err
	}
	return addrs, bounds, nil
}

// Workload returns the prepared (dataset, reorder) pair, preparing and
// caching it on first use. dsName goes through the dataset registry's
// resolver, so it can be a paper dataset name or a graph-file path
// (re-prepared if the file changes; see datasetKey).
func (s *Session) Workload(dsName, reorderName string, weighted bool) (*sim.Workload, error) {
	key := fmt.Sprintf("%s|%s|%v", s.datasetKey(dsName), reorderName, weighted)
	return s.workloads.do(key, func() (*sim.Workload, error) {
		ds, err := graph.Resolve(dsName)
		if err != nil {
			return nil, err
		}
		g, err := s.baseGraph(dsName, ds, weighted)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		w, err := sim.PrepareWorkloadOn(g, ds, reorderName, weighted)
		s.phase.reorder.Add(int64(time.Since(start)))
		if err != nil {
			return nil, err
		}
		if w.Graph != g {
			// Reordered copy; the shared base was accounted by baseGraph.
			s.noteFileBytes(dsName, w.Graph.Footprint())
		}
		return w, nil
	})
}

// baseGraph returns the loaded (generated or ingested) base graph of a
// dataset, cached per (dataset, weighted): the expensive part of workload
// preparation that is identical across reordering techniques — each
// technique builds a relabeled copy and never mutates the base.
func (s *Session) baseGraph(dsName string, ds graph.Dataset, weighted bool) (*graph.CSR, error) {
	key := fmt.Sprintf("%s|%v|base", s.datasetKey(dsName), weighted)
	return s.bases.do(key, func() (*graph.CSR, error) {
		start := time.Now()
		g, err := ds.Load(weighted, s.Cfg.ScaleDiv)
		s.phase.load.Add(int64(time.Since(start)))
		if err != nil {
			return nil, err
		}
		s.noteFileBytes(dsName, g.Footprint())
		return g, nil
	})
}

// Result returns the metrics of one simulation datapoint, computing and
// caching it on first use. If the datapoint's group already has a cached
// recording the result replays it; otherwise it runs execution-driven —
// the two are result-identical (the replay-equivalence suite pins this),
// so callers never observe which path served them.
func (s *Session) Result(dsName, reorderName, app string, layout apps.Layout, policy string) (sim.Result, error) {
	return s.ResultCtx(context.Background(), dsName, reorderName, app, layout, policy)
}

// ResultCtx is Result with cooperative cancellation: the simulation checks
// ctx at trace-chunk / access-poll boundaries and returns an error wrapping
// ctx's cause once it expires. Cancellation never perturbs a completed
// datapoint — a cancelled computation is dropped from the cache, and a
// later request recomputes it from scratch with identical output.
func (s *Session) ResultCtx(ctx context.Context, dsName, reorderName, app string, layout apps.Layout, policy string) (sim.Result, error) {
	p := Datapoint{DS: dsName, Reorder: reorderName, App: app, Layout: layout, Policy: policy}
	return s.result(ctx, p, s.traceReady(p.group()))
}

// resultKey renders the result-cache key of one datapoint.
func (s *Session) resultKey(p Datapoint) string {
	return fmt.Sprintf("%s|%s|%s|%v|%s", s.datasetKey(p.DS), p.Reorder, p.App, p.Layout, p.Policy)
}

// result computes one result datapoint, replaying the group's shared
// recording when viaTrace is set (recording it first if need be).
func (s *Session) result(ctx context.Context, p Datapoint, viaTrace bool) (sim.Result, error) {
	// doTransient: the replay path can fail environmentally (spill I/O),
	// and a failed result must not be served from cache for the session's
	// lifetime; deterministic failures just recompute cheaply on request.
	// The foreignCancel retry covers waiters merged onto a flight that was
	// cancelled under someone else's context.
	for {
		r, err := s.results.doTransient(s.resultKey(p), func() (sim.Result, error) {
			weighted := p.App == "SSSP"
			w, err := s.Workload(p.DS, p.Reorder, weighted)
			if err != nil {
				return sim.Result{}, err
			}
			spec := sim.Spec{App: p.App, Layout: p.Layout, Policy: p.Policy, HCfg: s.Cfg.HCfg}
			if viaTrace {
				var r sim.Result
				err := s.withRecording(ctx, p.group(), false, func(rec recording) error {
					start := time.Now()
					var rerr error
					r, rerr = sim.ReplayResultCtx(ctx, rec.tr, spec, w.Dataset.Name, rec.bounds)
					s.phase.replay.Add(int64(time.Since(start)))
					return rerr
				})
				if err != nil {
					return sim.Result{}, err
				}
				s.simRuns.Add(1)
				return r, nil
			}
			s.simRuns.Add(1)
			start := time.Now()
			r, err := sim.RunCtx(ctx, w, spec)
			s.phase.direct.Add(int64(time.Since(start)))
			return r, err
		})
		if foreignCancel(ctx, err) {
			continue
		}
		return r, err
	}
}

// Datapoint names one unit of simulation work an experiment will consume:
// either one (dataset, reorder, app, layout, policy) result or, with Trace
// set, one recorded (dataset, app) LLC trace.
type Datapoint struct {
	DS, Reorder, App string
	Layout           apps.Layout
	Policy           string
	Trace            bool // declare the LLC trace instead of a result (Reorder/Layout/Policy ignored)
}

// compute materializes the datapoint into the session caches. A declared
// trace needs only the OPT study's bounded prefix, so outside a Prefetch
// batch (which knows whether the group's full recording is coming anyway)
// it records capped unless a full recording already exists.
func (s *Session) compute(p Datapoint) error {
	if p.Trace {
		_, err := s.optRecording(context.Background(), p.group())
		return err
	}
	_, err := s.Result(p.DS, p.Reorder, p.App, p.Layout, p.Policy)
	return err
}

// Prefetch computes the given datapoints on a pool of GOMAXPROCS workers,
// leaving them cached in the session. The batch is deduplicated up front
// (a duplicate entry would park a worker slot blocking on the in-flight
// original instead of doing distinct work); datapoints that merely share a
// workload are deduplicated by the singleflight caches, so no simulation
// runs twice either way.
//
// Prefetch is where the record-once/replay-many engine engages: the batch
// is grouped by (dataset, reorder, app, layout), and any group requested
// under two or more policies executes the application once into a shared
// recorded trace, with every policy of the group replaying it. Recordings
// are scheduled before replays so the worker pool starts the expensive
// application executions as early as possible; replays (cheap,
// LLC-only) fill in behind them. Single-policy groups run execution-driven
// unless their recording already exists. The returned error is the
// earliest (by batch position) failure, matching what a sequential pass
// would report first.
func (s *Session) Prefetch(points []Datapoint) error {
	return s.PrefetchObserved(points, nil)
}

// PrefetchObserved is Prefetch with a progress callback: after each
// datapoint of the deduplicated batch completes (success or error),
// onProgress is invoked with the number done so far and the batch total.
// It is called concurrently from the worker pool, so it must be
// goroutine-safe; `done` values are each delivered exactly once but may
// arrive out of order (a broadcast group delivers all of its datapoints
// when the group's fan-out completes). A nil onProgress makes this
// identical to Prefetch. Long-running callers (the graspd job service)
// use the callback to surface per-job completion percentages while a
// batch is in flight.
func (s *Session) PrefetchObserved(points []Datapoint, onProgress func(done, total int)) error {
	return s.PrefetchObservedCtx(context.Background(), points, onProgress)
}

// PrefetchObservedCtx is PrefetchObserved with cooperative cancellation
// and per-unit fault containment. Cancellation is checked before each
// scheduling unit starts and at chunk boundaries inside recordings and
// replays, so a cancelled batch unwinds within one chunk of work; units
// already complete stay cached, unfinished ones are dropped (transient
// semantics) and recompute identically on a later request. A panic inside
// one unit's simulation fails only that unit's datapoints — the stack is
// attached to their error — and the rest of the batch keeps running.
func (s *Session) PrefetchObservedCtx(ctx context.Context, points []Datapoint, onProgress func(done, total int)) error {
	uniq := points
	if len(points) > 1 {
		seen := make(map[Datapoint]bool, len(points))
		uniq = make([]Datapoint, 0, len(points))
		for _, p := range points {
			if !seen[p] {
				seen[p] = true
				uniq = append(uniq, p)
			}
		}
	}
	// Phase 0 — dataset-parallel workload preparation: fan the batch's
	// DISTINCT (dataset, reorder) workloads out over the pool before any
	// recording or simulation is scheduled. At full scale the expensive
	// reorderings (one Gorder pass per dataset) are the longest-pole
	// inputs of the recording phase; preparing them all up front lets a
	// multi-core host reorder every dataset concurrently instead of
	// discovering each reordering serially behind a recording slot.
	// Errors are dropped here — the memo caches them, and they re-surface
	// attributed to the first datapoint that needs the failed workload.
	type workloadKey struct {
		ds, reorder string
		weighted    bool
	}
	seenW := make(map[workloadKey]bool, len(uniq))
	var warm []workloadKey
	for _, p := range uniq {
		g := p.group()
		wk := workloadKey{ds: g.ds, reorder: g.reorder, weighted: g.app == "SSSP"}
		if !seenW[wk] {
			seenW[wk] = true
			warm = append(warm, wk)
		}
	}
	forEachParallel(len(warm), func(i int) {
		// Swallow panics too: a workload whose preparation panics must not
		// kill the warm-up worker — the memo drops the entry, and the panic
		// recurs (contained) under the first unit that needs the workload.
		defer func() { _ = recover() }()
		if ctx.Err() != nil {
			return
		}
		_, _ = s.Workload(warm[i].ds, warm[i].reorder, warm[i].weighted)
	})
	// Group the result datapoints; groups with several consumers of one
	// execution — two or more policies, or a policy plus a declared trace
	// — or whose full recording already exists go through the replay
	// engine. A declared trace counts as a consumer: recording once and
	// replaying the lone policy beats executing the application twice.
	counts := make(map[groupKey]int)
	declaredTrace := make(map[groupKey]bool)
	for _, p := range uniq {
		if p.Trace {
			declaredTrace[p.group()] = true
		} else {
			counts[p.group()]++
		}
	}
	replayGroup := make(map[groupKey]bool, len(counts))
	for k, n := range counts {
		replayGroup[k] = n > 1 || declaredTrace[k] || s.traceReady(k)
	}
	// Build the schedule. Each replay group becomes ONE broadcast unit:
	// the recording (the expensive application execution) followed by a
	// single decode-once fan-out serving every policy of the group — and
	// its declared trace, if any — so an N-policy group pays one decode
	// instead of N and its replays run concurrently even inside one
	// worker slot (DESIGN.md Sec. 12). Trace-only groups record their
	// bounded prefix; everything else runs execution-driven as its own
	// unit. Units carrying a recording are scheduled first, so the worker
	// pool starts every application execution as early as possible.
	const (
		unitBroadcast = iota
		unitTraceOnly
		unitSingle
	)
	type unit struct {
		kind  int
		group groupKey
		pts   []int // indices into uniq, batch order
	}
	var recUnits, restUnits []*unit
	byGroup := make(map[groupKey]*unit)
	for i, p := range uniq {
		k := p.group()
		switch {
		case replayGroup[k]:
			u := byGroup[k]
			if u == nil {
				u = &unit{kind: unitBroadcast, group: k}
				byGroup[k] = u
				recUnits = append(recUnits, u)
			}
			u.pts = append(u.pts, i)
		case p.Trace:
			u := byGroup[k]
			if u == nil {
				u = &unit{kind: unitTraceOnly, group: k}
				byGroup[k] = u
				recUnits = append(recUnits, u)
			}
			u.pts = append(u.pts, i)
		default:
			restUnits = append(restUnits, &unit{kind: unitSingle, group: k, pts: []int{i}})
		}
	}
	units := append(recUnits, restUnits...)
	errs := make([]error, len(uniq))
	var completed atomic.Int64
	note := func(i int, err error) {
		errs[i] = err
		if onProgress != nil {
			onProgress(int(completed.Add(1)), len(uniq))
		}
	}
	// runUnit executes one scheduling unit with fault containment: a panic
	// anywhere under it (a policy bug, a corrupted dataset) becomes the
	// unit's error with the stack attached, instead of escaping the worker
	// goroutine and killing the process. A sentinel abort (cooperative
	// cancellation surfacing from a sink with no error return path) is
	// unwrapped to its cause. pointErr carries per-datapoint failures that
	// must not fail the whole unit.
	runUnit := func(u *unit) (uerr error, pointErr map[int]error) {
		defer func() {
			if p := recover(); p != nil {
				if aerr, ok := trace.AbortError(p); ok {
					uerr = aerr
					return
				}
				uerr = fmt.Errorf("exp: datapoint panicked: %v\n%s", p, debug.Stack())
			}
		}()
		if err := trace.ContextErr(ctx); err != nil {
			return err, nil
		}
		switch u.kind {
		case unitBroadcast:
			return s.broadcastUnit(ctx, u.group, u.pts, uniq)
		case unitTraceOnly:
			// Trace-only groups record just the bounded prefix the OPT
			// study consumes.
			_, err := s.optRecording(ctx, u.group)
			return err, nil
		default:
			_, err := s.result(ctx, uniq[u.pts[0]], false)
			return err, nil
		}
	}
	forEachParallel(len(units), func(j int) {
		u := units[j]
		uerr, pointErr := runUnit(u)
		for _, i := range u.pts {
			err := uerr
			if err == nil {
				err = pointErr[i]
			}
			note(i, err)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// broadcastUnit serves one replay group of a Prefetch batch: it obtains
// the group's full recording and fans ONE decode pass out to every
// not-yet-cached policy result of the group, publishing each through the
// singleflight result cache (so concurrent Result callers and later
// requests share them; if another goroutine is already computing one of
// the keys, its outcome wins — identical by the replay-equivalence
// invariant). A declared trace point of the group is satisfied by the
// recording itself. The group-wide error and any per-point errors are
// returned for the caller to attribute.
func (s *Session) broadcastUnit(ctx context.Context, k groupKey, ptIdx []int, uniq []Datapoint) (error, map[int]error) {
	pointErr := make(map[int]error)
	uerr := s.withRecording(ctx, k, false, func(rec recording) error {
		var pending []int
		for _, i := range ptIdx {
			if uniq[i].Trace || s.results.ready(s.resultKey(uniq[i])) {
				continue
			}
			// Validate the policy up front so one bad name fails only its
			// own datapoint (as a sequential pass would), not the fan-out.
			if _, err := sim.PolicyByName(uniq[i].Policy); err != nil {
				pointErr[i] = err
				continue
			}
			pending = append(pending, i)
		}
		if len(pending) == 0 {
			return nil
		}
		w, err := s.Workload(k.ds, k.reorder, k.app == "SSSP")
		if err != nil {
			return err
		}
		specs := make([]sim.Spec, len(pending))
		for j, i := range pending {
			p := uniq[i]
			specs[j] = sim.Spec{App: p.App, Layout: p.Layout, Policy: p.Policy, HCfg: s.Cfg.HCfg}
		}
		start := time.Now()
		results, err := sim.BroadcastResultsCtx(ctx, rec.tr, specs, w.Dataset.Name, rec.bounds)
		s.phase.replay.Add(int64(time.Since(start)))
		if err != nil {
			return err
		}
		s.broadcasts.Add(1)
		for j, i := range pending {
			r := results[j]
			_, derr := s.results.doTransient(s.resultKey(uniq[i]), func() (sim.Result, error) {
				s.simRuns.Add(1)
				return r, nil
			})
			pointErr[i] = derr
		}
		return nil
	})
	return uerr, pointErr
}

// forEachParallel invokes work(i) for every i in [0, n) from a pool of at
// most GOMAXPROCS goroutines. It is the fan-out primitive shared by
// Prefetch and the experiments that run non-session work (OPT replays,
// region-scale sweeps) in parallel.
func forEachParallel(n int, work func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			work(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				work(i)
			}
		}()
	}
	wg.Wait()
}

// matrixPoints declares the datapoints of one scheme matrix: the RRIP
// baseline plus every scheme, over apps x datasets under one reordering.
func matrixPoints(datasets []string, reorderName string, appNames, schemes []string) []Datapoint {
	var out []Datapoint
	for _, app := range appNames {
		for _, ds := range datasets {
			out = append(out, Datapoint{DS: ds, Reorder: reorderName, App: app,
				Layout: apps.LayoutMerged, Policy: "RRIP"})
			for _, scheme := range schemes {
				out = append(out, Datapoint{DS: ds, Reorder: reorderName, App: app,
					Layout: apps.LayoutMerged, Policy: scheme})
			}
		}
	}
	return out
}

// tracePoints declares the LLC traces of the OPT study (apps x high-skew
// datasets).
func tracePoints() []Datapoint {
	var out []Datapoint
	for _, app := range apps.Names() {
		for _, ds := range highSkewNames() {
			out = append(out, Datapoint{DS: ds, App: app, Trace: true})
		}
	}
	return out
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string // paper artifact id: table1, fig5, ...
	Title string
	Run   func(s *Session, w io.Writer) error
	// Points declares the simulation datapoints the experiment will read,
	// for batch fan-out by RunAll (nil: the experiment does no session
	// work, or does work — like fig10a's native timing — that must not be
	// precomputed).
	Points func() []Datapoint
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: skew of the graph datasets", Run: runTable1},
		{ID: "table4", Title: "Table IV: effect of Property Array merging", Run: runTable4, Points: table4Points},
		{ID: "fig2", Title: "Fig. 2: LLC accesses and misses inside/outside the Property Array", Run: runFig2, Points: fig2Points},
		{ID: "fig5", Title: "Fig. 5: LLC miss reduction over RRIP", Run: runFig5, Points: fig5Points},
		{ID: "fig6", Title: "Fig. 6: speed-up over RRIP", Run: runFig6, Points: fig5Points},
		{ID: "fig7", Title: "Fig. 7: impact of GRASP features", Run: runFig7, Points: fig7Points},
		{ID: "fig8", Title: "Fig. 8: pinning-based schemes, high-skew datasets", Run: runFig8, Points: fig8Points},
		{ID: "fig9", Title: "Fig. 9: low-/no-skew datasets (fr, uni)", Run: runFig9, Points: fig9Points},
		{ID: "fig10a", Title: "Fig. 10a: net speed-up of reordering techniques (incl. cost)", Run: runFig10a},
		{ID: "fig10b", Title: "Fig. 10b: GRASP on top of reordering techniques", Run: runFig10b, Points: fig10bPoints},
		{ID: "fig11", Title: "Fig. 11: misses eliminated over LRU (RRIP, GRASP, OPT)", Run: runFig11, Points: tracePoints},
		{ID: "table7", Title: "Table VII: misses eliminated over LRU across LLC sizes", Run: runTable7, Points: tracePoints},
		{ID: "noreorder", Title: "Extra: prior schemes without vertex reordering (Sec. V-A)", Run: runNoReorder, Points: noReorderPoints},
		{ID: "ablation-region", Title: "Extra: sensitivity to the High-Reuse-Region size", Run: runAblationRegion, Points: ablationRegionPoints},
		{ID: "ablation-bases", Title: "Extra: GRASP over LRU/PLRU/DIP base schemes (Sec. III-C)", Run: runAblationBases, Points: ablationBasesPoints},
		{ID: "ablation-ship", Title: "Extra: SHiP-PC vs SHiP-MEM signatures (Sec. II-F)", Run: runAblationSHiP, Points: ablationSHiPPoints},
		{ID: "streaming", Title: "Extra: reordering staleness under graph updates (Sec. VI)", Run: runStreaming},
		{ID: "scenarios", Title: "Extra: every policy on the extension workloads (KCore, TC)", Run: runScenarios, Points: scenarioPoints},
		{ID: "corun", Title: "Extra: multi-programmed co-runs, weighted speedup and fairness", Run: runCorun, Points: corunPoints},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q; known: %v", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// RunObserver brackets each experiment executed by RunAll; either callback
// may be nil.
type RunObserver struct {
	// Before runs immediately before the experiment's output is written.
	Before func(e Experiment)
	// After runs once the output is written, with the wall-clock time the
	// experiment body took (excluding the shared prefetch phase).
	After func(e Experiment, elapsed time.Duration)
}

// RunAll executes the experiments with batch fan-out: the union of their
// declared datapoints is computed first on the session's parallel worker
// pool (deduplicated, so datapoints shared between experiments — fig5/fig6,
// fig11/table7 — are simulated once), then each experiment body runs in
// paper order against the warm caches and writes to w. Because bodies run
// sequentially against identical cached results, the per-experiment output
// is byte-identical to a plain sequential run; experiments that time native
// execution (fig10a) also see an otherwise-idle machine.
func RunAll(s *Session, exps []Experiment, w io.Writer, obs RunObserver) error {
	var points []Datapoint
	for _, e := range exps {
		if e.Points != nil {
			points = append(points, e.Points()...)
		}
	}
	if err := s.Prefetch(points); err != nil {
		// Attribute the failure to the experiment that declared the bad
		// datapoint: every point is cached (success or error) by now, so
		// re-walking the declarations in order is instant and finds the
		// same failure a sequential run would have reported first.
		for _, e := range exps {
			if e.Points == nil {
				continue
			}
			for _, p := range e.Points() {
				if perr := s.compute(p); perr != nil {
					return fmt.Errorf("%s: %w", e.ID, perr)
				}
			}
		}
		return err
	}
	for _, e := range exps {
		if obs.Before != nil {
			obs.Before(e)
		}
		start := time.Now()
		if err := e.Run(s, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if obs.After != nil {
			obs.After(e, time.Since(start))
		}
	}
	return nil
}

// highSkewNames returns the five main-evaluation dataset names in paper
// order.
func highSkewNames() []string {
	var out []string
	for _, d := range graph.HighSkewDatasets() {
		out = append(out, d.Name)
	}
	return out
}
