// Package exp is the experiment harness: every table and figure of the
// paper's evaluation has a named experiment that regenerates it on the
// synthetic datasets (see DESIGN.md Sec. 4 for the per-experiment index and
// EXPERIMENTS.md for recorded results).
package exp

import (
	"fmt"
	"io"
	"sort"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/graph"
	"grasp/internal/sim"
)

// Config controls experiment scale.
type Config struct {
	// ScaleDiv divides dataset sizes; 1 = full reproduction scale
	// (131072 vertices, 256KB LLC). Benchmarks use larger divisors.
	ScaleDiv uint32
	// HCfg is the simulated hierarchy. Zero value = default config scaled
	// to ScaleDiv (the LLC shrinks with the datasets to preserve the
	// footprint-to-capacity ratio).
	HCfg cache.HierarchyConfig
}

// DefaultConfig returns the full reproduction scale.
func DefaultConfig() Config {
	return Config{ScaleDiv: 1, HCfg: cache.DefaultHierarchyConfig()}
}

// ScaledConfig returns a configuration scaled down by div (power of two):
// datasets are div times smaller and the hierarchy shrinks with them.
func ScaledConfig(div uint32) Config {
	h := cache.DefaultHierarchyConfig()
	shrink := func(c cache.Config) cache.Config {
		s := c.SizeBytes / uint64(div)
		min := uint64(c.Ways) * cache.BlockSize * 2
		if s < min {
			s = min
		}
		return cache.Config{SizeBytes: s, Ways: c.Ways}
	}
	h.L1 = shrink(h.L1)
	h.L2 = shrink(h.L2)
	h.LLC = shrink(h.LLC)
	return Config{ScaleDiv: div, HCfg: h}
}

// Session caches prepared workloads and simulation results so experiments
// sharing datapoints (e.g. fig5 and fig6) do not repeat work.
type Session struct {
	Cfg       Config
	workloads map[string]*sim.Workload
	results   map[string]sim.Result
	traces    map[string]tracePair
}

type tracePair struct {
	addrs  []uint64
	bounds [][2]uint64
}

// NewSession creates a session.
func NewSession(cfg Config) *Session {
	return &Session{Cfg: cfg,
		workloads: make(map[string]*sim.Workload),
		results:   make(map[string]sim.Result),
		traces:    make(map[string]tracePair)}
}

// LLCTrace returns the recorded LLC access trace and ABR bounds for one
// (dataset, app) datapoint under DBG reordering, collecting and caching it
// on first use (used by the OPT experiments, which replay one trace at
// many LLC sizes).
func (s *Session) LLCTrace(dsName, app string) ([]uint64, [][2]uint64, error) {
	key := dsName + "|" + app
	if tp, ok := s.traces[key]; ok {
		return tp.addrs, tp.bounds, nil
	}
	w, err := s.Workload(dsName, "DBG", app == "SSSP")
	if err != nil {
		return nil, nil, err
	}
	addrs, err := sim.CollectLLCTrace(w, app, apps.LayoutMerged, s.Cfg.HCfg, optTraceCap)
	if err != nil {
		return nil, nil, err
	}
	bounds, err := sim.ABRBoundsFor(w, app, apps.LayoutMerged)
	if err != nil {
		return nil, nil, err
	}
	s.traces[key] = tracePair{addrs: addrs, bounds: bounds}
	return addrs, bounds, nil
}

// Workload returns the prepared (dataset, reorder) pair, preparing and
// caching it on first use.
func (s *Session) Workload(dsName, reorderName string, weighted bool) (*sim.Workload, error) {
	key := fmt.Sprintf("%s|%s|%v", dsName, reorderName, weighted)
	if w, ok := s.workloads[key]; ok {
		return w, nil
	}
	ds, err := graph.DatasetByName(dsName)
	if err != nil {
		return nil, err
	}
	w, err := sim.PrepareWorkload(ds, reorderName, weighted, s.Cfg.ScaleDiv)
	if err != nil {
		return nil, err
	}
	s.workloads[key] = w
	return w, nil
}

// Result returns the metrics of one simulation datapoint, running and
// caching it on first use.
func (s *Session) Result(dsName, reorderName, app string, layout apps.Layout, policy string) (sim.Result, error) {
	key := fmt.Sprintf("%s|%s|%s|%v|%s", dsName, reorderName, app, layout, policy)
	if r, ok := s.results[key]; ok {
		return r, nil
	}
	weighted := app == "SSSP"
	w, err := s.Workload(dsName, reorderName, weighted)
	if err != nil {
		return sim.Result{}, err
	}
	r, err := sim.Run(w, sim.Spec{App: app, Layout: layout, Policy: policy, HCfg: s.Cfg.HCfg})
	if err != nil {
		return sim.Result{}, err
	}
	s.results[key] = r
	return r, nil
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string // paper artifact id: table1, fig5, ...
	Title string
	Run   func(s *Session, w io.Writer) error
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: skew of the graph datasets", Run: runTable1},
		{ID: "table4", Title: "Table IV: effect of Property Array merging", Run: runTable4},
		{ID: "fig2", Title: "Fig. 2: LLC accesses and misses inside/outside the Property Array", Run: runFig2},
		{ID: "fig5", Title: "Fig. 5: LLC miss reduction over RRIP", Run: runFig5},
		{ID: "fig6", Title: "Fig. 6: speed-up over RRIP", Run: runFig6},
		{ID: "fig7", Title: "Fig. 7: impact of GRASP features", Run: runFig7},
		{ID: "fig8", Title: "Fig. 8: pinning-based schemes, high-skew datasets", Run: runFig8},
		{ID: "fig9", Title: "Fig. 9: low-/no-skew datasets (fr, uni)", Run: runFig9},
		{ID: "fig10a", Title: "Fig. 10a: net speed-up of reordering techniques (incl. cost)", Run: runFig10a},
		{ID: "fig10b", Title: "Fig. 10b: GRASP on top of reordering techniques", Run: runFig10b},
		{ID: "fig11", Title: "Fig. 11: misses eliminated over LRU (RRIP, GRASP, OPT)", Run: runFig11},
		{ID: "table7", Title: "Table VII: misses eliminated over LRU across LLC sizes", Run: runTable7},
		{ID: "noreorder", Title: "Extra: prior schemes without vertex reordering (Sec. V-A)", Run: runNoReorder},
		{ID: "ablation-region", Title: "Extra: sensitivity to the High-Reuse-Region size", Run: runAblationRegion},
		{ID: "ablation-bases", Title: "Extra: GRASP over LRU/PLRU/DIP base schemes (Sec. III-C)", Run: runAblationBases},
		{ID: "ablation-ship", Title: "Extra: SHiP-PC vs SHiP-MEM signatures (Sec. II-F)", Run: runAblationSHiP},
		{ID: "streaming", Title: "Extra: reordering staleness under graph updates (Sec. VI)", Run: runStreaming},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q; known: %v", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// highSkewNames returns the five main-evaluation dataset names in paper
// order.
func highSkewNames() []string {
	var out []string
	for _, d := range graph.HighSkewDatasets() {
		out = append(out, d.Name)
	}
	return out
}
