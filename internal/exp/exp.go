// Package exp is the experiment harness: every table and figure of the
// paper's evaluation has a named experiment that regenerates it on the
// synthetic datasets (see DESIGN.md Sec. 4 for the per-experiment index).
//
// The harness is a concurrent experiment engine (DESIGN.md Sec. 6): a
// Session is safe for use from many goroutines, deduplicates concurrent
// requests for the same datapoint singleflight-style, and can fan a batch
// of pre-declared datapoints out over a worker pool. Experiments declare
// their datapoints up front (Experiment.Points) so RunAll computes the
// union in parallel and then renders each experiment, in order, from the
// warm cache — producing output byte-identical to a sequential run.
package exp

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/graph"
	"grasp/internal/sim"
)

// Config controls experiment scale.
type Config struct {
	// ScaleDiv divides dataset sizes; 1 = full reproduction scale
	// (131072 vertices, 256KB LLC). Benchmarks use larger divisors.
	ScaleDiv uint32
	// HCfg is the simulated hierarchy. Zero value = default config scaled
	// to ScaleDiv (the LLC shrinks with the datasets to preserve the
	// footprint-to-capacity ratio).
	HCfg cache.HierarchyConfig
}

// DefaultConfig returns the full reproduction scale.
func DefaultConfig() Config {
	return Config{ScaleDiv: 1, HCfg: cache.DefaultHierarchyConfig()}
}

// ScaledConfig returns a configuration scaled down by div (power of two):
// datasets are div times smaller and the hierarchy shrinks with them.
func ScaledConfig(div uint32) Config {
	h := cache.DefaultHierarchyConfig()
	shrink := func(c cache.Config) cache.Config {
		s := c.SizeBytes / uint64(div)
		min := uint64(c.Ways) * cache.BlockSize * 2
		if s < min {
			s = min
		}
		return cache.Config{SizeBytes: s, Ways: c.Ways}
	}
	h.L1 = shrink(h.L1)
	h.L2 = shrink(h.L2)
	h.LLC = shrink(h.LLC)
	return Config{ScaleDiv: div, HCfg: h}
}

// flightCall is one in-flight or completed computation in a flightCache.
type flightCall[V any] struct {
	done chan struct{} // closed when val/err are set
	val  V
	err  error
}

// flightCache is a concurrency-safe memoization table with singleflight
// semantics: the first goroutine to request a key computes it with no lock
// held; goroutines that request the same key while it is in flight block
// until that one computation finishes and share its outcome. Errors are
// cached too — every computation in this package is deterministic, so a
// retry would fail identically.
type flightCache[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
}

func newFlightCache[V any]() *flightCache[V] {
	return &flightCache[V]{m: make(map[string]*flightCall[V])}
}

func (f *flightCache[V]) do(key string, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()
	c.val, c.err = fn()
	close(c.done)
	return c.val, c.err
}

func (f *flightCache[V]) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// deleteMatching drops every memoized entry whose key satisfies match.
// Callers already blocked on an in-flight computation are unaffected —
// they hold the call struct directly and still receive its outcome — the
// entry just stops being findable, so the next request recomputes.
func (f *flightCache[V]) deleteMatching(match func(key string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k := range f.m {
		if match(k) {
			delete(f.m, k)
		}
	}
}

// Session caches prepared workloads, simulation results and LLC traces so
// experiments sharing datapoints (e.g. fig5 and fig6) do not repeat work.
// It is safe for concurrent use: simultaneous requests for one datapoint —
// whether from Prefetch workers or from experiments run in parallel by the
// caller — are deduplicated so each datapoint is computed exactly once.
type Session struct {
	Cfg       Config
	workloads *flightCache[*sim.Workload]
	results   *flightCache[sim.Result]
	traces    *flightCache[tracePair]
	simRuns   atomic.Uint64 // number of sim.Run invocations (dedup observability)

	stampMu sync.Mutex
	stamps  map[string]fileStamp // graph-file spec -> last observed stamp
}

// fileStamp is one observed (size, mtime) state of a graph file.
type fileStamp struct {
	size    int64
	modNano int64
}

// key renders the stamp as the cache-key suffix for dsName.
func (st fileStamp) key(dsName string) string {
	return fmt.Sprintf("%s@%d.%d", dsName, st.size, st.modNano)
}

type tracePair struct {
	addrs  []uint64
	bounds [][2]uint64
}

// NewSession creates a session.
func NewSession(cfg Config) *Session {
	return &Session{Cfg: cfg,
		workloads: newFlightCache[*sim.Workload](),
		results:   newFlightCache[sim.Result](),
		traces:    newFlightCache[tracePair](),
		stamps:    make(map[string]fileStamp)}
}

// SimRuns returns the number of simulations the session has executed —
// cache hits and singleflight-merged requests do not count, so under any
// access pattern this equals the number of distinct result datapoints.
func (s *Session) SimRuns() uint64 { return s.simRuns.Load() }

// datasetKey returns the cache-key component for a dataset spec. Specs
// that resolve to synthetic datasets key as themselves (generation is
// deterministic — and a stray file shadowing a builtin name is ignored,
// matching graph.Resolve's precedence), but a graph-file spec is suffixed
// with the file's (size, mtime) stamp: a Session can outlive many edits
// of a file (graspd keeps one per scale for the daemon's lifetime), and
// without the stamp the workload/result/trace memos would keep serving
// the parse of the original bytes after the graph registry has
// re-ingested the edited file. When a file's stamp advances, every entry
// under any other stamp of that file is evicted from all three memos —
// they pin whole parsed/reordered graphs and LLC traces, which would
// otherwise leak for the session's lifetime, one generation per edit
// (evicting all generations, not just the recorded one, also sweeps
// entries created under a rolled-back stamp, e.g. after a backup
// restore). Transitions are accepted only forward (never to an older
// mtime): a goroutine still holding a stat taken just before a concurrent
// edit must not roll the recorded stamp back, evicting the newer entries
// and thrashing the caches; it keys under what it observed and moves on
// (those entries persist until the next advance sweeps them — at most one
// stale generation, not one per edit).
func (s *Session) datasetKey(dsName string) string {
	ds, err := graph.Resolve(dsName)
	if err != nil || ds.Kind != graph.KindFile {
		return dsName
	}
	fi, err := os.Stat(ds.Path)
	if err != nil {
		return dsName
	}
	cur := fileStamp{size: fi.Size(), modNano: fi.ModTime().UnixNano()}
	s.stampMu.Lock()
	prev, seen := s.stamps[dsName]
	advance := !seen || cur.modNano > prev.modNano ||
		(cur.modNano == prev.modNano && cur.size != prev.size)
	if advance {
		s.stamps[dsName] = cur
	}
	s.stampMu.Unlock()
	if seen && advance {
		// Sweep every generation but the current one. Keying is atomic in
		// the memos (do() inserts under the caller's full key), so entries
		// being computed under cur's key right now are untouched.
		curKey := cur.key(dsName)
		for _, c := range []interface{ deleteMatching(func(string) bool) }{
			s.workloads, s.results, s.traces,
		} {
			c.deleteMatching(func(k string) bool {
				return strings.HasPrefix(k, dsName+"@") && !strings.HasPrefix(k, curKey+"|")
			})
		}
	}
	return cur.key(dsName)
}

// LLCTrace returns the recorded LLC access trace and ABR bounds for one
// (dataset, app) datapoint under DBG reordering, collecting and caching it
// on first use (used by the OPT experiments, which replay one trace at
// many LLC sizes).
func (s *Session) LLCTrace(dsName, app string) ([]uint64, [][2]uint64, error) {
	key := s.datasetKey(dsName) + "|" + app
	tp, err := s.traces.do(key, func() (tracePair, error) {
		w, err := s.Workload(dsName, "DBG", app == "SSSP")
		if err != nil {
			return tracePair{}, err
		}
		addrs, err := sim.CollectLLCTrace(w, app, apps.LayoutMerged, s.Cfg.HCfg, optTraceCap)
		if err != nil {
			return tracePair{}, err
		}
		bounds, err := sim.ABRBoundsFor(w, app, apps.LayoutMerged)
		if err != nil {
			return tracePair{}, err
		}
		return tracePair{addrs: addrs, bounds: bounds}, nil
	})
	return tp.addrs, tp.bounds, err
}

// Workload returns the prepared (dataset, reorder) pair, preparing and
// caching it on first use. dsName goes through the dataset registry's
// resolver, so it can be a paper dataset name or a graph-file path
// (re-prepared if the file changes; see datasetKey).
func (s *Session) Workload(dsName, reorderName string, weighted bool) (*sim.Workload, error) {
	key := fmt.Sprintf("%s|%s|%v", s.datasetKey(dsName), reorderName, weighted)
	return s.workloads.do(key, func() (*sim.Workload, error) {
		ds, err := graph.Resolve(dsName)
		if err != nil {
			return nil, err
		}
		return sim.PrepareWorkload(ds, reorderName, weighted, s.Cfg.ScaleDiv)
	})
}

// Result returns the metrics of one simulation datapoint, running and
// caching it on first use.
func (s *Session) Result(dsName, reorderName, app string, layout apps.Layout, policy string) (sim.Result, error) {
	key := fmt.Sprintf("%s|%s|%s|%v|%s", s.datasetKey(dsName), reorderName, app, layout, policy)
	return s.results.do(key, func() (sim.Result, error) {
		weighted := app == "SSSP"
		w, err := s.Workload(dsName, reorderName, weighted)
		if err != nil {
			return sim.Result{}, err
		}
		s.simRuns.Add(1)
		return sim.Run(w, sim.Spec{App: app, Layout: layout, Policy: policy, HCfg: s.Cfg.HCfg})
	})
}

// Datapoint names one unit of simulation work an experiment will consume:
// either one (dataset, reorder, app, layout, policy) result or, with Trace
// set, one recorded (dataset, app) LLC trace.
type Datapoint struct {
	DS, Reorder, App string
	Layout           apps.Layout
	Policy           string
	Trace            bool // declare the LLC trace instead of a result (Reorder/Layout/Policy ignored)
}

// compute materializes the datapoint into the session caches.
func (s *Session) compute(p Datapoint) error {
	if p.Trace {
		_, _, err := s.LLCTrace(p.DS, p.App)
		return err
	}
	_, err := s.Result(p.DS, p.Reorder, p.App, p.Layout, p.Policy)
	return err
}

// Prefetch computes the given datapoints on a pool of GOMAXPROCS workers,
// leaving them cached in the session. The batch is deduplicated up front
// (a duplicate entry would park a worker slot blocking on the in-flight
// original instead of doing distinct work); datapoints that merely share a
// workload are deduplicated by the singleflight caches, so no simulation
// runs twice either way. The returned error is the earliest (by batch
// position) failure, matching what a sequential pass would report first.
func (s *Session) Prefetch(points []Datapoint) error {
	return s.PrefetchObserved(points, nil)
}

// PrefetchObserved is Prefetch with a progress callback: after each
// datapoint of the deduplicated batch completes (success or error),
// onProgress is invoked with the number done so far and the batch total.
// It is called concurrently from the worker pool, so it must be
// goroutine-safe; `done` values are each delivered exactly once but may
// arrive out of order. A nil onProgress makes this identical to Prefetch.
// Long-running callers (the graspd job service) use the callback to
// surface per-job completion percentages while a batch is in flight.
func (s *Session) PrefetchObserved(points []Datapoint, onProgress func(done, total int)) error {
	uniq := points
	if len(points) > 1 {
		seen := make(map[Datapoint]bool, len(points))
		uniq = make([]Datapoint, 0, len(points))
		for _, p := range points {
			if !seen[p] {
				seen[p] = true
				uniq = append(uniq, p)
			}
		}
	}
	errs := make([]error, len(uniq))
	var completed atomic.Int64
	forEachParallel(len(uniq), func(i int) {
		errs[i] = s.compute(uniq[i])
		if onProgress != nil {
			onProgress(int(completed.Add(1)), len(uniq))
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachParallel invokes work(i) for every i in [0, n) from a pool of at
// most GOMAXPROCS goroutines. It is the fan-out primitive shared by
// Prefetch and the experiments that run non-session work (OPT replays,
// region-scale sweeps) in parallel.
func forEachParallel(n int, work func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			work(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				work(i)
			}
		}()
	}
	wg.Wait()
}

// matrixPoints declares the datapoints of one scheme matrix: the RRIP
// baseline plus every scheme, over apps x datasets under one reordering.
func matrixPoints(datasets []string, reorderName string, appNames, schemes []string) []Datapoint {
	var out []Datapoint
	for _, app := range appNames {
		for _, ds := range datasets {
			out = append(out, Datapoint{DS: ds, Reorder: reorderName, App: app,
				Layout: apps.LayoutMerged, Policy: "RRIP"})
			for _, scheme := range schemes {
				out = append(out, Datapoint{DS: ds, Reorder: reorderName, App: app,
					Layout: apps.LayoutMerged, Policy: scheme})
			}
		}
	}
	return out
}

// tracePoints declares the LLC traces of the OPT study (apps x high-skew
// datasets).
func tracePoints() []Datapoint {
	var out []Datapoint
	for _, app := range apps.Names() {
		for _, ds := range highSkewNames() {
			out = append(out, Datapoint{DS: ds, App: app, Trace: true})
		}
	}
	return out
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string // paper artifact id: table1, fig5, ...
	Title string
	Run   func(s *Session, w io.Writer) error
	// Points declares the simulation datapoints the experiment will read,
	// for batch fan-out by RunAll (nil: the experiment does no session
	// work, or does work — like fig10a's native timing — that must not be
	// precomputed).
	Points func() []Datapoint
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: skew of the graph datasets", Run: runTable1},
		{ID: "table4", Title: "Table IV: effect of Property Array merging", Run: runTable4, Points: table4Points},
		{ID: "fig2", Title: "Fig. 2: LLC accesses and misses inside/outside the Property Array", Run: runFig2, Points: fig2Points},
		{ID: "fig5", Title: "Fig. 5: LLC miss reduction over RRIP", Run: runFig5, Points: fig5Points},
		{ID: "fig6", Title: "Fig. 6: speed-up over RRIP", Run: runFig6, Points: fig5Points},
		{ID: "fig7", Title: "Fig. 7: impact of GRASP features", Run: runFig7, Points: fig7Points},
		{ID: "fig8", Title: "Fig. 8: pinning-based schemes, high-skew datasets", Run: runFig8, Points: fig8Points},
		{ID: "fig9", Title: "Fig. 9: low-/no-skew datasets (fr, uni)", Run: runFig9, Points: fig9Points},
		{ID: "fig10a", Title: "Fig. 10a: net speed-up of reordering techniques (incl. cost)", Run: runFig10a},
		{ID: "fig10b", Title: "Fig. 10b: GRASP on top of reordering techniques", Run: runFig10b, Points: fig10bPoints},
		{ID: "fig11", Title: "Fig. 11: misses eliminated over LRU (RRIP, GRASP, OPT)", Run: runFig11, Points: tracePoints},
		{ID: "table7", Title: "Table VII: misses eliminated over LRU across LLC sizes", Run: runTable7, Points: tracePoints},
		{ID: "noreorder", Title: "Extra: prior schemes without vertex reordering (Sec. V-A)", Run: runNoReorder, Points: noReorderPoints},
		{ID: "ablation-region", Title: "Extra: sensitivity to the High-Reuse-Region size", Run: runAblationRegion, Points: ablationRegionPoints},
		{ID: "ablation-bases", Title: "Extra: GRASP over LRU/PLRU/DIP base schemes (Sec. III-C)", Run: runAblationBases, Points: ablationBasesPoints},
		{ID: "ablation-ship", Title: "Extra: SHiP-PC vs SHiP-MEM signatures (Sec. II-F)", Run: runAblationSHiP, Points: ablationSHiPPoints},
		{ID: "streaming", Title: "Extra: reordering staleness under graph updates (Sec. VI)", Run: runStreaming},
		{ID: "scenarios", Title: "Extra: every policy on the extension workloads (KCore, TC)", Run: runScenarios, Points: scenarioPoints},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q; known: %v", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// RunObserver brackets each experiment executed by RunAll; either callback
// may be nil.
type RunObserver struct {
	// Before runs immediately before the experiment's output is written.
	Before func(e Experiment)
	// After runs once the output is written, with the wall-clock time the
	// experiment body took (excluding the shared prefetch phase).
	After func(e Experiment, elapsed time.Duration)
}

// RunAll executes the experiments with batch fan-out: the union of their
// declared datapoints is computed first on the session's parallel worker
// pool (deduplicated, so datapoints shared between experiments — fig5/fig6,
// fig11/table7 — are simulated once), then each experiment body runs in
// paper order against the warm caches and writes to w. Because bodies run
// sequentially against identical cached results, the per-experiment output
// is byte-identical to a plain sequential run; experiments that time native
// execution (fig10a) also see an otherwise-idle machine.
func RunAll(s *Session, exps []Experiment, w io.Writer, obs RunObserver) error {
	var points []Datapoint
	for _, e := range exps {
		if e.Points != nil {
			points = append(points, e.Points()...)
		}
	}
	if err := s.Prefetch(points); err != nil {
		// Attribute the failure to the experiment that declared the bad
		// datapoint: every point is cached (success or error) by now, so
		// re-walking the declarations in order is instant and finds the
		// same failure a sequential run would have reported first.
		for _, e := range exps {
			if e.Points == nil {
				continue
			}
			for _, p := range e.Points() {
				if perr := s.compute(p); perr != nil {
					return fmt.Errorf("%s: %w", e.ID, perr)
				}
			}
		}
		return err
	}
	for _, e := range exps {
		if obs.Before != nil {
			obs.Before(e)
		}
		start := time.Now()
		if err := e.Run(s, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if obs.After != nil {
			obs.After(e, time.Since(start))
		}
	}
	return nil
}

// highSkewNames returns the five main-evaluation dataset names in paper
// order.
func highSkewNames() []string {
	var out []string
	for _, d := range graph.HighSkewDatasets() {
		out = append(out, d.Name)
	}
	return out
}
