package exp

import (
	"sync"
	"testing"

	"grasp/internal/apps"
	"grasp/internal/trace"
)

// TestBroadcastSmoke is the CI assertion that the decode-once broadcast
// path is actually taken for a multi-policy group: one Prefetch batch
// sweeping four policies over one (dataset, reorder, app, layout) group
// must record once, serve every policy through ONE broadcast fan-out, and
// bump both the session counter and the process-wide trace counters the
// graspd /metrics endpoint exports.
func TestBroadcastSmoke(t *testing.T) {
	t.Parallel()
	runs0, cons0 := trace.BroadcastStats()
	s := NewSession(ScaledConfig(64))
	schemes := []string{"GRASP", "LRU", "SHiP-MEM"}
	if err := s.Prefetch(matrixPoints([]string{"kr"}, "DBG", []string{"PR"}, schemes)); err != nil {
		t.Fatal(err)
	}
	if got := s.Broadcasts(); got != 1 {
		t.Fatalf("Broadcasts = %d, want 1 (one fan-out for the whole group)", got)
	}
	runs, cons := trace.BroadcastStats()
	if runs <= runs0 {
		t.Fatal("trace.BroadcastStats runs did not advance; broadcast path not taken")
	}
	// Other parallel tests may broadcast too, so assert only this batch's
	// contribution as a lower bound: >= one run with all four policies.
	if cons-cons0 < uint64(len(schemes)+1) {
		t.Fatalf("BroadcastStats consumers advanced by %d, want >= %d", cons-cons0, len(schemes)+1)
	}
	if got, want := s.SimRuns(), uint64(len(schemes)+1); got != want {
		t.Fatalf("SimRuns = %d, want %d (every policy exactly once)", got, want)
	}
	// The phase accounting must attribute the batch: a recording happened
	// and the replays were timed under the replay phase.
	ph := s.PhaseSeconds()
	if ph["record"] <= 0 || ph["replay"] <= 0 {
		t.Fatalf("phase breakdown missing record/replay time: %v", ph)
	}
}

// TestSessionTraceBudgetEvictsLRU: cached recordings are bounded by
// Config.TraceBytesBudget — recording a second group under a tiny budget
// evicts AND releases the least-recently-used recording (reclaiming its
// resident bytes eagerly), while the newest recording stays cached; the
// evicted group transparently re-records on next use.
func TestSessionTraceBudgetEvictsLRU(t *testing.T) {
	cfg := ScaledConfig(64)
	cfg.TraceBytesBudget = 1 // every newcomer evicts the previous recording
	s := NewSession(cfg)
	inUse0 := trace.MemoryInUse()

	groupA := matrixPoints([]string{"lj"}, "DBG", []string{"PR"}, []string{"GRASP"})
	if err := s.Prefetch(groupA); err != nil {
		t.Fatal(err)
	}
	kA := groupKey{ds: "lj", reorder: "DBG", app: "PR", layout: apps.LayoutMerged}
	if !s.traceReady(kA) {
		t.Fatal("group A recording not cached after its batch")
	}
	bytesA := s.TraceBytesRetained()
	if bytesA <= 0 {
		t.Fatal("recording not charged to the trace budget")
	}

	if err := s.Prefetch(matrixPoints([]string{"lj"}, "DBG", []string{"BFS"}, []string{"GRASP"})); err != nil {
		t.Fatal(err)
	}
	kB := groupKey{ds: "lj", reorder: "DBG", app: "BFS", layout: apps.LayoutMerged}
	if s.traceReady(kA) {
		t.Fatal("LRU recording (group A) not evicted by the byte budget")
	}
	if !s.traceReady(kB) {
		t.Fatal("most recent recording (group B) was evicted")
	}
	if n := s.traces.len(); n != 1 {
		t.Fatalf("trace memo holds %d entries after eviction, want 1", n)
	}
	// Eviction must have Released A: its resident bytes are back in the
	// process budget (B's are still charged).
	if got := trace.MemoryInUse() - inUse0; got != s.TraceBytesRetained() {
		t.Fatalf("process resident bytes grew by %d, want exactly the retained %d (eviction did not release)",
			got, s.TraceBytesRetained())
	}
	// The evicted group still serves correctly (re-records on demand).
	if _, err := s.Result("lj", "DBG", "PR", apps.LayoutMerged, "LRU"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentBroadcastEvictionHammer races >= 4-policy broadcast
// replays against continuous recording eviction (a one-byte trace budget
// evicts on every new recording) and session cache churn from concurrent
// Result calls across several groups. Every result must come out
// identical to an unpressured baseline: the pin/release protocol means an
// eviction can reclaim a trace mid-batch only after its replays finish,
// and evicted groups silently re-record. Run under -race in CI.
func TestConcurrentBroadcastEvictionHammer(t *testing.T) {
	t.Parallel()
	schemes := []string{"GRASP", "LRU", "SHiP-MEM", "Leeway"}
	apps3 := []string{"PR", "BFS", "BC"}

	baseline := NewSession(ScaledConfig(64))
	type key struct{ app, pol string }
	want := make(map[key]uint64)
	for _, app := range apps3 {
		for _, pol := range append([]string{"RRIP"}, schemes...) {
			r, err := baseline.Result("kr", "DBG", app, apps.LayoutMerged, pol)
			if err != nil {
				t.Fatal(err)
			}
			want[key{app, pol}] = r.LLC.Misses
		}
	}

	cfg := ScaledConfig(64)
	cfg.TraceBytesBudget = 1
	s := NewSession(cfg)
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	// Batch hammers: each goroutine sweeps a different app's 5-policy
	// group, so every batch's new recording evicts another goroutine's.
	for round := 0; round < 3; round++ {
		for _, app := range apps3 {
			wg.Add(1)
			go func(app string) {
				defer wg.Done()
				if err := s.Prefetch(matrixPoints([]string{"kr"}, "DBG", []string{app}, schemes)); err != nil {
					errc <- err
				}
			}(app)
		}
	}
	// Cache churners: single Result calls racing the batches (replay when
	// a recording survives, direct execution otherwise).
	for _, app := range apps3 {
		wg.Add(1)
		go func(app string) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := s.Result("kr", "DBG", app, apps.LayoutMerged, schemes[i]); err != nil {
					errc <- err
				}
			}
		}(app)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for _, app := range apps3 {
		for _, pol := range append([]string{"RRIP"}, schemes...) {
			r, err := s.Result("kr", "DBG", app, apps.LayoutMerged, pol)
			if err != nil {
				t.Fatal(err)
			}
			if r.LLC.Misses != want[key{app, pol}] {
				t.Fatalf("%s/%s: misses %d under eviction pressure, want %d",
					app, pol, r.LLC.Misses, want[key{app, pol}])
			}
		}
	}
}
