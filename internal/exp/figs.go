package exp

import (
	"fmt"
	"io"

	"grasp/internal/apps"
	"grasp/internal/stats"
)

// schemeMatrix runs schemes over all (app, dataset) datapoints with the
// given reordering and returns per-scheme slices of the metric values in
// (app-major, dataset-minor) order. The full matrix is prefetched on the
// worker pool first, so the sequential rendering loop below only reads
// cached results (and reports the first error at the same datapoint a
// fully sequential pass would).
func (s *Session) schemeMatrix(datasets []string, reorderName string, schemes []string,
	speedup bool, w io.Writer, title string) error {
	if err := s.Prefetch(matrixPoints(datasets, reorderName, apps.Names(), schemes)); err != nil {
		return err
	}
	t := stats.NewTable(append([]string{"App", "Dataset"}, schemes...)...)
	agg := make(map[string][]float64)
	for _, app := range apps.Names() {
		for _, ds := range datasets {
			base, err := s.Result(ds, reorderName, app, apps.LayoutMerged, "RRIP")
			if err != nil {
				return err
			}
			row := []string{app, ds}
			for _, scheme := range schemes {
				r, err := s.Result(ds, reorderName, app, apps.LayoutMerged, scheme)
				if err != nil {
					return err
				}
				var v float64
				if speedup {
					v = r.SpeedupPctOver(base)
				} else {
					v = r.MissReductionPctOver(base)
				}
				agg[scheme] = append(agg[scheme], v)
				row = append(row, fmt.Sprintf("%.1f", v))
			}
			t.AddRow(row...)
		}
	}
	// Aggregate row: geometric mean for speed-ups (as the paper reports),
	// arithmetic mean for miss reductions.
	aggRow := []string{"GM/avg", "all"}
	for _, scheme := range schemes {
		if speedup {
			aggRow = append(aggRow, fmt.Sprintf("%.1f", stats.GeoMeanSpeedupPct(agg[scheme])))
		} else {
			aggRow = append(aggRow, fmt.Sprintf("%.1f", stats.Mean(agg[scheme])))
		}
	}
	t.AddRow(aggRow...)
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, t)
	return err
}

// priorSchemes are the state-of-the-art history-based schemes of Figs. 5-6.
var priorSchemes = []string{"SHiP-MEM", "Hawkeye", "Leeway", "GRASP"}

// Datapoint declarations for RunAll's batch fan-out. Fig. 5 and Fig. 6
// share one declaration: they read identical simulations and differ only
// in the reported metric, so a batch containing both simulates the matrix
// once.
func fig5Points() []Datapoint {
	return matrixPoints(highSkewNames(), "DBG", apps.Names(), priorSchemes)
}

func fig7Points() []Datapoint {
	return matrixPoints(highSkewNames(), "DBG", apps.Names(),
		[]string{"RRIP+Hints", "GRASP (Insertion-Only)", "GRASP"})
}

func fig8Points() []Datapoint {
	return matrixPoints(highSkewNames(), "DBG", apps.Names(),
		[]string{"PIN-25", "PIN-50", "PIN-75", "PIN-100", "GRASP"})
}

func fig9Points() []Datapoint {
	return matrixPoints([]string{"fr", "uni"}, "DBG", apps.Names(),
		[]string{"PIN-75", "PIN-100", "GRASP"})
}

func noReorderPoints() []Datapoint {
	return matrixPoints(highSkewNames(), "Identity", apps.Names(),
		[]string{"SHiP-MEM", "Hawkeye", "Leeway", "GRASP"})
}

// runFig5 regenerates Fig. 5: % LLC misses eliminated over the RRIP
// baseline (DBG reordering). Paper averages: GRASP +6.4, Leeway +1.1,
// SHiP-MEM -4.8, Hawkeye -22.7.
func runFig5(s *Session, w io.Writer) error {
	return s.schemeMatrix(highSkewNames(), "DBG", priorSchemes, false, w,
		"% LLC misses eliminated over RRIP (higher is better)")
}

// runFig6 regenerates Fig. 6: speed-up over RRIP. Paper averages:
// GRASP +5.2, Leeway +0.9, SHiP-MEM -5.5, Hawkeye -16.2.
func runFig6(s *Session, w io.Writer) error {
	return s.schemeMatrix(highSkewNames(), "DBG", priorSchemes, true, w,
		"Speed-up (%) over RRIP (higher is better)")
}

// runFig7 regenerates Fig. 7: the GRASP feature ablation. Paper averages:
// RRIP+Hints +3.3, Insertion-Only +5.0, full GRASP +5.2.
func runFig7(s *Session, w io.Writer) error {
	return s.schemeMatrix(highSkewNames(), "DBG",
		[]string{"RRIP+Hints", "GRASP (Insertion-Only)", "GRASP"}, true, w,
		"Speed-up (%) over RRIP: GRASP feature ablation")
}

// runFig8 regenerates Fig. 8: pinning configurations vs GRASP on the
// high-skew datasets. Paper averages: PIN-25 +0.4, PIN-50 +1.1,
// PIN-75 +2.0, PIN-100 +2.5, GRASP +5.2.
func runFig8(s *Session, w io.Writer) error {
	return s.schemeMatrix(highSkewNames(), "DBG",
		[]string{"PIN-25", "PIN-50", "PIN-75", "PIN-100", "GRASP"}, true, w,
		"Speed-up (%) over RRIP: pinning vs GRASP, high-skew datasets")
}

// runFig9 regenerates Fig. 9: robustness on the adversarial low-skew (fr)
// and no-skew (uni) datasets. Paper: GRASP -0.1..+4.3, pinning negative on
// almost all datapoints.
func runFig9(s *Session, w io.Writer) error {
	return s.schemeMatrix([]string{"fr", "uni"}, "DBG",
		[]string{"PIN-75", "PIN-100", "GRASP"}, true, w,
		"Speed-up (%) over RRIP: low-/no-skew datasets")
}

// runNoReorder reproduces the Sec. V-A side experiment: prior schemes
// evaluated without any vertex reordering. Paper averages: Leeway -0.8,
// SHiP-MEM -5.7, Hawkeye -14.8 over RRIP.
func runNoReorder(s *Session, w io.Writer) error {
	return s.schemeMatrix(highSkewNames(), "Identity",
		[]string{"SHiP-MEM", "Hawkeye", "Leeway", "GRASP"}, true, w,
		"Speed-up (%) over RRIP with NO vertex reordering")
}
