package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"grasp/internal/apps"
	"grasp/internal/graph"
	"grasp/internal/stats"
)

func testSession() *Session { return NewSession(ScaledConfig(16)) }

func TestScaledConfig(t *testing.T) {
	c := ScaledConfig(16)
	if c.HCfg.LLC.SizeBytes != (64<<10)/16 {
		t.Fatalf("scaled LLC = %d", c.HCfg.LLC.SizeBytes)
	}
	if c.ScaleDiv != 16 {
		t.Fatal("scale div lost")
	}
	// Tiny divisors clamp to a functional geometry instead of vanishing.
	if tiny := ScaledConfig(1 << 10); tiny.HCfg.LLC.SizeBytes < 2048 {
		t.Fatalf("clamp failed: %d", tiny.HCfg.LLC.SizeBytes)
	}
	// Extreme divisor clamps to a valid geometry.
	c2 := ScaledConfig(1 << 20)
	if c2.HCfg.LLC.Sets() == 0 || c2.HCfg.LLC.Sets()&(c2.HCfg.LLC.Sets()-1) != 0 {
		t.Fatalf("clamped LLC geometry invalid: %d sets", c2.HCfg.LLC.Sets())
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := []string{"table1", "table4", "fig2", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10a", "fig10b", "fig11", "table7", "noreorder",
		"ablation-region", "ablation-bases", "ablation-ship", "streaming",
		"scenarios"}
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if e.Run == nil || e.Title == "" {
			t.Fatalf("%s: incomplete experiment", id)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestSessionCachesResults(t *testing.T) {
	t.Parallel()
	s := testSession()
	r1, err := s.Result("lj", "DBG", "PR", apps.LayoutMerged, "RRIP")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Result("lj", "DBG", "PR", apps.LayoutMerged, "RRIP")
	if err != nil {
		t.Fatal(err)
	}
	if r1.LLC.Misses != r2.LLC.Misses {
		t.Fatal("cached result differs")
	}
	if n := s.results.len(); n != 1 {
		t.Fatalf("expected 1 cached result, have %d", n)
	}
	if n := s.SimRuns(); n != 1 {
		t.Fatalf("expected 1 simulation run, have %d", n)
	}
}

// TestSessionRevalidatesAndEvictsFileWorkloads: a file-backed graph's
// session cache entries are keyed by the file's (size, mtime) stamp, so
// an edit re-prepares the workload — and the superseded entry is evicted
// rather than pinning the old parsed graph for the session's lifetime.
func TestSessionRevalidatesAndEvictsFileWorkloads(t *testing.T) {
	t.Parallel()
	s := testSession()
	path := filepath.Join(t.TempDir(), "sess.el")
	writeGraph := func(g *graph.CSR) {
		t.Helper()
		var buf bytes.Buffer
		if err := graph.WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeGraph(graph.GenPath(6))
	w1, err := s.Workload(path, "DBG", false)
	if err != nil {
		t.Fatal(err)
	}
	if w2, err := s.Workload(path, "DBG", false); err != nil || w2 != w1 {
		t.Fatalf("unchanged file not served from the memo (err=%v)", err)
	}
	if n := s.workloads.len(); n != 1 {
		t.Fatalf("workload memo holds %d entries, want 1", n)
	}

	edited := graph.GenCycle(9)
	writeGraph(edited)
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	w3, err := s.Workload(path, "DBG", false)
	if err != nil {
		t.Fatal(err)
	}
	if w3 == w1 {
		t.Fatal("edited file served the stale workload")
	}
	if got := w3.Graph.NumVertices(); got != edited.NumVertices() {
		t.Fatalf("reloaded workload has %d vertices, want the edited file's %d", got, edited.NumVertices())
	}
	if n := s.workloads.len(); n != 1 {
		t.Fatalf("workload memo holds %d entries after edit, want 1 (superseded entry evicted)", n)
	}
}

func TestTable1Output(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := runTable1(testSession(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, ds := range []string{"lj", "pl", "tw", "kr", "sd", "fr", "uni"} {
		if !strings.Contains(out, ds) {
			t.Fatalf("table1 missing dataset %s:\n%s", ds, out)
		}
	}
}

func TestFig2Output(t *testing.T) {
	t.Parallel()
	s := testSession()
	var buf bytes.Buffer
	if err := runFig2(s, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PR") {
		t.Fatalf("fig2 output incomplete:\n%s", buf.String())
	}
	// Shape property: Property Array dominates LLC accesses.
	r, err := s.Result("tw", "Identity", "PR", apps.LayoutMerged, "RRIP")
	if err != nil {
		t.Fatal(err)
	}
	share := float64(r.LLC.PropHits+r.LLC.PropMisses) / float64(r.LLC.Accesses())
	if share < 0.5 {
		t.Fatalf("property access share %.2f, want > 0.5", share)
	}
}

func TestFig5ShapeGRASPWins(t *testing.T) {
	t.Parallel()
	// The headline shape at reduced scale: averaged over the full matrix,
	// GRASP eliminates misses relative to RRIP and beats Hawkeye.
	s := testSession()
	if err := s.Prefetch(matrixPoints(highSkewNames(), "DBG", apps.Names(),
		[]string{"GRASP", "Hawkeye"})); err != nil {
		t.Fatal(err)
	}
	var grasp, hawkeye []float64
	for _, app := range apps.Names() {
		for _, ds := range highSkewNames() {
			base, err := s.Result(ds, "DBG", app, apps.LayoutMerged, "RRIP")
			if err != nil {
				t.Fatal(err)
			}
			g, err := s.Result(ds, "DBG", app, apps.LayoutMerged, "GRASP")
			if err != nil {
				t.Fatal(err)
			}
			h, err := s.Result(ds, "DBG", app, apps.LayoutMerged, "Hawkeye")
			if err != nil {
				t.Fatal(err)
			}
			grasp = append(grasp, g.MissReductionPctOver(base))
			hawkeye = append(hawkeye, h.MissReductionPctOver(base))
		}
	}
	if m := stats.Mean(grasp); m <= 0 {
		t.Fatalf("GRASP average miss reduction %.2f%%, want positive", m)
	}
	if stats.Mean(grasp) <= stats.Mean(hawkeye) {
		t.Fatalf("GRASP (%.2f%%) did not beat Hawkeye (%.2f%%)",
			stats.Mean(grasp), stats.Mean(hawkeye))
	}
}

func TestFig9ShapeGRASPRobust(t *testing.T) {
	t.Parallel()
	// On the no-skew dataset, GRASP must not cause a large slowdown
	// (paper: max slowdown 0.1%; at 1/16 scale the skew of the synthetic
	// datasets is weaker, so we allow 5%), while pinning is expected to do
	// worse than GRASP on average.
	s := testSession()
	if err := s.Prefetch(matrixPoints([]string{"fr", "uni"}, "DBG", apps.Names(),
		[]string{"GRASP", "PIN-100"})); err != nil {
		t.Fatal(err)
	}
	var graspMin float64 = 1e9
	var graspSum, pinSum float64
	var n int
	for _, app := range apps.Names() {
		for _, ds := range []string{"fr", "uni"} {
			base, err := s.Result(ds, "DBG", app, apps.LayoutMerged, "RRIP")
			if err != nil {
				t.Fatal(err)
			}
			g, err := s.Result(ds, "DBG", app, apps.LayoutMerged, "GRASP")
			if err != nil {
				t.Fatal(err)
			}
			p, err := s.Result(ds, "DBG", app, apps.LayoutMerged, "PIN-100")
			if err != nil {
				t.Fatal(err)
			}
			sp := g.SpeedupPctOver(base)
			graspSum += sp
			pinSum += p.SpeedupPctOver(base)
			if sp < graspMin {
				graspMin = sp
			}
			n++
		}
	}
	if graspMin < -5.0 {
		t.Fatalf("GRASP slowdown %.2f%% on low-skew exceeds robustness bound", graspMin)
	}
	if graspSum/float64(n) < pinSum/float64(n) {
		t.Fatalf("GRASP avg (%.2f%%) below PIN-100 avg (%.2f%%) on low-skew",
			graspSum/float64(n), pinSum/float64(n))
	}
}

func TestOPTStudyShape(t *testing.T) {
	t.Parallel()
	s := testSession()
	data, err := runOPTStudy(s, s.Cfg.HCfg.LLC)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 25 {
		t.Fatalf("expected 25 datapoints, got %d", len(data))
	}
	var rrip, grasp, opt []float64
	for _, dp := range data {
		if dp.opt > dp.lru || dp.opt > dp.rrip || dp.opt > dp.grasp {
			t.Fatalf("OPT not optimal: %+v", dp)
		}
		rrip = append(rrip, elimPct(dp.rrip, dp.lru))
		grasp = append(grasp, elimPct(dp.grasp, dp.lru))
		opt = append(opt, elimPct(dp.opt, dp.lru))
	}
	// Paper shape: OPT > GRASP > RRIP on average.
	if !(stats.Mean(opt) > stats.Mean(grasp) && stats.Mean(grasp) > stats.Mean(rrip)) {
		t.Fatalf("ordering violated: OPT %.1f, GRASP %.1f, RRIP %.1f",
			stats.Mean(opt), stats.Mean(grasp), stats.Mean(rrip))
	}
}

func TestElimPct(t *testing.T) {
	if elimPct(50, 100) != 50 {
		t.Fatal("elimPct wrong")
	}
	if elimPct(100, 0) != 0 {
		t.Fatal("elimPct division by zero")
	}
}

// Smoke-run the fast experiments end to end.
func TestExperimentsSmoke(t *testing.T) {
	t.Parallel()
	s := testSession()
	for _, id := range []string{"table1", "fig2", "fig9", "streaming", "ablation-bases"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(s, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestAblationRegionPeaksNearPaperDesign(t *testing.T) {
	t.Parallel()
	// The paper sizes the High Reuse Region at exactly one LLC; very large
	// regions (4x) must not beat the paper's design point by much — they
	// reintroduce self-thrashing among "protected" blocks.
	s := testSession()
	wl, err := s.Workload("kr", "DBG", false)
	if err != nil {
		t.Fatal(err)
	}
	at := func(scale float64) uint64 {
		r, err := runWithRegionScale(wl, s.Cfg.HCfg, scale)
		if err != nil {
			t.Fatal(err)
		}
		return r.LLC.Misses
	}
	paper := at(1)
	huge := at(8)
	if huge < paper*95/100 {
		t.Fatalf("8x region (%d misses) markedly beats the paper design (%d)", huge, paper)
	}
}

func TestStreamingExperimentOutput(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := runStreaming(testSession(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Retention") {
		t.Fatalf("streaming output incomplete:\n%s", buf.String())
	}
}

// TestAllExperimentsTinyScale executes every experiment end to end at 1/64
// scale through RunAll, exercising the batch fan-out path and each harness
// body (output correctness is covered by the targeted shape tests; this
// guards against harness regressions).
func TestAllExperimentsTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	t.Parallel()
	s := NewSession(ScaledConfig(64))
	var buf bytes.Buffer
	starts := make(map[string]int)
	err := RunAll(s, All(), &buf, RunObserver{
		Before: func(e Experiment) { starts[e.ID] = buf.Len() },
		After: func(e Experiment, _ time.Duration) {
			if buf.Len() == starts[e.ID] {
				t.Errorf("%s produced no output", e.ID)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != len(All()) {
		t.Fatalf("ran %d experiments, want %d", len(starts), len(All()))
	}
}
