package exp

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden-run harness pins the exact output of every deterministic
// experiment at 1/64 scale: the concurrent engine's "byte-identical to a
// sequential run" claim, the policy implementations, the reorderings and
// the dataset generators are all under one regression net. Refresh after
// an intentional change with
//
//	go test ./internal/exp -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenScaleDiv keeps the committed outputs tiny and the harness fast.
const goldenScaleDiv = 64

// nondeterministicIDs are the experiments excluded from golden comparison.
// Everything else must be byte-reproducible — a new experiment is golden by
// default, and opting out requires a reason here.
var nondeterministicIDs = map[string]string{
	"fig10a": "times native wall-clock executions",
}

func goldenExperiments() []Experiment {
	var out []Experiment
	for _, e := range All() {
		if _, skip := nondeterministicIDs[e.ID]; !skip {
			out = append(out, e)
		}
	}
	return out
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".golden")
}

func TestGoldenRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("golden harness skipped in -short mode")
	}
	exps := goldenExperiments()
	if len(exps) < 15 {
		t.Fatalf("only %d deterministic experiments; the harness must cover at least 15", len(exps))
	}
	s := NewSession(ScaledConfig(goldenScaleDiv))
	// Warm the union of all declared datapoints on the worker pool once;
	// the bodies then render from the cache exactly as exp.RunAll does.
	var points []Datapoint
	for _, e := range exps {
		if e.Points != nil {
			points = append(points, e.Points()...)
		}
	}
	if err := s.Prefetch(points); err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(s, &buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("experiment produced no output")
			}
			path := goldenPath(e.ID)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s:\n%s\nrun `go test ./internal/exp -run Golden -update` if the change is intentional",
					path, diffSummary(want, buf.Bytes()))
			}
		})
	}
	if *updateGolden {
		// Remove goldens of experiments that no longer exist so the
		// directory never accretes stale files.
		known := make(map[string]bool)
		for _, e := range exps {
			known[e.ID+".golden"] = true
		}
		entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			if !known[ent.Name()] {
				if err := os.Remove(filepath.Join("testdata", "golden", ent.Name())); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// diffSummary points at the first differing line instead of dumping two
// full tables.
func diffSummary(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}

// TestGoldenFilesCommitted guards the harness itself: every deterministic
// experiment must have a committed golden file even when the comparison
// run is skipped (-short), so a new experiment cannot land without one.
func TestGoldenFilesCommitted(t *testing.T) {
	for _, e := range goldenExperiments() {
		if _, err := os.Stat(goldenPath(e.ID)); err != nil {
			t.Errorf("%s: no golden output committed (run `go test ./internal/exp -run Golden -update`): %v", e.ID, err)
		}
	}
}
