package exp

import (
	"fmt"
	"io"

	"grasp/internal/apps"
	"grasp/internal/graph"
	"grasp/internal/stats"
)

// runTable1 regenerates Table I: hot-vertex percentage and edge coverage
// for in- and out-edges of every dataset. Paper values for the high-skew
// datasets: 9-26% hot vertices covering 81-93% of edges.
func runTable1(s *Session, w io.Writer) error {
	t := stats.NewTable("Dataset", "In Hot(%)", "In EdgeCov(%)", "Out Hot(%)", "Out EdgeCov(%)", "AvgDeg")
	for _, ds := range graph.Datasets() {
		g := ds.Generate(false, s.Cfg.ScaleDiv)
		in, out := graph.InSkew(g), graph.OutSkew(g)
		t.AddRowf(ds.Name, in.HotVertexPct, in.EdgeCoverPct, out.HotVertexPct, out.EdgeCoverPct, g.AvgDegree())
	}
	_, err := fmt.Fprintln(w, t)
	return err
}

// table4Points declares Table IV's matrix: both layouts under RRIP for the
// apps with a merging opportunity.
func table4Points() []Datapoint {
	var out []Datapoint
	for _, app := range apps.Names() {
		if app == "BC" || app == "Radii" {
			continue
		}
		for _, ds := range highSkewNames() {
			out = append(out,
				Datapoint{DS: ds, Reorder: "Identity", App: app, Layout: apps.LayoutSplit, Policy: "RRIP"},
				Datapoint{DS: ds, Reorder: "Identity", App: app, Layout: apps.LayoutMerged, Policy: "RRIP"})
		}
	}
	return out
}

// runTable4 regenerates Table IV: speed-up of the merged Property-Array
// layout over the split layout for the apps with a merging opportunity
// (SSSP, PR, PRD), under the RRIP baseline with no reordering (the
// optimization is applied to the original Ligra implementation).
// Paper: SSSP 3-8%, PR 40-52%, PRD 14-49%; BC and Radii: no opportunity.
func runTable4(s *Session, w io.Writer) error {
	if err := s.Prefetch(table4Points()); err != nil {
		return err
	}
	t := stats.NewTable("Application", "Merging?", "Speed-up range across datasets")
	for _, app := range apps.Names() {
		if app == "BC" || app == "Radii" {
			t.AddRow(app, "No", "-")
			continue
		}
		var lo, hi float64
		first := true
		for _, ds := range highSkewNames() {
			split, err := s.Result(ds, "Identity", app, apps.LayoutSplit, "RRIP")
			if err != nil {
				return err
			}
			merged, err := s.Result(ds, "Identity", app, apps.LayoutMerged, "RRIP")
			if err != nil {
				return err
			}
			sp := merged.SpeedupPctOver(split)
			if first || sp < lo {
				lo = sp
			}
			if first || sp > hi {
				hi = sp
			}
			first = false
		}
		t.AddRow(app, "Yes", fmt.Sprintf("%.1f%% .. %.1f%%", lo, hi))
	}
	_, err := fmt.Fprintln(w, t)
	return err
}

// fig2Points declares Fig. 2's datapoints: the RRIP baseline on pl and tw
// across all applications.
func fig2Points() []Datapoint {
	var out []Datapoint
	for _, ds := range []string{"pl", "tw"} {
		for _, app := range apps.Names() {
			out = append(out, Datapoint{DS: ds, Reorder: "Identity", App: app,
				Layout: apps.LayoutMerged, Policy: "RRIP"})
		}
	}
	return out
}

// runFig2 regenerates Fig. 2: the classification of LLC accesses and
// misses as falling within or outside the Property Array, normalized to
// total LLC accesses, for the pl and tw datasets across all applications.
// Paper: the Property Array accounts for 78-94% of LLC accesses.
func runFig2(s *Session, w io.Writer) error {
	if err := s.Prefetch(fig2Points()); err != nil {
		return err
	}
	t := stats.NewTable("Dataset", "App", "Acc-in(%)", "Acc-out(%)", "Miss-in(%)", "Miss-out(%)")
	for _, ds := range []string{"pl", "tw"} {
		for _, app := range apps.Names() {
			r, err := s.Result(ds, "Identity", app, apps.LayoutMerged, "RRIP")
			if err != nil {
				return err
			}
			total := float64(r.LLC.Accesses())
			if total == 0 {
				continue
			}
			accIn := float64(r.LLC.PropHits+r.LLC.PropMisses) / total * 100
			missIn := float64(r.LLC.PropMisses) / total * 100
			missOut := float64(r.LLC.Misses-r.LLC.PropMisses) / total * 100
			t.AddRowf(ds, app, accIn, 100-accIn, missIn, missOut)
		}
	}
	_, err := fmt.Fprintln(w, t)
	return err
}
