package exp

import (
	"fmt"
	"io"

	"grasp/internal/apps"
	"grasp/internal/sim"
	"grasp/internal/stats"
)

// The scenario sweep is the coverage experiment for the extension
// workloads: EVERY policy in the registry (prior schemes and all GRASP
// variants) runs KCore and TC over the high-skew datasets, so a new
// policy or a new workload cannot land without a datapoint here. All
// policy x app x dataset cells are declared as ordinary datapoints and
// fan out over the session's Prefetch worker pool like any other matrix.

// scenarioApps are the workloads of the scenario sweep: the two kernels
// outside the paper's evaluation with the most distinct access shapes
// (KCore's frontier-driven peeling, TC's adjacency-intersection scans).
var scenarioApps = []string{"KCore", "TC"}

// scenarioSchemes returns every registered policy except the RRIP
// baseline, which matrixPoints declares implicitly and against which the
// sweep normalizes.
func scenarioSchemes() []string {
	var out []string
	for _, p := range sim.Policies() {
		if p.Name != "RRIP" {
			out = append(out, p.Name)
		}
	}
	return out
}

// scenarioPoints declares the full policy x {KCore, TC} x dataset matrix.
func scenarioPoints() []Datapoint {
	return matrixPoints(highSkewNames(), "DBG", scenarioApps, scenarioSchemes())
}

// runScenarios renders one row per policy: LLC miss reduction over RRIP
// for each (app, dataset) cell, with a per-policy mean.
func runScenarios(s *Session, w io.Writer) error {
	if err := s.Prefetch(scenarioPoints()); err != nil {
		return err
	}
	header := []string{"Policy"}
	for _, app := range scenarioApps {
		for _, ds := range highSkewNames() {
			header = append(header, app+"/"+ds)
		}
	}
	header = append(header, "Mean")
	t := stats.NewTable(header...)
	for _, scheme := range scenarioSchemes() {
		row := []string{scheme}
		var vals []float64
		for _, app := range scenarioApps {
			for _, ds := range highSkewNames() {
				base, err := s.Result(ds, "DBG", app, apps.LayoutMerged, "RRIP")
				if err != nil {
					return err
				}
				r, err := s.Result(ds, "DBG", app, apps.LayoutMerged, scheme)
				if err != nil {
					return err
				}
				v := r.MissReductionPctOver(base)
				vals = append(vals, v)
				row = append(row, fmt.Sprintf("%.1f", v))
			}
		}
		row = append(row, fmt.Sprintf("%.1f", stats.Mean(vals)))
		t.AddRow(row...)
	}
	if _, err := fmt.Fprintln(w, "% LLC misses eliminated over RRIP on the extension workloads (KCore, TC)"); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, t)
	return err
}
