package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"grasp/internal/apps"
	"grasp/internal/graph"
)

// TestPrefetchRecordsOncePerGroup: a batch sweeping several policies over
// one (dataset, reorder, app, layout) group must execute the application
// once (one cached recording), serve every policy by replay, and agree
// exactly with a sequential execution-driven session.
func TestPrefetchRecordsOncePerGroup(t *testing.T) {
	t.Parallel()
	schemes := []string{"GRASP", "LRU", "SHiP-MEM", "Leeway"}
	pts := matrixPoints([]string{"lj"}, "DBG", []string{"PR"}, schemes)

	s := NewSession(ScaledConfig(64))
	if err := s.Prefetch(pts); err != nil {
		t.Fatal(err)
	}
	if n := s.traces.len(); n != 1 {
		t.Fatalf("prefetch cached %d recordings, want 1 (one per group)", n)
	}
	if got, want := s.SimRuns(), uint64(len(schemes)+1); got != want {
		t.Fatalf("SimRuns = %d, want %d (RRIP + each scheme, each once)", got, want)
	}

	seq := NewSession(ScaledConfig(64))
	for _, p := range pts {
		replayed, err := s.Result(p.DS, p.Reorder, p.App, p.Layout, p.Policy)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := seq.Result(p.DS, p.Reorder, p.App, p.Layout, p.Policy)
		if err != nil {
			t.Fatal(err)
		}
		replayed.AppTime = direct.AppTime // wall-clock legitimately differs
		if replayed != direct {
			t.Fatalf("%s: replayed result diverges\nreplay: %+v\ndirect: %+v", p.Policy, replayed, direct)
		}
	}
	if seq.traces.len() != 0 {
		t.Fatal("sequential per-point session unexpectedly recorded a trace")
	}
}

// TestSinglePolicyGroupBypassesRecorder: with only one policy per group
// and no pre-existing recording, Prefetch must run execution-driven (the
// recording would cost as much as the run it replaces). A declared trace
// alone creates only a bounded-prefix recording, which must NOT back
// result replays; once a FULL recording exists (multi-policy batch),
// later single-policy requests replay it.
func TestSinglePolicyGroupBypassesRecorder(t *testing.T) {
	t.Parallel()
	s := NewSession(ScaledConfig(64))
	if err := s.Prefetch([]Datapoint{
		{DS: "lj", Reorder: "DBG", App: "PR", Layout: apps.LayoutMerged, Policy: "RRIP"},
	}); err != nil {
		t.Fatal(err)
	}
	if n := s.traces.len(); n != 0 {
		t.Fatalf("single-policy prefetch recorded %d traces, want 0 (bypass)", n)
	}
	// A declared trace point on a trace-only group creates a capped
	// recording; the full recording does not exist, so a lone policy still
	// runs execution-driven (a bounded prefix cannot back a full result).
	if err := s.Prefetch([]Datapoint{{DS: "lj", App: "PR", Trace: true}}); err != nil {
		t.Fatal(err)
	}
	if n := s.traces.len(); n != 1 {
		t.Fatalf("trace point cached %d recordings, want 1 (capped)", n)
	}
	if s.traceReady(groupKey{ds: "lj", reorder: "DBG", app: "PR", layout: apps.LayoutMerged}) {
		t.Fatal("capped recording must not satisfy traceReady")
	}
	// A declared trace plus a lone policy in ONE batch shares a single
	// full recording (the trace counts as a consumer of the execution).
	s2 := NewSession(ScaledConfig(64))
	if err := s2.Prefetch([]Datapoint{
		{DS: "kr", App: "PR", Trace: true},
		{DS: "kr", Reorder: "DBG", App: "PR", Layout: apps.LayoutMerged, Policy: "RRIP"},
	}); err != nil {
		t.Fatal(err)
	}
	if n := s2.traces.len(); n != 1 {
		t.Fatalf("trace+policy batch cached %d recordings, want 1 (full, shared)", n)
	}
	if !s2.traceReady(groupKey{ds: "kr", reorder: "DBG", app: "PR", layout: apps.LayoutMerged}) {
		t.Fatal("trace+policy batch should have produced the FULL recording")
	}

	// A multi-policy batch creates the full recording ...
	if err := s.Prefetch(matrixPoints([]string{"lj"}, "DBG", []string{"PR"}, []string{"GRASP"})); err != nil {
		t.Fatal(err)
	}
	if n := s.traces.len(); n != 2 {
		t.Fatalf("have %d recordings, want 2 (capped + full)", n)
	}
	// ... and a later lone policy on that group replays instead of
	// re-executing; its result must match a fresh direct session exactly.
	r, err := s.Result("lj", "DBG", "PR", apps.LayoutMerged, "SHiP-MEM")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewSession(ScaledConfig(64)).Result("lj", "DBG", "PR", apps.LayoutMerged, "SHiP-MEM")
	if err != nil {
		t.Fatal(err)
	}
	r.AppTime = direct.AppTime
	if r != direct {
		t.Fatalf("replay-on-cached-trace diverges\nreplay: %+v\ndirect: %+v", r, direct)
	}
}

// TestSessionFileBudgetEvictsLRU: the session's retained bytes for
// file-backed datasets are bounded — loading a second file under a tiny
// budget evicts the least-recently-used one's entries, while the most
// recent stays cached (DESIGN.md Sec. 10 memory bound).
func TestSessionFileBudgetEvictsLRU(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	writeGraph := func(name string, g *graph.CSR) string {
		t.Helper()
		var buf bytes.Buffer
		if err := graph.WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	pathA := writeGraph("a.el", graph.GenPath(32))
	pathB := writeGraph("b.el", graph.GenCycle(48))

	cfg := ScaledConfig(16)
	cfg.FileBytesBudget = 1 // every newcomer evicts the previous file
	s := NewSession(cfg)

	wA, err := s.Workload(pathA, "DBG", false)
	if err != nil {
		t.Fatal(err)
	}
	if wA2, err := s.Workload(pathA, "DBG", false); err != nil || wA2 != wA {
		t.Fatalf("A not served from memo before eviction (err=%v)", err)
	}
	wB, err := s.Workload(pathB, "DBG", false)
	if err != nil {
		t.Fatal(err)
	}
	if n := s.workloads.len(); n != 1 {
		t.Fatalf("workload memo holds %d entries after eviction, want 1 (B only)", n)
	}
	if wB2, err := s.Workload(pathB, "DBG", false); err != nil || wB2 != wB {
		t.Fatalf("B (most recent) was evicted (err=%v)", err)
	}
	wA3, err := s.Workload(pathA, "DBG", false)
	if err != nil {
		t.Fatal(err)
	}
	if wA3 == wA {
		t.Fatal("A still cached despite the byte budget")
	}
	// Synthetic datasets are never evicted by the file budget.
	if _, err := s.Workload("lj", "DBG", false); err != nil {
		t.Fatal(err)
	}
	before := s.workloads.len()
	if _, err := s.Workload(pathB, "DBG", false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Workload("lj", "DBG", false); err != nil {
		t.Fatal(err)
	}
	if s.workloads.len() < before {
		t.Fatal("synthetic workload was evicted by the file budget")
	}
}
