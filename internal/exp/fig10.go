package exp

import (
	"fmt"
	"io"
	"time"

	"grasp/internal/apps"
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/reorder"
	"grasp/internal/stats"
)

// fig10aTrials is the number of timed native executions per datapoint;
// the reordering cost is amortized over them, mirroring the paper's
// methodology of running iterative applications to convergence and
// root-dependent traversals from several roots.
const fig10aTrials = 4

// runFig10a regenerates Fig. 10a: the net speed-up of each reordering
// technique over the no-reordering baseline on a real machine, after
// accounting for reordering cost. This is the one software-only experiment
// of the paper: we time native (untraced) Go executions, which feel the
// host's real cache hierarchy. Paper averages: Sort +2.6%, HubSort +0.6%,
// DBG +10.8%, Gorder -85.4% (its reordering cost dwarfs the benefit).
//
// Because it measures wall-clock, this experiment declares no Points and
// runs strictly sequentially: RunAll finishes the parallel prefetch phase
// before any body runs, so the timed executions see an idle machine.
func runFig10a(s *Session, w io.Writer) error {
	t := stats.NewTable("Dataset", "Sort", "HubSort", "DBG", "Gorder")
	agg := make(map[string][]float64)
	for _, dsName := range highSkewNames() {
		ds, err := graph.DatasetByName(dsName)
		if err != nil {
			return err
		}
		g := ds.Generate(true, s.Cfg.ScaleDiv)
		baseline := timeNativeApps(g)
		row := []string{dsName}
		for _, tech := range reorder.Techniques() {
			perm, cost := reorder.Timed(tech, g, reorder.BySum)
			rg := reorder.Apply(g, perm)
			reordered := timeNativeApps(rg)
			// Net speed-up including reordering cost.
			sp := (float64(baseline)/float64(reordered+cost) - 1) * 100
			agg[tech.Name] = append(agg[tech.Name], sp)
			row = append(row, fmt.Sprintf("%.1f", sp))
		}
		t.AddRow(row...)
	}
	gm := []string{"GM"}
	for _, tech := range reorder.Techniques() {
		gm = append(gm, fmt.Sprintf("%.1f", stats.GeoMeanSpeedupPct(agg[tech.Name])))
	}
	t.AddRow(gm...)
	if _, err := fmt.Fprintln(w, "Net speed-up (%) of reordering incl. reordering cost (native wall-clock)"); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, t)
	return err
}

// timeNativeApps runs all five applications natively on g and returns the
// total wall-clock time of fig10aTrials trials (after one warm-up trial).
func timeNativeApps(g *graph.CSR) time.Duration {
	run := func() {
		for _, name := range apps.Names() {
			fg := ligra.NewGraph(g)
			app, err := apps.New(name, fg, apps.LayoutMerged)
			if err != nil {
				panic(err)
			}
			app.Run(ligra.NewTracer(nil))
		}
	}
	run() // warm-up
	start := time.Now()
	for i := 0; i < fig10aTrials; i++ {
		run()
	}
	return time.Since(start)
}

// fig10bReorders are the reordering techniques of Fig. 10b (Gorder is made
// GRASP-compatible by a DBG pass, Sec. V-C).
var fig10bReorders = []string{"Sort", "HubSort", "DBG", "Gorder+DBG"}

// fig10bPoints declares Fig. 10b's matrix: RRIP and GRASP on top of every
// reordering technique.
func fig10bPoints() []Datapoint {
	var out []Datapoint
	for _, rn := range fig10bReorders {
		out = append(out, matrixPoints(highSkewNames(), rn, apps.Names(), []string{"GRASP"})...)
	}
	return out
}

// runFig10b regenerates Fig. 10b: GRASP's speed-up over RRIP when both run
// on top of each reordering technique. Paper averages: +4.4 (Sort),
// +4.2 (HubSort), +5.2 (DBG), +5.0 (Gorder+DBG).
func runFig10b(s *Session, w io.Writer) error {
	if err := s.Prefetch(fig10bPoints()); err != nil {
		return err
	}
	reorders := fig10bReorders
	t := stats.NewTable(append([]string{"App", "Dataset"}, reorders...)...)
	agg := make(map[string][]float64)
	for _, app := range apps.Names() {
		for _, ds := range highSkewNames() {
			row := []string{app, ds}
			for _, rn := range reorders {
				base, err := s.Result(ds, rn, app, apps.LayoutMerged, "RRIP")
				if err != nil {
					return err
				}
				r, err := s.Result(ds, rn, app, apps.LayoutMerged, "GRASP")
				if err != nil {
					return err
				}
				sp := r.SpeedupPctOver(base)
				agg[rn] = append(agg[rn], sp)
				row = append(row, fmt.Sprintf("%.1f", sp))
			}
			t.AddRow(row...)
		}
	}
	gm := []string{"GM", "all"}
	for _, rn := range reorders {
		gm = append(gm, fmt.Sprintf("%.1f", stats.GeoMeanSpeedupPct(agg[rn])))
	}
	t.AddRow(gm...)
	if _, err := fmt.Fprintln(w, "GRASP speed-up (%) over RRIP on top of each reordering technique"); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, t)
	return err
}
