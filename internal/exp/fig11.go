package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"grasp/internal/apps"
	"grasp/internal/cache"
	"grasp/internal/mem"
	"grasp/internal/policy"
	"grasp/internal/sim"
	"grasp/internal/stats"
)

// optTraceCap bounds the LLC trace length per datapoint (the paper uses
// traces of up to 2 billion accesses; scaled down with everything else).
const optTraceCap = 8_000_000

// optDatapoint holds the replayed miss counts of one (app, dataset) trace
// at one LLC size.
type optDatapoint struct {
	lru, rrip, grasp, opt uint64
}

// runOPTStudy obtains the shared LLC recording of every (app, high-skew
// dataset) pair under DBG reordering and evaluates its bounded prefix
// under LRU, RRIP and GRASP plus Belady's OPT at the given LLC size. Each
// pair rides the broadcast decoder: ONE decode pass over the capped
// prefix feeds the three policy LLCs and the block-address stream that
// OPT consumes, instead of four independent decodes (DESIGN.md Sec. 12).
// Pairs fan out over the worker pool; results land in a keyed map, so the
// consuming experiments iterate them in deterministic order regardless of
// completion order.
func runOPTStudy(s *Session, llcCfg cache.Config) (map[[2]string]optDatapoint, error) {
	rripInfo, _ := sim.PolicyByName("RRIP")
	graspInfo, _ := sim.PolicyByName("GRASP")
	lruInfo, _ := sim.PolicyByName("LRU")
	type pair struct{ app, ds string }
	var pairs []pair
	for _, app := range apps.Names() {
		for _, ds := range highSkewNames() {
			pairs = append(pairs, pair{app, ds})
		}
	}
	dps := make([]optDatapoint, len(pairs))
	errs := make([]error, len(pairs))
	forEachParallel(len(pairs), func(i int) {
		app, ds := pairs[i].app, pairs[i].ds
		k := groupKey{ds: ds, reorder: "DBG", app: app, layout: apps.LayoutMerged}
		errs[i] = s.withRecording(context.Background(), k, true, func(rec recording) error {
			replays := []struct {
				misses *uint64
				pinfo  sim.PolicyInfo
				abrs   [][2]uint64
			}{
				{&dps[i].lru, lruInfo, nil},
				{&dps[i].rrip, rripInfo, nil},
				{&dps[i].grasp, graspInfo, rec.bounds},
			}
			llcs := make([]*cache.Cache, len(replays))
			consumers := make([]func([]mem.Access), 0, len(replays)+1)
			for j, rp := range replays {
				llc, err := sim.NewReplayLLC(llcCfg, rp.pinfo, rp.abrs)
				if err != nil {
					return err
				}
				llcs[j] = llc
				consumers = append(consumers, func(accs []mem.Access) {
					for _, a := range accs {
						llc.Access(a)
					}
				})
			}
			n := rec.tr.Len()
			if n > optTraceCap {
				n = optTraceCap
			}
			blocks := make([]uint64, 0, n)
			consumers = append(consumers, func(accs []mem.Access) {
				for _, a := range accs {
					blocks = append(blocks, cache.BlockAddr(a.Addr))
				}
			})
			start := time.Now()
			err := rec.tr.BroadcastN(optTraceCap, consumers)
			s.phase.replay.Add(int64(time.Since(start)))
			if err != nil {
				return err
			}
			for j, rp := range replays {
				*rp.misses = llcs[j].Stats.Misses
			}
			dps[i].opt = policy.SimulateOPT(blocks, llcCfg.Sets(), llcCfg.Ways).Misses
			return nil
		})
	})
	out := make(map[[2]string]optDatapoint, len(pairs))
	for i, p := range pairs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[[2]string{p.app, p.ds}] = dps[i]
	}
	return out, nil
}

func elimPct(misses, lru uint64) float64 {
	if lru == 0 {
		return 0
	}
	return (1 - float64(misses)/float64(lru)) * 100
}

// runFig11 regenerates Fig. 11: the percentage of misses eliminated over
// LRU by RRIP, GRASP and OPT at the baseline LLC size, reported per
// dataset (across apps) and per application (across datasets) as in the
// figure. Paper averages at 16MB: RRIP 15.2%, GRASP 19.7%, OPT 34.3%.
func runFig11(s *Session, w io.Writer) error {
	data, err := runOPTStudy(s, s.Cfg.HCfg.LLC)
	if err != nil {
		return err
	}
	t := stats.NewTable("Group", "RRIP", "GRASP", "OPT")
	addGroup := func(label string, keys [][2]string) {
		var r, g, o []float64
		for _, k := range keys {
			dp := data[k]
			r = append(r, elimPct(dp.rrip, dp.lru))
			g = append(g, elimPct(dp.grasp, dp.lru))
			o = append(o, elimPct(dp.opt, dp.lru))
		}
		t.AddRowf(label, stats.Mean(r), stats.Mean(g), stats.Mean(o))
	}
	for _, ds := range highSkewNames() {
		var keys [][2]string
		for _, app := range apps.Names() {
			keys = append(keys, [2]string{app, ds})
		}
		addGroup(ds, keys)
	}
	for _, app := range apps.Names() {
		var keys [][2]string
		for _, ds := range highSkewNames() {
			keys = append(keys, [2]string{app, ds})
		}
		addGroup(app, keys)
	}
	// Deterministic iteration order: float summation order must not depend
	// on map traversal, or the printed average could flip at a rounding
	// boundary between runs.
	var all [][2]string
	for _, app := range apps.Names() {
		for _, ds := range highSkewNames() {
			all = append(all, [2]string{app, ds})
		}
	}
	addGroup("avg(all)", all)
	if _, err := fmt.Fprintln(w, "% misses eliminated over LRU"); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, t)
	return err
}

// table7Sizes returns the LLC size sweep: the scaled analogues of the
// paper's 1, 4, 8, 16 and 32 MB (we run at 1/64 scale by default, so
// 16KB..512KB with the 256KB point matching the main evaluation).
func table7Sizes(base cache.Config) []cache.Config {
	fracs := []struct {
		label string
		mul   float64
	}{{"1MB*", 1.0 / 16}, {"4MB*", 0.25}, {"8MB*", 0.5}, {"16MB*", 1}, {"32MB*", 2}}
	var out []cache.Config
	for _, f := range fracs {
		sz := uint64(float64(base.SizeBytes) * f.mul)
		min := uint64(base.Ways) * cache.BlockSize * 2
		if sz < min {
			sz = min
		}
		out = append(out, cache.Config{SizeBytes: sz, Ways: base.Ways})
	}
	return out
}

// runTable7 regenerates Table VII: average % misses eliminated over LRU
// for RRIP, GRASP and OPT across LLC sizes. Paper shape: RRIP flat
// (~15-16%) across sizes; GRASP grows with LLC size (15.4% at 1MB to
// 21.2% at 32MB); OPT 27-35%.
func runTable7(s *Session, w io.Writer) error {
	sizes := table7Sizes(s.Cfg.HCfg.LLC)
	labels := []string{"1MB*", "4MB*", "8MB*", "16MB*", "32MB*"}
	t := stats.NewTable(append([]string{"Scheme"}, labels...)...)
	rows := map[string][]float64{"RRIP": nil, "GRASP": nil, "OPT": nil}
	for _, llcCfg := range sizes {
		data, err := runOPTStudy(s, llcCfg)
		if err != nil {
			return err
		}
		var r, g, o []float64
		for _, app := range apps.Names() {
			for _, ds := range highSkewNames() {
				dp := data[[2]string{app, ds}]
				r = append(r, elimPct(dp.rrip, dp.lru))
				g = append(g, elimPct(dp.grasp, dp.lru))
				o = append(o, elimPct(dp.opt, dp.lru))
			}
		}
		rows["RRIP"] = append(rows["RRIP"], stats.Mean(r))
		rows["GRASP"] = append(rows["GRASP"], stats.Mean(g))
		rows["OPT"] = append(rows["OPT"], stats.Mean(o))
	}
	for _, scheme := range []string{"RRIP", "GRASP", "OPT"} {
		cells := []string{scheme}
		for _, v := range rows[scheme] {
			cells = append(cells, fmt.Sprintf("%.1f%%", v))
		}
		t.AddRow(cells...)
	}
	if _, err := fmt.Fprintln(w, "% misses eliminated over LRU by LLC size (* = paper-scale equivalent)"); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, t)
	return err
}
