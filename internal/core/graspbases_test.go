package core

import (
	"testing"
	"testing/quick"

	"grasp/internal/cache"
	"grasp/internal/mem"
	"grasp/internal/policy"
)

func TestGRASPPLRUProtectsHighReuse(t *testing.T) {
	const ways = 8
	p := NewPLRUPolicy(1, ways)
	c := cache.MustNew(cache.Config{SizeBytes: ways * cache.BlockSize, Ways: ways}, p)
	// Fill half the set with High-Reuse blocks, then storm with Low-Reuse.
	for i := uint64(0); i < ways/2; i++ {
		c.Access(mem.Access{Addr: (1000 + i) << cache.BlockBits, Hint: mem.HintHigh})
	}
	for i := uint64(0); i < 200; i++ {
		c.Access(mem.Access{Addr: i << cache.BlockBits, Hint: mem.HintLow})
		// Keep the High blocks warm.
		c.Access(mem.Access{Addr: 1000 << cache.BlockBits, Hint: mem.HintHigh})
	}
	kept := 0
	for i := uint64(0); i < ways/2; i++ {
		if c.Contains((1000 + i) << cache.BlockBits) {
			kept++
		}
	}
	if kept == 0 {
		t.Fatal("GRASP-PLRU kept no High-Reuse blocks under a Low-Reuse storm")
	}
}

func TestGRASPPLRULowInsertIsNextVictim(t *testing.T) {
	p := NewPLRUPolicy(1, 4)
	c := cache.MustNew(cache.Config{SizeBytes: 4 * cache.BlockSize, Ways: 4}, p)
	// Warm the set with Default blocks.
	for i := uint64(0); i < 4; i++ {
		c.Access(mem.Access{Addr: i << cache.BlockBits})
	}
	// A Low-Reuse fill must not disturb the tree: two consecutive
	// Low-Reuse misses evict each other rather than the Default blocks.
	c.Access(mem.Access{Addr: 100 << cache.BlockBits, Hint: mem.HintLow})
	c.Access(mem.Access{Addr: 200 << cache.BlockBits, Hint: mem.HintLow})
	if c.Contains(100 << cache.BlockBits) {
		t.Fatal("first Low-Reuse block survived a second Low-Reuse fill")
	}
}

func TestGRASPDIPDefaultBehavesLikeDIP(t *testing.T) {
	// With only Default hints, GRASP-DIP's dueling gives BIP-like thrash
	// resistance: a cyclic over-capacity loop earns hits that plain LRU
	// cannot.
	const sets, ways = 64, 4
	cfg := cache.Config{SizeBytes: sets * ways * cache.BlockSize, Ways: ways}
	c := cache.MustNew(cfg, NewDIPPolicy(sets, ways))
	for rep := 0; rep < 30; rep++ {
		for i := uint64(0); i < sets*ways*2; i++ {
			c.Access(mem.Access{Addr: i << cache.BlockBits})
		}
	}
	if c.Stats.Hits == 0 {
		t.Fatal("GRASP-DIP earned no hits under thrashing; dueling broken")
	}
}

func TestGRASPDIPHintSteering(t *testing.T) {
	p := NewDIPPolicy(1, 4)
	// High-Reuse fill goes to MRU, Low-Reuse to LRU.
	p.OnFill(0, 0, mem.Access{Hint: mem.HintHigh})
	p.OnFill(0, 1, mem.Access{Hint: mem.HintLow})
	st := p.stack.StackOrder(0)
	if st[0] != 0 {
		t.Fatalf("High fill not at MRU: %v", st)
	}
	if st[3] != 1 {
		t.Fatalf("Low fill not at LRU: %v", st)
	}
	// Moderate hit moves exactly one position.
	p.OnFill(0, 2, mem.Access{Hint: mem.HintModerate})
	before := pos(p.stack.StackOrder(0), 2)
	p.OnHit(0, 2, mem.Access{Hint: mem.HintModerate})
	after := pos(p.stack.StackOrder(0), 2)
	if after != before-1 {
		t.Fatalf("Moderate hit moved from %d to %d, want one step", before, after)
	}
}

func pos(order []uint8, way uint8) int {
	for i, w := range order {
		if w == way {
			return i
		}
	}
	return -1
}

// All GRASP bases behave sanely on arbitrary hinted traces.
func TestGRASPBasesFuzz(t *testing.T) {
	bases := map[string]func(sets, ways uint32) cache.Policy{
		"GRASP":      func(s, w uint32) cache.Policy { return NewPolicy(s, w, ModeFull) },
		"GRASP-LRU":  func(s, w uint32) cache.Policy { return NewLRUPolicy(s, w) },
		"GRASP-PLRU": func(s, w uint32) cache.Policy { return NewPLRUPolicy(s, w) },
		"GRASP-DIP":  func(s, w uint32) cache.Policy { return NewDIPPolicy(s, w) },
	}
	for name, ctor := range bases {
		ctor := ctor
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64, n uint16) bool {
				r := seed*2654435761 + 1
				next := func() uint64 {
					r ^= r << 13
					r ^= r >> 7
					r ^= r << 17
					return r
				}
				const sets, ways = 8, 8
				c := cache.MustNew(cache.Config{SizeBytes: sets * ways * cache.BlockSize, Ways: ways},
					ctor(sets, ways))
				length := int(n%1200) + 10
				for i := 0; i < length; i++ {
					c.Access(mem.Access{
						Addr: (next() % 512) << cache.BlockBits,
						Hint: mem.Hint(next() % 4),
					})
				}
				return c.Stats.Accesses() == uint64(length)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// GRASP over every base must still beat its own base on the canonical
// hot-vs-thrash pattern.
func TestAllGRASPBasesProtectHotWorkingSet(t *testing.T) {
	type pair struct {
		name  string
		grasp func(s, w uint32) cache.Policy
		base  func(s, w uint32) cache.Policy
	}
	pairs := []pair{
		{"RRIP", func(s, w uint32) cache.Policy { return NewPolicy(s, w, ModeFull) },
			func(s, w uint32) cache.Policy { return policy.NewDRRIP(s, w) }},
		{"LRU", func(s, w uint32) cache.Policy { return NewLRUPolicy(s, w) },
			func(s, w uint32) cache.Policy { return cache.NewLRU(s, w) }},
		{"PLRU", func(s, w uint32) cache.Policy { return NewPLRUPolicy(s, w) },
			func(s, w uint32) cache.Policy { return policy.NewPLRU(s, w) }},
		{"DIP", func(s, w uint32) cache.Policy { return NewDIPPolicy(s, w) },
			func(s, w uint32) cache.Policy { return policy.NewDIP(s, w) }},
	}
	const sets, ways = 16, 8
	cfg := cache.Config{SizeBytes: sets * ways * cache.BlockSize, Ways: ways}
	abrs := NewABRs(cfg.SizeBytes)
	if err := abrs.SetBounds(0, 64<<cache.BlockBits); err != nil {
		t.Fatal(err)
	}
	run := func(p cache.Policy, cl cache.Classifier) uint64 {
		c := cache.MustNew(cfg, p)
		c.SetClassifier(cl)
		var hotMisses uint64
		for rep := 0; rep < 100; rep++ {
			for i := uint64(0); i < 64; i++ { // hot working set: half capacity
				if !c.Access(mem.Access{Addr: i << cache.BlockBits}) {
					hotMisses++
				}
			}
			for i := uint64(0); i < 4*sets*ways; i++ { // cold storm
				c.Access(mem.Access{Addr: (1 << 20) + (uint64(rep)*4096+i)<<cache.BlockBits})
			}
		}
		return hotMisses
	}
	for _, pr := range pairs {
		g := run(pr.grasp(sets, ways), abrs)
		b := run(pr.base(sets, ways), nil)
		if g >= b {
			t.Errorf("GRASP-%s hot misses %d >= base %d", pr.name, g, b)
		}
	}
}
