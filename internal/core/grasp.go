// Package core implements GRASP, the paper's primary contribution:
// domain-specialized LLC cache management for graph analytics.
//
// GRASP consists of three hardware components (Sec. III):
//
//	A. A software-hardware interface of Address Bound Registers (ABRs), one
//	   pair per Property Array, populated by the graph framework at startup
//	   with the array's virtual address bounds (ABRs type).
//	B. Classification logic that labels each LLC access High-Reuse,
//	   Moderate-Reuse or Low-Reuse by comparing its address against the
//	   LLC-sized regions at the start of each Property Array (Classify).
//	C. Specialized insertion and hit-promotion policies layered on an
//	   unmodified RRIP eviction policy (Policy, per Table II).
package core

import (
	"fmt"

	"grasp/internal/cache"
	"grasp/internal/mem"
	"grasp/internal/policy"
)

// ABR is one Address Bound Register pair delimiting a Property Array
// [Start, End) in virtual address space, with the derived High and
// Moderate Reuse Region boundaries (Fig. 3).
type ABR struct {
	Start, End uint64
	// highEnd/modEnd are precomputed region boundaries: High Reuse Region
	// is [Start, highEnd), Moderate Reuse Region is [highEnd, modEnd).
	highEnd, modEnd uint64
}

// ABRs models the register file plus classification logic that sits beside
// the TLB (Fig. 4). It implements cache.Classifier. With no registered
// pairs every access classifies as Default, disabling the specialized
// management — the hardware's behaviour for non-graph applications.
type ABRs struct {
	llcBytes    uint64
	regionScale float64
	pairs       []ABR
}

// NewABRs creates the register file for an LLC of the given capacity.
func NewABRs(llcBytes uint64) *ABRs {
	return &ABRs{llcBytes: llcBytes, regionScale: 1}
}

// SetRegionScale overrides the High/Moderate Reuse Region sizing: regions
// become scale x LLC-size (divided by the number of Property Arrays). The
// paper's design point is scale 1 — "an LLC-sized memory region"
// (Sec. III-B); the ablation experiment sweeps this knob to show why.
func (r *ABRs) SetRegionScale(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	r.regionScale = scale
	if len(r.pairs) > 0 {
		r.recompute()
	}
}

// SetBounds programs one ABR pair with a Property Array's bounds, as the
// graph framework does at application start-up. Region sizes are
// recomputed: with k Property Arrays, each array's High and Moderate Reuse
// Regions are LLC/k bytes (Sec. III-B, "GRASP divides LLC-size by the
// number of Property Arrays").
func (r *ABRs) SetBounds(start, end uint64) error {
	if end < start {
		return fmt.Errorf("core: ABR bounds reversed: [%#x, %#x)", start, end)
	}
	r.pairs = append(r.pairs, ABR{Start: start, End: end})
	r.recompute()
	return nil
}

// SetArray programs an ABR pair from a registered array.
func (r *ABRs) SetArray(a *mem.Array) error { return r.SetBounds(a.Base, a.End()) }

// Reset clears all pairs (application context switch).
func (r *ABRs) Reset() { r.pairs = nil }

// NumPairs returns the number of programmed ABR pairs.
func (r *ABRs) NumPairs() int { return len(r.pairs) }

// Pairs returns a copy of the programmed registers (tests/inspection).
func (r *ABRs) Pairs() []ABR { return append([]ABR(nil), r.pairs...) }

func (r *ABRs) recompute() {
	region := uint64(float64(r.llcBytes) * r.regionScale / float64(len(r.pairs)))
	for i := range r.pairs {
		p := &r.pairs[i]
		p.highEnd = p.Start + region
		if p.highEnd > p.End {
			p.highEnd = p.End
		}
		p.modEnd = p.Start + 2*region
		if p.modEnd > p.End {
			p.modEnd = p.End
		}
	}
}

// Classify implements cache.Classifier: simple bound comparisons, exactly
// the hardware logic of Sec. III-B. For graph applications (pairs set),
// everything outside the High/Moderate regions — including the long cold
// tail of the Property Arrays, the Vertex and Edge Arrays and frontiers —
// is Low-Reuse. With no pairs set, everything is Default.
func (r *ABRs) Classify(addr uint64) mem.Hint {
	if len(r.pairs) == 0 {
		return mem.HintDefault
	}
	for i := range r.pairs {
		p := &r.pairs[i]
		if addr < p.Start || addr >= p.End {
			continue
		}
		if addr < p.highEnd {
			return mem.HintHigh
		}
		if addr < p.modEnd {
			return mem.HintModerate
		}
		return mem.HintLow
	}
	return mem.HintLow
}

var _ cache.Classifier = (*ABRs)(nil)

// Mode selects the GRASP feature set, matching the Fig. 7 ablation.
type Mode int

// GRASP modes, each adding a feature on top of the previous one.
const (
	// ModeHintsOnly is "RRIP+Hints": RRIP whose two insertion positions are
	// steered by software hints instead of probabilistically — High-Reuse
	// blocks insert near LRU (RRPV max-1), everything else at LRU (max).
	ModeHintsOnly Mode = iota
	// ModeInsertionOnly applies GRASP's full insertion policy (Table II)
	// but leaves RRIP's hit promotion unchanged (every hit -> RRPV 0).
	ModeInsertionOnly
	// ModeFull is the complete GRASP design: specialized insertion plus the
	// hit-promotion policy (High -> 0; Moderate/Low decrement gradually).
	ModeFull
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeHintsOnly:
		return "RRIP+Hints"
	case ModeInsertionOnly:
		return "GRASP (Insertion-Only)"
	default:
		return "GRASP"
	}
}

// Policy is GRASP's specialized cache policy over an unmodified DRRIP base
// (Table II). Eviction is the base scheme's — GRASP deliberately does not
// consult hints at replacement time, which both keeps stale High-Reuse
// blocks evictable and avoids storing the hint in LLC metadata.
type Policy struct {
	base *policy.DRRIP
	mode Mode
}

// NewPolicy creates a GRASP policy with the given feature set.
func NewPolicy(sets, ways uint32, mode Mode) *Policy {
	return &Policy{base: policy.NewDRRIP(sets, ways), mode: mode}
}

var _ cache.Policy = (*Policy)(nil)

// Name implements cache.Policy.
func (p *Policy) Name() string { return p.mode.String() }

// Mode returns the feature set.
func (p *Policy) Mode() Mode { return p.mode }

// OnHit implements cache.Policy (Table II, Hit Policy column).
func (p *Policy) OnHit(set, way uint32, a mem.Access) {
	meta := p.base.Meta()
	switch a.Hint {
	case mem.HintHigh:
		meta.Set(set, way, policy.RRPVNear)
	case mem.HintModerate, mem.HintLow:
		if p.mode == ModeFull {
			// Gradual promotion toward MRU on every hit.
			if v := meta.Get(set, way); v > 0 {
				meta.Set(set, way, v-1)
			}
		} else {
			p.base.OnHit(set, way, a) // base RRIP promotion (RRPV = 0)
		}
	default:
		p.base.OnHit(set, way, a)
	}
}

// OnFill implements cache.Policy (Table II, Insertion Policy column).
func (p *Policy) OnFill(set, way uint32, a mem.Access) {
	meta := p.base.Meta()
	if p.mode == ModeHintsOnly {
		// RRIP+Hints: hint-guided choice between RRIP's two insertion
		// positions only.
		switch a.Hint {
		case mem.HintHigh:
			meta.Set(set, way, policy.RRPVLong)
		case mem.HintModerate, mem.HintLow:
			meta.Set(set, way, policy.RRPVMax)
		default:
			p.base.OnFill(set, way, a)
		}
		return
	}
	switch a.Hint {
	case mem.HintHigh:
		meta.Set(set, way, policy.RRPVNear) // MRU position
	case mem.HintModerate:
		meta.Set(set, way, policy.RRPVLong) // near LRU
	case mem.HintLow:
		meta.Set(set, way, policy.RRPVMax) // LRU: immediate candidate
	default:
		p.base.OnFill(set, way, a) // base scheme's dueling insertion
	}
}

// Victim implements cache.Policy: unmodified base eviction (Sec. III-C,
// "Eviction Policy ... is unmodified from the baseline scheme").
func (p *Policy) Victim(set uint32, a mem.Access) (uint32, bool) {
	return p.base.Victim(set, a)
}

// OnEvict implements cache.Policy.
func (p *Policy) OnEvict(set, way uint32) { p.base.OnEvict(set, way) }
