package core

import (
	"testing"
	"testing/quick"

	"grasp/internal/cache"
	"grasp/internal/mem"
	"grasp/internal/policy"
)

const llcBytes = 1 << 20 // 1MB LLC for classification tests

func TestABRsDefaultWhenUnset(t *testing.T) {
	r := NewABRs(llcBytes)
	if r.Classify(0x1234) != mem.HintDefault {
		t.Fatal("unset ABRs must classify everything Default")
	}
	if r.NumPairs() != 0 {
		t.Fatal("fresh ABRs must have no pairs")
	}
}

func TestABRsSingleArrayRegions(t *testing.T) {
	r := NewABRs(llcBytes)
	base := uint64(0x1000_0000)
	end := base + 8*llcBytes // Property Array = 8x LLC
	if err := r.SetBounds(base, end); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr uint64
		want mem.Hint
	}{
		{base, mem.HintHigh},
		{base + llcBytes - 1, mem.HintHigh},
		{base + llcBytes, mem.HintModerate},
		{base + 2*llcBytes - 1, mem.HintModerate},
		{base + 2*llcBytes, mem.HintLow},
		{end - 1, mem.HintLow},
		{end, mem.HintLow},      // outside array but graph app active
		{0x42, mem.HintLow},     // unrelated address
		{base - 1, mem.HintLow}, // just below
	}
	for _, c := range cases {
		if got := r.Classify(c.addr); got != c.want {
			t.Errorf("Classify(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestABRsTwoArraysSplitRegions(t *testing.T) {
	// With two Property Arrays each gets LLC/2-sized regions.
	r := NewABRs(llcBytes)
	a0, a1 := uint64(0x1000_0000), uint64(0x2000_0000)
	if err := r.SetBounds(a0, a0+4*llcBytes); err != nil {
		t.Fatal(err)
	}
	if err := r.SetBounds(a1, a1+4*llcBytes); err != nil {
		t.Fatal(err)
	}
	half := uint64(llcBytes / 2)
	for _, base := range []uint64{a0, a1} {
		if got := r.Classify(base + half - 1); got != mem.HintHigh {
			t.Errorf("array %#x: high region end misclassified: %v", base, got)
		}
		if got := r.Classify(base + half); got != mem.HintModerate {
			t.Errorf("array %#x: moderate region start misclassified: %v", base, got)
		}
		if got := r.Classify(base + 2*half); got != mem.HintLow {
			t.Errorf("array %#x: tail misclassified: %v", base, got)
		}
	}
}

func TestABRsSmallArrayClamped(t *testing.T) {
	// Property Array smaller than the LLC: the whole array is High.
	r := NewABRs(llcBytes)
	base := uint64(0x1000)
	if err := r.SetBounds(base, base+llcBytes/4); err != nil {
		t.Fatal(err)
	}
	if got := r.Classify(base + llcBytes/4 - 1); got != mem.HintHigh {
		t.Fatalf("small array end = %v, want High", got)
	}
}

func TestABRsReversedBounds(t *testing.T) {
	r := NewABRs(llcBytes)
	if err := r.SetBounds(100, 50); err == nil {
		t.Fatal("expected error for reversed bounds")
	}
}

func TestABRsResetAndSetArray(t *testing.T) {
	as := mem.NewAddressSpace()
	prop := as.Register("prop", 8, 1<<20, true)
	r := NewABRs(llcBytes)
	if err := r.SetArray(prop); err != nil {
		t.Fatal(err)
	}
	if r.Classify(prop.Base) != mem.HintHigh {
		t.Fatal("array start must be High")
	}
	r.Reset()
	if r.Classify(prop.Base) != mem.HintDefault {
		t.Fatal("Reset must restore Default classification")
	}
	if len(r.Pairs()) != 0 {
		t.Fatal("Pairs() after reset not empty")
	}
}

// Table II behaviour: verify the RRPV transitions of the full GRASP policy.
func TestGRASPTableII(t *testing.T) {
	p := NewPolicy(1, 4, ModeFull)
	meta := p.base.Meta()
	// Insertion positions.
	p.OnFill(0, 0, mem.Access{Hint: mem.HintHigh})
	if meta.Get(0, 0) != 0 {
		t.Fatalf("High insert RRPV = %d, want 0", meta.Get(0, 0))
	}
	p.OnFill(0, 1, mem.Access{Hint: mem.HintModerate})
	if meta.Get(0, 1) != 6 {
		t.Fatalf("Moderate insert RRPV = %d, want 6", meta.Get(0, 1))
	}
	p.OnFill(0, 2, mem.Access{Hint: mem.HintLow})
	if meta.Get(0, 2) != 7 {
		t.Fatalf("Low insert RRPV = %d, want 7", meta.Get(0, 2))
	}
	// Hit transitions: High -> 0.
	meta.Set(0, 0, 5)
	p.OnHit(0, 0, mem.Access{Hint: mem.HintHigh})
	if meta.Get(0, 0) != 0 {
		t.Fatalf("High hit RRPV = %d, want 0", meta.Get(0, 0))
	}
	// Moderate/Low: gradual decrement.
	p.OnHit(0, 1, mem.Access{Hint: mem.HintModerate})
	if meta.Get(0, 1) != 5 {
		t.Fatalf("Moderate hit RRPV = %d, want 5", meta.Get(0, 1))
	}
	p.OnHit(0, 2, mem.Access{Hint: mem.HintLow})
	if meta.Get(0, 2) != 6 {
		t.Fatalf("Low hit RRPV = %d, want 6", meta.Get(0, 2))
	}
	// Gradual promotion saturates at 0.
	meta.Set(0, 1, 0)
	p.OnHit(0, 1, mem.Access{Hint: mem.HintModerate})
	if meta.Get(0, 1) != 0 {
		t.Fatalf("Moderate hit at 0 changed RRPV to %d", meta.Get(0, 1))
	}
	// Default hit promotes to 0 (base RRIP).
	meta.Set(0, 3, 4)
	p.OnHit(0, 3, mem.Access{Hint: mem.HintDefault})
	if meta.Get(0, 3) != 0 {
		t.Fatalf("Default hit RRPV = %d, want 0", meta.Get(0, 3))
	}
}

func TestGRASPInsertionOnlyHitPolicy(t *testing.T) {
	p := NewPolicy(1, 4, ModeInsertionOnly)
	meta := p.base.Meta()
	p.OnFill(0, 0, mem.Access{Hint: mem.HintModerate})
	if meta.Get(0, 0) != 6 {
		t.Fatalf("insertion-only Moderate insert = %d, want 6", meta.Get(0, 0))
	}
	// Hit policy unchanged from RRIP: straight to 0.
	p.OnHit(0, 0, mem.Access{Hint: mem.HintModerate})
	if meta.Get(0, 0) != 0 {
		t.Fatalf("insertion-only Moderate hit = %d, want 0 (RRIP promotion)", meta.Get(0, 0))
	}
}

func TestGRASPHintsOnlyInsertion(t *testing.T) {
	p := NewPolicy(1, 4, ModeHintsOnly)
	meta := p.base.Meta()
	p.OnFill(0, 0, mem.Access{Hint: mem.HintHigh})
	if meta.Get(0, 0) != 6 {
		t.Fatalf("RRIP+Hints High insert = %d, want 6 (near LRU)", meta.Get(0, 0))
	}
	p.OnFill(0, 1, mem.Access{Hint: mem.HintLow})
	if meta.Get(0, 1) != 7 {
		t.Fatalf("RRIP+Hints Low insert = %d, want 7", meta.Get(0, 1))
	}
}

func TestGRASPNames(t *testing.T) {
	for mode, want := range map[Mode]string{
		ModeHintsOnly:     "RRIP+Hints",
		ModeInsertionOnly: "GRASP (Insertion-Only)",
		ModeFull:          "GRASP",
	} {
		if got := NewPolicy(1, 4, mode).Name(); got != want {
			t.Errorf("mode %d name = %q, want %q", mode, got, want)
		}
		if NewPolicy(1, 4, mode).Mode() != mode {
			t.Errorf("mode accessor broken for %d", mode)
		}
	}
}

// End-to-end: GRASP protects hot blocks against a cold-block thrash storm
// where plain RRIP loses them.
func TestGRASPProtectsHotBlocks(t *testing.T) {
	const sets, ways = 16, 4
	cfg := cache.Config{SizeBytes: sets * ways * cache.BlockSize, Ways: ways}

	run := func(p cache.Policy, cl cache.Classifier) uint64 {
		c := cache.MustNew(cfg, p)
		c.SetClassifier(cl)
		hot := make([]uint64, 32) // half the cache: hot working set
		for i := range hot {
			hot[i] = uint64(i) << cache.BlockBits
		}
		var hotMisses uint64
		coldBase := uint64(1) << 20
		for rep := 0; rep < 200; rep++ {
			for _, a := range hot {
				if !c.Access(mem.Access{Addr: a}) {
					hotMisses++
				}
			}
			// Cold storm: 4x cache capacity, never reused.
			for i := uint64(0); i < 4*sets*ways; i++ {
				c.Access(mem.Access{Addr: coldBase + (uint64(rep)*4096+i)<<cache.BlockBits})
			}
		}
		return hotMisses
	}

	abrs := NewABRs(cfg.SizeBytes)
	// Hot region: the first 32 blocks; everything else is beyond the array.
	if err := abrs.SetBounds(0, 32<<cache.BlockBits); err != nil {
		t.Fatal(err)
	}
	graspMisses := run(NewPolicy(sets, ways, ModeFull), abrs)
	rripMisses := run(policy.NewDRRIP(sets, ways), nil)
	if graspMisses >= rripMisses {
		t.Fatalf("GRASP hot misses %d not better than RRIP %d under thrashing", graspMisses, rripMisses)
	}
	// GRASP should keep the hot set essentially resident after warm-up.
	if graspMisses > 64 {
		t.Fatalf("GRASP hot misses = %d, want near-cold-only (<= 64)", graspMisses)
	}
}

// Flexibility (anti-pinning) property: blocks that stop being accessed must
// eventually yield space even if they were High-Reuse.
func TestGRASPHighReuseBlocksEventuallyEvictable(t *testing.T) {
	const ways = 4
	p := NewPolicy(1, ways, ModeFull)
	c := cache.MustNew(cache.Config{SizeBytes: ways * cache.BlockSize, Ways: ways}, p)
	// Fill the set with High-Reuse blocks (RRPV 0), then stream Moderate
	// blocks; aging must eventually evict the stale High blocks.
	for i := uint64(0); i < ways; i++ {
		c.Access(mem.Access{Addr: i << cache.BlockBits, Hint: mem.HintHigh})
	}
	for i := uint64(100); i < 120; i++ {
		c.Access(mem.Access{Addr: i << cache.BlockBits, Hint: mem.HintModerate})
	}
	evicted := 0
	for i := uint64(0); i < ways; i++ {
		if !c.Contains(i << cache.BlockBits) {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("stale High-Reuse blocks were never evicted; GRASP must not pin")
	}
}

func TestGRASPLRUStackManipulation(t *testing.T) {
	p := NewLRUPolicy(1, 4)
	// Fill ways 0..3 with Default hint: each goes to MRU.
	for w := uint32(0); w < 4; w++ {
		p.OnFill(0, w, mem.Access{})
	}
	// Stack should now be [3 2 1 0].
	if got := p.StackOrder(0); got[0] != 3 || got[3] != 0 {
		t.Fatalf("stack = %v, want [3 2 1 0]", got)
	}
	// Low-Reuse fill of way 0 goes to LRU.
	p.OnFill(0, 0, mem.Access{Hint: mem.HintLow})
	if got := p.StackOrder(0); got[3] != 0 {
		t.Fatalf("Low fill not at LRU: %v", got)
	}
	// Moderate fill of way 1 goes one above LRU.
	p.OnFill(0, 1, mem.Access{Hint: mem.HintModerate})
	if got := p.StackOrder(0); got[2] != 1 {
		t.Fatalf("Moderate fill not near LRU: %v", got)
	}
	// Moderate hit moves up exactly one step.
	p.OnHit(0, 1, mem.Access{Hint: mem.HintModerate})
	if got := p.StackOrder(0); got[1] != 1 {
		t.Fatalf("Moderate hit did not move one step: %v", got)
	}
	// High hit goes straight to MRU.
	p.OnHit(0, 0, mem.Access{Hint: mem.HintHigh})
	if got := p.StackOrder(0); got[0] != 0 {
		t.Fatalf("High hit not at MRU: %v", got)
	}
	// Victim is the stack bottom.
	v, bypass := p.Victim(0, mem.Access{})
	if bypass {
		t.Fatal("GRASP-LRU must not bypass")
	}
	if got := p.StackOrder(0); uint32(got[3]) != v {
		t.Fatalf("victim %d is not the LRU way %d", v, got[3])
	}
}

func TestGRASPLRUBehavesAsLRUWithoutHints(t *testing.T) {
	// With Default hints only, GRASP-LRU must be exactly LRU.
	f := func(seed uint64, n uint16) bool {
		r := seed*2654435761 + 1
		next := func() uint64 {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			return r
		}
		const sets, ways = 4, 4
		cfgSize := uint64(sets * ways * cache.BlockSize)
		cg := cache.MustNew(cache.Config{SizeBytes: cfgSize, Ways: ways}, NewLRUPolicy(sets, ways))
		cl := cache.MustNew(cache.Config{SizeBytes: cfgSize, Ways: ways}, cache.NewLRU(sets, ways))
		for i := 0; i < int(n%1000)+10; i++ {
			a := mem.Access{Addr: (next() % 128) << cache.BlockBits}
			if cg.Access(a) != cl.Access(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Classify is total and consistent — every address gets exactly
// one hint, and addresses inside a registered array never classify Default.
func TestClassifyQuick(t *testing.T) {
	f := func(addrs []uint64) bool {
		r := NewABRs(llcBytes)
		base := uint64(0x4000_0000)
		if err := r.SetBounds(base, base+16*llcBytes); err != nil {
			return false
		}
		for _, a := range addrs {
			h := r.Classify(a)
			if h == mem.HintDefault {
				return false // graph app active: Default impossible
			}
			inHigh := a >= base && a < base+llcBytes
			if inHigh != (h == mem.HintHigh) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
