package core

import (
	"grasp/internal/cache"
	"grasp/internal/mem"
)

// LRUPolicy is GRASP implemented over an LRU base instead of RRIP,
// demonstrating the paper's claim that "GRASP is not fundamentally
// dependent on RRIP and can be implemented over many other schemes
// including, but not limited to, LRU, Pseudo-LRU and DIP" (Sec. III-C).
//
// The recency stack is explicit per set so that the specialized insertion
// positions (MRU / near-LRU / LRU) and the gradual one-step hit promotion
// have exact analogues of the RRPV manipulations in Table II:
//
//	High-Reuse:     insert at MRU, promote to MRU on hit
//	Moderate-Reuse: insert one above LRU, move one step MRU-ward on hit
//	Low-Reuse:      insert at LRU, move one step MRU-ward on hit
//	Default:        insert at MRU, promote to MRU on hit (plain LRU)
type LRUPolicy struct {
	// order[set] lists ways from MRU (index 0) to LRU (index ways-1).
	order [][]uint8
	ways  uint32
}

// NewLRUPolicy creates a GRASP-over-LRU policy.
func NewLRUPolicy(sets, ways uint32) *LRUPolicy {
	p := &LRUPolicy{order: make([][]uint8, sets), ways: ways}
	for s := range p.order {
		p.order[s] = make([]uint8, ways)
		for w := range p.order[s] {
			p.order[s][w] = uint8(w)
		}
	}
	return p
}

var _ cache.Policy = (*LRUPolicy)(nil)

// Name implements cache.Policy.
func (p *LRUPolicy) Name() string { return "GRASP-LRU" }

// position returns the stack index of way in set (0 = MRU).
func (p *LRUPolicy) position(set uint32, way uint8) int {
	for i, w := range p.order[set] {
		if w == way {
			return i
		}
	}
	panic("core: way missing from recency stack")
}

// moveTo relocates way to stack index target.
func (p *LRUPolicy) moveTo(set uint32, way uint8, target int) {
	st := p.order[set]
	cur := p.position(set, way)
	if cur == target {
		return
	}
	if cur < target {
		copy(st[cur:], st[cur+1:target+1])
	} else {
		copy(st[target+1:cur+1], st[target:cur])
	}
	st[target] = way
}

// OnHit implements cache.Policy.
func (p *LRUPolicy) OnHit(set, way uint32, a mem.Access) {
	w := uint8(way)
	switch a.Hint {
	case mem.HintModerate, mem.HintLow:
		if cur := p.position(set, w); cur > 0 {
			p.moveTo(set, w, cur-1) // one step toward MRU
		}
	default: // High-Reuse and Default: straight to MRU
		p.moveTo(set, w, 0)
	}
}

// OnFill implements cache.Policy.
func (p *LRUPolicy) OnFill(set, way uint32, a mem.Access) {
	w := uint8(way)
	last := int(p.ways) - 1
	switch a.Hint {
	case mem.HintModerate:
		target := last - 1
		if target < 0 {
			target = 0
		}
		p.moveTo(set, w, target)
	case mem.HintLow:
		p.moveTo(set, w, last)
	default:
		p.moveTo(set, w, 0)
	}
}

// Victim implements cache.Policy: the LRU way, hint-blind as always.
func (p *LRUPolicy) Victim(set uint32, _ mem.Access) (uint32, bool) {
	return uint32(p.order[set][p.ways-1]), false
}

// OnEvict implements cache.Policy.
func (p *LRUPolicy) OnEvict(uint32, uint32) {}

// StackOrder returns a copy of the recency stack of a set (tests).
func (p *LRUPolicy) StackOrder(set uint32) []uint8 {
	return append([]uint8(nil), p.order[set]...)
}
