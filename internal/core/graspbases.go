package core

import (
	"grasp/internal/cache"
	"grasp/internal/mem"
	"grasp/internal/policy"
)

// GRASP over additional base schemes, substantiating the paper's claim
// that "GRASP is not fundamentally dependent on RRIP and can be
// implemented over many other schemes including, but not limited to, LRU,
// Pseudo-LRU and DIP" (Sec. III-C). LRUPolicy covers the LRU base; this
// file adds the Pseudo-LRU and DIP bases.

// PLRUPolicy is GRASP over tree-PLRU. PLRU has no notion of insertion
// position, so the specialized policies act through the protection bits:
//
//	High-Reuse:     touch on insert and on hit (fully protected path)
//	Moderate-Reuse: leave the tree unchanged on insert, touch on every
//	                second hit (gradual promotion)
//	Low-Reuse:      leave the tree unchanged on insert (the block stays
//	                the path's next victim), touch on every second hit
//	Default:        plain PLRU
type PLRUPolicy struct {
	base *policy.PLRU
	// hitParity implements "promote on every second hit" for Moderate/Low
	// blocks without per-block metadata (a single global toggle, in the
	// spirit of GRASP's negligible hardware cost).
	hitParity bool
}

// NewPLRUPolicy creates GRASP over tree-PLRU.
func NewPLRUPolicy(sets, ways uint32) *PLRUPolicy {
	return &PLRUPolicy{base: policy.NewPLRU(sets, ways)}
}

var _ cache.Policy = (*PLRUPolicy)(nil)

// Name implements cache.Policy.
func (p *PLRUPolicy) Name() string { return "GRASP-PLRU" }

// OnHit implements cache.Policy.
func (p *PLRUPolicy) OnHit(set, way uint32, a mem.Access) {
	switch a.Hint {
	case mem.HintModerate, mem.HintLow:
		p.hitParity = !p.hitParity
		if p.hitParity {
			p.base.OnHit(set, way, a)
		}
	default:
		p.base.OnHit(set, way, a)
	}
}

// OnFill implements cache.Policy.
func (p *PLRUPolicy) OnFill(set, way uint32, a mem.Access) {
	switch a.Hint {
	case mem.HintModerate, mem.HintLow:
		// Do not touch: the tree still points at this way, making it an
		// immediate replacement candidate (the LRU-insertion analogue).
	default:
		p.base.OnFill(set, way, a)
	}
}

// Victim implements cache.Policy: unmodified PLRU eviction.
func (p *PLRUPolicy) Victim(set uint32, a mem.Access) (uint32, bool) {
	return p.base.Victim(set, a)
}

// OnEvict implements cache.Policy.
func (p *PLRUPolicy) OnEvict(set, way uint32) { p.base.OnEvict(set, way) }

// DIPPolicy is GRASP over DIP: the Default class keeps DIP's dueling
// insertion, while hinted classes are steered exactly like GRASP-LRU
// (DIP's base is an LRU stack). Implemented by composing the explicit
// recency stack of LRUPolicy for hinted accesses with a BIP-style bimodal
// default insertion.
type DIPPolicy struct {
	stack   *LRUPolicy
	counter uint64
	psel    int32
	sets    uint32
}

// NewDIPPolicy creates GRASP over DIP.
func NewDIPPolicy(sets, ways uint32) *DIPPolicy {
	return &DIPPolicy{stack: NewLRUPolicy(sets, ways), sets: sets}
}

var _ cache.Policy = (*DIPPolicy)(nil)

// Name implements cache.Policy.
func (p *DIPPolicy) Name() string { return "GRASP-DIP" }

// OnHit implements cache.Policy: hinted behaviour as in GRASP-LRU.
func (p *DIPPolicy) OnHit(set, way uint32, a mem.Access) { p.stack.OnHit(set, way, a) }

const dipDuelPeriod = 32

func (p *DIPPolicy) leader(set uint32) int {
	period := uint32(dipDuelPeriod)
	if p.sets < period {
		period = p.sets
	}
	switch set % period {
	case 0:
		return +1
	case period / 2:
		return -1
	}
	return 0
}

// OnFill implements cache.Policy.
func (p *DIPPolicy) OnFill(set, way uint32, a mem.Access) {
	if a.Hint != mem.HintDefault {
		p.stack.OnFill(set, way, a)
		return
	}
	// DIP dueling for unhinted fills: LRU insertion vs bimodal insertion.
	useLRUIns := p.psel >= 0
	switch p.leader(set) {
	case +1:
		useLRUIns = true
		if p.psel > -1024 {
			p.psel--
		}
	case -1:
		useLRUIns = false
		if p.psel < 1024 {
			p.psel++
		}
	}
	if useLRUIns {
		p.stack.OnFill(set, way, mem.Access{Hint: mem.HintDefault}) // MRU
		return
	}
	p.counter++
	if p.counter%32 == 0 {
		p.stack.OnFill(set, way, mem.Access{Hint: mem.HintDefault}) // MRU
	} else {
		p.stack.OnFill(set, way, mem.Access{Hint: mem.HintLow}) // LRU position
	}
}

// Victim implements cache.Policy: LRU-stack bottom, hint-blind.
func (p *DIPPolicy) Victim(set uint32, a mem.Access) (uint32, bool) {
	return p.stack.Victim(set, a)
}

// OnEvict implements cache.Policy.
func (p *DIPPolicy) OnEvict(set, way uint32) { p.stack.OnEvict(set, way) }
