package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
% another comment
0 1
1 2

2 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Weighted() {
		t.Fatal("unweighted list parsed as weighted")
	}
	if g.OutNeighbors(0)[0] != 1 {
		t.Fatal("edge 0->1 missing")
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	in := "0 1 7\n1 2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("weighted list parsed as unweighted")
	}
	if w := g.OutNeighborWeights(0)[0]; w != 7 {
		t.Fatalf("weight = %d, want 7", w)
	}
}

func TestReadEdgeListSparseIDs(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("5 9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("vertices = %d, want 10 (max ID + 1)", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"0\n",          // too few fields
		"0 1 2 3\n",    // too many fields
		"x 1\n",        // bad src
		"0 y\n",        // bad dst
		"0 1 zzz\n",    // bad weight
		"# only\n%c\n", // comments only
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := GenRMATDefault(8, 4, 77, weighted)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Vertex count may shrink if trailing vertices are isolated; edge
		// multiset must survive exactly.
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("weighted=%v: edges %d -> %d", weighted, g.NumEdges(), g2.NumEdges())
		}
		if g2.Weighted() != weighted {
			// Unweighted graphs write no weight column; weighted keep it.
			t.Fatalf("weighted flag changed: %v -> %v", weighted, g2.Weighted())
		}
		for v := uint32(0); v < g2.NumVertices(); v++ {
			a, b := g.OutNeighbors(v), g2.OutNeighbors(v)
			if len(a) != len(b) {
				t.Fatalf("degree mismatch at %d", v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("neighbor mismatch at %d[%d]", v, i)
				}
			}
		}
	}
}
