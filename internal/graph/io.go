package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialization of CSR graphs so generated datasets can be saved by
// cmd/graphgen and reloaded without regeneration. The format is a simple
// little-endian container:
//
//	magic "GCSR" | version u32 | n u32 | m u64 | flags u32
//	OutIndex [n+1]u64 | OutEdges [m]u32 | InIndex [n+1]u64 | InEdges [m]u32
//	(if weighted flag) OutWeights [m]i32 | InWeights [m]i32
const (
	magic         = "GCSR"
	formatVersion = 1
	flagWeighted  = 1 << 0
)

// WriteTo serializes the graph. It returns the number of bytes written.
func (g *CSR) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(magic); err != nil {
		return written, err
	}
	written += int64(len(magic))
	var flags uint32
	if g.Weighted() {
		flags |= flagWeighted
	}
	for _, v := range []any{uint32(formatVersion), g.n, g.m, flags,
		g.OutIndex, g.OutEdges, g.InIndex, g.InEdges} {
		if err := put(v); err != nil {
			return written, err
		}
	}
	if g.Weighted() {
		if err := put(g.OutWeights); err != nil {
			return written, err
		}
		if err := put(g.InWeights); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// readChunkElems bounds how many array elements ReadFrom materializes per
// binary.Read call. The header's n/m fields are untrusted: a hostile file
// can declare billions of elements in a few bytes, and a single up-front
// make() would commit tens of gigabytes before the first read fails. With
// chunked reads, allocation grows only as fast as the stream actually
// delivers data, so a truncated or lying file errors out after at most one
// chunk beyond its real content.
const readChunkElems = 1 << 16

func readNums[T uint64 | uint32 | int32](r io.Reader, count uint64, what string) ([]T, error) {
	cap0 := count
	if cap0 > readChunkElems {
		cap0 = readChunkElems
	}
	out := make([]T, 0, cap0)
	for count > 0 {
		c := count
		if c > readChunkElems {
			c = readChunkElems
		}
		chunk := make([]T, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, fmt.Errorf("graph: reading %s: %w", what, err)
		}
		out = append(out, chunk...)
		count -= c
	}
	return out, nil
}

// checkIndex validates a just-read CSR index array against the header's
// n/m before any edge array is allocated: it must start at 0, be monotonic,
// and end exactly at m. Catching a lying header here keeps ReadFrom from
// reading (and allocating) edge arrays the index cannot describe.
func checkIndex(index []uint64, m uint64, what string) error {
	if index[0] != 0 {
		return fmt.Errorf("graph: %s must start at 0, got %d", what, index[0])
	}
	for i := 1; i < len(index); i++ {
		if index[i] < index[i-1] {
			return fmt.Errorf("graph: %s not monotonic at entry %d", what, i)
		}
	}
	if last := index[len(index)-1]; last != m {
		return fmt.Errorf("graph: %s ends at %d, header declares m=%d", what, last, m)
	}
	return nil
}

// ReadFrom deserializes a graph written by WriteTo. The header's n/m fields
// are validated against the stream's actual content as the arrays are read
// (in bounded chunks), so a corrupt or hostile file fails with an error
// instead of a multi-gigabyte allocation.
func ReadFrom(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("graph: bad magic %q", hdr)
	}
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var version, flags uint32
	g := &CSR{}
	if err := get(&version); err != nil {
		return nil, err
	}
	if version != formatVersion {
		return nil, fmt.Errorf("graph: unsupported format version %d", version)
	}
	if err := get(&g.n); err != nil {
		return nil, err
	}
	if err := get(&g.m); err != nil {
		return nil, err
	}
	if err := get(&flags); err != nil {
		return nil, err
	}
	if flags&^uint32(flagWeighted) != 0 {
		return nil, fmt.Errorf("graph: unknown header flags %#x", flags)
	}
	var err error
	if g.OutIndex, err = readNums[uint64](br, uint64(g.n)+1, "OutIndex"); err != nil {
		return nil, err
	}
	if err := checkIndex(g.OutIndex, g.m, "OutIndex"); err != nil {
		return nil, err
	}
	if g.OutEdges, err = readNums[uint32](br, g.m, "OutEdges"); err != nil {
		return nil, err
	}
	if g.InIndex, err = readNums[uint64](br, uint64(g.n)+1, "InIndex"); err != nil {
		return nil, err
	}
	if err := checkIndex(g.InIndex, g.m, "InIndex"); err != nil {
		return nil, err
	}
	if g.InEdges, err = readNums[uint32](br, g.m, "InEdges"); err != nil {
		return nil, err
	}
	if flags&flagWeighted != 0 {
		if g.OutWeights, err = readNums[int32](br, g.m, "OutWeights"); err != nil {
			return nil, err
		}
		if g.InWeights, err = readNums[int32](br, g.m, "InWeights"); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: loaded graph invalid: %w", err)
	}
	return g, nil
}
