package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialization of CSR graphs so generated datasets can be saved by
// cmd/graphgen and reloaded without regeneration. The format is a simple
// little-endian container:
//
//	magic "GCSR" | version u32 | n u32 | m u64 | flags u32
//	OutIndex [n+1]u64 | OutEdges [m]u32 | InIndex [n+1]u64 | InEdges [m]u32
//	(if weighted flag) OutWeights [m]i32 | InWeights [m]i32
const (
	magic         = "GCSR"
	formatVersion = 1
	flagWeighted  = 1 << 0
)

// WriteTo serializes the graph. It returns the number of bytes written.
func (g *CSR) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(magic); err != nil {
		return written, err
	}
	written += int64(len(magic))
	var flags uint32
	if g.Weighted() {
		flags |= flagWeighted
	}
	for _, v := range []any{uint32(formatVersion), g.n, g.m, flags,
		g.OutIndex, g.OutEdges, g.InIndex, g.InEdges} {
		if err := put(v); err != nil {
			return written, err
		}
	}
	if g.Weighted() {
		if err := put(g.OutWeights); err != nil {
			return written, err
		}
		if err := put(g.InWeights); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadFrom deserializes a graph written by WriteTo.
func ReadFrom(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("graph: bad magic %q", hdr)
	}
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var version, flags uint32
	g := &CSR{}
	if err := get(&version); err != nil {
		return nil, err
	}
	if version != formatVersion {
		return nil, fmt.Errorf("graph: unsupported format version %d", version)
	}
	if err := get(&g.n); err != nil {
		return nil, err
	}
	if err := get(&g.m); err != nil {
		return nil, err
	}
	if err := get(&flags); err != nil {
		return nil, err
	}
	g.OutIndex = make([]uint64, g.n+1)
	g.OutEdges = make([]VertexID, g.m)
	g.InIndex = make([]uint64, g.n+1)
	g.InEdges = make([]VertexID, g.m)
	for _, v := range []any{g.OutIndex, g.OutEdges, g.InIndex, g.InEdges} {
		if err := get(v); err != nil {
			return nil, err
		}
	}
	if flags&flagWeighted != 0 {
		g.OutWeights = make([]int32, g.m)
		g.InWeights = make([]int32, g.m)
		if err := get(g.OutWeights); err != nil {
			return nil, err
		}
		if err := get(g.InWeights); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: loaded graph invalid: %w", err)
	}
	return g, nil
}
