package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Real-graph ingestion: streaming parsers for the two interchange formats
// real datasets ship in — SNAP/GAP-style text edge lists (.txt/.el/.wel)
// and Matrix Market coordinate files (.mtx, SuiteSparse) — plus format
// auto-detection by extension and content sniffing. All formats converge
// on the FromEdges -> CSR path, so an ingested LiveJournal or road network
// behaves exactly like a synthetic dataset everywhere downstream.

// maxIngestVertices bounds the vertex count an ingested file may imply
// relative to the number of edges it actually contains. Text formats size
// the graph by declared dimensions or maximum vertex ID, which a hostile
// (or truncated) file can inflate to billions while carrying a handful of
// edges; the CSR index arrays alone would then commit tens of gigabytes.
// Real graphs never have 8x more vertices than edges at scale, so the
// guard rejects such files instead of allocating.
func maxIngestVertices(edges int) uint64 { return 1024 + 8*uint64(edges) }

func checkVertexBound(n uint64, edges int, format string) error {
	if n > maxIngestVertices(edges) {
		return fmt.Errorf("graph: %s declares %d vertices for %d edges; vertex IDs/dimensions this sparse are rejected (bound %d) — compact the IDs first",
			format, n, edges, maxIngestVertices(edges))
	}
	if n > math.MaxUint32 {
		return fmt.Errorf("graph: %s declares %d vertices, beyond the 32-bit vertex ID space", format, n)
	}
	return nil
}

// ReadMatrixMarket parses a Matrix Market coordinate file as a directed
// graph: each entry (i, j) becomes the edge i-1 -> j-1 (Matrix Market is
// 1-based), with symmetric files contributing the mirror edge for
// off-diagonal entries. Supported headers are
//
//	%%MatrixMarket matrix coordinate {real|integer|pattern} {general|symmetric}
//
// real/integer values become edge weights (reals are rounded); pattern
// files are unweighted. Array format, complex/hermitian fields and
// skew-symmetric symmetry have no graph interpretation here and are
// rejected.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Header line.
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("graph: reading MatrixMarket header: %w", err)
		}
		return nil, fmt.Errorf("graph: empty MatrixMarket file")
	}
	hdr := strings.Fields(strings.ToLower(sc.Text()))
	if len(hdr) != 5 || hdr[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("graph: bad MatrixMarket header %q", sc.Text())
	}
	if hdr[1] != "matrix" || hdr[2] != "coordinate" {
		return nil, fmt.Errorf("graph: unsupported MatrixMarket type %q (want matrix coordinate)", sc.Text())
	}
	field, symmetry := hdr[3], hdr[4]
	weighted := false
	switch field {
	case "pattern":
	case "real", "integer":
		weighted = true
	default:
		return nil, fmt.Errorf("graph: unsupported MatrixMarket field %q", field)
	}
	symmetric := false
	switch symmetry {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("graph: unsupported MatrixMarket symmetry %q", symmetry)
	}

	// Size line (after % comments).
	var rows, cols, nnz uint64
	sized := false
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '%' {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'rows cols nnz', got %q", lineNo, line)
		}
		var err error
		if rows, err = strconv.ParseUint(f[0], 10, 64); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad row count %q: %v", lineNo, f[0], err)
		}
		if cols, err = strconv.ParseUint(f[1], 10, 64); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad column count %q: %v", lineNo, f[1], err)
		}
		if nnz, err = strconv.ParseUint(f[2], 10, 64); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad entry count %q: %v", lineNo, f[2], err)
		}
		sized = true
		break
	}
	if !sized {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("graph: reading MatrixMarket size line: %w", err)
		}
		return nil, fmt.Errorf("graph: MatrixMarket file has no size line")
	}
	n := rows
	if cols > n {
		n = cols
	}

	// Entries. Capacity is bounded: the declared nnz is untrusted until the
	// entries actually arrive.
	prealloc := nnz
	if symmetric {
		prealloc *= 2
	}
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	edges := make([]Edge, 0, prealloc)
	var count uint64
	wantFields := 2
	if weighted {
		wantFields = 3
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '%' {
			continue
		}
		f := strings.Fields(line)
		if len(f) != wantFields {
			return nil, fmt.Errorf("graph: line %d: want %d fields for a %s entry, got %q", lineNo, wantFields, field, line)
		}
		i, err := strconv.ParseUint(f[0], 10, 64)
		if err != nil || i == 0 || i > rows {
			return nil, fmt.Errorf("graph: line %d: row index %q out of [1, %d]", lineNo, f[0], rows)
		}
		j, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil || j == 0 || j > cols {
			return nil, fmt.Errorf("graph: line %d: column index %q out of [1, %d]", lineNo, f[1], cols)
		}
		var w int32 = 1
		if weighted {
			v, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad value %q: %v", lineNo, f[2], err)
			}
			if math.IsNaN(v) || v > math.MaxInt32 || v < math.MinInt32 {
				return nil, fmt.Errorf("graph: line %d: value %q outside the int32 weight range", lineNo, f[2])
			}
			w = int32(math.Round(v))
		}
		count++
		if count > nnz {
			return nil, fmt.Errorf("graph: line %d: more entries than the declared %d", lineNo, nnz)
		}
		e := Edge{Src: uint32(i - 1), Dst: uint32(j - 1), Weight: w}
		edges = append(edges, e)
		if symmetric && i != j {
			edges = append(edges, Edge{Src: e.Dst, Dst: e.Src, Weight: w})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading MatrixMarket entries: %w", err)
	}
	if count != nnz {
		return nil, fmt.Errorf("graph: MatrixMarket file declares %d entries but contains %d", nnz, count)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("graph: MatrixMarket file has no entries")
	}
	if err := checkVertexBound(n, len(edges), "MatrixMarket file"); err != nil {
		return nil, err
	}
	return FromEdges(uint32(n), edges, weighted)
}

// ReadGraph parses a graph from r, sniffing the format from the stream's
// first bytes: the GCSR magic selects the binary format, a "%%MatrixMarket"
// banner selects Matrix Market, and anything else is treated as a text edge
// list. name is used in error messages only.
func ReadGraph(r io.Reader, name string) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(len("%%MatrixMarket"))
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("graph: sniffing %s: %w", name, err)
	}
	switch {
	case len(head) >= len(magic) && string(head[:len(magic)]) == magic:
		return ReadFrom(br)
	case strings.EqualFold(string(head), "%%MatrixMarket"):
		return ReadMatrixMarket(br)
	default:
		return ReadEdgeList(br)
	}
}

// ReadGraphFile opens and parses a graph file, choosing the parser by
// extension (.gcsr binary, .mtx Matrix Market, .el/.wel/.txt/.edges edge
// list) and falling back to content sniffing for anything else.
func ReadGraphFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".gcsr":
		return ReadFrom(f)
	case ".mtx":
		return ReadMatrixMarket(f)
	case ".el", ".wel", ".txt", ".edges":
		return ReadEdgeList(f)
	default:
		return ReadGraph(f, path)
	}
}
