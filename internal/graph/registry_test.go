package graph

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestResolveBuiltinNames(t *testing.T) {
	for _, d := range Datasets() {
		r, err := Resolve(d.Name)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if r.Kind == KindFile || r.FullName != d.FullName {
			t.Fatalf("%s resolved to %+v", d.Name, r)
		}
	}
}

func TestResolveUnknownSpec(t *testing.T) {
	_, err := Resolve("no-such-dataset-or-file")
	if err == nil {
		t.Fatal("expected error")
	}
	// The error must help: list the known names.
	if want := "lj"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not list known datasets", err)
	}
}

func writeTestEdgeList(t *testing.T, dir, name string, g *CSR) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResolveAndLoadFile(t *testing.T) {
	ref := GenRMATDefault(6, 4, 13, false)
	path := writeTestEdgeList(t, t.TempDir(), "toy.el", ref)

	d, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != KindFile || d.Name != "toy" || d.Path != path {
		t.Fatalf("resolved %+v", d)
	}
	g, err := d.Load(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != ref.NumEdges() {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), ref.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// The ingest must have left a fresh GCSR sidecar that parses to the
	// same graph.
	side, err := ReadGraphFile(path + ".gcsr")
	if err != nil {
		t.Fatalf("sidecar: %v", err)
	}
	if side.NumEdges() != g.NumEdges() || side.NumVertices() != g.NumVertices() {
		t.Fatal("sidecar disagrees with ingest")
	}

	// Second load hits the in-memory memo: same pointer.
	g2, err := d.Load(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Fatal("file graph not memoized")
	}
}

// TestLoadReingestsEditedFile: the in-memory memo is validated by
// (size, mtime), so editing a graph file between loads re-ingests it
// instead of serving the stale parse. This matters in a long-lived
// daemon: the jobs layer content-addresses file graphs by their bytes,
// and a stale memo would pair the new address with the old graph.
func TestLoadReingestsEditedFile(t *testing.T) {
	ref := GenPath(6)
	dir := t.TempDir()
	path := writeTestEdgeList(t, dir, "edit.el", ref)
	d, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := d.Load(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != ref.NumVertices() {
		t.Fatalf("first load has %d vertices, want %d", g1.NumVertices(), ref.NumVertices())
	}

	// Overwrite with a different graph and push the mtime into the future,
	// so neither coarse filesystem timestamps nor the (now stale) sidecar
	// can mask the edit.
	edited := GenCycle(9)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, edited); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}

	g2, err := d.Load(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2 == g1 {
		t.Fatal("edited file served from the stale memo")
	}
	if g2.NumVertices() != edited.NumVertices() {
		t.Fatalf("reloaded graph has %d vertices, want the edited file's %d",
			g2.NumVertices(), edited.NumVertices())
	}
}

// plantStamp writes a sidecar stamp recording the source's CURRENT state
// and the sidecar's current content digest, as a successful conversion
// would have.
func plantStamp(t *testing.T, src, sidecar string) {
	t.Helper()
	fi, err := os.Stat(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(sidecar)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	stamp := []byte(fmt.Sprintf("%d %d %s\n",
		fi.Size(), fi.ModTime().UnixNano(), hex.EncodeToString(sum[:])))
	if err := os.WriteFile(sidecarStamp(sidecar), stamp, 0o644); err != nil {
		t.Fatal(err)
	}
}

// mustLoadFile stats path and ingests it, failing the test on error.
func mustLoadFile(t *testing.T, path string) *CSR {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := loadFile(path, fi)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLoadPrefersFreshSidecar(t *testing.T) {
	ref := GenPath(6)
	dir := t.TempDir()
	path := writeTestEdgeList(t, dir, "cached.el", ref)

	// Plant a sidecar describing a DIFFERENT graph with a stamp matching
	// the source's current state: the loader must trust it (that is what
	// "cached conversion" means).
	other := GenCycle(9)
	var buf bytes.Buffer
	if _, err := other.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".gcsr", buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	plantStamp(t, path, path+".gcsr")
	g := mustLoadFile(t, path)
	if g.NumVertices() != other.NumVertices() {
		t.Fatalf("loaded %d vertices, want the sidecar's %d", g.NumVertices(), other.NumVertices())
	}

	// A corrupt sidecar falls back to re-ingesting the source.
	if err := os.WriteFile(path+".gcsr", []byte("GCSRgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	plantStamp(t, path, path+".gcsr")
	g = mustLoadFile(t, path)
	if g.NumVertices() != ref.NumVertices() {
		t.Fatalf("fallback loaded %d vertices, want %d", g.NumVertices(), ref.NumVertices())
	}

	// A sidecar whose bytes do not match the stamp's digest (the torn
	// state two racing processes can leave) is rejected even though the
	// source stamp matches.
	var swapped bytes.Buffer
	if _, err := GenCycle(4).WriteTo(&swapped); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".gcsr", swapped.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// The stamp (rewritten by the fallback re-ingest above) digests the
	// previous conversion, not the swapped-in bytes.
	g = mustLoadFile(t, path)
	if g.NumVertices() != ref.NumVertices() {
		t.Fatalf("digest-mismatched sidecar trusted: loaded %d vertices, want re-ingested %d",
			g.NumVertices(), ref.NumVertices())
	}
}

// TestSidecarRejectsRestoredOlderSource: replacing the source with a file
// whose mtime predates the sidecar (cp -p backup restore, git checkout)
// must invalidate the conversion. An mtime-ordering check ("sidecar newer
// than source") would trust it and serve the previous content's parse
// under the restored content's identity; the exact-stamp check re-ingests.
func TestSidecarRejectsRestoredOlderSource(t *testing.T) {
	v2 := GenCycle(9)
	dir := t.TempDir()
	path := writeTestEdgeList(t, dir, "restored.el", v2)
	mustLoadFile(t, path) // writes sidecar + stamp for v2

	// Restore "v1": different content with an mtime OLDER than the sidecar.
	v1 := GenPath(6)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, v1); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, past, past); err != nil {
		t.Fatal(err)
	}

	g := mustLoadFile(t, path)
	if g.NumVertices() != v1.NumVertices() {
		t.Fatalf("loaded %d vertices, want the restored file's %d (stale sidecar trusted)",
			g.NumVertices(), v1.NumVertices())
	}
}

func TestLoadAddsDeterministicWeights(t *testing.T) {
	ref := GenRMATDefault(5, 4, 17, false)
	path := writeTestEdgeList(t, t.TempDir(), "w.el", ref)
	d, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := d.Load(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Weighted() {
		t.Fatal("weighted load returned unweighted graph")
	}
	for _, w := range g1.OutWeights {
		if w < 1 || w > maxWeight {
			t.Fatalf("weight %d out of [1, %d]", w, maxWeight)
		}
	}
	// Weights are a pure function of the graph: recomputing matches.
	g2 := withSyntheticWeights(g1)
	for i := range g1.OutWeights {
		if g1.OutWeights[i] != g2.OutWeights[i] {
			t.Fatal("synthetic weights not deterministic")
		}
	}
}

func TestLoadStripsUnrequestedWeights(t *testing.T) {
	// A weighted file loaded with weighted=false must come back unweighted,
	// or non-SSSP apps would trace weight-array accesses they never make.
	ref := GenRMATDefault(5, 4, 19, true)
	path := writeTestEdgeList(t, t.TempDir(), "weighted.wel", ref)
	d, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Load(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Weighted() {
		t.Fatal("unweighted load returned a weighted graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The weighted view of the same file must still carry the file's own
	// weights (not synthetic ones).
	gw, err := d.Load(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !gw.Weighted() {
		t.Fatal("weighted load returned an unweighted graph")
	}
	if gw.OutWeights[0] != ref.OutWeights[0] {
		t.Fatal("file weights replaced instead of preserved")
	}
}

func TestLoadSyntheticKindsDelegateToGenerate(t *testing.T) {
	d, err := DatasetByName("uni")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Load(false, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := d.Generate(false, 64)
	if g.NumVertices() != want.NumVertices() || g.NumEdges() != want.NumEdges() {
		t.Fatal("Load disagrees with Generate for a synthetic dataset")
	}
}

// TestFileCacheBudgetEvictsLRU: the registry memo's parsed bytes are
// bounded — under a tiny budget each newly ingested path evicts the
// least-recently-used one, the accounting shrinks with it, and the evicted
// path re-ingests (new *CSR instance) on the next load. Not parallel: it
// narrows the process-wide budget.
func TestFileCacheBudgetEvictsLRU(t *testing.T) {
	defer SetFileCacheBudget(DefaultFileCacheBudget)
	dir := t.TempDir()
	pathA := writeTestEdgeList(t, dir, "lru-a.el", GenPath(32))
	pathB := writeTestEdgeList(t, dir, "lru-b.el", GenCycle(48))

	SetFileCacheBudget(1)
	filesBefore, bytesBefore := CachedFiles(), CachedFileBytes()

	dA, err := Resolve(pathA)
	if err != nil {
		t.Fatal(err)
	}
	gA, err := dA.Load(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gA2, err := dA.Load(true, 1); err != nil || gA2 != gA {
		t.Fatalf("A not served from the memo before eviction (err=%v)", err)
	}

	dB, err := Resolve(pathB)
	if err != nil {
		t.Fatal(err)
	}
	gB, err := dB.Load(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := CachedFiles(); got != filesBefore+1 {
		t.Fatalf("memo holds %d files, want %d (B only of the two)", got, filesBefore+1)
	}
	if got := CachedFileBytes(); got != bytesBefore+gB.Footprint() {
		t.Fatalf("accounted bytes %d, want %d (B's footprint)", got, bytesBefore+gB.Footprint())
	}
	if gB2, err := dB.Load(true, 1); err != nil || gB2 != gB {
		t.Fatalf("B (most recent) was evicted (err=%v)", err)
	}
	gA3, err := dA.Load(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gA3 == gA {
		t.Fatal("A still cached despite the byte budget")
	}

	// Restoring a generous budget stops the thrash: both stay resident.
	SetFileCacheBudget(DefaultFileCacheBudget)
	gA4, err := dA.Load(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dB.Load(true, 1); err != nil {
		t.Fatal(err)
	}
	if gA5, err := dA.Load(true, 1); err != nil || gA5 != gA4 {
		t.Fatalf("A evicted under a budget it fits (err=%v)", err)
	}
}
