package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestResolveBuiltinNames(t *testing.T) {
	for _, d := range Datasets() {
		r, err := Resolve(d.Name)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if r.Kind == KindFile || r.FullName != d.FullName {
			t.Fatalf("%s resolved to %+v", d.Name, r)
		}
	}
}

func TestResolveUnknownSpec(t *testing.T) {
	_, err := Resolve("no-such-dataset-or-file")
	if err == nil {
		t.Fatal("expected error")
	}
	// The error must help: list the known names.
	if want := "lj"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not list known datasets", err)
	}
}

func writeTestEdgeList(t *testing.T, dir, name string, g *CSR) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResolveAndLoadFile(t *testing.T) {
	ref := GenRMATDefault(6, 4, 13, false)
	path := writeTestEdgeList(t, t.TempDir(), "toy.el", ref)

	d, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != KindFile || d.Name != "toy" || d.Path != path {
		t.Fatalf("resolved %+v", d)
	}
	g, err := d.Load(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != ref.NumEdges() {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), ref.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// The ingest must have left a fresh GCSR sidecar that parses to the
	// same graph.
	side, err := ReadGraphFile(path + ".gcsr")
	if err != nil {
		t.Fatalf("sidecar: %v", err)
	}
	if side.NumEdges() != g.NumEdges() || side.NumVertices() != g.NumVertices() {
		t.Fatal("sidecar disagrees with ingest")
	}

	// Second load hits the in-memory memo: same pointer.
	g2, err := d.Load(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Fatal("file graph not memoized")
	}
}

func TestLoadPrefersFreshSidecar(t *testing.T) {
	ref := GenPath(6)
	dir := t.TempDir()
	path := writeTestEdgeList(t, dir, "cached.el", ref)

	// Plant a sidecar describing a DIFFERENT graph with a newer mtime: the
	// loader must trust it (that is what "cached conversion" means).
	other := GenCycle(9)
	var buf bytes.Buffer
	if _, err := other.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".gcsr", buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != other.NumVertices() {
		t.Fatalf("loaded %d vertices, want the sidecar's %d", g.NumVertices(), other.NumVertices())
	}

	// A corrupt sidecar falls back to re-ingesting the source.
	if err := os.WriteFile(path+".gcsr", []byte("GCSRgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err = loadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != ref.NumVertices() {
		t.Fatalf("fallback loaded %d vertices, want %d", g.NumVertices(), ref.NumVertices())
	}
}

func TestLoadAddsDeterministicWeights(t *testing.T) {
	ref := GenRMATDefault(5, 4, 17, false)
	path := writeTestEdgeList(t, t.TempDir(), "w.el", ref)
	d, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := d.Load(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Weighted() {
		t.Fatal("weighted load returned unweighted graph")
	}
	for _, w := range g1.OutWeights {
		if w < 1 || w > maxWeight {
			t.Fatalf("weight %d out of [1, %d]", w, maxWeight)
		}
	}
	// Weights are a pure function of the graph: recomputing matches.
	g2 := withSyntheticWeights(g1)
	for i := range g1.OutWeights {
		if g1.OutWeights[i] != g2.OutWeights[i] {
			t.Fatal("synthetic weights not deterministic")
		}
	}
}

func TestLoadStripsUnrequestedWeights(t *testing.T) {
	// A weighted file loaded with weighted=false must come back unweighted,
	// or non-SSSP apps would trace weight-array accesses they never make.
	ref := GenRMATDefault(5, 4, 19, true)
	path := writeTestEdgeList(t, t.TempDir(), "weighted.wel", ref)
	d, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Load(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Weighted() {
		t.Fatal("unweighted load returned a weighted graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The weighted view of the same file must still carry the file's own
	// weights (not synthetic ones).
	gw, err := d.Load(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !gw.Weighted() {
		t.Fatal("weighted load returned an unweighted graph")
	}
	if gw.OutWeights[0] != ref.OutWeights[0] {
		t.Fatal("file weights replaced instead of preserved")
	}
}

func TestLoadSyntheticKindsDelegateToGenerate(t *testing.T) {
	d, err := DatasetByName("uni")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Load(false, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := d.Generate(false, 64)
	if g.NumVertices() != want.NumVertices() || g.NumEdges() != want.NumEdges() {
		t.Fatal("Load disagrees with Generate for a synthetic dataset")
	}
}
