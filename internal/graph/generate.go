package graph

import (
	"fmt"
	"math"
)

// Generators for synthetic datasets. The paper evaluates on real graphs
// (LiveJournal, PLD, Twitter, Kron, SD1-ARC, Friendster, Uniform); those are
// tens of gigabytes and unavailable here, so we synthesize graphs whose
// degree-distribution *shape* matches each dataset class:
//
//   - RMAT/Kronecker for kr (the paper's kr is itself synthetic RMAT),
//   - Zipf power-law configuration graphs for lj/pl/tw/sd (natural graphs),
//   - a low-skew Zipf graph for fr (Friendster is known to be low-skew;
//     the paper uses it as the adversarial low-skew dataset),
//   - uniform (Erdős–Rényi style) for uni, matching the paper's R-MAT-
//     generated uniform dataset with no skew.

// GenUniform generates a uniform random directed multigraph with n vertices
// and approximately avgDegree*n edges: both endpoints of every edge are
// chosen uniformly at random. This reproduces the paper's "uni" no-skew
// dataset: every vertex's expected degree equals the average, so almost no
// vertex qualifies as hot by the degree>=average rule.
func GenUniform(n uint32, avgDegree float64, seed uint64, weighted bool) *CSR {
	r := NewRNG(seed)
	m := uint64(float64(n) * avgDegree)
	edges := make([]Edge, 0, m)
	for i := uint64(0); i < m; i++ {
		e := Edge{Src: r.Uint32n(n), Dst: r.Uint32n(n)}
		if weighted {
			e.Weight = int32(1 + r.Uint32n(maxWeight))
		}
		edges = append(edges, e)
	}
	g, err := FromEdges(n, edges, weighted)
	if err != nil {
		panic(err) // generator produces in-range IDs by construction
	}
	return g
}

// maxWeight bounds random edge weights for weighted graphs (SSSP).
const maxWeight = 64

// GenRMAT generates a Kronecker/R-MAT graph with 2^scale vertices and
// edgeFactor*2^scale edges using the standard (a,b,c,d) recursive
// partitioning parameters. The defaults used by the "kr" dataset
// (a=0.57,b=0.19,c=0.19,d=0.05) match Graph500 and the GAP benchmark suite,
// which is where the paper's Kron dataset comes from. R-MAT produces a
// highly skewed power-law degree distribution.
func GenRMAT(scale uint, edgeFactor float64, a, b, c float64, seed uint64, weighted bool) *CSR {
	n := uint32(1) << scale
	m := uint64(float64(n) * edgeFactor)
	r := NewRNG(seed)
	edges := make([]Edge, 0, m)
	for i := uint64(0); i < m; i++ {
		var src, dst uint32
		for level := uint(0); level < scale; level++ {
			p := r.Float64()
			switch {
			case p < a:
				// top-left quadrant: neither bit set
			case p < a+b:
				dst |= 1 << level
			case p < a+b+c:
				src |= 1 << level
			default:
				src |= 1 << level
				dst |= 1 << level
			}
		}
		e := Edge{Src: src, Dst: dst}
		if weighted {
			e.Weight = int32(1 + r.Uint32n(maxWeight))
		}
		edges = append(edges, e)
	}
	// Permute vertex IDs so that the hottest vertices are NOT already at
	// low IDs: R-MAT biases mass toward vertex 0, which would make the
	// baseline ordering accidentally GRASP-friendly. Real datasets ship in
	// crawl order; a random relabeling models that.
	perm := r.Perm(int(n))
	for i := range edges {
		edges[i].Src = perm[edges[i].Src]
		edges[i].Dst = perm[edges[i].Dst]
	}
	g, err := FromEdges(n, edges, weighted)
	if err != nil {
		panic(err)
	}
	return g
}

// GenRMATDefault generates an R-MAT graph with the Graph500 parameters.
func GenRMATDefault(scale uint, edgeFactor float64, seed uint64, weighted bool) *CSR {
	return GenRMAT(scale, edgeFactor, 0.57, 0.19, 0.19, seed, weighted)
}

// GenZipf generates a directed power-law graph with n vertices and about
// avgDegree*n edges using a configuration-model approach: each edge's
// endpoints are drawn from a Zipf distribution with exponent alpha over a
// randomly relabeled vertex order. Larger alpha = heavier skew; exponents
// around 1.0 reproduce the hot-vertex and edge-coverage percentages of the
// paper's natural graphs (Table I).
//
// Both in- and out-degree follow the same distribution, mirroring the
// paper's observation (Table I) that hot-vertex percentages are similar for
// in- and out-edges on natural graphs.
func GenZipf(n uint32, avgDegree, alpha float64, seed uint64, weighted bool) *CSR {
	r := NewRNG(seed)
	m := uint64(float64(n) * avgDegree)
	z := newZipfSampler(n, alpha, r)
	// Random relabeling so hot vertices are scattered across the ID space
	// (lack of spatial locality, Sec. II-D challenge 1).
	perm := r.Perm(int(n))
	edges := make([]Edge, 0, m)
	for i := uint64(0); i < m; i++ {
		e := Edge{Src: perm[z.sample(r)], Dst: perm[z.sample(r)]}
		if weighted {
			e.Weight = int32(1 + r.Uint32n(maxWeight))
		}
		edges = append(edges, e)
	}
	g, err := FromEdges(n, edges, weighted)
	if err != nil {
		panic(err)
	}
	return g
}

// zipfSampler draws from P(k) ∝ 1/(k+1)^alpha for k in [0,n) by inverting
// an approximate CDF. The approximation uses the continuous integral of the
// density, which is standard for large n and exact enough for generating
// degree skew (we only need the distribution shape, not exact tail mass).
type zipfSampler struct {
	n     uint32
	alpha float64
	// For alpha != 1: CDF^{-1}(u) = ((H*u*(1-alpha)+1)^(1/(1-alpha)) - 1)
	// where H = ((n+1)^(1-alpha) - 1)/(1-alpha).
	h        float64
	oneMinus float64
}

func newZipfSampler(n uint32, alpha float64, _ *RNG) *zipfSampler {
	z := &zipfSampler{n: n, alpha: alpha}
	if alpha == 1 {
		z.h = math.Log(float64(n) + 1)
	} else {
		z.oneMinus = 1 - alpha
		z.h = (math.Pow(float64(n)+1, z.oneMinus) - 1) / z.oneMinus
	}
	return z
}

func (z *zipfSampler) sample(r *RNG) uint32 {
	u := r.Float64()
	var x float64
	if z.alpha == 1 {
		x = math.Exp(u*z.h) - 1
	} else {
		x = math.Pow(u*z.h*z.oneMinus+1, 1/z.oneMinus) - 1
	}
	k := uint32(x)
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// Deterministic small graphs for tests.

// GenPath returns the path 0 -> 1 -> ... -> n-1 (unit weights).
func GenPath(n uint32) *CSR {
	edges := make([]Edge, 0, n-1)
	for i := uint32(0); i+1 < n; i++ {
		edges = append(edges, Edge{Src: i, Dst: i + 1, Weight: 1})
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic(err)
	}
	return g
}

// GenCycle returns the directed cycle on n vertices (unit weights).
func GenCycle(n uint32) *CSR {
	edges := make([]Edge, 0, n)
	for i := uint32(0); i < n; i++ {
		edges = append(edges, Edge{Src: i, Dst: (i + 1) % n, Weight: 1})
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic(err)
	}
	return g
}

// GenStar returns a star: vertex 0 has edges to and from all others.
func GenStar(n uint32) *CSR {
	edges := make([]Edge, 0, 2*(n-1))
	for i := uint32(1); i < n; i++ {
		edges = append(edges, Edge{Src: 0, Dst: i, Weight: 1}, Edge{Src: i, Dst: 0, Weight: 1})
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic(err)
	}
	return g
}

// GenComplete returns the complete directed graph on n vertices (no
// self-loops, unit weights). Quadratic; tests only.
func GenComplete(n uint32) *CSR {
	edges := make([]Edge, 0, int(n)*(int(n)-1))
	for i := uint32(0); i < n; i++ {
		for j := uint32(0); j < n; j++ {
			if i != j {
				edges = append(edges, Edge{Src: i, Dst: j, Weight: 1})
			}
		}
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic(err)
	}
	return g
}

// GenGrid returns a rows x cols grid with edges in both directions between
// 4-neighbors — a structured, community-free, low-skew graph used as an
// adversarial input in tests.
func GenGrid(rows, cols uint32) *CSR {
	n := rows * cols
	var edges []Edge
	id := func(r, c uint32) VertexID { return r*cols + c }
	for r := uint32(0); r < rows; r++ {
		for c := uint32(0); c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{Src: id(r, c), Dst: id(r, c+1), Weight: 1},
					Edge{Src: id(r, c+1), Dst: id(r, c), Weight: 1})
			}
			if r+1 < rows {
				edges = append(edges, Edge{Src: id(r, c), Dst: id(r+1, c), Weight: 1},
					Edge{Src: id(r+1, c), Dst: id(r, c), Weight: 1})
			}
		}
	}
	g, err := FromEdges(n, edges, true)
	if err != nil {
		panic(err)
	}
	return g
}

// Dataset describes one of the paper's evaluation datasets (Table V) and
// how its synthetic stand-in is generated at reproduction scale.
type Dataset struct {
	Name      string  // short label used throughout the paper: lj, pl, ...
	FullName  string  // dataset it stands in for
	Vertices  uint32  // scaled vertex count
	AvgDegree float64 // matches Table V's average degree
	Kind      DatasetKind
	Alpha     float64 // Zipf exponent for power-law kinds
	Scale     uint    // RMAT scale (Vertices = 1<<Scale) for RMAT kind
	Seed      uint64
	HighSkew  bool   // true for the five main-evaluation datasets
	Path      string // source file for KindFile datasets (see registry.go)
}

// DatasetKind selects the generator for a dataset.
type DatasetKind int

// Dataset kinds.
const (
	KindZipf DatasetKind = iota
	KindRMAT
	KindUniform
	// KindFile marks a dataset ingested from a graph file (edge list,
	// Matrix Market or GCSR) through the registry's resolver rather than
	// synthesized by a generator.
	KindFile
)

// scaleN is the default vertex count for scaled datasets (the paper's range
// is 5M–95M; we scale ~400x down and scale the LLC down with it — see
// DESIGN.md Sec. 5).
const scaleN = 1 << 17 // 131072

// Datasets returns the seven datasets of Table V at reproduction scale.
// Order matches the paper: lj, pl, tw, kr, sd (high-skew), then fr
// (low-skew) and uni (no-skew) adversarial datasets.
//
// Zipf exponents are calibrated so each dataset's hot-vertex percentage
// and edge coverage (Table I) land in the paper's band (9-26% of vertices
// covering 81-93% of edges on the high-skew datasets).
func Datasets() []Dataset {
	return []Dataset{
		{Name: "lj", FullName: "LiveJournal", Vertices: scaleN, AvgDegree: 14, Kind: KindZipf, Alpha: 0.95, Seed: 0x11, HighSkew: true},
		{Name: "pl", FullName: "PLD", Vertices: scaleN, AvgDegree: 15, Kind: KindZipf, Alpha: 1.05, Seed: 0x22, HighSkew: true},
		{Name: "tw", FullName: "Twitter", Vertices: scaleN, AvgDegree: 24, Kind: KindZipf, Alpha: 1.10, Seed: 0x33, HighSkew: true},
		{Name: "kr", FullName: "Kron", Vertices: scaleN, AvgDegree: 20, Kind: KindRMAT, Scale: 17, Seed: 0x44, HighSkew: true},
		{Name: "sd", FullName: "SD1-ARC", Vertices: scaleN, AvgDegree: 20, Kind: KindZipf, Alpha: 1.08, Seed: 0x55, HighSkew: true},
		{Name: "fr", FullName: "Friendster", Vertices: scaleN, AvgDegree: 33, Kind: KindZipf, Alpha: 0.30, Seed: 0x66},
		{Name: "uni", FullName: "Uniform", Vertices: scaleN, AvgDegree: 20, Kind: KindUniform, Seed: 0x77},
	}
}

// HighSkewDatasets returns the five datasets of the main evaluation.
func HighSkewDatasets() []Dataset {
	var out []Dataset
	for _, d := range Datasets() {
		if d.HighSkew {
			out = append(out, d)
		}
	}
	return out
}

// DatasetByName returns the named dataset description.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("graph: unknown dataset %q", name)
}

// Generate materializes the dataset. The weighted flag adds random edge
// weights (needed by SSSP). The scaleDiv parameter divides the default
// vertex count to produce smaller variants for tests and benchmarks
// (scaleDiv=1 gives the full reproduction scale).
func (d Dataset) Generate(weighted bool, scaleDiv uint32) *CSR {
	if scaleDiv == 0 {
		scaleDiv = 1
	}
	n := d.Vertices / scaleDiv
	if n < 16 {
		n = 16
	}
	switch d.Kind {
	case KindRMAT:
		scale := d.Scale
		for scaleDiv > 1 && scale > 4 {
			scale--
			scaleDiv /= 2
		}
		return GenRMATDefault(scale, d.AvgDegree, d.Seed, weighted)
	case KindUniform:
		return GenUniform(n, d.AvgDegree, d.Seed, weighted)
	default:
		return GenZipf(n, d.AvgDegree, d.Alpha, d.Seed, weighted)
	}
}
