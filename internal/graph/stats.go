package graph

import "sort"

// SkewStats quantifies degree skew as in Table I of the paper: a vertex is
// "hot" if its degree is greater than or equal to the average degree; edge
// coverage is the fraction of edges incident (on the corresponding side) to
// hot vertices. The higher the skew, the lower the hot-vertex percentage
// and the higher the edge coverage.
type SkewStats struct {
	HotVertexPct float64 // % of vertices with degree >= average
	EdgeCoverPct float64 // % of edges connected to hot vertices
	AvgDegree    float64
	MaxDegree    uint32
}

// InSkew computes skew statistics over in-degrees (row #2/#3 of Table I).
func InSkew(g *CSR) SkewStats { return skew(g, g.InDegree) }

// OutSkew computes skew statistics over out-degrees (row #4/#5 of Table I).
func OutSkew(g *CSR) SkewStats { return skew(g, g.OutDegree) }

func skew(g *CSR, degree func(VertexID) uint32) SkewStats {
	n := g.NumVertices()
	if n == 0 {
		return SkewStats{}
	}
	var total uint64
	var maxDeg uint32
	for v := uint32(0); v < n; v++ {
		d := degree(v)
		total += uint64(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(total) / float64(n)
	var hot, coveredEdges uint64
	for v := uint32(0); v < n; v++ {
		d := degree(v)
		if float64(d) >= avg {
			hot++
			coveredEdges += uint64(d)
		}
	}
	s := SkewStats{AvgDegree: avg, MaxDegree: maxDeg}
	s.HotVertexPct = 100 * float64(hot) / float64(n)
	if total > 0 {
		s.EdgeCoverPct = 100 * float64(coveredEdges) / float64(total)
	}
	return s
}

// DegreeHistogram returns, for each distinct degree (by the given side),
// the number of vertices with that degree, sorted by degree ascending.
type DegreeBucket struct {
	Degree uint32
	Count  uint32
}

// OutDegreeHistogram computes the out-degree histogram.
func OutDegreeHistogram(g *CSR) []DegreeBucket { return histogram(g, g.OutDegree) }

// InDegreeHistogram computes the in-degree histogram.
func InDegreeHistogram(g *CSR) []DegreeBucket { return histogram(g, g.InDegree) }

func histogram(g *CSR, degree func(VertexID) uint32) []DegreeBucket {
	counts := make(map[uint32]uint32)
	for v := uint32(0); v < g.NumVertices(); v++ {
		counts[degree(v)]++
	}
	out := make([]DegreeBucket, 0, len(counts))
	for d, c := range counts {
		out = append(out, DegreeBucket{Degree: d, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

// HotVertices returns the IDs of vertices whose degree on the given side is
// at least the average, in descending degree order (ties by ascending ID).
// This is the set the paper calls "hot vertices".
func HotVertices(g *CSR, useIn bool) []VertexID {
	degree := g.OutDegree
	if useIn {
		degree = g.InDegree
	}
	n := g.NumVertices()
	var total uint64
	for v := uint32(0); v < n; v++ {
		total += uint64(degree(v))
	}
	avg := float64(total) / float64(n)
	var hot []VertexID
	for v := uint32(0); v < n; v++ {
		if float64(degree(v)) >= avg {
			hot = append(hot, v)
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		di, dj := degree(hot[i]), degree(hot[j])
		if di != dj {
			return di > dj
		}
		return hot[i] < hot[j]
	})
	return hot
}

// GiniCoefficient computes the Gini coefficient of the degree distribution
// on the given side — an aggregate skew measure in [0,1) used by tests to
// verify that generated datasets have the intended relative skew ordering
// (e.g. kr > lj > fr > uni).
func GiniCoefficient(g *CSR, useIn bool) float64 {
	degree := g.OutDegree
	if useIn {
		degree = g.InDegree
	}
	n := int(g.NumVertices())
	if n == 0 {
		return 0
	}
	degs := make([]uint32, n)
	var total uint64
	for v := 0; v < n; v++ {
		degs[v] = degree(uint32(v))
		total += uint64(degs[v])
	}
	if total == 0 {
		return 0
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
	// Gini = (2*sum(i*x_i))/(n*sum(x)) - (n+1)/n with 1-based i on sorted x.
	var weighted float64
	for i, d := range degs {
		weighted += float64(i+1) * float64(d)
	}
	return 2*weighted/(float64(n)*float64(total)) - float64(n+1)/float64(n)
}
