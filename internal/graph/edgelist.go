package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list I/O in the format used by SNAP, the GAP benchmark suite
// and Ligra tooling (.el / .wel): one edge per line, "src dst" or
// "src dst weight", with '#' and '%' comment lines. This is how users load
// real datasets (LiveJournal, Twitter, ...) into the reproduction.

// ReadEdgeList parses a text edge list. Vertex IDs may be sparse; the
// graph is sized by the maximum ID seen (+1). If any line carries a third
// field the whole graph is treated as weighted (absent weights default
// to 1).
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	var maxID uint32
	weighted := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination %q: %v", lineNo, fields[1], err)
		}
		e := Edge{Src: uint32(src), Dst: uint32(dst), Weight: 1}
		if len(fields) == 3 {
			w, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
			e.Weight = int32(w)
			weighted = true
		}
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	if err := checkVertexBound(uint64(maxID)+1, len(edges), "edge list"); err != nil {
		return nil, err
	}
	return FromEdges(maxID+1, edges, weighted)
}

// WriteEdgeList writes the graph as a text edge list ("src dst" lines, or
// "src dst weight" when weighted).
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# %d vertices, %d edges\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	weighted := g.Weighted()
	for v := uint32(0); v < g.NumVertices(); v++ {
		nb := g.OutNeighbors(v)
		var wt []int32
		if weighted {
			wt = g.OutNeighborWeights(v)
		}
		for i, u := range nb {
			var err error
			if weighted {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", v, u, wt[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, u)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
