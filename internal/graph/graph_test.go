package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	// The example graph from Fig. 1(a) of the paper.
	edges := []Edge{
		{Src: 3, Dst: 0}, {Src: 2, Dst: 1}, {Src: 0, Dst: 1},
		{Src: 5, Dst: 1}, {Src: 1, Dst: 2}, {Src: 5, Dst: 2},
		{Src: 4, Dst: 3}, {Src: 5, Dst: 3}, {Src: 2, Dst: 4},
		{Src: 5, Dst: 4},
	}
	g, err := FromEdges(6, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 || g.NumEdges() != 10 {
		t.Fatalf("got %d vertices %d edges, want 6/10", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// In-edge offsets in the spirit of Fig. 1(b): dest 0 has {3},
	// dest 1 has {0,2,5}, dest 2 has {1,5}, dest 3 has {4,5},
	// dest 4 has {2,5}, dest 5 has none.
	wantIn := []uint64{0, 1, 4, 6, 8, 10, 10}
	for i, w := range wantIn {
		if g.InIndex[i] != w {
			t.Errorf("InIndex[%d] = %d, want %d", i, g.InIndex[i], w)
		}
	}
	// In-neighbors of vertex 1 are {2, 0, 5} (sorted: 0,2,5).
	in1 := g.InNeighbors(1)
	want := []VertexID{0, 2, 5}
	if len(in1) != len(want) {
		t.Fatalf("in-neighbors of 1: %v, want %v", in1, want)
	}
	for i := range want {
		if in1[i] != want[i] {
			t.Fatalf("in-neighbors of 1: %v, want %v", in1, want)
		}
	}
	if g.OutDegree(5) != 4 {
		t.Errorf("out-degree of 5 = %d, want 4", g.OutDegree(5))
	}
	if g.InDegree(1) != 3 {
		t.Errorf("in-degree of 1 = %d, want 3", g.InDegree(1))
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	_, err := FromEdges(3, []Edge{{Src: 0, Dst: 3}}, false)
	if err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
	_, err = FromEdges(3, []Edge{{Src: 7, Dst: 0}}, false)
	if err == nil {
		t.Fatal("expected error for out-of-range source")
	}
}

func TestFromEdgesEmpty(t *testing.T) {
	g, err := FromEdges(4, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("want 0 edges, got %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.OutNeighbors(2)) != 0 {
		t.Fatal("expected no neighbors")
	}
}

func TestSelfLoopsAndParallelEdges(t *testing.T) {
	edges := []Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1}}
	g, err := FromEdges(2, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(0) != 3 {
		t.Fatalf("out-degree 0 = %d, want 3 (self-loop + parallel kept)", g.OutDegree(0))
	}
	if g.InDegree(1) != 2 {
		t.Fatalf("in-degree 1 = %d, want 2", g.InDegree(1))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	g := GenPath(5)
	tr := g.Transpose()
	if tr.OutDegree(4) != 1 || tr.OutNeighbors(4)[0] != 3 {
		t.Fatalf("transpose: out-neighbors of 4 = %v, want [3]", tr.OutNeighbors(4))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Double transpose is the original.
	tt := tr.Transpose()
	if tt.OutDegree(0) != g.OutDegree(0) || tt.InDegree(0) != g.InDegree(0) {
		t.Fatal("double transpose differs from original")
	}
}

func TestWeightsParallelToEdges(t *testing.T) {
	edges := []Edge{
		{Src: 0, Dst: 2, Weight: 7},
		{Src: 0, Dst: 1, Weight: 3},
		{Src: 1, Dst: 2, Weight: 5},
	}
	g, err := FromEdges(3, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	nb := g.OutNeighbors(0)
	w := g.OutNeighborWeights(0)
	if nb[0] != 1 || w[0] != 3 || nb[1] != 2 || w[1] != 7 {
		t.Fatalf("sorted neighbors/weights mismatch: %v %v", nb, w)
	}
	// In-edge side: in-neighbors of 2 are 0 (w=7) and 1 (w=5).
	inb, iw := g.InNeighbors(2), g.InNeighborWeights(2)
	if inb[0] != 0 || iw[0] != 7 || inb[1] != 1 || iw[1] != 5 {
		t.Fatalf("in side weights mismatch: %v %v", inb, iw)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := GenRMATDefault(8, 4, 42, true)
	edges := g.Edges()
	g2, err := FromEdges(g.NumVertices(), edges, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count mismatch: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	e2 := g2.Edges()
	for i := range edges {
		if edges[i] != e2[i] {
			t.Fatalf("edge %d differs after round trip: %v vs %v", i, edges[i], e2[i])
		}
	}
}

// Property: FromEdges always produces a CSR satisfying Validate, with
// degree sums equal to the edge count on both sides.
func TestCSRInvariantsQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint16, mRaw uint16) bool {
		n := uint32(nRaw%200) + 1
		m := int(mRaw % 1000)
		r := NewRNG(seed)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: r.Uint32n(n), Dst: r.Uint32n(n), Weight: int32(r.Uint32n(100))}
		}
		g, err := FromEdges(n, edges, true)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		var outSum, inSum uint64
		for v := uint32(0); v < n; v++ {
			outSum += uint64(g.OutDegree(v))
			inSum += uint64(g.InDegree(v))
		}
		return outSum == uint64(m) && inSum == uint64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenPathStructure(t *testing.T) {
	g := GenPath(10)
	for v := uint32(0); v < 9; v++ {
		if g.OutDegree(v) != 1 || g.OutNeighbors(v)[0] != v+1 {
			t.Fatalf("path broken at %d", v)
		}
	}
	if g.OutDegree(9) != 0 {
		t.Fatal("last vertex should have no out-edges")
	}
}

func TestGenCycleStructure(t *testing.T) {
	g := GenCycle(7)
	if g.NumEdges() != 7 {
		t.Fatalf("cycle edges = %d, want 7", g.NumEdges())
	}
	for v := uint32(0); v < 7; v++ {
		if g.OutDegree(v) != 1 || g.InDegree(v) != 1 {
			t.Fatalf("cycle degree broken at %d", v)
		}
	}
}

func TestGenStarSkew(t *testing.T) {
	g := GenStar(100)
	s := OutSkew(g)
	// Star: vertex 0 has degree 99, others 1; avg < 2, so all are "hot"
	// except... all leaves have degree 1 < avg(=1.98), so only hub is hot.
	if s.HotVertexPct > 2 {
		t.Fatalf("star hot-vertex pct = %.1f, want ~1", s.HotVertexPct)
	}
	if s.EdgeCoverPct < 49 {
		t.Fatalf("star edge coverage = %.1f, want ~50", s.EdgeCoverPct)
	}
	if s.MaxDegree != 99 {
		t.Fatalf("star max degree = %d, want 99", s.MaxDegree)
	}
}

func TestGenCompleteAndGrid(t *testing.T) {
	g := GenComplete(6)
	if g.NumEdges() != 30 {
		t.Fatalf("complete(6) edges = %d, want 30", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	gr := GenGrid(4, 5)
	if gr.NumVertices() != 20 {
		t.Fatalf("grid vertices = %d", gr.NumVertices())
	}
	// Interior vertex has degree 4 both ways.
	interior := uint32(1*5 + 2)
	if gr.OutDegree(interior) != 4 || gr.InDegree(interior) != 4 {
		t.Fatalf("grid interior degree = %d/%d, want 4/4", gr.OutDegree(interior), gr.InDegree(interior))
	}
	if err := gr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenUniformShape(t *testing.T) {
	g := GenUniform(2000, 16, 1, false)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.AvgDegree() < 15 || g.AvgDegree() > 17 {
		t.Fatalf("uniform avg degree = %.2f, want ~16", g.AvgDegree())
	}
	s := OutSkew(g)
	// Uniform: roughly half the vertices are at/above average and cover a
	// bit more than half the edges — i.e. essentially no skew.
	if s.HotVertexPct < 35 || s.HotVertexPct > 65 {
		t.Fatalf("uniform hot pct = %.1f, want ~50", s.HotVertexPct)
	}
	if s.EdgeCoverPct > 75 {
		t.Fatalf("uniform edge coverage = %.1f, want < 75", s.EdgeCoverPct)
	}
}

func TestGenZipfSkew(t *testing.T) {
	g := GenZipf(4000, 16, 0.75, 2, false)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := OutSkew(g)
	// Power-law: a small hot set covers most edges (Table I shape:
	// 9-26% of vertices cover 81-93% of edges).
	if s.HotVertexPct > 35 {
		t.Fatalf("zipf hot pct = %.1f, want < 35", s.HotVertexPct)
	}
	if s.EdgeCoverPct < 60 {
		t.Fatalf("zipf edge coverage = %.1f, want > 60", s.EdgeCoverPct)
	}
}

func TestGenRMATSkew(t *testing.T) {
	g := GenRMATDefault(12, 16, 3, false)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	in := InSkew(g)
	if in.HotVertexPct > 35 {
		t.Fatalf("rmat hot pct = %.1f, want < 35", in.HotVertexPct)
	}
	if in.EdgeCoverPct < 60 {
		t.Fatalf("rmat edge coverage = %.1f, want > 60", in.EdgeCoverPct)
	}
}

func TestSkewOrderingAcrossDatasets(t *testing.T) {
	// Verify the intended relative skew ordering at reduced scale:
	// high-skew datasets are more skewed than fr, which is more than uni.
	giniOf := func(name string) float64 {
		d, err := DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Generate(false, 16)
		return GiniCoefficient(g, false)
	}
	kr, lj, fr, uni := giniOf("kr"), giniOf("lj"), giniOf("fr"), giniOf("uni")
	if !(kr > fr && lj > fr && fr > uni) {
		t.Fatalf("skew ordering violated: kr=%.3f lj=%.3f fr=%.3f uni=%.3f", kr, lj, fr, uni)
	}
}

func TestDatasetByName(t *testing.T) {
	for _, want := range []string{"lj", "pl", "tw", "kr", "sd", "fr", "uni"} {
		d, err := DatasetByName(want)
		if err != nil {
			t.Fatalf("dataset %s: %v", want, err)
		}
		if d.Name != want {
			t.Fatalf("got %s, want %s", d.Name, want)
		}
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if len(HighSkewDatasets()) != 5 {
		t.Fatalf("want 5 high-skew datasets, got %d", len(HighSkewDatasets()))
	}
}

func TestHotVerticesOrdering(t *testing.T) {
	g := GenZipf(1000, 10, 0.8, 7, false)
	hot := HotVertices(g, false)
	if len(hot) == 0 {
		t.Fatal("no hot vertices found in a power-law graph")
	}
	for i := 1; i < len(hot); i++ {
		if g.OutDegree(hot[i-1]) < g.OutDegree(hot[i]) {
			t.Fatalf("hot vertices not in descending degree order at %d", i)
		}
	}
	// All hot vertices have degree >= average.
	avg := g.AvgDegree()
	for _, v := range hot {
		if float64(g.OutDegree(v)) < avg {
			t.Fatalf("vertex %d with degree %d < avg %.2f marked hot", v, g.OutDegree(v), avg)
		}
	}
}

func TestGiniBounds(t *testing.T) {
	// Regular graph: Gini = 0.
	g := GenCycle(50)
	if gini := GiniCoefficient(g, false); gini > 1e-9 {
		t.Fatalf("cycle gini = %f, want 0", gini)
	}
	// Star: extremely unequal.
	s := GenStar(100)
	if gini := GiniCoefficient(s, false); gini < 0.4 {
		t.Fatalf("star gini = %f, want > 0.4", gini)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := GenStar(10) // hub degree 9, leaves degree 1
	h := OutDegreeHistogram(g)
	if len(h) != 2 {
		t.Fatalf("histogram buckets = %d, want 2", len(h))
	}
	if h[0].Degree != 1 || h[0].Count != 9 || h[1].Degree != 9 || h[1].Count != 1 {
		t.Fatalf("unexpected histogram %v", h)
	}
	ih := InDegreeHistogram(g)
	if len(ih) != 2 {
		t.Fatalf("in histogram buckets = %d, want 2", len(ih))
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := GenRMATDefault(9, 8, 5, weighted)
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("size mismatch after round trip")
		}
		if g2.Weighted() != weighted {
			t.Fatal("weighted flag lost")
		}
		for v := uint32(0); v < g.NumVertices(); v++ {
			a, b := g.OutNeighbors(v), g2.OutNeighbors(v)
			if len(a) != len(b) {
				t.Fatalf("degree mismatch at %d", v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("neighbor mismatch at %d[%d]", v, i)
				}
			}
		}
	}
}

func TestSerializationBadInput(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Fatal("expected error on bad magic")
	}
	if _, err := ReadFrom(bytes.NewReader([]byte("GC"))); err == nil {
		t.Fatal("expected error on truncated magic")
	}
	g := GenPath(4)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated body")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(100)
	diff := false
	a2 := NewRNG(99)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGUint32nBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []uint32{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			if v := r.Uint32n(n); v >= n {
				t.Fatalf("Uint32n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(500)
	seen := make([]bool, 500)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d in permutation", v)
		}
		seen[v] = true
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean = %f, want ~0.5", mean)
	}
}

func TestZipfSamplerSkew(t *testing.T) {
	r := NewRNG(5)
	z := newZipfSampler(1000, 0.8, r)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.sample(r)]++
	}
	// Low ranks must be much more popular than high ranks.
	lowMass, highMass := 0, 0
	for i := 0; i < 100; i++ {
		lowMass += counts[i]
	}
	for i := 900; i < 1000; i++ {
		highMass += counts[i]
	}
	if lowMass < 4*highMass {
		t.Fatalf("zipf not skewed: low=%d high=%d", lowMass, highMass)
	}
}

func TestDatasetGenerateScaleDiv(t *testing.T) {
	d, _ := DatasetByName("lj")
	g := d.Generate(false, 64)
	if g.NumVertices() != scaleN/64 {
		t.Fatalf("scaled vertices = %d, want %d", g.NumVertices(), scaleN/64)
	}
	// RMAT dataset scales by halving the scale parameter.
	k, _ := DatasetByName("kr")
	gk := k.Generate(false, 4)
	if gk.NumVertices() != 1<<15 {
		t.Fatalf("scaled kr vertices = %d, want %d", gk.NumVertices(), 1<<15)
	}
	// scaleDiv=0 behaves as 1.
	tiny, _ := DatasetByName("uni")
	if got := tiny.Generate(false, 0).NumVertices(); got != scaleN {
		t.Fatalf("scaleDiv=0 vertices = %d, want %d", got, scaleN)
	}
}

func TestStringSummary(t *testing.T) {
	g := GenPath(3)
	s := g.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
