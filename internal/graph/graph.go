// Package graph provides the graph substrate for the GRASP reproduction:
// a Compressed Sparse Row (CSR) representation with both in- and out-edge
// views, synthetic dataset generators matched to the degree-distribution
// shapes of the paper's datasets, degree statistics and skew metrics
// (Table I of the paper), and binary serialization.
//
// Vertex IDs are dense uint32 values in [0, NumVertices). Edges are
// directed; undirected graphs are represented by symmetric edge pairs.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Dense, zero-based.
type VertexID = uint32

// Edge is a directed edge with an optional weight (used by SSSP).
type Edge struct {
	Src    VertexID
	Dst    VertexID
	Weight int32
}

// CSR holds a directed graph in Compressed Sparse Row form, encoding both
// out-edges (for push-based computations) and in-edges (for pull-based
// computations), mirroring the layout described in Sec. II-B of the paper.
//
// For every vertex v, OutIndex[v]..OutIndex[v+1] delimits its out-neighbors
// in OutEdges; likewise for in-edges. Weights are parallel to the edge
// arrays and may be nil for unweighted graphs.
type CSR struct {
	n uint32 // number of vertices
	m uint64 // number of directed edges

	OutIndex []uint64   // len n+1
	OutEdges []VertexID // len m, destination of each out-edge, grouped by source
	InIndex  []uint64   // len n+1
	InEdges  []VertexID // len m, source of each in-edge, grouped by destination

	OutWeights []int32 // nil if unweighted; parallel to OutEdges
	InWeights  []int32 // nil if unweighted; parallel to InEdges
}

// NumVertices returns the number of vertices.
func (g *CSR) NumVertices() uint32 { return g.n }

// NumEdges returns the number of directed edges.
func (g *CSR) NumEdges() uint64 { return g.m }

// Weighted reports whether the graph carries edge weights.
func (g *CSR) Weighted() bool { return g.OutWeights != nil }

// OutDegree returns the out-degree of v.
func (g *CSR) OutDegree(v VertexID) uint32 {
	return uint32(g.OutIndex[v+1] - g.OutIndex[v])
}

// InDegree returns the in-degree of v.
func (g *CSR) InDegree(v VertexID) uint32 {
	return uint32(g.InIndex[v+1] - g.InIndex[v])
}

// OutNeighbors returns the out-neighbor slice of v. The slice aliases the
// CSR edge array and must not be modified.
func (g *CSR) OutNeighbors(v VertexID) []VertexID {
	return g.OutEdges[g.OutIndex[v]:g.OutIndex[v+1]]
}

// InNeighbors returns the in-neighbor slice of v. The slice aliases the
// CSR edge array and must not be modified.
func (g *CSR) InNeighbors(v VertexID) []VertexID {
	return g.InEdges[g.InIndex[v]:g.InIndex[v+1]]
}

// OutNeighborWeights returns the weights parallel to OutNeighbors(v).
func (g *CSR) OutNeighborWeights(v VertexID) []int32 {
	return g.OutWeights[g.OutIndex[v]:g.OutIndex[v+1]]
}

// InNeighborWeights returns the weights parallel to InNeighbors(v).
func (g *CSR) InNeighborWeights(v VertexID) []int32 {
	return g.InWeights[g.InIndex[v]:g.InIndex[v+1]]
}

// Footprint returns the approximate resident bytes of the CSR's arrays —
// the quantity the byte-budget caches (graph registry, exp.Session) charge
// per retained graph.
func (g *CSR) Footprint() int64 {
	n := 8 * (int64(len(g.OutIndex)) + int64(len(g.InIndex)))
	n += 4 * (int64(len(g.OutEdges)) + int64(len(g.InEdges)))
	n += 4 * (int64(len(g.OutWeights)) + int64(len(g.InWeights)))
	return n
}

// AvgDegree returns the average (out-)degree.
func (g *CSR) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// String implements fmt.Stringer with a one-line summary.
func (g *CSR) String() string {
	return fmt.Sprintf("CSR{vertices: %d, edges: %d, avg degree: %.1f, weighted: %v}",
		g.n, g.m, g.AvgDegree(), g.Weighted())
}

// FromEdges builds a CSR from a directed edge list. Self-loops are kept;
// parallel edges are kept (multigraphs arise naturally from generators and
// are harmless to the algorithms). Edges referencing vertices >= n are
// rejected.
func FromEdges(n uint32, edges []Edge, weighted bool) (*CSR, error) {
	for _, e := range edges {
		if e.Src >= n || e.Dst >= n {
			return nil, fmt.Errorf("graph: edge (%d -> %d) out of range for %d vertices", e.Src, e.Dst, n)
		}
	}
	g := &CSR{n: n, m: uint64(len(edges))}
	g.OutIndex = make([]uint64, n+1)
	g.InIndex = make([]uint64, n+1)
	for _, e := range edges {
		g.OutIndex[e.Src+1]++
		g.InIndex[e.Dst+1]++
	}
	for i := uint32(0); i < n; i++ {
		g.OutIndex[i+1] += g.OutIndex[i]
		g.InIndex[i+1] += g.InIndex[i]
	}
	g.OutEdges = make([]VertexID, len(edges))
	g.InEdges = make([]VertexID, len(edges))
	if weighted {
		g.OutWeights = make([]int32, len(edges))
		g.InWeights = make([]int32, len(edges))
	}
	outPos := make([]uint64, n)
	inPos := make([]uint64, n)
	for _, e := range edges {
		op := g.OutIndex[e.Src] + outPos[e.Src]
		g.OutEdges[op] = e.Dst
		ip := g.InIndex[e.Dst] + inPos[e.Dst]
		g.InEdges[ip] = e.Src
		if weighted {
			g.OutWeights[op] = e.Weight
			g.InWeights[ip] = e.Weight
		}
		outPos[e.Src]++
		inPos[e.Dst]++
	}
	g.sortAdjacency()
	return g, nil
}

// sortAdjacency sorts each vertex's neighbor list (with parallel weights)
// for deterministic iteration order.
func (g *CSR) sortAdjacency() {
	sortSide := func(index []uint64, edges []VertexID, weights []int32) {
		for v := uint32(0); v < g.n; v++ {
			lo, hi := index[v], index[v+1]
			if hi-lo < 2 {
				continue
			}
			nb := edges[lo:hi]
			if weights == nil {
				sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
				continue
			}
			w := weights[lo:hi]
			idx := make([]int, len(nb))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(i, j int) bool { return nb[idx[i]] < nb[idx[j]] })
			nb2 := make([]VertexID, len(nb))
			w2 := make([]int32, len(w))
			for i, k := range idx {
				nb2[i] = nb[k]
				w2[i] = w[k]
			}
			copy(nb, nb2)
			copy(w, w2)
		}
	}
	sortSide(g.OutIndex, g.OutEdges, g.OutWeights)
	sortSide(g.InIndex, g.InEdges, g.InWeights)
}

// Edges reconstructs the directed edge list (grouped by source, neighbors
// in sorted order). Intended for tests and small graphs.
func (g *CSR) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for v := uint32(0); v < g.n; v++ {
		nb := g.OutNeighbors(v)
		for i, u := range nb {
			e := Edge{Src: v, Dst: u}
			if g.OutWeights != nil {
				e.Weight = g.OutNeighborWeights(v)[i]
			}
			edges = append(edges, e)
		}
	}
	return edges
}

// Transpose returns the graph with every edge reversed. In/out views swap.
func (g *CSR) Transpose() *CSR {
	t := &CSR{
		n:        g.n,
		m:        g.m,
		OutIndex: g.InIndex, OutEdges: g.InEdges, OutWeights: g.InWeights,
		InIndex: g.OutIndex, InEdges: g.OutEdges, InWeights: g.OutWeights,
	}
	return t
}

// Validate checks structural invariants of the CSR encoding. It returns a
// descriptive error for the first violation found, or nil. Used heavily by
// tests (including property-based tests).
func (g *CSR) Validate() error {
	if uint64(len(g.OutIndex)) != uint64(g.n)+1 || uint64(len(g.InIndex)) != uint64(g.n)+1 {
		return fmt.Errorf("graph: index arrays must have n+1 entries")
	}
	if g.OutIndex[0] != 0 || g.InIndex[0] != 0 {
		return fmt.Errorf("graph: index arrays must start at 0")
	}
	if g.OutIndex[g.n] != g.m || g.InIndex[g.n] != g.m {
		return fmt.Errorf("graph: index arrays must end at m=%d (got out=%d in=%d)", g.m, g.OutIndex[g.n], g.InIndex[g.n])
	}
	if uint64(len(g.OutEdges)) != g.m || uint64(len(g.InEdges)) != g.m {
		return fmt.Errorf("graph: edge arrays must have m entries")
	}
	for v := uint32(0); v < g.n; v++ {
		if g.OutIndex[v] > g.OutIndex[v+1] {
			return fmt.Errorf("graph: OutIndex not monotonic at vertex %d", v)
		}
		if g.InIndex[v] > g.InIndex[v+1] {
			return fmt.Errorf("graph: InIndex not monotonic at vertex %d", v)
		}
	}
	for i, u := range g.OutEdges {
		if u >= g.n {
			return fmt.Errorf("graph: OutEdges[%d]=%d out of range", i, u)
		}
	}
	for i, u := range g.InEdges {
		if u >= g.n {
			return fmt.Errorf("graph: InEdges[%d]=%d out of range", i, u)
		}
	}
	if (g.OutWeights == nil) != (g.InWeights == nil) {
		return fmt.Errorf("graph: weight arrays must both be present or both nil")
	}
	if g.OutWeights != nil && (uint64(len(g.OutWeights)) != g.m || uint64(len(g.InWeights)) != g.m) {
		return fmt.Errorf("graph: weight arrays must have m entries")
	}
	// Each edge must appear in both views: compare multisets of (src,dst).
	if g.m <= 1<<22 { // guard cost on huge graphs
		fwd := make([]uint64, 0, g.m)
		bwd := make([]uint64, 0, g.m)
		for v := uint32(0); v < g.n; v++ {
			for _, u := range g.OutNeighbors(v) {
				fwd = append(fwd, uint64(v)<<32|uint64(u))
			}
			for _, u := range g.InNeighbors(v) {
				bwd = append(bwd, uint64(u)<<32|uint64(v))
			}
		}
		sort.Slice(fwd, func(i, j int) bool { return fwd[i] < fwd[j] })
		sort.Slice(bwd, func(i, j int) bool { return bwd[i] < bwd[j] })
		for i := range fwd {
			if fwd[i] != bwd[i] {
				return fmt.Errorf("graph: in/out edge views disagree at position %d", i)
			}
		}
	}
	return nil
}
