package graph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// The dataset registry maps every graph the reproduction can run on —
// the paper's synthetic stand-ins AND any ingested file — through one
// resolver, so `-graph web-Google.txt` and `-dataset tw` flow down the
// same Dataset -> Workload -> simulation path. File-backed datasets are
// parsed once per file state (an in-memory memo validated by size/mtime,
// so edits re-ingest) and converted once per file state (a sidecar .gcsr
// cache next to the source, reused while the source matches the
// size/mtime stamp recorded at conversion).

// Resolve maps a dataset spec — a paper dataset name (lj, pl, tw, kr, sd,
// fr, uni) or a path to a graph file (.txt/.el/.wel/.mtx/.gcsr) — to a
// Dataset description. File specs are not read here; loading (with its
// cached GCSR conversion) happens in Load.
func Resolve(spec string) (Dataset, error) {
	if d, err := DatasetByName(spec); err == nil {
		return d, nil
	}
	if _, err := os.Stat(spec); err != nil {
		var names []string
		for _, d := range Datasets() {
			names = append(names, d.Name)
		}
		return Dataset{}, fmt.Errorf("graph: %q is neither a known dataset (%s) nor a readable graph file: %v",
			spec, strings.Join(names, ", "), err)
	}
	base := filepath.Base(spec)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	if name == "" {
		name = base
	}
	return Dataset{Name: name, FullName: spec, Kind: KindFile, Path: spec}, nil
}

// Load materializes the dataset: synthetic kinds generate (honoring
// scaleDiv), KindFile ingests the file through the registry cache. File
// datasets always load at their full on-disk size — scaleDiv only scales
// the synthetic stand-ins. The weighted flag is an invariant of the
// returned graph, exactly as for generators: if weights are required
// (SSSP) and the file carries none, deterministic synthetic weights are
// added; if the file carries weights nobody asked for, they are dropped
// so non-SSSP apps do not trace weight-array accesses the algorithm
// never performs.
func (d Dataset) Load(weighted bool, scaleDiv uint32) (*CSR, error) {
	if d.Kind != KindFile {
		return d.Generate(weighted, scaleDiv), nil
	}
	g, err := loadFileCached(d.Path)
	if err != nil {
		return nil, err
	}
	switch {
	case weighted && !g.Weighted():
		g = withSyntheticWeights(g)
	case !weighted && g.Weighted():
		g = withoutWeights(g)
	}
	return g, nil
}

// fileEntry is one file's slot in the memo: the once gate gives per-key
// singleflight semantics, so concurrent loads of different files ingest
// in parallel while concurrent loads of the same file share one parse.
// size/modNano are the source file's stat stamp captured when the entry
// was created; loadFileCached compares them against the current stat and
// replaces the entry on mismatch. bytes/seq feed the LRU byte budget:
// the parse's footprint (charged once the load completes) and the entry's
// last-use tick.
type fileEntry struct {
	once    sync.Once
	g       *CSR
	err     error
	size    int64
	modNano int64
	bytes   int64
	seq     uint64
}

// fileCache is the process-wide memo of parsed file graphs, keyed by
// cleaned path and validated by (size, mtime): in a long-lived daemon an
// edited graph file must re-ingest, or its new content address (the jobs
// layer hashes file bytes) would be paired with the stale parsed graph
// and the wrong outcome persisted under the new hash. Stored graphs are
// immutable (Load's weight adjustments build new CSR headers; CSRs are
// never mutated after construction), so concurrent Sessions can share
// them.
//
// The memo is bounded: besides the per-path generation eviction (an
// edited file replaces its own entry), a byte budget with LRU eviction
// caps the total parsed bytes across DISTINCT paths, so a daemon fed
// arbitrary graph files cannot grow without bound (DESIGN.md Sec. 10).
// Evicted graphs stay alive for callers already holding them (they are
// plain GC-managed values); the memo just re-ingests on the next request.
var fileCache = struct {
	sync.Mutex
	m      map[string]*fileEntry
	budget int64
	total  int64
	seq    uint64
}{m: make(map[string]*fileEntry), budget: DefaultFileCacheBudget}

// DefaultFileCacheBudget is the registry memo's initial parsed-bytes cap
// (4 GiB).
const DefaultFileCacheBudget = int64(4) << 30

// SetFileCacheBudget replaces the registry memo's parsed-bytes cap and
// applies it immediately (evicting least-recently-used entries if the new
// budget is already exceeded); n <= 0 disables the cap.
func SetFileCacheBudget(n int64) {
	fileCache.Lock()
	fileCache.budget = n
	evictFilesLocked("")
	fileCache.Unlock()
}

// CachedFiles returns the number of distinct graph files the process-wide
// registry memo currently holds (successful or failed parses alike). It
// exists for observability: a long-lived daemon (graspd) reports it so
// operators can see file graphs being reused across requests instead of
// re-ingested.
func CachedFiles() int {
	fileCache.Lock()
	defer fileCache.Unlock()
	return len(fileCache.m)
}

// CachedFileBytes returns the parsed-graph bytes the memo currently
// retains (observability and tests).
func CachedFileBytes() int64 {
	fileCache.Lock()
	defer fileCache.Unlock()
	return fileCache.total
}

// evictFilesLocked drops least-recently-used entries (never the one under
// keep) until the accounted total fits the budget. Caller holds
// fileCache's lock.
func evictFilesLocked(keep string) {
	if fileCache.budget <= 0 {
		return
	}
	for fileCache.total > fileCache.budget {
		oldest, oldestSeq := "", uint64(0)
		for k, e := range fileCache.m {
			if k != keep && (oldest == "" || e.seq < oldestSeq) {
				oldest, oldestSeq = k, e.seq
			}
		}
		if oldest == "" {
			return
		}
		fileCache.total -= fileCache.m[oldest].bytes
		delete(fileCache.m, oldest)
	}
}

// loadFileCached loads a graph file through two cache layers: the
// in-memory memo, then — for text formats — a sidecar "<path>.gcsr"
// binary conversion that is written on first ingest and reused on later
// runs while the source still matches the (size, mtime) stamp recorded
// next to it. The memo entry is
// validated against the file's current (size, mtime) — the same freshness
// rule the jobs layer uses for content digests — so editing a file
// between requests re-ingests it instead of serving the stale parse.
func loadFileCached(path string) (*CSR, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	size, modNano := fi.Size(), fi.ModTime().UnixNano()
	key := filepath.Clean(path)
	fileCache.Lock()
	e, ok := fileCache.m[key]
	if !ok || e.size != size || e.modNano != modNano {
		if ok {
			fileCache.total -= e.bytes // superseded generation
		}
		e = &fileEntry{size: size, modNano: modNano}
		fileCache.m[key] = e
	}
	fileCache.seq++
	e.seq = fileCache.seq
	fileCache.Unlock()
	// The entry's validation stamp and the load derive from the same stat,
	// so the memo can never mark one file state fresh while the sidecar
	// machinery recorded another.
	e.once.Do(func() {
		e.g, e.err = loadFile(path, fi)
		// Charge the footprint and evict LRU peers over budget. Failed
		// parses are charged a nominal floor so a daemon fed millions of
		// distinct malformed paths still converges to the budget instead
		// of accumulating zero-cost error entries forever. The entry may
		// itself have been evicted (or superseded) while parsing; only
		// the instance still registered under the key is accounted.
		bytes := int64(errEntryBytes)
		if e.g != nil {
			bytes = e.g.Footprint()
		}
		fileCache.Lock()
		if fileCache.m[key] == e {
			e.bytes = bytes
			fileCache.total += e.bytes
			evictFilesLocked(key)
		}
		fileCache.Unlock()
	})
	return e.g, e.err
}

// errEntryBytes is the nominal accounting charge for a memo entry whose
// parse failed: far above its true footprint, so the byte budget also
// bounds how many distinct failing paths the memo retains.
const errEntryBytes = 64 << 10

// loadFile ingests one graph file; srci is the source's stat the caller
// validated against (unused for direct .gcsr files).
func loadFile(path string, srci os.FileInfo) (*CSR, error) {
	if strings.EqualFold(filepath.Ext(path), ".gcsr") {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("graph: %w", err)
		}
		defer f.Close()
		return ReadFrom(f)
	}
	sidecar := path + ".gcsr"
	if g := readFreshSidecar(srci, sidecar); g != nil {
		return g, nil
	}
	g, err := ReadGraphFile(path)
	if err != nil {
		return nil, err
	}
	writeSidecar(sidecar, g, srci) // best-effort: the parse result is authoritative
	return g, nil
}

// sidecarStamp is the path of the file recording which source state
// ("<size> <mtime-unixnano>") a sidecar was converted from.
func sidecarStamp(sidecar string) string { return sidecar + ".stamp" }

// readFreshSidecar returns the cached conversion if its stamp records
// exactly the source's current (size, mtime) AND the sidecar's own
// content digest, and it parses; any failure just means re-ingesting.
// Exact source equality matters: an mtime-ordering check ("sidecar at
// least as new as the source") would trust the stale conversion after the
// source is replaced by an *older* file — a `cp -p` backup restore,
// `git checkout`, `tar -p` — pairing the previous content's parse with
// the restored content's identity. The sidecar digest closes the
// cross-process write race: two processes converting across a concurrent
// source edit can interleave their two renames so one's stamp lands next
// to the other's sidecar, and only a stamp that vouches for the sidecar
// bytes themselves makes that torn pair detectable.
func readFreshSidecar(srci os.FileInfo, sidecar string) *CSR {
	b, err := os.ReadFile(sidecarStamp(sidecar))
	if err != nil {
		return nil
	}
	var size, modNano int64
	var digest string
	if _, err := fmt.Sscanf(string(b), "%d %d %s", &size, &modNano, &digest); err != nil {
		return nil
	}
	if size != srci.Size() || modNano != srci.ModTime().UnixNano() {
		return nil
	}
	f, err := os.Open(sidecar)
	if err != nil {
		return nil
	}
	defer f.Close()
	// Hash during the parse read (one I/O pass, not read-then-reread),
	// drain whatever trails the GCSR payload so the digest covers the
	// whole file, and only then trust the parsed graph.
	h := sha256.New()
	g, err := ReadFrom(io.TeeReader(f, h))
	if err != nil {
		return nil
	}
	if _, err := io.Copy(h, f); err != nil {
		return nil
	}
	if hex.EncodeToString(h.Sum(nil)) != digest {
		return nil
	}
	return g
}

// writeSidecar persists the GCSR conversion and its source stamp, each
// atomically (temp file + rename), so a crashed or concurrent run never
// leaves a torn cache. Ordering is load-bearing: the old stamp is removed
// first and the new one written last, so every crash window leaves a
// missing or mismatching stamp (re-ingest, safe) rather than a fresh
// stamp vouching for a stale sidecar; the stamp also records the sidecar
// bytes' digest, so even interleaved renames from two processes cannot
// produce a stamp that validates the other process's sidecar.
func writeSidecar(sidecar string, g *CSR, srci os.FileInfo) {
	os.Remove(sidecarStamp(sidecar))
	h := sha256.New()
	if !writeFileAtomic(sidecar, func(f *os.File) error {
		_, err := g.WriteTo(io.MultiWriter(f, h))
		return err
	}) {
		return
	}
	writeFileAtomic(sidecarStamp(sidecar), func(f *os.File) error {
		_, err := fmt.Fprintf(f, "%d %d %s\n",
			srci.Size(), srci.ModTime().UnixNano(), hex.EncodeToString(h.Sum(nil)))
		return err
	})
}

// writeFileAtomic writes path via a temp file + rename, reporting success.
func writeFileAtomic(path string, fill func(*os.File) error) bool {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".gcsr-tmp-*")
	if err != nil {
		return false
	}
	if err := fill(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return false
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	return true
}

// syntheticWeightSeed makes file-graph weights reproducible across runs
// and machines: the same file always yields the same weighted graph.
const syntheticWeightSeed = 0xF11E_57ED

// withoutWeights returns an unweighted view of g, sharing its index and
// edge arrays (those are immutable after construction; only the CSR
// header is copied).
func withoutWeights(g *CSR) *CSR {
	ng := *g
	ng.OutWeights, ng.InWeights = nil, nil
	return &ng
}

// withSyntheticWeights rebuilds g with deterministic pseudo-random edge
// weights in [1, maxWeight], for running SSSP on files that ship without a
// weight column.
func withSyntheticWeights(g *CSR) *CSR {
	r := NewRNG(syntheticWeightSeed)
	edges := g.Edges()
	for i := range edges {
		edges[i].Weight = int32(1 + r.Uint32n(maxWeight))
	}
	wg, err := FromEdges(g.NumVertices(), edges, true)
	if err != nil {
		// Edges() of a valid CSR are in range by construction.
		panic(err)
	}
	return wg
}
