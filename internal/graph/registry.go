package graph

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// The dataset registry maps every graph the reproduction can run on —
// the paper's synthetic stand-ins AND any ingested file — through one
// resolver, so `-graph web-Google.txt` and `-dataset tw` flow down the
// same Dataset -> Workload -> simulation path. File-backed datasets are
// parsed once per process (in-memory memo) and converted once per file
// (a sidecar .gcsr cache next to the source, reused while fresh).

// Resolve maps a dataset spec — a paper dataset name (lj, pl, tw, kr, sd,
// fr, uni) or a path to a graph file (.txt/.el/.wel/.mtx/.gcsr) — to a
// Dataset description. File specs are not read here; loading (with its
// cached GCSR conversion) happens in Load.
func Resolve(spec string) (Dataset, error) {
	if d, err := DatasetByName(spec); err == nil {
		return d, nil
	}
	if _, err := os.Stat(spec); err != nil {
		var names []string
		for _, d := range Datasets() {
			names = append(names, d.Name)
		}
		return Dataset{}, fmt.Errorf("graph: %q is neither a known dataset (%s) nor a readable graph file: %v",
			spec, strings.Join(names, ", "), err)
	}
	base := filepath.Base(spec)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	if name == "" {
		name = base
	}
	return Dataset{Name: name, FullName: spec, Kind: KindFile, Path: spec}, nil
}

// Load materializes the dataset: synthetic kinds generate (honoring
// scaleDiv), KindFile ingests the file through the registry cache. File
// datasets always load at their full on-disk size — scaleDiv only scales
// the synthetic stand-ins. The weighted flag is an invariant of the
// returned graph, exactly as for generators: if weights are required
// (SSSP) and the file carries none, deterministic synthetic weights are
// added; if the file carries weights nobody asked for, they are dropped
// so non-SSSP apps do not trace weight-array accesses the algorithm
// never performs.
func (d Dataset) Load(weighted bool, scaleDiv uint32) (*CSR, error) {
	if d.Kind != KindFile {
		return d.Generate(weighted, scaleDiv), nil
	}
	g, err := loadFileCached(d.Path)
	if err != nil {
		return nil, err
	}
	switch {
	case weighted && !g.Weighted():
		g = withSyntheticWeights(g)
	case !weighted && g.Weighted():
		g = withoutWeights(g)
	}
	return g, nil
}

// fileEntry is one file's slot in the memo: the once gate gives per-key
// singleflight semantics, so concurrent loads of different files ingest
// in parallel while concurrent loads of the same file share one parse.
type fileEntry struct {
	once sync.Once
	g    *CSR
	err  error
}

// fileCache is the process-wide memo of parsed file graphs, keyed by
// cleaned path. Stored graphs are immutable (Load's weight adjustments
// build new CSR headers; CSRs are never mutated after construction), so
// concurrent Sessions can share them.
var fileCache = struct {
	sync.Mutex
	m map[string]*fileEntry
}{m: make(map[string]*fileEntry)}

// CachedFiles returns the number of distinct graph files the process-wide
// registry memo currently holds (successful or failed parses alike). It
// exists for observability: a long-lived daemon (graspd) reports it so
// operators can see file graphs being reused across requests instead of
// re-ingested.
func CachedFiles() int {
	fileCache.Lock()
	defer fileCache.Unlock()
	return len(fileCache.m)
}

// loadFileCached loads a graph file through two cache layers: the
// in-memory memo, then — for text formats — a sidecar "<path>.gcsr"
// binary conversion that is written on first ingest and reused on later
// runs while it is at least as new as the source.
func loadFileCached(path string) (*CSR, error) {
	key := filepath.Clean(path)
	fileCache.Lock()
	e, ok := fileCache.m[key]
	if !ok {
		e = &fileEntry{}
		fileCache.m[key] = e
	}
	fileCache.Unlock()
	e.once.Do(func() { e.g, e.err = loadFile(path) })
	return e.g, e.err
}

func loadFile(path string) (*CSR, error) {
	if strings.EqualFold(filepath.Ext(path), ".gcsr") {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("graph: %w", err)
		}
		defer f.Close()
		return ReadFrom(f)
	}
	sidecar := path + ".gcsr"
	if g := readFreshSidecar(path, sidecar); g != nil {
		return g, nil
	}
	g, err := ReadGraphFile(path)
	if err != nil {
		return nil, err
	}
	writeSidecar(sidecar, g) // best-effort: the parse result is authoritative
	return g, nil
}

// readFreshSidecar returns the cached conversion if it exists, is at least
// as new as the source, and parses; any failure just means re-ingesting.
func readFreshSidecar(src, sidecar string) *CSR {
	si, err := os.Stat(sidecar)
	if err != nil {
		return nil
	}
	srci, err := os.Stat(src)
	if err != nil || si.ModTime().Before(srci.ModTime()) {
		return nil
	}
	f, err := os.Open(sidecar)
	if err != nil {
		return nil
	}
	defer f.Close()
	g, err := ReadFrom(f)
	if err != nil {
		return nil
	}
	return g
}

// writeSidecar persists the GCSR conversion atomically (temp file +
// rename) so a crashed or concurrent run never leaves a torn cache.
func writeSidecar(sidecar string, g *CSR) {
	tmp, err := os.CreateTemp(filepath.Dir(sidecar), ".gcsr-tmp-*")
	if err != nil {
		return
	}
	if _, err := g.WriteTo(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), sidecar); err != nil {
		os.Remove(tmp.Name())
	}
}

// syntheticWeightSeed makes file-graph weights reproducible across runs
// and machines: the same file always yields the same weighted graph.
const syntheticWeightSeed = 0xF11E_57ED

// withoutWeights returns an unweighted view of g, sharing its index and
// edge arrays (those are immutable after construction; only the CSR
// header is copied).
func withoutWeights(g *CSR) *CSR {
	ng := *g
	ng.OutWeights, ng.InWeights = nil, nil
	return &ng
}

// withSyntheticWeights rebuilds g with deterministic pseudo-random edge
// weights in [1, maxWeight], for running SSSP on files that ship without a
// weight column.
func withSyntheticWeights(g *CSR) *CSR {
	r := NewRNG(syntheticWeightSeed)
	edges := g.Edges()
	for i := range edges {
		edges[i].Weight = int32(1 + r.Uint32n(maxWeight))
	}
	wg, err := FromEdges(g.NumVertices(), edges, true)
	if err != nil {
		// Edges() of a valid CSR are in range by construction.
		panic(err)
	}
	return wg
}
