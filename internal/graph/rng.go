package graph

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** by Blackman & Vigna) used by all graph generators so that
// datasets are reproducible across runs without importing math/rand's
// global state. It intentionally implements only what the generators need.
type RNG struct {
	s [4]uint64
}

// NewRNG seeds the generator using splitmix64, as recommended by the
// xoshiro authors, guaranteeing a well-mixed nonzero state for any seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint32n(n uint32) uint32 {
	// Lemire's multiply-shift rejection method.
	v := uint32(r.Uint64())
	prod := uint64(v) * uint64(n)
	low := uint32(prod)
	if low < n {
		thresh := -n % n
		for low < thresh {
			v = uint32(r.Uint64())
			prod = uint64(v) * uint64(n)
			low = uint32(prod)
		}
	}
	return uint32(prod >> 32)
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int { return int(r.Uint64n(uint64(n))) }

// Perm returns a random permutation of [0, n) as uint32 values
// (Fisher-Yates).
func (r *RNG) Perm(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
