package graph

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Fuzz targets for every ingestion entry point: arbitrary (truncated,
// corrupt, adversarial) input must produce an error, never a panic or an
// unbounded allocation. Successful parses must satisfy the CSR invariants
// and survive a binary round trip. A committed seed corpus under
// testdata/fuzz/ pins the known-hostile inputs (notably the lying-header
// GCSR repro that motivated the chunked ReadFrom) so `go test` replays
// them on every run.

// hostileGCSRHeader is the original ReadFrom DoS repro: a 24-byte file
// whose header declares 2^32-1 vertices and 2^48 edges, which the
// pre-validation reader turned into ~32GB of up-front allocations.
func hostileGCSRHeader() []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	binary.Write(&b, binary.LittleEndian, uint32(formatVersion))
	binary.Write(&b, binary.LittleEndian, uint32(0xFFFF_FFFF)) // n
	binary.Write(&b, binary.LittleEndian, uint64(1)<<48)       // m
	binary.Write(&b, binary.LittleEndian, uint32(0))           // flags
	return b.Bytes()
}

func FuzzReadFrom(f *testing.F) {
	for _, g := range []*CSR{GenPath(5), GenStar(4), GenRMATDefault(4, 3, 3, true)} {
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2]) // truncated
	}
	f.Add(hostileGCSRHeader())
	f.Add([]byte("GCSR"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("ReadFrom accepted an invalid graph: %v", verr)
		}
		var buf bytes.Buffer
		if _, werr := g.WriteTo(&buf); werr != nil {
			t.Fatalf("round-trip write failed: %v", werr)
		}
		if _, rerr := ReadFrom(&buf); rerr != nil {
			t.Fatalf("round-trip read failed: %v", rerr)
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n% comment\n0 1 7\n1 0 -3\n"))
	f.Add([]byte("5 900\n"))
	f.Add([]byte("0 4000000000\n"))           // sparse-ID bound repro
	f.Add([]byte("0 4294967295\n"))           // maxID+1 wraps uint32
	f.Add([]byte("18446744073709551615 0\n")) // beyond uint32
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("ReadEdgeList accepted an invalid graph: %v", verr)
		}
		if uint64(g.NumVertices()) > maxIngestVertices(int(g.NumEdges())) {
			t.Fatalf("vertex bound not enforced: %v", g)
		}
	})
}

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate integer symmetric\n3 3 2\n2 1 4\n3 3 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 2.5\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\n4000000000 4000000000 1\n1 1\n")) // hostile dims
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 1e300\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("ReadMatrixMarket accepted an invalid graph: %v", verr)
		}
	})
}

// FuzzReadGraph drives the sniffing front door with the union of the other
// targets' shapes.
func FuzzReadGraph(f *testing.F) {
	var buf bytes.Buffer
	if _, err := GenPath(4).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n"))
	f.Add([]byte("0 1\n"))
	f.Add(hostileGCSRHeader())
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGraph(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("ReadGraph accepted an invalid graph: %v", verr)
		}
	})
}
