package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadMatrixMarketGeneralInteger(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
% a comment
3 3 3
1 2 7
2 3 5
3 1 2
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
	if !g.Weighted() {
		t.Fatal("integer matrix parsed as unweighted")
	}
	if w := g.OutNeighborWeights(0)[0]; w != 7 {
		t.Fatalf("weight(0->1) = %d, want 7", w)
	}
}

func TestReadMatrixMarketSymmetricPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
4 4 3
2 1
3 2
4 4
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Two off-diagonal entries mirror; the diagonal entry (self-loop) does
	// not: 2*2 + 1 = 5 directed edges.
	if g.NumVertices() != 4 || g.NumEdges() != 5 {
		t.Fatalf("got %v, want 4 vertices / 5 edges", g)
	}
	if g.Weighted() {
		t.Fatal("pattern matrix parsed as weighted")
	}
	if g.OutDegree(0) != 1 || g.OutNeighbors(0)[0] != 1 {
		t.Fatal("mirror edge 0->1 missing")
	}
}

func TestReadMatrixMarketRealRounds(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 2.6\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w := g.OutNeighborWeights(0)[0]; w != 3 {
		t.Fatalf("weight = %d, want 3 (rounded from 2.6)", w)
	}
}

func TestReadMatrixMarketRectangular(t *testing.T) {
	// Rectangular matrices size the graph by the larger dimension.
	in := "%%MatrixMarket matrix coordinate pattern general\n2 5 2\n1 5\n2 4\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 {
		t.Fatalf("vertices = %d, want 5", g.NumVertices())
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad banner":       "%%NotMatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n",
		"array format":     "%%MatrixMarket matrix array real general\n2 2\n1.0\n",
		"complex field":    "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"skew symmetry":    "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1\n",
		"no size line":     "%%MatrixMarket matrix coordinate real general\n% only comments\n",
		"bad size line":    "%%MatrixMarket matrix coordinate real general\n2 2\n",
		"row out of range": "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n",
		"col out of range": "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 3\n",
		"zero index":       "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n",
		"too few entries":  "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 2\n",
		"too many entries": "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n2 1\n",
		"bad value":        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 zz\n",
		"value overflow":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 1e300\n",
		"missing weight":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n",
		"hostile dims":     "%%MatrixMarket matrix coordinate pattern general\n4000000000 4000000000 1\n1 1\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadEdgeListRejectsSparseHostileIDs(t *testing.T) {
	// A tiny edge list must not be able to demand a multi-gigabyte CSR by
	// naming one huge vertex ID.
	if _, err := ReadEdgeList(strings.NewReader("0 4000000000\n")); err == nil {
		t.Fatal("expected sparse-ID bound error")
	}
	// The bound is relative: plausibly-sparse small graphs still load.
	if _, err := ReadEdgeList(strings.NewReader("5 900\n")); err != nil {
		t.Fatalf("small sparse graph rejected: %v", err)
	}
}

func TestReadGraphSniffsFormats(t *testing.T) {
	ref := GenRMATDefault(6, 4, 9, true)

	var gcsr bytes.Buffer
	if _, err := ref.WriteTo(&gcsr); err != nil {
		t.Fatal(err)
	}
	g, err := ReadGraph(bytes.NewReader(gcsr.Bytes()), "mem.gcsr")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != ref.NumEdges() {
		t.Fatal("GCSR sniff lost edges")
	}

	mtx := "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n"
	if g, err = ReadGraph(strings.NewReader(mtx), "mem.mtx"); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatal("MatrixMarket sniff failed")
	}

	if g, err = ReadGraph(strings.NewReader("# c\n0 1\n1 0\n"), "mem.el"); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatal("edge-list sniff failed")
	}

	if _, err = ReadGraph(strings.NewReader(""), "empty"); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestReadGraphFileByExtension(t *testing.T) {
	dir := t.TempDir()
	ref := GenRMATDefault(6, 3, 11, false)

	elPath := filepath.Join(dir, "g.el")
	var el bytes.Buffer
	if err := WriteEdgeList(&el, ref); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(elPath, el.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	gcsrPath := filepath.Join(dir, "g.gcsr")
	var bin bytes.Buffer
	if _, err := ref.WriteTo(&bin); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gcsrPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	mtxPath := filepath.Join(dir, "g.mtx")
	if err := os.WriteFile(mtxPath, []byte("%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Unknown extension falls back to sniffing.
	unkPath := filepath.Join(dir, "g.dat")
	if err := os.WriteFile(unkPath, el.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		path  string
		edges uint64
	}{
		{elPath, ref.NumEdges()},
		{gcsrPath, ref.NumEdges()},
		{mtxPath, 2},
		{unkPath, ref.NumEdges()},
	} {
		g, err := ReadGraphFile(tc.path)
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if g.NumEdges() != tc.edges {
			t.Fatalf("%s: edges = %d, want %d", tc.path, g.NumEdges(), tc.edges)
		}
	}

	if _, err := ReadGraphFile(filepath.Join(dir, "missing.el")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
