// Package mem models the application's virtual address space for the
// trace-driven cache simulation: data structures (Vertex Array, Edge Array,
// Property Arrays, frontiers) are registered as Arrays at virtual base
// addresses, and algorithm execution emits a stream of Access events that
// the cache hierarchy consumes.
//
// Each static load/store site in an application kernel is given a stable
// synthetic PC, reproducing the property the paper highlights in Sec. II-F:
// a single PC accesses hot and cold vertices alike, which defeats PC-based
// reuse correlation.
package mem

import "fmt"

// Hint is the 2-bit reuse hint GRASP forwards to the LLC with each cache
// request (Sec. III-B of the paper).
type Hint uint8

// Reuse hints. Default is what non-graph applications (ABRs unset) send.
const (
	HintDefault Hint = iota
	HintHigh
	HintModerate
	HintLow
)

// String implements fmt.Stringer.
func (h Hint) String() string {
	switch h {
	case HintHigh:
		return "High-Reuse"
	case HintModerate:
		return "Moderate-Reuse"
	case HintLow:
		return "Low-Reuse"
	default:
		return "Default"
	}
}

// Access is one memory access event.
type Access struct {
	Addr     uint64 // virtual byte address
	PC       uint32 // synthetic program counter of the access site
	Hint     Hint   // reuse hint attached by GRASP classification (LLC only)
	Write    bool
	Property bool // true if the access falls within a Property Array (Fig. 2 accounting)
}

// Sink consumes a stream of accesses.
type Sink interface {
	Access(a Access)
}

// NullSink discards all accesses; used to run applications natively.
type NullSink struct{}

// Access implements Sink.
func (NullSink) Access(Access) {}

// CountingSink counts accesses; used by tests.
type CountingSink struct {
	Reads, Writes uint64
	PropertyN     uint64
}

// Access implements Sink.
func (c *CountingSink) Access(a Access) {
	if a.Write {
		c.Writes++
	} else {
		c.Reads++
	}
	if a.Property {
		c.PropertyN++
	}
}

// Recorder stores the full access stream; used by the Belady OPT
// experiments, which require future knowledge, and by tests.
type Recorder struct {
	Trace []Access
}

// Access implements Sink.
func (r *Recorder) Access(a Access) { r.Trace = append(r.Trace, a) }

// Array is a contiguous data structure registered in the address space.
type Array struct {
	Name     string
	Base     uint64 // virtual base address, block-aligned
	ElemSize uint64 // bytes per element
	Len      uint64 // number of elements
	Property bool   // Property Arrays get ABR pairs and Fig. 2 accounting
}

// Addr returns the byte address of element i (offset 0 within the element).
func (ar *Array) Addr(i uint64) uint64 { return ar.Base + i*ar.ElemSize }

// AddrOff returns the byte address of element i at byte offset off within
// the element (for merged multi-field property elements).
func (ar *Array) AddrOff(i, off uint64) uint64 { return ar.Base + i*ar.ElemSize + off }

// End returns the first byte address past the array.
func (ar *Array) End() uint64 { return ar.Base + ar.Len*ar.ElemSize }

// SizeBytes returns the array footprint in bytes.
func (ar *Array) SizeBytes() uint64 { return ar.Len * ar.ElemSize }

// AddressSpace assigns virtual base addresses to arrays. Arrays are placed
// sequentially with alignment and a guard gap so that distinct arrays never
// share a cache block or a SHiP memory region.
type AddressSpace struct {
	next   uint64
	arrays []*Array
}

const (
	baseAddr  = 0x1000_0000
	alignBits = 16 // 64KB alignment: > any cache block and SHiP region
)

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: baseAddr}
}

// Register places an array and returns it.
func (as *AddressSpace) Register(name string, elemSize, n uint64, property bool) *Array {
	ar := &Array{Name: name, Base: as.next, ElemSize: elemSize, Len: n, Property: property}
	size := ar.SizeBytes()
	align := uint64(1) << alignBits
	as.next += (size + 2*align - 1) &^ (align - 1) // size + guard, aligned
	as.arrays = append(as.arrays, ar)
	return ar
}

// Arrays returns all registered arrays in registration order.
func (as *AddressSpace) Arrays() []*Array { return as.arrays }

// PropertyArrays returns the registered Property Arrays.
func (as *AddressSpace) PropertyArrays() []*Array {
	var out []*Array
	for _, ar := range as.arrays {
		if ar.Property {
			out = append(out, ar)
		}
	}
	return out
}

// Find returns the array containing addr, or nil.
func (as *AddressSpace) Find(addr uint64) *Array {
	for _, ar := range as.arrays {
		if addr >= ar.Base && addr < ar.End() {
			return ar
		}
	}
	return nil
}

// String summarizes the layout.
func (as *AddressSpace) String() string {
	s := "AddressSpace{\n"
	for _, ar := range as.arrays {
		s += fmt.Sprintf("  %-16s base=%#x elem=%dB len=%d (%d KB) property=%v\n",
			ar.Name, ar.Base, ar.ElemSize, ar.Len, ar.SizeBytes()/1024, ar.Property)
	}
	return s + "}"
}

// PC returns a stable synthetic program counter for a named static access
// site (FNV-1a over the site name). Distinct sites get distinct PCs with
// overwhelming probability; the same site always gets the same PC.
func PC(site string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(site); i++ {
		h ^= uint32(site[i])
		h *= prime32
	}
	return h
}
