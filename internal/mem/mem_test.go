package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddressSpaceLayout(t *testing.T) {
	as := NewAddressSpace()
	a := as.Register("a", 8, 1000, true)
	b := as.Register("b", 4, 500, false)
	if a.Base%64 != 0 || b.Base%64 != 0 {
		t.Fatal("arrays must be block-aligned")
	}
	if b.Base < a.End() {
		t.Fatal("arrays overlap")
	}
	// Guard gap: arrays must not share a 16KB SHiP region.
	if a.End()>>14 == b.Base>>14 {
		t.Fatal("arrays share a 16KB region")
	}
	if got := as.Find(a.Addr(999)); got != a {
		t.Fatal("Find failed for last element of a")
	}
	if got := as.Find(a.End()); got == a {
		t.Fatal("Find must exclude End()")
	}
	if as.Find(0) != nil {
		t.Fatal("Find(0) should be nil")
	}
}

func TestArrayAddressing(t *testing.T) {
	as := NewAddressSpace()
	a := as.Register("p", 16, 100, true)
	if a.Addr(0) != a.Base {
		t.Fatal("Addr(0) != Base")
	}
	if a.Addr(3) != a.Base+48 {
		t.Fatal("Addr(3) wrong")
	}
	if a.AddrOff(3, 8) != a.Base+56 {
		t.Fatal("AddrOff wrong")
	}
	if a.SizeBytes() != 1600 {
		t.Fatal("SizeBytes wrong")
	}
}

func TestPropertyArrays(t *testing.T) {
	as := NewAddressSpace()
	as.Register("v", 8, 10, false)
	p1 := as.Register("p1", 8, 10, true)
	p2 := as.Register("p2", 8, 10, true)
	props := as.PropertyArrays()
	if len(props) != 2 || props[0] != p1 || props[1] != p2 {
		t.Fatalf("PropertyArrays = %v", props)
	}
	if len(as.Arrays()) != 3 {
		t.Fatal("Arrays() wrong length")
	}
}

func TestSinks(t *testing.T) {
	var c CountingSink
	c.Access(Access{Addr: 1, Write: false, Property: true})
	c.Access(Access{Addr: 2, Write: true})
	if c.Reads != 1 || c.Writes != 1 || c.PropertyN != 1 {
		t.Fatalf("counting sink wrong: %+v", c)
	}
	var r Recorder
	r.Access(Access{Addr: 7})
	if len(r.Trace) != 1 || r.Trace[0].Addr != 7 {
		t.Fatal("recorder wrong")
	}
	NullSink{}.Access(Access{}) // must not panic
}

func TestPCStable(t *testing.T) {
	if PC("pr.load.contrib") != PC("pr.load.contrib") {
		t.Fatal("PC not stable")
	}
	if PC("a") == PC("b") {
		t.Fatal("PC collision on trivially distinct sites")
	}
}

func TestHintString(t *testing.T) {
	for h, want := range map[Hint]string{
		HintDefault:  "Default",
		HintHigh:     "High-Reuse",
		HintModerate: "Moderate-Reuse",
		HintLow:      "Low-Reuse",
	} {
		if h.String() != want {
			t.Fatalf("Hint(%d).String() = %q, want %q", h, h.String(), want)
		}
	}
}

func TestAddressSpaceString(t *testing.T) {
	as := NewAddressSpace()
	as.Register("prop", 8, 4, true)
	s := as.String()
	if !strings.Contains(s, "prop") {
		t.Fatalf("String() missing array name: %s", s)
	}
}

// Property: arrays never overlap regardless of registration sizes.
func TestNoOverlapQuick(t *testing.T) {
	f := func(sizes []uint16) bool {
		as := NewAddressSpace()
		var arrs []*Array
		for i, s := range sizes {
			if i > 20 {
				break
			}
			arrs = append(arrs, as.Register("x", 8, uint64(s)+1, i%2 == 0))
		}
		for i := 1; i < len(arrs); i++ {
			if arrs[i].Base < arrs[i-1].End() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
