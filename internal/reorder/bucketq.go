package reorder

import "math/bits"

// vertexBucketQueue is the unit-increment priority structure behind
// Gorder's greedy loop: it holds every unplaced vertex keyed by its
// current locality score and supports
//
//	increment(v)  score[v]++           O(1)
//	decrement(v)  score[v]--           O(1)
//	popMax()      remove and return    O(1) amortized
//
// where popMax returns the LOWEST vertex id among those sharing the
// maximum score — the documented deterministic tie-break of this
// implementation (DESIGN.md Sec. 12). Scores only move by ±1 (a window
// insertion or eviction touches each affected vertex once per shared
// structural feature), which is what makes constant-time bucket moves
// possible; the lazy-deletion heap this replaces churned ~1700 O(log n)
// push/pops per placed vertex at reproduction scale.
//
// Each score bucket is a hierarchical bitmap over vertex ids (64-way
// fan-out per level), not a linked list: the id tie-break needs "lowest
// set id" in O(levels) = O(log64 n) ≤ 4 word probes, where a linked bucket
// would pay O(bucket size) per pop to find it (the initial all-zero bucket
// alone holds every vertex). Set/clear touch the same ≤4 words, so bucket
// moves stay constant-time. Buckets materialize lazily on first use: the
// greedy loop only ever reaches scores bounded by the window's structural
// overlap, so the bucket array stays short.
type vertexBucketQueue struct {
	score   []int32
	buckets []idBitmap
	max     int32
}

// newVertexBucketQueue builds the queue over vertices [0, n), all at
// score 0.
func newVertexBucketQueue(n uint32) *vertexBucketQueue {
	q := &vertexBucketQueue{score: make([]int32, n)}
	q.bucket(0)
	for v := uint32(0); v < n; v++ {
		q.buckets[0].add(v)
	}
	return q
}

// bucket returns the bitmap for score s, materializing buckets up to s.
func (q *vertexBucketQueue) bucket(s int32) *idBitmap {
	for int32(len(q.buckets)) <= s {
		q.buckets = append(q.buckets, newIDBitmap(uint32(len(q.score))))
	}
	return &q.buckets[s]
}

// increment moves v one bucket up.
func (q *vertexBucketQueue) increment(v uint32) {
	s := q.score[v]
	q.buckets[s].remove(v)
	q.score[v] = s + 1
	q.bucket(s + 1).add(v)
	if s+1 > q.max {
		q.max = s + 1
	}
}

// decrement moves v one bucket down. Scores never go negative: a window
// eviction only reverses increments its insertion applied to
// still-unplaced vertices.
func (q *vertexBucketQueue) decrement(v uint32) {
	s := q.score[v]
	q.buckets[s].remove(v)
	q.score[v] = s - 1
	q.buckets[s-1].add(v)
}

// popMax removes and returns the lowest-id vertex of the highest
// non-empty bucket. The max cursor only descends here (and rises in
// increment), so the total walk is bounded by the total number of
// increments. Must not be called on an empty queue — Gorder pops exactly
// n times over n held vertices.
func (q *vertexBucketQueue) popMax() uint32 {
	for q.buckets[q.max].empty() {
		q.max--
	}
	v, _ := q.buckets[q.max].min()
	q.buckets[q.max].remove(v)
	return v
}

// idBitmap is a hierarchical (64-way) bitmap over vertex ids supporting
// O(log64 n) add, remove, emptiness and minimum queries. levels[0] holds
// one bit per id; each higher level holds one summary bit per word below,
// so min() walks at most four levels for any graph that fits in uint32
// ids.
type idBitmap struct {
	levels [][]uint64
}

// newIDBitmap builds an empty bitmap sized for ids [0, n).
func newIDBitmap(n uint32) idBitmap {
	var levels [][]uint64
	words := (int(n) + 63) / 64
	if words == 0 {
		words = 1
	}
	for {
		levels = append(levels, make([]uint64, words))
		if words == 1 {
			break
		}
		words = (words + 63) / 64
	}
	return idBitmap{levels: levels}
}

// add sets id's bit, propagating summary bits upward.
func (b *idBitmap) add(id uint32) {
	i := id
	for l := range b.levels {
		w, bit := i/64, i%64
		old := b.levels[l][w]
		b.levels[l][w] = old | 1<<bit
		if old != 0 {
			return // summary above already set
		}
		i = w
	}
}

// remove clears id's bit, clearing summary bits that become empty.
func (b *idBitmap) remove(id uint32) {
	i := id
	for l := range b.levels {
		w, bit := i/64, i%64
		b.levels[l][w] &^= 1 << bit
		if b.levels[l][w] != 0 {
			return
		}
		i = w
	}
}

// empty reports whether no id is set.
func (b *idBitmap) empty() bool {
	return b.levels[len(b.levels)-1][0] == 0
}

// min returns the lowest set id, walking the summary levels top-down.
func (b *idBitmap) min() (uint32, bool) {
	if b.empty() {
		return 0, false
	}
	w := uint32(0)
	for l := len(b.levels) - 1; l >= 0; l-- {
		w = w*64 + uint32(bits.TrailingZeros64(b.levels[l][w]))
	}
	return w, true
}
