package reorder

import (
	"fmt"
	"testing"

	"grasp/internal/graph"
)

// This file keeps an independent reference implementation of Gorder's
// candidate selection — the lazy-deletion max-heap the bucket queue
// replaced — so the bucket queue's output is cross-checked against a
// structurally different data structure implementing the same documented
// spec: always pop a vertex of the current maximum score, lowest vertex id
// among ties. The production heap historically had a blind spot (a
// decrement never re-pushed, so a vertex whose only heap entries were
// stale could be passed over); the reference fixes that by pushing on
// EVERY score change, making lazy deletion exact. With both
// implementations exact, permutation equality is a strong check: any
// bucket/bitmap bookkeeping bug that perturbs even one pop diverges the
// whole tail of the ordering.
//
// The golden refresh that accompanied the bucket queue is gated on this
// suite: CI runs it before the golden harness, so the re-blessed
// Gorder-derived outputs are proven to be the spec's output, not an
// accident of the new structure.

// refItem is one (vertex, score-at-push) heap entry.
type refItem struct {
	v     graph.VertexID
	score int32
}

// refPQ is a max-heap over refItem ordered by (score desc, id asc) —
// lowest id wins among equal scores, matching the documented tie-break.
type refPQ []refItem

// less is the strict-weak ordering: higher score first, lower id first.
func (q refPQ) less(a, b refItem) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.v < b.v
}

func (q *refPQ) push(it refItem) {
	h := append(*q, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(it, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = it
	*q = h
}

func (q *refPQ) pop() refItem {
	h := *q
	last := len(h) - 1
	top := h[0]
	mover := h[last]
	live := h[:last]
	i := 0
	for {
		left := 2*i + 1
		if uint(left) >= uint(last) {
			break
		}
		j := left
		if right := left + 1; right < last && live.less(live[right], live[left]) {
			j = right
		}
		if !live.less(live[j], mover) {
			break
		}
		live[i] = live[j]
		i = j
	}
	if last > 0 {
		live[i] = mover
	}
	*q = live
	return top
}

// gorderReference is the reference Gorder: identical scoring loops, but
// candidate selection through the exact lazy-deletion heap. Stale entries
// (score at push != current score) are skipped on pop; since every score
// change pushes a fresh entry, the first non-stale pop is the true
// (max score, min id) vertex.
func gorderReference(g *graph.CSR, window int) Permutation {
	n := g.NumVertices()
	if n == 0 {
		return Permutation{}
	}
	if window <= 0 {
		window = DefaultGorderWindow
	}
	score := make([]int32, n)
	placed := make([]bool, n)
	pq := make(refPQ, 0, 2*n)
	for v := uint32(0); v < n; v++ {
		pq.push(refItem{v: v, score: 0})
	}
	updateFor := func(u graph.VertexID, delta int32) {
		bump := func(v graph.VertexID) {
			if !placed[v] {
				score[v] += delta
				pq.push(refItem{v: v, score: score[v]})
			}
		}
		for _, v := range g.OutNeighbors(u) {
			bump(v)
		}
		for _, w := range g.InNeighbors(u) {
			nb := g.OutNeighbors(w)
			if len(nb) > hubCap {
				nb = nb[:hubCap]
			}
			for _, v := range nb {
				bump(v)
			}
		}
	}
	order := make([]graph.VertexID, 0, n)
	win := make([]graph.VertexID, 0, window)
	for len(order) < int(n) {
		var u graph.VertexID
		for {
			it := pq.pop()
			if placed[it.v] || it.score != score[it.v] {
				continue
			}
			u = it.v
			break
		}
		placed[u] = true
		order = append(order, u)
		if len(win) == window {
			evicted := win[0]
			copy(win, win[1:])
			win = win[:window-1]
			updateFor(evicted, -1)
		}
		win = append(win, u)
		updateFor(u, +1)
	}
	p := make(Permutation, n)
	for newID, old := range order {
		p[old] = uint32(newID)
	}
	return p
}

// crossCheckGraphs is the seed table: shapes chosen to stress distinct
// queue behaviors — massive score ties (cycle, grid), hub-dominated
// updates (zipf), score decay via window eviction (path), and edgeless
// vertices that only ever sit in bucket 0.
func crossCheckGraphs() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"zipf-1k":    graph.GenZipf(1000, 10, 0.8, 17, false),
		"zipf-dense": graph.GenZipf(400, 24, 0.9, 5, false),
		"uniform":    graph.GenUniform(800, 6, 23, false),
		"path":       graph.GenPath(500),
		"cycle":      graph.GenCycle(300),
		"grid":       graph.GenGrid(20, 25),
	}
}

// TestGorderCrossCheck asserts the bucket-queue Gorder and the heap
// reference produce the IDENTICAL permutation on every seed-table graph
// and several window sizes, so the one-time golden refresh is a re-bless
// of a proven-equivalent algorithm, not a leap of faith.
func TestGorderCrossCheck(t *testing.T) {
	for name, g := range crossCheckGraphs() {
		for _, window := range []int{1, 3, DefaultGorderWindow, 8} {
			t.Run(fmt.Sprintf("%s/w%d", name, window), func(t *testing.T) {
				got := Gorder(g, window)
				want := gorderReference(g, window)
				if err := got.Validate(); err != nil {
					t.Fatalf("bucket queue produced invalid permutation: %v", err)
				}
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("permutations diverge at vertex %d: bucket queue -> %d, reference heap -> %d",
							v, got[v], want[v])
					}
				}
			})
		}
	}
}

// TestVertexBucketQueueOps pins the queue's contract directly: exact max,
// lowest-id tie-break, and correct bucket moves under mixed
// increment/decrement traffic.
func TestVertexBucketQueueOps(t *testing.T) {
	q := newVertexBucketQueue(200)
	// All start at score 0: pops must come out in id order.
	if v := q.popMax(); v != 0 {
		t.Fatalf("first pop = %d, want 0 (lowest id at equal score)", v)
	}
	// Raise 150 to 2, 7 and 9 to 1.
	q.increment(150)
	q.increment(150)
	q.increment(9)
	q.increment(7)
	if v := q.popMax(); v != 150 {
		t.Fatalf("pop = %d, want 150 (unique max)", v)
	}
	if v := q.popMax(); v != 7 {
		t.Fatalf("pop = %d, want 7 (lowest id among score-1 ties)", v)
	}
	// Decrement 9 back to 0: next pop is the lowest id at score 0.
	q.decrement(9)
	if v := q.popMax(); v != 1 {
		t.Fatalf("pop = %d, want 1", v)
	}
	// Drain a few more; order must stay strictly by id within score 0.
	for _, want := range []uint32{2, 3, 4, 5, 6, 8, 9} {
		if v := q.popMax(); v != want {
			t.Fatalf("drain pop = %d, want %d", v, want)
		}
	}
}

// TestIDBitmapMin exercises the hierarchical bitmap across word and level
// boundaries.
func TestIDBitmapMin(t *testing.T) {
	b := newIDBitmap(100_000)
	if _, ok := b.min(); ok {
		t.Fatal("empty bitmap reported a minimum")
	}
	for _, id := range []uint32{99_999, 64 * 64, 63, 64, 4097} {
		b.add(id)
	}
	for _, want := range []uint32{63, 64, 64 * 64, 4097, 99_999} {
		got, ok := b.min()
		if !ok || got != want {
			t.Fatalf("min = %d,%v, want %d", got, ok, want)
		}
		b.remove(got)
	}
	if !b.empty() {
		t.Fatal("bitmap not empty after removing all ids")
	}
}
