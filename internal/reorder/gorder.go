package reorder

import (
	"grasp/internal/graph"
)

// DefaultGorderWindow is the sliding-window size used by Gorder; the Gorder
// paper (Wei et al., SIGMOD'16) recommends w=5.
const DefaultGorderWindow = 5

// hubCap bounds the expansion of very high out-degree in-neighbors during
// Gorder's score updates. Without it, the greedy pass costs
// sum_u outdeg(u)^2, which is intractable on power-law graphs; the original
// implementation applies comparable hub optimizations. Capping changes the
// approximation slightly but not the algorithm's character — or its
// dominant cost, which is the point of the Fig. 10a experiment.
const hubCap = 256

// Gorder computes a Gorder-style vertex ordering: a greedy sequence that
// repeatedly appends the vertex with the highest locality score with
// respect to a sliding window of the w most recently placed vertices.
// The score of candidate v is the number of (a) edges from window vertices
// to v plus (b) common in-neighbors between v and window vertices — i.e.
// the S(u,v) = S_s(u,v) + S_n(u,v) function of the Gorder paper.
//
// This is the "complex technique with a staggering reordering cost"
// evaluated as Gorder in the paper; it approximates an NP-hard problem by
// comprehensive structural analysis and is orders of magnitude more
// expensive than the skew-aware techniques.
func Gorder(g *graph.CSR, window int) Permutation {
	n := g.NumVertices()
	if n == 0 {
		return Permutation{}
	}
	if window <= 0 {
		window = DefaultGorderWindow
	}

	// Lazy-deletion max-heap keyed by score; stale entries are skipped when
	// popped (priority at pop time must match the current score).
	score := make([]int32, n)
	placed := make([]bool, n)
	pq := make(gorderPQ, 0, 2*n)
	for v := uint32(0); v < n; v++ {
		pq.push(gorderItem{v: v, score: 0})
	}

	// updateFor adjusts scores of all unplaced vertices whose score is
	// affected by placing u into the window (delta=+1) or evicting it
	// (delta=-1): u's out-neighbors (sibling term handled via in-neighbor
	// expansion) and out-neighbors of u's in-neighbors.
	updateFor := func(u graph.VertexID, delta int32) {
		for _, v := range g.OutNeighbors(u) {
			if !placed[v] {
				score[v] += delta
				if delta > 0 {
					pq.push(gorderItem{v: v, score: score[v]})
				}
			}
		}
		for _, w := range g.InNeighbors(u) {
			nb := g.OutNeighbors(w)
			if len(nb) > hubCap {
				nb = nb[:hubCap]
			}
			for _, v := range nb {
				if !placed[v] {
					score[v] += delta
					if delta > 0 {
						pq.push(gorderItem{v: v, score: score[v]})
					}
				}
			}
		}
	}

	order := make([]graph.VertexID, 0, n)
	win := make([]graph.VertexID, 0, window)
	for len(order) < int(n) {
		// Pop the best current candidate, skipping stale heap entries.
		var u graph.VertexID
		for {
			if len(pq) == 0 {
				// All remaining entries were stale (scores decayed);
				// reseed with any unplaced vertices.
				for v := uint32(0); v < n; v++ {
					if !placed[v] {
						pq.push(gorderItem{v: v, score: score[v]})
					}
				}
			}
			it := pq.pop()
			if placed[it.v] || it.score != score[it.v] {
				continue
			}
			u = it.v
			break
		}
		placed[u] = true
		order = append(order, u)
		if len(win) == window {
			evicted := win[0]
			copy(win, win[1:])
			win = win[:window-1]
			updateFor(evicted, -1)
		}
		win = append(win, u)
		updateFor(u, +1)
	}

	p := make(Permutation, n)
	for newID, old := range order {
		p[old] = uint32(newID)
	}
	return p
}

// GorderThenDBG applies Gorder followed by DBG, the "simple tweak" from
// Sec. V-C of the paper that makes Gorder compatible with GRASP: the result
// retains most of the Gorder ordering while segregating hot vertices in a
// contiguous region.
func GorderThenDBG(g *graph.CSR, window int, src DegreeSource) Permutation {
	pg := Gorder(g, window)
	relabeled := Apply(g, pg)
	pd := DBG(relabeled, src)
	// Compose: old --pg--> mid --pd--> new.
	out := make(Permutation, len(pg))
	for old, mid := range pg {
		out[old] = pd[mid]
	}
	return out
}

type gorderItem struct {
	v     graph.VertexID
	score int32
}

// gorderPQ is a monomorphic max-heap over gorderItem. It reproduces
// container/heap's sift algorithms verbatim (same comparison and swap
// sequence), so heap-array evolution — and therefore the pop order among
// equal scores, which Gorder's output depends on — is bit-identical to
// the previous container/heap-based implementation. Going monomorphic
// removes the interface dispatch on every comparison and the interface{}
// boxing allocation on every push, which together dominated Gorder's
// wall-clock (the "staggering reordering cost" of Fig. 10a is the
// algorithm's work, not the container's overhead).
type gorderPQ []gorderItem

// push appends the item and sifts it up. The sift holds the new item in a
// register and shifts parents down (one write per level instead of a
// swap); the resulting array is identical to container/heap's swap-based
// up().
func (q *gorderPQ) push(it gorderItem) {
	h := append(*q, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].score >= it.score {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = it
	*q = h
}

// pop removes and returns the max item, reproducing container/heap.Pop's
// state evolution (swap root with the last element, sift the new root
// down over the shrunk heap, detach) with the moving element held in a
// register: the same comparisons decide the same path, each visited slot
// receives its larger child, and the mover lands where the swap chain
// would have left it — the live heap prefix is bit-identical, only the
// dead slot beyond the new length (overwritten by the next push) differs.
func (q *gorderPQ) pop() gorderItem {
	h := *q
	last := len(h) - 1
	top := h[0]
	mover := h[last]
	live := h[:last] // reslice so the sift's indexing is provably in-bounds
	i := 0
	for {
		left := 2*i + 1
		if uint(left) >= uint(last) { // also catches int overflow
			break
		}
		j := left
		if right := left + 1; right < last && live[right].score > live[left].score {
			j = right
		}
		if live[j].score <= mover.score {
			break
		}
		live[i] = live[j]
		i = j
	}
	if last > 0 {
		live[i] = mover
	}
	*q = live
	return top
}
