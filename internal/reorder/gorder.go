package reorder

import (
	"grasp/internal/graph"
)

// DefaultGorderWindow is the sliding-window size used by Gorder; the Gorder
// paper (Wei et al., SIGMOD'16) recommends w=5.
const DefaultGorderWindow = 5

// hubCap bounds the expansion of very high out-degree in-neighbors during
// Gorder's score updates. Without it, the greedy pass costs
// sum_u outdeg(u)^2, which is intractable on power-law graphs; the original
// implementation applies comparable hub optimizations. Capping changes the
// approximation slightly but not the algorithm's character — or its
// dominant cost, which is the point of the Fig. 10a experiment.
const hubCap = 256

// Gorder computes a Gorder-style vertex ordering: a greedy sequence that
// repeatedly appends the vertex with the highest locality score with
// respect to a sliding window of the w most recently placed vertices.
// The score of candidate v is the number of (a) edges from window vertices
// to v plus (b) common in-neighbors between v and window vertices — i.e.
// the S(u,v) = S_s(u,v) + S_n(u,v) function of the Gorder paper.
//
// Candidate selection is EXACT: the bucket queue always yields a vertex of
// the current maximum score, and among equal scores the lowest vertex id
// wins — the documented deterministic tie-break (DESIGN.md Sec. 12). The
// lazy-deletion heap this replaces could both churn (~1700 push/pops per
// placed vertex at reproduction scale) and, because decrements never
// re-pushed, occasionally return a non-maximal candidate; the golden
// outputs of Gorder-derived rows were re-blessed for this change, with the
// cross-check suite (gorder_crosscheck_test.go) proving the bucket queue
// agrees with an independent reference implementation of the same spec.
//
// This is the "complex technique with a staggering reordering cost"
// evaluated as Gorder in the paper; it approximates an NP-hard problem by
// comprehensive structural analysis and is orders of magnitude more
// expensive than the skew-aware techniques.
func Gorder(g *graph.CSR, window int) Permutation {
	n := g.NumVertices()
	if n == 0 {
		return Permutation{}
	}
	if window <= 0 {
		window = DefaultGorderWindow
	}

	placed := make([]bool, n)
	q := newVertexBucketQueue(n)

	// updateFor adjusts scores of all unplaced vertices whose score is
	// affected by placing u into the window (delta=+1) or evicting it
	// (delta=-1): u's out-neighbors (sibling term handled via in-neighbor
	// expansion) and out-neighbors of u's in-neighbors.
	updateFor := func(u graph.VertexID, inc bool) {
		for _, v := range g.OutNeighbors(u) {
			if !placed[v] {
				if inc {
					q.increment(v)
				} else {
					q.decrement(v)
				}
			}
		}
		for _, w := range g.InNeighbors(u) {
			nb := g.OutNeighbors(w)
			if len(nb) > hubCap {
				nb = nb[:hubCap]
			}
			for _, v := range nb {
				if !placed[v] {
					if inc {
						q.increment(v)
					} else {
						q.decrement(v)
					}
				}
			}
		}
	}

	order := make([]graph.VertexID, 0, n)
	win := make([]graph.VertexID, 0, window)
	for len(order) < int(n) {
		u := q.popMax()
		placed[u] = true
		order = append(order, u)
		if len(win) == window {
			evicted := win[0]
			copy(win, win[1:])
			win = win[:window-1]
			updateFor(evicted, false)
		}
		win = append(win, u)
		updateFor(u, true)
	}

	p := make(Permutation, n)
	for newID, old := range order {
		p[old] = uint32(newID)
	}
	return p
}

// GorderThenDBG applies Gorder followed by DBG, the "simple tweak" from
// Sec. V-C of the paper that makes Gorder compatible with GRASP: the result
// retains most of the Gorder ordering while segregating hot vertices in a
// contiguous region.
func GorderThenDBG(g *graph.CSR, window int, src DegreeSource) Permutation {
	pg := Gorder(g, window)
	relabeled := Apply(g, pg)
	pd := DBG(relabeled, src)
	// Compose: old --pg--> mid --pd--> new.
	out := make(Permutation, len(pg))
	for old, mid := range pg {
		out[old] = pd[mid]
	}
	return out
}
