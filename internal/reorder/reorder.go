// Package reorder implements the vertex reordering techniques evaluated in
// the paper (Sec. IV-B): Sort, HubSort, DBG (skew-aware, lightweight) and
// Gorder (complex, structure-aware), plus the identity baseline.
//
// A reordering is a Permutation p with p[old] = new. GRASP relies on the
// property, shared by all skew-aware techniques, that after reordering the
// hottest vertices occupy a contiguous region at the beginning of the
// vertex ID space (and hence of the Property Array).
package reorder

import (
	"fmt"
	"sort"
	"time"

	"grasp/internal/graph"
)

// Permutation maps old vertex IDs to new vertex IDs.
type Permutation []graph.VertexID

// Identity returns the identity permutation on n vertices.
func Identity(n uint32) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = uint32(i)
	}
	return p
}

// Inverse returns the inverse permutation (new -> old).
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for old, new := range p {
		inv[new] = uint32(old)
	}
	return inv
}

// Validate checks that p is a bijection on [0, len(p)).
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for old, new := range p {
		if int(new) >= len(p) {
			return fmt.Errorf("reorder: p[%d]=%d out of range", old, new)
		}
		if seen[new] {
			return fmt.Errorf("reorder: duplicate target %d", new)
		}
		seen[new] = true
	}
	return nil
}

// Apply relabels the graph according to p, producing a new CSR in which
// old vertex v is now p[v]. Edge weights are preserved.
func Apply(g *graph.CSR, p Permutation) *graph.CSR {
	n := g.NumVertices()
	edges := make([]graph.Edge, 0, g.NumEdges())
	weighted := g.Weighted()
	for v := uint32(0); v < n; v++ {
		nb := g.OutNeighbors(v)
		var w []int32
		if weighted {
			w = g.OutNeighborWeights(v)
		}
		for i, u := range nb {
			e := graph.Edge{Src: p[v], Dst: p[u]}
			if weighted {
				e.Weight = w[i]
			}
			edges = append(edges, e)
		}
	}
	out, err := graph.FromEdges(n, edges, weighted)
	if err != nil {
		panic(err) // permutation preserves range by construction
	}
	return out
}

// DegreeSource selects which degree drives hotness classification. The
// paper's skew-aware techniques sort by the degree that predicts Property
// Array reuse: out-degree for pull-based computations and in-degree for
// push-based ones. Sum is a robust default for frameworks that switch
// directions (Ligra).
type DegreeSource int

// Degree sources.
const (
	BySum DegreeSource = iota
	ByIn
	ByOut
)

func degreeFunc(g *graph.CSR, src DegreeSource) func(graph.VertexID) uint32 {
	switch src {
	case ByIn:
		return g.InDegree
	case ByOut:
		return g.OutDegree
	default:
		return func(v graph.VertexID) uint32 { return g.InDegree(v) + g.OutDegree(v) }
	}
}

func avgDegree(g *graph.CSR, degree func(graph.VertexID) uint32) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	var total uint64
	for v := uint32(0); v < n; v++ {
		total += uint64(degree(v))
	}
	return float64(total) / float64(n)
}

// Sort reorders vertices by sorting them in descending order of degree
// (ties broken by original ID for determinism). Effective at improving
// spatial locality but maximally destructive to existing graph structure.
func Sort(g *graph.CSR, src DegreeSource) Permutation {
	n := g.NumVertices()
	degree := degreeFunc(g, src)
	order := make([]graph.VertexID, n)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := degree(order[i]), degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	p := make(Permutation, n)
	for newID, old := range order {
		p[old] = uint32(newID)
	}
	return p
}

// HubSort segregates hot vertices (degree >= average) at the start of the
// ID space, sorted in descending order of degree, while preserving the
// relative order of cold vertices [Zhang et al., Big Data'17]. It sorts
// only the hot minority, keeping reordering cost low and cold-vertex
// structure intact.
func HubSort(g *graph.CSR, src DegreeSource) Permutation {
	n := g.NumVertices()
	degree := degreeFunc(g, src)
	avg := avgDegree(g, degree)
	var hot []graph.VertexID
	for v := uint32(0); v < n; v++ {
		if float64(degree(v)) >= avg {
			hot = append(hot, v)
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		di, dj := degree(hot[i]), degree(hot[j])
		if di != dj {
			return di > dj
		}
		return hot[i] < hot[j]
	})
	p := make(Permutation, n)
	for i := range p {
		p[i] = ^uint32(0)
	}
	next := uint32(0)
	for _, v := range hot {
		p[v] = next
		next++
	}
	for v := uint32(0); v < n; v++ {
		if p[v] == ^uint32(0) {
			p[v] = next
			next++
		}
	}
	return p
}

// DBGGroups is the number of degree groups used by DBG. The DBG paper
// (Faldu et al., IISWC'19) uses a small constant number of groups (8).
const DBGGroups = 8

// DBG implements Degree-Based Grouping: vertices are coarsely partitioned
// into DBGGroups groups by degree thresholds that double starting at the
// average degree; within each group the original vertex order is preserved
// (maintaining community structure), and groups are laid out from hottest
// to coldest. No sorting is involved, so the reordering cost is a linear
// scan.
func DBG(g *graph.CSR, src DegreeSource) Permutation {
	n := g.NumVertices()
	degree := degreeFunc(g, src)
	avg := avgDegree(g, degree)
	// Group 0: deg >= avg*2^(DBGGroups-2) ... Group DBGGroups-2: deg >= avg,
	// Group DBGGroups-1: deg < avg (the cold tail).
	groupOf := func(d uint32) int {
		if float64(d) < avg {
			return DBGGroups - 1
		}
		t := avg
		for i := DBGGroups - 2; i > 0; i-- {
			if float64(d) < t*2 {
				return i
			}
			t *= 2
		}
		return 0
	}
	counts := make([]uint32, DBGGroups)
	for v := uint32(0); v < n; v++ {
		counts[groupOf(degree(v))]++
	}
	// Hottest group first; sloppy counting sort preserving in-group order.
	starts := make([]uint32, DBGGroups)
	var acc uint32
	for i := 0; i < DBGGroups; i++ {
		starts[i] = acc
		acc += counts[i]
	}
	p := make(Permutation, n)
	for v := uint32(0); v < n; v++ {
		grp := groupOf(degree(v))
		p[v] = starts[grp]
		starts[grp]++
	}
	return p
}

// Technique names a reordering algorithm for experiment harnesses.
type Technique struct {
	Name string
	Run  func(g *graph.CSR, src DegreeSource) Permutation
}

// Techniques returns the reordering techniques evaluated in Fig. 10 of the
// paper, in its order: Sort, HubSort, DBG, Gorder.
func Techniques() []Technique {
	return []Technique{
		{Name: "Sort", Run: Sort},
		{Name: "HubSort", Run: HubSort},
		{Name: "DBG", Run: DBG},
		{Name: "Gorder", Run: func(g *graph.CSR, src DegreeSource) Permutation {
			return Gorder(g, DefaultGorderWindow)
		}},
	}
}

// ByName returns the named technique ("Sort", "HubSort", "DBG", "Gorder",
// or "Identity"/"none").
func ByName(name string) (Technique, error) {
	if name == "Identity" || name == "none" {
		return Technique{Name: "Identity", Run: func(g *graph.CSR, _ DegreeSource) Permutation {
			return Identity(g.NumVertices())
		}}, nil
	}
	if name == "Gorder+DBG" {
		return Technique{Name: "Gorder+DBG", Run: func(g *graph.CSR, src DegreeSource) Permutation {
			return GorderThenDBG(g, DefaultGorderWindow, src)
		}}, nil
	}
	for _, t := range Techniques() {
		if t.Name == name {
			return t, nil
		}
	}
	return Technique{}, fmt.Errorf("reorder: unknown technique %q", name)
}

// Timed runs a technique and reports the permutation together with the
// wall-clock reordering cost, used by the Fig. 10a experiment to account
// for reordering overhead in end-to-end speed-ups.
func Timed(t Technique, g *graph.CSR, src DegreeSource) (Permutation, time.Duration) {
	start := time.Now()
	p := t.Run(g, src)
	return p, time.Since(start)
}
