package reorder

import (
	"testing"
	"testing/quick"

	"grasp/internal/graph"
)

func TestIdentity(t *testing.T) {
	p := Identity(10)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, v := range p {
		if uint32(i) != v {
			t.Fatalf("identity broken at %d", i)
		}
	}
}

func TestInverse(t *testing.T) {
	g := graph.GenZipf(500, 8, 0.7, 1, false)
	p := Sort(g, BySum)
	inv := p.Inverse()
	for old := range p {
		if inv[p[old]] != uint32(old) {
			t.Fatalf("inverse broken at %d", old)
		}
	}
}

func TestValidateCatchesBadPerms(t *testing.T) {
	bad := Permutation{0, 0, 2} // duplicate
	if bad.Validate() == nil {
		t.Fatal("expected duplicate error")
	}
	bad2 := Permutation{0, 5, 2} // out of range
	if bad2.Validate() == nil {
		t.Fatal("expected range error")
	}
	good := Permutation{2, 0, 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

// checkTechnique verifies that a technique yields a valid permutation and
// that relabeling preserves graph size and degree multiset.
func checkTechnique(t *testing.T, name string, g *graph.CSR, p Permutation) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	rg := Apply(g, p)
	if rg.NumVertices() != g.NumVertices() || rg.NumEdges() != g.NumEdges() {
		t.Fatalf("%s: size changed", name)
	}
	if err := rg.Validate(); err != nil {
		t.Fatalf("%s: relabeled graph invalid: %v", name, err)
	}
	// Degree preserved under relabeling: deg_new(p[v]) == deg_old(v).
	for v := uint32(0); v < g.NumVertices(); v++ {
		if rg.OutDegree(p[v]) != g.OutDegree(v) {
			t.Fatalf("%s: out-degree not preserved at %d", name, v)
		}
		if rg.InDegree(p[v]) != g.InDegree(v) {
			t.Fatalf("%s: in-degree not preserved at %d", name, v)
		}
	}
}

func TestAllTechniquesValid(t *testing.T) {
	g := graph.GenZipf(800, 10, 0.75, 3, true)
	for _, tech := range Techniques() {
		p := tech.Run(g, BySum)
		checkTechnique(t, tech.Name, g, p)
	}
}

func TestSortDescendingDegree(t *testing.T) {
	g := graph.GenZipf(1000, 12, 0.8, 5, false)
	p := Sort(g, BySum)
	rg := Apply(g, p)
	deg := func(v graph.VertexID) uint32 { return rg.InDegree(v) + rg.OutDegree(v) }
	for v := uint32(1); v < rg.NumVertices(); v++ {
		if deg(v-1) < deg(v) {
			t.Fatalf("degrees not descending at %d: %d < %d", v, deg(v-1), deg(v))
		}
	}
}

func TestSortByInAndOut(t *testing.T) {
	g := graph.GenZipf(500, 10, 0.8, 6, false)
	for _, src := range []DegreeSource{ByIn, ByOut} {
		p := Sort(g, src)
		rg := Apply(g, p)
		deg := rg.InDegree
		if src == ByOut {
			deg = rg.OutDegree
		}
		for v := uint32(1); v < rg.NumVertices(); v++ {
			if deg(v-1) < deg(v) {
				t.Fatalf("src=%v: degrees not descending at %d", src, v)
			}
		}
	}
}

func TestHubSortSegregatesHot(t *testing.T) {
	g := graph.GenZipf(1000, 12, 0.8, 5, false)
	p := HubSort(g, BySum)
	checkTechnique(t, "HubSort", g, p)
	rg := Apply(g, p)
	deg := func(v graph.VertexID) uint32 { return rg.InDegree(v) + rg.OutDegree(v) }
	var total uint64
	for v := uint32(0); v < rg.NumVertices(); v++ {
		total += uint64(deg(v))
	}
	avg := float64(total) / float64(rg.NumVertices())
	// All hot vertices must precede all cold vertices.
	seenCold := false
	for v := uint32(0); v < rg.NumVertices(); v++ {
		isHot := float64(deg(v)) >= avg
		if isHot && seenCold {
			t.Fatalf("hot vertex %d appears after a cold vertex", v)
		}
		if !isHot {
			seenCold = true
		}
	}
	// Hot prefix is degree-sorted.
	for v := uint32(1); v < rg.NumVertices(); v++ {
		if float64(deg(v)) >= avg && deg(v-1) < deg(v) {
			t.Fatalf("hot prefix not sorted at %d", v)
		}
	}
}

func TestHubSortPreservesColdOrder(t *testing.T) {
	g := graph.GenZipf(1000, 12, 0.8, 5, false)
	p := HubSort(g, BySum)
	deg := func(v graph.VertexID) uint32 { return g.InDegree(v) + g.OutDegree(v) }
	var total uint64
	for v := uint32(0); v < g.NumVertices(); v++ {
		total += uint64(deg(v))
	}
	avg := float64(total) / float64(g.NumVertices())
	lastNew := int64(-1)
	for v := uint32(0); v < g.NumVertices(); v++ {
		if float64(deg(v)) < avg {
			if int64(p[v]) < lastNew {
				t.Fatalf("cold relative order broken at %d", v)
			}
			lastNew = int64(p[v])
		}
	}
}

func TestDBGGroupsMonotonic(t *testing.T) {
	g := graph.GenZipf(2000, 12, 0.75, 7, false)
	p := DBG(g, BySum)
	checkTechnique(t, "DBG", g, p)
	rg := Apply(g, p)
	deg := func(v graph.VertexID) uint32 { return rg.InDegree(v) + rg.OutDegree(v) }
	var total uint64
	for v := uint32(0); v < rg.NumVertices(); v++ {
		total += uint64(deg(v))
	}
	avg := float64(total) / float64(rg.NumVertices())
	// Once we enter the cold tail (deg < avg), no hot vertex may follow.
	seenCold := false
	for v := uint32(0); v < rg.NumVertices(); v++ {
		if float64(deg(v)) < avg {
			seenCold = true
		} else if seenCold {
			t.Fatalf("hot vertex at %d after cold tail began", v)
		}
	}
}

func TestDBGPreservesOrderWithinColdGroup(t *testing.T) {
	g := graph.GenZipf(1000, 12, 0.8, 9, false)
	p := DBG(g, BySum)
	deg := func(v graph.VertexID) uint32 { return g.InDegree(v) + g.OutDegree(v) }
	var total uint64
	for v := uint32(0); v < g.NumVertices(); v++ {
		total += uint64(deg(v))
	}
	avg := float64(total) / float64(g.NumVertices())
	lastNew := int64(-1)
	for v := uint32(0); v < g.NumVertices(); v++ {
		if float64(deg(v)) < avg {
			if int64(p[v]) < lastNew {
				t.Fatalf("cold in-group order broken at %d", v)
			}
			lastNew = int64(p[v])
		}
	}
}

func TestGorderSmallGraph(t *testing.T) {
	g := graph.GenGrid(8, 8)
	p := Gorder(g, DefaultGorderWindow)
	checkTechnique(t, "Gorder", g, p)
}

func TestGorderPlacesNeighborsNearby(t *testing.T) {
	// On a path graph, Gorder should essentially follow the path: the
	// average |p[u]-p[v]| over edges must be far below random (~n/3).
	g := graph.GenPath(200)
	p := Gorder(g, DefaultGorderWindow)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var dist, count float64
	for v := uint32(0); v < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(v) {
			d := int64(p[v]) - int64(p[u])
			if d < 0 {
				d = -d
			}
			dist += float64(d)
			count++
		}
	}
	if avg := dist / count; avg > 20 {
		t.Fatalf("gorder average edge distance %.1f on a path, want small", avg)
	}
}

func TestGorderThenDBG(t *testing.T) {
	g := graph.GenZipf(600, 10, 0.8, 11, false)
	p := GorderThenDBG(g, DefaultGorderWindow, BySum)
	checkTechnique(t, "Gorder+DBG", g, p)
	// Hot vertices must be segregated at the front (the DBG property).
	rg := Apply(g, p)
	deg := func(v graph.VertexID) uint32 { return rg.InDegree(v) + rg.OutDegree(v) }
	var total uint64
	for v := uint32(0); v < rg.NumVertices(); v++ {
		total += uint64(deg(v))
	}
	avg := float64(total) / float64(rg.NumVertices())
	seenCold := false
	for v := uint32(0); v < rg.NumVertices(); v++ {
		if float64(deg(v)) < avg {
			seenCold = true
		} else if seenCold {
			t.Fatalf("hot vertex after cold tail at %d", v)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Sort", "HubSort", "DBG", "Gorder", "Identity", "none"} {
		tech, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tech.Run == nil {
			t.Fatalf("%s: nil Run", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTimedReportsDuration(t *testing.T) {
	g := graph.GenZipf(500, 8, 0.8, 13, false)
	tech, _ := ByName("DBG")
	p, d := Timed(tech, g, BySum)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
}

func TestApplyPreservesWeights(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1, Weight: 42}, {Src: 1, Dst: 2, Weight: 7}}
	g, err := graph.FromEdges(3, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	p := Permutation{2, 1, 0} // reverse
	rg := Apply(g, p)
	// Old edge 0->1 (w 42) becomes 2->1.
	nb, w := rg.OutNeighbors(2), rg.OutNeighborWeights(2)
	if len(nb) != 1 || nb[0] != 1 || w[0] != 42 {
		t.Fatalf("weight lost: %v %v", nb, w)
	}
}

// Property: every technique produces a valid permutation on random graphs.
func TestTechniquesQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := uint32(nRaw%100) + 5
		g := graph.GenUniform(n, 4, seed, false)
		for _, tech := range Techniques() {
			if tech.Name == "Gorder" && n > 60 {
				continue // keep quick-check fast
			}
			p := tech.Run(g, BySum)
			if p.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSortStableTieBreak(t *testing.T) {
	// A cycle has all-equal degrees; Sort must fall back to ID order,
	// i.e. produce the identity.
	g := graph.GenCycle(50)
	p := Sort(g, BySum)
	for i, v := range p {
		if uint32(i) != v {
			t.Fatalf("tie-break not by ID at %d -> %d", i, v)
		}
	}
}
