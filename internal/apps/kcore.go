package apps

import (
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

// KCore computes the k-core decomposition (the coreness of every vertex)
// by iterative peeling, as in Ligra's KCore example: treating edges as
// undirected, for k = 1, 2, ... repeatedly remove every remaining vertex
// whose residual degree is below k; a vertex removed during phase k has
// coreness k-1. The removal wave propagates through EdgeMap (out-edges of
// the peeled frontier), with a symmetric in-edge pass completing the
// undirected view exactly as CC does. An extension workload beyond the
// paper's five applications.
type KCore struct {
	fg *ligra.Graph

	// Coreness[v] is the largest k such that v belongs to the k-core.
	Coreness []uint32
	// Degree is the residual undirected degree during peeling (in+out,
	// counting parallel edges).
	Degree []int64

	degArr  *mem.Array
	coreArr *mem.Array
}

var (
	pcKCDegRd  = mem.PC("kcore.read.degree")
	pcKCDegWr  = mem.PC("kcore.write.degree")
	pcKCCoreWr = mem.PC("kcore.write.coreness")
)

// NewKCore creates a k-core instance.
func NewKCore(fg *ligra.Graph) *KCore {
	n := fg.C.NumVertices()
	k := &KCore{fg: fg,
		Coreness: make([]uint32, n), Degree: make([]int64, n)}
	k.degArr = fg.RegisterProperty("kcore.degree", 4)
	k.coreArr = fg.RegisterProperty("kcore.coreness", 4)
	return k
}

// Name implements App.
func (c *KCore) Name() string { return "KCore" }

// ABRArrays implements App.
func (c *KCore) ABRArrays() []*mem.Array { return []*mem.Array{c.degArr, c.coreArr} }

// dec removes one undirected edge endpoint from v's residual degree and
// reports whether v just fell below the current threshold k (the unique
// transition to k-1, so each vertex joins the peel wave exactly once).
func (c *KCore) dec(t *ligra.Tracer, alive []bool, v graph.VertexID, k uint32) bool {
	t.Read(c.degArr, uint64(v), pcKCDegRd)
	if !alive[v] {
		return false
	}
	c.Degree[v]--
	t.Write(c.degArr, uint64(v), pcKCDegWr)
	return c.Degree[v] == int64(k)-1
}

// Run implements App.
func (c *KCore) Run(t *ligra.Tracer) {
	g := c.fg.C
	n := g.NumVertices()
	alive := make([]bool, n)
	for v := uint32(0); v < n; v++ {
		c.Degree[v] = int64(g.OutDegree(v)) + int64(g.InDegree(v))
		c.Coreness[v] = 0
		alive[v] = true
	}
	remaining := n
	for k := uint32(1); remaining > 0; k++ {
		// Collect this phase's initial peel set: alive vertices whose
		// residual degree already sits below k.
		var peel []graph.VertexID
		for v := uint32(0); v < n; v++ {
			if !alive[v] {
				continue
			}
			t.Read(c.degArr, uint64(v), pcKCDegRd)
			if c.Degree[v] < int64(k) {
				peel = append(peel, v)
			}
		}
		for len(peel) > 0 {
			for _, v := range peel {
				alive[v] = false
				c.Coreness[v] = k - 1
				t.Write(c.coreArr, uint64(v), pcKCCoreWr)
				remaining--
			}
			front := ligra.NewFrontierSparse(n, peel)
			// Out-edges of the peeled wave (v -> u): EdgeMap decrements u,
			// in push or pull mode by frontier density.
			cond := func(v graph.VertexID) bool {
				t.Read(c.degArr, uint64(v), pcKCDegRd)
				return alive[v]
			}
			pull := func(dst, src graph.VertexID, _ int32) bool {
				return c.dec(t, alive, dst, k)
			}
			push := func(src, dst graph.VertexID, _ int32) bool {
				return c.dec(t, alive, dst, k)
			}
			out, _ := c.fg.EdgeMap(t, front, pull, push, ligra.EdgeMapOpts{Cond: cond})
			next := out.Vertices()
			// In-edges of the peeled wave (u -> v): the symmetric pass
			// completing the undirected degree update.
			for _, v := range peel {
				t.Read(c.fg.VtxIn, uint64(v), pcKCDegRd)
				t.Read(c.fg.VtxIn, uint64(v)+1, pcKCDegRd)
				lo, hi := g.InIndex[v], g.InIndex[v+1]
				for e := lo; e < hi; e++ {
					t.Read(c.fg.EdgIn, e, pcKCDegRd)
					if u := g.InEdges[e]; c.dec(t, alive, u, k) {
						next = append(next, u)
					}
				}
			}
			peel = next
		}
	}
}
