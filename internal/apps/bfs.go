package apps

import (
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

// BFS is direction-optimizing breadth-first search, the canonical
// vertex-centric kernel (not part of the paper's five evaluated
// applications, but the building block of BC and Radii; included as an
// extension workload for the public API). The per-vertex Property Array
// holds the parent, with the level kept alongside for the fused activity
// check.
type BFS struct {
	fg   *ligra.Graph
	root graph.VertexID

	Parent []int64
	Level  []int32

	parentArr *mem.Array
	levelArr  *mem.Array
}

var (
	pcBFSParentRd = mem.PC("bfs.read.parent")
	pcBFSParentWr = mem.PC("bfs.write.parent")
	pcBFSLevel    = mem.PC("bfs.level")
)

// NewBFS creates a BFS instance rooted at root.
func NewBFS(fg *ligra.Graph, root graph.VertexID) *BFS {
	n := fg.C.NumVertices()
	b := &BFS{fg: fg, root: root,
		Parent: make([]int64, n), Level: make([]int32, n)}
	b.parentArr = fg.RegisterProperty("bfs.parent", 8)
	b.levelArr = fg.RegisterProperty("bfs.level", 8)
	return b
}

// Name implements App.
func (b *BFS) Name() string { return "BFS" }

// ABRArrays implements App.
func (b *BFS) ABRArrays() []*mem.Array { return []*mem.Array{b.parentArr, b.levelArr} }

// Run implements App.
func (b *BFS) Run(t *ligra.Tracer) {
	n := b.fg.C.NumVertices()
	for v := uint32(0); v < n; v++ {
		b.Parent[v] = -1
		b.Level[v] = -1
	}
	b.Parent[b.root] = int64(b.root)
	b.Level[b.root] = 0
	frontier := ligra.NewFrontierSparse(n, []graph.VertexID{b.root})
	for depth := int32(1); !frontier.IsEmpty(); depth++ {
		depth := depth
		cond := func(v graph.VertexID) bool {
			t.Read(b.parentArr, uint64(v), pcBFSParentRd)
			return b.Parent[v] < 0
		}
		srcActive := func(src graph.VertexID) bool {
			t.Read(b.levelArr, uint64(src), pcBFSLevel)
			return b.Level[src] == depth-1
		}
		pull := func(dst, src graph.VertexID, _ int32) bool {
			// First active in-neighbor becomes the parent; EarlyExit stops
			// the scan (the BFS "bottom-up" optimization).
			t.Write(b.parentArr, uint64(dst), pcBFSParentWr)
			b.Parent[dst] = int64(src)
			return true
		}
		push := func(src, dst graph.VertexID, _ int32) bool {
			t.Read(b.parentArr, uint64(dst), pcBFSParentRd)
			if b.Parent[dst] >= 0 {
				return false
			}
			t.Write(b.parentArr, uint64(dst), pcBFSParentWr)
			b.Parent[dst] = int64(src)
			b.Level[dst] = depth
			t.Write(b.levelArr, uint64(dst), pcBFSLevel)
			return true
		}
		next, usedPull := b.fg.EdgeMap(t, frontier, pull, push,
			ligra.EdgeMapOpts{Cond: cond, SourceActive: srcActive, EarlyExit: true})
		if usedPull {
			ligra.VertexMap(next, func(v graph.VertexID) {
				t.Write(b.levelArr, uint64(v), pcBFSLevel)
				b.Level[v] = depth
			})
		}
		frontier = next
	}
}
