package apps

import (
	"testing"

	"grasp/internal/graph"
	"grasp/internal/ligra"
)

// refCoreness is an independent peeling implementation with the same
// multigraph semantics as KCore: the undirected degree of v counts every
// incident directed-edge endpoint (a self-loop contributes 2), and
// removing v decrements each alive neighbor once per connecting edge.
func refCoreness(g *graph.CSR) []uint32 {
	n := g.NumVertices()
	deg := make([]int64, n)
	for v := uint32(0); v < n; v++ {
		deg[v] = int64(g.OutDegree(v)) + int64(g.InDegree(v))
	}
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	core := make([]uint32, n)
	remaining := n
	for k := uint32(1); remaining > 0; k++ {
		for {
			removed := false
			for v := uint32(0); v < n; v++ {
				if !alive[v] || deg[v] >= int64(k) {
					continue
				}
				alive[v] = false
				core[v] = k - 1
				remaining--
				removed = true
				for _, u := range g.OutNeighbors(v) {
					if alive[u] {
						deg[u]--
					}
				}
				for _, u := range g.InNeighbors(v) {
					if alive[u] {
						deg[u]--
					}
				}
			}
			if !removed {
				break
			}
		}
	}
	return core
}

// refTriangles brute-force counts triangles in the undirected simple graph
// underlying g: unordered triples {u, v, w} with all three edges present.
func refTriangles(g *graph.CSR) uint64 {
	n := g.NumVertices()
	adj := make([]map[uint32]bool, n)
	for v := uint32(0); v < n; v++ {
		adj[v] = make(map[uint32]bool)
	}
	addEdge := func(a, b uint32) {
		if a != b {
			adj[a][b] = true
			adj[b][a] = true
		}
	}
	for v := uint32(0); v < n; v++ {
		for _, u := range g.OutNeighbors(v) {
			addEdge(v, u)
		}
	}
	var total uint64
	for u := uint32(0); u < n; u++ {
		for v := range adj[u] {
			if v <= u {
				continue
			}
			for w := range adj[v] {
				if w <= v {
					continue
				}
				if adj[u][w] {
					total++
				}
			}
		}
	}
	return total
}

func TestKCoreMatchesReferencePeeling(t *testing.T) {
	for _, g := range []*graph.CSR{
		graph.GenZipf(300, 6, 0.9, 41, false),
		graph.GenRMATDefault(8, 5, 43, false),
		graph.GenUniform(200, 4, 45, false),
		graph.GenGrid(8, 9),
		graph.GenStar(30),
	} {
		kc := NewKCore(ligra.NewGraph(g))
		kc.Run(nativeTracer())
		want := refCoreness(g)
		for v := range want {
			if kc.Coreness[v] != want[v] {
				t.Fatalf("%v: coreness[%d] = %d, want %d", g, v, kc.Coreness[v], want[v])
			}
		}
	}
}

func TestKCoreOnCompleteGraph(t *testing.T) {
	// K5 as a directed complete graph: undirected degree 8, coreness 8 for
	// every vertex under the multigraph degree definition (each unordered
	// pair contributes two directed edges).
	g := graph.GenComplete(5)
	kc := NewKCore(ligra.NewGraph(g))
	kc.Run(nativeTracer())
	want := refCoreness(g)
	for v := range want {
		if kc.Coreness[v] != want[v] {
			t.Fatalf("coreness[%d] = %d, want %d", v, kc.Coreness[v], want[v])
		}
	}
}

func TestTCCountsKnownGraphs(t *testing.T) {
	// A triangle plus a pendant edge: exactly one triangle.
	tri, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTC(ligra.NewGraph(tri))
	tc.Run(nativeTracer())
	if tc.Total != 1 {
		t.Fatalf("triangle graph: Total = %d, want 1", tc.Total)
	}

	// Complete graph on 6 vertices: C(6,3) = 20 triangles.
	tc = NewTC(ligra.NewGraph(graph.GenComplete(6)))
	tc.Run(nativeTracer())
	if tc.Total != 20 {
		t.Fatalf("K6: Total = %d, want 20", tc.Total)
	}

	// A path has none.
	tc = NewTC(ligra.NewGraph(graph.GenPath(10)))
	tc.Run(nativeTracer())
	if tc.Total != 0 {
		t.Fatalf("path: Total = %d, want 0", tc.Total)
	}
}

func TestTCMatchesBruteForce(t *testing.T) {
	for _, g := range []*graph.CSR{
		graph.GenZipf(150, 6, 1.0, 51, false), // skewed, parallel edges, self-loops
		graph.GenRMATDefault(7, 4, 53, false),
		graph.GenUniform(120, 5, 55, false),
		graph.GenGrid(6, 7),
	} {
		tc := NewTC(ligra.NewGraph(g))
		tc.Run(nativeTracer())
		if want := refTriangles(g); tc.Total != want {
			t.Fatalf("%v: Total = %d, want %d", g, tc.Total, want)
		}
		var sum uint64
		for _, c := range tc.Count {
			sum += c
		}
		if sum != tc.Total {
			t.Fatalf("per-vertex counts sum to %d, Total = %d", sum, tc.Total)
		}
	}
}

// Repeated Run calls must be idempotent (sim.Run constructs fresh apps, but
// the API allows reuse).
func TestTCRunIdempotent(t *testing.T) {
	g := graph.GenRMATDefault(6, 4, 57, false)
	tc := NewTC(ligra.NewGraph(g))
	tc.Run(nativeTracer())
	first := tc.Total
	tc.Run(nativeTracer())
	if tc.Total != first {
		t.Fatalf("second run Total = %d, want %d", tc.Total, first)
	}
}
