package apps

import (
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

// PageRank-Delta constants.
const (
	DefaultPRDIterations = 4
	// PRDThreshold: a vertex is active next iteration only if it has
	// accumulated enough change in its score (relative to 1/n).
	PRDThreshold = 1e-2
)

// PRD is PageRank-Delta, the faster PageRank variant in which only
// vertices whose rank changed materially stay active. Following the
// paper's methodology we use the pull-push (direction-switching) variant,
// which is the faster one once Property Arrays are merged (Sec. IV-A).
//
// Property state per vertex: rank and delta. Merged layout: one array of
// 16-byte {rank, delta} elements; split: two 8-byte arrays.
type PRD struct {
	fg     *ligra.Graph
	iters  int
	layout Layout

	Rank   []float64
	delta  []float64
	ndelta []float64

	merged   *mem.Array
	rankArr  *mem.Array
	deltaArr *mem.Array
}

var (
	pcPRDDelta = mem.PC("prd.read.delta")
	pcPRDAccum = mem.PC("prd.write.accum")
	pcPRDApply = mem.PC("prd.vmap.apply")
)

// NewPRD creates a PageRank-Delta instance.
func NewPRD(fg *ligra.Graph, iters int, layout Layout) *PRD {
	n := fg.C.NumVertices()
	p := &PRD{fg: fg, iters: iters, layout: layout,
		Rank: make([]float64, n), delta: make([]float64, n), ndelta: make([]float64, n)}
	if layout == LayoutMerged {
		p.merged = fg.RegisterProperty("prd.prop", 16)
	} else {
		p.rankArr = fg.RegisterProperty("prd.rank", 8)
		p.deltaArr = fg.RegisterProperty("prd.delta", 8)
	}
	return p
}

// Name implements App.
func (p *PRD) Name() string { return "PRD" }

// ABRArrays implements App.
func (p *PRD) ABRArrays() []*mem.Array {
	if p.layout == LayoutMerged {
		return []*mem.Array{p.merged}
	}
	return []*mem.Array{p.rankArr, p.deltaArr}
}

func (p *PRD) readDelta(t *ligra.Tracer, v graph.VertexID) {
	if p.layout == LayoutMerged {
		t.ReadOff(p.merged, uint64(v), 8, pcPRDDelta)
	} else {
		t.Read(p.deltaArr, uint64(v), pcPRDDelta)
	}
}

// Run implements App.
func (p *PRD) Run(t *ligra.Tracer) {
	c := p.fg.C
	n := c.NumVertices()
	inv := 1 / float64(n)
	// PRD tracks the change between successive PR iterations:
	// rank_0 = 1/n everywhere, delta_1 = (1-d)/n + d*A*rank_0 - rank_0,
	// and delta_{k+1} = d*A*delta_k thereafter, so with threshold 0 the
	// accumulated rank equals PR's k-th iterate exactly.
	for v := uint32(0); v < n; v++ {
		p.Rank[v] = inv
		p.delta[v] = inv // mass propagated in the first iteration
	}
	frontier := ligra.NewFrontierAll(n)
	// Native mirror of frontier membership for the fused activity check.
	inFrontier := make([]bool, n)
	for v := range inFrontier {
		inFrontier[v] = true
	}
	// Per-iteration scaled contribution: delta[s]/outdeg(s), precomputed
	// like PR's contrib (kept in the delta field in place).
	scaled := make([]float64, n)
	for it := 0; it < p.iters && !frontier.IsEmpty(); it++ {
		ligra.VertexMap(frontier, func(v graph.VertexID) {
			t.Read(p.fg.VtxOut, uint64(v), pcPRDApply)
			t.Read(p.fg.VtxOut, uint64(v)+1, pcPRDApply)
			p.readDelta(t, v)
			if d := c.OutDegree(v); d > 0 {
				scaled[v] = p.delta[v] / float64(d)
			} else {
				scaled[v] = 0
			}
		})
		// Fused activity check: frontier membership is exactly
		// |delta| > threshold, determined by the delta read itself.
		srcActive := func(src graph.VertexID) bool {
			p.readDelta(t, src)
			return inFrontier[src]
		}
		// Pull from active in-neighbors; accumulate new delta (the delta
		// value was loaded by the activity check).
		pull := func(dst, src graph.VertexID, _ int32) bool {
			p.ndelta[dst] += scaled[src]
			return false
		}
		writeAccum := func(dst graph.VertexID) {
			if p.layout == LayoutMerged {
				t.WriteOff(p.merged, uint64(dst), 8, pcPRDAccum)
			} else {
				t.Write(p.deltaArr, uint64(dst), pcPRDAccum)
			}
		}
		push := func(src, dst graph.VertexID, _ int32) bool {
			p.readDelta(t, dst) // read-modify-write of the accumulator
			first := p.ndelta[dst] == 0
			p.ndelta[dst] += scaled[src]
			writeAccum(dst)
			return first && p.ndelta[dst] != 0
		}
		p.fg.EdgeMap(t, frontier, pull, push, ligra.EdgeMapOpts{
			NoOutput:     true,
			PostDst:      writeAccum,
			SourceActive: srcActive,
		})
		// Apply: rank += damped delta; activate vertices with significant
		// change.
		var next []graph.VertexID
		for v := uint32(0); v < n; v++ {
			nd := Damping * p.ndelta[v]
			if it == 0 {
				nd += (1-Damping)*inv - inv
			}
			if p.layout == LayoutMerged {
				t.ReadOff(p.merged, uint64(v), 0, pcPRDApply)
				t.WriteOff(p.merged, uint64(v), 0, pcPRDApply)
				t.WriteOff(p.merged, uint64(v), 8, pcPRDApply)
			} else {
				t.Read(p.rankArr, uint64(v), pcPRDApply)
				t.Write(p.rankArr, uint64(v), pcPRDApply)
				t.Write(p.deltaArr, uint64(v), pcPRDApply)
			}
			p.Rank[v] += nd
			p.delta[v] = nd
			p.ndelta[v] = 0
			inFrontier[v] = absf(nd) > PRDThreshold*inv
			if inFrontier[v] {
				next = append(next, v)
			}
		}
		frontier = ligra.NewFrontierSparse(n, next)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
