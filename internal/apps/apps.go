// Package apps implements the five graph-analytic applications of the
// paper's evaluation (Table III) on top of the ligra framework: Betweenness
// Centrality (BC), Single-Source Shortest Paths (SSSP, Bellman-Ford),
// PageRank (PR), PageRank-Delta (PRD) and Radii Estimation (Radii).
//
// Every application can run natively (nil-sink tracer) for correctness
// testing, or emit its full logical memory-access stream for the cache
// simulation. PR, PRD and SSSP implement both the merged and split
// Property-Array layouts of the paper's Table IV data-structure
// optimization; BC and Radii have no merging opportunity.
package apps

import (
	"fmt"

	"grasp/internal/ligra"
	"grasp/internal/mem"
)

// Layout selects the Property-Array organization for apps with a merging
// opportunity (Table IV).
type Layout int

// Layouts.
const (
	// LayoutMerged packs the per-vertex fields of multiple Property Arrays
	// into one array of wider elements (the paper's optimization, used as
	// the stronger baseline).
	LayoutMerged Layout = iota
	// LayoutSplit keeps one array per field (original Ligra layout).
	LayoutSplit
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	if l == LayoutMerged {
		return "merged"
	}
	return "split"
}

// App is a traceable graph application.
type App interface {
	// Name returns the paper's short name: BC, SSSP, PR, PRD or Radii.
	Name() string
	// Run executes the algorithm, emitting accesses through t.
	Run(t *ligra.Tracer)
	// ABRArrays returns the Property Arrays whose bounds the framework
	// programs into GRASP's ABRs (at most two per the paper, Sec. IV-C).
	ABRArrays() []*mem.Array
}

// New constructs an application by name over a prepared graph (the
// registry behind every `-app` flag). Weighted graphs are required by
// SSSP only; layout matters only for the apps with a merging opportunity.
func New(name string, fg *ligra.Graph, layout Layout) (App, error) {
	switch name {
	case "BC":
		return NewBC(fg, 0), nil
	case "SSSP":
		return NewSSSP(fg, 0, layout), nil
	case "PR":
		return NewPR(fg, DefaultPRIterations, layout), nil
	case "PRD":
		return NewPRD(fg, DefaultPRDIterations, layout), nil
	case "Radii":
		return NewRadii(fg, DefaultRadiiSamples), nil
	case "BFS":
		return NewBFS(fg, 0), nil
	case "CC":
		return NewCC(fg), nil
	case "KCore":
		return NewKCore(fg), nil
	case "TC":
		return NewTC(fg), nil
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// Names returns the evaluated application names in the paper's order
// (Table III).
func Names() []string { return []string{"BC", "SSSP", "PR", "PRD", "Radii"} }

// ExtendedNames additionally includes the extension workloads built on the
// same framework (BFS, CC, KCore, TC) that are not part of the paper's
// evaluation.
func ExtendedNames() []string { return append(Names(), "BFS", "CC", "KCore", "TC") }
