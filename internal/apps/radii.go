package apps

import (
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

// DefaultRadiiSamples is the number of simultaneous BFS sources (one bit
// each in a 64-bit visited word), as in Ligra's Radii from [Magnien et al.].
const DefaultRadiiSamples = 64

// Radii estimates the radius (eccentricity) of every vertex by running
// DefaultRadiiSamples parallel BFS traversals encoded as 64-bit bitmasks:
// Visited[v] has bit k set when BFS k has reached v. Each iteration pulls
// neighbor masks: NextVisited[d] |= Visited[s]; a vertex whose mask grew
// updates its radius estimate and stays active.
//
// Property Arrays: Visited and NextVisited (the two ABR-instrumented
// arrays); Radii itself is a third, sequentially-updated property array.
type Radii struct {
	fg      *ligra.Graph
	samples int

	Radii   []int32
	visited []uint64
	nextVis []uint64

	visArr  *mem.Array
	nextArr *mem.Array
	radArr  *mem.Array
}

var (
	pcRadiiVisRd  = mem.PC("radii.read.visited")
	pcRadiiNextRd = mem.PC("radii.read.next")
	pcRadiiNextWr = mem.PC("radii.write.next")
	pcRadiiUpd    = mem.PC("radii.vmap.update")
)

// NewRadii creates a Radii instance.
func NewRadii(fg *ligra.Graph, samples int) *Radii {
	n := fg.C.NumVertices()
	if samples > 64 {
		samples = 64
	}
	r := &Radii{fg: fg, samples: samples,
		Radii: make([]int32, n), visited: make([]uint64, n), nextVis: make([]uint64, n)}
	r.visArr = fg.RegisterProperty("radii.visited", 8)
	r.nextArr = fg.RegisterProperty("radii.next", 8)
	r.radArr = fg.RegisterProperty("radii.radii", 8)
	return r
}

// Name implements App.
func (r *Radii) Name() string { return "Radii" }

// ABRArrays implements App.
func (r *Radii) ABRArrays() []*mem.Array { return []*mem.Array{r.visArr, r.nextArr} }

// Run implements App.
func (r *Radii) Run(t *ligra.Tracer) {
	c := r.fg.C
	n := c.NumVertices()
	for v := uint32(0); v < n; v++ {
		r.Radii[v] = -1
		r.visited[v] = 0
		r.nextVis[v] = 0
	}
	// Sample sources: spread deterministically over the vertex space.
	var sources []graph.VertexID
	step := n / uint32(r.samples)
	if step == 0 {
		step = 1
	}
	for i := 0; i < r.samples && uint32(i)*step < n; i++ {
		v := uint32(i) * step
		r.visited[v] |= 1 << uint(i)
		r.nextVis[v] = r.visited[v]
		r.Radii[v] = 0
		sources = append(sources, v)
	}
	frontier := ligra.NewFrontierSparse(n, sources)
	// Native frontier mirror: activity is fused into the visited-mask
	// read (a vertex is active iff its mask grew last round, which the
	// mask layout encodes alongside the bits).
	inFrontier := make([]bool, n)
	for _, v := range sources {
		inFrontier[v] = true
	}
	for round := int32(1); !frontier.IsEmpty(); round++ {
		srcActive := func(src graph.VertexID) bool {
			t.Read(r.visArr, uint64(src), pcRadiiVisRd)
			return inFrontier[src]
		}
		pull := func(dst, src graph.VertexID, _ int32) bool {
			t.Read(r.nextArr, uint64(dst), pcRadiiNextRd)
			old := r.nextVis[dst]
			merged := old | r.visited[src]
			if merged == old {
				return false
			}
			r.nextVis[dst] = merged
			t.Write(r.nextArr, uint64(dst), pcRadiiNextWr)
			return true
		}
		push := func(src, dst graph.VertexID, _ int32) bool {
			t.Read(r.visArr, uint64(src), pcRadiiVisRd)
			t.Read(r.nextArr, uint64(dst), pcRadiiNextRd)
			old := r.nextVis[dst]
			merged := old | r.visited[src]
			if merged == old {
				return false
			}
			first := old == r.visited[dst] // first growth this round
			r.nextVis[dst] = merged
			t.Write(r.nextArr, uint64(dst), pcRadiiNextWr)
			return first
		}
		next, _ := r.fg.EdgeMap(t, frontier, pull, push,
			ligra.EdgeMapOpts{SourceActive: srcActive})
		for _, v := range frontier.Vertices() {
			inFrontier[v] = false
		}
		// Commit: radii of grown vertices; Visited <- NextVisited.
		ligra.VertexMap(next, func(v graph.VertexID) {
			t.Read(r.visArr, uint64(v), pcRadiiUpd)
			t.Read(r.nextArr, uint64(v), pcRadiiUpd)
			t.Write(r.visArr, uint64(v), pcRadiiUpd)
			t.Write(r.radArr, uint64(v), pcRadiiUpd)
			r.visited[v] = r.nextVis[v]
			r.Radii[v] = round
			inFrontier[v] = true
		})
		frontier = next
	}
}
