package apps

import (
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

// CC computes connected components (treating edges as undirected) by
// label propagation, as in Ligra's Components: every vertex starts with
// its own ID as label and repeatedly adopts the minimum label among its
// neighbors. An extension workload beyond the paper's five applications.
type CC struct {
	fg *ligra.Graph

	Label []uint32
	next  []uint32

	labelArr *mem.Array

	// MaxRounds bounds propagation (diameter-bounded in practice).
	MaxRounds int
}

var (
	pcCCLabelRd = mem.PC("cc.read.label")
	pcCCLabelWr = mem.PC("cc.write.label")
)

// NewCC creates a connected-components instance.
func NewCC(fg *ligra.Graph) *CC {
	n := fg.C.NumVertices()
	c := &CC{fg: fg, Label: make([]uint32, n), next: make([]uint32, n), MaxRounds: int(n)}
	c.labelArr = fg.RegisterProperty("cc.label", 8)
	return c
}

// Name implements App.
func (c *CC) Name() string { return "CC" }

// ABRArrays implements App.
func (c *CC) ABRArrays() []*mem.Array { return []*mem.Array{c.labelArr} }

// Run implements App.
func (c *CC) Run(t *ligra.Tracer) {
	g := c.fg.C
	n := g.NumVertices()
	for v := uint32(0); v < n; v++ {
		c.Label[v] = v
		c.next[v] = v
	}
	active := make([]bool, n)
	for v := range active {
		active[v] = true
	}
	frontier := ligra.NewFrontierAll(n)
	for round := 0; round < c.MaxRounds && !frontier.IsEmpty(); round++ {
		srcActive := func(src graph.VertexID) bool {
			t.Read(c.labelArr, uint64(src), pcCCLabelRd)
			return active[src]
		}
		// Pull: adopt the minimum label among in-neighbors (the label was
		// loaded by the activity check); treating the graph as undirected
		// needs the out-direction too, handled by a second pass below.
		pull := func(dst, src graph.VertexID, _ int32) bool {
			if c.Label[src] < c.next[dst] {
				c.next[dst] = c.Label[src]
				t.Write(c.labelArr, uint64(dst), pcCCLabelWr)
				return true
			}
			return false
		}
		push := func(src, dst graph.VertexID, _ int32) bool {
			// Undirected label exchange: the edge propagates the minimum
			// label in both directions (pull mode gets the reverse
			// direction from the symmetric out-edge pass below).
			t.Read(c.labelArr, uint64(dst), pcCCLabelRd)
			changed := false
			if c.Label[src] < c.next[dst] {
				changed = c.next[dst] == c.Label[dst]
				c.next[dst] = c.Label[src]
				t.Write(c.labelArr, uint64(dst), pcCCLabelWr)
			}
			if c.Label[dst] < c.next[src] {
				c.next[src] = c.Label[dst]
				t.Write(c.labelArr, uint64(src), pcCCLabelWr)
			}
			return changed
		}
		c.fg.EdgeMap(t, frontier, pull, push, ligra.EdgeMapOpts{
			NoOutput:     true,
			SourceActive: srcActive,
		})
		// Symmetric pass: connected components treats edges as
		// undirected, so every edge incident to an active vertex
		// exchanges the minimum label in both directions, across both
		// adjacency views (the EdgeMap above covers the src->dst
		// direction; this covers the rest).
		exchange := func(v, u graph.VertexID) {
			t.Read(c.labelArr, uint64(u), pcCCLabelRd)
			if c.Label[v] < c.next[u] {
				c.next[u] = c.Label[v]
				t.Write(c.labelArr, uint64(u), pcCCLabelWr)
			}
			if c.Label[u] < c.next[v] {
				c.next[v] = c.Label[u]
				t.Write(c.labelArr, uint64(v), pcCCLabelWr)
			}
		}
		for v := uint32(0); v < n; v++ {
			if !active[v] {
				continue
			}
			t.Read(c.fg.VtxOut, uint64(v), pcCCLabelRd)
			t.Read(c.fg.VtxOut, uint64(v)+1, pcCCLabelRd)
			for _, u := range g.OutNeighbors(v) {
				exchange(v, u)
			}
			t.Read(c.fg.VtxIn, uint64(v), pcCCLabelRd)
			t.Read(c.fg.VtxIn, uint64(v)+1, pcCCLabelRd)
			for _, u := range g.InNeighbors(v) {
				exchange(v, u)
			}
		}
		// Commit and build the next frontier from changed vertices.
		var changed []graph.VertexID
		for v := uint32(0); v < n; v++ {
			active[v] = c.next[v] != c.Label[v]
			if active[v] {
				changed = append(changed, v)
			}
			c.Label[v] = c.next[v]
		}
		frontier = ligra.NewFrontierSparse(n, changed)
	}
}
