package apps

import (
	"testing"

	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

func TestBFSMatchesReferenceLevels(t *testing.T) {
	g := graph.GenZipf(500, 8, 0.8, 21, false)
	b := NewBFS(ligra.NewGraph(g), 0)
	b.Run(nativeTracer())
	want := refBFSLevels(g, 0)
	for v := range want {
		if b.Level[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, b.Level[v], want[v])
		}
	}
}

func TestBFSParentsFormTree(t *testing.T) {
	g := graph.GenZipf(400, 8, 0.8, 23, false)
	b := NewBFS(ligra.NewGraph(g), 0)
	b.Run(nativeTracer())
	lvl := refBFSLevels(g, 0)
	for v := uint32(0); v < g.NumVertices(); v++ {
		if lvl[v] < 0 {
			if b.Parent[v] >= 0 {
				t.Fatalf("unreachable vertex %d has parent %d", v, b.Parent[v])
			}
			continue
		}
		if b.Parent[v] < 0 {
			t.Fatalf("reachable vertex %d has no parent", v)
		}
		p := uint32(b.Parent[v])
		if v == 0 {
			if p != 0 {
				t.Fatalf("root parent = %d", p)
			}
			continue
		}
		// Parent must be exactly one level above and an in-neighbor.
		if lvl[p] != lvl[v]-1 {
			t.Fatalf("parent of %d (lvl %d) is %d (lvl %d)", v, lvl[v], p, lvl[p])
		}
		found := false
		for _, u := range g.InNeighbors(v) {
			if u == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("parent %d of %d is not an in-neighbor", p, v)
		}
	}
}

func TestBFSOnPath(t *testing.T) {
	g := graph.GenPath(10)
	b := NewBFS(ligra.NewGraph(g), 0)
	b.Run(nativeTracer())
	for v := uint32(0); v < 10; v++ {
		if b.Level[v] != int32(v) {
			t.Fatalf("level[%d] = %d, want %d", v, b.Level[v], v)
		}
	}
}

// refCC computes connected components (undirected) by BFS flood fill.
func refCC(g *graph.CSR) []uint32 {
	n := g.NumVertices()
	label := make([]uint32, n)
	for v := range label {
		label[v] = ^uint32(0)
	}
	for root := uint32(0); root < n; root++ {
		if label[root] != ^uint32(0) {
			continue
		}
		// The canonical label is the minimum vertex ID in the component;
		// flooding from ascending roots guarantees root is that minimum.
		stack := []uint32{root}
		label[root] = root
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.OutNeighbors(v) {
				if label[u] == ^uint32(0) {
					label[u] = root
					stack = append(stack, u)
				}
			}
			for _, u := range g.InNeighbors(v) {
				if label[u] == ^uint32(0) {
					label[u] = root
					stack = append(stack, u)
				}
			}
		}
	}
	return label
}

func TestCCMatchesFloodFill(t *testing.T) {
	// A graph with several components: disjoint cycles plus isolated
	// vertices.
	var edges []graph.Edge
	for i := uint32(0); i < 10; i++ { // component A: cycle 0..9
		edges = append(edges, graph.Edge{Src: i, Dst: (i + 1) % 10})
	}
	for i := uint32(20); i < 25; i++ { // component B: path 20..25
		edges = append(edges, graph.Edge{Src: i, Dst: i + 1})
	}
	g, err := graph.FromEdges(40, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	cc := NewCC(ligra.NewGraph(g))
	cc.Run(nativeTracer())
	want := refCC(g)
	for v := range want {
		if cc.Label[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, cc.Label[v], want[v])
		}
	}
}

func TestCCOnRandomGraph(t *testing.T) {
	g := graph.GenZipf(300, 4, 0.8, 31, false)
	cc := NewCC(ligra.NewGraph(g))
	cc.Run(nativeTracer())
	want := refCC(g)
	for v := range want {
		if cc.Label[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, cc.Label[v], want[v])
		}
	}
}

func TestExtendedRegistry(t *testing.T) {
	g := graph.GenZipf(200, 6, 0.8, 33, true)
	for _, name := range ExtendedNames() {
		app, err := New(name, ligra.NewGraph(g), LayoutMerged)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sink mem.CountingSink
		app.Run(ligra.NewTracer(&sink))
		if sink.Reads+sink.Writes == 0 {
			t.Fatalf("%s: traced no accesses", name)
		}
	}
	if len(ExtendedNames()) != 9 {
		t.Fatalf("extended names = %v", ExtendedNames())
	}
}
