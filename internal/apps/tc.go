package apps

import (
	"sort"

	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

// TC counts triangles in the undirected simple graph underlying the CSR,
// using the standard degree-ordered orientation (GAP's "tc", Ligra's
// Triangle): every undirected edge {u, v} is kept only in the direction of
// increasing degree rank, which makes the orientation acyclic and bounds
// every out-list by O(sqrt(m)); each triangle then survives as exactly one
// directed wedge and is found by sorted-list intersection. Construction
// (symmetrize, dedup, orient) happens in NewTC; Run performs — and traces —
// the intersection phase over the derived adjacency. An extension workload
// beyond the paper's five applications.
type TC struct {
	fg *ligra.Graph

	// Count[v] is the number of triangles whose lowest-ranked vertex is v;
	// Total is their sum, the triangle count of the graph.
	Count []uint64
	Total uint64

	oriIndex []uint64
	oriAdj   []graph.VertexID

	idxArr   *mem.Array
	adjArr   *mem.Array
	countArr *mem.Array
}

var (
	pcTCIdx     = mem.PC("tc.read.index")
	pcTCAdj     = mem.PC("tc.read.adj")
	pcTCCountWr = mem.PC("tc.write.count")
)

// NewTC creates a triangle-counting instance, building the degree-ordered
// oriented adjacency (sorted neighbor lists, self-loops and parallel edges
// dropped).
func NewTC(fg *ligra.Graph) *TC {
	g := fg.C
	n := g.NumVertices()
	tc := &TC{fg: fg, Count: make([]uint64, n)}

	// Rank vertices by undirected degree (ties by ID) — the "degree
	// ordering" that keeps oriented out-lists short on skewed graphs.
	rank := make([]uint32, n)
	order := make([]graph.VertexID, n)
	for v := uint32(0); v < n; v++ {
		order[v] = v
	}
	deg := func(v graph.VertexID) uint64 {
		return uint64(g.OutDegree(v)) + uint64(g.InDegree(v))
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := deg(order[i]), deg(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	for r, v := range order {
		rank[v] = uint32(r)
	}

	// Oriented adjacency: for every undirected edge {v, u} keep v -> u iff
	// rank(v) < rank(u), deduplicated and sorted by neighbor ID so the
	// intersection below is a linear merge.
	tc.oriIndex = make([]uint64, n+1)
	var adj []graph.VertexID
	var nb []graph.VertexID
	for v := uint32(0); v < n; v++ {
		nb = nb[:0]
		for _, u := range g.OutNeighbors(v) {
			if u != v && rank[u] > rank[v] {
				nb = append(nb, u)
			}
		}
		for _, u := range g.InNeighbors(v) {
			if u != v && rank[u] > rank[v] {
				nb = append(nb, u)
			}
		}
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		last := ^graph.VertexID(0)
		for _, u := range nb {
			if u != last {
				adj = append(adj, u)
				last = u
			}
		}
		tc.oriIndex[v+1] = uint64(len(adj))
	}
	tc.oriAdj = adj

	tc.idxArr = fg.RegisterAux("tc.index", 8, uint64(n)+1)
	tc.adjArr = fg.RegisterAux("tc.adj", 4, uint64(len(adj)))
	tc.countArr = fg.RegisterProperty("tc.count", 8)
	return tc
}

// Name implements App.
func (tc *TC) Name() string { return "TC" }

// ABRArrays implements App.
func (tc *TC) ABRArrays() []*mem.Array { return []*mem.Array{tc.countArr} }

// Run implements App.
func (tc *TC) Run(t *ligra.Tracer) {
	n := tc.fg.C.NumVertices()
	tc.Total = 0
	for v := range tc.Count {
		tc.Count[v] = 0
	}
	for u := uint32(0); u < n; u++ {
		t.Read(tc.idxArr, uint64(u), pcTCIdx)
		t.Read(tc.idxArr, uint64(u)+1, pcTCIdx)
		uLo, uHi := tc.oriIndex[u], tc.oriIndex[u+1]
		for e := uLo; e < uHi; e++ {
			t.Read(tc.adjArr, e, pcTCAdj)
			v := tc.oriAdj[e]
			t.Read(tc.idxArr, uint64(v), pcTCIdx)
			t.Read(tc.idxArr, uint64(v)+1, pcTCIdx)
			vLo, vHi := tc.oriIndex[v], tc.oriIndex[v+1]
			// Merge-intersect N+(u) and N+(v): every common w closes the
			// wedge u -> v, u -> w, v -> w. An element is loaded (and
			// traced) only when its pointer advances; the stationary side
			// stays in a register, as in the real merge.
			i, j := uLo, vLo
			if i < uHi && j < vHi {
				t.Read(tc.adjArr, i, pcTCAdj)
				t.Read(tc.adjArr, j, pcTCAdj)
			}
			for i < uHi && j < vHi {
				a, b := tc.oriAdj[i], tc.oriAdj[j]
				switch {
				case a == b:
					tc.Count[u]++
					tc.Total++
					t.Write(tc.countArr, uint64(u), pcTCCountWr)
					i++
					j++
					if i < uHi {
						t.Read(tc.adjArr, i, pcTCAdj)
					}
					if j < vHi {
						t.Read(tc.adjArr, j, pcTCAdj)
					}
				case a < b:
					i++
					if i < uHi {
						t.Read(tc.adjArr, i, pcTCAdj)
					}
				default:
					j++
					if j < vHi {
						t.Read(tc.adjArr, j, pcTCAdj)
					}
				}
			}
		}
	}
}
