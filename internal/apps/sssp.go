package apps

import (
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

// InfDist is the initial (unreached) distance.
const InfDist = int64(1) << 62

// SSSP computes single-source shortest paths with the Bellman-Ford
// algorithm, push-based throughout the execution as in the paper
// (Table IV: SSSP applies push-based computations).
//
// Property state per vertex: dist and a visited-this-round flag used to
// deduplicate frontier insertions (Ligra's SSSP uses the same structure).
// Merged layout: one array of 16-byte {dist, flag} elements; split: two
// 8-byte arrays.
type SSSP struct {
	fg     *ligra.Graph
	root   graph.VertexID
	layout Layout

	Dist []int64

	merged  *mem.Array
	distArr *mem.Array
	flagArr *mem.Array

	// MaxRounds bounds Bellman-Ford rounds (negative cycles cannot occur
	// with positive weights, but adversarial inputs shouldn't hang tests).
	MaxRounds int
}

var (
	pcSSSPReadSrc  = mem.PC("sssp.read.dist.src")
	pcSSSPReadDst  = mem.PC("sssp.read.dist.dst")
	pcSSSPWriteDst = mem.PC("sssp.write.dist.dst")
	pcSSSPFlag     = mem.PC("sssp.flag")
)

// NewSSSP creates an SSSP instance rooted at root.
func NewSSSP(fg *ligra.Graph, root graph.VertexID, layout Layout) *SSSP {
	if !fg.C.Weighted() {
		panic("apps: SSSP requires a weighted graph")
	}
	n := fg.C.NumVertices()
	s := &SSSP{fg: fg, root: root, layout: layout,
		Dist: make([]int64, n), MaxRounds: int(n)}
	if layout == LayoutMerged {
		s.merged = fg.RegisterProperty("sssp.prop", 16)
	} else {
		s.distArr = fg.RegisterProperty("sssp.dist", 8)
		s.flagArr = fg.RegisterProperty("sssp.flag", 8)
	}
	return s
}

// Name implements App.
func (s *SSSP) Name() string { return "SSSP" }

// ABRArrays implements App.
func (s *SSSP) ABRArrays() []*mem.Array {
	if s.layout == LayoutMerged {
		return []*mem.Array{s.merged}
	}
	return []*mem.Array{s.distArr, s.flagArr}
}

func (s *SSSP) readDist(t *ligra.Tracer, v graph.VertexID, pc uint32) {
	if s.layout == LayoutMerged {
		t.ReadOff(s.merged, uint64(v), 0, pc)
	} else {
		t.Read(s.distArr, uint64(v), pc)
	}
}

func (s *SSSP) writeDist(t *ligra.Tracer, v graph.VertexID) {
	if s.layout == LayoutMerged {
		t.WriteOff(s.merged, uint64(v), 0, pcSSSPWriteDst)
	} else {
		t.Write(s.distArr, uint64(v), pcSSSPWriteDst)
	}
}

func (s *SSSP) touchFlag(t *ligra.Tracer, v graph.VertexID, write bool) {
	if s.layout == LayoutMerged {
		if write {
			t.WriteOff(s.merged, uint64(v), 8, pcSSSPFlag)
		} else {
			t.ReadOff(s.merged, uint64(v), 8, pcSSSPFlag)
		}
	} else {
		if write {
			t.Write(s.flagArr, uint64(v), pcSSSPFlag)
		} else {
			t.Read(s.flagArr, uint64(v), pcSSSPFlag)
		}
	}
}

// Run implements App.
func (s *SSSP) Run(t *ligra.Tracer) {
	n := s.fg.C.NumVertices()
	inFrontier := make([]bool, n)
	for v := range s.Dist {
		s.Dist[v] = InfDist
	}
	s.Dist[s.root] = 0
	frontier := ligra.NewFrontierSparse(n, []graph.VertexID{s.root})
	for round := 0; round < s.MaxRounds && !frontier.IsEmpty(); round++ {
		for _, v := range frontier.Vertices() {
			inFrontier[v] = false
		}
		next := s.fg.EdgeMapPush(t, frontier, func(src, dst graph.VertexID, w int32) bool {
			s.readDist(t, src, pcSSSPReadSrc)
			s.readDist(t, dst, pcSSSPReadDst)
			cand := s.Dist[src] + int64(w)
			if cand >= s.Dist[dst] {
				return false
			}
			s.Dist[dst] = cand
			s.writeDist(t, dst)
			// Frontier dedup via the visited flag.
			s.touchFlag(t, dst, false)
			if inFrontier[dst] {
				return false
			}
			inFrontier[dst] = true
			s.touchFlag(t, dst, true)
			return true
		}, ligra.EdgeMapOpts{})
		frontier = next
	}
}
