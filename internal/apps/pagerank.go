package apps

import (
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

// PageRank constants.
const (
	Damping = 0.85
	// DefaultPRIterations bounds the simulated iterations. The paper runs
	// PR to convergence natively but simulates a single representative
	// iteration in hardware; we simulate a small fixed number of full
	// iterations, which dominates runtime identically.
	DefaultPRIterations = 3
)

// PR is pull-based PageRank. Per iteration:
//
//  1. VertexMap: contrib[v] = rank[v] / out-degree(v)
//  2. EdgeMapPull (all vertices): acc(d) = sum of contrib[s] over in-edges;
//     the contrib[s] reads are the irregular, reuse-carrying accesses of
//     Fig. 1 — reuse proportional to out-degree, i.e. hot vertices.
//  3. VertexMap: rank[d] = (1-d)/n + d*acc(d); next[d] reset.
//
// Merged layout: one Property Array of 16-byte {contrib, next} elements
// (the paper's Table IV optimization — "one array storing two ranks per
// vertex"). Split layout: two 8-byte arrays.
type PR struct {
	fg     *ligra.Graph
	iters  int
	layout Layout

	Rank []float64 // final ranks, readable after Run
	next []float64

	merged     *mem.Array // 16B {contrib, next}
	contribArr *mem.Array // split layout
	nextArr    *mem.Array
}

// Synthetic PCs: note that one PC covers the contrib read for ALL vertices,
// hot and cold — the property that defeats PC-correlating predictors.
var (
	pcPRContrib = mem.PC("pr.pull.read.contrib")
	pcPRAccum   = mem.PC("pr.pull.write.next")
	pcPRScale   = mem.PC("pr.vmap.scale")
	pcPRApply   = mem.PC("pr.vmap.apply")
)

// NewPR creates a PageRank instance.
func NewPR(fg *ligra.Graph, iters int, layout Layout) *PR {
	n := fg.C.NumVertices()
	p := &PR{fg: fg, iters: iters, layout: layout,
		Rank: make([]float64, n), next: make([]float64, n)}
	if layout == LayoutMerged {
		p.merged = fg.RegisterProperty("pr.prop", 16)
	} else {
		p.contribArr = fg.RegisterProperty("pr.contrib", 8)
		p.nextArr = fg.RegisterProperty("pr.next", 8)
	}
	return p
}

// Name implements App.
func (p *PR) Name() string { return "PR" }

// ABRArrays implements App: one merged array, or both split arrays.
func (p *PR) ABRArrays() []*mem.Array {
	if p.layout == LayoutMerged {
		return []*mem.Array{p.merged}
	}
	return []*mem.Array{p.contribArr, p.nextArr}
}

// readContrib / writeNext translate field accesses into the layout's
// addresses.
func (p *PR) readContrib(t *ligra.Tracer, v graph.VertexID) {
	if p.layout == LayoutMerged {
		t.ReadOff(p.merged, uint64(v), 0, pcPRContrib)
	} else {
		t.Read(p.contribArr, uint64(v), pcPRContrib)
	}
}

func (p *PR) writeNext(t *ligra.Tracer, v graph.VertexID) {
	if p.layout == LayoutMerged {
		t.WriteOff(p.merged, uint64(v), 8, pcPRAccum)
	} else {
		t.Write(p.nextArr, uint64(v), pcPRAccum)
	}
}

// Run implements App.
func (p *PR) Run(t *ligra.Tracer) {
	c := p.fg.C
	n := c.NumVertices()
	inv := 1 / float64(n)
	contrib := make([]float64, n)
	for v := range p.Rank {
		p.Rank[v] = inv
	}
	all := ligra.NewFrontierAll(n)
	for it := 0; it < p.iters; it++ {
		// Phase 1: contrib[v] = rank[v]/outdeg(v). Reads rank (same element
		// as contrib in merged layout), the out-index array, writes contrib.
		ligra.VertexMap(all, func(v graph.VertexID) {
			t.Read(p.fg.VtxOut, uint64(v), pcPRScale)
			t.Read(p.fg.VtxOut, uint64(v)+1, pcPRScale)
			d := c.OutDegree(v)
			if p.layout == LayoutMerged {
				t.ReadOff(p.merged, uint64(v), 0, pcPRScale)
				t.WriteOff(p.merged, uint64(v), 0, pcPRScale)
			} else {
				t.Read(p.contribArr, uint64(v), pcPRScale)
				t.Write(p.contribArr, uint64(v), pcPRScale)
			}
			if d > 0 {
				contrib[v] = p.Rank[v] / float64(d)
			} else {
				contrib[v] = 0
			}
		})
		// Phase 2: pull; the register-accumulated sum is written back once
		// per destination after its in-edge scan.
		p.fg.EdgeMapPull(t, nil, func(dst, src graph.VertexID, _ int32) bool {
			p.readContrib(t, src)
			p.next[dst] += contrib[src]
			return false
		}, ligra.EdgeMapOpts{NoOutput: true, PostDst: func(dst graph.VertexID) {
			p.writeNext(t, dst)
		}})
		// Phase 3: apply and reset.
		ligra.VertexMap(all, func(v graph.VertexID) {
			if p.layout == LayoutMerged {
				t.ReadOff(p.merged, uint64(v), 8, pcPRApply)
				t.WriteOff(p.merged, uint64(v), 8, pcPRApply)
			} else {
				t.Read(p.nextArr, uint64(v), pcPRApply)
				t.Write(p.nextArr, uint64(v), pcPRApply)
			}
			p.Rank[v] = (1-Damping)*inv + Damping*p.next[v]
			p.next[v] = 0
		})
	}
}
