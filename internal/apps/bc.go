package apps

import (
	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

// BC computes betweenness-centrality contributions from a single root
// using Brandes' algorithm over a BFS DAG, as in Ligra's BC: a forward
// phase counts shortest paths (sigma) level by level, and a backward phase
// accumulates dependencies. Both phases use direction-switching EdgeMaps;
// on the evaluated graphs the bulk of the time is spent in dense pull
// iterations, matching the paper's ROI.
//
// Property Arrays: NumPaths (sigma) and Dependencies, the two arrays
// instrumented for GRASP. Levels/visited state is an additional per-vertex
// array. BC has no merging opportunity (Table IV).
type BC struct {
	fg   *ligra.Graph
	root graph.VertexID

	Sigma []float64 // number of shortest paths through each vertex
	Dep   []float64 // dependency scores
	level []int32

	sigmaArr *mem.Array
	depArr   *mem.Array
	lvlArr   *mem.Array
}

var (
	pcBCSigmaRd = mem.PC("bc.fwd.read.sigma")
	pcBCSigmaWr = mem.PC("bc.fwd.write.sigma")
	pcBCLvl     = mem.PC("bc.level")
	pcBCDepRd   = mem.PC("bc.bwd.read.dep")
	pcBCDepWr   = mem.PC("bc.bwd.write.dep")
)

// NewBC creates a BC instance rooted at root.
func NewBC(fg *ligra.Graph, root graph.VertexID) *BC {
	n := fg.C.NumVertices()
	b := &BC{fg: fg, root: root,
		Sigma: make([]float64, n), Dep: make([]float64, n), level: make([]int32, n)}
	b.sigmaArr = fg.RegisterProperty("bc.sigma", 8)
	b.depArr = fg.RegisterProperty("bc.dep", 8)
	b.lvlArr = fg.RegisterProperty("bc.level", 8)
	return b
}

// Name implements App.
func (b *BC) Name() string { return "BC" }

// ABRArrays implements App: the two hottest Property Arrays (the paper
// instruments at most two arrays per application). For BC these are the
// path counts and the level/visited state, both read per edge in the
// dominant forward phase.
func (b *BC) ABRArrays() []*mem.Array { return []*mem.Array{b.sigmaArr, b.lvlArr} }

// Run implements App.
func (b *BC) Run(t *ligra.Tracer) {
	c := b.fg.C
	n := c.NumVertices()
	for v := uint32(0); v < n; v++ {
		b.Sigma[v] = 0
		b.Dep[v] = 0
		b.level[v] = -1
	}
	b.Sigma[b.root] = 1
	b.level[b.root] = 0

	// Forward phase: BFS levels, counting shortest paths.
	frontier := ligra.NewFrontierSparse(n, []graph.VertexID{b.root})
	var levels []*ligra.Frontier
	levels = append(levels, frontier)
	for depth := int32(1); !frontier.IsEmpty(); depth++ {
		depth := depth
		cond := func(v graph.VertexID) bool {
			// Unvisited, or discovered earlier this round (push mode must
			// keep accumulating sigma from further same-level parents).
			t.Read(b.lvlArr, uint64(v), pcBCLvl)
			return b.level[v] < 0 || b.level[v] == depth
		}
		// Fused activity check for pull mode: a source is in the frontier
		// iff it was discovered in the previous level, read from the level
		// array (no flag-array access).
		srcActive := func(src graph.VertexID) bool {
			t.Read(b.lvlArr, uint64(src), pcBCLvl)
			return b.level[src] == depth-1
		}
		pull := func(dst, src graph.VertexID, _ int32) bool {
			// dst unvisited; srcActive restricted src to the previous
			// level.
			t.Read(b.sigmaArr, uint64(src), pcBCSigmaRd)
			t.Read(b.sigmaArr, uint64(dst), pcBCSigmaRd)
			t.Write(b.sigmaArr, uint64(dst), pcBCSigmaWr)
			b.Sigma[dst] += b.Sigma[src]
			return true
		}
		push := func(src, dst graph.VertexID, _ int32) bool {
			t.Read(b.lvlArr, uint64(dst), pcBCLvl)
			if b.level[dst] >= 0 && b.level[dst] < depth {
				return false
			}
			t.Read(b.sigmaArr, uint64(src), pcBCSigmaRd)
			t.Read(b.sigmaArr, uint64(dst), pcBCSigmaRd)
			t.Write(b.sigmaArr, uint64(dst), pcBCSigmaWr)
			first := b.level[dst] < 0
			b.level[dst] = depth // provisional; confirmed below
			b.Sigma[dst] += b.Sigma[src]
			return first
		}
		next, usedPull := b.fg.EdgeMap(t, frontier, pull, push,
			ligra.EdgeMapOpts{Cond: cond, SourceActive: srcActive})
		// Stamp levels of newly discovered vertices (pull mode defers it).
		if usedPull {
			ligra.VertexMap(next, func(v graph.VertexID) {
				t.Write(b.lvlArr, uint64(v), pcBCLvl)
				b.level[v] = depth
			})
		}
		frontier = next
		if !frontier.IsEmpty() {
			levels = append(levels, frontier)
		}
	}

	// Backward phase: dependency accumulation, deepest level first.
	// dep[v] += sigma[v]/sigma[w] * (1 + dep[w]) for BFS-DAG edges v->w.
	for li := len(levels) - 1; li > 0; li-- {
		ligra.VertexMap(levels[li], func(w graph.VertexID) {
			t.Read(b.sigmaArr, uint64(w), pcBCSigmaRd)
			t.Read(b.depArr, uint64(w), pcBCDepRd)
			share := (1 + b.Dep[w]) / b.Sigma[w]
			// Walk w's in-neighbors: predecessors are one level up.
			t.Read(b.fg.VtxIn, uint64(w), pcBCLvl)
			t.Read(b.fg.VtxIn, uint64(w)+1, pcBCLvl)
			lo := c.InIndex[w]
			for i, v := range c.InNeighbors(w) {
				t.Read(b.fg.EdgIn, lo+uint64(i), pcBCLvl)
				t.Read(b.lvlArr, uint64(v), pcBCLvl)
				if b.level[v] != b.level[w]-1 {
					continue
				}
				t.Read(b.sigmaArr, uint64(v), pcBCSigmaRd)
				t.Read(b.depArr, uint64(v), pcBCDepRd)
				t.Write(b.depArr, uint64(v), pcBCDepWr)
				b.Dep[v] += b.Sigma[v] * share
			}
		})
	}
}
