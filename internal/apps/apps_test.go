package apps

import (
	"container/heap"
	"math"
	"testing"

	"grasp/internal/graph"
	"grasp/internal/ligra"
	"grasp/internal/mem"
)

func nativeTracer() *ligra.Tracer { return ligra.NewTracer(nil) }

// --- Reference implementations for correctness checks ---

// refPageRank is a direct power-iteration PageRank (no framework).
func refPageRank(c *graph.CSR, iters int) []float64 {
	n := c.NumVertices()
	inv := 1 / float64(n)
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = inv
	}
	for it := 0; it < iters; it++ {
		for v := range next {
			next[v] = 0
		}
		for v := uint32(0); v < n; v++ {
			if d := c.OutDegree(v); d > 0 {
				share := rank[v] / float64(d)
				for _, u := range c.OutNeighbors(v) {
					next[u] += share
				}
			}
		}
		for v := range rank {
			rank[v] = (1-Damping)*inv + Damping*next[v]
		}
	}
	return rank
}

// refDijkstra computes exact shortest distances with a binary heap.
func refDijkstra(c *graph.CSR, root graph.VertexID) []int64 {
	n := c.NumVertices()
	dist := make([]int64, n)
	for v := range dist {
		dist[v] = InfDist
	}
	dist[root] = 0
	pq := &distHeap{{v: root, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		w := c.OutNeighborWeights(it.v)
		for i, u := range c.OutNeighbors(it.v) {
			if nd := it.d + int64(w[i]); nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{v: u, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v graph.VertexID
	d int64
}
type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// refBFSLevels computes BFS levels over out-edges.
func refBFSLevels(c *graph.CSR, root graph.VertexID) []int32 {
	n := c.NumVertices()
	lvl := make([]int32, n)
	for v := range lvl {
		lvl[v] = -1
	}
	lvl[root] = 0
	cur := []graph.VertexID{root}
	for depth := int32(1); len(cur) > 0; depth++ {
		var next []graph.VertexID
		for _, v := range cur {
			for _, u := range c.OutNeighbors(v) {
				if lvl[u] < 0 {
					lvl[u] = depth
					next = append(next, u)
				}
			}
		}
		cur = next
	}
	return lvl
}

// refSigma counts shortest paths per vertex from root via level-ordered DP.
func refSigma(c *graph.CSR, root graph.VertexID) []float64 {
	n := c.NumVertices()
	lvl := refBFSLevels(c, root)
	sigma := make([]float64, n)
	sigma[root] = 1
	// Process vertices in level order.
	maxLvl := int32(0)
	for _, l := range lvl {
		if l > maxLvl {
			maxLvl = l
		}
	}
	for depth := int32(1); depth <= maxLvl; depth++ {
		for v := uint32(0); v < n; v++ {
			if lvl[v] != depth {
				continue
			}
			for _, u := range c.InNeighbors(v) {
				if lvl[u] == depth-1 {
					sigma[v] += sigma[u]
				}
			}
		}
	}
	return sigma
}

// --- Tests ---

func testGraph(weighted bool) *ligra.Graph {
	c := graph.GenZipf(600, 8, 0.7, 99, weighted)
	return ligra.NewGraph(c)
}

func TestPRMatchesReference(t *testing.T) {
	for _, layout := range []Layout{LayoutMerged, LayoutSplit} {
		fg := testGraph(false)
		pr := NewPR(fg, 3, layout)
		pr.Run(nativeTracer())
		want := refPageRank(fg.C, 3)
		for v := range want {
			if math.Abs(pr.Rank[v]-want[v]) > 1e-12 {
				t.Fatalf("layout %v: rank[%d] = %g, want %g", layout, v, pr.Rank[v], want[v])
			}
		}
	}
}

func TestPRRankSumIsOne(t *testing.T) {
	fg := testGraph(false)
	pr := NewPR(fg, 5, LayoutMerged)
	pr.Run(nativeTracer())
	var sum float64
	for _, r := range pr.Rank {
		sum += r
	}
	// Dangling vertices leak rank mass; with few of them sum stays near 1.
	if sum < 0.5 || sum > 1.01 {
		t.Fatalf("rank sum = %f, want (0.5, 1.01]", sum)
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	for _, layout := range []Layout{LayoutMerged, LayoutSplit} {
		fg := testGraph(true)
		ss := NewSSSP(fg, 0, layout)
		ss.Run(nativeTracer())
		want := refDijkstra(fg.C, 0)
		for v := range want {
			if ss.Dist[v] != want[v] {
				t.Fatalf("layout %v: dist[%d] = %d, want %d", layout, v, ss.Dist[v], want[v])
			}
		}
	}
}

func TestSSSPOnPath(t *testing.T) {
	c := graph.GenPath(10)
	fg := ligra.NewGraph(c)
	ss := NewSSSP(fg, 0, LayoutMerged)
	ss.Run(nativeTracer())
	for v := uint32(0); v < 10; v++ {
		if ss.Dist[v] != int64(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, ss.Dist[v], v)
		}
	}
}

func TestBCForwardSigma(t *testing.T) {
	fg := testGraph(false)
	bc := NewBC(fg, 0)
	bc.Run(nativeTracer())
	wantLvl := refBFSLevels(fg.C, 0)
	wantSigma := refSigma(fg.C, 0)
	for v := range wantLvl {
		if bc.level[v] != wantLvl[v] {
			t.Fatalf("level[%d] = %d, want %d", v, bc.level[v], wantLvl[v])
		}
		if math.Abs(bc.Sigma[v]-wantSigma[v]) > 1e-9 {
			t.Fatalf("sigma[%d] = %g, want %g", v, bc.Sigma[v], wantSigma[v])
		}
	}
}

func TestBCDependencyOnPath(t *testing.T) {
	// On a directed path 0->1->2->3->4, dep[v] counts descendants:
	// dep[0]=4, dep[1]=3, dep[2]=2, dep[3]=1, dep[4]=0.
	c := graph.GenPath(5)
	fg := ligra.NewGraph(c)
	bc := NewBC(fg, 0)
	bc.Run(nativeTracer())
	want := []float64{4, 3, 2, 1, 0}
	for v, w := range want {
		if math.Abs(bc.Dep[v]-w) > 1e-9 {
			t.Fatalf("dep[%d] = %g, want %g", v, bc.Dep[v], w)
		}
	}
}

func TestBCDependencyDiamond(t *testing.T) {
	// Diamond: 0->1, 0->2, 1->3, 2->3. sigma[3] = 2 via two paths;
	// dep[1] = dep[2] = sigma/sigma * (1+dep[3]) = 1/2.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}}
	c, err := graph.FromEdges(4, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	fg := ligra.NewGraph(c)
	bc := NewBC(fg, 0)
	bc.Run(nativeTracer())
	if bc.Sigma[3] != 2 {
		t.Fatalf("sigma[3] = %g, want 2", bc.Sigma[3])
	}
	if math.Abs(bc.Dep[1]-0.5) > 1e-9 || math.Abs(bc.Dep[2]-0.5) > 1e-9 {
		t.Fatalf("dep[1]=%g dep[2]=%g, want 0.5 each", bc.Dep[1], bc.Dep[2])
	}
	// Brandes: dep[0] = (1+dep[1]) + (1+dep[2]) = 3 (one unit per
	// reachable target 1, 2 and 3).
	if math.Abs(bc.Dep[0]-3) > 1e-9 {
		t.Fatalf("dep[0] = %g, want 3", bc.Dep[0])
	}
}

func TestRadiiOnCycle(t *testing.T) {
	// On a directed cycle every BFS eventually reaches every vertex; radius
	// estimates are bounded by n and positive for non-source vertices.
	c := graph.GenCycle(32)
	fg := ligra.NewGraph(c)
	r := NewRadii(fg, 4)
	r.Run(nativeTracer())
	for v := uint32(0); v < 32; v++ {
		if r.Radii[v] < 0 || r.Radii[v] > 32 {
			t.Fatalf("radii[%d] = %d out of range", v, r.Radii[v])
		}
	}
}

func TestRadiiMatchesBFSDepthSingleSample(t *testing.T) {
	// With one sample rooted at 0, the final radius of the last-reached
	// vertex equals its BFS level.
	c := graph.GenPath(8)
	fg := ligra.NewGraph(c)
	r := NewRadii(fg, 1)
	r.Run(nativeTracer())
	want := refBFSLevels(c, 0)
	for v := uint32(0); v < 8; v++ {
		if want[v] >= 0 && r.Radii[v] != want[v] {
			t.Fatalf("radii[%d] = %d, want %d", v, r.Radii[v], want[v])
		}
	}
}

func TestRegistry(t *testing.T) {
	fg := testGraph(true)
	for _, name := range Names() {
		app, err := New(name, ligra.NewGraph(fg.C), LayoutMerged)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if app.Name() != name {
			t.Fatalf("app %s reports name %s", name, app.Name())
		}
		if len(app.ABRArrays()) == 0 || len(app.ABRArrays()) > 2 {
			t.Fatalf("%s: %d ABR arrays, want 1..2", name, len(app.ABRArrays()))
		}
	}
	if _, err := New("nope", fg, LayoutMerged); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestTracedRunsProduceAccesses(t *testing.T) {
	for _, name := range Names() {
		c := graph.GenZipf(300, 6, 0.7, 5, true)
		fg := ligra.NewGraph(c)
		app, err := New(name, fg, LayoutMerged)
		if err != nil {
			t.Fatal(err)
		}
		var sink mem.CountingSink
		app.Run(ligra.NewTracer(&sink))
		total := sink.Reads + sink.Writes
		if total == 0 {
			t.Fatalf("%s: no accesses traced", name)
		}
		if sink.PropertyN == 0 {
			t.Fatalf("%s: no Property Array accesses traced", name)
		}
		// Property Arrays dominate LLC accesses in the paper (78-94%);
		// at the raw (pre-cache-filter) level they are at least a
		// significant share.
		if float64(sink.PropertyN)/float64(total) < 0.10 {
			t.Fatalf("%s: property share %.2f suspiciously low", name,
				float64(sink.PropertyN)/float64(total))
		}
	}
}

func TestTracedEqualsNativeResults(t *testing.T) {
	// Tracing must not perturb results: run PR twice, traced and native.
	c := graph.GenZipf(400, 8, 0.75, 7, false)
	n1 := NewPR(ligra.NewGraph(c), 3, LayoutMerged)
	n1.Run(nativeTracer())
	var rec mem.Recorder
	n2 := NewPR(ligra.NewGraph(c), 3, LayoutMerged)
	n2.Run(ligra.NewTracer(&rec))
	for v := range n1.Rank {
		if n1.Rank[v] != n2.Rank[v] {
			t.Fatalf("tracing changed PR result at %d", v)
		}
	}
	if len(rec.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
}

func TestDeterministicTraces(t *testing.T) {
	// The same app on the same graph must produce identical access streams
	// (simulation reproducibility).
	c := graph.GenZipf(300, 6, 0.7, 11, true)
	var r1, r2 mem.Recorder
	a1, _ := New("SSSP", ligra.NewGraph(c), LayoutMerged)
	a1.Run(ligra.NewTracer(&r1))
	a2, _ := New("SSSP", ligra.NewGraph(c), LayoutMerged)
	a2.Run(ligra.NewTracer(&r2))
	if len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Trace), len(r2.Trace))
	}
	for i := range r1.Trace {
		if r1.Trace[i] != r2.Trace[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestLayoutString(t *testing.T) {
	if LayoutMerged.String() != "merged" || LayoutSplit.String() != "split" {
		t.Fatal("layout names wrong")
	}
}

func TestPRDRankApproximatesPR(t *testing.T) {
	// After enough iterations PRD's ranks approximate PR's.
	c := graph.GenZipf(500, 8, 0.7, 13, false)
	prd := NewPRD(ligra.NewGraph(c), 30, LayoutMerged)
	prd.Run(nativeTracer())
	want := refPageRank(c, 30)
	var maxErr float64
	for v := range want {
		if e := math.Abs(prd.Rank[v] - want[v]); e > maxErr {
			maxErr = e
		}
	}
	// PRD truncates small deltas, so allow a loose tolerance relative to
	// the uniform mass 1/n = 0.002.
	if maxErr > 1e-3 {
		t.Fatalf("PRD max error vs PR = %g", maxErr)
	}
}

func TestSSSPUnreachable(t *testing.T) {
	// Vertex with no in-edges from the root side remains at InfDist.
	edges := []graph.Edge{{Src: 0, Dst: 1, Weight: 2}}
	c, err := graph.FromEdges(3, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	ss := NewSSSP(ligra.NewGraph(c), 0, LayoutSplit)
	ss.Run(nativeTracer())
	if ss.Dist[2] != InfDist {
		t.Fatalf("unreachable vertex dist = %d", ss.Dist[2])
	}
	if ss.Dist[1] != 2 {
		t.Fatalf("dist[1] = %d, want 2", ss.Dist[1])
	}
}
