package fail

import (
	"errors"
	"testing"
)

// TestDisarmedIsFree: an unarmed point reports no fault (the only state
// production code observes).
func TestDisarmedIsFree(t *testing.T) {
	if err := Hit("nope"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
}

// TestArmAndReset: an armed point fires its error, counts hits, and
// Reset restores the disarmed state.
func TestArmAndReset(t *testing.T) {
	defer Reset()
	want := errors.New("boom")
	Arm("p", want)
	if err := Hit("p"); !errors.Is(err, want) {
		t.Fatalf("Hit = %v, want %v", err, want)
	}
	if got := Hits("p"); got != 1 {
		t.Fatalf("Hits = %d, want 1", got)
	}
	Reset()
	if err := Hit("p"); err != nil {
		t.Fatalf("Hit after Reset = %v", err)
	}
}

// TestArmAfterSkipsPasses: ArmAfter lets the first N hits through, then
// fires — the mid-stream fault shape (Nth spill write).
func TestArmAfterSkipsPasses(t *testing.T) {
	defer Reset()
	ArmAfter("p", 2, nil)
	for i := 0; i < 2; i++ {
		if err := Hit("p"); err != nil {
			t.Fatalf("pass %d: Hit = %v, want nil", i, err)
		}
	}
	if err := Hit("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third Hit = %v, want ErrInjected", err)
	}
}

// TestArmPanic: a panic-armed point panics with an identifiable message.
func TestArmPanic(t *testing.T) {
	defer Reset()
	ArmPanic("p", "kaboom")
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("ArmPanic'd Hit did not panic")
		}
	}()
	Hit("p")
}
