// Package fail provides named, test-armable failpoints: fixed hooks
// compiled into I/O and execution paths (store writes, journal appends,
// trace spill I/O, job execution) that tests arm to inject an error or a
// panic exactly where a real fault would strike. The chaos suite drives
// disk-full, torn-shutdown and panicking-simulation scenarios through
// them (DESIGN.md Sec. 13).
//
// Disarmed is the only state production code ever sees, so Hit's fast
// path is a single atomic load of a process-wide counter — no map lookup,
// no lock — and the hooks are safe to leave on hot-ish paths like the
// per-chunk spill write.
package fail

import (
	"errors"
	"sync"
	"sync/atomic"
)

// armed counts currently armed points; Hit returns immediately while it
// is zero, so disarmed failpoints cost one atomic load.
var armed atomic.Int32

// point is one armed failpoint.
type point struct {
	err      error  // returned by Hit (error mode)
	panicMsg string // non-empty: Hit panics instead (panic mode)
	skip     int    // successful passes remaining before the point fires
	hits     int    // times the point actually fired
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

// ErrInjected is the default error Arm installs when given a nil error —
// tests matching on it can assert a failure came from the harness.
var ErrInjected = errors.New("fail: injected fault")

// Hit reports the armed fault for name: nil while the point is disarmed
// (the only state outside tests), the armed error once armed, or a panic
// when the point was armed with ArmPanic. Each firing is counted (Hits).
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p := points[name]
	if p == nil {
		mu.Unlock()
		return nil
	}
	if p.skip > 0 {
		p.skip--
		mu.Unlock()
		return nil
	}
	p.hits++
	err, msg := p.err, p.panicMsg
	mu.Unlock()
	if msg != "" {
		panic("fail: injected panic at " + name + ": " + msg)
	}
	return err
}

// Arm makes Hit(name) return err (ErrInjected when err is nil) until the
// point is disarmed.
func Arm(name string, err error) { ArmAfter(name, 0, err) }

// ArmAfter is Arm, except the first `passes` Hits succeed before the
// point starts firing — for faults that strike mid-stream (the Nth spill
// write, the Nth journal append).
func ArmAfter(name string, passes int, err error) {
	if err == nil {
		err = ErrInjected
	}
	mu.Lock()
	points[name] = &point{err: err, skip: passes}
	mu.Unlock()
	armed.Store(int32(len(points)))
}

// ArmPanic makes Hit(name) panic with the given message — the
// fault-containment scenarios (a policy or parser panicking mid-job)
// inject through this.
func ArmPanic(name, msg string) {
	if msg == "" {
		msg = "injected"
	}
	mu.Lock()
	points[name] = &point{panicMsg: msg}
	mu.Unlock()
	armed.Store(int32(len(points)))
}

// Disarm removes one failpoint.
func Disarm(name string) {
	mu.Lock()
	delete(points, name)
	armed.Store(int32(len(points)))
	mu.Unlock()
}

// Reset disarms every failpoint (deferred by every chaos test).
func Reset() {
	mu.Lock()
	points = map[string]*point{}
	armed.Store(0)
	mu.Unlock()
}

// Hits returns how many times the named point has fired since it was
// armed (0 if never armed).
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.hits
	}
	return 0
}
