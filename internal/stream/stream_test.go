package stream

import (
	"testing"
	"testing/quick"

	"grasp/internal/graph"
	"grasp/internal/reorder"
)

func TestAddRemoveEdge(t *testing.T) {
	d := NewDynamicGraph(4, true)
	if err := d.AddEdge(graph.Edge{Src: 0, Dst: 1, Weight: 5}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(graph.Edge{Src: 0, Dst: 2, Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if d.NumEdges() != 2 || d.OutDegree(0) != 2 {
		t.Fatalf("edge bookkeeping wrong: m=%d deg=%d", d.NumEdges(), d.OutDegree(0))
	}
	if !d.RemoveEdge(graph.Edge{Src: 0, Dst: 1, Weight: 5}) {
		t.Fatal("failed to remove existing edge")
	}
	if d.RemoveEdge(graph.Edge{Src: 0, Dst: 1, Weight: 5}) {
		t.Fatal("removed an absent edge")
	}
	if d.NumEdges() != 1 {
		t.Fatalf("m=%d after removal, want 1", d.NumEdges())
	}
	if err := d.AddEdge(graph.Edge{Src: 0, Dst: 9}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestAddVertex(t *testing.T) {
	d := NewDynamicGraph(2, false)
	v := d.AddVertex()
	if v != 2 || d.NumVertices() != 3 {
		t.Fatalf("AddVertex -> %d (n=%d)", v, d.NumVertices())
	}
	if err := d.AddEdge(graph.Edge{Src: v, Dst: 0}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := graph.GenZipf(300, 8, 0.9, 3, true)
	d := FromCSR(g)
	if d.NumEdges() != g.NumEdges() {
		t.Fatalf("FromCSR lost edges: %d vs %d", d.NumEdges(), g.NumEdges())
	}
	snap := d.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if snap.NumEdges() != g.NumEdges() {
		t.Fatal("snapshot edge count differs")
	}
	// Snapshot of an unmodified graph reproduces the original adjacency.
	for v := uint32(0); v < g.NumVertices(); v++ {
		a, b := g.OutNeighbors(v), snap.OutNeighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("neighbor mismatch at %d[%d]", v, i)
			}
		}
	}
}

func TestApplyBatch(t *testing.T) {
	d := NewDynamicGraph(10, true)
	batch := []Update{
		{Add: true, Edge: graph.Edge{Src: 1, Dst: 2, Weight: 1}},
		{Add: true, Edge: graph.Edge{Src: 2, Dst: 3, Weight: 1}},
		{Add: false, Edge: graph.Edge{Src: 1, Dst: 2, Weight: 1}},
		{Add: false, Edge: graph.Edge{Src: 5, Dst: 6, Weight: 1}}, // absent: ignored
	}
	if err := d.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if d.NumEdges() != 1 {
		t.Fatalf("m=%d after batch, want 1", d.NumEdges())
	}
}

func TestGenUpdateBatchShape(t *testing.T) {
	g := graph.GenZipf(500, 10, 0.9, 7, true)
	d := FromCSR(g)
	batch := GenUpdateBatch(d, 200, 0.7, 0.9, 11)
	adds, removes := 0, 0
	for _, u := range batch {
		if u.Add {
			adds++
		} else {
			removes++
		}
	}
	if adds != 140 {
		t.Fatalf("adds=%d, want 140", adds)
	}
	if removes == 0 {
		t.Fatal("no removals generated")
	}
	if err := d.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixCoverage(t *testing.T) {
	// On a DBG-reordered skewed graph, a small prefix covers a large edge
	// share; the same prefix on the shuffled original covers ~prefix/n.
	g := graph.GenZipf(2000, 12, 1.0, 5, false)
	prefix := uint32(200) // 10% of vertices
	shuffled := PrefixCoverage(g, prefix)
	ordered := PrefixCoverage(reorder.Apply(g, reorder.DBG(g, reorder.BySum)), prefix)
	if ordered < 2*shuffled {
		t.Fatalf("DBG prefix coverage %.2f not much better than shuffled %.2f", ordered, shuffled)
	}
	if ordered < 0.5 {
		t.Fatalf("DBG prefix coverage %.2f unexpectedly low", ordered)
	}
	// Degenerate prefixes.
	if PrefixCoverage(g, 0) != 0 {
		t.Fatal("empty prefix must cover nothing")
	}
	if PrefixCoverage(g, g.NumVertices()+100) != 1 {
		t.Fatal("full prefix must cover everything")
	}
}

func TestStalenessStudySlowDrift(t *testing.T) {
	// The Sec. VI claim: after modest update batches the stale ordering's
	// prefix coverage stays close to fresh reordering.
	g := graph.GenZipf(2000, 12, 1.0, 9, true)
	g = reorder.Apply(g, reorder.DBG(g, reorder.BySum))
	points := StalenessStudy(g, 200, 5, 500, 0.7, 1.0, 42)
	if len(points) != 5 {
		t.Fatalf("want 5 points, got %d", len(points))
	}
	for _, p := range points {
		if p.FreshCoverage < p.StaleCoverage-1e-9 {
			t.Fatalf("batch %d: fresh coverage %.3f below stale %.3f", p.Batch, p.FreshCoverage, p.StaleCoverage)
		}
		if p.StaleCoverage < 0.6*p.FreshCoverage {
			t.Fatalf("batch %d: stale ordering degraded too fast (%.3f vs %.3f)",
				p.Batch, p.StaleCoverage, p.FreshCoverage)
		}
	}
	// Degradation is monotone-ish: last stale coverage <= first (drift).
	if points[len(points)-1].StaleCoverage > points[0].StaleCoverage+0.05 {
		t.Fatal("stale coverage increased implausibly")
	}
}

// Property: ApplyBatch never corrupts the structure (snapshot validates,
// edge count matches adds minus successful removals).
func TestDynamicGraphQuick(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		r := graph.NewRNG(seed)
		d := NewDynamicGraph(50, false)
		var m uint64
		for i := 0; i < int(nOps); i++ {
			if r.Uint32n(3) > 0 { // 2/3 adds
				e := graph.Edge{Src: r.Uint32n(50), Dst: r.Uint32n(50)}
				if d.AddEdge(e) == nil {
					m++
				}
			} else {
				e := graph.Edge{Src: r.Uint32n(50), Dst: r.Uint32n(50)}
				if d.RemoveEdge(e) {
					m--
				}
			}
		}
		if d.NumEdges() != m {
			return false
		}
		return d.Snapshot().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
