package stream

import (
	"grasp/internal/graph"
	"grasp/internal/reorder"
)

// Reordering-staleness study: how quickly does an update stream erode the
// hot-vertex prefix that skew-aware reordering established, and how often
// must reordering be reapplied? This quantifies the paper's Sec. VI claim
// that "addition or deletion of some vertices or edges in a large graph
// would not lead to a drastic change in the degree distribution, and thus
// [is] unlikely to change which vertices are classified hot in a short
// time window".

// PrefixCoverage returns the fraction of edges (by the summed degree on
// both sides) covered by the first `prefix` vertex IDs — the quantity
// GRASP's High Reuse Region depends on. Right after DBG/HubSort/Sort the
// prefix holds the hottest vertices, so coverage is maximal; drift lowers
// it.
func PrefixCoverage(g *graph.CSR, prefix uint32) float64 {
	if prefix > g.NumVertices() {
		prefix = g.NumVertices()
	}
	var covered, total uint64
	for v := uint32(0); v < g.NumVertices(); v++ {
		d := uint64(g.OutDegree(v) + g.InDegree(v))
		total += d
		if v < prefix {
			covered += d
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// StalenessPoint is one measurement in the staleness study.
type StalenessPoint struct {
	Batch int
	// StaleCoverage is the prefix coverage using the ORIGINAL (stale)
	// reordering after this many update batches.
	StaleCoverage float64
	// FreshCoverage is the coverage if reordering were reapplied now.
	FreshCoverage float64
}

// StalenessStudy seeds a dynamic graph from g (assumed already reordered
// so the hot prefix is at low IDs), applies `batches` update batches of
// `batchSize` updates (addFrac insertions) and measures the stale vs
// fresh prefix coverage after each batch.
func StalenessStudy(g *graph.CSR, prefix uint32, batches, batchSize int, addFrac, alpha float64, seed uint64) []StalenessPoint {
	d := FromCSR(g)
	var out []StalenessPoint
	for b := 1; b <= batches; b++ {
		batch := GenUpdateBatch(d, batchSize, addFrac, alpha, seed+uint64(b))
		if err := d.ApplyBatch(batch); err != nil {
			panic(err) // generated updates are in-range by construction
		}
		snap := d.Snapshot()
		stale := PrefixCoverage(snap, prefix)
		fresh := PrefixCoverage(reorder.Apply(snap, reorder.DBG(snap, reorder.BySum)), prefix)
		out = append(out, StalenessPoint{Batch: b, StaleCoverage: stale, FreshCoverage: fresh})
	}
	return out
}
