// Package stream implements the dynamic-graph setting discussed in
// Sec. VI of the paper ("Streaming graph frameworks"): a stream of edge
// insertions/removals interleaved with graph-analytic queries, where each
// query runs on a consistent CSR snapshot (the Aspen/Ligra deployment
// model). It substantiates the paper's argument that skew-aware
// reordering — and with it GRASP — carries over to dynamic graphs because
// degree distributions drift slowly: reordering can be applied at periodic
// intervals and amortized over many queries.
package stream

import (
	"fmt"
	"math"
	"sort"

	"grasp/internal/graph"
)

// Update is one mutation in the update stream.
type Update struct {
	Add  bool // true = insert edge, false = remove edge
	Edge graph.Edge
}

// DynamicGraph is an adjacency-list graph supporting streamed updates and
// CSR snapshots. It favors clarity over update throughput: per-vertex
// sorted out-neighbor slices, with in-edges materialized at snapshot time.
type DynamicGraph struct {
	out      [][]graph.Edge // per source: edges sorted by (Dst, Weight)
	n        uint32
	m        uint64
	weighted bool
}

// NewDynamicGraph creates an empty dynamic graph on n vertices.
func NewDynamicGraph(n uint32, weighted bool) *DynamicGraph {
	return &DynamicGraph{out: make([][]graph.Edge, n), n: n, weighted: weighted}
}

// FromCSR seeds a dynamic graph from a static snapshot.
func FromCSR(g *graph.CSR) *DynamicGraph {
	d := NewDynamicGraph(g.NumVertices(), g.Weighted())
	for v := uint32(0); v < g.NumVertices(); v++ {
		nb := g.OutNeighbors(v)
		var w []int32
		if g.Weighted() {
			w = g.OutNeighborWeights(v)
		}
		for i, u := range nb {
			e := graph.Edge{Src: v, Dst: u}
			if w != nil {
				e.Weight = w[i]
			}
			d.out[v] = append(d.out[v], e)
		}
		d.m += uint64(len(nb))
	}
	return d
}

// NumVertices returns the vertex count.
func (d *DynamicGraph) NumVertices() uint32 { return d.n }

// NumEdges returns the current edge count.
func (d *DynamicGraph) NumEdges() uint64 { return d.m }

// OutDegree returns the current out-degree of v.
func (d *DynamicGraph) OutDegree(v graph.VertexID) uint32 { return uint32(len(d.out[v])) }

// AddVertex appends a new isolated vertex and returns its ID.
func (d *DynamicGraph) AddVertex() graph.VertexID {
	d.out = append(d.out, nil)
	d.n++
	return d.n - 1
}

// AddEdge inserts a directed edge (parallel edges allowed, as in the
// generators).
func (d *DynamicGraph) AddEdge(e graph.Edge) error {
	if e.Src >= d.n || e.Dst >= d.n {
		return fmt.Errorf("stream: edge (%d->%d) out of range for %d vertices", e.Src, e.Dst, d.n)
	}
	adj := d.out[e.Src]
	i := sort.Search(len(adj), func(i int) bool {
		if adj[i].Dst != e.Dst {
			return adj[i].Dst > e.Dst
		}
		return adj[i].Weight >= e.Weight
	})
	adj = append(adj, graph.Edge{})
	copy(adj[i+1:], adj[i:])
	adj[i] = e
	d.out[e.Src] = adj
	d.m++
	return nil
}

// RemoveEdge removes one instance of the edge (matching Src/Dst; weight
// ignored for unweighted graphs). It reports whether an edge was removed.
func (d *DynamicGraph) RemoveEdge(e graph.Edge) bool {
	if e.Src >= d.n {
		return false
	}
	adj := d.out[e.Src]
	for i, x := range adj {
		if x.Dst == e.Dst && (!d.weighted || x.Weight == e.Weight) {
			d.out[e.Src] = append(adj[:i], adj[i+1:]...)
			d.m--
			return true
		}
	}
	return false
}

// ApplyBatch applies a batch of updates; removals of absent edges are
// ignored (idempotent deletion, as streaming frameworks do).
func (d *DynamicGraph) ApplyBatch(batch []Update) error {
	for _, u := range batch {
		if u.Add {
			if err := d.AddEdge(u.Edge); err != nil {
				return err
			}
		} else {
			d.RemoveEdge(u.Edge)
		}
	}
	return nil
}

// Snapshot materializes a consistent CSR view for a query.
func (d *DynamicGraph) Snapshot() *graph.CSR {
	edges := make([]graph.Edge, 0, d.m)
	for _, adj := range d.out {
		edges = append(edges, adj...)
	}
	g, err := graph.FromEdges(d.n, edges, d.weighted)
	if err != nil {
		panic(err) // in-range by construction
	}
	return g
}

// GenUpdateBatch synthesizes an update batch with the given insertion
// fraction, drawing endpoints from the same Zipf skew as the base graph so
// that the degree distribution drifts realistically (new edges
// preferentially attach to already-popular vertices).
func GenUpdateBatch(d *DynamicGraph, size int, addFrac float64, alpha float64, seed uint64) []Update {
	r := graph.NewRNG(seed)
	batch := make([]Update, 0, size)
	nAdds := int(float64(size) * addFrac)
	for i := 0; i < nAdds; i++ {
		batch = append(batch, Update{Add: true, Edge: graph.Edge{
			Src:    zipfVertex(d.n, alpha, r),
			Dst:    zipfVertex(d.n, alpha, r),
			Weight: int32(1 + r.Uint32n(63)),
		}})
	}
	for i := nAdds; i < size; i++ {
		// Remove a uniformly random existing edge.
		src := r.Uint32n(d.n)
		for tries := 0; tries < 64 && len(d.out[src]) == 0; tries++ {
			src = r.Uint32n(d.n)
		}
		if len(d.out[src]) == 0 {
			continue
		}
		e := d.out[src][r.Intn(len(d.out[src]))]
		batch = append(batch, Update{Add: false, Edge: e})
	}
	return batch
}

// zipfVertex draws a vertex with Zipf-rank skew but WITHOUT the base
// graph's relabeling — applied to an already-shuffled graph this models
// preferential attachment to currently-popular vertices only
// approximately; good enough for drift experiments.
func zipfVertex(n uint32, alpha float64, r *graph.RNG) graph.VertexID {
	// Inverse-CDF sampling as in graph.zipfSampler, inlined to avoid
	// exporting the sampler.
	u := r.Float64()
	var x float64
	if alpha != 1 {
		oneMinus := 1 - alpha
		h := (math.Pow(float64(n)+1, oneMinus) - 1) / oneMinus
		x = math.Pow(u*h*oneMinus+1, 1/oneMinus) - 1
	} else {
		x = math.Exp(u*math.Log(float64(n)+1)) - 1
	}
	k := uint32(x)
	if k >= n {
		k = n - 1
	}
	return k
}
