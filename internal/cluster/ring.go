// Package cluster is graspd's peer membership and job-routing layer
// (DESIGN.md Sec. 16): a static peer list probed over HTTP into an
// up/suspect/down state machine, and a consistent-hash ring over the job
// content address that names, for every job, the node that owns its
// execution and the successor that replicates its result. The package is
// pure routing state — the HTTP forwarding, replication and hedged reads
// that act on it live in internal/server, so cluster stays free of the
// jobs/server dependency cycle and testable without a daemon.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// vnodesPerPeer is how many virtual points each peer contributes to the
// ring. 64 keeps the ownership split within a few percent of uniform for
// single-digit cluster sizes while the whole ring stays a few KB.
const vnodesPerPeer = 64

// ringPoint is one virtual node: a position on the hash circle and the
// index of the peer that owns it.
type ringPoint struct {
	pos  uint64
	peer int
}

// ring is an immutable consistent-hash ring over a fixed peer list.
// Lookup walks clockwise from the key's position, so removing a node
// (skipping it as down) moves only that node's keys to their successors —
// the property that makes failover routing stable under partial failure.
type ring struct {
	points []ringPoint
	peers  []Peer
}

// newRing places every peer's virtual nodes on the circle. The peer list
// order does not matter: positions derive from peer IDs alone, so every
// node in the cluster computes the identical ring from the identical
// -peers set regardless of spelling order.
func newRing(peers []Peer) *ring {
	r := &ring{peers: peers}
	r.points = make([]ringPoint, 0, len(peers)*vnodesPerPeer)
	for i, p := range peers {
		for v := 0; v < vnodesPerPeer; v++ {
			r.points = append(r.points, ringPoint{
				pos:  hashPos(p.ID + "#" + strconv.Itoa(v)),
				peer: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		// Ties (astronomically rare) break by peer ID so every node still
		// agrees on the walk order.
		return r.peers[r.points[a].peer].ID < r.peers[r.points[b].peer].ID
	})
	return r
}

// hashPos maps an arbitrary string to a ring position.
func hashPos(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyPos maps a job content address to its ring position. Job hashes are
// already uniform SHA-256 hex, so the first 16 hex digits are the
// position; anything else (malformed input reaching the router) is
// re-hashed rather than rejected, because routing must be total.
func keyPos(hash string) uint64 {
	if len(hash) >= 16 {
		if v, err := strconv.ParseUint(hash[:16], 16, 64); err == nil {
			return v
		}
	}
	return hashPos(hash)
}

// owners returns the first n DISTINCT peers clockwise from the key's
// position: owners(h, 1)[0] is the owning node, owners(h, 2)[1] the
// replication successor, and so on. n is clamped to the peer count.
func (r *ring) owners(hash string, n int) []Peer {
	if n > len(r.peers) {
		n = len(r.peers)
	}
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	pos := keyPos(hash)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	out := make([]Peer, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		pt := r.points[(start+i)%len(r.points)]
		if seen[pt.peer] {
			continue
		}
		seen[pt.peer] = true
		out = append(out, r.peers[pt.peer])
	}
	return out
}

// String renders the ring's peer set for logs.
func (r *ring) String() string {
	return fmt.Sprintf("ring(%d peers, %d points)", len(r.peers), len(r.points))
}
