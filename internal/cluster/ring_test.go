package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// testPeers builds an n-node peer list a, b, c, ...
func testPeers(n int) []Peer {
	out := make([]Peer, n)
	for i := range out {
		id := string(rune('a' + i))
		out[i] = Peer{ID: id, Addr: "http://node-" + id + ":8337"}
	}
	return out
}

// jobHash mints a realistic job content address from a seed.
func jobHash(seed int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("job-%d", seed)))
	return hex.EncodeToString(sum[:])
}

// TestRingDeterministicAcrossOrderings: every node must compute the same
// owner for every key regardless of how its -peers flag was ordered.
func TestRingDeterministicAcrossOrderings(t *testing.T) {
	peers := testPeers(5)
	reversed := make([]Peer, len(peers))
	for i, p := range peers {
		reversed[len(peers)-1-i] = p
	}
	r1, r2 := newRing(peers), newRing(reversed)
	for i := 0; i < 500; i++ {
		h := jobHash(i)
		o1, o2 := r1.owners(h, 3), r2.owners(h, 3)
		if len(o1) != 3 || len(o2) != 3 {
			t.Fatalf("owners(%s) lengths %d/%d, want 3", h[:8], len(o1), len(o2))
		}
		for j := range o1 {
			if o1[j].ID != o2[j].ID {
				t.Fatalf("key %s: ring order disagrees at rank %d: %s vs %s",
					h[:8], j, o1[j].ID, o2[j].ID)
			}
		}
	}
}

// TestRingOwnersDistinct: the owner list never repeats a peer and clamps
// to the cluster size.
func TestRingOwnersDistinct(t *testing.T) {
	r := newRing(testPeers(3))
	for i := 0; i < 200; i++ {
		owners := r.owners(jobHash(i), 5)
		if len(owners) != 3 {
			t.Fatalf("owners clamped to %d, want 3", len(owners))
		}
		seen := map[string]bool{}
		for _, p := range owners {
			if seen[p.ID] {
				t.Fatalf("duplicate owner %s for key %d", p.ID, i)
			}
			seen[p.ID] = true
		}
	}
}

// TestRingBalance: with vnodes, ownership splits within a loose factor of
// uniform — no node owns more than twice or less than a third of its fair
// share over a large key sample.
func TestRingBalance(t *testing.T) {
	const keys = 4000
	peers := testPeers(4)
	r := newRing(peers)
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.owners(jobHash(i), 1)[0].ID]++
	}
	fair := keys / len(peers)
	for _, p := range peers {
		if c := counts[p.ID]; c < fair/3 || c > fair*2 {
			t.Errorf("peer %s owns %d keys, fair share %d (counts: %v)", p.ID, c, fair, counts)
		}
	}
}

// TestRingStableUnderFailover: the successor of every key must be what a
// ring WITHOUT the owner elects as owner — i.e. skipping a down node
// reroutes exactly onto consistent-hash successors, moving no other keys.
func TestRingStableUnderFailover(t *testing.T) {
	peers := testPeers(4)
	full := newRing(peers)
	for i := 0; i < 300; i++ {
		h := jobHash(i)
		ranked := full.owners(h, 2)
		owner, successor := ranked[0], ranked[1]
		var without []Peer
		for _, p := range peers {
			if p.ID != owner.ID {
				without = append(without, p)
			}
		}
		if got := newRing(without).owners(h, 1)[0]; got.ID != successor.ID {
			t.Fatalf("key %d: removing owner %s elects %s, but full ring's successor is %s",
				i, owner.ID, got.ID, successor.ID)
		}
	}
}

// TestKeyPosParsesJobHashes: real job addresses use their own hex prefix
// as the ring position (uniform by construction), while arbitrary strings
// still map somewhere instead of failing.
func TestKeyPosParsesJobHashes(t *testing.T) {
	h := jobHash(1)
	want, _ := parseHex16(h[:16])
	if got := keyPos(h); got != want {
		t.Errorf("keyPos(%s) = %d, want prefix value %d", h[:16], got, want)
	}
	if keyPos("not-a-hash") == 0 && keyPos("x") == 0 {
		t.Error("malformed keys should still hash to ring positions")
	}
}

// parseHex16 is the test-side mirror of keyPos's fast path.
func parseHex16(s string) (uint64, error) {
	var v uint64
	_, err := fmt.Sscanf(s, "%016x", &v)
	return v, err
}
