package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"grasp/internal/fail"
)

// NodeState is a peer's health as seen by the local prober.
type NodeState string

// Peer health states. The transitions are driven purely by consecutive
// probe results: any success makes a peer Up; failures degrade it to
// Suspect after the first and Down after DownAfter in a row. Suspect
// peers are still routed to (one lost probe is usually a blip, and
// content addressing makes a wasted forward harmless); Down peers are
// skipped so submissions fail over to the successor without waiting out
// a connect timeout per request.
const (
	// StateUp: the last probe succeeded.
	StateUp NodeState = "up"
	// StateSuspect: at least one probe failed, but fewer than DownAfter in
	// a row — the peer is still tried for routing.
	StateSuspect NodeState = "suspect"
	// StateDown: DownAfter or more consecutive probes failed — routing
	// skips the peer until a probe succeeds again.
	StateDown NodeState = "down"
)

// Peer is one statically configured cluster member.
type Peer struct {
	// ID is the node's stable name (-node-id); ring positions derive from
	// it, so renaming a node remaps its keys while readdressing does not.
	ID string `json:"id"`
	// Addr is the node's base URL, e.g. "http://10.0.0.7:8337".
	Addr string `json:"addr"`
}

// Config describes the local node's view of the cluster.
type Config struct {
	// Self is the local node's ID; it must name an entry of Peers.
	Self string
	// Peers is the full static member list, including the local node.
	Peers []Peer
	// ProbeInterval is the health-probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 2s).
	ProbeTimeout time.Duration
	// DownAfter is how many consecutive probe failures demote a peer from
	// suspect to down (default 3).
	DownAfter int
	// ReplicationFactor is how many nodes hold each completed result:
	// the owner plus RF-1 successors (default 2, clamped to the peer
	// count).
	ReplicationFactor int
}

// Status is one peer's membership snapshot, JSON-ready for the /cluster
// endpoint.
type Status struct {
	// Peer identifies the member.
	Peer
	// Self marks the local node (never probed).
	Self bool `json:"self,omitempty"`
	// State is the local prober's current verdict.
	State NodeState `json:"state"`
	// Failures is the consecutive probe-failure count behind State.
	Failures int `json:"failures,omitempty"`
}

// Cluster is the local node's membership view: the static ring plus the
// probed health of every peer. Safe for concurrent use; Start launches
// the prober and Stop tears it down.
type Cluster struct {
	self Peer
	ring *ring
	rf   int

	probeEvery   time.Duration
	probeTimeout time.Duration
	downAfter    int
	client       *http.Client

	mu       sync.Mutex
	failures map[string]int // peer ID → consecutive probe failures
	stop     chan struct{}
	stopped  sync.WaitGroup
}

// New validates the configuration and builds the cluster view. The ring
// is fixed for the process lifetime — membership changes are a restart
// with a new -peers list, which the content-addressed store makes cheap
// (moved keys re-execute or cache-fill; nothing is lost).
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 2
	}
	if cfg.ReplicationFactor > len(cfg.Peers) {
		cfg.ReplicationFactor = len(cfg.Peers)
	}
	seen := make(map[string]bool, len(cfg.Peers))
	var self *Peer
	for i, p := range cfg.Peers {
		if p.ID == "" || p.Addr == "" {
			return nil, fmt.Errorf("cluster: peer %d has empty id or addr", i)
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", p.ID)
		}
		seen[p.ID] = true
		if p.ID == cfg.Self {
			self = &cfg.Peers[i]
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: -node-id %q is not in the peer list", cfg.Self)
	}
	c := &Cluster{
		self:         *self,
		ring:         newRing(cfg.Peers),
		rf:           cfg.ReplicationFactor,
		probeEvery:   cfg.ProbeInterval,
		probeTimeout: cfg.ProbeTimeout,
		downAfter:    cfg.DownAfter,
		failures:     make(map[string]int),
		stop:         make(chan struct{}),
	}
	c.client = &http.Client{Timeout: cfg.ProbeTimeout}
	return c, nil
}

// Self returns the local node's peer entry.
func (c *Cluster) Self() Peer { return c.self }

// ReplicationFactor returns how many nodes hold each completed result.
func (c *Cluster) ReplicationFactor() int { return c.rf }

// Peers returns the full static member list in ID order.
func (c *Cluster) Peers() []Peer {
	out := append([]Peer(nil), c.ring.peers...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Owners returns the first n distinct peers on the ring for a job hash:
// index 0 is the owner, 1 the replication successor, and so on,
// REGARDLESS of health — callers that route skip Down entries themselves
// (Candidates does it for them), while replication must know the ideal
// placement even when a holder is temporarily down.
func (c *Cluster) Owners(hash string, n int) []Peer { return c.ring.owners(hash, n) }

// Candidates returns the routing order for a job hash: the owner and its
// successors with Down peers filtered out. The local node is never
// filtered (we cannot be partitioned from ourselves). An empty result
// means every replica holder is down — callers fall back to local
// execution, which content addressing makes safe.
func (c *Cluster) Candidates(hash string, n int) []Peer {
	var out []Peer
	for _, p := range c.ring.owners(hash, n) {
		if p.ID == c.self.ID || c.State(p.ID) != StateDown {
			out = append(out, p)
		}
	}
	return out
}

// State returns the local prober's verdict on one peer. The local node
// is always Up.
func (c *Cluster) State(id string) NodeState {
	if id == c.self.ID {
		return StateUp
	}
	c.mu.Lock()
	n := c.failures[id]
	c.mu.Unlock()
	switch {
	case n == 0:
		return StateUp
	case n < c.downAfter:
		return StateSuspect
	}
	return StateDown
}

// Snapshot returns every member's status in ID order (the /cluster
// endpoint's body).
func (c *Cluster) Snapshot() []Status {
	peers := c.Peers()
	out := make([]Status, 0, len(peers))
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range peers {
		st := Status{Peer: p, Self: p.ID == c.self.ID, Failures: c.failures[p.ID]}
		switch {
		case st.Self || st.Failures == 0:
			st.State = StateUp
		case st.Failures < c.downAfter:
			st.State = StateSuspect
		default:
			st.State = StateDown
		}
		out = append(out, st)
	}
	return out
}

// ReportFailure feeds a routing-layer failure (a forward or fetch that
// died on a transport error) into the health view, as if a probe had
// failed. Request traffic notices a dead peer faster than the probe
// period; folding it in makes the next request skip the peer instead of
// re-discovering the same timeout.
func (c *Cluster) ReportFailure(id string) {
	if id == c.self.ID {
		return
	}
	c.mu.Lock()
	c.failures[id]++
	c.mu.Unlock()
}

// ReportSuccess feeds a successful round trip into the health view: any
// completed exchange proves the peer reachable, resetting it to Up.
func (c *Cluster) ReportSuccess(id string) {
	c.mu.Lock()
	delete(c.failures, id)
	c.mu.Unlock()
}

// Start launches the background prober. Call Stop to halt it.
func (c *Cluster) Start() {
	c.stopped.Add(1)
	go func() {
		defer c.stopped.Done()
		t := time.NewTicker(c.probeEvery)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Stop halts the prober and waits for it to exit.
func (c *Cluster) Stop() {
	close(c.stop)
	c.stopped.Wait()
}

// probeAll probes every remote peer once, concurrently — a hung peer must
// not delay the verdict on the others past the probe timeout.
func (c *Cluster) probeAll() {
	var wg sync.WaitGroup
	for _, p := range c.ring.peers {
		if p.ID == c.self.ID {
			continue
		}
		wg.Add(1)
		go func(p Peer) {
			defer wg.Done()
			if c.probe(p) {
				c.ReportSuccess(p.ID)
			} else {
				c.ReportFailure(p.ID)
			}
		}(p)
	}
	wg.Wait()
}

// probe asks one peer's /readyz whether it should receive traffic: a
// draining or overloaded node answers 503 and is treated exactly like an
// unreachable one, so routing fails over from it. The cluster.probe
// failpoints (generic and per-peer "cluster.probe.<id>") let the chaos
// suite inject a partition without touching the network.
func (c *Cluster) probe(p Peer) bool {
	if fail.Hit("cluster.probe") != nil || fail.Hit("cluster.probe."+p.ID) != nil {
		return false
	}
	resp, err := c.client.Get(strings.TrimRight(p.Addr, "/") + "/readyz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
