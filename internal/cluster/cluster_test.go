package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"grasp/internal/fail"
)

// twoNodeConfig builds a config for self "a" with one probed peer "b" at
// addr.
func twoNodeConfig(addr string) Config {
	return Config{
		Self: "a",
		Peers: []Peer{
			{ID: "a", Addr: "http://localhost:0"},
			{ID: "b", Addr: addr},
		},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
		DownAfter:     3,
	}
}

// TestConfigValidation covers New's rejection surface.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: "a"}); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := New(Config{Self: "x", Peers: []Peer{{ID: "a", Addr: "u"}}}); err == nil {
		t.Error("self missing from peer list accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []Peer{{ID: "a", Addr: "u"}, {ID: "a", Addr: "v"}}}); err == nil {
		t.Error("duplicate peer id accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []Peer{{ID: "a"}}}); err == nil {
		t.Error("empty peer addr accepted")
	}
	c, err := New(Config{Self: "a", Peers: []Peer{{ID: "a", Addr: "u"}, {ID: "b", Addr: "v"}},
		ReplicationFactor: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.ReplicationFactor() != 2 {
		t.Errorf("RF clamped to %d, want 2 (peer count)", c.ReplicationFactor())
	}
}

// TestProbeStateMachine drives a peer through up → suspect → down as its
// /readyz stops answering, then back to up when it recovers.
func TestProbeStateMachine(t *testing.T) {
	healthy := true
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		if !healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c, err := New(twoNodeConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	// Drive probes synchronously — the background prober exists for the
	// daemon; the state machine is what is under test.
	c.probeAll()
	if got := c.State("b"); got != StateUp {
		t.Fatalf("after healthy probe: %s, want up", got)
	}

	healthy = false
	c.probeAll()
	if got := c.State("b"); got != StateSuspect {
		t.Fatalf("after 1 failed probe: %s, want suspect", got)
	}
	c.probeAll()
	c.probeAll()
	if got := c.State("b"); got != StateDown {
		t.Fatalf("after 3 failed probes: %s, want down", got)
	}

	healthy = true
	c.probeAll()
	if got := c.State("b"); got != StateUp {
		t.Fatalf("after recovery probe: %s, want up", got)
	}
}

// TestProbeFailpointInjectsPartition: arming cluster.probe.<id> partitions
// that peer without touching the network, and Candidates routes around it
// while Owners still names it (replication must know ideal placement).
func TestProbeFailpointInjectsPartition(t *testing.T) {
	defer fail.Reset()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c, err := New(twoNodeConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	fail.Arm("cluster.probe.b", nil)
	for i := 0; i < 3; i++ {
		c.probeAll()
	}
	if got := c.State("b"); got != StateDown {
		t.Fatalf("with cluster.probe.b armed: %s, want down", got)
	}
	// Find a hash owned by b; Candidates must route it to a instead.
	var h string
	for i := 0; ; i++ {
		h = jobHash(i)
		if c.Owners(h, 1)[0].ID == "b" {
			break
		}
	}
	cand := c.Candidates(h, 2)
	if len(cand) != 1 || cand[0].ID != "a" {
		t.Errorf("candidates with b down = %v, want just a", cand)
	}
	if owners := c.Owners(h, 2); owners[0].ID != "b" {
		t.Errorf("Owners must ignore health; got %v", owners)
	}

	fail.Reset()
	c.probeAll()
	if got := c.State("b"); got != StateUp {
		t.Fatalf("after heal: %s, want up", got)
	}
}

// TestReportFailureFeedsHealth: routing-layer failures degrade a peer
// without waiting for the prober, and one success heals it.
func TestReportFailureFeedsHealth(t *testing.T) {
	c, err := New(twoNodeConfig("http://localhost:0"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.ReportFailure("b")
	}
	if got := c.State("b"); got != StateDown {
		t.Fatalf("after 3 reported failures: %s, want down", got)
	}
	c.ReportSuccess("b")
	if got := c.State("b"); got != StateUp {
		t.Fatalf("after reported success: %s, want up", got)
	}
	// Self never degrades.
	c.ReportFailure("a")
	if got := c.State("a"); got != StateUp {
		t.Fatalf("self state %s, want up", got)
	}
}

// TestSnapshotStates: the /cluster body carries every member with its
// state, self marked.
func TestSnapshotStates(t *testing.T) {
	c, err := New(twoNodeConfig("http://localhost:0"))
	if err != nil {
		t.Fatal(err)
	}
	c.ReportFailure("b")
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d members, want 2", len(snap))
	}
	if !snap[0].Self || snap[0].ID != "a" || snap[0].State != StateUp {
		t.Errorf("self entry wrong: %+v", snap[0])
	}
	if snap[1].ID != "b" || snap[1].State != StateSuspect || snap[1].Failures != 1 {
		t.Errorf("peer entry wrong: %+v", snap[1])
	}
}

// TestStartStopProber: the background prober runs and halts cleanly
// (exercised under -race in CI).
func TestStartStopProber(t *testing.T) {
	probes := make(chan struct{}, 64)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case probes <- struct{}{}:
		default:
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	c, err := New(twoNodeConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	select {
	case <-probes:
	case <-time.After(5 * time.Second):
		t.Fatal("prober never probed")
	}
	c.Stop()
	if got := c.State("b"); got != StateUp {
		t.Errorf("probed healthy peer is %s, want up", got)
	}
}
