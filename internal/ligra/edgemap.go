package ligra

import "grasp/internal/graph"

// PullApply is the per-in-edge update of a pull-based EdgeMap: dst pulls
// from src (weight w; 0 for unweighted graphs). It returns true if dst
// should join the output frontier. Property Array accesses belong to the
// application and must be emitted through the Tracer inside the callback.
type PullApply func(dst, src graph.VertexID, w int32) bool

// PushApply is the per-out-edge update of a push-based EdgeMap: src pushes
// to dst. It returns true if dst newly joins the output frontier.
type PushApply func(src, dst graph.VertexID, w int32) bool

// Cond gates destination vertices (Ligra's C function): a pull-mode
// destination whose Cond is false is skipped entirely; a push-mode target
// whose Cond is false receives no update. Property reads performed by Cond
// are the application's to trace.
type Cond func(v graph.VertexID) bool

// EdgeMapOpts configures a traversal.
type EdgeMapOpts struct {
	// Cond gates destinations (nil = always true).
	Cond Cond
	// CheckFrontier: in pull mode, only pull from sources in the input
	// frontier (reading the frontier flag array); false treats every
	// vertex as active (dense all-active iterations, e.g. PageRank).
	CheckFrontier bool
	// OutputDense selects the output frontier representation.
	OutputDense bool
	// NoOutput skips building an output frontier (saves the flag writes;
	// PageRank-style fixed iteration spaces).
	NoOutput bool
	// EarlyExit stops scanning a pull destination's in-edges after the
	// first successful apply (BFS-style "parent found" semantics).
	EarlyExit bool
	// PostDst, if non-nil, runs after a pull destination's in-edge scan
	// completes (applications use it to write back per-destination
	// accumulators, e.g. PageRank's next rank).
	PostDst func(dst graph.VertexID)
	// SourceActive, if non-nil, replaces the frontier flag-array read in
	// pull mode: the application determines a source's activity from
	// per-vertex state its apply function reads anyway (PRD's delta
	// magnitude, BC's level, Radii's visited mask). This "fused frontier"
	// avoids a dedicated per-edge flag-array access, the layout used by
	// frameworks that encode activity in vertex state; any memory access
	// the activity check implies is the application's to emit.
	SourceActive func(src graph.VertexID) bool
}

// DirectionThresholdDenom is Ligra's direction-switching denominator: use
// dense/pull when the frontier's incident edges exceed m/20.
const DirectionThresholdDenom = 20

// EdgeMapPull performs a dense, pull-based traversal over in-edges: every
// vertex satisfying Cond scans its in-neighbors. All Vertex Array, Edge
// Array, weight and frontier-flag accesses are emitted into the tracer;
// curFront names the frontier flag array holding the input frontier.
func (fg *Graph) EdgeMapPull(t *Tracer, front *Frontier, apply PullApply, opts EdgeMapOpts) *Frontier {
	c := fg.C
	n := c.NumVertices()
	if front != nil && opts.CheckFrontier {
		front.ToDense()
	}
	var out *frontierBuilder
	if !opts.NoOutput {
		out = newFrontierBuilder(n, true) // pull outputs are dense
	}
	weighted := c.Weighted()
	for dst := uint32(0); dst < n; dst++ {
		if opts.Cond != nil && !opts.Cond(dst) {
			continue
		}
		t.Read(fg.VtxIn, uint64(dst), pcVtxIdx)
		t.Read(fg.VtxIn, uint64(dst)+1, pcVtxIdx)
		lo, hi := c.InIndex[dst], c.InIndex[dst+1]
		active := false
		for e := lo; e < hi; e++ {
			t.Read(fg.EdgIn, e, pcEdgeRead)
			src := c.InEdges[e]
			if opts.CheckFrontier {
				t.Read(fg.FrontA, uint64(src), pcFrontRd)
				if !front.dense[src] {
					continue
				}
			} else if opts.SourceActive != nil && !opts.SourceActive(src) {
				continue
			}
			var w int32
			if weighted {
				t.Read(fg.WgtIn, e, pcWgtRead)
				w = c.InWeights[e]
			}
			if apply(dst, src, w) {
				active = true
				if opts.EarlyExit {
					break
				}
			}
		}
		if opts.PostDst != nil {
			opts.PostDst(dst)
		}
		if active && out != nil {
			t.Write(fg.FrontB, uint64(dst), pcFrontWr)
			out.add(dst)
		}
	}
	if out == nil {
		return NewFrontierEmpty(n)
	}
	return out.frontier()
}

// EdgeMapPush performs a sparse, push-based traversal over out-edges of
// the input frontier.
func (fg *Graph) EdgeMapPush(t *Tracer, front *Frontier, apply PushApply, opts EdgeMapOpts) *Frontier {
	c := fg.C
	n := c.NumVertices()
	var out *frontierBuilder
	if !opts.NoOutput {
		out = newFrontierBuilder(n, opts.OutputDense)
	}
	weighted := c.Weighted()
	process := func(src graph.VertexID) {
		t.Read(fg.VtxOut, uint64(src), pcVtxIdx)
		t.Read(fg.VtxOut, uint64(src)+1, pcVtxIdx)
		lo, hi := c.OutIndex[src], c.OutIndex[src+1]
		for e := lo; e < hi; e++ {
			t.Read(fg.EdgOut, e, pcEdgeRead)
			dst := c.OutEdges[e]
			if opts.Cond != nil && !opts.Cond(dst) {
				continue
			}
			var w int32
			if weighted {
				t.Read(fg.WgtOut, e, pcWgtRead)
				w = c.OutWeights[e]
			}
			if apply(src, dst, w) && out != nil {
				t.Write(fg.FrontB, uint64(dst), pcFrontWr)
				out.add(dst)
			}
		}
	}
	if front.isDense {
		for v := uint32(0); v < n; v++ {
			t.Read(fg.FrontA, uint64(v), pcFrontRd)
			if front.dense[v] {
				process(v)
			}
		}
	} else {
		for i, v := range front.sparse {
			t.Read(fg.FrontS, uint64(i), pcSparseRd) // sparse list scan
			process(v)
		}
	}
	if out == nil {
		return NewFrontierEmpty(n)
	}
	return out.frontier()
}

// EdgeMap is the direction-switching traversal of Ligra: dense/pull when
// the frontier's incident edge count exceeds m/20, sparse/push otherwise.
// pull and push must implement the same logical update.
func (fg *Graph) EdgeMap(t *Tracer, front *Frontier, pull PullApply, push PushApply, opts EdgeMapOpts) (*Frontier, bool) {
	threshold := fg.C.NumEdges() / DirectionThresholdDenom
	usePull := uint64(front.Count())+front.EdgesIncident(fg.C) > threshold
	if usePull {
		o := opts
		if o.SourceActive == nil {
			o.CheckFrontier = true // no fused activity check: read the flags
		}
		return fg.EdgeMapPull(t, front, pull, o), true
	}
	return fg.EdgeMapPush(t, front, push, opts), false
}

// VertexMap applies f to every active vertex of the frontier. Property
// accesses inside f are the application's to trace.
func VertexMap(front *Frontier, f func(v graph.VertexID)) {
	if front.isDense {
		for v := uint32(0); v < front.n; v++ {
			if front.dense[v] {
				f(v)
			}
		}
		return
	}
	for _, v := range front.sparse {
		f(v)
	}
}
