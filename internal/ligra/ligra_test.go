package ligra

import (
	"testing"

	"grasp/internal/graph"
	"grasp/internal/mem"
)

func TestFrontierSparseDense(t *testing.T) {
	f := NewFrontierSparse(10, []graph.VertexID{1, 3, 5})
	if f.Count() != 3 || f.IsDense() || f.IsEmpty() {
		t.Fatalf("sparse frontier state wrong: %+v", f)
	}
	if !f.Contains(3) || f.Contains(2) {
		t.Fatal("Contains wrong on sparse")
	}
	f.ToDense()
	if !f.IsDense() || f.Count() != 3 {
		t.Fatal("ToDense lost state")
	}
	if !f.Contains(3) || f.Contains(2) {
		t.Fatal("Contains wrong on dense")
	}
	vs := f.Vertices()
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 3 || vs[2] != 5 {
		t.Fatalf("Vertices() = %v", vs)
	}
}

func TestFrontierAll(t *testing.T) {
	f := NewFrontierAll(5)
	if f.Count() != 5 || !f.IsDense() {
		t.Fatal("all-frontier wrong")
	}
	e := NewFrontierEmpty(5)
	if !e.IsEmpty() || e.NumVertices() != 5 {
		t.Fatal("empty frontier wrong")
	}
}

func TestEdgesIncident(t *testing.T) {
	c := graph.GenStar(5) // hub 0: out-degree 4; leaves: 1 each
	f := NewFrontierSparse(5, []graph.VertexID{0})
	if got := f.EdgesIncident(c); got != 4 {
		t.Fatalf("EdgesIncident = %d, want 4", got)
	}
	f.ToDense()
	if got := f.EdgesIncident(c); got != 4 {
		t.Fatalf("dense EdgesIncident = %d, want 4", got)
	}
}

func TestNewGraphRegistersArrays(t *testing.T) {
	c := graph.GenPath(10) // weighted
	fg := NewGraph(c)
	for _, a := range []*mem.Array{fg.VtxIn, fg.VtxOut, fg.EdgIn, fg.EdgOut,
		fg.WgtIn, fg.WgtOut, fg.FrontA, fg.FrontB, fg.FrontS} {
		if a == nil {
			t.Fatal("missing registered array")
		}
		if a.Property {
			t.Fatalf("framework array %s must not be a Property Array", a.Name)
		}
	}
	p := fg.RegisterProperty("x", 8)
	if !p.Property {
		t.Fatal("RegisterProperty must mark Property")
	}
	if p.Len != 10 {
		t.Fatalf("property length = %d, want 10", p.Len)
	}
	// Unweighted graph: no weight arrays.
	cu := graph.GenUniform(10, 2, 1, false)
	fu := NewGraph(cu)
	if fu.WgtIn != nil || fu.WgtOut != nil {
		t.Fatal("unweighted graph registered weight arrays")
	}
}

// pullSum asserts pull semantics: every (dst, src in-edge) visited once.
func TestEdgeMapPullVisitsAllInEdges(t *testing.T) {
	c := graph.GenZipf(100, 5, 0.7, 3, false)
	fg := NewGraph(c)
	tr := NewTracer(nil)
	visits := make(map[[2]uint32]int)
	fg.EdgeMapPull(tr, nil, func(dst, src graph.VertexID, _ int32) bool {
		visits[[2]uint32{dst, src}]++
		return false
	}, EdgeMapOpts{NoOutput: true})
	var total int
	for _, n := range visits {
		total += n
	}
	if uint64(total) != c.NumEdges() {
		t.Fatalf("pull visited %d edge instances, want %d", total, c.NumEdges())
	}
}

func TestEdgeMapPullFrontierFilter(t *testing.T) {
	// Star graph: frontier = {0}; pulling with frontier check must apply
	// only edges whose source is 0.
	c := graph.GenStar(6)
	fg := NewGraph(c)
	front := NewFrontierSparse(6, []graph.VertexID{0})
	var applied int
	fg.EdgeMapPull(NewTracer(nil), front, func(dst, src graph.VertexID, _ int32) bool {
		if src != 0 {
			t.Fatalf("pull applied src %d not in frontier", src)
		}
		applied++
		return true
	}, EdgeMapOpts{CheckFrontier: true})
	if applied != 5 {
		t.Fatalf("applied %d, want 5 (one per leaf)", applied)
	}
}

func TestEdgeMapPullEarlyExit(t *testing.T) {
	// Complete graph: with EarlyExit, each destination applies exactly once.
	c := graph.GenComplete(6)
	fg := NewGraph(c)
	per := make(map[uint32]int)
	fg.EdgeMapPull(NewTracer(nil), nil, func(dst, src graph.VertexID, _ int32) bool {
		per[dst]++
		return true
	}, EdgeMapOpts{EarlyExit: true})
	for v, n := range per {
		if n != 1 {
			t.Fatalf("dst %d applied %d times with EarlyExit", v, n)
		}
	}
	if len(per) != 6 {
		t.Fatalf("only %d destinations processed", len(per))
	}
}

func TestEdgeMapPullCond(t *testing.T) {
	c := graph.GenComplete(4)
	fg := NewGraph(c)
	seen := make(map[uint32]bool)
	fg.EdgeMapPull(NewTracer(nil), nil, func(dst, src graph.VertexID, _ int32) bool {
		seen[dst] = true
		return false
	}, EdgeMapOpts{NoOutput: true, Cond: func(v graph.VertexID) bool { return v%2 == 0 }})
	if seen[1] || seen[3] || !seen[0] || !seen[2] {
		t.Fatalf("cond filter broken: %v", seen)
	}
}

func TestEdgeMapPushVisitsFrontierOutEdges(t *testing.T) {
	c := graph.GenZipf(100, 5, 0.7, 4, false)
	fg := NewGraph(c)
	front := NewFrontierSparse(100, []graph.VertexID{3, 7})
	var visited uint64
	fg.EdgeMapPush(NewTracer(nil), front, func(src, dst graph.VertexID, _ int32) bool {
		if src != 3 && src != 7 {
			t.Fatalf("push from non-frontier src %d", src)
		}
		visited++
		return false
	}, EdgeMapOpts{})
	want := uint64(c.OutDegree(3)) + uint64(c.OutDegree(7))
	if visited != want {
		t.Fatalf("push visited %d, want %d", visited, want)
	}
}

func TestEdgeMapPushBuildsFrontier(t *testing.T) {
	c := graph.GenPath(5)
	fg := NewGraph(c)
	front := NewFrontierSparse(5, []graph.VertexID{0})
	out := fg.EdgeMapPush(NewTracer(nil), front, func(src, dst graph.VertexID, _ int32) bool {
		return true
	}, EdgeMapOpts{})
	if out.Count() != 1 || !out.Contains(1) {
		t.Fatalf("push output frontier wrong: %v", out.Vertices())
	}
}

func TestEdgeMapDirectionSwitch(t *testing.T) {
	c := graph.GenZipf(200, 10, 0.7, 9, false)
	fg := NewGraph(c)
	// Tiny frontier: must choose push.
	small := NewFrontierSparse(200, []graph.VertexID{0})
	_, usedPull := fg.EdgeMap(NewTracer(nil), small,
		func(d, s graph.VertexID, _ int32) bool { return false },
		func(s, d graph.VertexID, _ int32) bool { return false }, EdgeMapOpts{NoOutput: true})
	if usedPull && small.EdgesIncident(c)+1 <= c.NumEdges()/DirectionThresholdDenom {
		t.Fatal("EdgeMap chose pull for a tiny frontier")
	}
	// Full frontier: must choose pull.
	all := NewFrontierAll(200)
	_, usedPull = fg.EdgeMap(NewTracer(nil), all,
		func(d, s graph.VertexID, _ int32) bool { return false },
		func(s, d graph.VertexID, _ int32) bool { return false }, EdgeMapOpts{NoOutput: true})
	if !usedPull {
		t.Fatal("EdgeMap chose push for the full frontier")
	}
}

func TestVertexMap(t *testing.T) {
	f := NewFrontierSparse(10, []graph.VertexID{2, 4})
	var got []uint32
	VertexMap(f, func(v graph.VertexID) { got = append(got, v) })
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("VertexMap sparse visited %v", got)
	}
	f.ToDense()
	got = nil
	VertexMap(f, func(v graph.VertexID) { got = append(got, v) })
	if len(got) != 2 {
		t.Fatalf("VertexMap dense visited %v", got)
	}
}

func TestTracerEmitsFrameworkAccesses(t *testing.T) {
	c := graph.GenPath(50)
	fg := NewGraph(c)
	var rec mem.Recorder
	tr := NewTracer(&rec)
	fg.EdgeMapPull(tr, nil, func(dst, src graph.VertexID, _ int32) bool {
		return false
	}, EdgeMapOpts{NoOutput: true})
	if len(rec.Trace) == 0 {
		t.Fatal("no framework accesses emitted")
	}
	// Pull over in-edges reads the vertex index array, edge array and
	// weight array (path graphs are weighted).
	sawVtx, sawEdge, sawWgt := false, false, false
	for _, a := range rec.Trace {
		switch {
		case a.Addr >= fg.VtxIn.Base && a.Addr < fg.VtxIn.End():
			sawVtx = true
		case a.Addr >= fg.EdgIn.Base && a.Addr < fg.EdgIn.End():
			sawEdge = true
		case a.Addr >= fg.WgtIn.Base && a.Addr < fg.WgtIn.End():
			sawWgt = true
		}
		if a.Property {
			t.Fatal("framework access marked Property")
		}
	}
	if !sawVtx || !sawEdge || !sawWgt {
		t.Fatalf("missing framework arrays in trace: vtx=%v edge=%v wgt=%v", sawVtx, sawEdge, sawWgt)
	}
}

func TestNilTracerIsSilent(t *testing.T) {
	tr := NewTracer(nil)
	as := mem.NewAddressSpace()
	a := as.Register("x", 8, 4, false)
	// Must not panic.
	tr.Read(a, 0, 0)
	tr.Write(a, 1, 0)
	tr.ReadOff(a, 2, 4, 0)
	tr.WriteOff(a, 3, 4, 0)
}
