// Package ligra is a from-scratch Go implementation of the vertex-centric
// shared-memory graph-processing model of Ligra [Shun & Blelloch, PPoPP'13],
// the framework the paper evaluates on: VertexSubset frontiers with sparse
// and dense representations, EdgeMap with pull- and push-based traversal
// and direction switching, and VertexMap.
//
// Unlike the original, every logical memory access of the traversal (Vertex
// Array, Edge Array, weights, frontier flags) can be emitted into a
// mem.Sink for the trace-driven cache simulation; applications emit their
// Property Array accesses through the same Tracer. Running with a nil-sink
// Tracer executes the algorithms natively.
package ligra

import (
	"grasp/internal/cache"
	"grasp/internal/graph"
	"grasp/internal/mem"
	"grasp/internal/trace"
)

// Tracer forwards logical memory accesses to a sink. The zero Tracer (nil
// sink) swallows accesses with minimal overhead, which is how algorithms
// run natively.
//
// The dominant sinks in simulation are *cache.Hierarchy (direct runs) and
// *trace.Recorder (the once-per-workload recording of the replay engine),
// so the tracer keeps a concrete pointer to whichever it is handed: every
// traced memory word then reaches it through a direct call instead of an
// interface dispatch. The method bodies are shaped around the compiler's
// inlining budget — Read/Write inline a cheap is-anyone-listening guard
// into the traversal loops (so native execution pays one predicted branch
// per logical access), while the dispatch itself is one call deep on every
// sink kind.
type Tracer struct {
	sink   mem.Sink
	h      *cache.Hierarchy // non-nil fast path when sink is a hierarchy
	rec    *trace.Recorder  // non-nil fast path when sink is a trace recorder
	active bool             // h != nil || rec != nil || sink != nil
}

// NewTracer creates a tracer; sink may be nil for native execution.
func NewTracer(sink mem.Sink) *Tracer {
	t := &Tracer{sink: sink, active: sink != nil}
	switch s := sink.(type) {
	case *cache.Hierarchy:
		t.h = s
	case *trace.Recorder:
		t.rec = s
	}
	return t
}

// dispatch forwards one access over the fastest available path. It is kept
// out of the exported methods so their guard branch stays inlinable.
func (t *Tracer) dispatch(addr uint64, pc uint32, write, prop bool) {
	if t.h != nil {
		t.h.Access(mem.Access{Addr: addr, PC: pc, Write: write, Property: prop})
		return
	}
	if t.rec != nil {
		t.rec.Access(mem.Access{Addr: addr, PC: pc, Write: write, Property: prop})
		return
	}
	t.sink.Access(mem.Access{Addr: addr, PC: pc, Write: write, Property: prop})
}

// Read emits a read of element i of a.
func (t *Tracer) Read(a *mem.Array, i uint64, pc uint32) {
	if !t.active {
		return
	}
	t.dispatch(a.Addr(i), pc, false, a.Property)
}

// ReadOff emits a read at byte offset off within element i of a (merged
// multi-field property elements). The Off variants exceed the inlining
// budget either way, so they dispatch directly from their own frame.
func (t *Tracer) ReadOff(a *mem.Array, i, off uint64, pc uint32) {
	if t.h != nil {
		t.h.Access(mem.Access{Addr: a.AddrOff(i, off), PC: pc, Property: a.Property})
	} else if t.rec != nil {
		t.rec.Access(mem.Access{Addr: a.AddrOff(i, off), PC: pc, Property: a.Property})
	} else if t.sink != nil {
		t.sink.Access(mem.Access{Addr: a.AddrOff(i, off), PC: pc, Property: a.Property})
	}
}

// Write emits a write of element i of a.
func (t *Tracer) Write(a *mem.Array, i uint64, pc uint32) {
	if !t.active {
		return
	}
	t.dispatch(a.Addr(i), pc, true, a.Property)
}

// WriteOff emits a write at byte offset off within element i of a.
func (t *Tracer) WriteOff(a *mem.Array, i, off uint64, pc uint32) {
	if t.h != nil {
		t.h.Access(mem.Access{Addr: a.AddrOff(i, off), PC: pc, Write: true, Property: a.Property})
	} else if t.rec != nil {
		t.rec.Access(mem.Access{Addr: a.AddrOff(i, off), PC: pc, Write: true, Property: a.Property})
	} else if t.sink != nil {
		t.sink.Access(mem.Access{Addr: a.AddrOff(i, off), PC: pc, Write: true, Property: a.Property})
	}
}

// Graph wraps a CSR with the registered memory layout of its data
// structures: the Vertex (index) and Edge Arrays for both directions,
// optional weight arrays, and a pair of frontier flag arrays that the
// framework alternates between iterations.
type Graph struct {
	C  *graph.CSR
	AS *mem.AddressSpace

	VtxIn, VtxOut  *mem.Array // CSR index arrays, 8B entries
	EdgIn, EdgOut  *mem.Array // CSR edge arrays, 4B entries
	WgtIn, WgtOut  *mem.Array // weight arrays, 4B entries (nil if unweighted)
	FrontA, FrontB *mem.Array // frontier flags, 1B per vertex
	FrontS         *mem.Array // sparse frontier vertex list, 4B entries
}

// NewGraph registers the graph's data structures in a fresh address space.
func NewGraph(c *graph.CSR) *Graph {
	as := mem.NewAddressSpace()
	n := uint64(c.NumVertices())
	m := c.NumEdges()
	fg := &Graph{C: c, AS: as}
	fg.VtxIn = as.Register("vertex.in", 8, n+1, false)
	fg.EdgIn = as.Register("edge.in", 4, m, false)
	fg.VtxOut = as.Register("vertex.out", 8, n+1, false)
	fg.EdgOut = as.Register("edge.out", 4, m, false)
	if c.Weighted() {
		fg.WgtIn = as.Register("weight.in", 4, m, false)
		fg.WgtOut = as.Register("weight.out", 4, m, false)
	}
	fg.FrontA = as.Register("frontier.a", 1, n, false)
	fg.FrontB = as.Register("frontier.b", 1, n, false)
	fg.FrontS = as.Register("frontier.sparse", 4, n, false)
	return fg
}

// RegisterProperty registers an application Property Array of n-vertex
// elements with the given element size.
func (fg *Graph) RegisterProperty(name string, elemSize uint64) *mem.Array {
	return fg.AS.Register(name, elemSize, uint64(fg.C.NumVertices()), true)
}

// RegisterAux registers an application-owned auxiliary structure that is
// NOT a Property Array (no ABR pair, no Fig. 2 accounting) — e.g. the
// degree-ordered adjacency TC builds next to the framework's CSR arrays.
func (fg *Graph) RegisterAux(name string, elemSize, n uint64) *mem.Array {
	return fg.AS.Register(name, elemSize, n, false)
}

// Synthetic PCs for the framework's static access sites.
var (
	pcVtxIdx   = mem.PC("ligra.vertex.index")
	pcEdgeRead = mem.PC("ligra.edge.read")
	pcWgtRead  = mem.PC("ligra.weight.read")
	pcFrontRd  = mem.PC("ligra.frontier.read")
	pcFrontWr  = mem.PC("ligra.frontier.write")
	pcSparseRd = mem.PC("ligra.frontier.sparse.read")
)

// Frontier is Ligra's VertexSubset: the set of active vertices, held
// sparsely (vertex list) or densely (flag per vertex).
type Frontier struct {
	n       uint32
	dense   []bool
	sparse  []graph.VertexID
	isDense bool
	count   uint32
}

// NewFrontierAll returns a dense frontier containing every vertex.
func NewFrontierAll(n uint32) *Frontier {
	f := &Frontier{n: n, dense: make([]bool, n), isDense: true, count: n}
	for i := range f.dense {
		f.dense[i] = true
	}
	return f
}

// NewFrontierSparse returns a sparse frontier with the given vertices.
func NewFrontierSparse(n uint32, verts []graph.VertexID) *Frontier {
	return &Frontier{n: n, sparse: append([]graph.VertexID(nil), verts...), count: uint32(len(verts))}
}

// NewFrontierEmpty returns an empty sparse frontier.
func NewFrontierEmpty(n uint32) *Frontier { return &Frontier{n: n} }

// Count returns the number of active vertices.
func (f *Frontier) Count() uint32 { return f.count }

// IsEmpty reports whether no vertex is active.
func (f *Frontier) IsEmpty() bool { return f.count == 0 }

// IsDense reports the current representation.
func (f *Frontier) IsDense() bool { return f.isDense }

// NumVertices returns the universe size.
func (f *Frontier) NumVertices() uint32 { return f.n }

// Contains reports whether v is active.
func (f *Frontier) Contains(v graph.VertexID) bool {
	if f.isDense {
		return f.dense[v]
	}
	for _, u := range f.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// Vertices returns the active vertices (allocating for dense frontiers).
func (f *Frontier) Vertices() []graph.VertexID {
	if !f.isDense {
		return f.sparse
	}
	out := make([]graph.VertexID, 0, f.count)
	for v := uint32(0); v < f.n; v++ {
		if f.dense[v] {
			out = append(out, v)
		}
	}
	return out
}

// ToDense converts the representation to dense in place.
func (f *Frontier) ToDense() {
	if f.isDense {
		return
	}
	f.dense = make([]bool, f.n)
	for _, v := range f.sparse {
		f.dense[v] = true
	}
	f.isDense = true
	f.sparse = nil
}

// EdgesIncident returns the sum of out-degrees of active vertices, the
// quantity Ligra uses for its direction-switching threshold.
func (f *Frontier) EdgesIncident(c *graph.CSR) uint64 {
	var sum uint64
	if f.isDense {
		for v := uint32(0); v < f.n; v++ {
			if f.dense[v] {
				sum += uint64(c.OutDegree(v))
			}
		}
		return sum
	}
	for _, v := range f.sparse {
		sum += uint64(c.OutDegree(v))
	}
	return sum
}

// frontierBuilder accumulates the output frontier of an EdgeMap.
type frontierBuilder struct {
	n        uint32
	dense    []bool
	sparse   []graph.VertexID
	useDense bool
	count    uint32
}

func newFrontierBuilder(n uint32, useDense bool) *frontierBuilder {
	b := &frontierBuilder{n: n, useDense: useDense}
	if useDense {
		b.dense = make([]bool, n)
	}
	return b
}

// add marks v active; returns true if newly added.
func (b *frontierBuilder) add(v graph.VertexID) bool {
	if b.useDense {
		if b.dense[v] {
			return false
		}
		b.dense[v] = true
		b.count++
		return true
	}
	b.sparse = append(b.sparse, v)
	b.count++
	return true
}

func (b *frontierBuilder) frontier() *Frontier {
	if b.useDense {
		return &Frontier{n: b.n, dense: b.dense, isDense: true, count: b.count}
	}
	return &Frontier{n: b.n, sparse: b.sparse, count: b.count}
}
