package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"grasp/internal/fail"
)

// journalFile is the journal's filename inside the store directory.
const journalFile = "journal.jsonl"

// Journal is the fsync'd append-only log that makes accepted work survive
// a crash (DESIGN.md Sec. 13): Submit appends a record once a job is
// enqueued, settle appends a matching record once it reaches a terminal
// state, and a rebooting daemon re-enqueues every submission with no
// settlement. Records are JSON lines; a torn final line (the crash hit
// mid-append) is tolerated and dropped. The set of pending jobs is the
// set difference — record order beyond that carries no meaning — so
// replaying a journal is idempotent, and content-addressed hashing makes
// re-running an already-stored job a cache hit rather than duplicate
// work. Safe for concurrent use.
type Journal struct {
	path string
	mu   sync.Mutex
	f    *os.File
}

// journalRecord is one line of the journal.
type journalRecord struct {
	// Op is "submit" or "settle".
	Op string `json:"op"`
	// Hash is the job's content address (both ops).
	Hash string `json:"hash"`
	// Spec and Priority reproduce the submission ("submit" only).
	Spec     *Spec `json:"spec,omitempty"`
	Priority int   `json:"priority,omitempty"`
}

// PendingJob is one journaled submission that never settled — the unit of
// crash recovery returned by OpenJournal.
type PendingJob struct {
	// Hash is the content address the submission was journaled under.
	Hash string
	// Spec and Priority reproduce the original Submit call.
	Spec     Spec
	Priority int
}

// OpenJournal opens (creating if needed) the job journal inside dir and
// returns the pending jobs a previous process left unsettled, in original
// submission order. The journal is compacted on open — settled pairs are
// dropped and only the pending submissions are rewritten (atomically:
// temp file, fsync, rename) — so it stays proportional to the backlog,
// not to the daemon's lifetime submission count.
func OpenJournal(dir string) (*Journal, []PendingJob, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	pending, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	// Compact: rewrite only the pending submissions. A crash between the
	// rename below and the first new append just replays the same pending
	// set again — recovery is idempotent.
	tmp, err := os.CreateTemp(dir, ".journal-tmp-*")
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: %w", err)
	}
	for _, p := range pending {
		spec := p.Spec
		line, err := json.Marshal(journalRecord{Op: "submit", Hash: p.Hash, Spec: &spec, Priority: p.Priority})
		if err == nil {
			_, err = tmp.Write(append(line, '\n'))
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil, nil, fmt.Errorf("jobs: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("jobs: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("jobs: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("jobs: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: %w", err)
	}
	return &Journal{path: path, f: f}, pending, nil
}

// readJournal parses the journal at path (a missing file is an empty
// journal) and folds its records into the pending set. Unparseable lines
// are skipped: with fsync'd O_APPEND writes only the final line can be
// torn, and dropping a torn submit merely loses a job that was never
// acknowledged.
func readJournal(path string) ([]PendingJob, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("jobs: %w", err)
	}
	defer f.Close()
	var order []string
	byHash := make(map[string]*PendingJob)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		switch rec.Op {
		case "submit":
			if rec.Hash == "" || rec.Spec == nil || byHash[rec.Hash] != nil {
				continue
			}
			byHash[rec.Hash] = &PendingJob{Hash: rec.Hash, Spec: *rec.Spec, Priority: rec.Priority}
			order = append(order, rec.Hash)
		case "settle":
			delete(byHash, rec.Hash)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	var pending []PendingJob
	for _, h := range order {
		if p := byHash[h]; p != nil {
			pending = append(pending, *p)
		}
	}
	return pending, nil
}

// Submitted journals one accepted submission. The append is fsync'd
// before returning, so a successful Submit implies the job survives a
// crash.
func (jn *Journal) Submitted(hash string, spec Spec, priority int) error {
	return jn.append(journalRecord{Op: "submit", Hash: hash, Spec: &spec, Priority: priority})
}

// Settled journals one terminal settlement, removing the job from the
// recovery set of the next boot.
func (jn *Journal) Settled(hash string) error {
	return jn.append(journalRecord{Op: "settle", Hash: hash})
}

// append writes one fsync'd record line under the journal lock.
func (jn *Journal) append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if err := fail.Hit("journal.append"); err != nil {
		return fmt.Errorf("jobs: journal: %w", err)
	}
	if _, err := jn.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("jobs: journal: %w", err)
	}
	if err := jn.f.Sync(); err != nil {
		return fmt.Errorf("jobs: journal: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (jn *Journal) Close() error {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	return jn.f.Close()
}
