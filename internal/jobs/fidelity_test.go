package jobs

import "testing"

// TestSampledJobEndToEnd runs a sampled-fidelity job through the real
// manager: the outcome must carry the estimate (not full metrics), the
// fast tier must show up in the metrics, and a resubmission must be a
// store hit returning the identical estimate.
func TestSampledJobEndToEnd(t *testing.T) {
	m := newTestManager(t, 1)
	spec := tinySpec()
	spec.Fidelity = FidelitySampled
	spec.SampleK = 4
	j, disp, err := m.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if disp != Queued {
		t.Fatalf("disposition = %v, want %v", disp, Queued)
	}
	<-j.Done()
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	o := j.Outcome()
	if o == nil || o.Sampled == nil {
		t.Fatal("sampled job completed without a sampled outcome")
	}
	if o.Single != nil || o.Output != "" {
		t.Error("sampled outcome also carries full-fidelity fields")
	}
	est := o.Sampled.Est
	if est.TotalSets <= 0 || est.SampledSets <= 0 || est.SampledSets > est.TotalSets {
		t.Errorf("implausible sample geometry: %d/%d sets", est.SampledSets, est.TotalSets)
	}
	if est.MissRatio < 0 || est.MissRatio > 1 {
		t.Errorf("estimated miss ratio %.4f outside [0, 1]", est.MissRatio)
	}
	if o.Sampled.SampleK != 4 {
		t.Errorf("outcome sample_k = %d, want 4", o.Sampled.SampleK)
	}
	if got := m.Metrics(); got.SampledRuns != 1 {
		t.Errorf("SampledRuns = %d, want 1", got.SampledRuns)
	}
	j2, disp2, err := m.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if disp2 != Cached {
		t.Fatalf("resubmit disposition = %v, want %v", disp2, Cached)
	}
	<-j2.Done()
	if o2 := j2.Outcome(); o2 == nil || o2.Sampled == nil || *o2.Sampled != *o.Sampled {
		t.Error("cached sampled outcome differs from the original")
	}
}

// TestFidelityCanonicalize: the fidelity tier's defaulting and validation
// matrix. An omitted fidelity is the full tier (so every pre-existing
// client speaks the current protocol unchanged), and sample_k only means
// anything on the sampled tier.
func TestFidelityCanonicalize(t *testing.T) {
	s := Spec{Kind: KindSingle, Graph: "lj"}
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if s.Fidelity != FidelityFull {
		t.Errorf("omitted fidelity canonicalized to %q, want %q", s.Fidelity, FidelityFull)
	}
	if s.SampleK != 0 {
		t.Errorf("full fidelity canonicalized with sample_k=%d, want 0", s.SampleK)
	}
	s = Spec{Kind: KindSingle, Graph: "lj", Fidelity: FidelitySampled}
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if s.SampleK != DefaultSampleK {
		t.Errorf("sampled fidelity defaulted sample_k to %d, want %d", s.SampleK, DefaultSampleK)
	}
	bad := map[string]Spec{
		"sample_k on full tier":     {Kind: KindSingle, Graph: "lj", SampleK: 16},
		"sample_k on explicit full": {Kind: KindSingle, Graph: "lj", Fidelity: FidelityFull, SampleK: 16},
		"non-power-of-two k":        {Kind: KindSingle, Graph: "lj", Fidelity: FidelitySampled, SampleK: 12},
		"k too large":               {Kind: KindSingle, Graph: "lj", Fidelity: FidelitySampled, SampleK: 1 << 17},
		"unknown fidelity":          {Kind: KindSingle, Graph: "lj", Fidelity: "approximate"},
		"experiment fidelity":       {Kind: KindExperiment, Exp: "fig2", Fidelity: FidelitySampled},
		"experiment sample_k":       {Kind: KindExperiment, Exp: "fig2", SampleK: 16},
	}
	for name, s := range bad {
		if err := s.Canonicalize(); err == nil {
			t.Errorf("%s: Canonicalize accepted %+v", name, s)
		}
	}
}

// TestFidelityHashDiscriminates: the fast tier produces estimates, not
// exact metrics, so a sampled job must never collide with the full-
// fidelity address of the same point, and different divisors are
// different jobs.
func TestFidelityHashDiscriminates(t *testing.T) {
	point := func() Spec {
		return Spec{Kind: KindSingle, Graph: "lj", App: "PR", Policy: "GRASP", Reorder: "DBG", Scale: 64}
	}
	full := mustHash(t, point())
	sampledDefault := point()
	sampledDefault.Fidelity = FidelitySampled
	defHash := mustHash(t, sampledDefault)
	if defHash == full {
		t.Error("sampled job collides with full-fidelity address")
	}
	sampled16 := point()
	sampled16.Fidelity, sampled16.SampleK = FidelitySampled, 16
	if h := mustHash(t, sampled16); h != defHash {
		t.Errorf("explicit sample_k=%d hashed to %s, defaulted to %s", DefaultSampleK, h, defHash)
	}
	sampled32 := point()
	sampled32.Fidelity, sampled32.SampleK = FidelitySampled, 32
	if h := mustHash(t, sampled32); h == defHash {
		t.Error("sample_k=32 collides with sample_k=16")
	}
	explicitFull := point()
	explicitFull.Fidelity = FidelityFull
	if h := mustHash(t, explicitFull); h != full {
		t.Errorf("explicit full fidelity hashed to %s, omitted to %s", h, full)
	}
}

// TestHashCompatPrePR7 pins the content addresses of specs that existed
// before the sampled tier. The fidelity fields are hashed ONLY for sampled
// jobs, precisely so every address below stays byte-identical — a daemon
// upgraded across this change keeps serving its stored outcomes. These
// hashes were captured on the pre-change tree; do not regenerate them from
// current code, that would defeat the test.
func TestHashCompatPrePR7(t *testing.T) {
	pinned := []struct {
		spec Spec
		hash string
	}{
		{Spec{Kind: "single", Graph: "lj"}, "6aec0cafb7da62500961aff848c3bc2e8f7a0cb92965a2fbd53f9663d1831ee5"},
		{Spec{Kind: "single", Graph: "pl", App: "BC", Policy: "RRIP", Reorder: "Gorder", Scale: 2}, "324fa92afae39dafb9d643d95103fc7b09705602a12df0fb8d9bcec70912f2db"},
		{Spec{Kind: "single", Graph: "tw", App: "SSSP", Policy: "LRU", Reorder: "HubSort", Scale: 8}, "df969d44acb1b737f6d9c4cdb684b625cf077a2dcd79270ebd69a7bbde1c8eab"},
		{Spec{Kind: "single", Graph: "lj", App: "PRD", Policy: "SRRIP", Reorder: "Identity", Scale: 64}, "f55c35c2cedc7d5dc08a1d5d276b4e07b8cb4a867d2fbb07a84afee32c687a2b"},
		{Spec{Kind: "single", Graph: "uni", App: "Radii", Policy: "Hawkeye", Reorder: "DBG", Scale: 16}, "11de8a652cb497855d658455dbf6ca73d4c4055828fc2ab8de533613582dceed"},
		{Spec{Kind: "experiment", Exp: "fig2", Scale: 64}, "7f0023ace40a10124c3f9599a4e7940e20afcf773ec69b6b7ac0a7ffb8898434"},
		{Spec{Kind: "experiment", Exp: "table1", Scale: 1}, "cab3f37b995967edc99210d3146cbc49d3e9ce5736fca281c31973fa231c6531"},
		{Spec{Kind: "experiment", Exp: "fig5", Scale: 16}, "210ba474ea818b20cb1ebd07d3981f85384c97667ee89a5015c39c9e821bf782"},
	}
	for _, p := range pinned {
		if got := mustHash(t, p.spec); got != p.hash {
			t.Errorf("pre-change address moved for %+v:\n got %s\nwant %s", p.spec, got, p.hash)
		}
	}
}
