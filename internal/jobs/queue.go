package jobs

import (
	"container/heap"
	"sync"
)

// queue is a blocking priority queue of jobs: higher Priority pops first,
// ties break by submission order (FIFO), and Pop blocks until an item
// arrives or the queue is closed. Concurrency is bounded by how many
// workers call Pop, not by the queue itself.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  jobHeap
	seq    uint64
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues j. Pushing to a closed queue reports false.
func (q *queue) Push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.seq++
	heap.Push(&q.items, queued{job: j, seq: q.seq})
	q.cond.Signal()
	return true
}

// Pop blocks until a job is available and returns the highest-priority
// one; it returns nil once the queue is closed and drained of nothing —
// close discards pending items, so nil means "stop working".
func (q *queue) Pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil
	}
	return heap.Pop(&q.items).(queued).job
}

// Boost raises j's priority to prio (never lowers it), re-sifting the
// heap if j is still queued. Deduplicated submissions use this so a
// high-priority caller joining a low-priority in-flight job still jumps
// the queue. Priority writes are serialized with heap reads by q.mu and
// with Status snapshots by j.mu.
func (q *queue) Boost(j *Job, prio int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if prio <= j.Priority {
		return
	}
	j.mu.Lock()
	j.Priority = prio
	j.mu.Unlock()
	for i := range q.items {
		if q.items[i].job == j {
			heap.Fix(&q.items, i)
			return
		}
	}
}

// Remove takes j out of the queue before a worker pops it, reporting
// whether it was still queued: false means a worker already claimed it
// (or the queue closed), and the caller must cancel it through the
// running-job path instead. The queue lock serializes Remove against Pop
// and Close, so exactly one party ever owns a job's settlement.
func (q *queue) Remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range q.items {
		if q.items[i].job == j {
			heap.Remove(&q.items, i)
			return true
		}
	}
	return false
}

// Close marks the queue closed, wakes all blocked workers, and returns the
// jobs still pending so the caller can fail them out.
func (q *queue) Close() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	pending := make([]*Job, 0, len(q.items))
	for _, it := range q.items {
		pending = append(pending, it.job)
	}
	q.items = nil
	q.cond.Broadcast()
	return pending
}

// Depth returns the number of queued (not yet running) jobs.
func (q *queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// queued is one heap entry; seq implements FIFO tie-breaking.
type queued struct {
	job *Job
	seq uint64
}

// jobHeap orders by descending priority, then ascending sequence.
type jobHeap []queued

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(queued)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
