package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// mustHash canonicalizes and hashes, failing the test on error.
func mustHash(t *testing.T, s Spec) string {
	t.Helper()
	if err := s.Canonicalize(); err != nil {
		t.Fatalf("canonicalize %+v: %v", s, err)
	}
	h, err := s.Hash()
	if err != nil {
		t.Fatalf("hash %+v: %v", s, err)
	}
	return h
}

// TestHashFieldOrderInvariant: the hash is computed from the canonicalized
// struct, so JSON field order — the representation clients actually vary —
// can never change the content address.
func TestHashFieldOrderInvariant(t *testing.T) {
	docs := []string{
		`{"kind":"single","graph":"lj","app":"PR","policy":"GRASP","reorder":"DBG","scale":64}`,
		`{"scale":64,"reorder":"DBG","policy":"GRASP","app":"PR","graph":"lj","kind":"single"}`,
		`{"policy":"GRASP","kind":"single","scale":64,"graph":"lj","reorder":"DBG","app":"PR"}`,
	}
	var want string
	for i, doc := range docs {
		var s Spec
		if err := json.Unmarshal([]byte(doc), &s); err != nil {
			t.Fatal(err)
		}
		h := mustHash(t, s)
		if i == 0 {
			want = h
		} else if h != want {
			t.Errorf("doc %d hashed to %s, want %s", i, h, want)
		}
	}
}

// TestHashDefaultsInvariant: spelling out the defaults yields the same
// address as omitting them.
func TestHashDefaultsInvariant(t *testing.T) {
	minimal := mustHash(t, Spec{Kind: KindSingle, Graph: "lj"})
	spelled := mustHash(t, Spec{Kind: KindSingle, Graph: "lj",
		App: "PR", Policy: "GRASP", Reorder: "DBG", Scale: 1})
	if minimal != spelled {
		t.Errorf("defaulted spec hashed to %s, spelled-out to %s", minimal, spelled)
	}
}

// TestHashDiscriminates: changing any result-determining field — scale,
// policy, app, graph, reorder, kind, experiment — must change the address.
func TestHashDiscriminates(t *testing.T) {
	base := Spec{Kind: KindSingle, Graph: "lj", App: "PR", Policy: "GRASP", Reorder: "DBG", Scale: 64}
	seen := map[string]string{mustHash(t, base): "base"}
	variants := map[string]Spec{
		"scale":   {Kind: KindSingle, Graph: "lj", App: "PR", Policy: "GRASP", Reorder: "DBG", Scale: 128},
		"policy":  {Kind: KindSingle, Graph: "lj", App: "PR", Policy: "RRIP", Reorder: "DBG", Scale: 64},
		"app":     {Kind: KindSingle, Graph: "lj", App: "BC", Policy: "GRASP", Reorder: "DBG", Scale: 64},
		"graph":   {Kind: KindSingle, Graph: "tw", App: "PR", Policy: "GRASP", Reorder: "DBG", Scale: 64},
		"reorder": {Kind: KindSingle, Graph: "lj", App: "PR", Policy: "GRASP", Reorder: "Sort", Scale: 64},
		"exp":     {Kind: KindExperiment, Exp: "fig2", Scale: 64},
		"exp2":    {Kind: KindExperiment, Exp: "fig5", Scale: 64},
	}
	for name, s := range variants {
		h := mustHash(t, s)
		if prev, dup := seen[h]; dup {
			t.Errorf("variant %q collides with %q (%s)", name, prev, h)
		}
		seen[h] = name
	}
}

// TestHashFileGraphContent: file-backed graphs are addressed by content,
// so editing the file moves the job to a new address (no stale results),
// while an untouched file keeps its address across calls.
func TestHashFileGraphContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.el")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := func() Spec { return Spec{Kind: KindSingle, Graph: path, App: "PR", Scale: 64} }
	h1 := mustHash(t, spec())
	if h2 := mustHash(t, spec()); h2 != h1 {
		t.Errorf("same file hashed differently: %s vs %s", h1, h2)
	}
	// Rewrite with different content (different length, and a bumped
	// mtime so the digest memo cannot mask the change).
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	if h3 := mustHash(t, spec()); h3 == h1 {
		t.Error("edited file kept its old content address")
	}
}

// TestCanonicalizeRejects covers the validation matrix.
func TestCanonicalizeRejects(t *testing.T) {
	bad := map[string]Spec{
		"unknown kind":        {Kind: "batch"},
		"single sans graph":   {Kind: KindSingle},
		"single with exp":     {Kind: KindSingle, Graph: "lj", Exp: "fig2"},
		"unknown app":         {Kind: KindSingle, Graph: "lj", App: "Dijkstra"},
		"unknown policy":      {Kind: KindSingle, Graph: "lj", Policy: "MRU"},
		"unknown reorder":     {Kind: KindSingle, Graph: "lj", Reorder: "Shuffle"},
		"experiment unknown":  {Kind: KindExperiment, Exp: "fig99"},
		"experiment w/ graph": {Kind: KindExperiment, Exp: "fig2", Graph: "lj"},
	}
	for name, s := range bad {
		if err := s.Canonicalize(); err == nil {
			t.Errorf("%s: Canonicalize accepted %+v", name, s)
		}
	}
	// Hash must also refuse unresolvable graphs (checked at hash time, not
	// canonicalize time, because resolution may touch the filesystem).
	s := Spec{Kind: KindSingle, Graph: "no-such-file.el"}
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Hash(); err == nil {
		t.Error("Hash accepted an unresolvable graph spec")
	}
}
