package jobs

import (
	"bytes"
	"container/heap"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"grasp/internal/exp"
	"grasp/internal/graph"
)

// tinySpec is a spec small enough to simulate in milliseconds (512-vertex
// synthetic dataset, hierarchy scaled to match).
func tinySpec() Spec {
	return Spec{Kind: KindSingle, Graph: "uni", App: "PR", Policy: "GRASP", Scale: 256}
}

// newTestManager returns a running manager over a fresh temp store.
func newTestManager(t *testing.T, workers int) *Manager {
	t.Helper()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(store, workers)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

// idleManager builds a manager with NO worker goroutines, so queue and
// dedup behavior can be asserted deterministically; the test drives
// workers by hand via runWorkers.
func idleManager(t *testing.T) *Manager {
	t.Helper()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return &Manager{
		store:    store,
		workers:  1,
		q:        newQueue(),
		sessions: make(map[uint32]*exp.Session),
		byID:     make(map[string]*Job),
		byHash:   make(map[string]*Job),
	}
}

// runWorkers drains an idleManager's queue with n hand-started workers
// and waits for them to exit.
func runWorkers(m *Manager, n int) {
	for i := 0; i < n; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	for m.q.Depth() > 0 {
		time.Sleep(time.Millisecond)
	}
	m.q.Close()
	m.wg.Wait()
}

// TestInFlightDedup: a second identical submission while the first is
// still queued joins it — same job ID, one execution, one shared result.
func TestInFlightDedup(t *testing.T) {
	m := idleManager(t)
	a, dispA, err := m.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if dispA != Queued {
		t.Fatalf("first submit disposition = %v, want %v", dispA, Queued)
	}
	b, dispB, err := m.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if dispB != Deduped {
		t.Fatalf("second submit disposition = %v, want %v", dispB, Deduped)
	}
	if a != b {
		t.Fatalf("deduped submit returned a different job: %s vs %s", a.ID, b.ID)
	}
	runWorkers(m, 1)
	<-a.Done()
	st := a.Status()
	if st.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	if got := m.Metrics(); got.Executed != 1 || got.DedupHits != 1 {
		t.Errorf("executed=%d dedupHits=%d, want 1 and 1", got.Executed, got.DedupHits)
	}
	if a.Outcome() == nil || a.Outcome().Single == nil {
		t.Fatal("completed single job has no metrics")
	}
}

// TestDedupBoostsPriority: a high-priority duplicate joining a queued
// low-priority job raises the shared job's priority and re-sifts the
// queue, so it pops ahead of work submitted earlier at higher priority.
func TestDedupBoostsPriority(t *testing.T) {
	m := idleManager(t) // no workers: both jobs stay queued
	shared, _, err := m.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	other := tinySpec()
	other.App = "BFS"
	rival, _, err := m.Submit(other, 3)
	if err != nil {
		t.Fatal(err)
	}
	// At priorities (0, 3) the rival would pop first. The boosted
	// duplicate flips that.
	if j, disp, err := m.Submit(tinySpec(), 5); err != nil || disp != Deduped || j != shared {
		t.Fatalf("duplicate submit: job=%v disp=%v err=%v", j, disp, err)
	}
	if got := shared.Status().Priority; got != 5 {
		t.Errorf("shared job priority = %d, want boosted to 5", got)
	}
	if first := m.q.Pop(); first != shared {
		t.Errorf("popped %s first, want the boosted job %s", first.ID, shared.ID)
	}
	if second := m.q.Pop(); second != rival {
		t.Errorf("popped %s second, want %s", second.ID, rival.ID)
	}
}

// TestTerminalJobRetentionBounded: terminal jobs are pollable by ID only
// up to maxRetainedJobs; older ones are evicted from byID (their outcomes
// stay addressable by hash), so byID cannot grow without bound under
// sustained cache-hit traffic.
func TestTerminalJobRetentionBounded(t *testing.T) {
	m := newTestManager(t, 1)
	first, _, err := m.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-first.Done()
	if st := first.Status(); st.State != StateDone {
		t.Fatalf("seed job failed: %s", st.Error)
	}
	// Every further submit is a store hit minting a fresh terminal job.
	var second *Job
	for i := 0; i < maxRetainedJobs+8; i++ {
		j, disp, err := m.Submit(tinySpec(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if disp != Cached {
			t.Fatalf("submit %d disposition = %v, want cached", i, disp)
		}
		if second == nil {
			second = j
		}
	}
	if m.Job(first.ID) != nil || m.Job(second.ID) != nil {
		t.Error("oldest terminal jobs were not evicted past the retention cap")
	}
	m.mu.Lock()
	retained := len(m.byID)
	m.mu.Unlock()
	if retained > maxRetainedJobs {
		t.Errorf("byID holds %d jobs, cap is %d", retained, maxRetainedJobs)
	}
	// The work itself is still addressable by content hash.
	if m.Result(first.Hash) == nil {
		t.Error("outcome evicted with the job; hashes must stay addressable")
	}
}

// TestConcurrentDedupSharedResult hammers one spec from many goroutines
// against a live manager: regardless of how submissions interleave with
// execution (in-flight dedup or store hit), exactly one simulation runs
// and every caller observes the same outcome.
func TestConcurrentDedupSharedResult(t *testing.T) {
	m := newTestManager(t, 2)
	const callers = 16
	outcomes := make([]*Outcome, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, _, err := m.Submit(tinySpec(), 0)
			if err != nil {
				t.Error(err)
				return
			}
			<-j.Done()
			outcomes[i] = j.Outcome()
		}(i)
	}
	wg.Wait()
	mt := m.Metrics()
	if mt.Executed != 1 {
		t.Errorf("executed = %d, want exactly 1 for %d identical submissions", mt.Executed, callers)
	}
	if mt.StoreHits+mt.DedupHits != callers-1 {
		t.Errorf("storeHits(%d)+dedupHits(%d) = %d, want %d",
			mt.StoreHits, mt.DedupHits, mt.StoreHits+mt.DedupHits, callers-1)
	}
	for i, o := range outcomes {
		if o == nil || o.Single == nil {
			t.Fatalf("caller %d got no outcome", i)
		}
		if o.Single.LLC.Misses != outcomes[0].Single.LLC.Misses {
			t.Errorf("caller %d saw different metrics", i)
		}
	}
}

// TestEditedFileGraphReSimulates: editing a file-backed graph between
// submissions to a long-lived manager must both move the job to a new
// content address (the spec hash digests file bytes) and re-ingest the
// file (the graph registry memo is mtime-validated), so the new address
// is never paired with the stale parsed graph and persisted forever.
func TestEditedFileGraphReSimulates(t *testing.T) {
	m := newTestManager(t, 1)
	path := filepath.Join(t.TempDir(), "edit.el")
	writeGraph := func(g *graph.CSR) {
		t.Helper()
		var buf bytes.Buffer
		if err := graph.WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	spec := func() Spec { return Spec{Kind: KindSingle, Graph: path, App: "PR", Scale: 256} }

	writeGraph(graph.GenRMATDefault(6, 4, 13, false))
	j1, disp, err := m.Submit(spec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if disp != Queued {
		t.Fatalf("first submit disposition = %v, want %v", disp, Queued)
	}
	<-j1.Done()
	if st := j1.Status(); st.State != StateDone {
		t.Fatalf("first job failed: %s", st.Error)
	}

	// Replace the file with a 4x larger graph; the future mtime defeats
	// coarse filesystem timestamps in both the digest memo and the
	// registry's parse memo.
	writeGraph(graph.GenRMATDefault(8, 4, 13, false))
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	j2, disp, err := m.Submit(spec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if disp != Queued {
		t.Fatalf("post-edit submit disposition = %v, want %v (new content address)", disp, Queued)
	}
	if j2.Hash == j1.Hash {
		t.Fatal("edited file kept its content address")
	}
	<-j2.Done()
	if st := j2.Status(); st.State != StateDone {
		t.Fatalf("post-edit job failed: %s", st.Error)
	}
	a1 := j1.Outcome().Single.L1.Accesses()
	a2 := j2.Outcome().Single.L1.Accesses()
	if a2 <= a1 {
		t.Errorf("post-edit run traced %d accesses vs %d before: stale graph simulated under the new hash", a2, a1)
	}
}

// TestQueuedJobFailsWhenFileEditedBeforeRun: the spec hash pins a file
// graph's bytes at submit time, but a queued job runs later — if the file
// is edited in between, the job must FAIL rather than persist the edited
// file's metrics under the original bytes' content address.
func TestQueuedJobFailsWhenFileEditedBeforeRun(t *testing.T) {
	m := idleManager(t) // no workers: the job stays queued while we edit
	path := filepath.Join(t.TempDir(), "race.el")
	writeGraph := func(g *graph.CSR) {
		t.Helper()
		var buf bytes.Buffer
		if err := graph.WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeGraph(graph.GenRMATDefault(6, 4, 13, false))
	j, disp, err := m.Submit(Spec{Kind: KindSingle, Graph: path, App: "PR", Scale: 256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if disp != Queued {
		t.Fatalf("submit disposition = %v, want %v", disp, Queued)
	}

	writeGraph(graph.GenRMATDefault(8, 4, 13, false))
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}

	runWorkers(m, 1)
	<-j.Done()
	st := j.Status()
	if st.State != StateFailed {
		t.Fatalf("job state = %s, want failed (file changed while queued)", st.State)
	}
	if m.Result(j.Hash) != nil {
		t.Error("outcome for the edited file was persisted under the original content address")
	}
}

// TestStoreRoundTripAcrossManagers: a second manager over the same
// directory serves the first one's work without re-simulating.
func TestStoreRoundTripAcrossManagers(t *testing.T) {
	dir := t.TempDir()
	store1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(store1, 1)
	j, _, err := m1.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	m1.Shutdown(ctx)

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Len() != 1 {
		t.Fatalf("reopened store holds %d outcomes, want 1", store2.Len())
	}
	m2 := NewManager(store2, 1)
	defer m2.Shutdown(ctx)
	j2, disp, err := m2.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if disp != Cached {
		t.Fatalf("restarted manager disposition = %v, want %v", disp, Cached)
	}
	if !j2.Status().Cached || j2.Outcome() == nil {
		t.Fatal("cached job not marked cached / has no outcome")
	}
	if m2.Metrics().Executed != 0 {
		t.Error("restarted manager re-simulated a stored job")
	}
}

// TestQueuePriorityOrder: higher priority pops first; ties are FIFO.
func TestQueuePriorityOrder(t *testing.T) {
	q := newQueue()
	mk := func(id string, prio int) *Job { return &Job{ID: id, Priority: prio} }
	q.Push(mk("low", 0))
	q.Push(mk("high", 5))
	q.Push(mk("mid", 3))
	q.Push(mk("high2", 5))
	var got []string
	for i := 0; i < 4; i++ {
		got = append(got, q.Pop().ID)
	}
	want := []string{"high", "high2", "mid", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	q.Push(mk("late", 0))
	if pending := q.Close(); len(pending) != 1 || pending[0].ID != "late" {
		t.Errorf("Close returned %v, want the one pending job", pending)
	}
	if q.Pop() != nil {
		t.Error("Pop on a closed queue did not return nil")
	}
	if q.Push(mk("x", 0)) {
		t.Error("Push succeeded on a closed queue")
	}
}

// TestHeapInvariant exercises jobHeap directly against a reference sort.
func TestHeapInvariant(t *testing.T) {
	h := &jobHeap{}
	prios := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	for i, p := range prios {
		heap.Push(h, queued{job: &Job{Priority: p}, seq: uint64(i)})
	}
	last := int(^uint(0) >> 1) // max int
	for h.Len() > 0 {
		it := heap.Pop(h).(queued)
		if it.job.Priority > last {
			t.Fatalf("heap popped priority %d after %d", it.job.Priority, last)
		}
		last = it.job.Priority
	}
}

// TestShutdownDrains: draining fails queued jobs, finishes running ones,
// and rejects new submissions.
func TestShutdownDrains(t *testing.T) {
	m := idleManager(t) // no workers: submissions stay queued
	j, _, err := m.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if st := j.Status(); st.State != StateFailed {
		t.Errorf("queued job after drain: state %s, want failed", st.State)
	}
	if _, _, err := m.Submit(tinySpec(), 0); err != ErrDraining {
		t.Errorf("Submit during drain returned %v, want ErrDraining", err)
	}
	if !m.Draining() {
		t.Error("Draining() false after Shutdown")
	}
}

// TestExperimentJobProgress: an experiment job reports monotonically
// plausible progress and returns the rendered body.
func TestExperimentJobProgress(t *testing.T) {
	m := newTestManager(t, 2)
	j, _, err := m.Submit(Spec{Kind: KindExperiment, Exp: "fig2", Scale: 256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("experiment job failed: %s", st.Error)
	}
	if st.Progress != 1 {
		t.Errorf("terminal progress = %v, want 1", st.Progress)
	}
	o := j.Outcome()
	if o == nil || o.Output == "" {
		t.Fatal("experiment outcome has no rendered body")
	}
	if o.Single != nil {
		t.Error("experiment outcome carries single-run metrics")
	}
}
