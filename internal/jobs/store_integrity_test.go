package jobs

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// shutdownManager drains a manager with a generous deadline.
func shutdownManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// putTestOutcome stores a minimal outcome for a canonicalized spec and
// returns its hash.
func putTestOutcome(t *testing.T, s *Store, app string) string {
	t.Helper()
	spec := Spec{Kind: KindSingle, Graph: "uni", App: app, Scale: 256}
	if err := spec.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	o := &Outcome{Hash: hash, Spec: spec, Output: "metrics for " + app, Finished: time.Now()}
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	return hash
}

// TestStoreChecksumSidecar: Put writes a .sum sidecar recording the exact
// file bytes' digest, and GetRaw returns bytes that match it.
func TestStoreChecksumSidecar(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash := putTestOutcome(t, s, "PR")

	sumBytes, err := os.ReadFile(filepath.Join(dir, hash+".json.sum"))
	if err != nil {
		t.Fatalf("no checksum sidecar: %v", err)
	}
	data, sum, ok := s.GetRaw(hash)
	if !ok {
		t.Fatal("GetRaw missed a stored outcome")
	}
	if want := strings.TrimSpace(string(sumBytes)); sum != want {
		t.Errorf("GetRaw sum %s, sidecar %s", sum, want)
	}
	if sha256Hex(data) != sum {
		t.Error("GetRaw bytes do not hash to the returned sum")
	}
}

// TestStoreQuarantinesCorruptionOnBoot: a flipped byte in a result file
// is caught by the next boot's verification — the entry is quarantined
// (renamed aside, counted) and the store treats the hash as a miss, so
// the job re-executes instead of serving bad bytes.
func TestStoreQuarantinesCorruptionOnBoot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash := putTestOutcome(t, s, "PR")

	path := filepath.Join(dir, hash+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40 // bit-rot in the middle of the body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Get(hash); got != nil {
		t.Error("corrupt outcome was served")
	}
	if got := s2.Corrupt(); got != 1 {
		t.Errorf("corrupt counter = %d, want 1", got)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt file was not preserved aside: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt file still present under its serving name (stat err %v)", err)
	}
}

// TestStoreQuarantinesCorruptionOnRead: corruption landing after boot is
// caught on the next raw read (the replication/serving path) — the entry
// is dropped everywhere so subsequent Gets re-execute.
func TestStoreQuarantinesCorruptionOnRead(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash := putTestOutcome(t, s, "BFS")

	path := filepath.Join(dir, hash+".json")
	if err := os.WriteFile(path, []byte(`{"hash":"`+hash+`","tampered":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.GetRaw(hash); ok {
		t.Error("GetRaw served tampered bytes")
	}
	if got := s.Corrupt(); got != 1 {
		t.Errorf("corrupt counter = %d, want 1", got)
	}
	if got := s.Get(hash); got != nil {
		t.Error("tampered outcome still served from memory after quarantine")
	}
}

// TestStoreBackfillsLegacySum: a result file with no checksum sidecar (a
// pre-checksum store, or a crash between the data and sum renames) is
// trusted once, served, and its sidecar backfilled so later reads verify.
func TestStoreBackfillsLegacySum(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash := putTestOutcome(t, s, "CC")
	sumPath := filepath.Join(dir, hash+".json.sum")
	if err := os.Remove(sumPath); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Get(hash); got == nil || got.Output == "" {
		t.Fatal("legacy (sum-less) outcome was not served")
	}
	if _, err := os.Stat(sumPath); err != nil {
		t.Errorf("checksum sidecar was not backfilled: %v", err)
	}
	if got := s2.Corrupt(); got != 0 {
		t.Errorf("legacy entry counted as corrupt (%d)", got)
	}
}

// TestStorePutRawRoundTrip: replicated bytes persist verbatim, reject
// mismatched self-identification, and serve back with the same digest.
func TestStorePutRawRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash := putTestOutcome(t, src, "PR")
	data, sum, ok := src.GetRaw(hash)
	if !ok {
		t.Fatal("GetRaw missed")
	}

	dst, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.PutRaw(hash, data); err != nil {
		t.Fatal(err)
	}
	got, gotSum, ok := dst.GetRaw(hash)
	if !ok || gotSum != sum || string(got) != string(data) {
		t.Errorf("replicated bytes differ: ok=%v sum match=%v bytes match=%v",
			ok, gotSum == sum, string(got) == string(data))
	}
	if o := dst.Get(hash); o == nil || o.Hash != hash {
		t.Error("replicated outcome not indexed")
	}
	if err := dst.PutRaw("0000", data); err == nil {
		t.Error("PutRaw accepted bytes self-identifying as a different hash")
	}
	if err := dst.PutRaw(hash, []byte("not json")); err == nil {
		t.Error("PutRaw accepted unparseable bytes")
	}
}

// TestCorruptResultReExecutes: end to end through the Manager — a stored
// result that rots on disk is quarantined at the next boot and the same
// spec's resubmission runs again (disposition queued, not cached).
func TestCorruptResultReExecutes(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, 1)
	spec := Spec{Kind: KindSingle, Graph: "uni", App: "PR", Policy: "GRASP", Scale: 256}
	j, disp, err := mgr.Submit(spec, 0)
	if err != nil || disp != Queued {
		t.Fatalf("submit: %v %v", disp, err)
	}
	<-j.Done()
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	shutdownManager(t, mgr)

	path := filepath.Join(dir, j.Hash+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManager(store2, 1)
	defer shutdownManager(t, mgr2)
	j2, disp, err := mgr2.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if disp != Queued {
		t.Fatalf("resubmission of corrupted result = %v, want queued (re-execute)", disp)
	}
	<-j2.Done()
	if st := j2.Status(); st.State != StateDone {
		t.Fatalf("re-execution ended %s: %s", st.State, st.Error)
	}
	if got := mgr2.Metrics().StoreCorrupt; got != 1 {
		t.Errorf("StoreCorrupt metric = %d, want 1", got)
	}
}
