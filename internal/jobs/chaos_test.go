package jobs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"grasp/internal/fail"
	"grasp/internal/trace"
)

// waitDone blocks until the job settles, with a generous bound so a hung
// cancellation point fails the test instead of the whole suite.
func waitDone(t *testing.T, j *Job, within time.Duration) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(within):
		t.Fatalf("job %s did not settle within %v (state %s)", j.ID, within, j.Status().State)
	}
	return j.Status()
}

// TestPanicContainment: a panic inside job execution (a policy bug, a
// corrupt input) fails THAT job — error message carrying the panic and a
// stack — while the daemon keeps serving subsequent jobs.
func TestPanicContainment(t *testing.T) {
	defer fail.Reset()
	m := newTestManager(t, 1)

	fail.ArmPanic("jobs.execute", "simulated policy bug")
	j, _, err := m.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j, time.Minute)
	if st.State != StateFailed {
		t.Fatalf("panicking job state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "simulated policy bug") || !strings.Contains(st.Error, "goroutine") {
		t.Errorf("panic error lacks message or stack:\n%s", st.Error)
	}
	if got := m.Metrics().Panics; got != 1 {
		t.Errorf("panics metric = %d, want 1", got)
	}
	if m.Result(j.Hash) != nil {
		t.Error("panicked job stored an outcome")
	}

	// The worker survived: the next job (same spec — nothing was cached)
	// runs to completion.
	fail.Reset()
	j2, disp, err := m.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if disp != Queued {
		t.Fatalf("post-panic resubmit disposition = %v, want queued", disp)
	}
	if st := waitDone(t, j2, time.Minute); st.State != StateDone {
		t.Fatalf("post-panic job failed: %s", st.Error)
	}
}

// TestStorePutFailureDegrades: a full/failing disk on the outcome write
// does not fail the job — the result still serves from the in-memory
// index — but the manager reports degraded persistence.
func TestStorePutFailureDegrades(t *testing.T) {
	defer fail.Reset()
	m := newTestManager(t, 1)
	fail.Arm("store.put", nil)
	j, _, err := m.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j, time.Minute)
	if st.State != StateDone {
		t.Fatalf("job with failing store write: state %s (%s), want done", st.State, st.Error)
	}
	if m.Result(j.Hash) == nil {
		t.Error("outcome not served from memory after store write failure")
	}
	if !m.Degraded() {
		t.Error("manager not degraded after store write failure")
	}
	if got := m.Metrics().StoreErrors; got == 0 {
		t.Error("storeErrors metric is zero after injected store failure")
	}
}

// TestSpillFailureFailsOnlyJob: disk-full on the trace spill path fails
// the recording job, and only it — the same spec succeeds once the disk
// recovers, because the failed recording was not cached.
func TestSpillFailureFailsOnlyJob(t *testing.T) {
	defer fail.Reset()
	defer trace.SetMemoryBudget(trace.DefaultMemoryBudget)
	m := newTestManager(t, 1)

	trace.SetMemoryBudget(-1) // force every sealed chunk to disk
	fail.Arm("trace.spill.write", nil)
	// fig9 has multi-policy groups, so it runs through the record-once
	// broadcast path — the one that spills (fig2 is single-policy per
	// group and runs execution-driven without recording).
	spec := Spec{Kind: KindExperiment, Exp: "fig9", Scale: 256}
	j, _, err := m.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j, time.Minute)
	if st.State != StateFailed || !strings.Contains(st.Error, "spill") {
		t.Fatalf("spill-failure job: state %s error %q, want failed with spill error", st.State, st.Error)
	}
	if fail.Hits("trace.spill.write") == 0 {
		t.Fatal("spill failpoint never fired; the test exercised nothing")
	}

	fail.Reset()
	trace.SetMemoryBudget(trace.DefaultMemoryBudget)
	j2, disp, err := m.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if disp != Queued {
		t.Fatalf("resubmit after spill failure: disposition %v, want queued (nothing cached)", disp)
	}
	if st := waitDone(t, j2, 2*time.Minute); st.State != StateDone {
		t.Fatalf("resubmit after disk recovered failed: %s", st.Error)
	}
}

// TestCancelQueuedJob: cancelling a job that never started settles it
// immediately with ErrCanceled; repeat cancels and unknown IDs are safe.
func TestCancelQueuedJob(t *testing.T) {
	m := idleManager(t) // no workers: the job stays queued
	j, _, err := m.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.Cancel(j.ID)
	if got != j || !ok {
		t.Fatalf("Cancel(queued) = (%v, %v), want (job, true)", got, ok)
	}
	st := waitDone(t, j, time.Minute)
	if st.State != StateFailed || st.Error != ErrCanceled.Error() {
		t.Fatalf("cancelled queued job: state %s error %q", st.State, st.Error)
	}
	if _, ok := m.Cancel(j.ID); ok {
		t.Error("second Cancel on a settled job reported success")
	}
	if got, ok := m.Cancel("j999999"); got != nil || ok {
		t.Error("Cancel of an unknown ID did not report unknown")
	}
	if got := m.Metrics().Canceled; got != 1 {
		t.Errorf("canceled metric = %d, want 1", got)
	}
	// The dedup slot was released: the same spec is accepted as new work.
	if _, disp, err := m.Submit(tinySpec(), 0); err != nil || disp != Queued {
		t.Errorf("resubmit after cancel: disp=%v err=%v, want queued", disp, err)
	}
	m.q.Close()
}

// TestCancelRunningJob: a running experiment is preempted at its next
// cancellation point — it settles promptly as canceled and stores nothing
// under its hash.
func TestCancelRunningJob(t *testing.T) {
	m := newTestManager(t, 2)
	// fig2 at 1/64 scale runs for seconds — long enough to catch running.
	j, _, err := m.Submit(Spec{Kind: KindExperiment, Exp: "fig2", Scale: 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for j.Status().State == StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := m.Cancel(j.ID); !ok {
		t.Fatalf("Cancel(running) rejected; state now %s", j.Status().State)
	}
	// Cancellation points are one trace chunk / one datapoint apart; 30s is
	// orders of magnitude more than a chunk takes, so a miss here means a
	// loop is not honoring its context.
	st := waitDone(t, j, 30*time.Second)
	if st.State != StateFailed || st.Error != ErrCanceled.Error() {
		t.Fatalf("cancelled running job: state %s error %q", st.State, st.Error)
	}
	if m.Result(j.Hash) != nil {
		t.Error("cancelled job persisted an outcome")
	}
}

// TestJobTimeout: a per-spec wall-clock budget preempts the job with
// ErrTimeout.
func TestJobTimeout(t *testing.T) {
	m := newTestManager(t, 1)
	spec := Spec{Kind: KindExperiment, Exp: "fig2", Scale: 64, TimeoutS: 0.05}
	j, _, err := m.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j, 30*time.Second)
	if st.State != StateFailed || st.Error != ErrTimeout.Error() {
		t.Fatalf("timed-out job: state %s error %q, want %q", st.State, st.Error, ErrTimeout)
	}
}

// TestQueueShedding: with a depth limit, genuinely new work is shed with
// ErrOverloaded while cache hits and dedup joins still land.
func TestQueueShedding(t *testing.T) {
	m := idleManager(t) // no workers: the queue only grows
	m.SetQueueLimit(1)
	first, disp, err := m.Submit(tinySpec(), 0)
	if err != nil || disp != Queued {
		t.Fatalf("first submit: disp=%v err=%v", disp, err)
	}
	if !m.Overloaded() {
		t.Error("Overloaded() false at the queue limit")
	}
	other := tinySpec()
	other.App = "BFS"
	if _, _, err := m.Submit(other, 0); err != ErrOverloaded {
		t.Fatalf("submit beyond limit returned %v, want ErrOverloaded", err)
	}
	// A duplicate of queued work consumes no slot and must not be shed.
	if j, disp, err := m.Submit(tinySpec(), 0); err != nil || disp != Deduped || j != first {
		t.Errorf("dedup join while overloaded: job=%v disp=%v err=%v", j, disp, err)
	}
	if got := m.Metrics().Shed; got != 1 {
		t.Errorf("shed metric = %d, want 1", got)
	}
	m.q.Close()
}

// TestCrashRecoveryRoundTrip is the journal's reason to exist: a daemon
// accepts work, dies without settling it, and the next boot re-enqueues
// and finishes it from the journal alone.
func TestCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Boot 1: accept a job, then "crash" — the manager is abandoned with
	// the job still queued (no workers), exactly as SIGKILL would leave it.
	jn1, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal reports %d pending jobs", len(pending))
	}
	store1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := &Manager{
		store: store1, workers: 1, q: newQueue(),
		byID: make(map[string]*Job), byHash: make(map[string]*Job),
	}
	m1.UseJournal(jn1, nil)
	j, disp, err := m1.Submit(tinySpec(), 2)
	if err != nil || disp != Queued {
		t.Fatalf("submit: disp=%v err=%v", disp, err)
	}
	jn1.Close()

	// Boot 2: recovery finds the unsettled submission and runs it.
	jn2, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Hash != j.Hash || pending[0].Priority != 2 {
		t.Fatalf("recovered pending = %+v, want the crashed job (hash %s, prio 2)", pending, j.Hash)
	}
	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(store2, 1)
	if n := m2.UseJournal(jn2, pending); n != 1 {
		t.Fatalf("UseJournal requeued %d jobs, want 1", n)
	}
	if got := m2.Metrics().Requeued; got != 1 {
		t.Errorf("requeued metric = %d, want 1", got)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for m2.Result(j.Hash) == nil {
		if time.Now().After(deadline) {
			t.Fatal("recovered job never produced a stored outcome")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	m2.Shutdown(ctx)
	jn2.Close()

	// Boot 3: the settled job compacted away — recovery is empty.
	jn3, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	jn3.Close()
	if len(pending) != 0 {
		t.Fatalf("after completion the journal still reports %d pending jobs", len(pending))
	}
}

// TestRecoverySettlesStoredWork: a crash between the outcome's store write
// and the journal's settle record must not re-run the job — recovery sees
// the stored result and settles the journal instead.
func TestRecoverySettlesStoredWork(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	if err := spec.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	_, hash, err := spec.identityAndHash()
	if err != nil {
		t.Fatal(err)
	}

	jn1, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn1.Submitted(hash, spec, 0); err != nil {
		t.Fatal(err)
	}
	jn1.Close()
	store1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store1.Put(&Outcome{Hash: hash, Spec: spec, Output: "done before the crash"}); err != nil {
		t.Fatal(err)
	}

	jn2, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 {
		t.Fatalf("pending = %d, want 1", len(pending))
	}
	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(store2, 1)
	if n := m.UseJournal(jn2, pending); n != 0 {
		t.Fatalf("UseJournal requeued %d jobs for already-stored work, want 0", n)
	}
	if m.Metrics().Executed != 0 {
		t.Error("recovery re-simulated stored work")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	m.Shutdown(ctx)
	jn2.Close()

	jn3, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	jn3.Close()
	if len(pending) != 0 {
		t.Fatalf("journal still pending after recovery settled stored work: %+v", pending)
	}
}

// TestConcurrentCancelSettleDedup is the -race hammer the CI chaos step
// runs: many goroutines submitting one spec while others cancel it, so
// cancel-vs-pop, cancel-vs-settle and dedup-join-vs-settle interleavings
// all get exercised. Every caller must observe a terminal state; nothing
// may deadlock or double-settle (a double close of done would panic).
func TestConcurrentCancelSettleDedup(t *testing.T) {
	m := newTestManager(t, 2)
	const goroutines = 8
	const iters = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				j, _, err := m.Submit(tinySpec(), 0)
				if err != nil {
					t.Error(err)
					return
				}
				if (g+i)%3 == 0 {
					m.Cancel(j.ID)
				}
				select {
				case <-j.Done():
				case <-time.After(2 * time.Minute):
					t.Errorf("goroutine %d iter %d: job %s never settled", g, i, j.ID)
					return
				}
				if st := j.Status(); st.State != StateDone && st.State != StateFailed {
					t.Errorf("settled job in state %s", st.State)
				}
			}
		}(g)
	}
	wg.Wait()
	// With the cancellers gone, the spec must still be computable: either a
	// surviving run already stored it, or one clean execution does now.
	j, _, err := m.Submit(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, j, 2*time.Minute); st.State != StateDone {
		t.Fatalf("post-hammer submit failed: %s", st.Error)
	}
}

// TestQueueRemove: Remove takes a queued job out exactly once and reports
// whether it did — the ownership handshake Cancel relies on.
func TestQueueRemove(t *testing.T) {
	q := newQueue()
	a, b, c := &Job{ID: "a"}, &Job{ID: "b", Priority: 1}, &Job{ID: "c"}
	q.Push(a)
	q.Push(b)
	q.Push(c)
	if !q.Remove(b) {
		t.Fatal("Remove of a queued job returned false")
	}
	if q.Remove(b) {
		t.Fatal("second Remove of the same job returned true")
	}
	if got := q.Pop(); got != a {
		t.Errorf("popped %s, want a (b was removed, c is FIFO-later)", got.ID)
	}
	if q.Remove(a) {
		t.Error("Remove of an already-popped job returned true")
	}
	if got := q.Pop(); got != c {
		t.Errorf("popped %s, want c", got.ID)
	}
	q.Close()
}
