package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzJournalReplay feeds hostile journal bytes — torn lines, truncated
// JSON, binary garbage, giant lines, duplicate and contradictory records —
// through the replay path and holds its invariants: never panic, and
// recovered-pending ⊆ submitted (a job the journal never recorded as
// submitted can never be resurrected). The committed seed corpus includes
// a real torn-line capture (a submit cut mid-append, the crash shape the
// replay exists to survive).
func FuzzJournalReplay(f *testing.F) {
	spec := `{"kind":"experiment","exp":"fig2","scale":64}`
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"op":"submit","hash":"aa","spec":` + spec + `}` + "\n"))
	f.Add([]byte(`{"op":"submit","hash":"aa","spec":` + spec + `}` + "\n" +
		`{"op":"settle","hash":"aa"}` + "\n"))
	f.Add([]byte(`{"op":"settle","hash":"never-submitted"}` + "\n"))
	f.Add([]byte(`{"op":"submit","hash":"aa","spec":` + spec + `}` + "\n" +
		`{"op":"submit","hash":"aa","spec":` + spec + `,"priority":9}` + "\n"))
	// A torn final line: the crash hit mid-append.
	f.Add([]byte(`{"op":"submit","hash":"aa","spec":` + spec + `}` + "\n" +
		`{"op":"submit","hash":"bb","sp`))
	f.Add([]byte("\x00\xff\xfe{]}\n{\"op\":\"submit\"}\n"))
	f.Add([]byte(strings.Repeat("x", 70<<10) + "\n")) // past the scanner's initial buffer

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, journalFile)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		pending, err := readJournal(path)
		if err != nil {
			// Scanner errors (e.g. a line past the 16MiB cap) are legal
			// rejections, not invariant violations.
			return
		}
		// Invariant: every recovered job was actually journaled as a
		// submission with that hash and a spec, and no hash recovers twice.
		submitted := make(map[string]bool)
		for _, line := range strings.Split(string(data), "\n") {
			var rec journalRecord
			if json.Unmarshal([]byte(line), &rec) == nil && rec.Op == "submit" &&
				rec.Hash != "" && rec.Spec != nil {
				submitted[rec.Hash] = true
			}
		}
		seen := make(map[string]bool)
		for _, p := range pending {
			if !submitted[p.Hash] {
				t.Fatalf("recovered %q, which no parseable submit record introduced", p.Hash)
			}
			if seen[p.Hash] {
				t.Fatalf("hash %q recovered twice", p.Hash)
			}
			seen[p.Hash] = true
			if p.Hash == "" {
				t.Fatal("recovered a job with an empty hash")
			}
		}
		// The full boot path must also hold: OpenJournal compacts whatever
		// replay produced and the rewritten journal replays identically.
		jn, pending2, err := OpenJournal(dir)
		if err != nil {
			return
		}
		defer jn.Close()
		if len(pending2) != len(pending) {
			t.Fatalf("OpenJournal recovered %d jobs, readJournal %d", len(pending2), len(pending))
		}
		reread, err := readJournal(path)
		if err != nil {
			t.Fatalf("re-reading the compacted journal: %v", err)
		}
		if len(reread) != len(pending) {
			t.Fatalf("compacted journal replays %d jobs, want %d", len(reread), len(pending))
		}
	})
}
