// Package jobs is the batched, result-cached simulation job engine behind
// the graspd daemon (DESIGN.md Sec. 10): it accepts job specs (single
// simulations or whole paper experiments), content-addresses each by a
// canonical hash of everything that determines its result, serves repeat
// requests from a persistent on-disk store, deduplicates identical
// in-flight requests onto one execution, and schedules distinct work onto
// a bounded worker pool through a priority queue. Simulation itself runs
// on the exp.Session engine, so jobs that share datapoints (two
// experiments over the same matrix, a single run inside an experiment's
// grid) share workloads and results through its singleflight caches too.
package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"grasp/internal/apps"
	"grasp/internal/exp"
	"grasp/internal/graph"
	"grasp/internal/trace"
)

// Job states reported by Status.
const (
	// StateQueued means the job is waiting for a worker.
	StateQueued = "queued"
	// StateRunning means a worker is simulating the job.
	StateRunning = "running"
	// StateDone means the job completed and its outcome is stored.
	StateDone = "done"
	// StateFailed means the job errored (bad spec caught late, or drain).
	StateFailed = "failed"
)

// ErrDraining is returned by Submit once Shutdown has begun: the daemon
// finishes running work but accepts no more.
var ErrDraining = errors.New("jobs: manager is draining")

// Job is one tracked submission. All mutable state is behind a mutex;
// readers use Status for a consistent snapshot and Done to block until
// completion. Deduplicated submissions share one *Job (same ID).
type Job struct {
	// ID is the daemon-unique job identifier (j000001, ...).
	ID string
	// Hash is the content address of the canonicalized spec.
	Hash string
	// Spec is the canonicalized spec.
	Spec Spec
	// Priority orders the queue: higher runs first, ties FIFO. It can
	// only rise after creation (queue.Boost, when a higher-priority
	// duplicate joins this job); writes are guarded by the queue lock
	// plus mu, so Status snapshots stay consistent.
	Priority int
	// Submitted is when the job entered the manager.
	Submitted time.Time

	// graphID is the graph content identity the spec hash digested
	// ("file:<sha256>" for file-backed graphs); runJob re-verifies it
	// after execution so an edit while the job waited cannot persist the
	// new file's metrics under the old content address.
	graphID string

	mu       sync.Mutex
	state    string
	progress float64
	errMsg   string
	started  time.Time
	finished time.Time
	cached   bool
	outcome  *Outcome
	done     chan struct{}
}

// Status is a consistent, JSON-ready snapshot of a job's state.
type Status struct {
	// ID, Hash, Spec and Priority mirror the Job's immutable identity.
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	Spec     Spec   `json:"spec"`
	Priority int    `json:"priority"`
	// State is one of queued, running, done, failed.
	State string `json:"state"`
	// Progress is the completed fraction in [0, 1] (datapoint granularity
	// for experiments; 0-or-1 for single runs).
	Progress float64 `json:"progress"`
	// Cached reports that the outcome came from the result store without
	// re-simulating.
	Cached bool `json:"cached"`
	// Error is the failure message when State is failed.
	Error string `json:"error,omitempty"`
	// Submitted/Started/Finished are the lifecycle timestamps (the zero
	// time, marshaled as 0001-01-01, means the stage was not reached yet).
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
}

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.ID, Hash: j.Hash, Spec: j.Spec, Priority: j.Priority,
		State: j.state, Progress: j.progress, Cached: j.cached, Error: j.errMsg,
		Submitted: j.Submitted, Started: j.started, Finished: j.finished,
	}
}

// Done returns a channel closed when the job reaches done or failed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Outcome returns the completed result, or nil while the job is live or
// after a failure.
func (j *Job) Outcome() *Outcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outcome
}

// setProgress records a completion fraction, keeping the maximum seen so
// out-of-order callbacks from the parallel prefetch never move it back.
func (j *Job) setProgress(p float64) {
	j.mu.Lock()
	if p > j.progress {
		j.progress = p
	}
	j.mu.Unlock()
}

// Disposition classifies what Submit did with a spec.
type Disposition string

// Submit dispositions.
const (
	// Queued: new work, enqueued for a worker.
	Queued Disposition = "queued"
	// Cached: the result store already held the outcome; the returned job
	// is born completed.
	Cached Disposition = "cached"
	// Deduped: an identical job is already queued or running; the returned
	// job IS that job (same ID), and its one execution serves both callers.
	Deduped Disposition = "deduped"
)

// Manager owns the job lifecycle: hash → store lookup → in-flight dedup →
// priority queue → worker pool → store write-back. One Manager serves a
// whole daemon; it is safe for concurrent use.
type Manager struct {
	store   *Store
	workers int

	q  *queue
	wg sync.WaitGroup

	mu            sync.Mutex
	sessions      map[uint32]*exp.Session // one simulation session per scale divisor
	sessionBudget int64                   // FileBytesBudget for future sessions; 0 = exp default
	traceBudget   int64                   // TraceBytesBudget for future sessions; 0 = exp default
	byID          map[string]*Job
	byHash        map[string]*Job // in-flight (queued/running) jobs only
	retired       []string        // terminal job IDs, oldest first, for bounded retention
	draining      bool

	idSeq     atomic.Uint64
	running   atomic.Int64
	submitted atomic.Uint64
	executed  atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	storeHits atomic.Uint64
	dedupHits atomic.Uint64
}

// NewManager starts a manager with the given result store and worker
// count (minimum 1) and returns it running.
func NewManager(store *Store, workers int) *Manager {
	if workers < 1 {
		workers = 1
	}
	m := &Manager{
		store:    store,
		workers:  workers,
		q:        newQueue(),
		sessions: make(map[uint32]*exp.Session),
		byID:     make(map[string]*Job),
		byHash:   make(map[string]*Job),
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Workers returns the size of the worker pool (the concurrency bound).
func (m *Manager) Workers() int { return m.workers }

// Submit canonicalizes and hashes the spec, then either returns the
// stored outcome (Cached), joins an identical in-flight job (Deduped), or
// enqueues new work (Queued). The returned job is registered and can be
// polled by ID in every case.
func (m *Manager) Submit(spec Spec, priority int) (*Job, Disposition, error) {
	if err := spec.Canonicalize(); err != nil {
		return nil, "", err
	}
	gid, hash, err := spec.identityAndHash()
	if err != nil {
		return nil, "", err
	}
	now := time.Now()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, "", ErrDraining
	}
	if o := m.store.Get(hash); o != nil {
		m.storeHits.Add(1)
		m.submitted.Add(1)
		j := &Job{
			ID: m.nextID(), Hash: hash, Spec: spec, Priority: priority,
			Submitted: now, state: StateDone, progress: 1, cached: true,
			outcome: o, done: make(chan struct{}),
		}
		j.finished = now
		close(j.done)
		m.byID[j.ID] = j
		m.retireLocked(j.ID)
		return j, Cached, nil
	}
	if lead := m.byHash[hash]; lead != nil {
		m.dedupHits.Add(1)
		m.submitted.Add(1)
		// The joining caller's priority still counts: the shared job runs
		// at the highest priority any of its submitters asked for.
		m.q.Boost(lead, priority)
		return lead, Deduped, nil
	}
	j := &Job{
		ID: m.nextID(), Hash: hash, Spec: spec, Priority: priority,
		Submitted: now, state: StateQueued, done: make(chan struct{}),
		graphID: gid,
	}
	if !m.q.Push(j) {
		return nil, "", ErrDraining
	}
	m.submitted.Add(1)
	m.byID[j.ID] = j
	m.byHash[hash] = j
	return j, Queued, nil
}

// Job returns the tracked job with the given ID, or nil.
func (m *Manager) Job(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byID[id]
}

// Result returns the stored outcome for a spec hash, or nil.
func (m *Manager) Result(hash string) *Outcome { return m.store.Get(hash) }

// nextID mints a job ID; the caller holds m.mu (only for byID insertion —
// the counter itself is atomic so IDs stay unique regardless).
func (m *Manager) nextID() string {
	return fmt.Sprintf("j%06d", m.idSeq.Add(1))
}

// SetSessionFileBudget overrides the per-session retained-bytes cap for
// file-backed graphs (exp.Config.FileBytesBudget) applied to sessions
// created afterwards; n = 0 keeps the exp default, negative disables the
// cap. Set it before serving traffic — existing sessions keep the budget
// they were created with. The cap does not enter job hashes (it changes
// memory management, never simulated results).
func (m *Manager) SetSessionFileBudget(n int64) {
	m.mu.Lock()
	m.sessionBudget = n
	m.mu.Unlock()
}

// SetSessionTraceBudget overrides the per-session cap on cached
// recordings' encoded bytes (exp.Config.TraceBytesBudget) applied to
// sessions created afterwards; n = 0 keeps the exp default, negative
// disables the cap. Bounding cached recordings bounds the temp-disk spill
// files a long-lived daemon can accumulate (DESIGN.md Sec. 11). Like the
// file budget, it never enters job hashes.
func (m *Manager) SetSessionTraceBudget(n int64) {
	m.mu.Lock()
	m.traceBudget = n
	m.mu.Unlock()
}

// sessionFor returns the simulation session for one scale divisor,
// creating it on first use. Sessions persist for the manager's lifetime,
// so every job at a given scale shares workloads, results and traces;
// what file-backed graphs pin is bounded per session by the file-bytes
// budget (see SetSessionFileBudget).
func (m *Manager) sessionFor(scale uint32) *exp.Session {
	if scale == 0 {
		scale = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[scale]
	if !ok {
		cfg := configForScale(scale)
		cfg.FileBytesBudget = m.sessionBudget
		cfg.TraceBytesBudget = m.traceBudget
		s = exp.NewSession(cfg)
		m.sessions[scale] = s
	}
	return s
}

// worker is the run loop of one pool goroutine: pop by priority, execute,
// write back, until the queue closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.q.Pop()
		if j == nil {
			return
		}
		m.runJob(j)
	}
}

// runJob executes one job and settles it (outcome stored + done closed,
// or failed).
func (m *Manager) runJob(j *Job) {
	m.running.Add(1)
	defer m.running.Add(-1)
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()

	m.executed.Add(1)
	start := time.Now()
	outcome, err := m.execute(j)
	if err != nil {
		m.settle(j, nil, err)
		return
	}
	if err := j.verifyGraphIdentity(); err != nil {
		m.settle(j, nil, err)
		return
	}
	outcome.Hash = j.Hash
	outcome.Spec = j.Spec
	outcome.Elapsed = time.Since(start).Seconds()
	outcome.Finished = time.Now()
	if perr := m.store.Put(outcome); perr != nil {
		// The in-memory index still serves it; losing persistence across
		// restarts is worth surfacing but not failing the job over.
		log.Printf("jobs: persisting %s: %v", j.Hash, perr)
	}
	m.settle(j, outcome, nil)
}

// maxRetainedJobs bounds how many terminal jobs stay pollable by ID: a
// long-lived daemon would otherwise grow byID with every submission
// (including every cache hit, which mints a fresh Job). Evicted jobs 404
// on GET /jobs/{id}; their outcomes remain addressable by hash forever.
const maxRetainedJobs = 4096

// retireLocked records a terminal job for bounded retention, evicting the
// oldest terminal jobs beyond the cap. Caller holds m.mu. In-flight jobs
// are never evicted (they retire only via settle).
func (m *Manager) retireLocked(id string) {
	m.retired = append(m.retired, id)
	for len(m.retired) > maxRetainedJobs {
		delete(m.byID, m.retired[0])
		m.retired = m.retired[1:]
	}
}

// settle moves a finished job to its terminal state and releases the
// in-flight dedup slot.
func (m *Manager) settle(j *Job, o *Outcome, err error) {
	m.mu.Lock()
	delete(m.byHash, j.Hash)
	m.retireLocked(j.ID)
	m.mu.Unlock()
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		m.failed.Add(1)
	} else {
		j.state = StateDone
		j.progress = 1
		j.outcome = o
		m.completed.Add(1)
	}
	j.mu.Unlock()
	close(j.done)
}

// execute runs the simulation work for one job on the session engine.
func (m *Manager) execute(j *Job) (*Outcome, error) {
	s := m.sessionFor(j.Spec.Scale)
	switch j.Spec.Kind {
	case KindSingle:
		r, err := s.Result(j.Spec.Graph, j.Spec.Reorder, j.Spec.App, apps.LayoutMerged, j.Spec.Policy)
		if err != nil {
			return nil, err
		}
		return &Outcome{Single: &r}, nil
	case KindExperiment:
		e, err := exp.ByID(j.Spec.Exp)
		if err != nil {
			return nil, err
		}
		if e.Points != nil {
			points := e.Points()
			if err := s.PrefetchObserved(points, func(done, total int) {
				// Hold the last percent back for the render step.
				j.setProgress(0.99 * float64(done) / float64(total))
			}); err != nil {
				return nil, err
			}
		}
		var buf bytes.Buffer
		if err := e.Run(s, &buf); err != nil {
			return nil, err
		}
		return &Outcome{Output: buf.String()}, nil
	}
	return nil, fmt.Errorf("jobs: unknown job kind %q", j.Spec.Kind)
}

// Shutdown drains the manager: no new submissions are accepted, queued
// jobs that never started are failed out immediately, and running
// simulations are given until ctx expires to finish. It returns nil when
// the pool drained, or ctx.Err() on timeout (simulations cannot be
// preempted mid-trace; a timeout abandons them to process exit).
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.mu.Unlock()
	for _, j := range m.q.Close() {
		m.settle(j, nil, ErrDraining)
	}
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Metrics is a point-in-time counter snapshot for the /metrics endpoint.
type Metrics struct {
	// Submitted counts every accepted Submit (including cached/deduped).
	Submitted uint64
	// Executed counts jobs a worker actually simulated.
	Executed uint64
	// Completed and Failed count terminal executions.
	Completed, Failed uint64
	// StoreHits counts submissions served straight from the result store;
	// DedupHits counts submissions merged onto an in-flight job.
	StoreHits, DedupHits uint64
	// Queued and Running describe the pool right now.
	Queued, Running int
	// StoredOutcomes is the size of the persistent result store.
	StoredOutcomes int
	// SimRuns is the number of distinct sim.Run invocations across all
	// sessions (the engine-level dedup observability counter).
	SimRuns uint64
	// BroadcastGroups counts recording groups served through the
	// decode-once broadcast path across all sessions; BroadcastReplays is
	// the process-wide count of completed broadcast fan-outs and
	// BroadcastConsumers the total replays they served (trace-engine
	// counters, also covering the OPT study's capped-prefix fan-outs).
	// Together with SimRuns these expose whether multi-policy sweeps are
	// actually riding the broadcast decoder.
	BroadcastGroups, BroadcastReplays, BroadcastConsumers uint64
	// TraceBytesRetained is the total encoded bytes of recordings cached
	// across all sessions (bounded per session by the trace budget).
	TraceBytesRetained int64
	// CachedGraphFiles is the registry's count of parsed file graphs
	// shared across requests.
	CachedGraphFiles int
}

// Metrics returns a snapshot of the manager's counters.
func (m *Manager) Metrics() Metrics {
	var simRuns, broadcastGroups uint64
	var traceBytes int64
	m.mu.Lock()
	for _, s := range m.sessions {
		simRuns += s.SimRuns()
		broadcastGroups += s.Broadcasts()
		traceBytes += s.TraceBytesRetained()
	}
	m.mu.Unlock()
	broadcastReplays, broadcastConsumers := trace.BroadcastStats()
	return Metrics{
		BroadcastGroups:    broadcastGroups,
		BroadcastReplays:   broadcastReplays,
		BroadcastConsumers: broadcastConsumers,
		TraceBytesRetained: traceBytes,
		Submitted:        m.submitted.Load(),
		Executed:         m.executed.Load(),
		Completed:        m.completed.Load(),
		Failed:           m.failed.Load(),
		StoreHits:        m.storeHits.Load(),
		DedupHits:        m.dedupHits.Load(),
		Queued:           m.q.Depth(),
		Running:          int(m.running.Load()),
		StoredOutcomes:   m.store.Len(),
		SimRuns:          simRuns,
		CachedGraphFiles: graph.CachedFiles(),
	}
}
