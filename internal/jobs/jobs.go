// Package jobs is the batched, result-cached simulation job engine behind
// the graspd daemon (DESIGN.md Sec. 10): it accepts job specs (single
// simulations or whole paper experiments), content-addresses each by a
// canonical hash of everything that determines its result, serves repeat
// requests from a persistent on-disk store, deduplicates identical
// in-flight requests onto one execution, and schedules distinct work onto
// a bounded worker pool through a priority queue. Simulation itself runs
// on the exp.Session engine, so jobs that share datapoints (two
// experiments over the same matrix, a single run inside an experiment's
// grid) share workloads and results through its singleflight caches too.
package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"grasp/internal/apps"
	"grasp/internal/exp"
	"grasp/internal/fail"
	"grasp/internal/graph"
	"grasp/internal/trace"
)

// Job states reported by Status.
const (
	// StateQueued means the job is waiting for a worker.
	StateQueued = "queued"
	// StateRunning means a worker is simulating the job.
	StateRunning = "running"
	// StateDone means the job completed and its outcome is stored.
	StateDone = "done"
	// StateFailed means the job errored (bad spec caught late, or drain).
	StateFailed = "failed"
)

// ErrDraining is returned by Submit once Shutdown has begun: the daemon
// finishes running work but accepts no more.
var ErrDraining = errors.New("jobs: manager is draining")

// ErrCanceled is the terminal error of a job cancelled through Cancel:
// the work was preempted at the next cancellation point, never completed,
// and nothing was stored under its hash.
var ErrCanceled = errors.New("jobs: canceled")

// ErrTimeout is the terminal error of a job that exceeded its wall-clock
// budget (Spec.TimeoutS, or the manager's default deadline).
var ErrTimeout = errors.New("jobs: deadline exceeded")

// ErrOverloaded is returned by Submit when the queue is at its configured
// depth limit: the daemon sheds the new work instead of accumulating an
// unbounded backlog. The submission had no effect; clients retry later
// (the HTTP layer translates this to 503 + Retry-After).
var ErrOverloaded = errors.New("jobs: queue full")

// Job is one tracked submission. All mutable state is behind a mutex;
// readers use Status for a consistent snapshot and Done to block until
// completion. Deduplicated submissions share one *Job (same ID).
type Job struct {
	// ID is the daemon-unique job identifier (j000001, ...).
	ID string
	// Hash is the content address of the canonicalized spec.
	Hash string
	// Spec is the canonicalized spec.
	Spec Spec
	// Priority orders the queue: higher runs first, ties FIFO. It can
	// only rise after creation (queue.Boost, when a higher-priority
	// duplicate joins this job); writes are guarded by the queue lock
	// plus mu, so Status snapshots stay consistent.
	Priority int
	// Submitted is when the job entered the manager.
	Submitted time.Time

	// graphID is the graph content identity the spec hash digested
	// ("file:<sha256>" for file-backed graphs); runJob re-verifies it
	// after execution so an edit while the job waited cannot persist the
	// new file's metrics under the old content address.
	graphID string

	// journaled marks jobs whose submission was journaled, so settle
	// knows to journal the matching settlement.
	journaled bool

	mu       sync.Mutex
	state    string
	progress float64
	errMsg   string
	started  time.Time
	finished time.Time
	cached   bool
	outcome  *Outcome
	done     chan struct{}
	// cancelRequested is set by Cancel; a worker that pops the job checks
	// it before starting, closing the race between a cancel of a queued
	// job and the pop that would have run it. cancel is the running job's
	// context canceller, installed by runJob.
	cancelRequested bool
	cancel          context.CancelCauseFunc
}

// Status is a consistent, JSON-ready snapshot of a job's state.
type Status struct {
	// ID, Hash, Spec and Priority mirror the Job's immutable identity.
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	Spec     Spec   `json:"spec"`
	Priority int    `json:"priority"`
	// State is one of queued, running, done, failed.
	State string `json:"state"`
	// Progress is the completed fraction in [0, 1] (datapoint granularity
	// for experiments; 0-or-1 for single runs).
	Progress float64 `json:"progress"`
	// Cached reports that the outcome came from the result store without
	// re-simulating.
	Cached bool `json:"cached"`
	// Error is the failure message when State is failed.
	Error string `json:"error,omitempty"`
	// Submitted/Started/Finished are the lifecycle timestamps (the zero
	// time, marshaled as 0001-01-01, means the stage was not reached yet).
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
}

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.ID, Hash: j.Hash, Spec: j.Spec, Priority: j.Priority,
		State: j.state, Progress: j.progress, Cached: j.cached, Error: j.errMsg,
		Submitted: j.Submitted, Started: j.started, Finished: j.finished,
	}
}

// Done returns a channel closed when the job reaches done or failed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Outcome returns the completed result, or nil while the job is live or
// after a failure.
func (j *Job) Outcome() *Outcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outcome
}

// setProgress records a completion fraction, keeping the maximum seen so
// out-of-order callbacks from the parallel prefetch never move it back.
func (j *Job) setProgress(p float64) {
	j.mu.Lock()
	if p > j.progress {
		j.progress = p
	}
	j.mu.Unlock()
}

// Disposition classifies what Submit did with a spec.
type Disposition string

// Submit dispositions.
const (
	// Queued: new work, enqueued for a worker.
	Queued Disposition = "queued"
	// Cached: the result store already held the outcome; the returned job
	// is born completed.
	Cached Disposition = "cached"
	// Deduped: an identical job is already queued or running; the returned
	// job IS that job (same ID), and its one execution serves both callers.
	Deduped Disposition = "deduped"
)

// Manager owns the job lifecycle: hash → store lookup → in-flight dedup →
// priority queue → worker pool → store write-back. One Manager serves a
// whole daemon; it is safe for concurrent use.
type Manager struct {
	store   *Store
	workers int

	q  *queue
	wg sync.WaitGroup

	// preemptCtx is the parent of every job context; preempt cancels it
	// (cause ErrDraining) when Shutdown's drain deadline expires, pulling
	// every running simulation out at its next cancellation point. Nil in
	// hand-built test managers — jobContext falls back to Background.
	preemptCtx context.Context
	preempt    context.CancelCauseFunc

	// onStored, when set, observes every outcome freshly persisted by this
	// node (not cache hits, not failures): the cluster layer hangs result
	// replication off it. Called from the worker goroutine — implementations
	// must not block (the server's replicator goes async immediately).
	onStored atomic.Pointer[func(hash string)]

	mu             sync.Mutex
	sessions       map[uint32]*exp.Session // one simulation session per scale divisor
	sessionBudget  int64                   // FileBytesBudget for future sessions; 0 = exp default
	traceBudget    int64                   // TraceBytesBudget for future sessions; 0 = exp default
	defaultTimeout time.Duration           // deadline for jobs with no TimeoutS; 0 = none
	queueLimit     int                     // max queued jobs before Submit sheds; 0 = unbounded
	journal        *Journal                // crash-recovery log; nil = no journaling
	byID           map[string]*Job
	byHash         map[string]*Job // in-flight (queued/running) jobs only
	retired        []string        // terminal job IDs, oldest first, for bounded retention
	draining       bool

	idSeq         atomic.Uint64
	running       atomic.Int64
	submitted     atomic.Uint64
	executed      atomic.Uint64
	completed     atomic.Uint64
	failed        atomic.Uint64
	storeHits     atomic.Uint64
	dedupHits     atomic.Uint64
	panics        atomic.Uint64
	canceled      atomic.Uint64
	shed          atomic.Uint64
	requeued      atomic.Uint64
	storeErrors   atomic.Uint64
	journalErrors atomic.Uint64
}

// NewManager starts a manager with the given result store and worker
// count (minimum 1) and returns it running.
func NewManager(store *Store, workers int) *Manager {
	if workers < 1 {
		workers = 1
	}
	m := &Manager{
		store:    store,
		workers:  workers,
		q:        newQueue(),
		sessions: make(map[uint32]*exp.Session),
		byID:     make(map[string]*Job),
		byHash:   make(map[string]*Job),
	}
	m.preemptCtx, m.preempt = context.WithCancelCause(context.Background())
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Workers returns the size of the worker pool (the concurrency bound).
func (m *Manager) Workers() int { return m.workers }

// Submit canonicalizes and hashes the spec, then either returns the
// stored outcome (Cached), joins an identical in-flight job (Deduped), or
// enqueues new work (Queued). The returned job is registered and can be
// polled by ID in every case. With a queue limit configured, Submit sheds
// genuinely new work (never cache hits or dedup joins) with ErrOverloaded
// once the backlog reaches the limit; with a journal attached, a Queued
// disposition implies the submission is fsync'd and survives a crash.
func (m *Manager) Submit(spec Spec, priority int) (*Job, Disposition, error) {
	return m.submit(spec, priority, true)
}

// submit is Submit with control over journaling: crash recovery
// re-enqueues jobs that are already in the journal and must not append
// duplicate submit records for them.
func (m *Manager) submit(spec Spec, priority int, record bool) (*Job, Disposition, error) {
	if err := spec.Canonicalize(); err != nil {
		return nil, "", err
	}
	gid, hash, err := spec.identityAndHash()
	if err != nil {
		return nil, "", err
	}
	now := time.Now()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, "", ErrDraining
	}
	if o := m.store.Get(hash); o != nil {
		m.storeHits.Add(1)
		m.submitted.Add(1)
		j := &Job{
			ID: m.nextID(), Hash: hash, Spec: spec, Priority: priority,
			Submitted: now, state: StateDone, progress: 1, cached: true,
			outcome: o, done: make(chan struct{}),
		}
		j.finished = now
		close(j.done)
		m.byID[j.ID] = j
		m.retireLocked(j.ID)
		return j, Cached, nil
	}
	if lead := m.byHash[hash]; lead != nil {
		m.dedupHits.Add(1)
		m.submitted.Add(1)
		// The joining caller's priority still counts: the shared job runs
		// at the highest priority any of its submitters asked for.
		m.q.Boost(lead, priority)
		return lead, Deduped, nil
	}
	if m.queueLimit > 0 && m.q.Depth() >= m.queueLimit {
		m.shed.Add(1)
		return nil, "", ErrOverloaded
	}
	j := &Job{
		ID: m.nextID(), Hash: hash, Spec: spec, Priority: priority,
		Submitted: now, state: StateQueued, done: make(chan struct{}),
		graphID: gid, journaled: m.journal != nil,
	}
	if !m.q.Push(j) {
		return nil, "", ErrDraining
	}
	if record && m.journal != nil {
		if jerr := m.journal.Submitted(hash, spec, priority); jerr != nil {
			// The job still runs; only its crash durability degraded.
			// Surface through the degraded flag rather than failing the
			// submission.
			m.journalErrors.Add(1)
			log.Printf("jobs: journaling %s: %v", hash, jerr)
		}
	}
	m.submitted.Add(1)
	m.byID[j.ID] = j
	m.byHash[hash] = j
	return j, Queued, nil
}

// Cancel requests cancellation of a job by ID. It returns the job (nil if
// unknown) and whether the request took effect: a queued job is removed
// and settled as failed with ErrCanceled immediately; a running job is
// preempted at its next cancellation point (a trace-chunk or datapoint
// boundary — the caller observes settlement via Done). false with a
// non-nil job means the job had already reached a terminal state.
// Cancelling a deduplicated job cancels it for every submitter that
// joined it.
func (m *Manager) Cancel(id string) (*Job, bool) {
	m.mu.Lock()
	j := m.byID[id]
	m.mu.Unlock()
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed {
		j.mu.Unlock()
		return j, false
	}
	j.cancelRequested = true
	state, cancel := j.state, j.cancel
	j.mu.Unlock()
	m.canceled.Add(1)
	if state == StateQueued && m.q.Remove(j) {
		// The queue lock guarantees no worker will pop it now; settle it
		// here. If Remove lost the race, the worker that popped it sees
		// cancelRequested before starting (or through the cancel func
		// installed by runJob) and settles it itself.
		m.settle(j, nil, ErrCanceled)
		return j, true
	}
	if cancel != nil {
		cancel(ErrCanceled)
	}
	return j, true
}

// UseJournal attaches the crash-recovery journal and re-enqueues the
// pending jobs a previous process left behind (the second return of
// OpenJournal), returning how many were requeued. Pending jobs whose
// outcome is already in the store — the crash hit between the store write
// and the settle record — are settled in the journal instead of re-run.
// Call it once, before serving traffic.
func (m *Manager) UseJournal(jn *Journal, pending []PendingJob) int {
	m.mu.Lock()
	m.journal = jn
	m.mu.Unlock()
	requeued := 0
	for _, p := range pending {
		if m.store.Get(p.Hash) != nil {
			if err := jn.Settled(p.Hash); err != nil {
				m.journalErrors.Add(1)
				log.Printf("jobs: journaling recovered %s: %v", p.Hash, err)
			}
			continue
		}
		if _, disp, err := m.submit(p.Spec, p.Priority, false); err != nil {
			// A spec that no longer canonicalizes (e.g. a deleted graph
			// file) cannot run again; drop it from future recoveries.
			log.Printf("jobs: dropping unrecoverable journaled job %s: %v", p.Hash, err)
			if jerr := jn.Settled(p.Hash); jerr != nil {
				m.journalErrors.Add(1)
			}
		} else if disp == Queued {
			requeued++
			m.requeued.Add(1)
		}
	}
	return requeued
}

// SetDefaultTimeout sets the wall-clock budget applied to jobs that do
// not carry their own Spec.TimeoutS (0 = no default). Set it before
// serving traffic.
func (m *Manager) SetDefaultTimeout(d time.Duration) {
	m.mu.Lock()
	m.defaultTimeout = d
	m.mu.Unlock()
}

// SetQueueLimit bounds the backlog: once the queue holds n jobs, Submit
// sheds new work with ErrOverloaded (0 = unbounded). Cache hits and dedup
// joins are never shed — they consume no queue slot. Set it before
// serving traffic.
func (m *Manager) SetQueueLimit(n int) {
	m.mu.Lock()
	m.queueLimit = n
	m.mu.Unlock()
}

// Overloaded reports whether the queue is at its configured limit (the
// readiness signal behind /readyz).
func (m *Manager) Overloaded() bool {
	m.mu.Lock()
	limit := m.queueLimit
	m.mu.Unlock()
	return limit > 0 && m.q.Depth() >= limit
}

// Degraded reports whether any persistence write (result store or
// journal) has failed over the manager's lifetime: results are still
// served from memory, but crash durability is compromised and the
// operator should look at the disk.
func (m *Manager) Degraded() bool {
	return m.storeErrors.Load()+m.journalErrors.Load() > 0
}

// SetOnStored installs the freshly-persisted-outcome observer (see the
// field doc); the cluster layer uses it to start result replication the
// moment an owner finishes a job. Set it before serving traffic.
func (m *Manager) SetOnStored(hook func(hash string)) {
	m.onStored.Store(&hook)
}

// Store exposes the manager's result store: the cluster layer serves and
// fills raw, checksummed outcome bytes through it.
func (m *Manager) Store() *Store { return m.store }

// Job returns the tracked job with the given ID, or nil.
func (m *Manager) Job(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byID[id]
}

// Result returns the stored outcome for a spec hash, or nil.
func (m *Manager) Result(hash string) *Outcome { return m.store.Get(hash) }

// nextID mints a job ID; the caller holds m.mu (only for byID insertion —
// the counter itself is atomic so IDs stay unique regardless).
func (m *Manager) nextID() string {
	return fmt.Sprintf("j%06d", m.idSeq.Add(1))
}

// SetSessionFileBudget overrides the per-session retained-bytes cap for
// file-backed graphs (exp.Config.FileBytesBudget) applied to sessions
// created afterwards; n = 0 keeps the exp default, negative disables the
// cap. Set it before serving traffic — existing sessions keep the budget
// they were created with. The cap does not enter job hashes (it changes
// memory management, never simulated results).
func (m *Manager) SetSessionFileBudget(n int64) {
	m.mu.Lock()
	m.sessionBudget = n
	m.mu.Unlock()
}

// SetSessionTraceBudget overrides the per-session cap on cached
// recordings' encoded bytes (exp.Config.TraceBytesBudget) applied to
// sessions created afterwards; n = 0 keeps the exp default, negative
// disables the cap. Bounding cached recordings bounds the temp-disk spill
// files a long-lived daemon can accumulate (DESIGN.md Sec. 11). Like the
// file budget, it never enters job hashes.
func (m *Manager) SetSessionTraceBudget(n int64) {
	m.mu.Lock()
	m.traceBudget = n
	m.mu.Unlock()
}

// sessionFor returns the simulation session for one scale divisor,
// creating it on first use. Sessions persist for the manager's lifetime,
// so every job at a given scale shares workloads, results and traces;
// what file-backed graphs pin is bounded per session by the file-bytes
// budget (see SetSessionFileBudget).
func (m *Manager) sessionFor(scale uint32) *exp.Session {
	if scale == 0 {
		scale = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[scale]
	if !ok {
		cfg := configForScale(scale)
		cfg.FileBytesBudget = m.sessionBudget
		cfg.TraceBytesBudget = m.traceBudget
		s = exp.NewSession(cfg)
		m.sessions[scale] = s
	}
	return s
}

// worker is the run loop of one pool goroutine: pop by priority, execute,
// write back, until the queue closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.q.Pop()
		if j == nil {
			return
		}
		m.runJob(j)
	}
}

// jobContext derives the cancellation context one job runs under: child
// of the manager's preempt context (so Shutdown can pull every running
// job out), cancellable per job (Cancel), and deadlined when the spec or
// the manager carries a timeout.
func (m *Manager) jobContext(j *Job) (context.Context, context.CancelCauseFunc) {
	parent := m.preemptCtx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancelCause(parent)
	m.mu.Lock()
	d := m.defaultTimeout
	m.mu.Unlock()
	if j.Spec.TimeoutS > 0 {
		d = time.Duration(j.Spec.TimeoutS * float64(time.Second))
	}
	if d <= 0 {
		return ctx, cancel
	}
	tctx, tcancel := context.WithTimeoutCause(ctx, d, ErrTimeout)
	return tctx, func(cause error) {
		tcancel()
		cancel(cause)
	}
}

// translateRunError rewrites a raw cancellation that bubbled out of the
// simulation engine as the job-level cause — ErrCanceled, ErrTimeout or
// ErrDraining — so the settled error says WHY the job was preempted, not
// just that a context somewhere expired.
func translateRunError(ctx context.Context, err error) error {
	if err == nil || ctx.Err() == nil {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
	}
	return err
}

// runJob executes one job and settles it (outcome stored + done closed,
// or failed).
func (m *Manager) runJob(j *Job) {
	m.running.Add(1)
	defer m.running.Add(-1)
	ctx, cancel := m.jobContext(j)
	defer cancel(nil)
	j.mu.Lock()
	if j.cancelRequested {
		// Cancelled while queued but popped before (or despite) the
		// queue removal; honor the cancel without starting the work.
		j.mu.Unlock()
		m.settle(j, nil, ErrCanceled)
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()

	m.executed.Add(1)
	start := time.Now()
	outcome, err := m.executeRecovered(ctx, j)
	if err != nil {
		m.settle(j, nil, translateRunError(ctx, err))
		return
	}
	if err := j.verifyGraphIdentity(); err != nil {
		m.settle(j, nil, err)
		return
	}
	outcome.Hash = j.Hash
	outcome.Spec = j.Spec
	outcome.Elapsed = time.Since(start).Seconds()
	outcome.Finished = time.Now()
	if perr := m.store.Put(outcome); perr != nil {
		// The in-memory index still serves it; losing persistence across
		// restarts is worth surfacing but not failing the job over.
		m.storeErrors.Add(1)
		log.Printf("jobs: persisting %s: %v", j.Hash, perr)
	} else if hook := m.onStored.Load(); hook != nil {
		(*hook)(j.Hash)
	}
	m.settle(j, outcome, nil)
}

// maxRetainedJobs bounds how many terminal jobs stay pollable by ID: a
// long-lived daemon would otherwise grow byID with every submission
// (including every cache hit, which mints a fresh Job). Evicted jobs 404
// on GET /jobs/{id}; their outcomes remain addressable by hash forever.
const maxRetainedJobs = 4096

// retireLocked records a terminal job for bounded retention, evicting the
// oldest terminal jobs beyond the cap. Caller holds m.mu. In-flight jobs
// are never evicted (they retire only via settle).
func (m *Manager) retireLocked(id string) {
	m.retired = append(m.retired, id)
	for len(m.retired) > maxRetainedJobs {
		delete(m.byID, m.retired[0])
		m.retired = m.retired[1:]
	}
}

// settle moves a finished job to its terminal state and releases the
// in-flight dedup slot. Journaled jobs get a settle record — EXCEPT those
// failed out by a drain: a drain is a restart in progress, and leaving
// them pending means the rebooted daemon re-enqueues and finishes them
// instead of losing acknowledged work.
func (m *Manager) settle(j *Job, o *Outcome, err error) {
	m.mu.Lock()
	delete(m.byHash, j.Hash)
	m.retireLocked(j.ID)
	jn := m.journal
	m.mu.Unlock()
	if j.journaled && jn != nil && !errors.Is(err, ErrDraining) {
		if jerr := jn.Settled(j.Hash); jerr != nil {
			m.journalErrors.Add(1)
			log.Printf("jobs: journaling settlement of %s: %v", j.Hash, jerr)
		}
	}
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		m.failed.Add(1)
	} else {
		j.state = StateDone
		j.progress = 1
		j.outcome = o
		m.completed.Add(1)
	}
	j.mu.Unlock()
	close(j.done)
}

// executeRecovered wraps execute in the manager's fault barrier: a panic
// anywhere under the job — a policy bug, a corrupted graph file, an
// injected fault — becomes that job's failure (stack attached) instead of
// killing the daemon and every other job with it. The "jobs.execute"
// failpoint lets the chaos suite drive both the error and the panic path.
func (m *Manager) executeRecovered(ctx context.Context, j *Job) (o *Outcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			if aerr, ok := trace.AbortError(p); ok {
				// A cooperative-cancellation abort that escaped the
				// engine's own recovery; it is an error, not a fault.
				o, err = nil, aerr
				return
			}
			m.panics.Add(1)
			o, err = nil, fmt.Errorf("jobs: job panicked: %v\n%s", p, debug.Stack())
		}
	}()
	if ferr := fail.Hit("jobs.execute"); ferr != nil {
		return nil, ferr
	}
	return m.execute(ctx, j)
}

// execute runs the simulation work for one job on the session engine,
// honoring ctx at datapoint and trace-chunk boundaries.
func (m *Manager) execute(ctx context.Context, j *Job) (*Outcome, error) {
	s := m.sessionFor(j.Spec.Scale)
	switch j.Spec.Kind {
	case KindSingle:
		if j.Spec.Fidelity == FidelitySampled {
			r, err := s.SampledResultCtx(ctx, j.Spec.Graph, j.Spec.Reorder, j.Spec.App, apps.LayoutMerged, j.Spec.Policy, j.Spec.SampleK)
			if err != nil {
				return nil, err
			}
			return &Outcome{Sampled: &r}, nil
		}
		if len(j.Spec.CorunApps) > 0 {
			mix := append([]string{j.Spec.App}, j.Spec.CorunApps...)
			r, err := s.CorunResultCtx(ctx, j.Spec.Graph, j.Spec.Reorder, mix, j.Spec.CorunRatio, apps.LayoutMerged, j.Spec.Policy)
			if err != nil {
				return nil, err
			}
			return &Outcome{Corun: &r}, nil
		}
		r, err := s.ResultCtx(ctx, j.Spec.Graph, j.Spec.Reorder, j.Spec.App, apps.LayoutMerged, j.Spec.Policy)
		if err != nil {
			return nil, err
		}
		return &Outcome{Single: &r}, nil
	case KindExperiment:
		e, err := exp.ByID(j.Spec.Exp)
		if err != nil {
			return nil, err
		}
		if e.Points != nil {
			points := e.Points()
			if err := s.PrefetchObservedCtx(ctx, points, func(done, total int) {
				// Hold the last percent back for the render step.
				j.setProgress(0.99 * float64(done) / float64(total))
			}); err != nil {
				return nil, err
			}
		}
		if err := trace.ContextErr(ctx); err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := e.Run(s, &buf); err != nil {
			return nil, err
		}
		return &Outcome{Output: buf.String()}, nil
	}
	return nil, fmt.Errorf("jobs: unknown job kind %q", j.Spec.Kind)
}

// shutdownGrace bounds how long Shutdown waits for preempted jobs to
// reach a cancellation point after the drain deadline expired. Generous:
// cancellation points are one trace chunk apart, but a worker can be deep
// in a non-preemptible stretch (a Gorder reordering pass) on a loaded
// host.
const shutdownGrace = 30 * time.Second

// Shutdown drains the manager: no new submissions are accepted, queued
// jobs that never started are failed out immediately, and running
// simulations are given until ctx expires to finish. When the deadline
// passes, the remaining jobs are PREEMPTED (cancelled with cause
// ErrDraining) and given a bounded grace period to unwind through their
// next cancellation point and settle; only if even that expires are they
// abandoned to process exit. Journaled jobs failed by the drain keep
// their pending records, so a rebooted daemon re-enqueues them.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.mu.Unlock()
	for _, j := range m.q.Close() {
		m.settle(j, nil, ErrDraining)
	}
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	if m.preempt != nil {
		m.preempt(ErrDraining)
	}
	grace := time.NewTimer(shutdownGrace)
	defer grace.Stop()
	select {
	case <-drained:
		return nil
	case <-grace.C:
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Metrics is a point-in-time counter snapshot for the /metrics endpoint.
type Metrics struct {
	// Submitted counts every accepted Submit (including cached/deduped).
	Submitted uint64
	// Executed counts jobs a worker actually simulated.
	Executed uint64
	// Completed and Failed count terminal executions.
	Completed, Failed uint64
	// StoreHits counts submissions served straight from the result store;
	// DedupHits counts submissions merged onto an in-flight job.
	StoreHits, DedupHits uint64
	// Panics counts jobs that failed via a recovered panic (the fault-
	// containment barrier); a non-zero value means a simulation crashed
	// without taking the daemon down.
	Panics uint64
	// Canceled counts honored cancellation requests; Shed counts
	// submissions rejected at the queue-depth limit; Requeued counts
	// journaled jobs re-enqueued by crash recovery at boot.
	Canceled, Shed, Requeued uint64
	// StoreErrors and JournalErrors count failed persistence writes
	// (outcome files, journal appends). Any non-zero value sets Degraded.
	StoreErrors, JournalErrors uint64
	// StoreCorrupt counts result files quarantined after failing checksum
	// verification (renamed aside with .corrupt; the job re-executes on
	// its next submission instead of serving bad bytes).
	StoreCorrupt uint64
	// Degraded reports compromised persistence: results still serve from
	// memory, but outcomes or journal records are not reaching disk.
	Degraded bool
	// Queued and Running describe the pool right now.
	Queued, Running int
	// StoredOutcomes is the size of the persistent result store.
	StoredOutcomes int
	// SimRuns is the number of distinct sim.Run invocations across all
	// sessions (the engine-level dedup observability counter).
	SimRuns uint64
	// SampledRuns counts distinct set-sampled fast-tier estimates computed
	// across all sessions (DESIGN.md Sec. 14).
	SampledRuns uint64
	// CorunRuns counts distinct shared-LLC co-run replays computed across
	// all sessions (DESIGN.md Sec. 15).
	CorunRuns uint64
	// BroadcastGroups counts recording groups served through the
	// decode-once broadcast path across all sessions; BroadcastReplays is
	// the process-wide count of completed broadcast fan-outs and
	// BroadcastConsumers the total replays they served (trace-engine
	// counters, also covering the OPT study's capped-prefix fan-outs).
	// Together with SimRuns these expose whether multi-policy sweeps are
	// actually riding the broadcast decoder.
	BroadcastGroups, BroadcastReplays, BroadcastConsumers uint64
	// Skip is the process-wide codec-layer skip accounting of masked
	// (sampled) replays: chunks skipped whole via presence bitmaps vs
	// decoded, their encoded bytes, and records skipped/pruned/delivered
	// (DESIGN.md Sec. 14). Exposes whether the sampled tier is actually
	// dodging decode work in production, not only in BENCH files.
	Skip trace.SkipReport
	// TraceBytesRetained is the total encoded bytes of recordings cached
	// across all sessions (bounded per session by the trace budget).
	TraceBytesRetained int64
	// CachedGraphFiles is the registry's count of parsed file graphs
	// shared across requests.
	CachedGraphFiles int
}

// Metrics returns a snapshot of the manager's counters.
func (m *Manager) Metrics() Metrics {
	var simRuns, sampledRuns, corunRuns, broadcastGroups uint64
	var traceBytes int64
	m.mu.Lock()
	for _, s := range m.sessions {
		simRuns += s.SimRuns()
		sampledRuns += s.SampledRuns()
		corunRuns += s.CorunRuns()
		broadcastGroups += s.Broadcasts()
		traceBytes += s.TraceBytesRetained()
	}
	m.mu.Unlock()
	broadcastReplays, broadcastConsumers := trace.BroadcastStats()
	return Metrics{
		BroadcastGroups:    broadcastGroups,
		BroadcastReplays:   broadcastReplays,
		BroadcastConsumers: broadcastConsumers,
		Skip:               trace.SkipStats(),
		TraceBytesRetained: traceBytes,
		Submitted:          m.submitted.Load(),
		Executed:           m.executed.Load(),
		Completed:          m.completed.Load(),
		Failed:             m.failed.Load(),
		StoreHits:          m.storeHits.Load(),
		DedupHits:          m.dedupHits.Load(),
		Panics:             m.panics.Load(),
		Canceled:           m.canceled.Load(),
		Shed:               m.shed.Load(),
		Requeued:           m.requeued.Load(),
		StoreErrors:        m.storeErrors.Load(),
		JournalErrors:      m.journalErrors.Load(),
		StoreCorrupt:       m.store.Corrupt(),
		Degraded:           m.storeErrors.Load()+m.journalErrors.Load() > 0,
		Queued:             m.q.Depth(),
		Running:            int(m.running.Load()),
		StoredOutcomes:     m.store.Len(),
		SimRuns:            simRuns,
		SampledRuns:        sampledRuns,
		CorunRuns:          corunRuns,
		CachedGraphFiles:   graph.CachedFiles(),
	}
}
