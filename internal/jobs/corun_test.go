package jobs

import (
	"testing"

	"grasp/internal/sim"
)

// TestCorunCanonicalize: the co-run fields' defaulting and validation
// matrix. Co-runs are full-fidelity singles only; the ratio must cover
// the whole mix ([App, CorunApps...]) with positive weights, and an
// explicit uniform ratio canonicalizes away so it content-addresses
// identically to an omitted one.
func TestCorunCanonicalize(t *testing.T) {
	s := Spec{Kind: KindSingle, Graph: "lj", App: "PR", CorunApps: []string{"BFS", "TC"}}
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if s.CorunRatio != nil {
		t.Errorf("omitted ratio canonicalized to %v, want nil", s.CorunRatio)
	}
	s = Spec{Kind: KindSingle, Graph: "lj", App: "PR",
		CorunApps: []string{"BFS"}, CorunRatio: []int{1, 1}}
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if s.CorunRatio != nil {
		t.Errorf("all-ones ratio canonicalized to %v, want nil", s.CorunRatio)
	}
	s = Spec{Kind: KindSingle, Graph: "lj", App: "PR",
		CorunApps: []string{"BFS"}, CorunRatio: []int{2, 1}}
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if len(s.CorunRatio) != 2 || s.CorunRatio[0] != 2 {
		t.Errorf("non-uniform ratio mangled to %v", s.CorunRatio)
	}
	tooWide := make([]string, sim.MaxCorunApps) // 1 + len(CorunApps) = MaxCorunApps + 1
	for i := range tooWide {
		tooWide[i] = "PR"
	}
	bad := map[string]Spec{
		"ratio without apps": {Kind: KindSingle, Graph: "lj", App: "PR", CorunRatio: []int{2, 1}},
		"sampled co-run":     {Kind: KindSingle, Graph: "lj", App: "PR", Fidelity: FidelitySampled, CorunApps: []string{"BFS"}},
		"unknown co-run app": {Kind: KindSingle, Graph: "lj", App: "PR", CorunApps: []string{"NoSuchKernel"}},
		"ratio too short":    {Kind: KindSingle, Graph: "lj", App: "PR", CorunApps: []string{"BFS", "TC"}, CorunRatio: []int{1, 1}},
		"ratio too long":     {Kind: KindSingle, Graph: "lj", App: "PR", CorunApps: []string{"BFS"}, CorunRatio: []int{1, 1, 1}},
		"zero weight":        {Kind: KindSingle, Graph: "lj", App: "PR", CorunApps: []string{"BFS"}, CorunRatio: []int{1, 0}},
		"negative weight":    {Kind: KindSingle, Graph: "lj", App: "PR", CorunApps: []string{"BFS"}, CorunRatio: []int{-1, 1}},
		"mix too wide":       {Kind: KindSingle, Graph: "lj", App: "PR", CorunApps: tooWide},
		"experiment co-run":  {Kind: KindExperiment, Exp: "fig2", CorunApps: []string{"BFS"}},
		"experiment ratio":   {Kind: KindExperiment, Exp: "fig2", CorunRatio: []int{1}},
	}
	for name, s := range bad {
		if err := s.Canonicalize(); err == nil {
			t.Errorf("%s: Canonicalize accepted %+v", name, s)
		}
	}
}

// TestCorunHashDiscriminates: a co-run is a different computation from
// its lead app's solo run, from other mixes, and from other ratios —
// each must get its own content address — while an explicit uniform
// ratio shares the omitted-ratio address.
func TestCorunHashDiscriminates(t *testing.T) {
	point := func() Spec {
		return Spec{Kind: KindSingle, Graph: "lj", App: "PR", Policy: "GRASP", Reorder: "DBG", Scale: 64}
	}
	solo := mustHash(t, point())
	mixA := point()
	mixA.CorunApps = []string{"BFS"}
	hashA := mustHash(t, mixA)
	if hashA == solo {
		t.Error("co-run collides with the lead app's solo address")
	}
	mixB := point()
	mixB.CorunApps = []string{"TC"}
	if h := mustHash(t, mixB); h == hashA {
		t.Error("PR+TC collides with PR+BFS")
	}
	ordered := point()
	ordered.CorunApps = []string{"BFS", "TC"}
	reversed := point()
	reversed.CorunApps = []string{"TC", "BFS"}
	if mustHash(t, ordered) == mustHash(t, reversed) {
		t.Error("mix order is part of the schedule, but the addresses collide")
	}
	weighted := point()
	weighted.CorunApps = []string{"BFS"}
	weighted.CorunRatio = []int{2, 1}
	if h := mustHash(t, weighted); h == hashA {
		t.Error("2:1 ratio collides with uniform")
	}
	uniform := point()
	uniform.CorunApps = []string{"BFS"}
	uniform.CorunRatio = []int{1, 1}
	if h := mustHash(t, uniform); h != hashA {
		t.Errorf("explicit uniform ratio hashed to %s, omitted to %s", h, hashA)
	}
}

// TestCorunJobEndToEnd runs a co-run job through the real manager: the
// outcome must carry the co-run result alone, attribution must partition
// the shared totals, the run must show up in the metrics, and a
// resubmission must be a store hit returning the identical result.
func TestCorunJobEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-run replay skipped in -short mode")
	}
	m := newTestManager(t, 1)
	spec := tinySpec()
	spec.CorunApps = []string{"BFS"}
	spec.CorunRatio = []int{2, 1}
	j, disp, err := m.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if disp != Queued {
		t.Fatalf("disposition = %v, want %v", disp, Queued)
	}
	<-j.Done()
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	o := j.Outcome()
	if o == nil || o.Corun == nil {
		t.Fatal("co-run job completed without a co-run outcome")
	}
	if o.Single != nil || o.Sampled != nil || o.Output != "" {
		t.Error("co-run outcome also carries other tiers' fields")
	}
	r := o.Corun
	if len(r.Apps) != 2 || r.Apps[0].App != "PR" || r.Apps[1].App != "BFS" {
		t.Fatalf("mix = %+v, want [PR BFS]", r.Apps)
	}
	if r.Apps[0].Weight != 2 || r.Apps[1].Weight != 1 {
		t.Errorf("weights = %d:%d, want 2:1", r.Apps[0].Weight, r.Apps[1].Weight)
	}
	var acc, miss uint64
	for _, a := range r.Apps {
		acc += a.LLC.Accesses()
		miss += a.LLC.Misses
	}
	if acc != r.LLC.Accesses() || miss != r.LLC.Misses {
		t.Errorf("attribution (%d acc, %d miss) does not partition shared totals (%d, %d)",
			acc, miss, r.LLC.Accesses(), r.LLC.Misses)
	}
	if r.Unfairness < 1 {
		t.Errorf("unfairness %v < 1", r.Unfairness)
	}
	if got := m.Metrics(); got.CorunRuns != 1 {
		t.Errorf("CorunRuns = %d, want 1", got.CorunRuns)
	}
	j2, disp2, err := m.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if disp2 != Cached {
		t.Fatalf("resubmit disposition = %v, want %v", disp2, Cached)
	}
	<-j2.Done()
	o2 := j2.Outcome()
	if o2 == nil || o2.Corun == nil {
		t.Fatal("cached co-run job lost its outcome")
	}
	if o2.Corun.WeightedSpeedup != r.WeightedSpeedup || o2.Corun.Unfairness != r.Unfairness {
		t.Error("cached co-run outcome differs from the original")
	}
}
