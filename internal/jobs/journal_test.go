package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"grasp/internal/fail"
)

// TestJournalPendingSet: pending = submits − settles, in submission order,
// with duplicate submits collapsed.
func TestJournalPendingSet(t *testing.T) {
	dir := t.TempDir()
	jn, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal pending = %d", len(pending))
	}
	a, b := tinySpec(), tinySpec()
	b.App = "BFS"
	if err := jn.Submitted("hashA", a, 1); err != nil {
		t.Fatal(err)
	}
	if err := jn.Submitted("hashB", b, 0); err != nil {
		t.Fatal(err)
	}
	if err := jn.Submitted("hashA", a, 1); err != nil { // duplicate
		t.Fatal(err)
	}
	if err := jn.Settled("hashA"); err != nil {
		t.Fatal(err)
	}
	jn.Close()

	jn2, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	jn2.Close()
	if len(pending) != 1 || pending[0].Hash != "hashB" || pending[0].Spec.App != "BFS" {
		t.Fatalf("pending = %+v, want only hashB", pending)
	}
}

// TestJournalTornLineTolerated: a crash mid-append leaves a torn final
// line; recovery drops it and keeps every complete record.
func TestJournalTornLineTolerated(t *testing.T) {
	dir := t.TempDir()
	jn, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.Submitted("hashA", tinySpec(), 0); err != nil {
		t.Fatal(err)
	}
	jn.Close()

	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"submit","hash":"hashB","sp`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jn2, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	jn2.Close()
	if len(pending) != 1 || pending[0].Hash != "hashA" {
		t.Fatalf("pending = %+v, want only the complete record", pending)
	}
	// Compaction rewrote the file: the torn fragment is gone for good.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "hashB") {
		t.Errorf("compacted journal still carries the torn line:\n%s", data)
	}
}

// TestJournalCompaction: settled pairs are dropped on open, so the file
// stays proportional to the backlog, not to lifetime submissions.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	jn, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := jn.Submitted("h", tinySpec(), 0); err != nil {
			t.Fatal(err)
		}
		if err := jn.Settled("h"); err != nil {
			t.Fatal(err)
		}
	}
	jn.Close()

	jn2, pending, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	jn2.Close()
	if len(pending) != 0 {
		t.Fatalf("pending = %d after full settle history", len(pending))
	}
	info, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Errorf("compacted journal is %d bytes, want 0 (no backlog)", info.Size())
	}
}

// TestJournalAppendFailureSurfaces: an injected append fault reaches the
// caller (the manager counts it as a journal error and degrades).
func TestJournalAppendFailureSurfaces(t *testing.T) {
	defer fail.Reset()
	jn, _, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	fail.Arm("journal.append", nil)
	if err := jn.Submitted("hashA", tinySpec(), 0); err == nil {
		t.Fatal("injected journal fault did not surface")
	}
	fail.Reset()
	if err := jn.Submitted("hashA", tinySpec(), 0); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
}

// TestJournalFailureDegradesManager: a failing journal never fails the
// submission — the job still queues and runs — but the manager reports
// degraded persistence.
func TestJournalFailureDegradesManager(t *testing.T) {
	defer fail.Reset()
	dir := t.TempDir()
	jn, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	m := newTestManager(t, 1)
	m.UseJournal(jn, nil)
	fail.Arm("journal.append", nil)
	j, disp, err := m.Submit(tinySpec(), 0)
	if err != nil || disp != Queued {
		t.Fatalf("submit with failing journal: disp=%v err=%v, want queued accept", disp, err)
	}
	if st := waitDone(t, j, time.Minute); st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if !m.Degraded() || m.Metrics().JournalErrors == 0 {
		t.Error("manager not degraded after journal append failures")
	}
}
