package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grasp/internal/fail"
	"grasp/internal/sim"
)

// Outcome is the persisted result of one completed job, addressed by the
// spec hash. Exactly one of Single/Output is populated, matching the kind.
type Outcome struct {
	// Hash is the content address of the spec that produced this outcome.
	Hash string `json:"hash"`
	// Spec is the canonicalized job spec.
	Spec Spec `json:"spec"`
	// Single holds the cache metrics of a full-fidelity KindSingle run.
	Single *sim.Result `json:"single,omitempty"`
	// Sampled holds the set-sampled estimate of a sampled-fidelity
	// KindSingle run (exactly one of Single/Sampled/Corun/Output is set).
	Sampled *sim.SampledResult `json:"sampled,omitempty"`
	// Corun holds the shared-LLC co-run metrics of a KindSingle run with
	// corun_apps set (DESIGN.md Sec. 15).
	Corun *sim.CorunResult `json:"corun,omitempty"`
	// Output holds the rendered text body of a KindExperiment run.
	Output string `json:"output,omitempty"`
	// Elapsed is the wall-clock seconds of the execution that produced
	// this outcome. Cache hits return the stored outcome unchanged, so
	// they carry the ORIGINAL simulation's elapsed time — use the job's
	// Cached flag (or the submit disposition), not Elapsed, to detect a
	// hit.
	Elapsed float64 `json:"elapsed_seconds"`
	// Finished is when the simulation completed.
	Finished time.Time `json:"finished"`
}

// Store is the persistent, content-addressed result store: one JSON file
// per outcome under dir, named <hash>.json, written atomically (temp file
// + rename — the same torn-write discipline as the graph registry's .gcsr
// sidecars) and fronted by an in-memory map so repeat hits never touch the
// disk. Safe for concurrent use.
//
// Every persisted file carries a SHA-256 of its exact bytes in a
// <hash>.json.sum sidecar, verified whenever the bytes are read back
// (boot indexing, sibling-process fill-ins, raw serving for cluster
// replication). A mismatch quarantines the entry — the file is renamed
// aside with a .corrupt suffix and counted — so a bit-rotted or tampered
// result re-executes instead of being served, locally or to a replica
// (DESIGN.md Sec. 16). A file with no sidecar (written by a pre-checksum
// daemon, or a crash between the two renames) is trusted once and its
// sidecar backfilled: the window where corruption is undetectable is one
// legacy read, not the store's lifetime.
type Store struct {
	dir     string
	corrupt atomic.Uint64
	mu      sync.RWMutex
	mem     map[string]*Outcome
	sums    map[string]string // hash → hex sha256 of the persisted bytes
}

// OpenStore opens (creating if needed) the result store rooted at dir and
// indexes the outcomes already on disk, so a restarted daemon serves its
// predecessor's results. Entries failing checksum verification are
// quarantined, not served.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	s := &Store{dir: dir, mem: make(map[string]*Outcome), sums: make(map[string]string)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		hash, ok := strings.CutSuffix(name, ".json")
		if !ok || e.IsDir() {
			continue
		}
		if o, sum := s.readFile(hash); o != nil {
			s.mem[hash] = o
			s.sums[hash] = sum
		}
	}
	return s, nil
}

// Len returns the number of stored outcomes.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// Corrupt returns how many entries have been quarantined over the store's
// lifetime (the jobs_store_corrupt_total counter).
func (s *Store) Corrupt() uint64 { return s.corrupt.Load() }

// Get returns the stored outcome for hash, or nil if none exists.
func (s *Store) Get(hash string) *Outcome {
	s.mu.RLock()
	o := s.mem[hash]
	s.mu.RUnlock()
	if o != nil {
		return o
	}
	// A sibling process may have written the file after we indexed.
	if o, sum := s.readFile(hash); o != nil {
		s.mu.Lock()
		s.mem[hash] = o
		s.sums[hash] = sum
		s.mu.Unlock()
		return o
	}
	return nil
}

// GetRaw returns the exact persisted bytes of an outcome with their
// SHA-256 — the serving shape of cluster replication and checksummed
// result federation: the bytes on the wire are the bytes on disk, and the
// receiver re-verifies the digest end to end. The read is verified here
// too; a corrupt file is quarantined, the in-memory entry dropped, and
// (false) returned so the caller treats it as a miss and the job
// re-executes.
func (s *Store) GetRaw(hash string) (data []byte, sum string, ok bool) {
	path := s.path(hash)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", false
	}
	got := sha256Hex(data)
	if want, werr := s.readSum(hash); werr == nil && want != got {
		s.quarantine(hash, fmt.Sprintf("bytes sha256 %s, sidecar records %s", got, want))
		return nil, "", false
	}
	return data, got, true
}

// Put persists the outcome under its hash. Failures to write the disk copy
// are returned but the in-memory index is updated regardless, so the
// running daemon still serves the result.
func (s *Store) Put(o *Outcome) error {
	data, merr := json.MarshalIndent(o, "", "  ")
	if merr == nil {
		data = append(data, '\n')
	}
	s.mu.Lock()
	s.mem[o.Hash] = o
	if merr == nil {
		s.sums[o.Hash] = sha256Hex(data)
	}
	s.mu.Unlock()
	if err := fail.Hit("store.put"); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if merr != nil {
		return fmt.Errorf("jobs: %w", merr)
	}
	return s.writeVerified(o.Hash, data)
}

// PutRaw persists pre-serialized outcome bytes verbatim — the receiving
// half of cluster replication: the caller verified the transfer digest,
// and writing the same bytes keeps the checksum chain intact across
// nodes. The bytes must parse as an Outcome whose Hash field matches.
func (s *Store) PutRaw(hash string, data []byte) error {
	var o Outcome
	if err := json.Unmarshal(data, &o); err != nil {
		return fmt.Errorf("jobs: replicated outcome: %w", err)
	}
	if o.Hash != hash {
		return fmt.Errorf("jobs: replicated outcome self-identifies as %q, want %q", o.Hash, hash)
	}
	s.mu.Lock()
	s.mem[hash] = &o
	s.sums[hash] = sha256Hex(data)
	s.mu.Unlock()
	if err := fail.Hit("store.put"); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return s.writeVerified(hash, data)
}

// writeVerified writes the outcome bytes and their checksum sidecar, each
// atomically (temp + rename), data first: a crash between the renames
// leaves a sum-less file, which the next boot trusts once and backfills —
// never a sidecar vouching for bytes that were not written.
func (s *Store) writeVerified(hash string, data []byte) error {
	if err := s.writeAtomic(s.path(hash), data); err != nil {
		return err
	}
	return s.writeAtomic(s.sumPath(hash), []byte(sha256Hex(data)+"\n"))
}

// writeAtomic writes path via a temp file and rename.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".outcome-tmp-*")
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// path returns the on-disk location of hash's outcome file. Hashes are
// hex, but sanitize anyway so a hostile hash can never escape the dir.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, filepath.Base(hash)+".json")
}

// sumPath returns the checksum sidecar's location ("<hash>.json.sum" —
// the suffix keeps it out of the boot index's *.json scan).
func (s *Store) sumPath(hash string) string { return s.path(hash) + ".sum" }

// readSum loads the recorded checksum for hash from memory or the
// sidecar file.
func (s *Store) readSum(hash string) (string, error) {
	s.mu.RLock()
	sum, ok := s.sums[hash]
	s.mu.RUnlock()
	if ok {
		return sum, nil
	}
	data, err := os.ReadFile(s.sumPath(hash))
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(data)), nil
}

// sha256Hex digests data to lowercase hex.
func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// quarantine moves a corrupt entry aside — <hash>.json becomes
// <hash>.json.corrupt (preserved for forensics, invisible to the index),
// its sidecar is removed and the in-memory entry dropped — so the next
// submission of the spec re-executes instead of serving bad bytes.
func (s *Store) quarantine(hash, why string) {
	s.corrupt.Add(1)
	s.mu.Lock()
	delete(s.mem, hash)
	delete(s.sums, hash)
	s.mu.Unlock()
	path := s.path(hash)
	if err := os.Rename(path, path+".corrupt"); err != nil {
		// Renaming failed (e.g. read-only disk); removing the sidecar alone
		// still keeps the entry out of future verified reads.
		log.Printf("jobs: quarantining %s: %v", hash, err)
	}
	os.Remove(s.sumPath(hash))
	log.Printf("jobs: quarantined corrupt result %s: %s", hash, why)
}

// readFile loads and verifies one outcome from disk, returning nil on any
// failure. A missing file is a plain cache miss; a present file whose
// bytes do not match their recorded checksum, or that no longer parses as
// its own hash's outcome, is CORRUPTION — quarantined and counted, never
// served. A file with no checksum sidecar is a legacy or crash-window
// write: verified structurally (parse + hash match) and its sidecar
// backfilled.
func (s *Store) readFile(hash string) (*Outcome, string) {
	data, err := os.ReadFile(s.path(hash))
	if err != nil {
		return nil, ""
	}
	sum := sha256Hex(data)
	want, werr := s.readSum(hash)
	if werr == nil && want != sum {
		s.quarantine(hash, fmt.Sprintf("bytes sha256 %s, sidecar records %s", sum, want))
		return nil, ""
	}
	var o Outcome
	if err := json.Unmarshal(data, &o); err != nil || o.Hash != hash {
		s.quarantine(hash, "file does not parse as its own outcome")
		return nil, ""
	}
	if werr != nil {
		// Trusted once; recorded so every later read is verified.
		if err := s.writeAtomic(s.sumPath(hash), []byte(sum+"\n")); err != nil {
			log.Printf("jobs: backfilling checksum for %s: %v", hash, err)
		}
	}
	return &o, sum
}
