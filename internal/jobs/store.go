package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"grasp/internal/fail"
	"grasp/internal/sim"
)

// Outcome is the persisted result of one completed job, addressed by the
// spec hash. Exactly one of Single/Output is populated, matching the kind.
type Outcome struct {
	// Hash is the content address of the spec that produced this outcome.
	Hash string `json:"hash"`
	// Spec is the canonicalized job spec.
	Spec Spec `json:"spec"`
	// Single holds the cache metrics of a full-fidelity KindSingle run.
	Single *sim.Result `json:"single,omitempty"`
	// Sampled holds the set-sampled estimate of a sampled-fidelity
	// KindSingle run (exactly one of Single/Sampled/Corun/Output is set).
	Sampled *sim.SampledResult `json:"sampled,omitempty"`
	// Corun holds the shared-LLC co-run metrics of a KindSingle run with
	// corun_apps set (DESIGN.md Sec. 15).
	Corun *sim.CorunResult `json:"corun,omitempty"`
	// Output holds the rendered text body of a KindExperiment run.
	Output string `json:"output,omitempty"`
	// Elapsed is the wall-clock seconds of the execution that produced
	// this outcome. Cache hits return the stored outcome unchanged, so
	// they carry the ORIGINAL simulation's elapsed time — use the job's
	// Cached flag (or the submit disposition), not Elapsed, to detect a
	// hit.
	Elapsed float64 `json:"elapsed_seconds"`
	// Finished is when the simulation completed.
	Finished time.Time `json:"finished"`
}

// Store is the persistent, content-addressed result store: one JSON file
// per outcome under dir, named <hash>.json, written atomically (temp file
// + rename — the same torn-write discipline as the graph registry's .gcsr
// sidecars) and fronted by an in-memory map so repeat hits never touch the
// disk. Safe for concurrent use.
type Store struct {
	dir string
	mu  sync.RWMutex
	mem map[string]*Outcome
}

// OpenStore opens (creating if needed) the result store rooted at dir and
// indexes the outcomes already on disk, so a restarted daemon serves its
// predecessor's results.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	s := &Store{dir: dir, mem: make(map[string]*Outcome)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		hash, ok := strings.CutSuffix(name, ".json")
		if !ok || e.IsDir() {
			continue
		}
		if o := s.readFile(hash); o != nil {
			s.mem[hash] = o
		}
	}
	return s, nil
}

// Len returns the number of stored outcomes.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// Get returns the stored outcome for hash, or nil if none exists.
func (s *Store) Get(hash string) *Outcome {
	s.mu.RLock()
	o := s.mem[hash]
	s.mu.RUnlock()
	if o != nil {
		return o
	}
	// A sibling process may have written the file after we indexed.
	if o = s.readFile(hash); o != nil {
		s.mu.Lock()
		s.mem[hash] = o
		s.mu.Unlock()
	}
	return o
}

// Put persists the outcome under its hash. Failures to write the disk copy
// are returned but the in-memory index is updated regardless, so the
// running daemon still serves the result.
func (s *Store) Put(o *Outcome) error {
	s.mu.Lock()
	s.mem[o.Hash] = o
	s.mu.Unlock()
	if err := fail.Hit("store.put"); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".outcome-tmp-*")
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(o.Hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// path returns the on-disk location of hash's outcome file. Hashes are
// hex, but sanitize anyway so a hostile hash can never escape the dir.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, filepath.Base(hash)+".json")
}

// readFile loads one outcome from disk, returning nil on any failure (a
// missing or torn file just means a cache miss; Put writes atomically so
// torn files only arise from external interference).
func (s *Store) readFile(hash string) *Outcome {
	data, err := os.ReadFile(s.path(hash))
	if err != nil {
		return nil
	}
	var o Outcome
	if err := json.Unmarshal(data, &o); err != nil || o.Hash != hash {
		return nil
	}
	return &o
}
