package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"grasp/internal/apps"
	"grasp/internal/exp"
	"grasp/internal/graph"
	"grasp/internal/reorder"
	"grasp/internal/sim"
)

// Job kinds accepted by Spec.Kind.
const (
	// KindSingle runs one (graph, reorder, app, policy) simulation and
	// returns its cache metrics — the service twin of `graspsim -graph`.
	KindSingle = "single"
	// KindExperiment regenerates one named paper experiment (table/figure)
	// and returns its rendered text body — the twin of `graspsim -exp`.
	KindExperiment = "experiment"
)

// Fidelities accepted by Spec.Fidelity.
const (
	// FidelityFull simulates every LLC set: the exact paper numbers. This
	// is the default; an omitted fidelity canonicalizes to it and its
	// content address is unchanged from before the field existed, so
	// stored results survive the upgrade.
	FidelityFull = "full"
	// FidelitySampled simulates ~1/sample_k of the LLC sets and returns an
	// extrapolated estimate with a confidence interval (DESIGN.md
	// Sec. 14): the fast exploratory tier. Sampled outcomes hash to their
	// own content addresses, so estimates and exact numbers coexist in one
	// store without aliasing.
	FidelitySampled = "sampled"
)

// DefaultSampleK is the sampling divisor a sampled-fidelity spec gets
// when sample_k is omitted.
const DefaultSampleK = 16

// Spec describes one simulation job a client can submit. The zero values
// of optional fields are normalized by Canonicalize, so two specs that
// differ only in spelled-out defaults (or in JSON field order, which never
// reaches the hash) are the same job.
type Spec struct {
	// Kind selects the job shape: KindSingle or KindExperiment.
	Kind string `json:"kind"`
	// Graph names the dataset (lj, pl, tw, ...) or a graph-file path
	// readable by the server. KindSingle only.
	Graph string `json:"graph,omitempty"`
	// App is the application to trace (KindSingle; default PR).
	App string `json:"app,omitempty"`
	// Policy is the LLC replacement policy (KindSingle; default GRASP).
	Policy string `json:"policy,omitempty"`
	// Reorder is the vertex reordering technique (KindSingle; default DBG).
	Reorder string `json:"reorder,omitempty"`
	// Exp is the experiment id (fig5, table1, ...). KindExperiment only.
	Exp string `json:"exp,omitempty"`
	// Scale is the dataset scale divisor; 0 or 1 = full reproduction
	// scale. The simulated hierarchy shrinks with it (exp.ScaledConfig).
	Scale uint32 `json:"scale,omitempty"`
	// Fidelity selects the simulation tier for KindSingle jobs:
	// FidelityFull (default; omitted canonicalizes to it) or
	// FidelitySampled for a set-sampled fast estimate.
	Fidelity string `json:"fidelity,omitempty"`
	// SampleK is the set-sampling divisor for FidelitySampled: ~1/K of the
	// LLC sets are simulated. Must be a power of two; 0 selects
	// DefaultSampleK. 1 is exact (every set) and still reports the
	// estimate form. Only valid with sampled fidelity.
	SampleK uint32 `json:"sample_k,omitempty"`
	// CorunApps names co-running applications: when set, the job replays
	// App plus these apps interleaved into one shared LLC and reports
	// per-app attribution and fairness metrics (DESIGN.md Sec. 15) instead
	// of a single-app result. KindSingle, full fidelity only; the mix is
	// [App, CorunApps...] in order, and apps may repeat.
	CorunApps []string `json:"corun_apps,omitempty"`
	// CorunRatio gives the round-robin interleave weights of the mix, one
	// per app including App itself (so len = 1 + len(CorunApps)); every
	// weight must be >= 1. Omitted = uniform (all 1s, the canonical form —
	// an explicit all-ones ratio hashes identically to an omitted one).
	// Only valid with corun_apps.
	CorunRatio []int `json:"corun_ratio,omitempty"`
	// TimeoutS is an optional wall-clock budget in seconds: the job is
	// cancelled (and fails) once it runs longer. 0 falls back to the
	// server's default deadline, if any. It is a scheduling option, not
	// part of the job's identity — it never enters the content hash, so
	// submissions differing only in timeout dedup onto one execution,
	// which runs under the lead submission's budget.
	TimeoutS float64 `json:"timeout_s,omitempty"`
}

// Canonicalize validates the spec and fills normalized defaults in place,
// so that equal work always produces an identical Spec — the precondition
// for content-addressed hashing.
func (s *Spec) Canonicalize() error {
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.TimeoutS < 0 {
		return fmt.Errorf("jobs: negative timeout_s %g", s.TimeoutS)
	}
	switch s.Kind {
	case KindSingle:
		if s.Exp != "" {
			return fmt.Errorf("jobs: %q job must not set exp", KindSingle)
		}
		if s.Graph == "" {
			return fmt.Errorf("jobs: %q job requires a graph", KindSingle)
		}
		if s.App == "" {
			s.App = "PR"
		}
		if s.Policy == "" {
			s.Policy = "GRASP"
		}
		if s.Reorder == "" {
			s.Reorder = "DBG"
		}
		if !knownApp(s.App) {
			return fmt.Errorf("jobs: unknown app %q; known: %v", s.App, apps.ExtendedNames())
		}
		if _, err := sim.PolicyByName(s.Policy); err != nil {
			return err
		}
		if _, err := reorder.ByName(s.Reorder); err != nil {
			return err
		}
		switch s.Fidelity {
		case "", FidelityFull:
			s.Fidelity = FidelityFull
			if s.SampleK != 0 {
				return fmt.Errorf("jobs: sample_k is only valid with %q fidelity", FidelitySampled)
			}
		case FidelitySampled:
			if s.SampleK == 0 {
				s.SampleK = DefaultSampleK
			}
			if s.SampleK&(s.SampleK-1) != 0 {
				return fmt.Errorf("jobs: sample_k %d is not a power of two", s.SampleK)
			}
			if s.SampleK > 1<<16 {
				return fmt.Errorf("jobs: sample_k %d exceeds the maximum %d", s.SampleK, 1<<16)
			}
		default:
			return fmt.Errorf("jobs: unknown fidelity %q (want %q or %q)", s.Fidelity, FidelityFull, FidelitySampled)
		}
		if len(s.CorunApps) == 0 {
			if len(s.CorunRatio) != 0 {
				return fmt.Errorf("jobs: corun_ratio is only valid with corun_apps")
			}
		} else {
			if s.Fidelity != FidelityFull {
				return fmt.Errorf("jobs: corun_apps is only valid with %q fidelity", FidelityFull)
			}
			if 1+len(s.CorunApps) > sim.MaxCorunApps {
				return fmt.Errorf("jobs: co-run of %d apps exceeds the maximum %d", 1+len(s.CorunApps), sim.MaxCorunApps)
			}
			for _, a := range s.CorunApps {
				if !knownApp(a) {
					return fmt.Errorf("jobs: unknown corun app %q; known: %v", a, apps.ExtendedNames())
				}
			}
			switch {
			case len(s.CorunRatio) == 0:
				// Canonical form: uniform weights stay omitted, so an explicit
				// all-ones ratio normalizes to the same spec (and hash).
			case len(s.CorunRatio) != 1+len(s.CorunApps):
				return fmt.Errorf("jobs: corun_ratio has %d weights for %d apps", len(s.CorunRatio), 1+len(s.CorunApps))
			default:
				uniform := true
				for _, w := range s.CorunRatio {
					if w < 1 {
						return fmt.Errorf("jobs: corun_ratio weight %d, want >= 1", w)
					}
					if w != 1 {
						uniform = false
					}
				}
				if uniform {
					s.CorunRatio = nil
				}
			}
		}
	case KindExperiment:
		if len(s.CorunApps) != 0 || len(s.CorunRatio) != 0 {
			return fmt.Errorf("jobs: %q job must set only exp and scale", KindExperiment)
		}
		if s.Graph != "" || s.App != "" || s.Policy != "" || s.Reorder != "" || s.Fidelity != "" || s.SampleK != 0 {
			return fmt.Errorf("jobs: %q job must set only exp and scale", KindExperiment)
		}
		if _, err := exp.ByID(s.Exp); err != nil {
			return err
		}
	default:
		return fmt.Errorf("jobs: unknown job kind %q (want %q or %q)", s.Kind, KindSingle, KindExperiment)
	}
	return nil
}

// knownApp reports whether name is in the extended application registry.
func knownApp(name string) bool {
	for _, n := range apps.ExtendedNames() {
		if n == name {
			return true
		}
	}
	return false
}

// Config returns the experiment configuration the spec runs under: the
// default hierarchy at scale 1, or exp.ScaledConfig for larger divisors.
func (s Spec) Config() exp.Config { return configForScale(s.Scale) }

// configForScale is the single scale→configuration mapping: the hash
// (Spec.Hash digests the derived geometry) and the simulation session
// (Manager.sessionFor) both derive from here, so a cached result's
// recorded hierarchy can never diverge from the one actually simulated.
func configForScale(scale uint32) exp.Config {
	if scale <= 1 {
		return exp.DefaultConfig()
	}
	return exp.ScaledConfig(scale)
}

// hashVersion is the job-hash format preamble. The persistent result
// store serves outcomes by hash alone, so any semantic change to the
// simulator, the tracers, or an experiment's rendering that is not
// visible through the spec fields below MUST bump this string — otherwise
// a daemon with an old store silently serves pre-change outcomes under
// unchanged addresses. (Dataset generator parameters are already covered
// without a bump: single jobs digest their own graph's parameters and
// experiment jobs digest the whole registry's, so retuning a generator
// moves both kinds to new addresses.)
const hashVersion = "grasp-job-v2"

// Hash content-addresses the job: a canonical, versioned serialization of
// everything that determines the result — graph identity (file-backed
// graphs hash their bytes, so editing a file changes the address; named
// synthetic datasets digest their generator parameters, so retuning a
// generator changes it too), app, policy, reordering, experiment id,
// scale, the derived cache hierarchy geometry and, for sampled-fidelity
// jobs, the fidelity tier and sampling divisor — digested with
// SHA-256. Specs that canonicalize identically hash identically
// regardless of how the client spelled them. The spec must have been
// canonicalized.
func (s Spec) Hash() (string, error) {
	_, hash, err := s.identityAndHash()
	return hash, err
}

// identityAndHash computes the graph identity alongside the content
// address it was digested into. The manager records the identity on the
// job so it can re-verify, after execution, that the file the simulation
// read is still the file the hash pinned — computing the identity a
// second time at submit could observe a different file state than Hash
// did, reintroducing that race.
func (s Spec) identityAndHash() (gid, hash string, err error) {
	switch s.Kind {
	case KindSingle:
		if gid, err = graphIdentity(s.Graph); err != nil {
			return "", "", err
		}
	case KindExperiment:
		// An experiment's result is a function of the whole dataset grid,
		// so its address must move when any registered generator is
		// retuned — not only when a hand-bumped version string remembers to.
		gid = registryIdentity()
	}
	cfg := s.Config()
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00%s\x00%s\x00%s\x00%d\x00",
		hashVersion, s.Kind, gid, s.App, s.Policy, s.Reorder, s.Exp, s.Scale)
	fmt.Fprintf(h, "L1:%d/%d\x00L2:%d/%d\x00LLC:%d/%d\x00",
		cfg.HCfg.L1.SizeBytes, cfg.HCfg.L1.Ways,
		cfg.HCfg.L2.SizeBytes, cfg.HCfg.L2.Ways,
		cfg.HCfg.LLC.SizeBytes, cfg.HCfg.LLC.Ways)
	if s.Fidelity == FidelitySampled {
		// Appended only on the sampled tier: full-fidelity specs keep
		// digesting the exact pre-fidelity byte stream, so every address
		// minted before the field existed still resolves to its stored
		// outcome (the pinned-hash compat test enforces this).
		fmt.Fprintf(h, "fidelity:%s/%d\x00", s.Fidelity, s.SampleK)
	}
	if len(s.CorunApps) > 0 {
		// Same rule for the co-run fields: only co-run specs digest them,
		// so every pre-co-run address — including the sampled tier's — is
		// byte-unchanged (the pre-PR-8 pinned-hash test enforces this).
		fmt.Fprintf(h, "corun:%s", strings.Join(s.CorunApps, ","))
		for _, w := range s.CorunRatio {
			fmt.Fprintf(h, "/%d", w)
		}
		fmt.Fprintf(h, "\x00")
	}
	return gid, hex.EncodeToString(h.Sum(nil)), nil
}

// verifyGraphIdentity re-derives the content identity of a file-backed
// graph after execution: the hash pinned the file's bytes at submit time,
// but the simulation read the file at run time, so an edit while the job
// sat queued (or ran) could otherwise persist the new bytes' metrics
// under the old bytes' address — forever, since stored outcomes never
// expire. A mismatch fails the job; the caller resubmits and the fresh
// spec hashes to the edited file's own address. Synthetic datasets are
// immutable and skip the check.
func (j *Job) verifyGraphIdentity() error {
	if !strings.HasPrefix(j.graphID, "file:") {
		return nil
	}
	gid, err := graphIdentity(j.Spec.Graph)
	if err != nil {
		return fmt.Errorf("jobs: re-verifying graph %q after run: %w", j.Spec.Graph, err)
	}
	if gid != j.graphID {
		return fmt.Errorf("jobs: graph file %q changed while the job was queued or running; resubmit", j.Spec.Graph)
	}
	return nil
}

// fileDigest is one memoized content digest; size and mtime validate it
// against the current file state.
type fileDigest struct {
	size    int64
	modNano int64
	digest  string
}

// fileDigestCache memoizes content digests of file-backed graphs, keyed
// by path (exactly one live entry per file — an edit replaces the entry
// rather than leaking the stale one) and validated by (size, mtime) so an
// edited file re-hashes while steady-state requests never re-read bytes.
var fileDigestCache = struct {
	sync.Mutex
	m map[string]fileDigest
}{m: make(map[string]fileDigest)}

// datasetIdentity renders the content-pinning identity of one registered
// synthetic dataset: the name plus every generator parameter (kind,
// vertex count, degree, alpha, RMAT scale, seed). Generation is
// deterministic, so these pin the content even if the registry is retuned
// later.
func datasetIdentity(ds graph.Dataset) string {
	return fmt.Sprintf("%s;kind=%d;n=%d;deg=%g;alpha=%g;rmat=%d;seed=%d",
		ds.Name, ds.Kind, ds.Vertices, ds.AvgDegree, ds.Alpha, ds.Scale, ds.Seed)
}

// registryIdentity is the combined identity of every registered dataset,
// folded into experiment-job hashes (an experiment draws on the whole
// grid, so retuning any generator must move every experiment's address).
func registryIdentity() string {
	var sb strings.Builder
	sb.WriteString("registry:")
	for _, ds := range graph.Datasets() {
		sb.WriteString(datasetIdentity(ds))
		sb.WriteByte('|')
	}
	return sb.String()
}

// graphIdentity returns the content-addressable identity of a graph spec:
// datasetIdentity for registered synthetic datasets, or "file:<sha256>"
// of the file bytes for file-backed graphs.
func graphIdentity(spec string) (string, error) {
	ds, err := graph.Resolve(spec)
	if err != nil {
		return "", err
	}
	if ds.Kind != graph.KindFile {
		return "name:" + datasetIdentity(ds), nil
	}
	fi, err := os.Stat(ds.Path)
	if err != nil {
		return "", fmt.Errorf("jobs: %w", err)
	}
	fileDigestCache.Lock()
	d, ok := fileDigestCache.m[ds.Path]
	fileDigestCache.Unlock()
	if ok && d.size == fi.Size() && d.modNano == fi.ModTime().UnixNano() {
		return d.digest, nil
	}
	f, err := os.Open(ds.Path)
	if err != nil {
		return "", fmt.Errorf("jobs: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("jobs: %w", err)
	}
	d = fileDigest{size: fi.Size(), modNano: fi.ModTime().UnixNano(),
		digest: "file:" + hex.EncodeToString(h.Sum(nil))}
	fileDigestCache.Lock()
	fileDigestCache.m[ds.Path] = d
	fileDigestCache.Unlock()
	return d.digest, nil
}
