// Interleaved multi-stream replay: the co-run consumer shape of the trace
// engine (DESIGN.md Sec. 15). A broadcast replay fans ONE recording out to
// many LLCs; an interleaved replay does the inverse — it merges MANY
// recordings into one consumer, round-robin in ratio-weighted quanta, the
// way a shared LLC observes the miss streams of co-scheduled cores
// (sim.Multicore's drain loop, lifted to recorded streams). Each delivered
// batch carries the index of the stream it came from, so the consumer can
// attribute shared-cache activity back to the application that caused it.
//
// Determinism: the merged order is a pure function of the streams, their
// weights and the limit — no goroutines, no channels — so a co-run replay
// is exactly reproducible across runs and GOMAXPROCS settings, and a
// single-stream interleave degenerates to the recording order of a plain
// ReplayN (the equivalence the co-run suite pins).
package trace

import (
	"context"
	"fmt"

	"grasp/internal/mem"
)

// InterleaveStream pairs one recorded trace with its round-robin ratio
// weight: the stream issues Weight accesses per turn of the interleave
// (sim.Multicore's QuantumAccesses, per stream). Streams may share one
// *Trace — each entry decodes through its own cursor. A non-nil Mask
// restricts the stream to records whose block congruence class is masked
// (the sampled co-run form): the cursor skips chunks the presence bitmap
// proves irrelevant and prunes in the decode loop, exactly like
// BroadcastMaskedNCtx, while the round-robin rotation stays correct —
// quanta are counted in DELIVERED accesses, so a stream that skips
// chunks simply advances its decode position without disturbing the
// merge order of what it does deliver.
type InterleaveStream struct {
	Trace  *Trace
	Weight int
	Mask   *PresenceMask
}

// interleaveCursor is one stream's private decode position: the next chunk
// to materialize, the decoded accesses of the current chunk, and the
// bounded-prefix progress. Chunks decode self-contained from their header
// base, so a cursor that skips chunks needs no predecessor state. Cursors
// never share scratch space, so two streams over the same spilled trace
// pread independently.
type interleaveCursor struct {
	t       *Trace
	ci      int          // next chunk index to decode
	buf     []mem.Access // decoded accesses of the current chunk
	pos     int          // next undelivered index in buf
	done    int64
	limit   int64
	dead    bool
	mask    *PresenceMask
	skip    *SkipReport
	scratch []uint64
	rbuf    []byte
}

// refill decodes the cursor's next chunk into buf, marking the cursor dead
// when the stream (or its per-stream limit) is exhausted. A masked cursor
// loops: chunks proven empty by their bitmap are skipped without decode,
// and a chunk whose every record prunes yields an empty buf — neither
// means the stream is dead, so the scan continues until something is
// delivered or the stream truly ends. The context is checked here — once
// per chunk per stream, the same cancellation cadence as ReplayNCtx.
func (c *interleaveCursor) refill(ctx context.Context, ctxDone <-chan struct{}) error {
	for {
		if c.done >= c.limit || c.ci >= len(c.t.chunks) {
			c.dead = true
			return nil
		}
		if ctxDone != nil {
			select {
			case <-ctxDone:
				return ContextErr(ctx)
			default:
			}
		}
		ch := &c.t.chunks[c.ci]
		if c.mask != nil && !ch.bitmap.Intersects(*c.mask) && c.done+ch.accs <= c.limit {
			c.skip.ChunksSkipped++
			c.skip.BytesSkipped += ch.sizeBytes()
			c.skip.AccessesSkipped += ch.accs
			c.done += ch.accs
			c.ci++
			continue
		}
		words, err := c.t.materialize(c.ci, &c.scratch, &c.rbuf)
		if err != nil {
			return err
		}
		c.ci++
		if c.mask != nil {
			c.buf, c.done = c.t.decodeAppendMasked(words, c.buf[:0], ch.base, c.done, c.limit, *c.mask, c.skip)
			c.skip.ChunksDecoded++
			c.skip.BytesDecoded += ch.sizeBytes()
		} else {
			c.buf, c.done = c.t.decodeAppend(words, c.buf[:0], ch.base, c.done, c.limit)
		}
		c.pos = 0
		if len(c.buf) > 0 {
			return nil
		}
	}
}

// InterleaveReplay is InterleaveReplayCtx with a background context.
func InterleaveReplay(streams []InterleaveStream, limit int64, consume func(stream int, accs []mem.Access)) error {
	return InterleaveReplayCtx(context.Background(), streams, limit, consume)
}

// InterleaveReplayCtx merges the streams' decoded access sequences into
// consume, deterministically: streams take turns in argument order, stream
// i delivering up to Weight_i accesses per turn, until every stream is
// exhausted (limit > 0 caps the accesses taken from EACH stream — the
// bounded-prefix form, mirroring ReplayN). A stream that runs out simply
// drops from the rotation; the survivors keep their weights, as live cores
// keep issuing after a neighbor finishes.
//
// consume(stream, accs) receives each stream's accesses in that stream's
// recording order, in batches of at most Weight_stream (smaller at chunk
// seams); the concatenation of all batches for one stream is exactly what
// a dedicated ReplayN of that trace would have decoded. Batches borrow the
// cursor's decode buffer and are only valid during the call — consumers
// must not retain them. consume runs on the calling goroutine; an
// unsynchronized LLC simulation is a valid consumer.
func InterleaveReplayCtx(ctx context.Context, streams []InterleaveStream, limit int64, consume func(stream int, accs []mem.Access)) error {
	_, err := InterleaveReplayMaskedCtx(ctx, streams, limit, consume)
	return err
}

// InterleaveReplayMaskedCtx is InterleaveReplayCtx returning the
// aggregate SkipReport of the masked streams (zero when no stream
// carries a Mask). On success the report is added to the process-wide
// SkipStats, matching the broadcast and solo masked paths.
func InterleaveReplayMaskedCtx(ctx context.Context, streams []InterleaveStream, limit int64, consume func(stream int, accs []mem.Access)) (SkipReport, error) {
	var rep SkipReport
	if len(streams) == 0 {
		return rep, fmt.Errorf("trace: interleave needs at least one stream")
	}
	masked := false
	cursors := make([]interleaveCursor, len(streams))
	for i, st := range streams {
		if st.Trace == nil {
			return rep, fmt.Errorf("trace: interleave stream %d has no trace", i)
		}
		if st.Weight <= 0 {
			return rep, fmt.Errorf("trace: interleave stream %d has weight %d, want >= 1", i, st.Weight)
		}
		if st.Trace.destroyed.Load() {
			return rep, errReleased
		}
		lim := st.Trace.n
		if limit > 0 && limit < lim {
			lim = limit
		}
		cursors[i] = interleaveCursor{t: st.Trace, limit: lim, dead: lim == 0, mask: st.Mask, skip: &rep}
		if st.Mask != nil {
			masked = true
		}
	}
	ctxDone := ctx.Done()
	alive := 0
	for i := range cursors {
		if !cursors[i].dead {
			alive++
		}
	}
	for alive > 0 {
		for i := range cursors {
			c := &cursors[i]
			if c.dead {
				continue
			}
			q := streams[i].Weight
			for q > 0 {
				if c.pos >= len(c.buf) {
					if err := c.refill(ctx, ctxDone); err != nil {
						return rep, err
					}
					if c.dead {
						alive--
						break
					}
				}
				take := len(c.buf) - c.pos
				if take > q {
					take = q
				}
				consume(i, c.buf[c.pos:c.pos+take])
				c.pos += take
				q -= take
			}
		}
	}
	if masked {
		countSkip(rep)
	}
	return rep, nil
}
