// Broadcast replay: the decode-once half of the trace engine. A plain
// ReplayN pays the full decode (spill read-back, word unpacking, delta
// reconstruction) per replay, so an N-policy sweep of one recording decodes
// the same encoded stream N times. BroadcastN decodes each chunk exactly
// once into a slab of mem.Access values and fans the slab out to every
// consumer, so a group pays one decode regardless of how many policies
// replay it — and the consumers run on their own goroutines, so the
// replays of one recording proceed in parallel on multi-core hosts
// (DESIGN.md Sec. 12).
//
// Ownership and recycling: decoded slabs live in a fixed-size ring. The
// producer takes a free slab, decodes a chunk into it, sets its refcount
// to the consumer count and hands it to every consumer channel; each
// consumer drops one reference after applying the slab, and the last drop
// returns the slab to the ring. The ring bounds decoded-slab memory
// (slowest consumer applies backpressure through free-slab starvation) and
// the per-consumer channel capacity equals the ring size, so the producer
// never blocks on a channel send — only on slab reuse.
package trace

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"grasp/internal/cache"
	"grasp/internal/fail"
	"grasp/internal/mem"
)

// broadcastSlabs is the ring size: enough in-flight slabs that the
// producer can decode ahead of the consumers, small enough that the
// decoded working set (broadcastSlabs x chunkWords x sizeof(mem.Access))
// stays a few MB.
const broadcastSlabs = 4

// Broadcast counters (process-wide observability): completed broadcast
// fan-outs and the total consumers they served. The CI bench smoke and the
// graspd /metrics endpoint read these to assert the decode-once path is
// actually taken for multi-policy groups.
var (
	broadcastRuns      atomic.Uint64
	broadcastConsumers atomic.Uint64
)

// BroadcastStats returns the process-wide broadcast counters: how many
// broadcast replays completed and the total consumers they fanned out to.
func BroadcastStats() (runs, consumers uint64) {
	return broadcastRuns.Load(), broadcastConsumers.Load()
}

// slab is one decoded chunk in flight from the producer to the consumers.
type slab struct {
	accs []mem.Access
	refs atomic.Int32
}

// Broadcast decodes the whole trace once and fans every decoded slab out
// to each consumer, which receives the exact access sequence (in recording
// order, split at chunk boundaries) that a dedicated ReplayN would have
// decoded for it. Consumers run concurrently with each other and with the
// decode; each individual consumer is invoked sequentially, so an
// unsynchronized LLC simulation is a valid consumer.
func (t *Trace) Broadcast(consumers []func(accs []mem.Access)) error {
	return t.BroadcastN(0, consumers)
}

// BroadcastN is Broadcast over at most limit accesses (limit <= 0: all) —
// the OPT study fans its bounded-prefix replays out this way.
func (t *Trace) BroadcastN(limit int64, consumers []func(accs []mem.Access)) error {
	return t.BroadcastNCtx(context.Background(), limit, consumers)
}

// BroadcastNCtx is BroadcastN with cooperative cancellation and fault
// containment. The producer checks the context once per chunk, so a
// cancelled fan-out stops decoding within one chunk boundary (the
// consumers then drain their bounded channels and exit). A panic inside a
// consumer is recovered ON the consumer goroutine — letting it escape
// would kill the whole process — and the goroutine keeps draining its
// channel, dropping slab references without applying them, because the
// producer blocks on slab reuse and a consumer that simply died would
// deadlock it. The first panic is reported as the fan-out's error, stack
// attached.
func (t *Trace) BroadcastNCtx(ctx context.Context, limit int64, consumers []func(accs []mem.Access)) error {
	return t.broadcastNCtx(ctx, limit, nil, consumers, nil)
}

// BroadcastMaskedNCtx is BroadcastNCtx restricted to records whose
// block-address congruence class is in mask — the sampled tier's fan-out
// (DESIGN.md Sec. 14). Chunks whose presence bitmap does not intersect
// mask are skipped whole (no materialization, no pread for spilled
// chunks, no decode); intersecting chunks decode with in-loop pruning,
// so slabs carry only the masked residue and every consumer's filter
// loop shrinks by the skip ratio. Consumers see exactly the subsequence
// of accesses a full BroadcastNCtx would deliver whose class is masked,
// in order — with sets <= PresenceBuckets that IS the sampled-set
// subsequence. The per-run SkipReport is returned and, on success, added
// to the process-wide SkipStats.
func (t *Trace) BroadcastMaskedNCtx(ctx context.Context, limit int64, mask PresenceMask, consumers []func(accs []mem.Access)) (SkipReport, error) {
	var rep SkipReport
	err := t.broadcastNCtx(ctx, limit, &mask, consumers, &rep)
	if err == nil {
		countSkip(rep)
	}
	return rep, err
}

// broadcastNCtx is the shared producer/fan-out engine; mask == nil is the
// full-fidelity path, mask != nil the sampled skip path (rep non-nil).
func (t *Trace) broadcastNCtx(ctx context.Context, limit int64, mask *PresenceMask, consumers []func(accs []mem.Access), rep *SkipReport) error {
	if t.destroyed.Load() {
		return errReleased
	}
	if len(consumers) == 0 {
		return nil
	}
	if limit <= 0 || limit > t.n {
		limit = t.n
	}
	n := len(consumers)
	free := make(chan *slab, broadcastSlabs)
	for i := 0; i < broadcastSlabs; i++ {
		free <- &slab{accs: make([]mem.Access, 0, chunkWords)}
	}
	chans := make([]chan *slab, n)
	for i := range chans {
		// Capacity = ring size: at most broadcastSlabs slabs exist and a
		// slab is in each channel at most once, so sends below never block.
		chans[i] = make(chan *slab, broadcastSlabs)
	}
	var panicErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for i := range consumers {
		wg.Add(1)
		go func(ch chan *slab, fn func([]mem.Access)) {
			defer wg.Done()
			dead := false
			for s := range ch {
				if !dead {
					func() {
						defer func() {
							if p := recover(); p != nil {
								dead = true
								err := fmt.Errorf("trace: broadcast consumer panicked: %v\n%s", p, debug.Stack())
								panicErr.CompareAndSwap(nil, &err)
							}
						}()
						fn(s.accs)
					}()
				}
				if s.refs.Add(-1) == 0 {
					free <- s
				}
			}
		}(chans[i], consumers[i])
	}
	ctxDone := ctx.Done()
	var scratch []uint64
	var buf []byte
	var done int64
	var err error
	for ci := 0; ci < len(t.chunks) && done < limit; ci++ {
		if ctxDone != nil {
			select {
			case <-ctxDone:
				err = ContextErr(ctx)
			default:
			}
			if err != nil {
				break
			}
		}
		c := &t.chunks[ci]
		// Whole-chunk skip: the presence bitmap proves no masked access
		// inside. A chunk straddling the limit still decodes, so a bounded
		// masked fan-out delivers exactly the masked subsequence of the
		// first limit accesses.
		if mask != nil && !c.bitmap.Intersects(*mask) && done+c.accs <= limit {
			rep.ChunksSkipped++
			rep.BytesSkipped += c.sizeBytes()
			rep.AccessesSkipped += c.accs
			done += c.accs
			continue
		}
		if err = fail.Hit("trace.replay.chunk"); err != nil {
			err = fmt.Errorf("trace: replay: %w", err)
			break
		}
		var words []uint64
		words, err = t.materialize(ci, &scratch, &buf)
		if err != nil {
			break
		}
		s := <-free
		if mask != nil {
			s.accs, done = t.decodeAppendMasked(words, s.accs[:0], c.base, done, limit, *mask, rep)
			rep.ChunksDecoded++
			rep.BytesDecoded += c.sizeBytes()
			if len(s.accs) == 0 {
				// Everything pruned: nothing for consumers, recycle directly.
				free <- s
				continue
			}
		} else {
			s.accs, done = t.decodeAppend(words, s.accs[:0], c.base, done, limit)
		}
		s.refs.Store(int32(n))
		for _, ch := range chans {
			ch <- s
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if err == nil {
		if pe := panicErr.Load(); pe != nil {
			return *pe
		}
		broadcastRuns.Add(1)
		broadcastConsumers.Add(uint64(n))
	}
	return err
}

// decodeAppend decodes one chunk's words into dst, stopping once done
// reaches limit, and returns the extended slice plus the progress count.
// base is the chunk's self-contained block-delta seed (chunk.base), so a
// chunk decodes in isolation; chunks never split an escape pair (the
// recorder seals early), so the scan always terminates on a record
// boundary.
func (t *Trace) decodeAppend(words []uint64, dst []mem.Access, base uint64, done, limit int64) ([]mem.Access, int64) {
	lastBlock := base
	for i := 0; i < len(words) && done < limit; i++ {
		w := words[i]
		var block uint64
		var pc uint32
		if idx := (w >> pcShift) & pcMask; idx == escapeIdx {
			pc = uint32(w >> deltaShift)
			i++
			block = words[i]
		} else {
			pc = t.pcs[idx]
			block = lastBlock + uint64(int64(w)>>deltaShift)
		}
		lastBlock = block
		dst = append(dst, mem.Access{
			Addr:     block<<cache.BlockBits | (w>>low6Shift)&low6Mask,
			PC:       pc,
			Write:    w&flagWrite != 0,
			Property: w&flagProp != 0,
		})
		done++
	}
	return dst, done
}

// decodeAppendMasked is decodeAppend with in-loop pruning: every word is
// still scanned (the delta chain demands it) but records whose block
// congruence class is outside mask drop before the PC lookup and the
// mem.Access materialization — the step that removes the decode share
// from the sampled tier's Amdahl bound (DESIGN.md Sec. 14). rep accounts
// pruned vs delivered records.
func (t *Trace) decodeAppendMasked(words []uint64, dst []mem.Access, base uint64, done, limit int64, mask PresenceMask, rep *SkipReport) ([]mem.Access, int64) {
	lastBlock := base
	for i := 0; i < len(words) && done < limit; i++ {
		w := words[i]
		var block uint64
		escape := (w>>pcShift)&pcMask == escapeIdx
		if escape {
			i++
			block = words[i]
		} else {
			block = lastBlock + uint64(int64(w)>>deltaShift)
		}
		lastBlock = block
		done++
		if !mask.test(block) {
			rep.AccessesPruned++
			continue
		}
		var pc uint32
		if escape {
			pc = uint32(w >> deltaShift)
		} else {
			pc = t.pcs[(w>>pcShift)&pcMask]
		}
		rep.AccessesDelivered++
		dst = append(dst, mem.Access{
			Addr:     block<<cache.BlockBits | (w>>low6Shift)&low6Mask,
			PC:       pc,
			Write:    w&flagWrite != 0,
			Property: w&flagProp != 0,
		})
	}
	return dst, done
}
