package trace

import (
	"testing"
	"time"

	"grasp/internal/cache"
	"grasp/internal/mem"
)

// record encodes the accesses through a raw recorder (optionally with a
// resident-bytes override) and seals the trace.
func record(t *testing.T, accs []mem.Access, override int64) *Trace {
	t.Helper()
	r := NewRawRecorder()
	if override != 0 {
		r.SetMemoryOverride(override)
	}
	for _, a := range accs {
		r.Record(a)
	}
	tr, err := r.Finish(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Release)
	return tr
}

// checkRoundTrip asserts the decoded stream matches the input exactly.
func checkRoundTrip(t *testing.T, accs []mem.Access, tr *Trace) {
	t.Helper()
	if tr.Len() != int64(len(accs)) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(accs))
	}
	got, err := tr.Accesses(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range accs {
		if got[i] != a {
			t.Fatalf("access %d: got %+v, want %+v", i, got[i], a)
		}
	}
}

// interesting builds a stream hitting every encoding form: tiny deltas,
// negative deltas, block-crossing jumps beyond the 44-bit compact range,
// sub-block offsets, flag combinations, and repeated PCs.
func interesting() []mem.Access {
	pcs := []uint32{0, 1, 0xDEADBEEF, 42}
	var accs []mem.Access
	addr := uint64(0x1000_0000)
	for i := 0; i < 5000; i++ {
		a := mem.Access{
			Addr:     addr,
			PC:       pcs[i%len(pcs)],
			Write:    i%3 == 0,
			Property: i%5 == 0,
		}
		accs = append(accs, a)
		switch i % 7 {
		case 0:
			addr += 64
		case 1:
			addr -= 128
		case 2:
			addr += 1 // sub-block motion
		case 3:
			addr += uint64(1) << 52 // forces the escape form
		case 4:
			addr -= uint64(1) << 52
		default:
			addr += 4096
		}
	}
	// Extremes of the address space.
	accs = append(accs,
		mem.Access{Addr: 0},
		mem.Access{Addr: ^uint64(0)},
		mem.Access{Addr: 0, Write: true, Property: true},
	)
	return accs
}

func TestRoundTrip(t *testing.T) {
	accs := interesting()
	checkRoundTrip(t, accs, record(t, accs, 0))
}

func TestRoundTripSpilled(t *testing.T) {
	accs := interesting()
	tr := record(t, accs, -1) // spill every chunk
	if tr.SpilledBytes() == 0 {
		t.Fatal("override did not spill")
	}
	checkRoundTrip(t, accs, tr)
}

// TestChunkBoundaryEscape fills a chunk to one slot short of capacity and
// then emits escape records, which must not split across the boundary.
func TestChunkBoundaryEscape(t *testing.T) {
	var accs []mem.Access
	addr := uint64(0)
	for i := 0; i < chunkWords-1; i++ {
		addr += 64
		accs = append(accs, mem.Access{Addr: addr})
	}
	for i := 0; i < 10; i++ {
		addr += uint64(1) << 60 // escape every time
		accs = append(accs, mem.Access{Addr: addr, PC: uint32(i)})
	}
	checkRoundTrip(t, accs, record(t, accs, 0))
}

// TestPCDictionaryOverflow drives more distinct PCs than the dictionary
// holds; the overflow must fall back to escape records losslessly.
func TestPCDictionaryOverflow(t *testing.T) {
	var accs []mem.Access
	for i := 0; i < maxPCs+500; i++ {
		accs = append(accs, mem.Access{Addr: uint64(i) * 64, PC: uint32(i) * 2654435761})
	}
	checkRoundTrip(t, accs, record(t, accs, 0))
}

func TestReplayN(t *testing.T) {
	accs := interesting()
	tr := record(t, accs, 0)
	llcCfg := cache.Config{SizeBytes: 4096, Ways: 4}
	full := cache.MustNew(llcCfg, cache.NewLRU(llcCfg.Sets(), llcCfg.Ways))
	if err := tr.Replay(full); err != nil {
		t.Fatal(err)
	}
	if full.Stats.Accesses() != uint64(len(accs)) {
		t.Fatalf("replayed %d accesses, want %d", full.Stats.Accesses(), len(accs))
	}

	// A bounded replay must equal a direct simulation of the prefix.
	const limit = 1234
	bounded := cache.MustNew(llcCfg, cache.NewLRU(llcCfg.Sets(), llcCfg.Ways))
	if err := tr.ReplayN(bounded, limit); err != nil {
		t.Fatal(err)
	}
	direct := cache.MustNew(llcCfg, cache.NewLRU(llcCfg.Sets(), llcCfg.Ways))
	for _, a := range accs[:limit] {
		direct.Access(a)
	}
	if bounded.Stats != direct.Stats {
		t.Fatalf("bounded replay stats %+v != direct prefix stats %+v", bounded.Stats, direct.Stats)
	}
}

// TestRecorderFiltersUpperLevels: with the L1/L2 front-end, the recorded
// stream must be exactly the accesses a Hierarchy would pass to its LLC,
// and the recording's L1/L2 stats must match the hierarchy's.
func TestRecorderFiltersUpperLevels(t *testing.T) {
	hcfg := cache.DefaultHierarchyConfig()
	rec, err := NewRecorder(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cache.NewHierarchy(hcfg, cache.NewLRU(hcfg.LLC.Sets(), hcfg.LLC.Ways), nil)
	if err != nil {
		t.Fatal(err)
	}
	accs := interesting()
	for _, a := range accs {
		rec.Access(a)
		h.Access(a)
	}
	tr, err := rec.Finish(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	if tr.L1Stats() != h.L1.Stats || tr.L2Stats() != h.L2.Stats {
		t.Fatalf("filter stats diverge: L1 %+v vs %+v, L2 %+v vs %+v",
			tr.L1Stats(), h.L1.Stats, tr.L2Stats(), h.L2.Stats)
	}
	if tr.Len() != int64(h.LLC.Stats.Accesses()) {
		t.Fatalf("recorded %d LLC-bound accesses, hierarchy LLC saw %d",
			tr.Len(), h.LLC.Stats.Accesses())
	}
	llc := cache.MustNew(hcfg.LLC, cache.NewLRU(hcfg.LLC.Sets(), hcfg.LLC.Ways))
	if err := tr.Replay(llc); err != nil {
		t.Fatal(err)
	}
	if llc.Stats != h.LLC.Stats {
		t.Fatalf("replayed LLC stats %+v != hierarchy LLC stats %+v", llc.Stats, h.LLC.Stats)
	}
}

// TestMemoryAccounting: resident bytes are charged while the trace lives
// and returned on Release; Release is idempotent and blocks replay.
func TestMemoryAccounting(t *testing.T) {
	before := MemoryInUse()
	accs := interesting()
	r := NewRawRecorder()
	for _, a := range accs {
		r.Record(a)
	}
	tr, err := r.Finish(0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SizeBytes() == 0 {
		t.Fatal("trace reports zero footprint")
	}
	if MemoryInUse() != before+tr.SizeBytes()-tr.SpilledBytes() {
		t.Fatalf("in-use %d, want %d", MemoryInUse(), before+tr.SizeBytes()-tr.SpilledBytes())
	}
	tr.Release()
	tr.Release()
	if MemoryInUse() != before {
		t.Fatalf("Release leaked accounting: %d != %d", MemoryInUse(), before)
	}
	if err := tr.Replay(cache.MustNew(cache.Config{SizeBytes: 1024, Ways: 2}, cache.NewLRU(8, 2))); err == nil {
		t.Fatal("replay of released trace succeeded")
	}
	if _, err := tr.Accesses(0); err == nil {
		t.Fatal("decode of released trace succeeded")
	}
}

// TestConcurrentSpilledReplay replays one spilled trace from several
// goroutines; pread-based chunk reads must not interfere.
func TestConcurrentSpilledReplay(t *testing.T) {
	accs := interesting()
	tr := record(t, accs, -1)
	llcCfg := cache.Config{SizeBytes: 8192, Ways: 8}
	ref := cache.MustNew(llcCfg, cache.NewLRU(llcCfg.Sets(), llcCfg.Ways))
	if err := tr.Replay(ref); err != nil {
		t.Fatal(err)
	}
	done := make(chan cache.Stats, 4)
	for i := 0; i < 4; i++ {
		go func() {
			llc := cache.MustNew(llcCfg, cache.NewLRU(llcCfg.Sets(), llcCfg.Ways))
			if err := tr.Replay(llc); err != nil {
				t.Error(err)
			}
			done <- llc.Stats
		}()
	}
	for i := 0; i < 4; i++ {
		if got := <-done; got != ref.Stats {
			t.Fatalf("concurrent replay stats %+v != reference %+v", got, ref.Stats)
		}
	}
}
